package jsoninference

import (
	"io"

	"repro/internal/enrich"
	"repro/internal/schemarepo"
)

// A Repository maintains inferred schemas incrementally, one per named
// partition plus the fused global schema — the capability Sections 1
// and 7 of the paper derive from associativity: appending a batch only
// fuses its schema into one partition, and the global schema is a fold
// of the small per-partition schemas, never a re-inference of the data.
//
// Repositories are safe for concurrent use: Append, Schema, Save and
// the rest may race freely (cmd/schemad serves one Repository per
// tenant to hundreds of concurrent ingest streams). All schemas stored
// in a Repository are simplified on the way in, so fusing them is a
// pure fold of Fuse and results are byte-identical to a single offline
// Infer over the concatenated records, whatever the arrival order of
// same-partition batches and whatever the interleaving across
// partitions — the guarantee cmd/schemadload verifies end to end over
// HTTP.
//
// The zero value is not ready; use NewRepository or LoadRepository.
type Repository struct {
	repo *schemarepo.Repo
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{repo: schemarepo.New()}
}

// Append fuses a schema describing count records into the named
// partition, creating the partition on first use. The typical flow
// infers a batch with Infer (or receives a schema from elsewhere) and
// appends it here in one O(schema-size) operation. A nil or empty
// schema adds only to the partition's record count. A schema inferred
// with Options.Enrich carries its enrichment lattice along: the
// partition accumulates it, and Schema and PartitionSchema return
// schemas enriched with the union.
func (r *Repository) Append(part string, s *Schema, count int64) {
	t := EmptySchema().t
	if s != nil {
		t = s.t
	}
	var lat *enrich.Lattice
	if s != nil {
		lat = s.enr
	}
	r.repo.AppendEnriched(part, t, count, lat)
}

// Schema returns the fused schema of all partitions (the empty schema
// when the repository is empty), carrying the union of any enrichment
// appended. The result is cached until the repository changes;
// recomputation folds one small schema per partition.
func (r *Repository) Schema() *Schema {
	return newSchema(r.repo.Schema()).withEnrichment(r.repo.Enrichment())
}

// PartitionSchema returns the named partition's schema (with its
// enrichment, if any was appended) and whether the partition exists.
func (r *Repository) PartitionSchema(part string) (*Schema, bool) {
	t, ok := r.repo.PartitionSchema(part)
	if !ok {
		return nil, false
	}
	return newSchema(t).withEnrichment(r.repo.PartitionEnrichment(part)), true
}

// PartitionCount returns the number of records the named partition
// describes and whether the partition exists.
func (r *Repository) PartitionCount(part string) (int64, bool) {
	return r.repo.PartitionCount(part)
}

// DropPartition removes a partition, as when a shard of the dataset is
// deleted; the global schema shrinks accordingly on the next Schema
// call. It reports whether the partition existed; dropping an absent
// partition is a no-op.
func (r *Repository) DropPartition(part string) bool {
	return r.repo.DropPartition(part)
}

// Partitions lists partition names in sorted order.
func (r *Repository) Partitions() []string {
	return r.repo.Partitions()
}

// Count returns the total number of records described across
// partitions.
func (r *Repository) Count() int64 {
	return r.repo.Count()
}

// Save writes the repository as a JSON document that LoadRepository
// reads back. Safe to call concurrently with Append; the snapshot is a
// consistent point-in-time view.
func (r *Repository) Save(w io.Writer) error {
	return r.repo.Save(w)
}

// LoadRepository reads a repository previously written with Save.
func LoadRepository(rd io.Reader) (*Repository, error) {
	repo, err := schemarepo.Load(rd)
	if err != nil {
		return nil, err
	}
	return &Repository{repo: repo}, nil
}
