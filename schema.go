package jsoninference

import (
	"fmt"
	"math/rand"

	"repro/internal/enrich"
	"repro/internal/fusion"
	"repro/internal/jsonschema"
	"repro/internal/jsontext"
	"repro/internal/types"
	"repro/internal/value"
)

// Schema is an inferred JSON schema: a type of the paper's language
// wrapped behind a stable API. Schemas are immutable; Fuse returns a new
// one. The zero value is not useful — obtain schemas from the Infer
// functions, ParseSchema, or UnmarshalSchemaJSON.
//
// A schema inferred with Options.Enrich additionally carries the run's
// enrichment lattice (per-path value statistics, docs/ENRICHMENT.md):
// JSONSchema output gains annotations, EnrichmentJSON reports them per
// path, and Fuse combines the lattices alongside the types. The
// structural methods — String, Equal, MarshalJSON, Size — never see
// it.
type Schema struct {
	t types.Type
	// enr is the enrichment lattice; nil on plain schemas.
	enr *enrich.Lattice
}

// newSchema wraps a type; nil types are rejected at the call sites.
func newSchema(t types.Type) *Schema { return &Schema{t: t} }

// withEnrichment attaches an enrichment lattice (nil is fine).
func (s *Schema) withEnrichment(l *enrich.Lattice) *Schema {
	s.enr = l
	return s
}

// EmptySchema returns the schema of the empty collection: the empty type
// ε, the identity of Fuse.
func EmptySchema() *Schema { return newSchema(types.Empty) }

// ParseSchema parses the paper's type syntax, e.g.
// "{id: Num, name: Str?, tags: [(Num + Str)*]}".
func ParseSchema(src string) (*Schema, error) {
	t, err := types.Parse(src)
	if err != nil {
		return nil, err
	}
	return newSchema(t), nil
}

// String renders the schema in the paper's compact type syntax. The
// output round-trips through ParseSchema.
func (s *Schema) String() string { return s.t.String() }

// Indent renders the schema in an indented multi-line form for reading.
func (s *Schema) Indent() string { return types.Indent(s.t) }

// Size returns the number of nodes of the schema's abstract syntax tree,
// the succinctness measure used throughout the paper's evaluation.
func (s *Schema) Size() int { return s.t.Size() }

// IsEmpty reports whether the schema is ε (no values described).
func (s *Schema) IsEmpty() bool { return types.Equal(s.t, types.Empty) }

// Equal reports whether two schemas are structurally identical.
func (s *Schema) Equal(other *Schema) bool {
	return other != nil && types.Equal(s.t, other.t)
}

// Fuse merges this schema with another, returning the schema of the
// union of the two collections. Fuse is commutative and associative
// (Theorems 5.4 and 5.5 of the paper), so schemas inferred from
// partitions of a dataset can be fused in any order.
func (s *Schema) Fuse(other *Schema) *Schema {
	if other == nil {
		return s
	}
	return newSchema(fusion.Fuse(s.t, other.t)).withEnrichment(enrich.Union(s.enr, other.enr))
}

// Contains reports whether the JSON value in data conforms to the
// schema (the semantic membership V ∈ ⟦T⟧ of Section 4 of the paper).
func (s *Schema) Contains(data []byte) (bool, error) {
	v, err := jsontext.ParseBytes(data)
	if err != nil {
		return false, fmt.Errorf("jsoninference: parsing value: %w", err)
	}
	return types.Member(v, s.t), nil
}

// SubschemaOf reports whether every value described by s is also
// described by other (a sound syntactic check of the sub-typing relation
// of Definition 4.1).
func (s *Schema) SubschemaOf(other *Schema) bool {
	return other != nil && types.Subtype(s.t, other.t)
}

// EquivalentTo reports whether the two schemas describe the same values
// (mutual sub-schema). Coarser than Equal: structurally different
// renderings of the same value set — such as "[]" and "[ε*]" — are
// equivalent but not equal.
func (s *Schema) EquivalentTo(other *Schema) bool {
	return other != nil && types.Equivalent(s.t, other.t)
}

// Sample generates an example JSON value conforming to the schema,
// deterministic for a given seed. It reports false when the schema
// admits no values (the empty schema ε). Samples make an inferred
// schema concrete: "what does a record of this collection look like?"
func (s *Schema) Sample(seed int64) ([]byte, bool) {
	v, ok := types.Witness(s.t, rand.New(rand.NewSource(seed)))
	if !ok {
		return nil, false
	}
	return value.AppendJSON(nil, v), true
}

// JSONSchema exports the schema as a JSON Schema (draft-04) document.
// A schema inferred with Options.Enrich carries its enrichment as
// annotations: observed minimum/maximum on number schemas, format on
// unanimously formatted string schemas, and x- extension keywords
// (x-distinctValues, x-bloomFilter, x-observedMinItems, ...) that
// never tighten validation. Use WithoutEnrichment for the plain
// document.
func (s *Schema) JSONSchema() ([]byte, error) {
	if s.enr != nil {
		return jsonschema.MarshalAnnotated(s.t, s.enr)
	}
	return jsonschema.Marshal(s.t)
}

// Enriched reports whether the schema carries enrichment statistics
// (inferred with Options.Enrich, and at least one value observed).
func (s *Schema) Enriched() bool { return !s.enr.Empty() }

// EnrichmentJSON reports the enrichment statistics as a flat JSON
// object mapping paths (in the $.field[] spelling of ExpandPath) to
// their annotations; "{}" on a plain schema.
func (s *Schema) EnrichmentJSON() ([]byte, error) { return s.enr.MarshalReport() }

// WithoutEnrichment returns the schema with its enrichment statistics
// stripped: same structure, plain JSONSchema output.
func (s *Schema) WithoutEnrichment() *Schema { return newSchema(s.t) }

// MarshalJSON encodes the schema in the library's loss-free JSON codec
// (distinct from JSONSchema, which targets the JSON Schema standard).
func (s *Schema) MarshalJSON() ([]byte, error) { return types.MarshalJSON(s.t) }

// UnmarshalSchemaJSON decodes a schema encoded with MarshalJSON.
func UnmarshalSchemaJSON(data []byte) (*Schema, error) {
	t, err := types.UnmarshalJSON(data)
	if err != nil {
		return nil, err
	}
	return newSchema(t), nil
}
