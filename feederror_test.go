package jsoninference_test

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	jsi "repro"
)

// TestFeedErrorMissingFile pins the public error contract for input
// that cannot be opened: the error unwraps to *jsi.FeedError (the
// producer failed, the bytes never arrived) and further to the OS
// cause, so callers can branch on fs.ErrNotExist.
func TestFeedErrorMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing.ndjson")
	_, _, err := jsi.InferFile(path, jsi.Options{})
	if err == nil {
		t.Fatal("missing file accepted")
	}
	var fe *jsi.FeedError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v (%T), want *FeedError in the chain", err, err)
	}
	if fe.Path != path {
		t.Errorf("FeedError.Path = %q, want %q", fe.Path, path)
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("errors.Is(err, fs.ErrNotExist) = false for %v", err)
	}
	if !strings.HasPrefix(err.Error(), "jsoninference: reading ") {
		t.Errorf("err = %q, want the jsoninference: reading prefix", err)
	}
}

// TestFeedErrorMidRead pins the same contract when the open succeeds
// but reading fails (here: the path is a directory): the feed error is
// distinguishable even though the pipeline was already running.
func TestFeedErrorMidRead(t *testing.T) {
	dir := t.TempDir()
	_, _, err := jsi.InferFile(dir, jsi.Options{})
	if err == nil {
		t.Skip("reading a directory succeeded on this platform")
	}
	var fe *jsi.FeedError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v (%T), want *FeedError in the chain", err, err)
	}
	if fe.Path != dir {
		t.Errorf("FeedError.Path = %q, want %q", fe.Path, dir)
	}
}

// TestDecodeErrorIsNotFeedError draws the line from the other side:
// when the bytes arrive but are not valid JSON, the error must NOT be
// a FeedError — retrying the I/O would be pointless.
func TestDecodeErrorIsNotFeedError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.ndjson")
	if err := os.WriteFile(path, []byte("{\"ok\":1}\n{\"broken\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	var fe *jsi.FeedError

	_, _, err := jsi.InferFile(path, jsi.Options{})
	if err == nil {
		t.Fatal("invalid JSON accepted")
	}
	if errors.As(err, &fe) {
		t.Errorf("file decode error surfaced as FeedError: %v", err)
	}

	_, _, err = jsi.InferNDJSON([]byte(`{"broken`), jsi.Options{})
	if err == nil {
		t.Fatal("invalid JSON accepted")
	}
	if errors.As(err, &fe) {
		t.Errorf("bytes decode error surfaced as FeedError: %v", err)
	}
}
