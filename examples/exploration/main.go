// Exploration: the schema-driven workflows the paper's introduction
// motivates — "users can rely on schema information to quickly figure
// out structural properties", wildcard expansion for query writing,
// compile-time detection of dead paths, and projection so that
// "main-memory tools ... load only those fragments of the input dataset
// that are actually needed". Plus the Section 7 extensions: a
// statistics-annotated profile and positional array types.
//
//	go run ./examples/exploration
package main

import (
	"fmt"
	"log"

	jsi "repro"
	"repro/internal/dataset"
)

func main() {
	gen, err := dataset.New("twitter")
	if err != nil {
		log.Fatal(err)
	}
	data := dataset.NDJSON(gen, 800, 42)
	schema, _, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Wildcard expansion: what can live under "entities"?
	fmt.Println("== $.entities.* expands to ==")
	matches, err := schema.ExpandPath("$.entities.*")
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		miss := ""
		if m.CanMiss {
			miss = "   (may be absent)"
		}
		fmt.Printf("  %-28s : %.60s%s\n", m.Path, m.Type, miss)
	}
	fmt.Println()

	// 2. Compile-time error detection: a typo'd path is provably dead.
	fmt.Println("== dead-path detection ==")
	for _, path := range []string{"$.entities.hashtags[*].text", "$.entities.hashtag[*].text"} {
		ms, err := schema.ExpandPath(path)
		if err != nil {
			log.Fatal(err)
		}
		if len(ms) == 0 {
			fmt.Printf("  %-34s -> no conforming value can contain it (typo caught statically)\n", path)
		} else {
			fmt.Printf("  %-34s -> %s\n", path, ms[0].Type)
		}
	}
	fmt.Println()

	// 3. Projection: a query needing three paths loads a fraction of
	// each record.
	proj, err := jsi.NewProjection("$.id", "$.user.screen_name", "$.entities.hashtags[*].text")
	if err != nil {
		log.Fatal(err)
	}
	var fullBytes, projBytes int
	line := firstLine(data)
	projected, err := proj.ApplyJSON(line)
	if err != nil {
		log.Fatal(err)
	}
	fullBytes, projBytes = len(line), len(projected)
	fmt.Println("== projection ($.id, $.user.screen_name, $.entities.hashtags[*].text) ==")
	fmt.Printf("  first record: %d bytes -> %d bytes (%.0f%% kept)\n", fullBytes, projBytes, 100*float64(projBytes)/float64(fullBytes))
	fmt.Printf("  projected: %s\n\n", projected)

	// 4. Statistics-annotated profile (the Section 7 extension): how
	// often is each field present, what ranges do the numbers span?
	small := dataset.NDJSON(gen, 60, 7)
	prof, err := jsi.ProfileNDJSON(small, jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== statistics-annotated profile (60 records, excerpt) ==")
	excerpt(prof.String(), 18)

	// 5. Positional arrays (the other Section 7 extension): coordinate
	// pairs keep their arity.
	coords := []byte(`{"bbox": [2.2, 48.8]}
{"bbox": [13.3, 52.5]}
`)
	paper, _, err := jsi.InferNDJSON(coords, jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pos, _, err := jsi.InferNDJSON(coords, jsi.Options{PreserveTupleArrays: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== positional array extension ==")
	fmt.Printf("  paper fusion:      %s\n", paper)
	fmt.Printf("  positional fusion: %s (rejects 3-element arrays)\n", pos)
}

func firstLine(data []byte) []byte {
	for i, b := range data {
		if b == '\n' {
			return data[:i]
		}
	}
	return data
}

func excerpt(s string, lines int) {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			n++
			if n == lines {
				fmt.Println(s[:i])
				fmt.Println("  ...")
				return
			}
		}
	}
	fmt.Println(s)
}
