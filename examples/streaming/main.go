// Streaming: maintain a schema incrementally over a live feed, the
// incremental-evolution scenario of Sections 1 and 7 of the paper. A
// Twitter-style stream arrives in batches; each batch's schema is fused
// into the running schema — never re-inferring the past — and the result
// provably equals a from-scratch batch inference (associativity).
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	jsi "repro"
	"repro/internal/dataset"
)

func main() {
	gen, err := dataset.New("twitter")
	if err != nil {
		log.Fatal(err)
	}
	const batches = 8
	const perBatch = 120
	stream := dataset.NDJSON(gen, batches*perBatch, 2017)

	// Cut the stream into arrival batches (line-aligned).
	var cuts []int
	count := 0
	for i, b := range stream {
		if b == '\n' {
			count++
			if count%perBatch == 0 {
				cuts = append(cuts, i+1)
			}
		}
	}

	running := jsi.EmptySchema()
	start := 0
	fmt.Println("batch  records  schema-size  schema-growth")
	prevSize := 0
	for i, cut := range cuts {
		batch := stream[start:cut]
		start = cut
		schema, stats, err := jsi.InferNDJSON(batch, jsi.Options{})
		if err != nil {
			log.Fatal(err)
		}
		// The O(schema) incremental step: fuse the new batch's schema in.
		running = running.Fuse(schema)
		growth := running.Size() - prevSize
		prevSize = running.Size()
		fmt.Printf("%5d  %7d  %11d  %+d\n", i+1, stats.Records, running.Size(), growth)
	}

	// Cross-check: the incrementally maintained schema equals batch
	// inference over the whole stream.
	batchSchema, _, err := jsi.InferNDJSON(stream, jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental == batch inference: %v\n", running.Equal(batchSchema))
	fmt.Println("\nfinal schema:")
	fmt.Println(running.Indent())
}
