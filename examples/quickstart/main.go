// Quickstart: infer a schema from a small heterogeneous JSON collection
// and inspect it in every supported rendering.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	jsi "repro"
)

// A miniature version of the situations the paper motivates: records
// from the same source that agree on most structure but not all of it —
// optional fields, Num/Str mixing, nullable fields, mixed-content
// arrays.
const data = `{"id": 1, "name": "amsterdam", "pop": 821752, "tags": ["canal", "bike"]}
{"id": 2, "name": "venice", "pop": "261905", "tags": ["canal", {"wikidata": "Q641"}]}
{"id": 3, "name": "lima", "pop": 8852000, "tags": [], "mayor": null}
{"id": "4b", "name": "tokyo", "pop": 13929286, "tags": ["metro"], "mayor": {"name": "k. yuriko", "since": 2016}}
`

func main() {
	schema, stats, err := jsi.InferNDJSON([]byte(data), jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== inferred schema (paper syntax) ==")
	fmt.Println(schema)
	fmt.Println()
	fmt.Println("== indented ==")
	fmt.Println(schema.Indent())
	fmt.Println()
	fmt.Printf("records: %d, distinct per-record types: %d, schema size: %d nodes (record types averaged %.1f)\n",
		stats.Records, stats.DistinctTypes, schema.Size(), stats.AvgTypeSize)
	fmt.Println()

	// Every input record conforms to the inferred schema — the paper's
	// completeness guarantee (Theorem 5.2).
	ok, err := schema.Contains([]byte(`{"id": 9, "name": "x", "pop": 1, "tags": ["t"]}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conforming record accepted: %v\n", ok)
	ok, err = schema.Contains([]byte(`{"name": "missing mandatory id and pop"}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-conforming record accepted: %v\n", ok)
	fmt.Println()

	fmt.Println("== JSON Schema (draft-04) export ==")
	doc, err := schema.JSONSchema()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(doc))
}
