// Datalake: the partition-at-a-time strategy of Section 6.2 (Table 8).
// A partitioned NYTimes-style data lake is inferred one partition at a
// time; per-partition schemas are kept in a schema repository and fused
// into the global schema at negligible cost. When one partition is
// updated, only that partition is re-inferred — the rest of the lake is
// untouched — and the refreshed global schema equals a full re-run.
//
//	go run ./examples/datalake
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	jsi "repro"
	"repro/internal/dataset"
	"repro/internal/schemarepo"
)

func main() {
	dir, err := os.MkdirTemp("", "datalake")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore droppederr best-effort cleanup of a temporary directory
	defer os.RemoveAll(dir)

	// Lay out four partitions, like the four HDFS partitions of Table 8.
	gen, err := dataset.New("nytimes")
	if err != nil {
		log.Fatal(err)
	}
	const parts = 4
	const perPart = 300
	var paths []string
	all := dataset.NDJSON(gen, parts*perPart, 8)
	chunks := splitLines(all, parts)
	for i, chunk := range chunks {
		path := filepath.Join(dir, fmt.Sprintf("partition-%d.ndjson", i+1))
		if err := os.WriteFile(path, chunk, 0o600); err != nil {
			log.Fatal(err)
		}
		paths = append(paths, path)
	}

	// Pass 1: infer each partition in isolation, store its schema.
	repo := schemarepo.New()
	fmt.Println("partition        records   schema-size   time")
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		schema, stats, err := jsi.InferNDJSON(data, jsi.Options{})
		if err != nil {
			log.Fatal(err)
		}
		raw, err := schema.MarshalJSON()
		if err != nil {
			log.Fatal(err)
		}
		stored, err := jsi.UnmarshalSchemaJSON(raw) // schemas persist losslessly
		if err != nil || !stored.Equal(schema) {
			log.Fatal("schema persistence round trip failed")
		}
		repoSet(repo, fmt.Sprintf("partition-%d", i+1), schema, stats.Records)
		fmt.Printf("partition-%d      %7d   %11d   %s\n", i+1, stats.Records, schema.Size(), time.Since(t0).Round(time.Millisecond))
	}

	// The global schema: a fast fold of four small schemas.
	t0 := time.Now()
	global := repo.Schema()
	fmt.Printf("\nglobal schema: %d nodes, fused in %s\n", global.Size(), time.Since(t0).Round(time.Microsecond))

	// An update lands in partition 2: re-infer just that partition.
	update := dataset.NDJSON(gen, 150, 99)
	if err := os.WriteFile(paths[1], update, 0o600); err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(paths[1])
	if err != nil {
		log.Fatal(err)
	}
	schema, stats, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	repoSet(repo, "partition-2", schema, stats.Records)
	fmt.Printf("\nafter updating partition-2 (%d records re-inferred, others untouched):\n", stats.Records)
	fmt.Printf("global schema: %d nodes\n", repo.Schema().Size())

	// Cross-check against a full re-run over every file.
	full, _, err := jsi.InferFiles(paths, jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	same := full.String() == repo.Schema().String()
	fmt.Printf("incremental refresh == full re-run: %v\n", same)
}

// repoSet stores a facade schema in the repository via its codec
// encoding.
func repoSet(repo *schemarepo.Repo, part string, schema *jsi.Schema, count int64) {
	raw, err := schema.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	if err := repo.SetPartitionJSON(part, raw, count); err != nil {
		log.Fatal(err)
	}
}

// splitLines cuts NDJSON into n line-aligned chunks.
func splitLines(data []byte, n int) [][]byte {
	var chunks [][]byte
	target := len(data) / n
	start := 0
	for i := 0; i < n-1; i++ {
		end := start + target
		for end < len(data) && data[end] != '\n' {
			end++
		}
		if end < len(data) {
			end++
		}
		chunks = append(chunks, data[start:end])
		start = end
	}
	return append(chunks, data[start:])
}
