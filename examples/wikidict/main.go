// Wikidict: the Table 4 pathology and its repair. Wikidata-style data
// encodes identifiers as record KEYS, so key-directed fusion cannot
// collapse records and the fused schema grows with the key space — the
// paper's worst case (Section 6.2). Key abstraction rewrites those
// dictionary-like records into {*: T} map types: the schema collapses by
// orders of magnitude, becomes scale-stable, stays sound (every record
// still conforms), and keeps absorbing new records incrementally.
//
//	go run ./examples/wikidict
package main

import (
	"fmt"
	"log"

	jsi "repro"
	"repro/internal/dataset"
)

func main() {
	gen, err := dataset.New("wikidata")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("records   concrete-schema   abstracted-schema")
	var abstracted *jsi.Schema
	for _, n := range []int{250, 500, 1000, 2000} {
		schema, _, err := jsi.InferNDJSON(dataset.NDJSON(gen, n, 7), jsi.Options{})
		if err != nil {
			log.Fatal(err)
		}
		abstracted = schema.AbstractKeys(0)
		fmt.Printf("%7d   %15d   %17d\n", n, schema.Size(), abstracted.Size())
	}
	fmt.Println("\n(the concrete schema tracks the key space; the abstracted one is flat)")
	fmt.Println()

	fmt.Println("== the abstracted schema is small enough to read ==")
	fmt.Println(abstracted.Indent())
	fmt.Println()

	// Soundness and incrementality.
	fresh := dataset.NDJSON(gen, 300, 99) // records the schema never saw
	newSchema, _, err := jsi.InferNDJSON(fresh, jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	grown := abstracted.Fuse(newSchema.AbstractKeys(0))
	fmt.Printf("after fusing 300 unseen records: %d -> %d nodes (keys keep being absorbed)\n",
		abstracted.Size(), grown.Size())
	sample, ok := grown.Sample(3)
	if !ok {
		log.Fatal("no sample")
	}
	conforms, err := grown.Contains(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled entity conforms: %v\n", conforms)
}
