// Precision: the comparison that motivates union types in Section 6.1
// of the paper. Spark SQL-style inference coerces conflicting types —
// a mixed-content array becomes an array of String, and Num/Str clashes
// become String — while the paper's fusion keeps a union type for each.
// This example shows the paper's exact array, then quantifies the losses
// on an NYTimes-style collection.
//
//	go run ./examples/precision
package main

import (
	"context"
	"fmt"
	"log"

	jsi "repro"
	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/jsontext"
	"repro/internal/types"
)

func main() {
	// The paper's array: [12, "high", {"state": "ok"}] (Section 6.1).
	mixed := []byte(`[12, "high", {"state": "ok"}]`)
	ours, err := jsi.InferJSON(mixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("value:              ", string(mixed))
	fmt.Println("fusion schema:      ", ours)

	v, err := jsontext.ParseBytes(mixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("coercion schema:    ", baseline.Infer(v))
	fmt.Println()

	// Quantify on an NYTimes-style collection, whose records mix Num and
	// Str on the same fields (print_page, word_count, keyword ranks).
	gen, err := dataset.New("nytimes")
	if err != nil {
		log.Fatal(err)
	}
	vs := dataset.Values(gen, 500, 61)
	res, err := experiments.RunPipelineOverNDJSON(context.Background(), dataset.NDJSON(gen, 500, 61), experiments.Config{})
	if err != nil {
		log.Fatal(err)
	}
	base := baseline.InferAll(vs)
	rep := baseline.Compare(res.Fused, base)

	fmt.Println("NYTimes-style collection, 500 records:")
	fmt.Printf("  fusion schema size:    %d nodes\n", rep.FusionSize)
	fmt.Printf("  coercion schema size:  %d nodes\n", rep.BaselineSize)
	fmt.Printf("  optional fields known only to fusion: %d\n", rep.OptionalFields)
	fmt.Printf("  union types coercion collapsed:       %d\n", rep.UnionNodes)
	fmt.Printf("  leaves coerced to plain Str:          %d\n", rep.CoercedLeaves)
	fmt.Printf("  nullable positions silently dropped:  %d\n", rep.DroppedNullability)
	fmt.Println()

	// The practical consequence: the fusion schema still accepts the
	// value it came from; the coerced schema does not (a Num where it
	// now requires Str).
	accepted, err := ours.Contains(mixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fusion schema accepts its own value:   %v\n", accepted)
	fmt.Printf("coercion schema accepts its own value: %v\n", types.Member(v, baseline.Infer(v)))
}
