// Typecheck: static query checking against an inferred schema — the
// paper's Section 1 motivation ("the correctness of complex queries and
// programs cannot be statically checked" without a schema) and the
// Pig-Latin type-checking application of its companion work [12].
//
// A Pig-Latin-like script is checked against the schema inferred from a
// Twitter-style stream: a typo'd field, an impossible comparison and a
// fragile optional access are all caught before any data is processed.
//
//	go run ./examples/typecheck
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/querycheck"
)

const script = `
stream  = LOAD twitter;
-- 1: typo ("hashtag" for "hashtags") -> provably dead path
tagged  = FILTER stream BY $.entities.hashtag == null;
-- 2: text is a Str: an ordering comparison with a number is impossible
weird   = FILTER stream BY $.text > 5;
-- 3: possibly_sensitive is optional: records without it silently vanish
risky   = FILTER stream BY $.possibly_sensitive == true;
-- 4: fine
popular = FILTER stream BY $.retweet_count > 1000;
out     = FOREACH popular GENERATE $.id AS id, $.user.screen_name AS author, $.entities.hashtags[*].text AS tags;
STORE out;
`

func main() {
	gen, err := dataset.New("twitter")
	if err != nil {
		log.Fatal(err)
	}
	res, err := experiments.RunPipelineOverNDJSON(context.Background(), dataset.NDJSON(gen, 1500, 42), experiments.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== script ==")
	fmt.Print(script)
	fmt.Println()
	fmt.Println("== diagnostics (no data was processed to find these) ==")
	result := querycheck.Check(script, res.Fused)
	fmt.Print(result.Render())
	fmt.Println()
	fmt.Println("== synthesized output schema ==")
	fmt.Printf("out : %s\n", result.Relations["out"])
}
