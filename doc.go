// Package jsoninference infers succinct, precise schemas from massive
// JSON datasets. It is a from-scratch Go implementation of the approach
// of Baazizi, Ben Lahmar, Colazzo, Ghelli and Sartiani, "Schema Inference
// for Massive JSON Datasets" (EDBT 2017).
//
// The pipeline has two phases. A Map phase infers one structurally
// isomorphic type per JSON value. A Reduce phase folds those types with a
// commutative, associative fusion operator that collapses everything the
// values share: matching record fields merge recursively (fields missing
// on one side become optional), arrays of any element mix become
// repeated types over a union of the element types, and distinct kinds
// meet in union types. The result is a schema that is complete — every
// path through any input value is a path through the schema — yet small
// enough to read.
//
// # Quick start
//
//	schema, stats, err := jsoninference.InferNDJSON(data, jsoninference.Options{})
//	if err != nil { ... }
//	fmt.Println(schema)            // {id: Num, tags: [Str*], name: Str?}
//	fmt.Println(stats.Records)     // how many values were typed
//
// Because fusion is associative and commutative, schemas compose:
// Fuse(a, b) is the schema of the concatenated datasets, which enables
// incremental maintenance — infer once, then fuse in the types of new
// records as they arrive.
//
// # Incremental repositories
//
// A Repository packages that incremental maintenance behind a
// concurrency-safe API: schemas of new batches fuse into named
// partitions in O(schema-size) (Append), the global schema is a cached
// fold of the per-partition schemas (Schema), and the whole repository
// serializes for persistence (Save / LoadRepository). See
// ExampleRepository. The cmd/schemad server exposes one Repository per
// tenant over HTTP (docs/SERVING.md), and Schema.DiffFrom reports what
// changed between two inferred versions.
//
// Schemas render in the paper's type syntax (String), parse back
// (ParseSchema), export to JSON Schema draft-04 (JSONSchema), and check
// values for conformance (Contains).
package jsoninference
