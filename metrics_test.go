package jsoninference_test

import (
	"context"
	"encoding/json"
	"testing"

	jsi "repro"
	"repro/internal/dataset"
)

// TestMetricsDeterministic runs the same inference twice with fixed
// parallelism and asserts the two metric snapshots are byte-identical
// once timing-dependent metrics (_ns, _permille, _per_sec) are
// stripped: chunk counts, record counts, byte counts and the
// fusion-growth histogram must not depend on scheduling.
func TestMetricsDeterministic(t *testing.T) {
	g, err := dataset.New("github")
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.NDJSON(g, 400, 7)
	opts := jsi.Options{Workers: 4}

	snapshot := func() []byte {
		t.Helper()
		c := jsi.NewCollector()
		o := opts
		o.Collector = c
		if _, _, err := jsi.Infer(context.Background(), jsi.FromBytes(data), o); err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(c.Metrics().WithoutTimings())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := snapshot()
	second := snapshot()
	if string(first) != string(second) {
		t.Errorf("metrics differ between identical runs:\n%s\nvs\n%s", first, second)
	}
	// The deterministic remainder must still be substantive.
	var m jsi.Metrics
	if err := json.Unmarshal(first, &m); err != nil {
		t.Fatal(err)
	}
	if m.Counters["infer_records"] != 400 || m.Counters["infer_chunks"] == 0 {
		t.Errorf("deterministic metrics incomplete: %s", first)
	}
	if _, ok := m.Histograms["infer_chunk_fused_size"]; !ok {
		t.Errorf("fusion-growth histogram missing: %s", first)
	}
}

// TestPublicMetricsMerge spot-checks the public mirror of the merge
// algebra (the full property tests live in internal/obs): counters
// add, gauges max, histograms add bucket-wise, inputs stay untouched,
// and the zero Metrics is an identity.
func TestPublicMetricsMerge(t *testing.T) {
	a := jsi.Metrics{
		Counters:   map[string]int64{"x": 2},
		Gauges:     map[string]int64{"g": 7},
		Histograms: map[string]jsi.Histogram{"h": {Count: 1, Sum: 3, Buckets: []jsi.HistogramBucket{{Le: 3, Count: 1}}}},
	}
	b := jsi.Metrics{
		Counters:   map[string]int64{"x": 5, "y": 1},
		Gauges:     map[string]int64{"g": 4},
		Histograms: map[string]jsi.Histogram{"h": {Count: 2, Sum: 10, Buckets: []jsi.HistogramBucket{{Le: 3, Count: 1}, {Le: 7, Count: 1}}}},
	}
	m := a.Merge(b)
	if m.Counters["x"] != 7 || m.Counters["y"] != 1 {
		t.Errorf("counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 7 {
		t.Errorf("gauges = %v", m.Gauges)
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Sum != 13 || len(h.Buckets) != 2 || h.Buckets[0].Count != 2 {
		t.Errorf("histogram = %+v", h)
	}
	if a.Counters["x"] != 2 || a.Histograms["h"].Count != 1 {
		t.Errorf("Merge mutated its receiver: %+v", a)
	}

	ab, err := json.Marshal(a.Merge(b))
	if err != nil {
		t.Fatal(err)
	}
	ba, err := json.Marshal(b.Merge(a))
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(ba) {
		t.Errorf("merge is not commutative:\n%s\nvs\n%s", ab, ba)
	}
	idJSON, err := json.Marshal(a.Merge(jsi.Metrics{}))
	if err != nil {
		t.Fatal(err)
	}
	aJSON, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(idJSON) != string(aJSON) {
		t.Errorf("zero Metrics is not an identity:\n%s\nvs\n%s", idJSON, aJSON)
	}
}

// TestWithoutTimingsPublic asserts the public filter keeps _virtual
// (simulated clock) readings and drops host-timing names.
func TestWithoutTimingsPublic(t *testing.T) {
	m := jsi.Metrics{
		Counters: map[string]int64{"infer_records": 1, "infer_wall_ns": 5},
		Gauges:   map[string]int64{"cluster_makespan_virtual": 9, "infer_records_per_sec": 3, "mapreduce_utilization_permille": 500},
	}
	f := m.WithoutTimings()
	if _, ok := f.Counters["infer_wall_ns"]; ok {
		t.Error("_ns counter survived WithoutTimings")
	}
	if _, ok := f.Gauges["infer_records_per_sec"]; ok {
		t.Error("_per_sec gauge survived WithoutTimings")
	}
	if _, ok := f.Gauges["mapreduce_utilization_permille"]; ok {
		t.Error("_permille gauge survived WithoutTimings")
	}
	if f.Gauges["cluster_makespan_virtual"] != 9 {
		t.Error("_virtual simulated-clock gauge must survive WithoutTimings")
	}
	if f.Counters["infer_records"] != 1 {
		t.Error("plain counter must survive WithoutTimings")
	}
}
