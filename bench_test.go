// Benchmarks regenerating the paper's evaluation: one benchmark per
// table (Tables 1-8) plus micro-benchmarks and the ablations DESIGN.md
// calls out. Run them all with
//
//	go test -bench=. -benchmem
//
// Table benches default to the 1K scale so the suite stays fast; set
// JSI_MAX_SCALE (e.g. 100000) to climb the paper's ladder. Custom
// metrics report the table's headline numbers: fused schema size,
// distinct type counts, simulated makespans.
package jsoninference_test

import (
	"context"
	"os"
	"testing"

	jsi "repro"
	"repro/internal/abstraction"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/mapreduce"
	"repro/internal/types"
)

// benchScale is the record count used by the table benches.
func benchScale() int {
	n := experiments.DefaultMaxScale()
	if n > 100_000 {
		n = 100_000 // keep -bench runs bounded even with a huge env
	}
	if n > 1000 {
		// The env var opts in to bigger runs; default stays at 1K.
		return n
	}
	return 1000
}

func benchCfg() experiments.Config {
	return experiments.Config{Scales: []experiments.Scale{{Label: "bench", N: benchScale()}}, Seed: 20170321}
}

// BenchmarkTable1DatasetSizes measures dataset generation, the input to
// every other experiment (Table 1 reports the generated sizes).
func BenchmarkTable1DatasetSizes(b *testing.B) {
	for _, name := range dataset.PaperNames() {
		b.Run(name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				g, err := dataset.New(name)
				if err != nil {
					b.Fatal(err)
				}
				bytes = int64(len(dataset.NDJSON(g, benchScale(), 1)))
			}
			b.SetBytes(bytes)
			b.ReportMetric(float64(bytes), "dataset-bytes")
		})
	}
}

// benchDatasetTable is the body of the Table 2-5 benches: the full
// two-phase pipeline over one dataset, reporting the table's headline
// measurements as metrics.
func benchDatasetTable(b *testing.B, name string) {
	b.Helper()
	cfg := benchCfg()
	g, err := dataset.New(name)
	if err != nil {
		b.Fatal(err)
	}
	data := dataset.NDJSON(g, benchScale(), 1)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var res experiments.PipelineResult
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunPipelineOverNDJSON(context.Background(), data, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Summary.Distinct()), "distinct-types")
	b.ReportMetric(res.Summary.AvgSize(), "avg-type-size")
	b.ReportMetric(float64(res.Fused.Size()), "fused-size")
	if avg := res.Summary.AvgSize(); avg > 0 {
		b.ReportMetric(float64(res.Fused.Size())/avg, "fused-to-avg-ratio")
	}
}

// BenchmarkTable2GitHub regenerates Table 2 (GitHub).
func BenchmarkTable2GitHub(b *testing.B) { benchDatasetTable(b, "github") }

// BenchmarkTable3Twitter regenerates Table 3 (Twitter).
func BenchmarkTable3Twitter(b *testing.B) { benchDatasetTable(b, "twitter") }

// BenchmarkTable4Wikidata regenerates Table 4 (Wikidata).
func BenchmarkTable4Wikidata(b *testing.B) { benchDatasetTable(b, "wikidata") }

// BenchmarkTable5NYTimes regenerates Table 5 (NYTimes).
func BenchmarkTable5NYTimes(b *testing.B) { benchDatasetTable(b, "nytimes") }

// BenchmarkTable6Times regenerates Table 6: wall-clock inference+fusion
// per dataset on this host (the single-machine configuration).
func BenchmarkTable6Times(b *testing.B) {
	for _, name := range []string{"github", "twitter", "wikidata"} {
		b.Run(name, func(b *testing.B) {
			g, err := dataset.New(name)
			if err != nil {
				b.Fatal(err)
			}
			data := dataset.NDJSON(g, benchScale(), 1)
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunPipelineOverNDJSON(context.Background(), data, benchCfg()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable7Cluster regenerates Table 7: the simulated 6-node
// cluster under both block placements, reporting virtual makespans.
func BenchmarkTable7Cluster(b *testing.B) {
	sim := cluster.PaperCluster(30)
	sizes := cluster.SplitBytes(22e9, 176)
	for _, p := range []cluster.Placement{cluster.PlaceAllOnOne, cluster.PlaceRoundRobin} {
		b.Run(p.String(), func(b *testing.B) {
			var rep cluster.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = cluster.Run(sim, cluster.PlaceBlocks(sizes, p, len(sim.Nodes)))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Makespan.Seconds(), "sim-makespan-s")
			b.ReportMetric(float64(rep.NodesUsed), "nodes-used")
			b.ReportMetric(100*rep.Utilization(sim.TotalCores()), "utilization-%")
		})
	}
}

// BenchmarkTable8Partitioned regenerates Table 8: four partitions
// processed in isolation plus the final (negligible) fusion.
func BenchmarkTable8Partitioned(b *testing.B) {
	sim := cluster.PaperCluster(30)
	parts := [][]int64{
		cluster.SplitBytes(5.2e9, 44),
		cluster.SplitBytes(5.5e9, 44),
		cluster.SplitBytes(5.6e9, 44),
		cluster.SplitBytes(5.7e9, 44),
	}
	var reports []cluster.Report
	var finalFuse float64
	for i := 0; i < b.N; i++ {
		rs, ff, err := cluster.RunPartitioned(sim, parts)
		if err != nil {
			b.Fatal(err)
		}
		reports = rs
		finalFuse = ff.Seconds()
	}
	var total float64
	for _, r := range reports {
		total += r.Makespan.Minutes()
	}
	b.ReportMetric(total/float64(len(reports)), "avg-partition-min")
	b.ReportMetric(finalFuse, "final-fuse-s")
}

// --- ablation benches (DESIGN.md section 4) ---

// BenchmarkAblationStreaming compares direct token-to-type inference
// with parse-then-infer.
func BenchmarkAblationStreaming(b *testing.B) {
	g, _ := dataset.New("nytimes")
	data := dataset.NDJSON(g, 1000, 1)
	b.Run("tokens-to-types", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := infer.InferAll(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize-values", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			vs, err := jsontext.ParseAll(data)
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range vs {
				infer.Infer(v)
			}
		}
	})
}

// BenchmarkAblationReduceShape compares the reduction shapes that
// associativity makes interchangeable.
func BenchmarkAblationReduceShape(b *testing.B) {
	g, _ := dataset.New("twitter")
	data := dataset.NDJSON(g, 2000, 1)
	ts, err := infer.InferAll(data)
	if err != nil {
		b.Fatal(err)
	}
	for i := range ts {
		ts[i] = fusion.Simplify(ts[i])
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fusion.FuseAll(ts)
		}
	})
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fusion.FuseAllTree(ts)
		}
	})
}

// BenchmarkAblationCombiner compares the two reduction disciplines of
// the map-reduce engine on the full pipeline.
func BenchmarkAblationCombiner(b *testing.B) {
	g, _ := dataset.New("twitter")
	data := dataset.NDJSON(g, 2000, 1)
	chunks := jsontext.SplitLines(data, 16)
	mapFn := func(_ context.Context, chunk []byte) (types.Type, error) {
		ts, err := infer.InferAll(chunk)
		if err != nil {
			return nil, err
		}
		acc := types.Type(types.Empty)
		for _, t := range ts {
			acc = fusion.Fuse(acc, fusion.Simplify(t))
		}
		return acc, nil
	}
	for _, ordered := range []bool{false, true} {
		name := "unordered-combiner"
		if ordered {
			name = "ordered-fold"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				_, _, err := mapreduce.RunSlice(context.Background(), chunks, mapFn, fusion.Fuse,
					types.Type(types.Empty), mapreduce.Config{Ordered: ordered})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCollapse isolates array simplification, the
// succinctness-for-precision trade of Section 2.
func BenchmarkAblationCollapse(b *testing.B) {
	// A mixed-content tuple in the style of the paper's example.
	elems := make([]types.Type, 0, 64)
	for i := 0; i < 64; i++ {
		switch i % 3 {
		case 0:
			elems = append(elems, types.Str)
		case 1:
			elems = append(elems, types.Num)
		default:
			elems = append(elems, types.MustParse("{E: Str, F: Num}"))
		}
	}
	tuple := types.MustTuple(elems...)
	b.ReportMetric(float64(tuple.Size()), "tuple-size")
	var collapsed types.Type
	for i := 0; i < b.N; i++ {
		collapsed = fusion.Collapse(tuple)
	}
	b.ReportMetric(float64(collapsed.Size()), "collapsed-size")
}

// BenchmarkAblationBaseline compares fusion against Spark-style
// coercion end to end.
func BenchmarkAblationBaseline(b *testing.B) {
	g, _ := dataset.New("nytimes")
	vs := dataset.Values(g, 1000, 1)
	b.Run("fusion", func(b *testing.B) {
		var fused types.Type
		for i := 0; i < b.N; i++ {
			fused = types.Empty
			for _, v := range vs {
				fused = fusion.Fuse(fused, fusion.Simplify(infer.Infer(v)))
			}
		}
		b.ReportMetric(float64(fused.Size()), "schema-size")
	})
	b.Run("coercion", func(b *testing.B) {
		var base types.Type
		for i := 0; i < b.N; i++ {
			base = baseline.InferAll(vs)
		}
		b.ReportMetric(float64(base.Size()), "schema-size")
	})
}

// BenchmarkAblationPositional compares the paper's array fusion with the
// positional extension on the full pipeline.
func BenchmarkAblationPositional(b *testing.B) {
	g, _ := dataset.New("twitter")
	data := dataset.NDJSON(g, 1000, 1)
	for _, positional := range []bool{false, true} {
		name := "paper"
		cfg := experiments.Config{}
		if positional {
			name = "positional"
			cfg.Fusion = fusion.Options{PreserveTuples: true}
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var res experiments.PipelineResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = experiments.RunPipelineOverNDJSON(context.Background(), data, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Fused.Size()), "fused-size")
		})
	}
}

// --- micro-benchmarks of the core operations ---

// BenchmarkInferValue measures phase-1 inference on one large record.
func BenchmarkInferValue(b *testing.B) {
	g, _ := dataset.New("github")
	v := dataset.Values(g, 1, 1)[0]
	for i := 0; i < b.N; i++ {
		infer.Infer(v)
	}
}

// BenchmarkFusePair measures one binary fusion of two realistic fused
// schemas, the reduce phase's inner operation.
func BenchmarkFusePair(b *testing.B) {
	g, _ := dataset.New("twitter")
	vs := dataset.Values(g, 200, 1)
	half := len(vs) / 2
	t1, t2 := types.Type(types.Empty), types.Type(types.Empty)
	for _, v := range vs[:half] {
		t1 = fusion.Fuse(t1, fusion.Simplify(infer.Infer(v)))
	}
	for _, v := range vs[half:] {
		t2 = fusion.Fuse(t2, fusion.Simplify(infer.Infer(v)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fusion.Fuse(t1, t2)
	}
}

// BenchmarkParseJSON measures the lexer+parser on realistic bytes.
func BenchmarkParseJSON(b *testing.B) {
	g, _ := dataset.New("twitter")
	data := dataset.NDJSON(g, 500, 1)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := jsontext.ParseAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTypePrintParse measures the schema syntax round trip.
func BenchmarkTypePrintParse(b *testing.B) {
	g, _ := dataset.New("nytimes")
	acc := types.Type(types.Empty)
	for _, v := range dataset.Values(g, 100, 1) {
		acc = fusion.Fuse(acc, fusion.Simplify(infer.Infer(v)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := acc.String()
		if _, err := types.Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferNDJSON measures the public in-memory entry point end to
// end with no recorder installed — the nil-recorder fast path whose
// overhead docs/OBSERVABILITY.md promises is near zero (CI records the
// comparison against BenchmarkInferNDJSONObserved in BENCH_obs.json).
func BenchmarkInferNDJSON(b *testing.B) {
	g, _ := dataset.New("twitter")
	data := dataset.NDJSON(g, benchScale(), 1)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := jsi.InferNDJSON(data, jsi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferNDJSONDedup is BenchmarkInferNDJSON on the hash-consed
// fast path (Options.Dedup): interned types, multiset map phase and the
// memoized fuse cache. The schema is byte-identical to the default
// path; the difference between the two benches is the whole point of
// docs/PERFORMANCE.md (CI records it in BENCH_perf.json).
func BenchmarkInferNDJSONDedup(b *testing.B) {
	g, _ := dataset.New("twitter")
	data := dataset.NDJSON(g, benchScale(), 1)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := jsi.InferNDJSON(data, jsi.Options{Dedup: jsi.DedupOn}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferNDJSONAuto is BenchmarkInferNDJSON under the adaptive
// mode (Options.Dedup DedupAuto) on the two skew extremes: twitter
// settles on the hash-consed path, wikidata's all-distinct records
// degrade to the plain payload mid-chunk. CI's -benchtime=1x smoke runs
// both routes, and BENCH_perf.json's worst_case_regression_pct tracks
// how close auto stays to the better fixed mode (docs/PERFORMANCE.md).
func BenchmarkInferNDJSONAuto(b *testing.B) {
	for _, name := range []string{"twitter", "wikidata"} {
		b.Run(name, func(b *testing.B) {
			g, _ := dataset.New(name)
			data := dataset.NDJSON(g, benchScale(), 1)
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := jsi.InferNDJSON(data, jsi.Options{Dedup: jsi.DedupAuto}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInferNDJSONObserved is BenchmarkInferNDJSON with a Collector
// installed: the difference between the two is the full cost of
// observing a run (atomic counters, histogram observations, timing
// reads along the pipeline).
func BenchmarkInferNDJSONObserved(b *testing.B) {
	g, _ := dataset.New("twitter")
	data := dataset.NDJSON(g, benchScale(), 1)
	c := jsi.NewCollector()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := jsi.InferNDJSON(data, jsi.Options{Collector: c}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferFileStreaming measures the bounded-memory chunked file
// pipeline end to end.
func BenchmarkInferFileStreaming(b *testing.B) {
	g, _ := dataset.New("twitter")
	path := b.TempDir() + "/bench.ndjson"
	data := dataset.NDJSON(g, 2000, 1)
	if err := os.WriteFile(path, data, 0o600); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := jsi.InferFile(path, jsi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfile measures statistics-enriched profiling per record.
func BenchmarkProfile(b *testing.B) {
	g, _ := dataset.New("nytimes")
	data := dataset.NDJSON(g, 1000, 1)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := jsi.ProfileNDJSON(data, jsi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbstraction measures the key-abstraction pass on a hostile
// fused schema.
func BenchmarkAbstraction(b *testing.B) {
	g, _ := dataset.New("wikidata")
	res, err := experiments.RunPipelineOverNDJSON(context.Background(), dataset.NDJSON(g, 1000, 1), experiments.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Fused.Size()), "input-size")
	var out types.Type
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = abstraction.Abstract(res.Fused, abstraction.Options{})
	}
	b.ReportMetric(float64(out.Size()), "output-size")
}
