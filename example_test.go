package jsoninference_test

import (
	"fmt"
	"log"

	jsi "repro"
)

// The schema of a small heterogeneous collection: union types where
// kinds mix, optional fields where keys come and go, repeated types for
// arrays.
func ExampleInferNDJSON() {
	data := []byte(`{"id": 1, "tags": ["a", "b"]}
{"id": "x1", "tags": [7], "draft": true}
`)
	schema, stats, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(schema)
	fmt.Println(stats.Records, "records,", stats.DistinctTypes, "distinct types")
	// Output:
	// {draft: Bool?, id: Num + Str, tags: [(Num + Str)*]}
	// 2 records, 2 distinct types
}

// Fusing two schemas gives the schema of the concatenated collections —
// the incremental-maintenance property of the paper's Section 1.
func ExampleSchema_Fuse() {
	yesterday, _, err := jsi.InferNDJSON([]byte(`{"id": 1}`), jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	today, _, err := jsi.InferNDJSON([]byte(`{"id": 2, "flag": true}`), jsi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(yesterday.Fuse(today))
	// Output:
	// {flag: Bool?, id: Num}
}

// Conformance checking is the semantic membership V ∈ ⟦T⟧ of the
// paper's Section 4.
func ExampleSchema_Contains() {
	schema, err := jsi.ParseSchema("{id: Num, name: Str?}")
	if err != nil {
		log.Fatal(err)
	}
	ok, _ := schema.Contains([]byte(`{"id": 7}`))
	fmt.Println(ok)
	ok, _ = schema.Contains([]byte(`{"id": "seven"}`))
	fmt.Println(ok)
	// Output:
	// true
	// false
}

// Wildcard expansion resolves a path against the schema at compile
// time: the query-optimization motivation of the paper's Section 1.
func ExampleSchema_ExpandPath() {
	schema, err := jsi.ParseSchema("{user: {id: Num, email: Str?}, tags: [Str*]}")
	if err != nil {
		log.Fatal(err)
	}
	matches, err := schema.ExpandPath("$.user.*")
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("%s : %s (may miss: %v)\n", m.Path, m.Type, m.CanMiss)
	}
	// Output:
	// $.user.email : Str (may miss: true)
	// $.user.id : Num (may miss: false)
}

// Key abstraction rewrites dictionary-like records (identifiers as
// keys) into {*: T} map types.
func ExampleSchema_AbstractKeys() {
	schema, err := jsi.ParseSchema(
		"{P10: {v: Num}, P11: {v: Num}, P12: {v: Num}, P13: {v: Num}}")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(schema.AbstractKeys(4))
	// Output:
	// {*: {v: Num}}
}

// A Repository maintains schemas incrementally: each batch is inferred
// once and its schema fused into a named partition in O(schema-size) —
// by associativity the global schema equals a single offline inference
// over everything appended. This is the primitive cmd/schemad serves
// per tenant.
func ExampleRepository() {
	repo := jsi.NewRepository()

	for part, batch := range map[string][]byte{
		"2024-01": []byte(`{"id": 1, "tags": ["a"]}`),
		"2024-02": []byte(`{"id": "x", "draft": true}`),
	} {
		schema, stats, err := jsi.InferNDJSON(batch, jsi.Options{})
		if err != nil {
			log.Fatal(err)
		}
		repo.Append(part, schema, stats.Records)
	}

	fmt.Println(repo.Schema())
	fmt.Println(repo.Partitions(), repo.Count(), "records")
	// Output:
	// {draft: Bool?, id: Num + Str, tags: [Str*]?}
	// [2024-01 2024-02] 2 records
}
