package jsoninference_test

import (
	"strings"
	"testing"

	jsi "repro"
)

func mustParse(t *testing.T, src string) *jsi.Schema {
	t.Helper()
	s, err := jsi.ParseSchema(src)
	if err != nil {
		t.Fatalf("ParseSchema(%q): %v", src, err)
	}
	return s
}

func TestSchemaDiffFrom(t *testing.T) {
	old := mustParse(t, "{id: Num, name: Str, tags: [Str*]}")
	new := mustParse(t, "{id: Num + Str, name: Str?, added: Bool}")

	changes := new.DiffFrom(old)
	got := make(map[string]string, len(changes))
	for _, c := range changes {
		got[c.Path+" "+c.Kind] = c.Old + "->" + c.New
	}
	for _, want := range []string{
		"./added added",
		"./id type-changed",
		"./name made-optional",
		"./tags removed",
	} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing change %q in %v", want, changes)
		}
	}
	for _, c := range changes {
		if c.String() == "" {
			t.Errorf("empty rendering for %+v", c)
		}
	}
}

func TestSchemaDiffFromNilAndIdentical(t *testing.T) {
	s := mustParse(t, "{id: Num}")
	if changes := s.DiffFrom(s); len(changes) != 0 {
		t.Errorf("self-diff = %v, want empty", changes)
	}
	changes := s.DiffFrom(nil)
	if len(changes) == 0 {
		t.Fatal("diff from nil is empty")
	}
	if changes[0].Kind != "type-changed" && changes[0].Kind != "added" {
		t.Errorf("diff from nil kind = %q", changes[0].Kind)
	}
}

func TestSchemaDiffFromSorted(t *testing.T) {
	old := mustParse(t, "{}")
	new := mustParse(t, "{b: Num, a: Str, c: Bool}")
	changes := new.DiffFrom(old)
	for i := 1; i < len(changes); i++ {
		if strings.Compare(changes[i-1].Path, changes[i].Path) > 0 {
			t.Errorf("changes not sorted by path: %v", changes)
		}
	}
}
