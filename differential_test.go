package jsoninference_test

// Differential oracle: the parallel chunked pipeline must be
// byte-identical to a sequential single-worker run. The paper's
// distribution strategy stands on the fusion laws (Theorems 5.4 and
// 5.5) — associativity and commutativity make chunking, scheduling and
// worker count invisible in the result — so any divergence here is a
// bug in the engine or in fusion, caught by comparing canonical schema
// bytes rather than trusting either side.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	jsi "repro"
	"repro/internal/dataset"
)

// canonical renders a schema to its canonical codec bytes.
func canonical(t *testing.T, s *jsi.Schema) []byte {
	t.Helper()
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	return b
}

// TestDifferentialParallelVsSequential compares, per dataset, a
// 1-worker in-memory reference run against parallel in-memory runs,
// the streaming decoder, and the bounded-memory file pipeline with a
// deliberately tiny chunk size (many more chunks than workers).
func TestDifferentialParallelVsSequential(t *testing.T) {
	dir := t.TempDir()
	for _, name := range dataset.Names() {
		g, err := dataset.New(name)
		if err != nil {
			t.Fatal(err)
		}
		data := dataset.NDJSON(g, 300, 59)

		refSchema, refStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: sequential reference: %v", name, err)
		}
		ref := canonical(t, refSchema)

		check := func(label string, s *jsi.Schema, st jsi.Stats, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: %s: %v", name, label, err)
			}
			if got := canonical(t, s); !bytes.Equal(got, ref) {
				t.Errorf("%s: %s schema diverged\n got: %s\nwant: %s", name, label, got, ref)
			}
			if st.Records != refStats.Records {
				t.Errorf("%s: %s Records = %d, want %d", name, label, st.Records, refStats.Records)
			}
		}

		for _, workers := range []int{2, 8} {
			for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
				label := fmt.Sprintf("parallel %d dedup=%s", workers, dedup)
				s, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: workers, Dedup: dedup})
				check(label, s, st, err)
			}
		}

		for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
			s, st, err := jsi.Infer(context.Background(), jsi.FromReader(bytes.NewReader(data)), jsi.Options{Dedup: dedup})
			check("streaming dedup="+dedup.String(), s, st, err)
		}

		path := filepath.Join(dir, name+".ndjson")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
			s, st, err := jsi.Infer(context.Background(), jsi.FromFile(path), jsi.Options{Workers: 8, ChunkBytes: 1 << 10, Dedup: dedup})
			check("file pipeline dedup="+dedup.String(), s, st, err)
		}
	}
}

// TestDifferentialTaggedUnions re-runs the parallel-vs-sequential
// oracle with the tagged-union policy on. The Variants merge is part of
// the fusion monoid, so the same guarantee must hold: worker count,
// dedup mode and source (in-memory, streaming, file pipeline) are
// invisible in the canonical schema bytes. The test also requires that
// at least one dataset actually infers a variants node, so it cannot
// pass vacuously with the policy silently disabled.
func TestDifferentialTaggedUnions(t *testing.T) {
	dir := t.TempDir()
	sawVariants := false
	for _, name := range dataset.Names() {
		g, err := dataset.New(name)
		if err != nil {
			t.Fatal(err)
		}
		data := dataset.NDJSON(g, 300, 59)

		opts := func(extra jsi.Options) jsi.Options {
			extra.TaggedUnions = true
			return extra
		}
		refSchema, refStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts(jsi.Options{Workers: 1}))
		if err != nil {
			t.Fatalf("%s: tagged sequential reference: %v", name, err)
		}
		ref := canonical(t, refSchema)
		if bytes.Contains(ref, []byte(`"variants"`)) {
			sawVariants = true
		}

		check := func(label string, s *jsi.Schema, st jsi.Stats, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: tagged %s: %v", name, label, err)
			}
			if got := canonical(t, s); !bytes.Equal(got, ref) {
				t.Errorf("%s: tagged %s schema diverged\n got: %s\nwant: %s", name, label, got, ref)
			}
			if st.Records != refStats.Records {
				t.Errorf("%s: tagged %s Records = %d, want %d", name, label, st.Records, refStats.Records)
			}
		}

		for _, workers := range []int{2, 8} {
			for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
				label := fmt.Sprintf("parallel %d dedup=%s", workers, dedup)
				s, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts(jsi.Options{Workers: workers, Dedup: dedup}))
				check(label, s, st, err)
			}
		}

		for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
			s, st, err := jsi.Infer(context.Background(), jsi.FromReader(bytes.NewReader(data)), opts(jsi.Options{Dedup: dedup}))
			check("streaming dedup="+dedup.String(), s, st, err)
		}

		path := filepath.Join(dir, name+".ndjson")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
			s, st, err := jsi.Infer(context.Background(), jsi.FromFile(path), opts(jsi.Options{Workers: 8, ChunkBytes: 1 << 10, Dedup: dedup}))
			check("file pipeline dedup="+dedup.String(), s, st, err)
		}

		// The JSON Schema export of a tagged run must also be stable
		// across execution strategies (oneOf branch order is canonical).
		refJS, err := refSchema.JSONSchema()
		if err != nil {
			t.Fatalf("%s: JSONSchema: %v", name, err)
		}
		parSchema, _, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts(jsi.Options{Workers: 8, Dedup: jsi.DedupOn}))
		if err != nil {
			t.Fatalf("%s: tagged parallel for JSONSchema: %v", name, err)
		}
		parJS, err := parSchema.JSONSchema()
		if err != nil {
			t.Fatalf("%s: JSONSchema parallel: %v", name, err)
		}
		if !bytes.Equal(parJS, refJS) {
			t.Errorf("%s: tagged JSON Schema export diverged\n got: %s\nwant: %s", name, parJS, refJS)
		}
	}
	if !sawVariants {
		t.Error("no dataset inferred a variants node: the tagged policy never fired")
	}
}

// TestDifferentialEnrichmentTransparent pins the two enrichment
// contracts on every dataset generator. First, enrichment is purely
// additive: with Options.Enrich on, the structural schema bytes and
// the full Stats struct are identical to a run without it. Second,
// enrichment is deterministic: the annotated JSON Schema and the
// per-path report are byte-identical whatever the worker count, chunk
// size, or source (in-memory, streaming, file pipeline), because the
// enrichment lattice merges under the same commutative-monoid laws as
// fusion.
func TestDifferentialEnrichmentTransparent(t *testing.T) {
	dir := t.TempDir()
	enrich := []string{"all"}
	for _, name := range dataset.Names() {
		g, err := dataset.New(name)
		if err != nil {
			t.Fatal(err)
		}
		data := dataset.NDJSON(g, 300, 59)

		plainSchema, plainStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: plain reference: %v", name, err)
		}
		refSchema, refStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data),
			jsi.Options{Workers: 1, Enrich: enrich})
		if err != nil {
			t.Fatalf("%s: enriched reference: %v", name, err)
		}

		// Additive: same structural bytes, same stats, field for field.
		if got, want := canonical(t, refSchema), canonical(t, plainSchema); !bytes.Equal(got, want) {
			t.Errorf("%s: enrichment changed the structural schema\n got: %s\nwant: %s", name, got, want)
		}
		if refStats != plainStats {
			t.Errorf("%s: enrichment changed Stats\n got: %+v\nwant: %+v", name, refStats, plainStats)
		}
		if !refSchema.Enriched() {
			t.Fatalf("%s: enriched run reports Enriched() = false", name)
		}

		wantJS, err := refSchema.JSONSchema()
		if err != nil {
			t.Fatal(err)
		}
		wantReport, err := refSchema.EnrichmentJSON()
		if err != nil {
			t.Fatal(err)
		}

		check := func(label string, s *jsi.Schema, st jsi.Stats, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: %s: %v", name, label, err)
			}
			js, jerr := s.JSONSchema()
			if jerr != nil {
				t.Fatal(jerr)
			}
			if !bytes.Equal(js, wantJS) {
				t.Errorf("%s: %s annotated schema diverged\n got: %s\nwant: %s", name, label, js, wantJS)
			}
			rep, rerr := s.EnrichmentJSON()
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !bytes.Equal(rep, wantReport) {
				t.Errorf("%s: %s enrichment report diverged\n got: %s\nwant: %s", name, label, rep, wantReport)
			}
			if st.Records != refStats.Records {
				t.Errorf("%s: %s Records = %d, want %d", name, label, st.Records, refStats.Records)
			}
		}

		for _, workers := range []int{2, 8} {
			for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
				s, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data),
					jsi.Options{Workers: workers, Dedup: dedup, Enrich: enrich})
				check("parallel dedup="+dedup.String(), s, st, err)
			}
		}

		s, st, err := jsi.Infer(context.Background(), jsi.FromReader(bytes.NewReader(data)),
			jsi.Options{Enrich: enrich})
		check("streaming", s, st, err)

		path := filepath.Join(dir, name+".ndjson")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		s, st, err = jsi.Infer(context.Background(), jsi.FromFile(path),
			jsi.Options{Workers: 8, ChunkBytes: 1 << 10, Enrich: enrich})
		check("file pipeline", s, st, err)
	}
}

// TestDifferentialDedupStatsAndMetrics pins the dedup path's contract
// beyond schema bytes: at Workers 1, the full Stats struct matches the
// default path field for field (DistinctTypes exact on both), and the
// metrics snapshots are identical once timing and cache counters are
// stripped — infer_records, infer_chunks, the fusion-growth histogram,
// everything else must not move.
func TestDifferentialDedupStatsAndMetrics(t *testing.T) {
	for _, name := range dataset.Names() {
		g, err := dataset.New(name)
		if err != nil {
			t.Fatal(err)
		}
		data := dataset.NDJSON(g, 300, 101)

		run := func(dedup jsi.DedupMode) (*jsi.Schema, jsi.Stats, jsi.Metrics) {
			c := jsi.NewCollector()
			s, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 1, Dedup: dedup, Collector: c})
			if err != nil {
				t.Fatalf("%s (dedup=%v): %v", name, dedup, err)
			}
			return s, st, c.Metrics()
		}
		refSchema, refStats, refMetrics := run(jsi.DedupOff)
		dedupSchema, dedupStats, dedupMetrics := run(jsi.DedupOn)

		if !bytes.Equal(canonical(t, refSchema), canonical(t, dedupSchema)) {
			t.Errorf("%s: dedup schema diverged", name)
		}
		if refStats != dedupStats {
			t.Errorf("%s: stats diverged\n got: %+v\nwant: %+v", name, dedupStats, refStats)
		}
		autoSchema, autoStats, _ := run(jsi.DedupAuto)
		if !bytes.Equal(canonical(t, refSchema), canonical(t, autoSchema)) {
			t.Errorf("%s: auto schema diverged", name)
		}
		if refStats != autoStats {
			t.Errorf("%s: auto stats diverged\n got: %+v\nwant: %+v", name, autoStats, refStats)
		}
		want, err := refMetrics.WithoutTimings().WithoutCache().MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		got, err := dedupMetrics.WithoutTimings().WithoutCache().MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: non-cache metrics diverged\n got: %s\nwant: %s", name, got, want)
		}

		// The dedup run must actually have recorded its cache counters,
		// and a single-worker fault-free run pins the exact identities:
		// every record interns (hits+misses counts every Canon/intern
		// probe) and intern_misses is the table's distinct-node count.
		counters := dedupMetrics.Counters
		if counters["intern_hits"] == 0 || counters["intern_misses"] == 0 {
			t.Errorf("%s: intern counters missing: %v", name, counters)
		}
		if counters["fuse_cache_hits"]+counters["fuse_cache_misses"] == 0 {
			t.Errorf("%s: fuse cache counters missing", name)
		}
		if refMetrics.Counters["intern_hits"] != 0 {
			t.Errorf("%s: default path recorded intern counters", name)
		}
	}
}

// TestDifferentialDedupExactDistinctAcrossSources: the dedup pipeline
// reports the SAME exact DistinctTypes from the in-memory, streaming,
// single-file and multi-file paths — the paths where the default
// pipeline reports zero or only a lower bound.
func TestDifferentialDedupExactDistinctAcrossSources(t *testing.T) {
	dir := t.TempDir()
	g, err := dataset.New("github")
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.NDJSON(g, 400, 7)

	_, want, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 1, Dedup: jsi.DedupOn})
	if err != nil {
		t.Fatal(err)
	}
	if want.DistinctTypes <= 0 {
		t.Fatalf("reference distinct count not positive: %+v", want)
	}

	_, st, err := jsi.Infer(context.Background(), jsi.FromReader(bytes.NewReader(data)), jsi.Options{Dedup: jsi.DedupOn})
	if err != nil {
		t.Fatal(err)
	}
	if st.DistinctTypes != want.DistinctTypes {
		t.Errorf("streaming dedup DistinctTypes = %d, want %d", st.DistinctTypes, want.DistinctTypes)
	}

	// Split the buffer across two files; identity-merged multisets must
	// reproduce the exact global count, not a per-file bound.
	lines := bytes.SplitAfter(data, []byte("\n"))
	mid := len(lines) / 2
	paths := []string{filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.ndjson")}
	if err := os.WriteFile(paths[0], bytes.Join(lines[:mid], nil), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[1], bytes.Join(lines[mid:], nil), 0o600); err != nil {
		t.Fatal(err)
	}
	_, st, err = jsi.Infer(context.Background(), jsi.FromFiles(paths...), jsi.Options{Workers: 4, ChunkBytes: 1 << 10, Dedup: jsi.DedupOn})
	if err != nil {
		t.Fatal(err)
	}
	if st.DistinctTypes != want.DistinctTypes {
		t.Errorf("multi-file dedup DistinctTypes = %d, want %d", st.DistinctTypes, want.DistinctTypes)
	}
	if st.Records != want.Records {
		t.Errorf("multi-file dedup Records = %d, want %d", st.Records, want.Records)
	}
}

// TestDifferentialDedupAutoDeterminism pins the adaptive mode's core
// promise at real sample sizes: with enough records per chunk for
// per-chunk sampling to complete and degrade decisions to actually
// fire (wikidata's all-distinct records) — or to settle on the dedup
// path (twitter's repetitive ones) — DedupAuto is byte-identical to
// the fixed dedup reference across 1/4/8 workers and the bytes, file
// and streaming sources. The shared hint makes the *cost* of a chunk
// depend on scheduling; this test is the proof the *result* does not.
func TestDifferentialDedupAutoDeterminism(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"wikidata", "twitter"} {
		g, err := dataset.New(name)
		if err != nil {
			t.Fatal(err)
		}
		data := dataset.NDJSON(g, 1500, 7)
		path := filepath.Join(dir, name+".ndjson")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}

		refSchema, refStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 1, Dedup: jsi.DedupOn})
		if err != nil {
			t.Fatalf("%s: dedup reference: %v", name, err)
		}
		ref := canonical(t, refSchema)

		check := func(label string, s *jsi.Schema, st jsi.Stats, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: %s: %v", name, label, err)
			}
			if got := canonical(t, s); !bytes.Equal(got, ref) {
				t.Errorf("%s: %s schema diverged\n got: %s\nwant: %s", name, label, got, ref)
			}
			if st.Records != refStats.Records || st.DistinctTypes != refStats.DistinctTypes {
				t.Errorf("%s: %s stats: records %d/%d distinct %d/%d", name, label,
					st.Records, refStats.Records, st.DistinctTypes, refStats.DistinctTypes)
			}
			if st.MinTypeSize != refStats.MinTypeSize || st.MaxTypeSize != refStats.MaxTypeSize || st.AvgTypeSize != refStats.AvgTypeSize {
				t.Errorf("%s: %s sizes: min %d/%d max %d/%d avg %v/%v", name, label,
					st.MinTypeSize, refStats.MinTypeSize, st.MaxTypeSize, refStats.MaxTypeSize,
					st.AvgTypeSize, refStats.AvgTypeSize)
			}
		}

		for _, workers := range []int{1, 4, 8} {
			s, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data),
				jsi.Options{Workers: workers, Dedup: jsi.DedupAuto})
			check(fmt.Sprintf("auto bytes %dw", workers), s, st, err)

			s, st, err = jsi.Infer(context.Background(), jsi.FromFile(path),
				jsi.Options{Workers: workers, ChunkBytes: 8 << 10, Dedup: jsi.DedupAuto})
			check(fmt.Sprintf("auto file %dw", workers), s, st, err)
		}
		s, st, err := jsi.Infer(context.Background(), jsi.FromReader(bytes.NewReader(data)),
			jsi.Options{Dedup: jsi.DedupAuto})
		check("auto streaming", s, st, err)
	}
}
