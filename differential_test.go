package jsoninference_test

// Differential oracle: the parallel chunked pipeline must be
// byte-identical to a sequential single-worker run. The paper's
// distribution strategy stands on the fusion laws (Theorems 5.4 and
// 5.5) — associativity and commutativity make chunking, scheduling and
// worker count invisible in the result — so any divergence here is a
// bug in the engine or in fusion, caught by comparing canonical schema
// bytes rather than trusting either side.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	jsi "repro"
	"repro/internal/dataset"
)

// canonical renders a schema to its canonical codec bytes.
func canonical(t *testing.T, s *jsi.Schema) []byte {
	t.Helper()
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	return b
}

// TestDifferentialParallelVsSequential compares, per dataset, a
// 1-worker in-memory reference run against parallel in-memory runs,
// the streaming decoder, and the bounded-memory file pipeline with a
// deliberately tiny chunk size (many more chunks than workers).
func TestDifferentialParallelVsSequential(t *testing.T) {
	dir := t.TempDir()
	for _, name := range dataset.Names() {
		g, err := dataset.New(name)
		if err != nil {
			t.Fatal(err)
		}
		data := dataset.NDJSON(g, 300, 59)

		refSchema, refStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: sequential reference: %v", name, err)
		}
		ref := canonical(t, refSchema)

		check := func(label string, s *jsi.Schema, st jsi.Stats, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: %s: %v", name, label, err)
			}
			if got := canonical(t, s); !bytes.Equal(got, ref) {
				t.Errorf("%s: %s schema diverged\n got: %s\nwant: %s", name, label, got, ref)
			}
			if st.Records != refStats.Records {
				t.Errorf("%s: %s Records = %d, want %d", name, label, st.Records, refStats.Records)
			}
		}

		for _, workers := range []int{2, 8} {
			s, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: workers})
			check("parallel "+string(rune('0'+workers)), s, st, err)
		}

		s, st, err := jsi.Infer(context.Background(), jsi.FromReader(bytes.NewReader(data)), jsi.Options{})
		check("streaming", s, st, err)

		path := filepath.Join(dir, name+".ndjson")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		s, st, err = jsi.Infer(context.Background(), jsi.FromFile(path), jsi.Options{Workers: 8, ChunkBytes: 1 << 10})
		check("file pipeline", s, st, err)
	}
}
