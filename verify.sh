#!/bin/sh
# verify.sh — the tier-1 gate. Everything CI runs, runnable locally.
#
#   ./verify.sh          build + vet + repolint + tests (with -race)
#   ./verify.sh -norace  same, but skip the race detector (slow machines)
#
# Exits non-zero on the first failure. See docs/ANALYSIS.md for what
# repolint checks and how to suppress a finding.
set -eu

cd "$(dirname "$0")"

race="-race"
if [ "${1:-}" = "-norace" ]; then
    race=""
fi

echo '>> go build ./...'
go build ./...

echo '>> go vet ./...'
go vet ./...

# -stats prints per-analyzer finding counts and wall time to stderr,
# so a slow or newly noisy analyzer is visible in every log.
echo '>> go run ./cmd/repolint -stats ./...'
go run ./cmd/repolint -stats ./...

echo ">> go test ${race} ./..."
# shellcheck disable=SC2086 # race is intentionally empty or one flag
go test ${race} ./...

# The chaos suite stresses the engine's retry/timeout/quarantine
# concurrency, so it always runs under the race detector — even when
# -norace skipped it for the bulk of the suite.
if [ -z "${race}" ]; then
    echo '>> go test -race ./internal/chaos'
    go test -race ./internal/chaos
fi

echo '>> verify.sh: all checks passed'
