package jsoninference_test

// Cross-module integration tests: each one drives several subsystems
// end to end the way a user of the library would, checking the
// properties the paper promises hold across module boundaries.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	jsi "repro"
	"repro/internal/dataset"
	"repro/internal/diff"
	"repro/internal/schemarepo"
	"repro/internal/types"
)

// TestCompletenessAcrossDatasets drives the whole pipeline per dataset
// and checks the paper's completeness guarantee from the outside: every
// record conforms, and sampled witnesses of the schema conform too.
func TestCompletenessAcrossDatasets(t *testing.T) {
	for _, name := range dataset.Names() {
		g, _ := dataset.New(name)
		data := dataset.NDJSON(g, 200, 11)
		schema, stats, err := jsi.InferNDJSON(data, jsi.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.Records != 200 {
			t.Fatalf("%s: records = %d", name, stats.Records)
		}
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			ok, err := schema.Contains([]byte(line))
			if err != nil || !ok {
				t.Fatalf("%s: record rejected by its own schema: %v", name, err)
			}
		}
		for seed := int64(0); seed < 5; seed++ {
			sample, ok := schema.Sample(seed)
			if !ok {
				t.Fatalf("%s: no sample", name)
			}
			conforms, err := schema.Contains(sample)
			if err != nil || !conforms {
				t.Fatalf("%s: sample does not conform: %v", name, err)
			}
		}
	}
}

// TestEquivalenceOfInferencePaths checks that every way of inferring a
// schema — parallel NDJSON, streaming reader, per-file partitions,
// schema repository, profile — agrees on every dataset.
func TestEquivalenceOfInferencePaths(t *testing.T) {
	for _, name := range dataset.PaperNames() {
		g, _ := dataset.New(name)
		data := dataset.NDJSON(g, 150, 23)

		parallel, _, err := jsi.InferNDJSON(data, jsi.Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		streamed, _, err := jsi.InferReader(bytes.NewReader(data), jsi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prof, err := jsi.ProfileNDJSON(data, jsi.Options{})
		if err != nil {
			t.Fatal(err)
		}

		repo := schemarepo.New()
		for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			part := fmt.Sprintf("p%d", i%5)
			s, err := jsi.InferJSON([]byte(line))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := s.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			one, err := jsi.UnmarshalSchemaJSON(raw)
			if err != nil {
				t.Fatal(err)
			}
			_ = one
			if err := appendViaCodec(repo, part, raw); err != nil {
				t.Fatal(err)
			}
		}
		repoSchema := repo.Schema().String()

		if !parallel.Equal(streamed) {
			t.Errorf("%s: parallel != streamed", name)
		}
		if !parallel.Equal(prof.Schema()) {
			t.Errorf("%s: parallel != profile-derived", name)
		}
		if parallel.String() != repoSchema {
			t.Errorf("%s: parallel != repository:\n%s\n%s", name, parallel, repoSchema)
		}
	}
}

// appendViaCodec simulates a distributed writer that only holds schema
// bytes: decode, fuse into the partition.
func appendViaCodec(repo *schemarepo.Repo, part string, raw []byte) error {
	tt, err := types.UnmarshalJSON(raw)
	if err != nil {
		return err
	}
	repo.AppendType(part, tt)
	return nil
}

// TestSchemaEvolutionWorkflow simulates the schema-evolution scenario
// from the related-work discussion: a source changes between two crawls;
// the diff over complete inferred schemas surfaces exactly the changes.
func TestSchemaEvolutionWorkflow(t *testing.T) {
	oldData := []byte(`{"id": 1, "name": "a", "retired_field": true}
{"id": 2, "name": "b", "retired_field": false}
`)
	newData := []byte(`{"id": "uuid-1", "name": "a", "added_field": {"x": 1}}
{"id": "uuid-2", "name": "b"}
`)
	oldSchema, _, err := jsi.InferNDJSON(oldData, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	newSchema, _, err := jsi.InferNDJSON(newData, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oldT, err := types.Parse(oldSchema.String())
	if err != nil {
		t.Fatal(err)
	}
	newT, err := types.Parse(newSchema.String())
	if err != nil {
		t.Fatal(err)
	}
	entries := diff.Compare(oldT, newT)
	byPath := map[string]diff.Kind{}
	for _, e := range entries {
		byPath[e.Path] = e.Kind
	}
	if byPath["./retired_field"] != diff.Removed {
		t.Errorf("missing removal: %v", entries)
	}
	if byPath["./added_field"] != diff.Added {
		t.Errorf("missing addition: %v", entries)
	}
	if byPath["./id"] != diff.TypeChanged {
		t.Errorf("missing id type change: %v", entries)
	}
}

// TestEquivalentSchemas exercises the semantic-equivalence check across
// renderings.
func TestEquivalentSchemas(t *testing.T) {
	a, _ := jsi.ParseSchema("[]")
	b, _ := jsi.ParseSchema("[ε*]")
	if a.Equal(b) {
		t.Error("[] and [ε*] should not be structurally Equal")
	}
	if !a.EquivalentTo(b) || !b.EquivalentTo(a) {
		t.Error("[] and [ε*] should be EquivalentTo each other")
	}
	c, _ := jsi.ParseSchema("[Num*]")
	if a.EquivalentTo(c) {
		t.Error("[] and [Num*] are not equivalent")
	}
	if a.EquivalentTo(nil) {
		t.Error("EquivalentTo(nil) should be false")
	}
}

// TestPositionalPipelineConsistency: the positional policy is consistent
// across the parallel and streaming paths and refines the paper policy
// on real dataset shapes (twitter carries [Num, Num] index pairs).
func TestPositionalPipelineConsistency(t *testing.T) {
	g, _ := dataset.New("twitter")
	data := dataset.NDJSON(g, 200, 31)
	opts := jsi.Options{PreserveTupleArrays: true}
	par, _, err := jsi.InferNDJSON(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	str, _, err := jsi.InferReader(bytes.NewReader(data), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(str) {
		t.Errorf("positional parallel != streaming:\n%s\n%s", par, str)
	}
	paper, _, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !par.SubschemaOf(paper) {
		t.Error("positional schema should refine the paper schema")
	}
	if !strings.Contains(par.String(), "indices: [Num, Num]") {
		t.Errorf("index pairs not preserved positionally:\n%s", par)
	}
}

// TestProjectionDrivenByExpansion wires pathquery's two halves together:
// expand a wildcard to discover paths, project a record to exactly those
// paths, and check the projection conforms to a schema inferred from
// projected data.
func TestProjectionDrivenByExpansion(t *testing.T) {
	g, _ := dataset.New("github")
	data := dataset.NDJSON(g, 120, 41)
	schema, _, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := schema.ExpandPath("$._links.*.href")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("expanded to %d paths: %+v", len(ms), ms)
	}
	paths := make([]string, len(ms))
	for i, m := range ms {
		paths[i] = m.Path
	}
	proj, err := jsi.NewProjection(paths...)
	if err != nil {
		t.Fatal(err)
	}
	line := data[:bytes.IndexByte(data, '\n')]
	got, err := proj.ApplyJSON(line)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), `"href"`) || strings.Contains(string(got), `"title"`) {
		t.Errorf("projection = %s", got)
	}
	if len(got) >= len(line) {
		t.Error("projection did not shrink the record")
	}
}

// TestPathLevelCompleteness is the paper's completeness property stated
// at path granularity: "each path that can be traversed in the
// tree-structure of each input JSON value can be traversed in the
// inferred schema as well" (Section 1). For every root-to-leaf path of
// every record, the path must expand non-emptily against the schema.
func TestPathLevelCompleteness(t *testing.T) {
	for _, name := range dataset.PaperNames() {
		g, _ := dataset.New(name)
		data := dataset.NDJSON(g, 60, 47)
		schema, _, err := jsi.InferNDJSON(data, jsi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			var doc map[string]any
			if err := jsonUnmarshal([]byte(line), &doc); err != nil {
				t.Fatal(err)
			}
			for _, path := range leafPaths("$", doc) {
				ms, err := schema.ExpandPath(path)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(ms) == 0 {
					t.Fatalf("%s: value path %s missing from schema", name, path)
				}
			}
		}
	}
}

func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

// leafPaths enumerates the root-to-leaf paths of a decoded JSON value in
// the pathquery syntax.
func leafPaths(prefix string, v any) []string {
	switch vv := v.(type) {
	case map[string]any:
		if len(vv) == 0 {
			return []string{prefix}
		}
		var out []string
		for k, child := range vv {
			step := "." + k
			if !isBarePathKey(k) {
				step = `["` + k + `"]`
			}
			out = append(out, leafPaths(prefix+step, child)...)
		}
		return out
	case []any:
		if len(vv) == 0 {
			return []string{prefix}
		}
		var out []string
		for _, child := range vv {
			out = append(out, leafPaths(prefix+"[*]", child)...)
		}
		return out
	default:
		return []string{prefix}
	}
}

func isBarePathKey(key string) bool {
	if key == "" {
		return false
	}
	for i, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case (r >= '0' && r <= '9') || r == '-':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
