package jsoninference_test

import (
	"strings"
	"testing"

	jsi "repro"
	"repro/internal/dataset"
)

func TestProfileNDJSON(t *testing.T) {
	data := []byte(`{"id": 1, "name": "ada", "score": 3.5}
{"id": 2, "name": "bob"}
{"id": 3, "name": "eve", "score": 9.5}
`)
	p, err := jsi.ProfileNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Records() != 3 {
		t.Errorf("Records = %d", p.Records())
	}
	out := p.String()
	for _, want := range []string{"profile of 3 values", `"score"? ⟨67%⟩`, "1..3"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
	// The profile's schema equals pipeline inference.
	schema, _, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Schema().Equal(schema) {
		t.Errorf("profile schema %s != inferred %s", p.Schema(), schema)
	}
}

func TestProfileReaderAndMerge(t *testing.T) {
	g, _ := dataset.New("twitter")
	data := dataset.NDJSON(g, 80, 21)
	whole, err := jsi.ProfileNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Split, profile halves via the reader path, merge.
	half := len(data) / 2
	for data[half] != '\n' {
		half++
	}
	a, err := jsi.ProfileReader(strings.NewReader(string(data[:half+1])), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := jsi.ProfileReader(strings.NewReader(string(data[half+1:])), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.Records() != whole.Records() {
		t.Errorf("records %d vs %d", a.Records(), whole.Records())
	}
	if a.String() != whole.String() {
		t.Error("merged profile differs from whole profile")
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := jsi.ProfileNDJSON([]byte(`{"bad`), jsi.Options{}); err == nil {
		t.Error("malformed input accepted")
	}
	if _, err := jsi.ProfileReader(strings.NewReader(`{"a":1} [`), jsi.Options{}); err == nil {
		t.Error("malformed stream accepted")
	}
}

func TestPreserveTupleArrays(t *testing.T) {
	data := []byte(`{"loc": [2.35, 48.85]}
{"loc": [-74.0, 40.7]}
`)
	paper, _, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if paper.String() != "{loc: [Num*]}" {
		t.Errorf("paper schema = %s", paper)
	}
	pos, _, err := jsi.InferNDJSON(data, jsi.Options{PreserveTupleArrays: true})
	if err != nil {
		t.Fatal(err)
	}
	if pos.String() != "{loc: [Num, Num]}" {
		t.Errorf("positional schema = %s", pos)
	}
	// The positional schema is strictly more precise.
	if !pos.SubschemaOf(paper) {
		t.Error("positional schema should be a subschema of the paper schema")
	}
	ok, err := pos.Contains([]byte(`{"loc": [1, 2, 3]}`))
	if err != nil || ok {
		t.Errorf("positional schema accepted a triple: %v %v", ok, err)
	}
	// The streaming path agrees.
	streamed, _, err := jsi.InferReader(strings.NewReader(string(data)), jsi.Options{PreserveTupleArrays: true})
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.Equal(pos) {
		t.Errorf("streaming positional schema %s != %s", streamed, pos)
	}
}

func TestMaxTupleLenOption(t *testing.T) {
	data := []byte(`{"v": [1, 2, 3, 4, 5, 6]}
{"v": [9, 8, 7, 6, 5, 4]}
`)
	def, _, err := jsi.InferNDJSON(data, jsi.Options{PreserveTupleArrays: true})
	if err != nil {
		t.Fatal(err)
	}
	if def.String() != "{v: [Num*]}" {
		t.Errorf("6-tuples should simplify at the default cutoff: %s", def)
	}
	wide, _, err := jsi.InferNDJSON(data, jsi.Options{PreserveTupleArrays: true, MaxTupleLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if wide.String() != "{v: [Num, Num, Num, Num, Num, Num]}" {
		t.Errorf("6-tuples should survive cutoff 8: %s", wide)
	}
}

func TestExpandPath(t *testing.T) {
	schema, err := jsi.ParseSchema("{user: {id: Num, name: Str?}, tags: [{k: Str}*]}")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := schema.ExpandPath("$.user.*")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %+v", ms)
	}
	if ms[0].Path != "$.user.id" || ms[0].Type != "Num" || ms[0].CanMiss {
		t.Errorf("match 0 = %+v", ms[0])
	}
	if ms[1].Path != "$.user.name" || !ms[1].CanMiss {
		t.Errorf("match 1 = %+v", ms[1])
	}
	// Dead path.
	ms, err = schema.ExpandPath("$.nope.deeper")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("dead path matched: %+v", ms)
	}
	// Parse error surfaces.
	if _, err := schema.ExpandPath("no-dollar"); err == nil {
		t.Error("bad path accepted")
	}
}

func TestProjection(t *testing.T) {
	proj, err := jsi.NewProjection("$.headline.main", "$.keywords[*].value")
	if err != nil {
		t.Fatal(err)
	}
	got, err := proj.ApplyJSON([]byte(`{
		"headline": {"main": "Title", "kicker": "drop me"},
		"keywords": [{"rank": 1, "value": "keep"}],
		"body": "enormous text to drop"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"headline":{"main":"Title"},"keywords":[{"value":"keep"}]}`
	if string(got) != want {
		t.Errorf("projection = %s, want %s", got, want)
	}
	if _, err := proj.ApplyJSON([]byte(`{`)); err == nil {
		t.Error("malformed value accepted")
	}
	if _, err := jsi.NewProjection("bad path"); err == nil {
		t.Error("bad projection path accepted")
	}
}

func TestSchemaSample(t *testing.T) {
	schema, err := jsi.ParseSchema("{id: Num, name: Str?, tags: [(Num + Str)*]}")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		sample, ok := schema.Sample(seed)
		if !ok {
			t.Fatal("no sample produced")
		}
		conforms, err := schema.Contains(sample)
		if err != nil {
			t.Fatalf("sample unparseable: %v (%s)", err, sample)
		}
		if !conforms {
			t.Fatalf("sample %s does not conform to %s", sample, schema)
		}
	}
	// Determinism per seed.
	a, _ := schema.Sample(5)
	b, _ := schema.Sample(5)
	if string(a) != string(b) {
		t.Error("Sample not deterministic for a fixed seed")
	}
	if _, ok := jsi.EmptySchema().Sample(1); ok {
		t.Error("ε should produce no sample")
	}
}

func TestSampleOfInferredSchemaConforms(t *testing.T) {
	g, _ := dataset.New("github")
	schema, _, err := jsi.InferNDJSON(dataset.NDJSON(g, 100, 17), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		sample, ok := schema.Sample(seed)
		if !ok {
			t.Fatal("no sample")
		}
		conforms, err := schema.Contains(sample)
		if err != nil || !conforms {
			t.Fatalf("seed %d: conforms=%v err=%v", seed, conforms, err)
		}
	}
}

func TestExpandOnInferredTwitterSchema(t *testing.T) {
	g, _ := dataset.New("twitter")
	schema, _, err := jsi.InferNDJSON(dataset.NDJSON(g, 300, 5), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := schema.ExpandPath("$.entities.hashtags[*].text")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Type != "Str" {
		t.Errorf("hashtag text = %+v", ms)
	}
}

func TestAbstractKeys(t *testing.T) {
	g, _ := dataset.New("wikidata")
	schema, _, err := jsi.InferNDJSON(dataset.NDJSON(g, 200, 13), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	abstracted := schema.AbstractKeys(0)
	if abstracted.Size() > schema.Size()/4 {
		t.Errorf("abstraction saved too little: %d -> %d", schema.Size(), abstracted.Size())
	}
	if !schema.SubschemaOf(abstracted) {
		t.Error("abstraction must be a sound widening")
	}
	if !strings.Contains(abstracted.String(), "{*:") {
		t.Errorf("no map types in %s", abstracted)
	}
	// Original records still conform.
	sample, ok := schema.Sample(1)
	if !ok {
		t.Fatal("no sample")
	}
	conforms, err := abstracted.Contains(sample)
	if err != nil || !conforms {
		t.Errorf("sample of concrete schema rejected by abstracted one: %v", err)
	}
}

func TestProfileCodecFacade(t *testing.T) {
	g, _ := dataset.New("github")
	p, err := jsi.ProfileNDJSON(dataset.NDJSON(g, 40, 3), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := jsi.UnmarshalProfileJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != p.String() || back.Records() != p.Records() {
		t.Error("profile codec round trip differs")
	}
	if !back.Schema().Equal(p.Schema()) {
		t.Error("derived schema differs after round trip")
	}
	if _, err := jsi.UnmarshalProfileJSON([]byte("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}
