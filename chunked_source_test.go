package jsoninference_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	jsi "repro"
)

// TestFromChunkedReaderMatchesBytes pins the associativity guarantee
// for the streaming-chunked source: the schema and stats of a chunked
// stream equal those of the same bytes inferred in memory.
func TestFromChunkedReaderMatchesBytes(t *testing.T) {
	_, data := manyChunks(t, 500)
	opts := jsi.Options{Workers: 3, ChunkBytes: 8 << 10}
	ctx := context.Background()

	want, wantStats, err := jsi.Infer(ctx, jsi.FromBytes(data), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
		o := opts
		o.Dedup = dedup
		got, gotStats, err := jsi.Infer(ctx, jsi.FromChunkedReader(bytes.NewReader(data)), o)
		if err != nil {
			t.Fatalf("dedup=%v: %v", dedup, err)
		}
		if got.String() != want.String() {
			t.Errorf("dedup=%v: schema = %s, want %s", dedup, got, want)
		}
		if gotStats.Records != wantStats.Records {
			t.Errorf("dedup=%v: records = %d, want %d", dedup, gotStats.Records, wantStats.Records)
		}
		if gotStats.Bytes != int64(len(data)) {
			t.Errorf("dedup=%v: bytes = %d, want %d", dedup, gotStats.Bytes, len(data))
		}
	}
}

// TestFromChunkedReaderLineEndings closes the coverage gap for the two
// real-world NDJSON framing variants the chunked reader must absorb:
// CRLF line terminators (the \r is insignificant whitespace to the
// lexer, not part of any value) and a final record with no trailing
// newline at all (ChunkLines must flush the unterminated tail at EOF
// rather than drop it). Both must infer the same schema and record
// count as the canonical LF-terminated buffer, including across chunk
// boundaries (tiny ChunkBytes) and on both pipelines.
func TestFromChunkedReaderLineEndings(t *testing.T) {
	const n = 200
	var lf, crlf, noFinalNL bytes.Buffer
	for i := 0; i < n; i++ {
		rec := fmt.Sprintf(`{"id": %d, "tag": ["t%d"]}`, i, i%7)
		lf.WriteString(rec + "\n")
		crlf.WriteString(rec + "\r\n")
		noFinalNL.WriteString(rec)
		if i != n-1 {
			noFinalNL.WriteString("\n")
		}
	}
	ctx := context.Background()
	want, wantStats, err := jsi.Infer(ctx, jsi.FromBytes(lf.Bytes()), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		label string
		data  []byte
	}{
		{"crlf", crlf.Bytes()},
		{"no final newline", noFinalNL.Bytes()},
		{"crlf, unterminated tail", bytes.TrimSuffix(crlf.Bytes(), []byte("\r\n"))},
	} {
		for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
			opts := jsi.Options{Workers: 3, ChunkBytes: 256, Dedup: dedup}
			got, gotStats, err := jsi.Infer(ctx, jsi.FromChunkedReader(bytes.NewReader(tc.data)), opts)
			if err != nil {
				t.Fatalf("%s (dedup=%v): %v", tc.label, dedup, err)
			}
			if got.String() != want.String() {
				t.Errorf("%s (dedup=%v): schema = %s, want %s", tc.label, dedup, got, want)
			}
			if gotStats.Records != wantStats.Records {
				t.Errorf("%s (dedup=%v): records = %d, want %d", tc.label, dedup, gotStats.Records, wantStats.Records)
			}
			if gotStats.Bytes != int64(len(tc.data)) {
				t.Errorf("%s (dedup=%v): bytes = %d, want %d", tc.label, dedup, gotStats.Bytes, len(tc.data))
			}
		}
	}
}

// TestFromChunkedReaderCancellation cancels mid-stream and asserts a
// clean return with no leaked goroutines.
func TestFromChunkedReaderCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := jsi.Options{Workers: 2, ChunkBytes: 4 << 10,
		Progress: func(jsi.Metrics) { cancel() }}
	src := jsi.FromChunkedReader(endlessReader{record: []byte(`{"a":1}` + "\n")})
	if _, _, err := jsi.Infer(ctx, src, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkNoLeakedGoroutines(t, before)
}

// TestFromChunkedReaderQuarantine: malformed records quarantine their
// chunk under OnErrorSkip instead of killing the stream.
func TestFromChunkedReaderQuarantine(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 2000; i++ {
		if i == 999 {
			buf.WriteString("{broken\n")
			continue
		}
		fmt.Fprintf(&buf, `{"id": %d}`+"\n", i)
	}
	opts := jsi.Options{ChunkBytes: 1 << 10, OnError: jsi.OnErrorSkip}
	schema, stats, err := jsi.Infer(context.Background(), jsi.FromChunkedReader(&buf), opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuarantinedChunks != 1 {
		t.Errorf("quarantined chunks = %d, want 1", stats.QuarantinedChunks)
	}
	if want := "{id: Num}"; schema.String() != want {
		t.Errorf("schema = %s, want %s", schema, want)
	}

	// The same stream under the default policy fails.
	buf.Reset()
	buf.WriteString(`{"id": 1}` + "\n" + "{broken\n")
	if _, _, err := jsi.Infer(context.Background(), jsi.FromChunkedReader(&buf), jsi.Options{}); err == nil {
		t.Error("default policy accepted malformed input")
	}
}

// failingReader fails after yielding some bytes, standing in for a
// network stream that drops mid-request.
type failingReader struct {
	data []byte
	err  error
}

func (r *failingReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestFromChunkedReaderFeedError: an I/O failure of the stream
// surfaces as *FeedError, distinguishable from decode errors.
func TestFromChunkedReaderFeedError(t *testing.T) {
	cause := errors.New("connection reset")
	src := jsi.FromChunkedReader(&failingReader{data: []byte(`{"a":1}` + "\n"), err: cause})
	_, _, err := jsi.Infer(context.Background(), src, jsi.Options{})
	var fe *jsi.FeedError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FeedError", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("errors.Is(err, cause) = false; err = %v", err)
	}
	if fe.Path != "" {
		t.Errorf("FeedError.Path = %q, want empty (not a file)", fe.Path)
	}
}

// TestFromChunkedReaderEmpty: an empty stream yields the empty schema.
func TestFromChunkedReaderEmpty(t *testing.T) {
	schema, stats, err := jsi.Infer(context.Background(), jsi.FromChunkedReader(bytes.NewReader(nil)), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !schema.IsEmpty() || stats.Records != 0 {
		t.Errorf("schema = %s, records = %d; want empty, 0", schema, stats.Records)
	}
}
