package jsoninference

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/mapreduce"
	"repro/internal/stats"
	"repro/internal/types"
	"repro/internal/value"
)

// Options tune the inference pipeline.
type Options struct {
	// Workers bounds the parallelism of the in-memory pipeline; zero
	// means one worker per CPU.
	Workers int
	// MaxDepth bounds value nesting (protection against depth bombs);
	// zero means the parser default (512).
	MaxDepth int
	// PreserveTupleArrays enables the positional array extension
	// (Section 7 of the paper): arrays that always have the same small
	// length keep one type per position instead of collapsing to [T*].
	PreserveTupleArrays bool
	// MaxTupleLen bounds the preserved tuple length (default 4); only
	// meaningful with PreserveTupleArrays.
	MaxTupleLen int
	// ChunkBytes is the chunk size of InferFile's streaming partitioner;
	// zero means 4 MiB.
	ChunkBytes int
}

// fusionOptions translates the Options into a fusion policy.
func (o Options) fusionOptions() fusion.Options {
	return fusion.Options{PreserveTuples: o.PreserveTupleArrays, MaxTupleLen: o.MaxTupleLen}
}

// Stats summarizes an inference run — the same measurements the paper
// reports per dataset in Tables 2-5.
type Stats struct {
	// Records is the number of JSON values typed.
	Records int64
	// Bytes is the number of input bytes consumed.
	Bytes int64
	// DistinctTypes is the number of distinct types the Map phase
	// produced.
	DistinctTypes int
	// MinTypeSize, MaxTypeSize and AvgTypeSize describe the sizes of the
	// per-value types; compare with Schema.Size to judge succinctness.
	MinTypeSize, MaxTypeSize int
	AvgTypeSize              float64
}

// InferValue infers the schema of a single Go value of the shapes
// encoding/json produces (nil, bool, float64, string, map[string]any,
// []any, plus other Go numeric types).
func InferValue(v any) (*Schema, error) {
	cv, err := value.FromGo(v)
	if err != nil {
		return nil, fmt.Errorf("jsoninference: %w", err)
	}
	return newSchema(fusion.Simplify(infer.Infer(cv))), nil
}

// InferJSON infers the schema of exactly one JSON value.
func InferJSON(data []byte) (*Schema, error) {
	v, err := jsontext.ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("jsoninference: %w", err)
	}
	return newSchema(fusion.Simplify(infer.Infer(v))), nil
}

// InferNDJSON infers the schema of a collection of whitespace-separated
// JSON values (one per line or concatenated), running the Map phase in
// parallel and fusing the results.
func InferNDJSON(data []byte, opts Options) (*Schema, Stats, error) {
	res, err := experiments.RunPipelineOverNDJSON(data, opts.experimentsConfig())
	if err != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: %w", err)
	}
	return newSchema(res.Fused), pipelineStats(res), nil
}

// InferReader infers the schema of a stream of JSON values with constant
// memory: values are typed and fused one at a time, never materialized
// as a whole. Use this for inputs too large to hold in memory; use
// InferNDJSON when the bytes are available for parallel processing.
func InferReader(r io.Reader, opts Options) (*Schema, Stats, error) {
	dec := infer.NewDecoder(r, jsontext.Options{MaxDepth: opts.MaxDepth})
	fz := opts.fusionOptions()
	acc := types.Type(types.Empty)
	var st Stats
	for {
		t, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, Stats{}, fmt.Errorf("jsoninference: record %d: %w", st.Records+1, err)
		}
		size := t.Size()
		if st.Records == 0 || size < st.MinTypeSize {
			st.MinTypeSize = size
		}
		if size > st.MaxTypeSize {
			st.MaxTypeSize = size
		}
		st.AvgTypeSize += float64(size)
		st.Records++
		acc = fz.Fuse(acc, fz.Simplify(t))
	}
	if st.Records > 0 {
		st.AvgTypeSize /= float64(st.Records)
	}
	st.Bytes = dec.Offset()
	// Streaming keeps constant memory, so it cannot count distinct
	// types; DistinctTypes stays zero here.
	return newSchema(acc), st, nil
}

// InferFile infers the schema of one NDJSON file with bounded memory:
// the file streams through line-aligned chunks (a few MB each) that are
// inferred and fused by parallel workers while the file is still being
// read. Use this for files too large for InferNDJSON's in-memory
// partitioning; the resulting schema is identical (associativity +
// commutativity), which the tests verify.
func InferFile(path string, opts Options) (*Schema, Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: %w", err)
	}
	//lint:ignore droppederr the file is only read; a close error cannot lose data
	defer f.Close()

	type chunkOut struct {
		sum   *stats.Summary
		fused types.Type
	}
	fz := opts.fusionOptions()
	src := make(chan []byte)
	var readErr error
	go func() {
		defer close(src)
		readErr = jsontext.ChunkLines(f, opts.ChunkBytes, func(chunk []byte) error {
			src <- chunk
			return nil
		})
	}()
	mapFn := func(_ context.Context, chunk []byte) (chunkOut, error) {
		ts, err := infer.InferAll(chunk)
		if err != nil {
			return chunkOut{}, err
		}
		sum := &stats.Summary{}
		acc := types.Type(types.Empty)
		for _, t := range ts {
			sum.Add(t)
			acc = fz.Fuse(acc, fz.Simplify(t))
		}
		return chunkOut{sum: sum, fused: acc}, nil
	}
	combine := func(a, b chunkOut) chunkOut {
		if a.sum == nil {
			return b
		}
		if b.sum == nil {
			return a
		}
		a.sum.Merge(b.sum)
		return chunkOut{sum: a.sum, fused: fz.Fuse(a.fused, b.fused)}
	}
	out, _, err := mapreduce.Run(context.Background(), src, mapFn, combine, chunkOut{}, mapreduce.Config{Workers: opts.Workers})
	if err != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: %s: %w", path, err)
	}
	if readErr != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: reading %s: %w", path, readErr)
	}
	st := Stats{}
	schema := EmptySchema()
	if out.sum != nil {
		st = Stats{
			Records:       out.sum.Count(),
			DistinctTypes: out.sum.Distinct(),
			MinTypeSize:   out.sum.MinSize(),
			MaxTypeSize:   out.sum.MaxSize(),
			AvgTypeSize:   out.sum.AvgSize(),
		}
		schema = newSchema(out.fused)
	}
	if info, err := f.Stat(); err == nil {
		st.Bytes = info.Size()
	}
	return schema, st, nil
}

// InferFiles infers one schema across several NDJSON files, treating
// each file as a partition: files are processed independently and their
// schemas fused, the strategy of Section 6.2's partitioning experiment.
func InferFiles(paths []string, opts Options) (*Schema, Stats, error) {
	acc := EmptySchema()
	var total Stats
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("jsoninference: %w", err)
		}
		schema, st, err := InferNDJSON(data, opts)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("jsoninference: %s: %w", path, err)
		}
		acc = acc.Fuse(schema)
		total = mergeStats(total, st)
	}
	return acc, total, nil
}

func pipelineStats(res experiments.PipelineResult) Stats {
	return Stats{
		Records:       res.Summary.Count(),
		Bytes:         res.Bytes,
		DistinctTypes: res.Summary.Distinct(),
		MinTypeSize:   res.Summary.MinSize(),
		MaxTypeSize:   res.Summary.MaxSize(),
		AvgTypeSize:   res.Summary.AvgSize(),
	}
}

func mergeStats(a, b Stats) Stats {
	out := a
	if a.Records == 0 || (b.Records > 0 && b.MinTypeSize < a.MinTypeSize) {
		out.MinTypeSize = b.MinTypeSize
	}
	if b.MaxTypeSize > a.MaxTypeSize {
		out.MaxTypeSize = b.MaxTypeSize
	}
	if a.Records+b.Records > 0 {
		out.AvgTypeSize = (a.AvgTypeSize*float64(a.Records) + b.AvgTypeSize*float64(b.Records)) /
			float64(a.Records+b.Records)
	}
	out.Records = a.Records + b.Records
	out.Bytes = a.Bytes + b.Bytes
	// Distinct counts cannot be merged without the underlying sets; keep
	// the per-file maximum as a lower bound.
	if b.DistinctTypes > out.DistinctTypes {
		out.DistinctTypes = b.DistinctTypes
	}
	return out
}
