package jsoninference

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/enrich"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/value"
)

// Options tune the inference pipeline.
type Options struct {
	// Workers bounds the parallelism of the in-memory pipeline; zero
	// means one worker per CPU.
	Workers int
	// MaxDepth bounds value nesting (protection against depth bombs);
	// zero means the parser default (512).
	MaxDepth int
	// PreserveTupleArrays enables the positional array extension
	// (Section 7 of the paper): arrays that always have the same small
	// length keep one type per position instead of collapsing to [T*].
	PreserveTupleArrays bool
	// MaxTupleLen bounds the preserved tuple length (default 4); only
	// meaningful with PreserveTupleArrays.
	MaxTupleLen int
	// TaggedUnions enables tagged-union (discriminated record) inference
	// — the record-fusion strategy described in docs/UNIONS.md. Records
	// that carry a discriminator field ("type", "event", "kind" by
	// default; see UnionKeys) or that wrap their payload in a single
	// variant-named field (Twitter's {"delete": {...}}) are fused into a
	// variants type: one record type per observed tag plus an optional
	// catch-all, instead of one blurred record with every field optional.
	// The fused schema renders the union as variants(key){tag: {...}} and
	// exports to JSON Schema as a oneOf with const discriminators. The
	// merge stays commutative and associative (hypotheses that fail —
	// mixed discriminators, too many tags — collapse to exactly the
	// record the default strategy infers), so worker count, chunking,
	// dedup mode and fault schedules remain invisible in the result.
	TaggedUnions bool
	// UnionKeys overrides the discriminator field names probed by
	// TaggedUnions, in priority order (earlier wins when a record carries
	// several). Empty means the default ["type", "event", "kind"]. Only
	// meaningful with TaggedUnions.
	UnionKeys []string
	// MaxVariants bounds the number of distinct tags a tagged union may
	// accumulate before the hypothesis collapses to plain record fusion
	// (default 16). Only meaningful with TaggedUnions.
	MaxVariants int
	// MaxTagLen bounds the string length of a discriminator value
	// (default 40); longer strings are treated as data, not tags. Only
	// meaningful with TaggedUnions.
	MaxTagLen int
	// ChunkBytes is the chunk size of the bounded-memory file
	// partitioner used by FromFile and FromFiles; zero means 4 MiB.
	ChunkBytes int
	// Collector, when non-nil, accumulates pipeline metrics (records,
	// bytes, per-chunk latencies, the fusion-growth curve, map-reduce
	// engine internals) across the run. Snapshot it any time with
	// Collector.Metrics; nil costs one predictable branch per
	// instrumentation point (see BenchmarkInferNDJSON vs
	// BenchmarkInferNDJSONObserved).
	Collector *Collector
	// Progress, when non-nil, is called with a metrics snapshot after
	// each processed chunk (or every few thousand records on the
	// streaming path) and once after the run completes. It runs on
	// pipeline goroutines: keep it fast and do not call back into the
	// pipeline. If Collector is nil a private one is used, so Progress
	// works on its own.
	Progress func(Metrics)
	// Retries is the per-chunk retry budget for transient map-phase
	// failures (I/O hiccups, timeouts, injected faults). Retried chunks
	// re-execute with exponential backoff and deterministic jitter, and
	// by the fusion laws (associativity + commutativity) the resulting
	// schema is byte-identical to a fault-free run — the guarantee the
	// chaos harness in internal/chaos verifies. Zero disables retry.
	// Retries applies to the chunked pipeline (FromBytes, FromFile,
	// FromFiles); the sequential FromReader path has no tasks to retry.
	Retries int
	// OnError selects what the pipeline does with a chunk that still
	// fails after its retry budget: OnErrorFail (the default) aborts
	// the run, OnErrorSkip quarantines the chunk — the run completes
	// without its records and Stats.QuarantinedChunks reports how many
	// chunks were dropped. Use OnErrorSkip when a few corrupt records
	// must not kill a multi-million-record inference.
	OnError ErrorPolicy
	// FaultInjector, when non-nil, deterministically injects artificial
	// faults into the map phase — the chaos-testing hook. Production
	// callers leave it nil. See FaultInjector.
	FaultInjector FaultInjector
	// Dedup selects the deduplication mode of the run. DedupOn enables
	// the hash-consed fast path: the map phase interns every inferred
	// type in a shared table and emits a multiset of DISTINCT types per
	// chunk (interned type → count) instead of one type per record, the
	// combiner merges multisets by identity before fusing, and fusion
	// runs through a memoized cache keyed by interned IDs, so each
	// distinct pair of types fuses at most once per run. Real datasets
	// collapse millions of records onto a handful of shapes (the
	// paper's Tables 2-5 report tens of distinct types over millions of
	// values), which is exactly what makes this fast.
	//
	// DedupAuto makes the choice adaptively per chunk: the pipeline
	// samples the distinct-type ratio and the intern-table growth over
	// the first records of each chunk and falls back to the plain path
	// when hash-consing cannot pay for itself (near-all-distinct data
	// allocating several new interned nodes per record — the worst case
	// where fixed dedup is a pessimization). See docs/PERFORMANCE.md
	// for the cost model and knobs.
	//
	// The resulting schema is byte-identical across all three modes and
	// the non-timing metrics are unchanged (both pinned by differential
	// tests); under DedupOn and DedupAuto Stats.DistinctTypes becomes
	// EXACT on every Source — including the streaming and multi-file
	// paths, where the default pipeline reports zero or a lower bound.
	// With a Collector attached, deduplicating runs additionally record
	// intern_hits/intern_misses and the fuse/simplify cache counters
	// (see docs/PERFORMANCE.md).
	Dedup DedupMode
	// Enrich selects enrichment monoids (docs/ENRICHMENT.md) computed
	// alongside structural inference in the same pass: per-path value
	// statistics — "ranges" (numeric min/max), "hll" (approximate
	// distinct values), "bloom" (membership sketch), "formats" (string
	// format detection), "lengths" (array lengths), "numprec" (number
	// precision) — or "all". Each entry may itself be a comma-separated
	// list, matching flag syntax. Results surface on the Schema:
	// JSONSchema output gains annotations, EnrichmentJSON reports them
	// per path, and Repository snapshots persist them. Enrichment is
	// purely additive: the structural schema, Stats and codec bytes
	// are identical with or without it, and like the schema itself the
	// statistics are byte-identical under any worker count, merge tree
	// or fault schedule (every monoid passes the conformance harness in
	// internal/enrich/monoidtest). Empty means off.
	Enrich []string
}

// env resolves the Options into the pipeline environment one Infer
// call runs under — the bundle every Source adapter and stage reads
// instead of threading (options, recorder, progress, dedup state) as
// separate parameters.
func (o Options) env() *pipeline.Env {
	pol, inj := o.failureConfig()
	rec, progress := o.observer()
	env := &pipeline.Env{
		Fusion:     o.fusionOptions(),
		Workers:    o.workers(),
		ChunkBytes: o.ChunkBytes,
		MaxDepth:   o.MaxDepth,
		Failure:    pol,
		Injector:   inj,
		Rec:        rec,
		Progress:   progress,
	}
	switch o.Dedup {
	case DedupOn:
		env.Dedup = pipeline.NewDedup(env.Fusion)
	case DedupAuto:
		env.Dedup = pipeline.NewAutoDedup(env.Fusion)
	}
	if len(o.Enrich) > 0 {
		// validate() already vetted the selection; an error here is
		// impossible by construction.
		set, err := enrich.ParseSet(o.Enrich)
		if err != nil {
			panic(err)
		}
		env.Enrich = set
	}
	return env
}

// DedupMode selects how a run deduplicates inferred types; see
// Options.Dedup. The zero value is DedupOff, so the zero Options keep
// their historical meaning.
type DedupMode uint8

const (
	// DedupOff types every record individually (the default).
	DedupOff DedupMode = iota
	// DedupOn always runs the hash-consed distinct-type path.
	DedupOn
	// DedupAuto samples each chunk and picks the cheaper path,
	// degrading to DedupOff-shaped work on near-all-distinct data.
	DedupAuto
)

// String names the mode the way the -dedup flag spells it.
func (m DedupMode) String() string {
	switch m {
	case DedupOff:
		return "false"
	case DedupOn:
		return "true"
	case DedupAuto:
		return "auto"
	default:
		return fmt.Sprintf("DedupMode(%d)", int(m))
	}
}

// ParseDedupMode parses the -dedup flag syntax: the strconv booleans
// ("true", "1", "false", "0", ...) select the fixed modes and "auto"
// the adaptive one.
func ParseDedupMode(s string) (DedupMode, error) {
	if strings.EqualFold(s, "auto") {
		return DedupAuto, nil
	}
	on, err := strconv.ParseBool(s)
	if err != nil {
		return DedupOff, fmt.Errorf("invalid dedup mode %q (want true, false or auto)", s)
	}
	if on {
		return DedupOn, nil
	}
	return DedupOff, nil
}

// ErrorPolicy selects what Infer does when a chunk of input repeatedly
// fails to process; see Options.OnError.
type ErrorPolicy int

const (
	// OnErrorFail aborts the run on the first chunk whose retry budget
	// is exhausted (the default).
	OnErrorFail ErrorPolicy = iota
	// OnErrorSkip quarantines such chunks instead: the run completes
	// without their records, Stats.QuarantinedChunks counts them, and
	// the mapreduce_skipped metric records each one.
	OnErrorSkip
)

// String names the policy for flags and errors.
func (p ErrorPolicy) String() string {
	switch p {
	case OnErrorFail:
		return "fail"
	case OnErrorSkip:
		return "skip"
	default:
		return fmt.Sprintf("ErrorPolicy(%d)", int(p))
	}
}

// InjectedFault is one artificial failure produced by a FaultInjector.
type InjectedFault struct {
	// Delay stalls the chunk's map attempt — an artificial straggler.
	Delay time.Duration
	// Err, when non-nil, aborts the attempt with this error instead of
	// processing the chunk. Wrap it with PermanentFault to defeat the
	// retry machinery.
	Err error
}

// FaultInjector deterministically injects faults into the map phase
// for chaos testing: it is consulted before every attempt (0-based) of
// every chunk (by chunk sequence number) and must be pure and safe for
// concurrent use. internal/chaos builds seeded injectors from
// randomized failure plans.
type FaultInjector func(chunk, attempt int) InjectedFault

// PermanentFault marks err as non-retryable: the pipeline gives up on
// the chunk immediately — aborting under OnErrorFail, quarantining
// under OnErrorSkip — without burning the retry budget.
func PermanentFault(err error) error { return mapreduce.Permanent(err) }

// fusionOptions translates the Options into a fusion policy.
func (o Options) fusionOptions() fusion.Options {
	fz := fusion.Options{PreserveTuples: o.PreserveTupleArrays, MaxTupleLen: o.MaxTupleLen}
	if o.TaggedUnions {
		fz.Strategy = fusion.Tagged{
			Inner:       fz.ResolvedStrategy(),
			Keys:        o.UnionKeys,
			MaxVariants: o.MaxVariants,
			MaxTagLen:   o.MaxTagLen,
		}
	}
	return fz
}

// failureConfig translates the Options into the engine's failure
// policy and fault injector.
func (o Options) failureConfig() (mapreduce.FailurePolicy, mapreduce.FaultInjector) {
	pol := mapreduce.FailurePolicy{MaxRetries: o.Retries}
	switch {
	case o.OnError == OnErrorSkip:
		pol.Mode = mapreduce.Skip
	case o.Retries > 0:
		pol.Mode = mapreduce.Retry
	}
	var inj mapreduce.FaultInjector
	if o.FaultInjector != nil {
		fi := o.FaultInjector
		inj = func(seq, attempt int) mapreduce.Fault {
			f := fi(seq, attempt)
			return mapreduce.Fault{Delay: f.Delay, Err: f.Err}
		}
	}
	return pol, inj
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ErrInvalidOptions is wrapped by every error a negative or otherwise
// nonsensical Options field produces, from every entry point that
// accepts Options.
var ErrInvalidOptions = errors.New("jsoninference: invalid options")

// validate rejects Options values that have no meaningful
// interpretation. Zero always means "use the default", so only
// negative values are errors.
func (o Options) validate() error {
	switch {
	case o.Workers < 0:
		return fmt.Errorf("%w: Workers = %d, must be >= 0 (0 means one per CPU)", ErrInvalidOptions, o.Workers)
	case o.ChunkBytes < 0:
		return fmt.Errorf("%w: ChunkBytes = %d, must be >= 0 (0 means 4 MiB)", ErrInvalidOptions, o.ChunkBytes)
	case o.MaxDepth < 0:
		return fmt.Errorf("%w: MaxDepth = %d, must be >= 0 (0 means the parser default)", ErrInvalidOptions, o.MaxDepth)
	case o.MaxTupleLen < 0:
		return fmt.Errorf("%w: MaxTupleLen = %d, must be >= 0 (0 means the default of 4)", ErrInvalidOptions, o.MaxTupleLen)
	case o.Retries < 0:
		return fmt.Errorf("%w: Retries = %d, must be >= 0 (0 disables retry)", ErrInvalidOptions, o.Retries)
	case o.OnError != OnErrorFail && o.OnError != OnErrorSkip:
		return fmt.Errorf("%w: OnError = %d, must be OnErrorFail or OnErrorSkip", ErrInvalidOptions, int(o.OnError))
	case o.Dedup > DedupAuto:
		return fmt.Errorf("%w: Dedup = %d, must be DedupOff, DedupOn or DedupAuto", ErrInvalidOptions, int(o.Dedup))
	case o.MaxVariants < 0:
		return fmt.Errorf("%w: MaxVariants = %d, must be >= 0 (0 means the default of %d)", ErrInvalidOptions, o.MaxVariants, fusion.DefaultMaxVariants)
	case o.MaxTagLen < 0:
		return fmt.Errorf("%w: MaxTagLen = %d, must be >= 0 (0 means the default of %d)", ErrInvalidOptions, o.MaxTagLen, fusion.DefaultMaxTagLen)
	}
	for _, k := range o.UnionKeys {
		if k == "" {
			return fmt.Errorf("%w: UnionKeys contains an empty key", ErrInvalidOptions)
		}
	}
	if len(o.Enrich) > 0 {
		if _, err := enrich.ParseSet(o.Enrich); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
		}
	}
	return nil
}

// observer resolves the Options into the recorder and progress hook
// the pipeline threads through its stages. With neither Collector nor
// Progress set both are nil and every instrumentation point reduces to
// one branch.
func (o Options) observer() (obs.Recorder, func()) {
	c := o.Collector
	if c == nil && o.Progress == nil {
		return nil, nil
	}
	if c == nil {
		c = NewCollector()
	}
	if o.Progress == nil {
		return c.recorder(), nil
	}
	onProgress := o.Progress
	return c.recorder(), func() { onProgress(c.Metrics()) }
}

// Stats summarizes an inference run — the same measurements the paper
// reports per dataset in Tables 2-5.
type Stats struct {
	// Records is the number of JSON values typed.
	Records int64
	// Bytes is the number of input bytes consumed.
	Bytes int64
	// DistinctTypes is the number of distinct types the Map phase
	// produced. It is exact for a single in-memory or single-file run.
	// On the default path it is zero for the constant-memory streaming
	// path (which cannot afford the bookkeeping) and only a LOWER BOUND
	// when runs are merged (FromFiles, InferFiles, mergeStats): distinct
	// counts cannot be combined without the underlying sets, so the
	// merge keeps the per-partition maximum. With Options.Dedup the
	// count is EXACT on every Source — the hash-consing table IS the set
	// of distinct types, and multisets merge by identity across chunks
	// and files.
	DistinctTypes int
	// MinTypeSize, MaxTypeSize and AvgTypeSize describe the sizes of the
	// per-value types; compare with Schema.Size to judge succinctness.
	MinTypeSize, MaxTypeSize int
	AvgTypeSize              float64
	// Retries counts retried map attempts under Options.Retries; zero
	// on a fault-free run.
	Retries int
	// QuarantinedChunks counts input chunks dropped under OnErrorSkip.
	// Their records are excluded from the schema and from Records;
	// Bytes still reports the full input presented to the pipeline.
	QuarantinedChunks int
}

// Infer runs schema inference over a Source — the one entry point
// behind InferNDJSON, InferReader, InferFile and InferFiles, and the
// only one that accepts a context and therefore supports cancellation
// and deadlines. Cancellation takes effect between chunks (or records,
// on the streaming path) and leaves no goroutines behind.
//
// Construct the Source with FromBytes, FromReader, FromFile or
// FromFiles; set Options.Collector or Options.Progress to observe the
// run.
func Infer(ctx context.Context, src Source, opts Options) (*Schema, Stats, error) {
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	if src == nil {
		return nil, Stats{}, fmt.Errorf("%w: nil Source", ErrInvalidOptions)
	}
	env := opts.env()
	var t0 time.Time
	if env.Rec != nil {
		t0 = time.Now()
	}
	schema, st, err := src.run(ctx, env)
	if err != nil {
		return nil, Stats{}, err
	}
	if env.Rec != nil && env.Dedup != nil {
		// Cache effectiveness counters. Deterministic at Workers: 1 on a
		// fault-free run; under concurrency or retries the hit/miss split
		// can shift (double-computed entries, re-parsed chunks), which is
		// why Metrics.WithoutCache exists.
		hits, misses := env.Dedup.Tab.Stats()
		env.Rec.Add("intern_hits", hits)
		env.Rec.Add("intern_misses", misses)
		fh, fm, sh, sm := env.Dedup.Memo.CacheStats()
		env.Rec.Add("fuse_cache_hits", fh)
		env.Rec.Add("fuse_cache_misses", fm)
		env.Rec.Add("simplify_cache_hits", sh)
		env.Rec.Add("simplify_cache_misses", sm)
	}
	if env.Rec != nil {
		wall := time.Since(t0)
		env.Rec.Add("infer_wall_ns", int64(wall))
		env.Rec.Set("infer_fused_size", int64(schema.Size()))
		if ns := int64(wall); ns > 0 {
			env.Rec.Set("infer_records_per_sec", st.Records*int64(time.Second)/ns)
			env.Rec.Set("infer_bytes_per_sec", st.Bytes*int64(time.Second)/ns)
		}
	}
	if env.Progress != nil {
		env.Progress()
	}
	return schema, st, nil
}

// InferValue infers the schema of a single Go value of the shapes
// encoding/json produces (nil, bool, float64, string, map[string]any,
// []any, plus other Go numeric types).
func InferValue(v any) (*Schema, error) {
	cv, err := value.FromGo(v)
	if err != nil {
		return nil, fmt.Errorf("jsoninference: %w", err)
	}
	return newSchema(fusion.Simplify(infer.Infer(cv))), nil
}

// InferJSON infers the schema of exactly one JSON value.
func InferJSON(data []byte) (*Schema, error) {
	v, err := jsontext.ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("jsoninference: %w", err)
	}
	return newSchema(fusion.Simplify(infer.Infer(v))), nil
}

// InferNDJSON infers the schema of a collection of whitespace-separated
// JSON values (one per line or concatenated), running the Map phase in
// parallel and fusing the results. It is Infer over FromBytes with a
// background context.
func InferNDJSON(data []byte, opts Options) (*Schema, Stats, error) {
	return Infer(context.Background(), FromBytes(data), opts)
}

// InferReader infers the schema of a stream of JSON values with constant
// memory: values are typed and fused one at a time, never materialized
// as a whole. Use this for inputs too large to hold in memory; use
// InferNDJSON when the bytes are available for parallel processing. It
// is Infer over FromReader with a background context.
func InferReader(r io.Reader, opts Options) (*Schema, Stats, error) {
	return Infer(context.Background(), FromReader(r), opts)
}

// InferFile infers the schema of one NDJSON file with bounded memory:
// the file streams through line-aligned chunks (a few MB each) that are
// inferred and fused by parallel workers while the file is still being
// read. Use this for files too large for InferNDJSON's in-memory
// partitioning; the resulting schema is identical (associativity +
// commutativity), which the tests verify. It is Infer over FromFile
// with a background context.
func InferFile(path string, opts Options) (*Schema, Stats, error) {
	return Infer(context.Background(), FromFile(path), opts)
}

// InferFiles infers one schema across several NDJSON files, treating
// each file as a partition: files run through the same bounded-memory
// chunked pipeline as InferFile and their schemas are fused, the
// strategy of Section 6.2's partitioning experiment. The returned
// Stats.DistinctTypes is only a lower bound — see the field's
// documentation. It is Infer over FromFiles with a background context.
func InferFiles(paths []string, opts Options) (*Schema, Stats, error) {
	return Infer(context.Background(), FromFiles(paths...), opts)
}

// mergeStats folds the stats of two partitions into one, the way
// FromFiles combines per-file runs.
func mergeStats(a, b Stats) Stats {
	out := a
	if a.Records == 0 || (b.Records > 0 && b.MinTypeSize < a.MinTypeSize) {
		out.MinTypeSize = b.MinTypeSize
	}
	if b.MaxTypeSize > a.MaxTypeSize {
		out.MaxTypeSize = b.MaxTypeSize
	}
	if a.Records+b.Records > 0 {
		out.AvgTypeSize = (a.AvgTypeSize*float64(a.Records) + b.AvgTypeSize*float64(b.Records)) /
			float64(a.Records+b.Records)
	}
	out.Records = a.Records + b.Records
	out.Bytes = a.Bytes + b.Bytes
	out.Retries = a.Retries + b.Retries
	out.QuarantinedChunks = a.QuarantinedChunks + b.QuarantinedChunks
	// Distinct counts cannot be merged without the underlying sets; keep
	// the per-file maximum as a lower bound (documented on the field).
	if b.DistinctTypes > out.DistinctTypes {
		out.DistinctTypes = b.DistinctTypes
	}
	return out
}
