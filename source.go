package jsoninference

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/infer"
	"repro/internal/intern"
	"repro/internal/jsontext"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/types"
)

// A Source is an input to Infer: a byte buffer, a stream, a file or a
// set of files. Construct one with FromBytes, FromReader, FromFile or
// FromFiles. The interface is sealed — each kind carries the knowledge
// of how to partition itself for the map phase (in-memory split,
// bounded-memory chunking, or sequential decoding) so Infer can stay
// one entry point.
type Source interface {
	// run executes the pipeline over this input. rec may be nil (record
	// nothing); progress may be nil (report nothing); dd may be nil (the
	// default, non-deduplicating path).
	run(ctx context.Context, opts Options, rec obs.Recorder, progress func(), dd *dedupState) (*Schema, Stats, error)
}

// FromBytes is an in-memory NDJSON buffer (one or more
// whitespace-separated JSON values): the buffer is split at line
// boundaries into one chunk per map task and the chunks are inferred
// in parallel.
func FromBytes(data []byte) Source { return bytesSource{data: data} }

// FromReader is a stream of JSON values processed with constant
// memory: values are typed and fused one at a time, never materialized
// as a whole. Use it for inputs too large to buffer; note that
// Stats.DistinctTypes is unavailable (zero) on this path unless
// Options.Dedup is set, in which case it is exact. The reader is
// consumed until EOF or error.
func FromReader(r io.Reader) Source { return readerSource{r: r} }

// FromFile is one NDJSON file processed with bounded memory: the file
// streams through line-aligned chunks (Options.ChunkBytes each) that
// are inferred and fused by parallel workers while the file is still
// being read.
func FromFile(path string) Source { return filesSource{paths: []string{path}} }

// FromFiles is a set of NDJSON files treated as partitions: each file
// runs through the same bounded-memory chunked pipeline as FromFile
// and the per-file schemas are fused, which by associativity equals
// inferring the concatenation. Stats from multiple files are merged
// with mergeStats, so Stats.DistinctTypes is only a lower bound —
// unless Options.Dedup is set, which merges the per-file multisets by
// identity and makes the count exact.
func FromFiles(paths ...string) Source {
	return filesSource{paths: append([]string(nil), paths...)}
}

// chunkOut is the map output for one NDJSON chunk: the measurements
// and the chunk's fused type. Exactly one of sum (default path) and ms
// (dedup path) is set; the zero chunkOut is the fold identity of both.
type chunkOut struct {
	sum   *stats.Summary
	ms    *intern.Multiset
	fused types.Type
}

// feedError marks a failure of the input producer (reading chunks) as
// opposed to the pipeline consuming them, so callers can word the two
// differently.
type feedError struct{ err error }

func (e feedError) Error() string { return e.err.Error() }
func (e feedError) Unwrap() error { return e.err }

// runChunkPipeline distributes line-aligned NDJSON chunks over the
// map-reduce engine: each chunk is typed and locally fused (the
// combiner), chunk results fuse associatively + commutatively into one
// summary and schema. feed produces the chunks through emit and may
// block; it is always unblocked promptly — emit fails once the
// pipeline stops (error or ctx cancellation), so feed's producer
// goroutine can never leak.
func runChunkPipeline(ctx context.Context, opts Options, rec obs.Recorder, progress func(), dd *dedupState, feed func(emit func([]byte) error) error) (chunkOut, mapreduce.Stats, error) {
	fz := opts.fusionOptions()
	pol, inj := opts.failureConfig()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	src := make(chan []byte)
	feedDone := make(chan struct{})
	var feedErr error
	go func() {
		defer close(feedDone)
		defer close(src)
		feedErr = feed(func(chunk []byte) error {
			select {
			case src <- chunk:
				return nil
			case <-runCtx.Done():
				return runCtx.Err()
			}
		})
	}()

	mapFn := func(_ context.Context, chunk []byte) (chunkOut, error) {
		ts, err := infer.InferAll(chunk)
		if err != nil {
			return chunkOut{}, err
		}
		sum := &stats.Summary{}
		acc := types.Type(types.Empty)
		for _, t := range ts {
			sum.Add(t)
			acc = fz.Fuse(acc, fz.Simplify(t))
		}
		recordChunk(rec, progress, int64(len(ts)), int64(len(chunk)), acc)
		return chunkOut{sum: sum, fused: acc}, nil
	}
	combine := func(a, b chunkOut) chunkOut {
		if a.sum == nil {
			return b
		}
		if b.sum == nil {
			return a
		}
		a.sum.Merge(b.sum)
		return chunkOut{sum: a.sum, fused: fz.Fuse(a.fused, b.fused)}
	}
	if dd != nil {
		// The dedup map task types a chunk into a multiset of distinct
		// interned types and folds the DISTINCT types once each, in
		// first-seen order. By commutativity, associativity and
		// idempotency of fusion on simplified types, this equals folding
		// all per-record types — the chunk metrics (record counts, fused
		// size) are therefore identical to the default path's.
		mapFn = func(_ context.Context, chunk []byte) (chunkOut, error) {
			ms, err := infer.DedupAll(chunk, dd.tab)
			if err != nil {
				return chunkOut{}, err
			}
			acc := types.Type(types.Empty)
			for _, e := range ms.Elems() {
				acc = dd.memo.Fuse(acc, dd.memo.Simplify(e.Type))
			}
			recordChunk(rec, progress, ms.Total(), int64(len(chunk)), acc)
			return chunkOut{ms: ms, fused: acc}, nil
		}
		combine = func(a, b chunkOut) chunkOut { return dedupCombine(dd, a, b) }
	}

	out, mrst, err := mapreduce.Run(runCtx, src, mapFn, combine, chunkOut{}, mapreduce.Config{Workers: opts.Workers, Recorder: rec, Failure: pol, Injector: inj})
	if err != nil {
		// Unblock and join the feeder before returning so no goroutine
		// outlives the call.
		cancel()
		<-feedDone
		return chunkOut{}, mrst, err
	}
	<-feedDone
	if feedErr != nil {
		return chunkOut{}, mrst, feedError{err: feedErr}
	}
	return out, mrst, nil
}

// recordChunk emits the per-chunk metrics and progress tick shared by
// the default and dedup map tasks.
func recordChunk(rec obs.Recorder, progress func(), records, bytes int64, fused types.Type) {
	if rec != nil {
		rec.Add("infer_chunks", 1)
		rec.Add("infer_records", records)
		rec.Add("infer_bytes", bytes)
		rec.Observe("infer_chunk_records", records)
		// Per-chunk fused sizes are the fusion-growth curve: how
		// far each partition's types collapse before the reduce.
		rec.Observe("infer_chunk_fused_size", int64(fused.Size()))
	}
	if progress != nil {
		progress()
	}
}

// dedupCombine merges two dedup chunk outputs: multisets merge by
// interned identity (counts add), fused types fuse through the memo.
// Associative and commutative with the zero chunkOut as identity, like
// the default combiner.
func dedupCombine(dd *dedupState, a, b chunkOut) chunkOut {
	if a.ms == nil {
		return b
	}
	if b.ms == nil {
		return a
	}
	a.ms.Merge(b.ms)
	return chunkOut{ms: a.ms, fused: dd.memo.Fuse(a.fused, b.fused)}
}

// summaryStats translates a pipeline summary into the public Stats.
func summaryStats(out chunkOut) (Stats, *Schema) {
	if out.sum == nil {
		return Stats{}, EmptySchema()
	}
	return Stats{
		Records:       out.sum.Count(),
		DistinctTypes: out.sum.Distinct(),
		MinTypeSize:   out.sum.MinSize(),
		MaxTypeSize:   out.sum.MaxSize(),
		AvgTypeSize:   out.sum.AvgSize(),
	}, newSchema(out.fused)
}

// multisetStats is summaryStats for the dedup path: the same numbers,
// recovered from the distinct-type multiset. The sum of sizes is
// accumulated in an int64 exactly like stats.Summary does (sizes and
// counts stay far below 2^53), so AvgTypeSize is bit-identical to the
// per-record accumulation of the default path.
func multisetStats(out chunkOut) (Stats, *Schema) {
	if out.ms == nil {
		return Stats{}, EmptySchema()
	}
	var st Stats
	var sumSize int64
	for i, e := range out.ms.Elems() {
		if i == 0 || e.Size < st.MinTypeSize {
			st.MinTypeSize = e.Size
		}
		if e.Size > st.MaxTypeSize {
			st.MaxTypeSize = e.Size
		}
		sumSize += int64(e.Size) * e.Count
		st.Records += e.Count
	}
	st.DistinctTypes = out.ms.Len()
	if st.Records > 0 {
		st.AvgTypeSize = float64(sumSize) / float64(st.Records)
	}
	return st, newSchema(out.fused)
}

// bytesSource implements FromBytes.
type bytesSource struct{ data []byte }

func (s bytesSource) run(ctx context.Context, opts Options, rec obs.Recorder, progress func(), dd *dedupState) (*Schema, Stats, error) {
	chunks := jsontext.SplitLines(s.data, opts.workers()*4)
	out, mrst, err := runChunkPipeline(ctx, opts, rec, progress, dd, func(emit func([]byte) error) error {
		for _, chunk := range chunks {
			if err := emit(chunk); err != nil {
				return nil // the pipeline stopped; it carries the error
			}
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: %w", err)
	}
	st, schema := summaryStats(out)
	if dd != nil {
		st, schema = multisetStats(out)
	}
	st.Bytes = int64(len(s.data))
	st.Retries = mrst.Retries
	st.QuarantinedChunks = len(mrst.Quarantined)
	return schema, st, nil
}

// readerSource implements FromReader.
type readerSource struct{ r io.Reader }

func (s readerSource) run(ctx context.Context, opts Options, rec obs.Recorder, progress func(), dd *dedupState) (*Schema, Stats, error) {
	dec := infer.NewDecoder(s.r, jsontext.Options{MaxDepth: opts.MaxDepth})
	defer dec.Release()
	fz := opts.fusionOptions()
	var ms *intern.Multiset
	if dd != nil {
		dec.SetInterner(dd.tab)
		ms = intern.NewMultiset()
	}
	acc := types.Type(types.Empty)
	var st Stats
	for {
		select {
		case <-ctx.Done():
			return nil, Stats{}, fmt.Errorf("jsoninference: record %d: %w", st.Records+1, ctx.Err())
		default:
		}
		t, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, Stats{}, fmt.Errorf("jsoninference: record %d: %w", st.Records+1, err)
		}
		var size int
		if dd != nil {
			ref, ok := dd.tab.Ref(t)
			if !ok {
				ref, _ = dd.tab.Ref(dd.tab.Canon(t))
			}
			size = ref.Size
			// Absorption — fuse(fuse(A, s), s) = fuse(A, s) for the
			// simplified s of an already-seen type — lets the streaming
			// path skip both the Simplify and the Fuse for repeats.
			if !ms.Contains(ref.ID) {
				acc = dd.memo.Fuse(acc, dd.memo.Simplify(t))
			}
			ms.Add(ref, 1)
		} else {
			size = t.Size()
			acc = fz.Fuse(acc, fz.Simplify(t))
		}
		if st.Records == 0 || size < st.MinTypeSize {
			st.MinTypeSize = size
		}
		if size > st.MaxTypeSize {
			st.MaxTypeSize = size
		}
		st.AvgTypeSize += float64(size)
		st.Records++
		if rec != nil {
			rec.Add("infer_records", 1)
		}
		if progress != nil && st.Records%progressEveryRecords == 0 {
			progress()
		}
	}
	if st.Records > 0 {
		st.AvgTypeSize /= float64(st.Records)
	}
	st.Bytes = dec.Offset()
	if rec != nil {
		rec.Add("infer_bytes", st.Bytes)
	}
	// Streaming keeps constant memory, so the default path cannot count
	// distinct types and DistinctTypes stays zero; the dedup path gets
	// the count for free from the intern table.
	if dd != nil {
		st.DistinctTypes = ms.Len()
	}
	return newSchema(acc), st, nil
}

// progressEveryRecords throttles Progress callbacks on the sequential
// streaming path, where "per chunk" has no natural meaning.
const progressEveryRecords = 1024

// filesSource implements FromFile and FromFiles.
type filesSource struct {
	paths []string
}

func (s filesSource) run(ctx context.Context, opts Options, rec obs.Recorder, progress func(), dd *dedupState) (*Schema, Stats, error) {
	if dd != nil {
		// One table and one memo span all files, so per-file multisets
		// merge by identity: cross-file distinct counts are exact and the
		// cross-file fusion is memoized like any other.
		merged := chunkOut{}
		var io Stats
		for _, path := range s.paths {
			out, pst, err := s.runOne(ctx, path, opts, rec, progress, dd)
			if err != nil {
				return nil, Stats{}, err
			}
			merged = dedupCombine(dd, merged, out)
			io.Bytes += pst.Bytes
			io.Retries += pst.Retries
			io.QuarantinedChunks += pst.QuarantinedChunks
		}
		st, schema := multisetStats(merged)
		st.Bytes, st.Retries, st.QuarantinedChunks = io.Bytes, io.Retries, io.QuarantinedChunks
		return schema, st, nil
	}
	fz := opts.fusionOptions()
	acc := EmptySchema()
	var total Stats
	for i, path := range s.paths {
		out, pst, err := s.runOne(ctx, path, opts, rec, progress, dd)
		if err != nil {
			return nil, Stats{}, err
		}
		st, schema := summaryStats(out)
		st.Bytes, st.Retries, st.QuarantinedChunks = pst.Bytes, pst.Retries, pst.QuarantinedChunks
		if i == 0 {
			acc, total = schema, st
			continue
		}
		// Fuse under the run's policy (not the zero policy), so the
		// cross-file reduce preserves tuples exactly like the in-file
		// reduce does.
		acc = newSchema(fz.Fuse(acc.t, schema.t))
		total = mergeStats(total, st)
	}
	return acc, total, nil
}

// runOne runs the chunked pipeline over one file. The returned Stats
// carries only the I/O-side numbers (Bytes, Retries, QuarantinedChunks);
// the caller derives the type-level stats from the chunkOut.
func (s filesSource) runOne(ctx context.Context, path string, opts Options, rec obs.Recorder, progress func(), dd *dedupState) (chunkOut, Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return chunkOut{}, Stats{}, fmt.Errorf("jsoninference: %w", err)
	}
	//lint:ignore droppederr the file is only read; a close error cannot lose data
	defer f.Close()

	out, mrst, err := runChunkPipeline(ctx, opts, rec, progress, dd, func(emit func([]byte) error) error {
		return jsontext.ChunkLines(f, opts.ChunkBytes, emit)
	})
	if err != nil {
		var fe feedError
		if errors.As(err, &fe) {
			return chunkOut{}, Stats{}, fmt.Errorf("jsoninference: reading %s: %w", path, fe.err)
		}
		return chunkOut{}, Stats{}, fmt.Errorf("jsoninference: %s: %w", path, err)
	}
	var st Stats
	if info, err := f.Stat(); err == nil {
		st.Bytes = info.Size()
	}
	st.Retries = mrst.Retries
	st.QuarantinedChunks = len(mrst.Quarantined)
	return out, st, nil
}
