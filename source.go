package jsoninference

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/types"
)

// A Source is an input to Infer: a byte buffer, a stream, a file or a
// set of files. Construct one with FromBytes, FromReader, FromFile or
// FromFiles. The interface is sealed — each kind carries the knowledge
// of how to partition itself for the map phase (in-memory split,
// bounded-memory chunking, or sequential decoding) so Infer can stay
// one entry point.
type Source interface {
	// run executes the pipeline over this input. rec may be nil (record
	// nothing); progress may be nil (report nothing).
	run(ctx context.Context, opts Options, rec obs.Recorder, progress func()) (*Schema, Stats, error)
}

// FromBytes is an in-memory NDJSON buffer (one or more
// whitespace-separated JSON values): the buffer is split at line
// boundaries into one chunk per map task and the chunks are inferred
// in parallel.
func FromBytes(data []byte) Source { return bytesSource{data: data} }

// FromReader is a stream of JSON values processed with constant
// memory: values are typed and fused one at a time, never materialized
// as a whole. Use it for inputs too large to buffer; note that
// Stats.DistinctTypes is unavailable (zero) on this path. The reader
// is consumed until EOF or error.
func FromReader(r io.Reader) Source { return readerSource{r: r} }

// FromFile is one NDJSON file processed with bounded memory: the file
// streams through line-aligned chunks (Options.ChunkBytes each) that
// are inferred and fused by parallel workers while the file is still
// being read.
func FromFile(path string) Source { return filesSource{paths: []string{path}} }

// FromFiles is a set of NDJSON files treated as partitions: each file
// runs through the same bounded-memory chunked pipeline as FromFile
// and the per-file schemas are fused, which by associativity equals
// inferring the concatenation. Stats from multiple files are merged
// with mergeStats, so Stats.DistinctTypes is only a lower bound.
func FromFiles(paths ...string) Source {
	return filesSource{paths: append([]string(nil), paths...)}
}

// chunkOut is the map output for one NDJSON chunk: the measurements
// and the chunk's fused type.
type chunkOut struct {
	sum   *stats.Summary
	fused types.Type
}

// feedError marks a failure of the input producer (reading chunks) as
// opposed to the pipeline consuming them, so callers can word the two
// differently.
type feedError struct{ err error }

func (e feedError) Error() string { return e.err.Error() }
func (e feedError) Unwrap() error { return e.err }

// runChunkPipeline distributes line-aligned NDJSON chunks over the
// map-reduce engine: each chunk is typed and locally fused (the
// combiner), chunk results fuse associatively + commutatively into one
// summary and schema. feed produces the chunks through emit and may
// block; it is always unblocked promptly — emit fails once the
// pipeline stops (error or ctx cancellation), so feed's producer
// goroutine can never leak.
func runChunkPipeline(ctx context.Context, opts Options, rec obs.Recorder, progress func(), feed func(emit func([]byte) error) error) (chunkOut, mapreduce.Stats, error) {
	fz := opts.fusionOptions()
	pol, inj := opts.failureConfig()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	src := make(chan []byte)
	feedDone := make(chan struct{})
	var feedErr error
	go func() {
		defer close(feedDone)
		defer close(src)
		feedErr = feed(func(chunk []byte) error {
			select {
			case src <- chunk:
				return nil
			case <-runCtx.Done():
				return runCtx.Err()
			}
		})
	}()

	mapFn := func(_ context.Context, chunk []byte) (chunkOut, error) {
		ts, err := infer.InferAll(chunk)
		if err != nil {
			return chunkOut{}, err
		}
		sum := &stats.Summary{}
		acc := types.Type(types.Empty)
		for _, t := range ts {
			sum.Add(t)
			acc = fz.Fuse(acc, fz.Simplify(t))
		}
		if rec != nil {
			rec.Add("infer_chunks", 1)
			rec.Add("infer_records", int64(len(ts)))
			rec.Add("infer_bytes", int64(len(chunk)))
			rec.Observe("infer_chunk_records", int64(len(ts)))
			// Per-chunk fused sizes are the fusion-growth curve: how
			// far each partition's types collapse before the reduce.
			rec.Observe("infer_chunk_fused_size", int64(acc.Size()))
		}
		if progress != nil {
			progress()
		}
		return chunkOut{sum: sum, fused: acc}, nil
	}
	combine := func(a, b chunkOut) chunkOut {
		if a.sum == nil {
			return b
		}
		if b.sum == nil {
			return a
		}
		a.sum.Merge(b.sum)
		return chunkOut{sum: a.sum, fused: fz.Fuse(a.fused, b.fused)}
	}

	out, mrst, err := mapreduce.Run(runCtx, src, mapFn, combine, chunkOut{}, mapreduce.Config{Workers: opts.Workers, Recorder: rec, Failure: pol, Injector: inj})
	if err != nil {
		// Unblock and join the feeder before returning so no goroutine
		// outlives the call.
		cancel()
		<-feedDone
		return chunkOut{}, mrst, err
	}
	<-feedDone
	if feedErr != nil {
		return chunkOut{}, mrst, feedError{err: feedErr}
	}
	return out, mrst, nil
}

// summaryStats translates a pipeline summary into the public Stats.
func summaryStats(out chunkOut) (Stats, *Schema) {
	if out.sum == nil {
		return Stats{}, EmptySchema()
	}
	return Stats{
		Records:       out.sum.Count(),
		DistinctTypes: out.sum.Distinct(),
		MinTypeSize:   out.sum.MinSize(),
		MaxTypeSize:   out.sum.MaxSize(),
		AvgTypeSize:   out.sum.AvgSize(),
	}, newSchema(out.fused)
}

// bytesSource implements FromBytes.
type bytesSource struct{ data []byte }

func (s bytesSource) run(ctx context.Context, opts Options, rec obs.Recorder, progress func()) (*Schema, Stats, error) {
	chunks := jsontext.SplitLines(s.data, opts.workers()*4)
	out, mrst, err := runChunkPipeline(ctx, opts, rec, progress, func(emit func([]byte) error) error {
		for _, chunk := range chunks {
			if err := emit(chunk); err != nil {
				return nil // the pipeline stopped; it carries the error
			}
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: %w", err)
	}
	st, schema := summaryStats(out)
	st.Bytes = int64(len(s.data))
	st.Retries = mrst.Retries
	st.QuarantinedChunks = len(mrst.Quarantined)
	return schema, st, nil
}

// readerSource implements FromReader.
type readerSource struct{ r io.Reader }

func (s readerSource) run(ctx context.Context, opts Options, rec obs.Recorder, progress func()) (*Schema, Stats, error) {
	dec := infer.NewDecoder(s.r, jsontext.Options{MaxDepth: opts.MaxDepth})
	fz := opts.fusionOptions()
	acc := types.Type(types.Empty)
	var st Stats
	for {
		select {
		case <-ctx.Done():
			return nil, Stats{}, fmt.Errorf("jsoninference: record %d: %w", st.Records+1, ctx.Err())
		default:
		}
		t, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, Stats{}, fmt.Errorf("jsoninference: record %d: %w", st.Records+1, err)
		}
		size := t.Size()
		if st.Records == 0 || size < st.MinTypeSize {
			st.MinTypeSize = size
		}
		if size > st.MaxTypeSize {
			st.MaxTypeSize = size
		}
		st.AvgTypeSize += float64(size)
		st.Records++
		acc = fz.Fuse(acc, fz.Simplify(t))
		if rec != nil {
			rec.Add("infer_records", 1)
		}
		if progress != nil && st.Records%progressEveryRecords == 0 {
			progress()
		}
	}
	if st.Records > 0 {
		st.AvgTypeSize /= float64(st.Records)
	}
	st.Bytes = dec.Offset()
	if rec != nil {
		rec.Add("infer_bytes", st.Bytes)
	}
	// Streaming keeps constant memory, so it cannot count distinct
	// types; DistinctTypes stays zero here.
	return newSchema(acc), st, nil
}

// progressEveryRecords throttles Progress callbacks on the sequential
// streaming path, where "per chunk" has no natural meaning.
const progressEveryRecords = 1024

// filesSource implements FromFile and FromFiles.
type filesSource struct {
	paths []string
}

func (s filesSource) run(ctx context.Context, opts Options, rec obs.Recorder, progress func()) (*Schema, Stats, error) {
	acc := EmptySchema()
	var total Stats
	for i, path := range s.paths {
		schema, st, err := s.runOne(ctx, path, opts, rec, progress)
		if err != nil {
			return nil, Stats{}, err
		}
		if i == 0 {
			acc, total = schema, st
			continue
		}
		acc = acc.Fuse(schema)
		total = mergeStats(total, st)
	}
	return acc, total, nil
}

func (s filesSource) runOne(ctx context.Context, path string, opts Options, rec obs.Recorder, progress func()) (*Schema, Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: %w", err)
	}
	//lint:ignore droppederr the file is only read; a close error cannot lose data
	defer f.Close()

	out, mrst, err := runChunkPipeline(ctx, opts, rec, progress, func(emit func([]byte) error) error {
		return jsontext.ChunkLines(f, opts.ChunkBytes, emit)
	})
	if err != nil {
		var fe feedError
		if errors.As(err, &fe) {
			return nil, Stats{}, fmt.Errorf("jsoninference: reading %s: %w", path, fe.err)
		}
		return nil, Stats{}, fmt.Errorf("jsoninference: %s: %w", path, err)
	}
	st, schema := summaryStats(out)
	if info, err := f.Stat(); err == nil {
		st.Bytes = info.Size()
	}
	st.Retries = mrst.Retries
	st.QuarantinedChunks = len(mrst.Quarantined)
	return schema, st, nil
}
