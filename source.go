package jsoninference

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/enrich"
	"repro/internal/jsontext"
	"repro/internal/pipeline"
	"repro/internal/value"
)

// A Source is an input to Infer: a byte buffer, a stream, a file or a
// set of files. Construct one with FromBytes, FromReader, FromFile or
// FromFiles. The interface is sealed — each kind is a thin adapter
// that feeds the one pipeline engine (internal/pipeline) its
// partitioning strategy (in-memory split, bounded-memory chunking, or
// sequential decoding) so Infer can stay one entry point over one code
// path. See docs/ARCHITECTURE.md for how to add a kind.
type Source interface {
	// run executes the pipeline over this input under env, which bundles
	// the run's cross-cutting state (fusion policy, workers, failure
	// policy, recorder, progress hook, dedup machinery).
	run(ctx context.Context, env *pipeline.Env) (*Schema, Stats, error)
	// scan decodes the input's values sequentially, calling fn for each
	// and checking ctx between records; it returns the number of input
	// bytes consumed. InferProfile drives this path — profiling needs
	// the values themselves, not just their types.
	scan(ctx context.Context, env *pipeline.Env, fn func(value.Value) error) (int64, error)
}

// FromBytes is an in-memory NDJSON buffer (one or more
// whitespace-separated JSON values): the buffer is split at line
// boundaries into one chunk per map task and the chunks are inferred
// in parallel.
func FromBytes(data []byte) Source { return bytesSource{data: data} }

// FromReader is a stream of JSON values processed with constant
// memory: values are typed and fused one at a time, never materialized
// as a whole. Use it for inputs too large to buffer; note that
// Stats.DistinctTypes is unavailable (zero) on this path unless
// Options.Dedup is set, in which case it is exact. The reader is
// consumed until EOF or error.
func FromReader(r io.Reader) Source { return readerSource{r: r} }

// FromFile is one NDJSON file processed with bounded memory: the file
// streams through line-aligned chunks (Options.ChunkBytes each) that
// are inferred and fused by parallel workers while the file is still
// being read.
func FromFile(path string) Source { return filesSource{paths: []string{path}} }

// FromChunkedReader is a stream of JSON values processed through the
// same bounded-memory chunked parallel pipeline as FromFile: the
// stream is cut into line-aligned chunks (Options.ChunkBytes each)
// that are inferred by parallel workers while the stream is still
// being read, and the full failure machinery (Options.Retries,
// Options.OnError) applies per chunk. Use it when the input arrives as
// a stream too large to buffer but parallel inference or quarantine
// semantics are wanted — an HTTP request body, a pipe, a socket;
// cmd/schemad feeds ingest request bodies through it. Use FromReader
// when strict record-at-a-time sequencing matters more than
// throughput. The reader is consumed until EOF or error.
func FromChunkedReader(r io.Reader) Source { return chunkedSource{r: r} }

// FromFiles is a set of NDJSON files treated as partitions: each file
// runs through the same bounded-memory chunked pipeline as FromFile
// and the per-file schemas are fused, which by associativity equals
// inferring the concatenation. Stats from multiple files are merged
// with mergeStats, so Stats.DistinctTypes is only a lower bound —
// unless Options.Dedup is set, which merges the per-file multisets by
// identity and makes the count exact.
func FromFiles(paths ...string) Source {
	return filesSource{paths: append([]string(nil), paths...)}
}

// A FeedError marks a failure of the input producer — opening or
// reading the underlying file or feed — as opposed to the pipeline
// decoding its records. Unwrap errors from Infer with errors.As to
// distinguish the two: a FeedError means the input could not be
// delivered (retry the I/O, check the path), while a bare decode error
// means the bytes arrived but were not valid JSON. The wrapped Err
// preserves the OS-level cause, so errors.Is(err, fs.ErrNotExist)
// works through it.
type FeedError struct {
	// Path is the file being read, or empty for non-file feeds.
	Path string
	// Err is the underlying I/O error.
	Err error
}

func (e *FeedError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("reading input: %v", e.Err)
	}
	return fmt.Sprintf("reading %s: %v", e.Path, e.Err)
}

func (e *FeedError) Unwrap() error { return e.Err }

// typeStats translates a folded pipeline Result into the public Stats
// and Schema. The feed-side numbers (Bytes, Retries, QuarantinedChunks)
// are the caller's to fill in.
func typeStats(res pipeline.Result) (Stats, *Schema) {
	return Stats{
		Records:       res.Records,
		DistinctTypes: res.DistinctTypes,
		MinTypeSize:   res.MinTypeSize,
		MaxTypeSize:   res.MaxTypeSize,
		AvgTypeSize:   res.AvgTypeSize,
	}, newSchema(res.Fused).withEnrichment(res.Enrichment)
}

// bytesSource implements FromBytes: split in memory, feed the chunks.
type bytesSource struct{ data []byte }

func (s bytesSource) run(ctx context.Context, env *pipeline.Env) (*Schema, Stats, error) {
	chunks := jsontext.SplitLines(s.data, env.Workers*4)
	out, mrst, err := pipeline.Run(ctx, env, pipeline.SliceFeed(chunks))
	if err != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: %w", err)
	}
	st, schema := typeStats(pipeline.Fold(out))
	st.Bytes = int64(len(s.data))
	st.Retries = mrst.Retries
	st.QuarantinedChunks = len(mrst.Quarantined)
	return schema, st, nil
}

func (s bytesSource) scan(ctx context.Context, env *pipeline.Env, fn func(value.Value) error) (int64, error) {
	return scanStream(ctx, env, bytes.NewReader(s.data), fn)
}

// readerSource implements FromReader: the sequential constant-memory
// driver over the same accumulator stages.
type readerSource struct{ r io.Reader }

func (s readerSource) run(ctx context.Context, env *pipeline.Env) (*Schema, Stats, error) {
	out, n, err := pipeline.RunStream(ctx, env, s.r)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: %w", err)
	}
	st, schema := typeStats(pipeline.Fold(out))
	st.Bytes = n
	return schema, st, nil
}

func (s readerSource) scan(ctx context.Context, env *pipeline.Env, fn func(value.Value) error) (int64, error) {
	return scanStream(ctx, env, s.r, fn)
}

// chunkedSource implements FromChunkedReader: the stream feeds the
// chunked pipeline through the same bounded-memory line partitioner
// the file sources use.
type chunkedSource struct{ r io.Reader }

func (s chunkedSource) run(ctx context.Context, env *pipeline.Env) (*Schema, Stats, error) {
	cr := &countingReader{r: s.r}
	// Chunk buffers cycle through a pool: the feed fills one, the map
	// stage decodes it, and the engine's release hook (which fires only
	// after the chunk's final retry attempt) returns it for the next
	// fill. A long stream allocates a handful of buffers total.
	pool := &jsontext.ChunkPool{}
	out, mrst, err := pipeline.RunPooled(ctx, env, func(emit func([]byte) error) error {
		return jsontext.ChunkLinesPooled(cr, env.ChunkBytes, pool, emit)
	}, pool.Put)
	if err != nil {
		var fe *pipeline.FeedError
		if errors.As(err, &fe) {
			return nil, Stats{}, fmt.Errorf("jsoninference: %w", &FeedError{Err: fe.Err})
		}
		return nil, Stats{}, fmt.Errorf("jsoninference: %w", err)
	}
	st, schema := typeStats(pipeline.Fold(out))
	st.Bytes = cr.n
	st.Retries = mrst.Retries
	st.QuarantinedChunks = len(mrst.Quarantined)
	return schema, st, nil
}

func (s chunkedSource) scan(ctx context.Context, env *pipeline.Env, fn func(value.Value) error) (int64, error) {
	return scanStream(ctx, env, s.r, fn)
}

// countingReader counts the bytes delivered by Read. The pipeline's
// feeder goroutine is always joined before Run returns, so reading n
// afterwards does not race.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// filesSource implements FromFile and FromFiles: each file feeds the
// chunked pipeline through a bounded-memory line partitioner.
type filesSource struct {
	paths []string
}

func (s filesSource) run(ctx context.Context, env *pipeline.Env) (*Schema, Stats, error) {
	if env.Dedup != nil {
		// One table and one memo span all files, so per-file accumulators
		// merge by identity: cross-file distinct counts are exact and the
		// cross-file fusion is memoized like any other.
		var merged pipeline.Accumulator
		var agg Stats
		for _, path := range s.paths {
			out, pst, err := runFilePipeline(ctx, env, path)
			if err != nil {
				return nil, Stats{}, err
			}
			merged = pipeline.Combine(merged, out)
			agg.Bytes += pst.Bytes
			agg.Retries += pst.Retries
			agg.QuarantinedChunks += pst.QuarantinedChunks
		}
		st, schema := typeStats(pipeline.Fold(merged))
		st.Bytes, st.Retries, st.QuarantinedChunks = agg.Bytes, agg.Retries, agg.QuarantinedChunks
		return schema, st, nil
	}
	fz := env.Fusion
	acc := EmptySchema()
	var total Stats
	for i, path := range s.paths {
		out, pst, err := runFilePipeline(ctx, env, path)
		if err != nil {
			return nil, Stats{}, err
		}
		st, schema := typeStats(pipeline.Fold(out))
		st.Bytes, st.Retries, st.QuarantinedChunks = pst.Bytes, pst.Retries, pst.QuarantinedChunks
		if i == 0 {
			acc, total = schema, st
			continue
		}
		// Fuse under the run's policy (not the zero policy), so the
		// cross-file reduce preserves tuples exactly like the in-file
		// reduce does. Enrichment lattices union alongside.
		acc = newSchema(fz.Fuse(acc.t, schema.t)).withEnrichment(enrich.Union(acc.enr, schema.enr))
		total = mergeStats(total, st)
	}
	return acc, total, nil
}

func (s filesSource) scan(ctx context.Context, env *pipeline.Env, fn func(value.Value) error) (int64, error) {
	var total int64
	for _, path := range s.paths {
		f, err := os.Open(path)
		if err != nil {
			return total, &FeedError{Path: path, Err: err}
		}
		n, err := scanStream(ctx, env, f, fn)
		total += n
		cerr := f.Close()
		if err != nil {
			return total, fmt.Errorf("%s: %w", path, err)
		}
		if cerr != nil {
			return total, &FeedError{Path: path, Err: cerr}
		}
	}
	return total, nil
}

// scanStream decodes JSON values sequentially from r, calling fn for
// each. Cancellation takes effect between records, like the streaming
// inference path. Returns the number of bytes consumed.
func scanStream(ctx context.Context, env *pipeline.Env, r io.Reader, fn func(value.Value) error) (int64, error) {
	p := jsontext.NewParser(r, jsontext.Options{MaxDepth: env.MaxDepth})
	var records int64
	for {
		select {
		case <-ctx.Done():
			return p.Offset(), fmt.Errorf("record %d: %w", records+1, ctx.Err())
		default:
		}
		v, err := p.Next()
		if err == io.EOF {
			return p.Offset(), nil
		}
		if err != nil {
			return p.Offset(), fmt.Errorf("record %d: %w", records+1, err)
		}
		if err := fn(v); err != nil {
			return p.Offset(), err
		}
		records++
	}
}

// runFilePipeline feeds one file through the chunked pipeline. The
// returned Stats carries only the I/O-side numbers (Bytes, Retries,
// QuarantinedChunks); the caller folds the accumulator for the
// type-level stats. Failures to open or read the file surface as
// *FeedError; decode failures do not.
func runFilePipeline(ctx context.Context, env *pipeline.Env, path string) (pipeline.Accumulator, Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: %w", &FeedError{Path: path, Err: err})
	}
	//lint:ignore droppederr the file is only read; a close error cannot lose data
	defer f.Close()

	// Same pooled chunk lifecycle as the chunked-reader source: buffers
	// are recycled through the pipeline's release hook, so reading a
	// large file allocates a handful of chunk buffers, not one per chunk.
	pool := &jsontext.ChunkPool{}
	out, mrst, err := pipeline.RunPooled(ctx, env, func(emit func([]byte) error) error {
		return jsontext.ChunkLinesPooled(f, env.ChunkBytes, pool, emit)
	}, pool.Put)
	if err != nil {
		var fe *pipeline.FeedError
		if errors.As(err, &fe) {
			return nil, Stats{}, fmt.Errorf("jsoninference: %w", &FeedError{Path: path, Err: fe.Err})
		}
		return nil, Stats{}, fmt.Errorf("jsoninference: %s: %w", path, err)
	}
	var st Stats
	if info, err := f.Stat(); err == nil {
		st.Bytes = info.Size()
	}
	st.Retries = mrst.Retries
	st.QuarantinedChunks = len(mrst.Quarantined)
	return out, st, nil
}
