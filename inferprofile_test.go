package jsoninference_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	jsi "repro"
)

// TestInferProfileMatchesWrappers pins the wrapper contract for the
// profile family, mirroring TestInferMatchesWrappers: the deprecated
// entry points return exactly what InferProfile over the matching
// Source returns.
func TestInferProfileMatchesWrappers(t *testing.T) {
	path, data := manyChunks(t, 200)
	ctx := context.Background()

	fromBytes, st, err := jsi.InferProfile(ctx, jsi.FromBytes(data), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != fromBytes.Records() || st.Records == 0 {
		t.Errorf("Stats.Records = %d, Profile.Records = %d", st.Records, fromBytes.Records())
	}
	if st.Bytes != int64(len(data)) {
		t.Errorf("Stats.Bytes = %d, want %d", st.Bytes, len(data))
	}

	legacy, err := jsi.ProfileNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.String() != fromBytes.String() {
		t.Error("ProfileNDJSON diverges from InferProfile(FromBytes)")
	}

	reader, err := jsi.ProfileReader(bytes.NewReader(data), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reader.String() != fromBytes.String() {
		t.Error("ProfileReader diverges from InferProfile(FromBytes)")
	}

	fromFile, _, err := jsi.InferProfile(ctx, jsi.FromFile(path), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.String() != fromBytes.String() {
		t.Error("InferProfile(FromFile) diverges from InferProfile(FromBytes)")
	}

	chunked, _, err := jsi.InferProfile(ctx, jsi.FromChunkedReader(bytes.NewReader(data)), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if chunked.String() != fromBytes.String() {
		t.Error("InferProfile(FromChunkedReader) diverges from InferProfile(FromBytes)")
	}
}

// TestInferProfileSchemaAgreesWithInfer: the schema a profile implies
// equals the schema the inference pipeline produces for the same data.
func TestInferProfileSchemaAgreesWithInfer(t *testing.T) {
	_, data := manyChunks(t, 150)
	ctx := context.Background()
	p, _, err := jsi.InferProfile(ctx, jsi.FromBytes(data), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schema, _, err := jsi.Infer(ctx, jsi.FromBytes(data), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Schema().String(), schema.String(); got != want {
		t.Errorf("profile schema = %s, inferred = %s", got, want)
	}
}

func TestInferProfileCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := jsi.FromReader(endlessReader{record: []byte(`{"a":1}` + "\n")})
	if _, _, err := jsi.InferProfile(ctx, src, jsi.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestInferProfileValidation(t *testing.T) {
	ctx := context.Background()
	if _, _, err := jsi.InferProfile(ctx, nil, jsi.Options{}); !errors.Is(err, jsi.ErrInvalidOptions) {
		t.Errorf("nil source: err = %v, want ErrInvalidOptions", err)
	}
	if _, _, err := jsi.InferProfile(ctx, jsi.FromBytes(nil), jsi.Options{Workers: -1}); !errors.Is(err, jsi.ErrInvalidOptions) {
		t.Errorf("bad options: err = %v, want ErrInvalidOptions", err)
	}
	if _, _, err := jsi.InferProfile(ctx, jsi.FromBytes([]byte("{oops")), jsi.Options{}); err == nil {
		t.Error("malformed input: err = nil")
	}
	if _, _, err := jsi.InferProfile(ctx, jsi.FromFile("/does/not/exist"), jsi.Options{}); err == nil {
		t.Error("missing file: err = nil")
	} else {
		var fe *jsi.FeedError
		if !errors.As(err, &fe) {
			t.Errorf("missing file: err = %v, want *FeedError", err)
		}
	}
}
