// Command benchobs measures what the observability layer costs and
// writes the result as JSON (the BENCH_obs.json artifact CI uploads).
//
// It benchmarks the public InferNDJSON pipeline three ways over the
// same synthetic dataset:
//
//   - nil recorder: Options zero value — every instrumentation point
//     reduces to one predictable branch; this is what callers who never
//     opt in pay.
//   - collector: Options.Collector installed — atomic counters, gauges
//     and histogram observations along the whole pipeline.
//
// The report contains ns/op for both, the collector overhead in
// percent, and — when -baseline-ns provides a pre-instrumentation
// measurement — the nil-recorder overhead relative to it.
//
// Usage:
//
//	benchobs [-records 5000] [-baseline-ns N] [-o BENCH_obs.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	jsi "repro"
	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchobs:", err)
		os.Exit(1)
	}
}

// Report is the schema of BENCH_obs.json.
type Report struct {
	// Benchmark identifies the measured pipeline entry point.
	Benchmark string `json:"benchmark"`
	// Records is the number of records inferred per iteration.
	Records int `json:"records"`
	// NilRecorderNsPerOp is ns/op with observability compiled in but not
	// requested (the default for every caller).
	NilRecorderNsPerOp int64 `json:"nil_recorder_ns_per_op"`
	// CollectorNsPerOp is ns/op with a Collector installed.
	CollectorNsPerOp int64 `json:"collector_ns_per_op"`
	// CollectorOverheadPct is the relative cost of opting in.
	CollectorOverheadPct float64 `json:"collector_overhead_pct"`
	// BaselineNsPerOp, when nonzero, is an externally measured ns/op of
	// the pipeline before instrumentation existed (pass -baseline-ns),
	// and NilRecorderOverheadPct compares against it.
	BaselineNsPerOp        int64    `json:"baseline_ns_per_op,omitempty"`
	NilRecorderOverheadPct *float64 `json:"nil_recorder_overhead_pct,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchobs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	// The defaults reproduce BenchmarkInferNDJSON's workload (twitter,
	// benchScale() records, seed 1) so -baseline-ns numbers taken from
	// that benchmark compare like for like.
	records := fs.Int("records", 10_000, "records in the synthetic benchmark dataset")
	baselineNs := fs.Int64("baseline-ns", 0, "pre-instrumentation ns/op to compare the nil-recorder path against (0 = skip)")
	outPath := fs.String("o", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := dataset.New("twitter")
	if err != nil {
		return err
	}
	data := dataset.NDJSON(g, *records, 1)

	nilRec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := jsi.InferNDJSON(data, jsi.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	coll := jsi.NewCollector()
	observed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := jsi.InferNDJSON(data, jsi.Options{Collector: coll}); err != nil {
				b.Fatal(err)
			}
		}
	})

	rep := Report{
		Benchmark:          "InferNDJSON/twitter",
		Records:            *records,
		NilRecorderNsPerOp: nilRec.NsPerOp(),
		CollectorNsPerOp:   observed.NsPerOp(),
	}
	if rep.NilRecorderNsPerOp > 0 {
		rep.CollectorOverheadPct = pctOver(rep.CollectorNsPerOp, rep.NilRecorderNsPerOp)
	}
	if *baselineNs > 0 {
		rep.BaselineNsPerOp = *baselineNs
		p := pctOver(rep.NilRecorderNsPerOp, *baselineNs)
		rep.NilRecorderOverheadPct = &p
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		_, err := stdout.Write(enc)
		return err
	}
	return os.WriteFile(*outPath, enc, 0o644)
}

// pctOver reports how much slower got is than base, in percent
// (negative when got is faster).
func pctOver(got, base int64) float64 {
	return (float64(got) - float64(base)) / float64(base) * 100
}
