package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestReportShape(t *testing.T) {
	var out, errBuf bytes.Buffer
	// Tiny dataset: the point is the report shape, not the numbers.
	if err := run([]string{"-records", "50", "-baseline-ns", "1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.NilRecorderNsPerOp <= 0 || rep.CollectorNsPerOp <= 0 {
		t.Errorf("ns/op not measured: %+v", rep)
	}
	if rep.NilRecorderOverheadPct == nil {
		t.Error("baseline provided but nil_recorder_overhead_pct missing")
	}
	if rep.Records != 50 {
		t.Errorf("Records = %d", rep.Records)
	}
}

func TestBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-nope"}, &out, &errBuf); err == nil {
		t.Error("bad flag accepted")
	}
}
