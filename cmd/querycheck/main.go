// Command querycheck statically type-checks a Pig-Latin-like dataflow
// script against the schema inferred from a JSON dataset — the
// application the paper cites from [12]: schema inference makes query
// type checking "much stronger".
//
// Usage:
//
//	querycheck -data tweets.ndjson script.pig
//	querycheck -schema schema.type script.pig
//
// Exit status: 0 clean, 1 diagnostics reported (warnings or errors),
// 2 usage or I/O error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"repro/internal/experiments"
	"repro/internal/querycheck"
	"repro/internal/types"
)

func main() {
	// The root context is minted here and only here: cancellation (^C)
	// must reach the inference pipeline through every layer below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "querycheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("querycheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataPath := fs.String("data", "", "NDJSON dataset to infer the input schema from")
	schemaPath := fs.String("schema", "", "schema file in the type syntax (alternative to -data)")
	showSchemas := fs.Bool("relations", false, "print the inferred schema of every relation")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 1 {
		return 2, fmt.Errorf("need exactly one script file")
	}
	if (*dataPath == "") == (*schemaPath == "") {
		return 2, fmt.Errorf("need exactly one of -data or -schema")
	}

	var input types.Type
	if *schemaPath != "" {
		raw, err := os.ReadFile(*schemaPath)
		if err != nil {
			return 2, err
		}
		t, err := types.Parse(strings.TrimSpace(string(raw)))
		if err != nil {
			return 2, fmt.Errorf("%s: %w", *schemaPath, err)
		}
		input = t
	} else {
		raw, err := os.ReadFile(*dataPath)
		if err != nil {
			return 2, err
		}
		res, err := experiments.RunPipelineOverNDJSON(ctx, raw, experiments.Config{})
		if err != nil {
			return 2, fmt.Errorf("%s: %w", *dataPath, err)
		}
		input = res.Fused
	}

	script, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	res := querycheck.Check(string(script), input)
	fmt.Fprint(stdout, res.Render())
	if *showSchemas {
		for _, name := range res.RelationNames() {
			fmt.Fprintf(stdout, "%s : %s\n", name, res.Relations[name])
		}
	}
	if len(res.Diagnostics) > 0 {
		return 1, nil
	}
	return 0, nil
}
