package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (string, int, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code, err := run(context.Background(), args, &out, &errBuf)
	return out.String(), code, err
}

func TestCleanScriptAgainstData(t *testing.T) {
	dir := t.TempDir()
	data := write(t, dir, "d.ndjson", `{"id":1,"text":"a"}`+"\n"+`{"id":2,"text":"b"}`+"\n")
	script := write(t, dir, "q.pig", `
docs = LOAD d;
out = FOREACH docs GENERATE $.id AS id;
STORE out;
`)
	out, code, err := runCmd(t, "-data", data, script)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || !strings.Contains(out, "ok") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestTypoCaughtAgainstSchemaFile(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.type", "{id: Num, text: Str}")
	script := write(t, dir, "q.pig", `
docs = LOAD d;
out = FOREACH docs GENERATE $.idd AS id;
`)
	out, code, err := runCmd(t, "-schema", schema, script)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out, "dead path") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestRelationsFlag(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.type", "{id: Num}")
	script := write(t, dir, "q.pig", "docs = LOAD d;\nout = FOREACH docs GENERATE $.id AS key;\n")
	out, code, err := runCmd(t, "-schema", schema, "-relations", script)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "out : {key: Num}") {
		t.Errorf("out = %q", out)
	}
}

func TestUsageErrors(t *testing.T) {
	dir := t.TempDir()
	script := write(t, dir, "q.pig", "docs = LOAD d;")
	if _, code, err := runCmd(t, script); err == nil || code != 2 {
		t.Error("missing -data/-schema accepted")
	}
	data := write(t, dir, "d.ndjson", `{"a":1}`)
	schema := write(t, dir, "s.type", "{a: Num}")
	if _, code, err := runCmd(t, "-data", data, "-schema", schema, script); err == nil || code != 2 {
		t.Error("both -data and -schema accepted")
	}
	if _, _, err := runCmd(t, "-data", "/no/such", script); err == nil {
		t.Error("missing data file accepted")
	}
	if _, _, err := runCmd(t, "-schema", "/no/such", script); err == nil {
		t.Error("missing schema file accepted")
	}
	if _, _, err := runCmd(t, "-data", data, "/no/such.pig"); err == nil {
		t.Error("missing script accepted")
	}
	bad := write(t, dir, "bad.type", "{a: Bogus}")
	if _, _, err := runCmd(t, "-schema", bad, script); err == nil {
		t.Error("bad schema file accepted")
	}
	badData := write(t, dir, "bad.ndjson", `{"a":`)
	if _, _, err := runCmd(t, "-data", badData, script); err == nil {
		t.Error("bad dataset accepted")
	}
}

// TestCancelledContext pins the plumbing this command was missing: the
// context handed to run must reach the inference pipeline, so a
// cancelled context aborts dataset inference instead of running it to
// completion on a dead deadline.
func TestCancelledContext(t *testing.T) {
	dir := t.TempDir()
	data := write(t, dir, "d.ndjson", `{"x":1}`+"\n")
	script := write(t, dir, "s.pig", "a = LOAD 'input';\n")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errBuf bytes.Buffer
	if _, err := run(ctx, []string{"-data", data, script}, &out, &errBuf); err == nil {
		t.Fatal("cancelled context did not abort inference")
	}
}
