// Command schemadload is the load-test harness for cmd/schemad: it
// drives many concurrent tenant ingest streams and verifies that
// every tenant's final served schema is byte-identical to offline
// inference over the same records — the end-to-end check of the
// fusion associativity/commutativity guarantee under real HTTP
// concurrency.
//
// Usage:
//
//	schemadload [flags]
//
// With -addr empty (the default) the harness starts an in-process
// serving.Server on a loopback port, so one invocation is a complete
// self-contained smoke test; point -addr at a running schemad to load
// an external instance instead.
//
// Each tenant's records are generated deterministically from -dataset
// and -seed, split into -batches batches spread round-robin over
// -partitions partitions, and POSTed concurrently. Afterwards the
// harness fetches each tenant's fused schema in codec format and
// compares it byte-for-byte with jsoninference.InferNDJSON over the
// tenant's full record set. Any mismatch is a failure (non-zero
// exit).
//
// Flags:
//
//	-addr        target schemad (empty: serve in-process)
//	-tenants     number of concurrent tenants (default 200)
//	-records     records per tenant (default 100)
//	-batches     ingest requests per tenant (default 4)
//	-partitions  partitions per tenant (default 2)
//	-dataset     generator: github, twitter, wikidata, nytimes, mixed
//	-seed        base RNG seed; tenant i uses seed+i
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"time"

	jsi "repro"
	"repro/internal/dataset"
	"repro/internal/serving"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schemadload:", err)
		os.Exit(1)
	}
}

// tenantResult is one tenant's outcome.
type tenantResult struct {
	tenant  string
	records int64
	bytes   int64
	err     error
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schemadload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "target schemad address (empty: serve in-process)")
	tenants := fs.Int("tenants", 200, "number of concurrent tenants")
	records := fs.Int("records", 100, "records per tenant")
	batches := fs.Int("batches", 4, "ingest requests per tenant")
	partitions := fs.Int("partitions", 2, "partitions per tenant")
	datasetName := fs.String("dataset", "twitter", "record generator (see cmd/datagen -list)")
	seed := fs.Int64("seed", 1, "base RNG seed; tenant i uses seed+i")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenants < 1 || *records < 1 || *batches < 1 || *partitions < 1 {
		return errors.New("-tenants, -records, -batches, and -partitions must be positive")
	}
	gen, err := dataset.New(*datasetName)
	if err != nil {
		return err
	}

	base := *addr
	if base == "" {
		dir, err := os.MkdirTemp("", "schemadload-*")
		if err != nil {
			return err
		}
		defer func() {
			if rerr := os.RemoveAll(dir); rerr != nil {
				fmt.Fprintln(stderr, "schemadload:", rerr)
			}
		}()
		srv, err := serving.New(serving.Config{DataDir: dir, IngestWorkers: 1})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go serveHTTP(hs, ln)
		defer closeQuiet(hs)
		base = ln.Addr().String()
		fmt.Fprintf(stderr, "in-process schemad on http://%s\n", base)
	}

	client := &http.Client{}
	results := make([]tenantResult, *tenants)
	start := time.Now()
	var wg sync.WaitGroup
spawn:
	for i := 0; i < *tenants; i++ {
		select {
		case <-ctx.Done():
			break spawn
		default:
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%04d", i)
			res := tenantResult{tenant: name}
			res.records, res.bytes, res.err = driveTenant(ctx, client, base, name, driveConfig{
				gen: gen, records: *records, batches: *batches,
				partitions: *partitions, seed: *seed + int64(i),
			})
			results[i] = res
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var (
		totalRecords int64
		totalBytes   int64
		failures     int
	)
	for _, res := range results {
		if res.err != nil {
			failures++
			if failures <= 10 {
				fmt.Fprintf(stderr, "%s: %v\n", res.tenant, res.err)
			}
			continue
		}
		totalRecords += res.records
		totalBytes += res.bytes
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(stdout,
		"tenants=%d records=%d bytes=%d wall=%s records/s=%.0f heap=%dMiB sys=%dMiB\n",
		*tenants, totalRecords, totalBytes, elapsed.Round(time.Millisecond),
		float64(totalRecords)/elapsed.Seconds(), ms.HeapAlloc>>20, ms.Sys>>20)
	if failures > 0 {
		return fmt.Errorf("%d of %d tenants failed", failures, *tenants)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "all %d tenant schemas byte-identical to offline inference\n", *tenants)
	return nil
}

// driveConfig parameterises one tenant's workload.
type driveConfig struct {
	gen        dataset.Generator
	records    int
	batches    int
	partitions int
	seed       int64
}

// driveTenant ingests one tenant's records in batches across
// partitions, then verifies the served fused schema byte-for-byte
// against offline inference over the same records.
func driveTenant(ctx context.Context, client *http.Client, base, name string, cfg driveConfig) (int64, int64, error) {
	data := dataset.NDJSON(cfg.gen, cfg.records, cfg.seed)
	var sent int64
	for b, batch := range splitBatches(data, cfg.batches) {
		part := fmt.Sprintf("p%02d", b%cfg.partitions)
		u := fmt.Sprintf("http://%s/v1/tenants/%s/ingest?partition=%s", base, url.PathEscape(name), part)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(batch))
		if err != nil {
			return 0, 0, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, 0, err
		}
		body, rerr := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return 0, 0, rerr
		}
		if resp.StatusCode != http.StatusOK {
			return 0, 0, fmt.Errorf("ingest batch %d: status %d: %s", b, resp.StatusCode, bytes.TrimSpace(body))
		}
		sent += int64(len(batch))
	}

	got, err := fetchCodecSchema(ctx, client, base, name)
	if err != nil {
		return 0, 0, err
	}
	offline, _, err := jsi.Infer(ctx, jsi.FromBytes(data), jsi.Options{})
	if err != nil {
		return 0, 0, fmt.Errorf("offline inference: %w", err)
	}
	want, err := offline.MarshalJSON()
	if err != nil {
		return 0, 0, err
	}
	if !bytes.Equal(got, want) {
		return 0, 0, fmt.Errorf("served schema differs from offline inference:\nserved:  %s\noffline: %s", got, want)
	}
	return int64(cfg.records), sent, nil
}

// fetchCodecSchema retrieves a tenant's fused schema in the canonical
// codec encoding.
func fetchCodecSchema(ctx context.Context, client *http.Client, base, name string) ([]byte, error) {
	u := fmt.Sprintf("http://%s/v1/tenants/%s/schema?format=codec", base, url.PathEscape(name))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	body, rerr := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		return nil, rerr
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch schema: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return bytes.TrimSpace(body), nil
}

// splitBatches cuts NDJSON data into n batches on record boundaries.
// Batches may be empty when there are fewer lines than batches; the
// server treats an empty body as zero records, which fuses as the
// identity.
func splitBatches(data []byte, n int) [][]byte {
	lines := bytes.SplitAfter(data, []byte("\n"))
	// SplitAfter yields a trailing empty slice when data ends in \n.
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	out := make([][]byte, n)
	per := (len(lines) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(lines) {
			lo = len(lines)
		}
		if hi > len(lines) {
			hi = len(lines)
		}
		out[i] = bytes.Join(lines[lo:hi], nil)
	}
	return out
}

// serveHTTP runs the in-process server's accept loop; the harness
// shuts it down via closeQuiet when the run ends.
func serveHTTP(hs *http.Server, ln net.Listener) {
	_ = hs.Serve(ln)
}

// closeQuiet closes the in-process server at exit; the run's verdict
// is already decided by then.
func closeQuiet(hs *http.Server) {
	_ = hs.Close()
}
