// Command schemadiff reports structural differences between the schemas
// of two JSON datasets (or two saved schemas): added, removed and
// re-typed fields, and optionality changes. This is the schema-evolution
// application the paper motivates: complete inferred schemas make
// attribute removals and renamings visible, not just base-type changes.
//
// Usage:
//
//	schemadiff old.ndjson new.ndjson
//	schemadiff -schemas old.type new.type   # files in the type syntax
//
// Exit status is 0 when the schemas match, 1 on differences, 2 on error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"repro/internal/diff"
	"repro/internal/experiments"
	"repro/internal/types"
)

func main() {
	// The root context is minted here and only here: cancellation (^C)
	// must reach the inference pipeline through every layer below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schemadiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("schemadiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	schemas := fs.Bool("schemas", false, "arguments are schema files in the type syntax, not datasets")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("need exactly two arguments, got %d", fs.NArg())
	}
	oldT, err := load(ctx, fs.Arg(0), *schemas)
	if err != nil {
		return 2, err
	}
	newT, err := load(ctx, fs.Arg(1), *schemas)
	if err != nil {
		return 2, err
	}
	entries := diff.Compare(oldT, newT)
	fmt.Fprint(stdout, diff.Render(entries))
	if len(entries) > 0 {
		return 1, nil
	}
	return 0, nil
}

// load produces a type from a dataset file (inferring its schema) or a
// schema file in the type syntax.
func load(ctx context.Context, path string, isSchema bool) (types.Type, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if isSchema {
		t, err := types.Parse(strings.TrimSpace(string(data)))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return t, nil
	}
	res, err := experiments.RunPipelineOverNDJSON(ctx, data, experiments.Config{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res.Fused, nil
}
