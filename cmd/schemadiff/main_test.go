package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (string, int, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code, err := run(context.Background(), args, &out, &errBuf)
	return out.String(), code, err
}

func TestIdenticalDatasets(t *testing.T) {
	a := write(t, "a.ndjson", `{"x":1}`+"\n")
	b := write(t, "b.ndjson", `{"x":2}`+"\n")
	out, code, err := runCmd(t, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || !strings.Contains(out, "no differences") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestDatasetsDiffer(t *testing.T) {
	a := write(t, "a.ndjson", `{"x":1}`+"\n")
	b := write(t, "b.ndjson", `{"x":"now a string","y":true}`+"\n")
	out, code, err := runCmd(t, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code = %d, want 1", code)
	}
	if !strings.Contains(out, "type-changed") || !strings.Contains(out, "./y") {
		t.Errorf("out = %q", out)
	}
}

func TestSchemaFiles(t *testing.T) {
	a := write(t, "a.type", "{a: Num, b: Str}")
	b := write(t, "b.type", "{a: Num, b: Str?}")
	out, code, err := runCmd(t, "-schemas", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out, "made-optional") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestErrors(t *testing.T) {
	if _, code, err := runCmd(t, "only-one-arg"); err == nil || code != 2 {
		t.Error("single argument accepted")
	}
	if _, _, err := runCmd(t, "/no/such/a", "/no/such/b"); err == nil {
		t.Error("missing files accepted")
	}
	bad := write(t, "bad.type", "{a: Bogus}")
	good := write(t, "good.type", "{a: Num}")
	if _, _, err := runCmd(t, "-schemas", bad, good); err == nil {
		t.Error("bad schema file accepted")
	}
	badData := write(t, "bad.ndjson", `{"x":`)
	goodData := write(t, "good.ndjson", `{"x":1}`)
	if _, _, err := runCmd(t, badData, goodData); err == nil {
		t.Error("malformed dataset accepted")
	}
}

// TestCancelledContext pins the plumbing this command was missing: the
// context handed to run must reach the inference pipeline, so a
// cancelled context aborts dataset inference instead of running it to
// completion on a dead deadline.
func TestCancelledContext(t *testing.T) {
	a := write(t, "a.ndjson", `{"x":1}`+"\n")
	b := write(t, "b.ndjson", `{"x":2}`+"\n")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errBuf bytes.Buffer
	if _, err := run(ctx, []string{a, b}, &out, &errBuf); err == nil {
		t.Fatal("cancelled context did not abort inference")
	}
}
