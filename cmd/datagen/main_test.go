package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/jsontext"
	"repro/internal/types"
	"repro/internal/value"
)

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestList(t *testing.T) {
	out, _, err := runCmd(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"github", "twitter", "wikidata", "nytimes", "mixed", "eventlog", "webhook"} {
		if !strings.Contains(out, name) {
			t.Errorf("list output missing %q:\n%s", name, out)
		}
	}
}

func TestGenerateToStdout(t *testing.T) {
	out, errOut, err := runCmd(t, "-dataset", "twitter", "-n", "10")
	if err != nil {
		t.Fatal(err)
	}
	if n := jsontext.CountLines([]byte(out)); n != 10 {
		t.Errorf("generated %d lines, want 10", n)
	}
	if _, err := jsontext.ParseAll([]byte(out)); err != nil {
		t.Errorf("output is not valid NDJSON: %v", err)
	}
	if !strings.Contains(errOut, "wrote 10 records") {
		t.Errorf("status line = %q", errOut)
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.ndjson")
	_, _, err := runCmd(t, "-dataset", "github", "-n", "5", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := jsontext.CountLines(data); n != 5 {
		t.Errorf("file has %d lines, want 5", n)
	}
}

// TestFileOutputMatchesStdout is the regression test for the
// droppederr finding on the -o path: closing the output file now feeds
// into the command's error, and the rewritten close path must still
// produce byte-identical output to stdout mode.
func TestFileOutputMatchesStdout(t *testing.T) {
	viaStdout, _, err := runCmd(t, "-dataset", "github", "-n", "50", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.ndjson")
	if _, _, err := runCmd(t, "-dataset", "github", "-n", "50", "-seed", "9", "-o", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != viaStdout {
		t.Errorf("-o output differs from stdout output")
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, _, err := runCmd(t, "-dataset", "wikidata", "-n", "5", "-seed", "99")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runCmd(t, "-dataset", "wikidata", "-n", "5", "-seed", "99")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different output")
	}
	c, _, err := runCmd(t, "-dataset", "wikidata", "-n", "5", "-seed", "100")
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seed produced identical output")
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := runCmd(t); err == nil {
		t.Error("missing -dataset accepted")
	}
	if _, _, err := runCmd(t, "-dataset", "bogus", "-n", "1"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, _, err := runCmd(t, "-dataset", "github", "-n", "0"); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := runCmd(t, "-dataset", "github", "-n", "1", "-o", "/no/such/dir/x"); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestFromSchema(t *testing.T) {
	dir := t.TempDir()
	schemaPath := filepath.Join(dir, "s.type")
	os.WriteFile(schemaPath, []byte("{id: Num, tags: [Str*], name: Str?}"), 0o600)
	out, _, err := runCmd(t, "-from-schema", schemaPath, "-n", "20", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := jsontext.ParseAll([]byte(out))
	if err != nil {
		t.Fatalf("witnesses not valid JSON: %v", err)
	}
	if len(vs) != 20 {
		t.Fatalf("got %d witnesses", len(vs))
	}
	// Every witness conforms to the schema.
	schema := types.MustParse("{id: Num, tags: [Str*], name: Str?}")
	for _, v := range vs {
		if !types.Member(v, schema) {
			t.Fatalf("witness %s does not conform", value.JSON(v))
		}
	}
	// Errors.
	if _, _, err := runCmd(t, "-from-schema", schemaPath, "-dataset", "github"); err == nil {
		t.Error("both -dataset and -from-schema accepted")
	}
	empty := filepath.Join(dir, "empty.type")
	os.WriteFile(empty, []byte("ε"), 0o600)
	if _, _, err := runCmd(t, "-from-schema", empty, "-n", "1"); err == nil {
		t.Error("uninhabited schema accepted")
	}
	if _, _, err := runCmd(t, "-from-schema", "/no/such.type", "-n", "1"); err == nil {
		t.Error("missing schema file accepted")
	}
}
