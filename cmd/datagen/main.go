// Command datagen generates the synthetic datasets standing in for the
// paper's four JSON crawls (GitHub, Twitter, Wikidata, NYTimes), as
// NDJSON on stdout or into a file.
//
// Usage:
//
//	datagen -dataset twitter -n 100000 [-seed 7] [-o twitter.ndjson]
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/types"
	"repro/internal/value"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("dataset", "", "dataset to generate: "+strings.Join(dataset.Names(), ", "))
	fromSchema := fs.String("from-schema", "", "generate witnesses of a schema file (type syntax) instead of a named dataset")
	n := fs.Int("n", 1000, "number of records")
	seed := fs.Int64("seed", 20170321, "generator seed (same seed + n prefix = same records)")
	out := fs.String("o", "", "output file (default stdout)")
	list := fs.Bool("list", false, "list available datasets and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, dn := range dataset.Names() {
			fmt.Fprintln(stdout, dn)
		}
		return nil
	}
	if (*name == "") == (*fromSchema == "") {
		return fmt.Errorf("need exactly one of -dataset or -from-schema (use -list for datasets)")
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		// This file is the command's output: a close error here means
		// records were lost, so it must fail the run, not vanish.
		defer func() {
			if cerr := f.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		w = f
	}
	if *fromSchema != "" {
		raw, err := os.ReadFile(*fromSchema)
		if err != nil {
			return err
		}
		t, err := types.Parse(strings.TrimSpace(string(raw)))
		if err != nil {
			return fmt.Errorf("%s: %w", *fromSchema, err)
		}
		r := rand.New(rand.NewSource(*seed))
		var written int64
		var buf []byte
		for i := 0; i < *n; i++ {
			v, ok := types.Witness(t, r)
			if !ok {
				return fmt.Errorf("the schema admits no values")
			}
			buf = value.AppendJSON(buf[:0], v)
			buf = append(buf, '\n')
			m, err := w.Write(buf)
			written += int64(m)
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(stderr, "wrote %d witnesses (%d bytes) of %s\n", *n, written, *fromSchema)
		return nil
	}
	g, err := dataset.New(*name)
	if err != nil {
		return err
	}
	written, err := dataset.WriteNDJSON(w, g, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d records (%d bytes) of %s\n", *n, written, *name)
	return nil
}
