// Command repolint runs this repository's custom static-analysis suite
// (internal/analyze): five stdlib-only analyzers guarding the
// determinism, immutability and concurrency invariants the schema
// inference pipeline is built on. See docs/ANALYSIS.md for what each
// analyzer checks and how to suppress a finding.
//
// Usage:
//
//	repolint [-json] [-list] [packages...]
//
// Packages are directory patterns relative to the working directory
// (default "./..."); a trailing /... recurses. The exit status is 0
// when no findings remain after suppression, 1 when findings are
// reported, and 2 on usage or load errors — the same convention as go
// vet, so CI can tell "dirty tree" from "broken run".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyze"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyze.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Root the loader at the first pattern so repolint works from any
	// directory inside the module (and, in tests, on other modules).
	loader, err := analyze.NewLoader(patternDir(patterns[0]))
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	diags := analyze.Check(pkgs, analyze.All())

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analyze.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, relativize(d))
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "repolint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}

	if len(diags) > 0 {
		return 1
	}
	return 0
}

// patternDir strips a trailing /... so the loader can be rooted at the
// pattern's directory.
func patternDir(pat string) string {
	dir := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
	if dir == "" {
		return "."
	}
	return dir
}

// relativize renders a diagnostic with a working-directory-relative
// path when possible, keeping output stable across checkouts.
func relativize(d analyze.Diagnostic) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
	}
	return d.String()
}
