// Command repolint runs this repository's custom static-analysis suite
// (internal/analyze): ten stdlib-only analyzers guarding the
// determinism, immutability, purity and concurrency invariants the
// schema inference pipeline is built on — three of them
// interprocedural, consuming call-graph function summaries. See
// docs/ANALYSIS.md for what each analyzer checks and how to suppress a
// finding.
//
// Usage:
//
//	repolint [-json | -sarif] [-fix] [-stats] [-list] [packages...]
//
// Packages are directory patterns relative to the working directory
// (default "./..."); a trailing /... recurses. The exit status is 0
// when no findings remain after suppression, 1 when findings are
// reported, and 2 on usage or load errors — the same convention as go
// vet, so CI can tell "dirty tree" from "broken run".
//
// -json emits the findings as a JSON array (start and end positions,
// analyzer doc anchor, fixability). -sarif emits a SARIF 2.1.0 log for
// code-scanning upload. -fix applies the suggested fixes attached to
// mechanical findings in place and reports what it rewrote; a second
// run after -fix reports zero fixable findings. -stats prints
// per-analyzer finding counts and wall time to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyze"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log instead of text")
	fix := fs.Bool("fix", false, "apply suggested fixes in place")
	stats := fs.Bool("stats", false, "print per-analyzer finding counts and wall time to stderr")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "repolint: -json and -sarif are mutually exclusive")
		return 2
	}

	if *list {
		for _, a := range analyze.All() {
			kind := "local"
			if a.NeedsSummaries {
				kind = "interprocedural"
			}
			fmt.Fprintf(stdout, "%-14s %-16s %s\n", a.Name, kind, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Root the loader at the first pattern so repolint works from any
	// directory inside the module (and, in tests, on other modules).
	root := patternDir(patterns[0])
	loader, err := analyze.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	diags, perAnalyzer := analyze.CheckStats(pkgs, analyze.All())

	if *fix {
		results, err := analyze.ApplyFixes(loader.Fset(), diags)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		applied := 0
		for _, r := range results {
			if r.Applied > 0 {
				fmt.Fprintf(stdout, "%s: applied %d fix(es)\n", relPath(r.File), r.Applied)
				applied += r.Applied
			}
			if r.Skipped > 0 {
				fmt.Fprintf(stdout, "%s: skipped %d overlapping fix(es); re-run repolint\n", relPath(r.File), r.Skipped)
			}
		}
		fmt.Fprintf(stderr, "repolint: %d fix(es) applied\n", applied)
		// Fixed findings are cured; the rest still stand.
		remaining := diags[:0]
		for _, d := range diags {
			if !d.Fixable {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analyze.Diagnostic{}
		}
		for i := range diags {
			diags[i].File = relPath(diags[i].File)
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	case *sarifOut:
		absRoot, err := filepath.Abs(root)
		if err != nil {
			absRoot = root
		}
		if err := analyze.WriteSARIF(stdout, diags, absRoot); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, relativize(d))
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "repolint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}

	if *stats {
		for _, s := range perAnalyzer {
			fmt.Fprintf(stderr, "repolint: %-14s %3d finding(s) %10.2fms\n",
				s.Name, s.Findings, float64(s.Elapsed.Microseconds())/1000)
		}
	}

	if len(diags) > 0 {
		return 1
	}
	return 0
}

// patternDir strips a trailing /... so the loader can be rooted at the
// pattern's directory.
func patternDir(pat string) string {
	dir := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
	if dir == "" {
		return "."
	}
	return dir
}

// relPath renders a path relative to the working directory when
// possible, keeping output stable across checkouts.
func relPath(name string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}

// relativize renders a diagnostic with a working-directory-relative
// path.
func relativize(d analyze.Diagnostic) string {
	d.Pos.Filename = relPath(d.Pos.Filename)
	return d.String()
}
