package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyze"
)

func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

// writeModule lays out a throwaway single-package module and returns
// the package directory.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "p")
	if err := os.Mkdir(dir, 0o700); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	return dir
}

const dirtySrc = `package p

import "os"

func Drop(f *os.File) {
	f.Close()
}
`

const cleanSrc = `package p

import "os"

func Keep(f *os.File) error {
	return f.Close()
}
`

func TestFindingsExitOne(t *testing.T) {
	dir := writeModule(t, dirtySrc)
	out, errOut, code := runCmd(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(out, "droppederr") || !strings.Contains(out, "os.Close") {
		t.Errorf("output = %q, want a droppederr finding", out)
	}
	if !strings.Contains(errOut, "1 finding(s)") {
		t.Errorf("stderr = %q, want a findings summary", errOut)
	}
}

func TestCleanExitZero(t *testing.T) {
	dir := writeModule(t, cleanSrc)
	out, errOut, code := runCmd(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout: %s, stderr: %s)", code, out, errOut)
	}
	if out != "" {
		t.Errorf("output = %q, want empty", out)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, dirtySrc)
	out, _, code := runCmd(t, "-json", dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []analyze.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Analyzer != "droppederr" || diags[0].Line == 0 {
		t.Errorf("diags = %+v, want one droppederr finding with a line", diags)
	}
}

func TestJSONOutputCleanIsEmptyArray(t *testing.T) {
	dir := writeModule(t, cleanSrc)
	out, _, code := runCmd(t, "-json", dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("output = %q, want []", out)
	}
}

func TestSuppressionHonored(t *testing.T) {
	dir := writeModule(t, `package p

import "os"

func Drop(f *os.File) {
	//lint:ignore droppederr read-only file in a throwaway test module
	f.Close()
}
`)
	out, _, code := runCmd(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (out: %s)", code, out)
	}
}

func TestListAnalyzers(t *testing.T) {
	out, _, code := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range analyze.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}

func TestLoadErrorExitTwo(t *testing.T) {
	if _, _, code := runCmd(t, filepath.Join(t.TempDir(), "nope")); code != 2 {
		t.Errorf("exit = %d, want 2 for an unloadable pattern", code)
	}
}
