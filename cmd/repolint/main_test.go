package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"testing"

	"repro/internal/analyze"
)

func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

// writeModule lays out a throwaway single-package module and returns
// the package directory.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "p")
	if err := os.Mkdir(dir, 0o700); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	return dir
}

const dirtySrc = `package p

import "os"

func Drop(f *os.File) {
	f.Close()
}
`

const cleanSrc = `package p

import "os"

func Keep(f *os.File) error {
	return f.Close()
}
`

func TestFindingsExitOne(t *testing.T) {
	dir := writeModule(t, dirtySrc)
	out, errOut, code := runCmd(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(out, "droppederr") || !strings.Contains(out, "os.Close") {
		t.Errorf("output = %q, want a droppederr finding", out)
	}
	if !strings.Contains(errOut, "1 finding(s)") {
		t.Errorf("stderr = %q, want a findings summary", errOut)
	}
}

func TestCleanExitZero(t *testing.T) {
	dir := writeModule(t, cleanSrc)
	out, errOut, code := runCmd(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout: %s, stderr: %s)", code, out, errOut)
	}
	if out != "" {
		t.Errorf("output = %q, want empty", out)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, dirtySrc)
	out, _, code := runCmd(t, "-json", dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []analyze.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Analyzer != "droppederr" || diags[0].Line == 0 {
		t.Errorf("diags = %+v, want one droppederr finding with a line", diags)
	}
}

func TestJSONOutputCleanIsEmptyArray(t *testing.T) {
	dir := writeModule(t, cleanSrc)
	out, _, code := runCmd(t, "-json", dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("output = %q, want []", out)
	}
}

func TestSuppressionHonored(t *testing.T) {
	dir := writeModule(t, `package p

import "os"

func Drop(f *os.File) {
	//lint:ignore droppederr read-only file in a throwaway test module
	f.Close()
}
`)
	out, _, code := runCmd(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (out: %s)", code, out)
	}
}

func TestListAnalyzers(t *testing.T) {
	out, _, code := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(analyze.All()) || len(lines) != 10 {
		t.Fatalf("-list printed %d lines, want 10 (one per analyzer):\n%s", len(lines), out)
	}
	for _, a := range analyze.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
		wantKind := "local"
		if a.NeedsSummaries {
			wantKind = "interprocedural"
		}
		for _, line := range lines {
			if strings.HasPrefix(line, a.Name+" ") && !strings.Contains(line, wantKind) {
				t.Errorf("-list line for %s lacks kind %q: %s", a.Name, wantKind, line)
			}
		}
	}
	for _, name := range []string{"monoidpure", "internmut", "ctxflow"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing interprocedural analyzer %s", name)
		}
	}
}

// TestJSONShapeGolden pins the exact serialized field set of a finding:
// downstream consumers (editor integrations, the CI diff script) key on
// these property names, so adding or renaming one must be a conscious,
// test-breaking act.
func TestJSONShapeGolden(t *testing.T) {
	dir := writeModule(t, dirtySrc)
	out, _, code := runCmd(t, "-json", dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var raw []map[string]any
	if err := json.Unmarshal([]byte(out), &raw); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(raw) != 1 {
		t.Fatalf("got %d findings, want 1", len(raw))
	}
	want := []string{"analyzer", "doc", "message", "file", "line", "col", "endLine", "endCol", "fixable"}
	got := make([]string, 0, len(raw[0]))
	for k := range raw[0] {
		got = append(got, k)
	}
	sort.Strings(want)
	sort.Strings(got)
	if !slices.Equal(got, want) {
		t.Errorf("JSON keys = %v, want %v", got, want)
	}
	if doc, _ := raw[0]["doc"].(string); !strings.HasPrefix(doc, "docs/ANALYSIS.md#") {
		t.Errorf("doc = %q, want a docs/ANALYSIS.md anchor", raw[0]["doc"])
	}
	if end, _ := raw[0]["endLine"].(float64); end < 1 {
		t.Errorf("endLine = %v, want a populated end position", raw[0]["endLine"])
	}
}

func TestJSONAndSARIFMutuallyExclusive(t *testing.T) {
	_, errOut, code := runCmd(t, "-json", "-sarif", ".")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "mutually exclusive") {
		t.Errorf("stderr = %q, want a mutually-exclusive complaint", errOut)
	}
}

// TestSARIFOutput smoke-tests the -sarif path end to end on a dirty
// module: valid JSON, correct version, one result, relative URI.
func TestSARIFOutput(t *testing.T) {
	dir := writeModule(t, dirtySrc)
	out, _, code := runCmd(t, "-sarif", dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("SARIF output is not JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	rs := log.Runs[0].Results
	if len(rs) != 1 || rs[0].RuleID != "droppederr" {
		t.Fatalf("results = %+v, want one droppederr", rs)
	}
	if uri := rs[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; filepath.IsAbs(uri) {
		t.Errorf("artifact URI %q is absolute, want relative to the module root", uri)
	}
}

// TestFixRoundTrip is the acceptance property of -fix: apply the
// mechanical fixes, and a second plain run must come back clean. The
// module has both fixable shapes — a key-collecting map range without a
// sort (nondetmap inserts one plus the "sort" import) and a deferred
// Close with a named error result (droppederr wraps it in errors.Join
// and adds "errors").
func TestFixRoundTrip(t *testing.T) {
	dir := writeModule(t, `package p

import "os"

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func ReadAll(path string) (data []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}
`)
	out, errOut, code := runCmd(t, "-fix", dir)
	if code != 0 {
		t.Fatalf("first -fix run exit = %d (all findings were fixable)\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(errOut, "2 fix(es) applied") {
		t.Errorf("stderr = %q, want 2 fixes applied", errOut)
	}

	src, err := os.ReadFile(filepath.Join(dir, "p.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sort.Strings(keys)", "errors.Join(err, f.Close())", `"sort"`, `"errors"`} {
		if !strings.Contains(string(src), want) {
			t.Errorf("rewritten source missing %q:\n%s", want, src)
		}
	}

	out, errOut, code = runCmd(t, dir)
	if code != 0 {
		t.Fatalf("second run exit = %d, want 0 (round-trip must converge)\nstdout: %s\nstderr: %s", code, out, errOut)
	}
}

// TestStatsOutput checks -stats prints a per-analyzer line with a
// finding count and wall time for every registered analyzer.
func TestStatsOutput(t *testing.T) {
	dir := writeModule(t, dirtySrc)
	_, errOut, code := runCmd(t, "-stats", dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	for _, a := range analyze.All() {
		if !strings.Contains(errOut, a.Name) {
			t.Errorf("-stats output missing %s:\n%s", a.Name, errOut)
		}
	}
	if !strings.Contains(errOut, "finding(s)") || !strings.Contains(errOut, "ms") {
		t.Errorf("-stats output lacks counts or timing:\n%s", errOut)
	}
}

func TestLoadErrorExitTwo(t *testing.T) {
	if _, _, code := runCmd(t, filepath.Join(t.TempDir(), "nope")); code != 2 {
		t.Errorf("exit = %d, want 2 for an unloadable pattern", code)
	}
}
