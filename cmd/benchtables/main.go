// Command benchtables regenerates every table of the paper's evaluation
// (Section 6, Tables 1-8) plus this repository's ablation studies, on
// the synthetic datasets.
//
// Usage:
//
//	benchtables                  # all eight tables at the default scale
//	benchtables -table 4         # just Table 4 (Wikidata)
//	benchtables -max-scale 1000000   # climb the full 1K..1M ladder
//	benchtables -ablation        # the ablation tables instead
//
// Absolute numbers depend on the host; the shapes (who wins, what grows,
// which placement starves the cluster) are the reproduction targets and
// are recorded in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

// writeMetrics dumps the registry snapshot as indented JSON to path
// ("-" = stderr). It reports failures on stderr rather than failing the
// run: the tables are the primary output, the metrics a side channel.
func writeMetrics(path string, reg *obs.Registry, stderr io.Writer) {
	out, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchtables: encoding metrics:", err)
		return
	}
	out = append(out, '\n')
	if path == "-" {
		if _, err := stderr.Write(out); err != nil {
			fmt.Fprintln(stderr, "benchtables: writing metrics:", err)
		}
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(stderr, "benchtables: writing metrics:", err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "table number to regenerate (1-8); 0 means all")
	maxScale := fs.Int("max-scale", experiments.DefaultMaxScale(), "largest record count on the 1K/10K/100K/1M ladder")
	seed := fs.Int64("seed", 0, "dataset seed (0 = default)")
	workers := fs.Int("workers", 0, "map-phase parallelism (0 = all CPUs)")
	ablation := fs.Bool("ablation", false, "run the ablation tables instead of the paper tables")
	metricsPath := fs.String("metrics", "", "write a JSON snapshot of pipeline metrics (per-phase wall times, map-reduce internals) to this file; - means stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{
		Scales:  experiments.ScalesUpTo(*maxScale),
		Seed:    *seed,
		Workers: *workers,
	}
	if *metricsPath != "" {
		reg := obs.NewRegistry()
		cfg.Recorder = reg
		defer writeMetrics(*metricsPath, reg, stderr)
	}

	if *ablation {
		tabs, err := experiments.Ablations(cfg)
		if err != nil {
			return err
		}
		for _, t := range tabs {
			fmt.Fprintln(stdout, t.Render())
		}
		return nil
	}

	if *table == 0 {
		tabs, err := experiments.AllTables(cfg)
		if err != nil {
			return err
		}
		for _, t := range tabs {
			fmt.Fprintln(stdout, t.Render())
		}
		return nil
	}

	var (
		t   experiments.Table
		err error
	)
	switch *table {
	case 1:
		t, err = experiments.Table1(cfg)
	case 2:
		t, err = experiments.DatasetTable("github", cfg)
	case 3:
		t, err = experiments.DatasetTable("twitter", cfg)
	case 4:
		t, err = experiments.DatasetTable("wikidata", cfg)
	case 5:
		t, err = experiments.DatasetTable("nytimes", cfg)
	case 6:
		t, err = experiments.Table6(cfg)
	case 7:
		t, err = experiments.Table7(cfg)
	case 8:
		t, err = experiments.Table8(cfg)
	default:
		return fmt.Errorf("no table %d (the paper has Tables 1-8)", *table)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, t.Render())
	return nil
}
