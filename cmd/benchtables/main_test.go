package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), err
}

func TestSingleTable(t *testing.T) {
	out, err := runCmd(t, "-table", "1", "-max-scale", "200")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("output:\n%s", out)
	}
	for _, name := range []string{"github", "twitter", "wikidata", "nytimes"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestDatasetTableNumbers(t *testing.T) {
	for _, n := range []string{"2", "3", "4", "5"} {
		out, err := runCmd(t, "-table", n, "-max-scale", "100")
		if err != nil {
			t.Fatalf("table %s: %v", n, err)
		}
		if !strings.Contains(out, "Table "+n) {
			t.Errorf("table %s output:\n%s", n, out)
		}
		if !strings.Contains(out, "fused size") {
			t.Errorf("table %s lacks fused size column", n)
		}
	}
}

func TestClusterTables(t *testing.T) {
	out, err := runCmd(t, "-table", "7", "-max-scale", "100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "all-on-one-node") || !strings.Contains(out, "round-robin") {
		t.Errorf("Table 7 output:\n%s", out)
	}
	out, err = runCmd(t, "-table", "8", "-max-scale", "100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "partition 4") || !strings.Contains(out, "average") {
		t.Errorf("Table 8 output:\n%s", out)
	}
}

func TestBadTable(t *testing.T) {
	if _, err := runCmd(t, "-table", "9"); err == nil {
		t.Error("table 9 accepted")
	}
}

func TestAllTablesSmall(t *testing.T) {
	out, err := runCmd(t, "-max-scale", "100", "-workers", "2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if !strings.Contains(out, "Table "+string(rune('0'+i))) {
			t.Errorf("missing Table %d", i)
		}
	}
}

func TestAblationFlag(t *testing.T) {
	out, err := runCmd(t, "-ablation", "-max-scale", "100", "-workers", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ablation: fused schema", "Spark-style coercion", "combiner", "streaming", "tree reduction", "positional extension", "key abstraction", "replication factor"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestMetricsFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	if _, err := runCmd(t, "-table", "2", "-max-scale", "100", "-metrics", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("metrics file is not JSON: %v\n%s", err, data)
	}
	for _, want := range []string{"experiments_records", "mapreduce_tasks"} {
		if m.Counters[want] == 0 {
			t.Errorf("metrics missing counter %s:\n%s", want, data)
		}
	}
}
