package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func runCmd(t *testing.T, args []string, stdin string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(context.Background(), args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestStdinTypeFormat(t *testing.T) {
	out, _, err := runCmd(t, nil, `{"a":1}`+"\n"+`{"a":"s","b":true}`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "{a: Num + Str, b: Bool?}" {
		t.Errorf("output = %q", out)
	}
}

func TestStreamMode(t *testing.T) {
	out, _, err := runCmd(t, []string{"-stream"}, `{"a":1}`+"\n"+`{"b":2}`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "{a: Num?, b: Num?}" {
		t.Errorf("output = %q", out)
	}
}

func TestFormats(t *testing.T) {
	for format, want := range map[string]string{
		"indent":     "a: Num",
		"jsonschema": `"type": "object"`,
		"codec":      `"k":"record"`,
	} {
		out, _, err := runCmd(t, []string{"-format", format}, `{"a":1}`)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("format %s output %q missing %q", format, out, want)
		}
	}
}

func TestUnknownFormat(t *testing.T) {
	if _, _, err := runCmd(t, []string{"-format", "xml"}, `1`); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestStatsFlag(t *testing.T) {
	_, errOut, err := runCmd(t, []string{"-stats"}, `{"a":1}`+"\n"+`{"a":2}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "records=2") {
		t.Errorf("stats output = %q", errOut)
	}
}

func TestFilesAsPartitions(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "a.ndjson")
	f2 := filepath.Join(dir, "b.ndjson")
	os.WriteFile(f1, []byte(`{"x":1}`+"\n"), 0o600)
	os.WriteFile(f2, []byte(`{"y":"s"}`+"\n"), 0o600)
	out, _, err := runCmd(t, []string{f1, f2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "{x: Num?, y: Str?}" {
		t.Errorf("output = %q", out)
	}
	// Streaming over files gives the same schema.
	outStream, _, err := runCmd(t, []string{"-stream", f1, f2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if outStream != out {
		t.Errorf("stream output %q != %q", outStream, out)
	}
}

func TestMissingFile(t *testing.T) {
	if _, _, err := runCmd(t, []string{"/nonexistent/x.ndjson"}, ""); err == nil {
		t.Error("missing file accepted")
	}
	if _, _, err := runCmd(t, []string{"-stream", "/nonexistent/x.ndjson"}, ""); err == nil {
		t.Error("missing file accepted in stream mode")
	}
}

func TestMalformedInput(t *testing.T) {
	if _, _, err := runCmd(t, nil, `{"a":`); err == nil {
		t.Error("malformed input accepted")
	}
}

func TestProfileFlag(t *testing.T) {
	out, _, err := runCmd(t, []string{"-profile"}, `{"a":1}`+"\n"+`{"a":9,"b":"x"}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"profile of 2 values", `"b"? ⟨50%⟩`, "1..9"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}

func TestProfileFlagOverFiles(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "a.ndjson")
	f2 := filepath.Join(dir, "b.ndjson")
	os.WriteFile(f1, []byte(`{"x":1}`+"\n"), 0o600)
	os.WriteFile(f2, []byte(`{"x":2}`+"\n"), 0o600)
	out, _, err := runCmd(t, []string{"-profile", f1, f2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "profile of 2 values") {
		t.Errorf("output = %q", out)
	}
	if _, _, err := runCmd(t, []string{"-profile", "/no/such/file"}, ""); err == nil {
		t.Error("missing profile file accepted")
	}
}

// TestStreamOverFiles covers the per-file streaming loop, whose close
// handling was rewritten to surface close errors (droppederr finding):
// both files must be fully read, fused, and closed without losing the
// inference result.
func TestStreamOverFiles(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "a.ndjson")
	f2 := filepath.Join(dir, "b.ndjson")
	if err := os.WriteFile(f1, []byte(`{"x":1}`+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f2, []byte(`{"x":"s"}`+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCmd(t, []string{"-stream", f1, f2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "{x: Num + Str}" {
		t.Errorf("output = %q", out)
	}
	if _, _, err := runCmd(t, []string{"-stream", "/no/such/file"}, ""); err == nil {
		t.Error("missing stream file accepted")
	}
}

func TestPositionalFlag(t *testing.T) {
	in := `{"p":[1,2]}` + "\n" + `{"p":[3,4]}`
	out, _, err := runCmd(t, []string{"-positional"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "{p: [Num, Num]}" {
		t.Errorf("positional output = %q", out)
	}
	out, _, err = runCmd(t, nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "{p: [Num*]}" {
		t.Errorf("default output = %q", out)
	}
}

func TestExpandFlag(t *testing.T) {
	in := `{"user":{"id":1,"name":"a"},"tags":[{"k":"x"}]}`
	out, _, err := runCmd(t, []string{"-expand", "$.user.*"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "$.user.id : Num") || !strings.Contains(out, "$.user.name : Str") {
		t.Errorf("expand output = %q", out)
	}
	out, _, err = runCmd(t, []string{"-expand", "$.bogus"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no conforming value") {
		t.Errorf("dead-path output = %q", out)
	}
	if _, _, err := runCmd(t, []string{"-expand", "not-a-path"}, in); err == nil {
		t.Error("bad expand path accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if _, _, err := runCmd(t, []string{"-definitely-not-a-flag"}, ""); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSampleFlag(t *testing.T) {
	in := `{"a":1,"b":"x"}` + "\n" + `{"a":2}`
	out, _, err := runCmd(t, []string{"-sample", "3"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"a":`) {
		t.Errorf("sample output = %q", out)
	}
	// Same seed, same sample.
	out2, _, err := runCmd(t, []string{"-sample", "3"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if out != out2 {
		t.Error("sample not deterministic")
	}
}

func TestAbstractFlag(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 5; i++ {
		sb.WriteString(`{"dict":{`)
		for k := 0; k < 6; k++ {
			if k > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `"P%d%d":{"v":%d}`, i, k, k)
		}
		sb.WriteString("}}\n")
	}
	out, _, err := runCmd(t, []string{"-abstract", "8"}, sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{*: {v: Num}}") {
		t.Errorf("abstracted output = %q", out)
	}
	out, _, err = runCmd(t, nil, sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "{*:") {
		t.Errorf("default output should not abstract: %q", out)
	}
}

// syncBuffer lets the test read what run writes to stderr while run is
// still in flight.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDebugAddrServesLiveExpvar drives a run whose stdin stays open,
// and asserts the -debug-addr endpoint reports pipeline metrics while
// the run is still in flight.
func TestDebugAddrServesLiveExpvar(t *testing.T) {
	pr, pw := io.Pipe()
	var out bytes.Buffer
	errW := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), []string{"-debug-addr", "127.0.0.1:0", "-stream"}, pr, &out, errW)
	}()
	if _, err := io.WriteString(pw, `{"a":1}`+"\n"); err != nil {
		t.Fatal(err)
	}

	// The server announces its actual address (the test asked for :0).
	addrRe := regexp.MustCompile(`listening on http://([^/]+)/`)
	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if m := addrRe.FindStringSubmatch(errW.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("debug server address never announced; stderr: %q", errW.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Poll /debug/vars until the live metrics show the record we fed in;
	// the run is provably still in flight because stdin is still open.
	var body string
	for {
		resp, err := http.Get("http://" + addr + "/debug/vars")
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			if cerr := resp.Body.Close(); rerr == nil && cerr == nil {
				body = string(b)
			}
			if strings.Contains(body, `"jsoninfer_metrics"`) && strings.Contains(body, "infer_records") {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("expvar never served live metrics; last body: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "{a: Num}" {
		t.Errorf("schema output = %q", out.String())
	}
}

// TestStatsLowerBoundAcrossFiles asserts the stats line marks
// distinct-types as a lower bound when partitions are merged.
func TestStatsLowerBoundAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "a.ndjson")
	f2 := filepath.Join(dir, "b.ndjson")
	if err := os.WriteFile(f1, []byte(`{"x":1}`+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f2, []byte(`{"y":"s"}`+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	_, errOut, err := runCmd(t, []string{"-stats", f1, f2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "distinct-types>=") {
		t.Errorf("merged stats should mark the lower bound: %q", errOut)
	}
	// A single input is exact: no marker.
	_, errOut, err = runCmd(t, []string{"-stats", f1}, "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(errOut, "distinct-types>=") || !strings.Contains(errOut, "distinct-types=1") {
		t.Errorf("single-file stats should be exact: %q", errOut)
	}
}

// TestStatsDedupExactAcrossFiles: with -dedup the chunked pipeline
// merges distinct-type multisets by identity across partitions, so the
// stats line stays EXACT (no >= marker) over several files — including
// when both files share shapes, where a per-file bound would undercount.
func TestStatsDedupExactAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "a.ndjson")
	f2 := filepath.Join(dir, "b.ndjson")
	// Three distinct shapes overall; each file alone sees two.
	if err := os.WriteFile(f1, []byte(`{"x":1}`+"\n"+`{"shared":true}`+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f2, []byte(`{"y":"s"}`+"\n"+`{"shared":true}`+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	_, errOut, err := runCmd(t, []string{"-stats", "-dedup", f1, f2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(errOut, "distinct-types>=") || !strings.Contains(errOut, "distinct-types=3") {
		t.Errorf("dedup multi-file stats should be exact: %q", errOut)
	}
	// Schema must match the non-dedup run byte for byte.
	out, _, err := runCmd(t, []string{f1, f2}, "")
	if err != nil {
		t.Fatal(err)
	}
	outDedup, _, err := runCmd(t, []string{"-dedup", f1, f2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if out != outDedup {
		t.Errorf("dedup schema %q != default %q", outDedup, out)
	}
	// Streaming with -dedup gets exact counts per file but only a bound
	// across several.
	_, errOut, err = runCmd(t, []string{"-stats", "-dedup", "-stream", f1}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "distinct-types=2") {
		t.Errorf("dedup single-file streaming stats should be exact: %q", errOut)
	}
	_, errOut, err = runCmd(t, []string{"-stats", "-dedup", "-stream", f1, f2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "distinct-types>=2") {
		t.Errorf("dedup multi-file streaming stats should mark the bound: %q", errOut)
	}
}

func TestStatsAverageAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "a.ndjson")
	os.WriteFile(f1, []byte(`{"a":1}`+"\n"+`{"a":2,"b":3}`+"\n"), 0o600)
	_, errOut, err := runCmd(t, []string{"-stats", f1}, "")
	if err != nil {
		t.Fatal(err)
	}
	// sizes 3 and 5 -> avg 4.0
	if !strings.Contains(errOut, "avg=4.0") {
		t.Errorf("stats = %q", errOut)
	}
}

// poisonedNDJSON builds 40 lines of valid NDJSON with one malformed
// (but bracket-balanced, so chunk boundaries stay line-aligned) line
// in the middle: exactly one of the four map chunks fails.
func poisonedNDJSON() string {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		if i == 25 {
			b.WriteString("{\"a\":}\n")
			continue
		}
		fmt.Fprintf(&b, `{"a":%d}`+"\n", i)
	}
	return b.String()
}

func TestOnErrorSkipQuarantinesPoisonedChunk(t *testing.T) {
	out, errOut, err := runCmd(t, []string{"-workers", "1", "-on-error", "skip", "-stats"}, poisonedNDJSON())
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "{a: Num}" {
		t.Errorf("schema = %q, want the clean lines' schema", out)
	}
	if !strings.Contains(errOut, "warning: 1 chunk(s) quarantined") {
		t.Errorf("stderr missing quarantine warning: %q", errOut)
	}
	if !strings.Contains(errOut, "quarantined-chunks=1") {
		t.Errorf("stats line missing quarantine count: %q", errOut)
	}
	// records = 40 lines minus the poisoned chunk's 10.
	if !strings.Contains(errOut, "records=30") {
		t.Errorf("stats line should exclude quarantined records: %q", errOut)
	}
}

func TestOnErrorFailAbortsOnPoisonedChunk(t *testing.T) {
	if _, _, err := runCmd(t, []string{"-workers", "1"}, poisonedNDJSON()); err == nil {
		t.Error("default policy accepted a poisoned chunk")
	}
}

func TestOnErrorRejectsUnknownPolicy(t *testing.T) {
	_, _, err := runCmd(t, []string{"-on-error", "explode"}, `{"a":1}`)
	if err == nil || !strings.Contains(err.Error(), "-on-error") {
		t.Errorf("err = %v, want an unknown -on-error error", err)
	}
}

func TestNegativeRetriesRejected(t *testing.T) {
	if _, _, err := runCmd(t, []string{"-retries", "-1"}, `{"a":1}`); err == nil {
		t.Error("negative -retries accepted")
	}
}
