// Command jsoninfer infers a schema from JSON data.
//
// Usage:
//
//	jsoninfer [flags] [file ...]
//
// With no files, jsoninfer reads from standard input. Inputs hold one or
// more whitespace-separated JSON values (NDJSON works). Multiple files
// are treated as partitions: inferred independently and fused, which by
// associativity equals inferring the concatenation.
//
// Flags:
//
//	-format   output format: type (default), indent, jsonschema, codec
//	-stream   constant-memory streaming mode (single worker, no distinct
//	          type statistics)
//	-workers  map-phase parallelism (default: number of CPUs)
//	-stats    print dataset statistics to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	jsi "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "jsoninfer:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("jsoninfer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "type", "output format: type, indent, jsonschema, codec")
	stream := fs.Bool("stream", false, "constant-memory streaming mode")
	workers := fs.Int("workers", 0, "map-phase parallelism (0 = all CPUs)")
	showStats := fs.Bool("stats", false, "print dataset statistics to stderr")
	profileFlag := fs.Bool("profile", false, "print a statistics-annotated schema instead of a plain one")
	positional := fs.Bool("positional", false, "preserve fixed-length arrays positionally (tuple types)")
	expand := fs.String("expand", "", "expand a path expression (e.g. $.user.*) against the inferred schema")
	sample := fs.Int64("sample", -1, "emit an example value conforming to the schema, generated with this seed")
	abstract := fs.Int("abstract", 0, "abstract dictionary-like records with at least this many keys into {*: T} (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := jsi.Options{Workers: *workers, PreserveTupleArrays: *positional}

	if *profileFlag {
		var p *jsi.Profile
		var perr error
		if fs.NArg() == 0 {
			p, perr = jsi.ProfileReader(stdin, opts)
		} else {
			p = nil
			for _, path := range fs.Args() {
				f, oerr := os.Open(path)
				if oerr != nil {
					return oerr
				}
				fp, ferr := jsi.ProfileReader(f, opts)
				cerr := f.Close()
				if ferr != nil {
					return fmt.Errorf("%s: %w", path, ferr)
				}
				if cerr != nil {
					return fmt.Errorf("%s: %w", path, cerr)
				}
				if p == nil {
					p = fp
				} else {
					p.Merge(fp)
				}
			}
		}
		if perr != nil {
			return perr
		}
		if p == nil {
			return fmt.Errorf("no input")
		}
		fmt.Fprint(stdout, p.String())
		return nil
	}
	var (
		schema *jsi.Schema
		stats  jsi.Stats
		err    error
	)
	switch {
	case fs.NArg() == 0 && *stream:
		schema, stats, err = jsi.InferReader(stdin, opts)
	case fs.NArg() == 0:
		data, rerr := io.ReadAll(stdin)
		if rerr != nil {
			return rerr
		}
		schema, stats, err = jsi.InferNDJSON(data, opts)
	case *stream:
		schema = jsi.EmptySchema()
		for _, path := range fs.Args() {
			f, oerr := os.Open(path)
			if oerr != nil {
				return oerr
			}
			s, st, serr := jsi.InferReader(f, opts)
			cerr := f.Close()
			if serr != nil {
				return fmt.Errorf("%s: %w", path, serr)
			}
			if cerr != nil {
				return fmt.Errorf("%s: %w", path, cerr)
			}
			schema = schema.Fuse(s)
			stats.Records += st.Records
			stats.Bytes += st.Bytes
		}
	default:
		// Files are processed with the bounded-memory chunked pipeline
		// and fused, so arbitrarily large inputs work.
		schema = jsi.EmptySchema()
		for _, path := range fs.Args() {
			s, st, ferr := jsi.InferFile(path, opts)
			if ferr != nil {
				return ferr
			}
			schema = schema.Fuse(s)
			if st.Records > 0 {
				total := stats.Records + st.Records
				stats.AvgTypeSize = (stats.AvgTypeSize*float64(stats.Records) +
					st.AvgTypeSize*float64(st.Records)) / float64(total)
			}
			stats.Records += st.Records
			stats.Bytes += st.Bytes
			if st.MaxTypeSize > stats.MaxTypeSize {
				stats.MaxTypeSize = st.MaxTypeSize
			}
			if stats.MinTypeSize == 0 || (st.Records > 0 && st.MinTypeSize < stats.MinTypeSize) {
				stats.MinTypeSize = st.MinTypeSize
			}
			if st.DistinctTypes > stats.DistinctTypes {
				stats.DistinctTypes = st.DistinctTypes
			}
		}
	}
	if err != nil {
		return err
	}

	if *abstract > 0 {
		schema = schema.AbstractKeys(*abstract)
	}

	if *showStats {
		fmt.Fprintf(stderr, "records=%d bytes=%d distinct-types=%d type-sizes=%d..%d avg=%.1f schema-size=%d\n",
			stats.Records, stats.Bytes, stats.DistinctTypes,
			stats.MinTypeSize, stats.MaxTypeSize, stats.AvgTypeSize, schema.Size())
	}

	if *sample >= 0 {
		out, ok := schema.Sample(*sample)
		if !ok {
			return fmt.Errorf("the schema admits no values")
		}
		fmt.Fprintln(stdout, string(out))
		return nil
	}

	if *expand != "" {
		matches, err := schema.ExpandPath(*expand)
		if err != nil {
			return err
		}
		if len(matches) == 0 {
			fmt.Fprintf(stdout, "no conforming value can contain %s\n", *expand)
			return nil
		}
		for _, m := range matches {
			miss := ""
			if m.CanMiss {
				miss = "  (may be absent)"
			}
			fmt.Fprintf(stdout, "%s : %s%s\n", m.Path, m.Type, miss)
		}
		return nil
	}

	switch *format {
	case "type":
		fmt.Fprintln(stdout, schema.String())
	case "indent":
		fmt.Fprintln(stdout, schema.Indent())
	case "jsonschema":
		out, err := schema.JSONSchema()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(out))
	case "codec":
		out, err := schema.MarshalJSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(out))
	default:
		return fmt.Errorf("unknown format %q (want type, indent, jsonschema, or codec)", *format)
	}
	return nil
}
