// Command jsoninfer infers a schema from JSON data.
//
// Usage:
//
//	jsoninfer [flags] [file ...]
//
// With no files, jsoninfer reads from standard input. Inputs hold one or
// more whitespace-separated JSON values (NDJSON works). Multiple files
// are treated as partitions: inferred independently and fused, which by
// associativity equals inferring the concatenation.
//
// Flags:
//
//	-format      output format: type (default), indent, jsonschema, codec,
//	             enrich (the per-path enrichment report; requires -enrich)
//	-stream      constant-memory streaming mode (single worker, no
//	             distinct type statistics unless -dedup is set)
//	-dedup       deduplication mode: false (default), true, or auto.
//	             true runs the hash-consed fast path (deduplicate
//	             distinct types in the map phase, memoize fusion; same
//	             schema, exact distinct-type statistics); auto samples
//	             each chunk and degrades to the plain path when
//	             hash-consing cannot pay for itself (near-all-distinct
//	             data). A bare -dedup means true.
//	-workers     map-phase parallelism (default: number of CPUs)
//	-retries     per-chunk retry budget for transient failures
//	-on-error    fail (default) aborts on a chunk that exhausts its
//	             retries; skip quarantines it and completes without its
//	             records (reported on stderr)
//	-stats       print dataset statistics to stderr
//	-tagged      infer tagged unions: records discriminated by a string
//	             field ("type", "event", "kind") or by a single
//	             variant-named wrapper field fuse into one record type
//	             per observed tag (docs/UNIONS.md) instead of one record
//	             with every field optional
//	-union-keys  comma-separated discriminator field names probed by
//	             -tagged, in priority order (default type,event,kind)
//	-max-variants  tag cap before a tagged-union hypothesis collapses to
//	             plain record fusion (default 16)
//	-max-tag-len longest string value considered a discriminator tag
//	             (default 40)
//	-enrich      enrichment monoids computed alongside inference in the
//	             same pass (comma list or "all"; docs/ENRICHMENT.md).
//	             jsonschema output gains annotations; the structural
//	             schema and statistics are unchanged.
//	-debug-addr  serve /debug/vars (expvar, including live pipeline
//	             metrics as jsoninfer_metrics) and /debug/pprof on this
//	             address while the run is in flight
//
// Interrupting the process (SIGINT) cancels the pipeline promptly and
// cleanly between chunks.
//
// Every mode — files, stdin, streaming, dedup — runs through the one
// engine in internal/pipeline (docs/ARCHITECTURE.md); the flags above
// only select the feed and the accumulator payload.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"

	jsi "repro"
	"repro/internal/debugserver"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "jsoninfer:", err)
		os.Exit(1)
	}
}

// currentCollector backs the process-wide jsoninfer_metrics expvar
// variable (published through internal/debugserver, whose indirection
// makes republishing across runs safe): /debug/vars reads whichever
// collector the most recent run installed.
var currentCollector atomic.Pointer[jsi.Collector]

// startDebug serves expvar and pprof on addr until the returned stop
// function is called. The actual listening address (useful with ":0")
// is announced on stderr.
func startDebug(addr string, c *jsi.Collector, stderr io.Writer) (func(), error) {
	currentCollector.Store(c)
	debugserver.Publish("jsoninfer_metrics", func() any {
		if c := currentCollector.Load(); c != nil {
			return c.Metrics()
		}
		return nil
	})
	srv, err := debugserver.Start(addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stderr, "debug server listening on %s\n", srv.URL())
	return func() { _ = srv.Close() }, nil
}

// dedupFlag adapts jsi.DedupMode to the flag package: it accepts the
// boolean spellings plus "auto", and a bare -dedup means true.
type dedupFlag struct{ mode jsi.DedupMode }

func (f *dedupFlag) String() string { return f.mode.String() }
func (f *dedupFlag) Set(s string) error {
	m, err := jsi.ParseDedupMode(s)
	if err != nil {
		return err
	}
	f.mode = m
	return nil
}
func (f *dedupFlag) IsBoolFlag() bool { return true }

// splitKeys parses the -union-keys comma list, trimming blanks so
// "type, event" works.
func splitKeys(s string) []string {
	var keys []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			keys = append(keys, k)
		}
	}
	return keys
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("jsoninfer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "type", "output format: type, indent, jsonschema, codec")
	stream := fs.Bool("stream", false, "constant-memory streaming mode")
	var dedup dedupFlag
	fs.Var(&dedup, "dedup", "deduplication mode: false, true or auto (bare -dedup means true)")
	workers := fs.Int("workers", 0, "map-phase parallelism (0 = all CPUs)")
	showStats := fs.Bool("stats", false, "print dataset statistics to stderr")
	profileFlag := fs.Bool("profile", false, "print a statistics-annotated schema instead of a plain one")
	positional := fs.Bool("positional", false, "preserve fixed-length arrays positionally (tuple types)")
	expand := fs.String("expand", "", "expand a path expression (e.g. $.user.*) against the inferred schema")
	sample := fs.Int64("sample", -1, "emit an example value conforming to the schema, generated with this seed")
	abstract := fs.Int("abstract", 0, "abstract dictionary-like records with at least this many keys into {*: T} (0 = off)")
	debugAddr := fs.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060) during the run")
	tagged := fs.Bool("tagged", false, "infer tagged unions from discriminator fields and single-field wrappers (docs/UNIONS.md)")
	unionKeys := fs.String("union-keys", "", "comma-separated discriminator field names for -tagged, in priority order (default type,event,kind)")
	maxVariants := fs.Int("max-variants", 0, "tag cap before a tagged union collapses to plain record fusion (0 = default 16)")
	maxTagLen := fs.Int("max-tag-len", 0, "longest string value considered a discriminator tag (0 = default 40)")
	retries := fs.Int("retries", 0, "per-chunk retry budget for transient failures (0 = no retry)")
	onError := fs.String("on-error", "fail", "chunk failure policy once retries are exhausted: fail or skip")
	enrichNames := fs.String("enrich", "", "enrichment monoids computed alongside inference (comma list: ranges,hll,bloom,formats,lengths,numprec; or \"all\")")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var errPolicy jsi.ErrorPolicy
	switch *onError {
	case "fail":
		errPolicy = jsi.OnErrorFail
	case "skip":
		errPolicy = jsi.OnErrorSkip
	default:
		return fmt.Errorf("unknown -on-error %q (want fail or skip)", *onError)
	}
	opts := jsi.Options{
		Workers:             *workers,
		PreserveTupleArrays: *positional,
		Retries:             *retries,
		OnError:             errPolicy,
		Dedup:               dedup.mode,
		TaggedUnions:        *tagged,
		MaxVariants:         *maxVariants,
		MaxTagLen:           *maxTagLen,
	}
	if *unionKeys != "" {
		if !*tagged {
			return fmt.Errorf("-union-keys requires -tagged")
		}
		opts.UnionKeys = splitKeys(*unionKeys)
	}
	if *enrichNames != "" {
		opts.Enrich = []string{*enrichNames}
	}
	if *format == "enrich" && *enrichNames == "" {
		return fmt.Errorf("-format enrich requires -enrich")
	}
	if *debugAddr != "" {
		opts.Collector = jsi.NewCollector()
		stop, err := startDebug(*debugAddr, opts.Collector, stderr)
		if err != nil {
			return err
		}
		defer stop()
	}

	if *profileFlag {
		src := jsi.FromReader(stdin)
		if fs.NArg() > 0 {
			src = jsi.FromFiles(fs.Args()...)
		}
		p, _, perr := jsi.InferProfile(ctx, src, opts)
		if perr != nil {
			return perr
		}
		fmt.Fprint(stdout, p.String())
		return nil
	}
	var (
		schema *jsi.Schema
		stats  jsi.Stats
		err    error
	)
	// merged marks runs whose statistics combine several partitions, for
	// which DistinctTypes is only a lower bound.
	merged := fs.NArg() > 1
	switch {
	case fs.NArg() == 0 && *stream:
		schema, stats, err = jsi.Infer(ctx, jsi.FromReader(stdin), opts)
	case fs.NArg() == 0:
		data, rerr := io.ReadAll(stdin)
		if rerr != nil {
			return rerr
		}
		schema, stats, err = jsi.Infer(ctx, jsi.FromBytes(data), opts)
	case *stream:
		schema = jsi.EmptySchema()
		for _, path := range fs.Args() {
			f, oerr := os.Open(path)
			if oerr != nil {
				return oerr
			}
			s, st, serr := jsi.Infer(ctx, jsi.FromReader(f), opts)
			cerr := f.Close()
			if serr != nil {
				return fmt.Errorf("%s: %w", path, serr)
			}
			if cerr != nil {
				return fmt.Errorf("%s: %w", path, cerr)
			}
			schema = schema.Fuse(s)
			stats.Records += st.Records
			stats.Bytes += st.Bytes
			// Each file streams through its own dedup table, so across
			// files the distinct count degrades to a per-file maximum —
			// the same lower bound mergeStats keeps.
			if st.DistinctTypes > stats.DistinctTypes {
				stats.DistinctTypes = st.DistinctTypes
			}
		}
	default:
		// Files are partitions of one dataset: each runs through the
		// bounded-memory chunked pipeline and the per-file schemas fuse,
		// so arbitrarily large inputs work.
		schema, stats, err = jsi.Infer(ctx, jsi.FromFiles(fs.Args()...), opts)
	}
	if err != nil {
		return err
	}
	if stats.QuarantinedChunks > 0 {
		fmt.Fprintf(stderr, "warning: %d chunk(s) quarantined after exhausting retries; the schema excludes their records\n",
			stats.QuarantinedChunks)
	}

	if *abstract > 0 {
		schema = schema.AbstractKeys(*abstract)
	}

	if *showStats {
		// Merged partitions cannot combine distinct-type sets, so the
		// count degrades to a lower bound; mark it as such. With -dedup
		// the chunked pipeline merges multisets by identity and stays
		// exact across files — only streaming over several files (one
		// dedup table per file) still degrades.
		dedupOn := dedup.mode != jsi.DedupOff
		lowerBound := merged && !*stream && !dedupOn || merged && *stream && dedupOn
		distinct := fmt.Sprintf("distinct-types=%d", stats.DistinctTypes)
		if lowerBound {
			distinct = fmt.Sprintf("distinct-types>=%d", stats.DistinctTypes)
		}
		faults := ""
		if stats.Retries > 0 || stats.QuarantinedChunks > 0 {
			faults = fmt.Sprintf(" retries=%d quarantined-chunks=%d", stats.Retries, stats.QuarantinedChunks)
		}
		fmt.Fprintf(stderr, "records=%d bytes=%d %s type-sizes=%d..%d avg=%.1f schema-size=%d%s\n",
			stats.Records, stats.Bytes, distinct,
			stats.MinTypeSize, stats.MaxTypeSize, stats.AvgTypeSize, schema.Size(), faults)
	}

	if *sample >= 0 {
		out, ok := schema.Sample(*sample)
		if !ok {
			return fmt.Errorf("the schema admits no values")
		}
		fmt.Fprintln(stdout, string(out))
		return nil
	}

	if *expand != "" {
		matches, err := schema.ExpandPath(*expand)
		if err != nil {
			return err
		}
		if len(matches) == 0 {
			fmt.Fprintf(stdout, "no conforming value can contain %s\n", *expand)
			return nil
		}
		for _, m := range matches {
			miss := ""
			if m.CanMiss {
				miss = "  (may be absent)"
			}
			fmt.Fprintf(stdout, "%s : %s%s\n", m.Path, m.Type, miss)
		}
		return nil
	}

	switch *format {
	case "type":
		fmt.Fprintln(stdout, schema.String())
	case "indent":
		fmt.Fprintln(stdout, schema.Indent())
	case "jsonschema":
		out, err := schema.JSONSchema()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(out))
	case "codec":
		out, err := schema.MarshalJSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(out))
	case "enrich":
		out, err := schema.EnrichmentJSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(out))
	default:
		return fmt.Errorf("unknown format %q (want type, indent, jsonschema, codec, or enrich)", *format)
	}
	return nil
}
