// Command benchperf measures what the hash-consed fast path buys and
// writes the result as JSON (the BENCH_perf.json artifact CI uploads).
//
// For each paper dataset it benchmarks the public InferNDJSON pipeline
// five times over the same synthetic data — Options zero value,
// Options.Dedup on, Dedup auto (the adaptive mode), Options.Enrich
// "all", and Options.TaggedUnions — recording ns/op, B/op, allocs/op,
// the exact distinct-type count the dedup run reports, the enrichment
// lattice's and tagged-union policy's overheads over the default run,
// and worst_case_regression_pct: the worst gap between the adaptive
// mode and the better fixed mode across the grid. The headline comparison is
// InferNDJSON/twitter dedup-on against the committed observability
// baseline (-baseline BENCH_obs.json, whose nil_recorder_ns_per_op was
// measured on the same workload); docs/PERFORMANCE.md explains how to
// read the report.
//
// The report also pins the refactor cost of the unified
// internal/pipeline engine: -prev (default BENCH_perf.json, i.e. the
// committed artifact when run from the repo root) supplies the previous
// report, and pipeline_overhead_pct records how far this run's twitter
// dedup ns/op sits above it. The budget is 5%; a missing or unreadable
// -prev file skips the comparison so fresh checkouts still work.
//
// Usage:
//
//	benchperf [-records 10000] [-baseline BENCH_obs.json] [-prev BENCH_perf.json] [-o BENCH_perf.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	jsi "repro"
	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
}

// Measurement is one benchmarked configuration of the pipeline.
type Measurement struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// DatasetResult compares the default and dedup pipelines on one dataset.
type DatasetResult struct {
	Dataset string `json:"dataset"`
	// Records is the number of records inferred per iteration.
	Records int `json:"records"`
	// DistinctTypes is the exact count the dedup run reports
	// (Stats.DistinctTypes); the default in-memory path reports the same
	// number, pinning that dedup changes cost, not results.
	DistinctTypes int         `json:"distinct_types"`
	Default       Measurement `json:"default"`
	Dedup         Measurement `json:"dedup"`
	// Enriched measures the same workload with every enrichment monoid
	// on (Options.Enrich "all"); EnrichOverheadPct is its ns/op above
	// Default — the documented, paid-only-when-asked-for cost of the
	// lattice (docs/ENRICHMENT.md). Enrichment off stays covered by the
	// Default measurement and the 5% pipeline_overhead_pct budget.
	Enriched          Measurement `json:"enriched"`
	EnrichOverheadPct float64     `json:"enrich_overhead_pct"`
	// Tagged measures the same workload with the tagged-union policy on
	// (Options.TaggedUnions); TaggedOverheadPct is its ns/op above
	// Default — the paid-only-when-asked-for cost of discriminator
	// promotion and the Variants merge (docs/UNIONS.md). The default
	// policy stays covered by the Default measurement and the 5%
	// pipeline_overhead_pct budget.
	Tagged            Measurement `json:"tagged"`
	TaggedOverheadPct float64     `json:"tagged_overhead_pct"`
	// Auto measures the adaptive mode (Options.Dedup DedupAuto), which
	// samples each chunk and degrades to the plain path when
	// hash-consing cannot pay for itself. AutoVsBestPct is its ns/op
	// relative to the better of Default and Dedup on this dataset
	// (positive = auto is slower than the best fixed mode) — auto's
	// whole promise is that this stays near zero on every distribution.
	Auto          Measurement `json:"auto"`
	AutoVsBestPct float64     `json:"auto_vs_best_pct"`
	// NsImprovementPct and AllocsReductionPct compare dedup against the
	// default run above (positive = dedup is better).
	NsImprovementPct   float64 `json:"ns_improvement_pct"`
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
}

// Report is the schema of BENCH_perf.json.
type Report struct {
	// Benchmark identifies the headline workload; Datasets holds the
	// full per-dataset grid.
	Benchmark string          `json:"benchmark"`
	Datasets  []DatasetResult `json:"datasets"`
	// BaselineNsPerOp is nil_recorder_ns_per_op from the BENCH_obs.json
	// passed via -baseline: the committed pre-dedup measurement of the
	// same InferNDJSON/twitter workload.
	BaselineNsPerOp int64 `json:"baseline_ns_per_op,omitempty"`
	// HeadlineNsImprovementPct is twitter dedup-on versus that baseline;
	// HeadlineAllocsReductionPct is twitter dedup-on versus dedup-off
	// (BENCH_obs predates allocation reporting, so allocs compare
	// in-run). The acceptance floors are 25 and 40.
	HeadlineNsImprovementPct   *float64 `json:"headline_ns_improvement_pct,omitempty"`
	HeadlineAllocsReductionPct float64  `json:"headline_allocs_reduction_pct"`
	// PrevDedupNsPerOp is the twitter dedup ns/op read from the previous
	// report (-prev) — the committed fast-path measurement predating this
	// run. PipelineOverheadPct is how far this run's twitter dedup ns/op
	// sits above it: the cost of routing every entry point through the
	// unified internal/pipeline engine (positive = regression, budget 5%).
	// Both are omitted when no previous report is available.
	PrevDedupNsPerOp    int64    `json:"prev_dedup_ns_per_op,omitempty"`
	PipelineOverheadPct *float64 `json:"pipeline_overhead_pct,omitempty"`
	// HeadlineTaggedOverheadPct is the flagship workload's
	// tagged_overhead_pct (twitter): what switching the headline
	// InferNDJSON run to the tagged-union policy costs over the default
	// strategy (docs/UNIONS.md).
	HeadlineTaggedOverheadPct float64 `json:"headline_tagged_overhead_pct"`
	// WorstCaseRegressionPct is the maximum AutoVsBestPct over the
	// dataset grid: how far the adaptive mode sits above the better
	// fixed mode on its least favorable distribution (positive =
	// regression). This is the explicit skew-sensitivity gate — the
	// all-distinct wikidata worst case that motivated adaptive dedup
	// shows up here instead of hiding in the per-dataset grid.
	WorstCaseRegressionPct float64 `json:"worst_case_regression_pct"`
}

// obsBaseline is the slice of BENCH_obs.json benchperf reads.
type obsBaseline struct {
	NilRecorderNsPerOp int64 `json:"nil_recorder_ns_per_op"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchperf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	// The default workload matches cmd/benchobs (twitter, 10k records,
	// seed 1) so the committed baseline compares like for like.
	records := fs.Int("records", 10_000, "records in each synthetic benchmark dataset")
	baseline := fs.String("baseline", "", "BENCH_obs.json to read the pre-dedup ns/op baseline from (empty = skip)")
	prev := fs.String("prev", "BENCH_perf.json", "previous BENCH_perf.json for the pipeline_overhead_pct headline (missing or empty = skip)")
	outPath := fs.String("o", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep := Report{Benchmark: "InferNDJSON/twitter"}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		var obs obsBaseline
		if err := json.Unmarshal(raw, &obs); err != nil {
			return fmt.Errorf("baseline %s: %w", *baseline, err)
		}
		rep.BaselineNsPerOp = obs.NilRecorderNsPerOp
	}
	prevNs := prevDedupNsPerOp(*prev)

	for _, name := range dataset.PaperNames() {
		g, err := dataset.New(name)
		if err != nil {
			return err
		}
		data := dataset.NDJSON(g, *records, 1)

		_, st, err := jsi.InferNDJSON(data, jsi.Options{Dedup: jsi.DedupOn})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}

		res := DatasetResult{
			Dataset:       name,
			Records:       *records,
			DistinctTypes: st.DistinctTypes,
			Default:       measure(data, jsi.Options{}),
			Dedup:         measure(data, jsi.Options{Dedup: jsi.DedupOn}),
			Auto:          measure(data, jsi.Options{Dedup: jsi.DedupAuto}),
			Enriched:      measure(data, jsi.Options{Enrich: []string{"all"}}),
			Tagged:        measure(data, jsi.Options{TaggedUnions: true}),
		}
		res.EnrichOverheadPct = -pctBelow(res.Enriched.NsPerOp, res.Default.NsPerOp)
		res.TaggedOverheadPct = -pctBelow(res.Tagged.NsPerOp, res.Default.NsPerOp)
		best := res.Default.NsPerOp
		if res.Dedup.NsPerOp < best {
			best = res.Dedup.NsPerOp
		}
		res.AutoVsBestPct = -pctBelow(res.Auto.NsPerOp, best)
		if len(rep.Datasets) == 0 || res.AutoVsBestPct > rep.WorstCaseRegressionPct {
			rep.WorstCaseRegressionPct = res.AutoVsBestPct
		}
		res.NsImprovementPct = pctBelow(res.Dedup.NsPerOp, res.Default.NsPerOp)
		res.AllocsReductionPct = pctBelow(res.Dedup.AllocsPerOp, res.Default.AllocsPerOp)
		rep.Datasets = append(rep.Datasets, res)

		if name == "twitter" {
			rep.HeadlineAllocsReductionPct = res.AllocsReductionPct
			rep.HeadlineTaggedOverheadPct = res.TaggedOverheadPct
			if rep.BaselineNsPerOp > 0 {
				p := pctBelow(res.Dedup.NsPerOp, rep.BaselineNsPerOp)
				rep.HeadlineNsImprovementPct = &p
			}
			if prevNs > 0 {
				rep.PrevDedupNsPerOp = prevNs
				p := -pctBelow(res.Dedup.NsPerOp, prevNs)
				rep.PipelineOverheadPct = &p
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		_, err := stdout.Write(enc)
		return err
	}
	return os.WriteFile(*outPath, enc, 0o644)
}

// prevDedupNsPerOp reads the twitter dedup ns/op out of a previous
// report, or 0 when the path is empty, missing or not a report — the
// comparison is best-effort so fresh checkouts and ad-hoc runs work.
func prevDedupNsPerOp(path string) int64 {
	if path == "" {
		return 0
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var old Report
	if json.Unmarshal(raw, &old) != nil {
		return 0
	}
	for _, d := range old.Datasets {
		if d.Dataset == "twitter" {
			return d.Dedup.NsPerOp
		}
	}
	return 0
}

// measure benchmarks InferNDJSON over data with the given options.
func measure(data []byte, opts jsi.Options) Measurement {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := jsi.InferNDJSON(data, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	return Measurement{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// pctBelow reports how far got sits below base, in percent (positive
// when got is smaller, i.e. an improvement).
func pctBelow(got, base int64) float64 {
	return (float64(base) - float64(got)) / float64(base) * 100
}
