package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestReportShape(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_obs.json")
	if err := os.WriteFile(base, []byte(`{"nil_recorder_ns_per_op": 123456}`), 0o600); err != nil {
		t.Fatal(err)
	}
	prev := filepath.Join(dir, "BENCH_perf.json")
	prevRep := `{"datasets":[{"dataset":"twitter","dedup":{"ns_per_op":1000000}}]}`
	if err := os.WriteFile(prev, []byte(prevRep), 0o600); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	// Tiny dataset: the point is the report shape, not the numbers.
	if err := run([]string{"-records", "50", "-baseline", base, "-prev", prev}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Datasets) != 4 {
		t.Fatalf("expected 4 datasets, got %d", len(rep.Datasets))
	}
	for _, d := range rep.Datasets {
		if d.Default.NsPerOp <= 0 || d.Dedup.NsPerOp <= 0 || d.Auto.NsPerOp <= 0 || d.Tagged.NsPerOp <= 0 {
			t.Errorf("%s: ns/op not measured: %+v", d.Dataset, d)
		}
		if d.Default.AllocsPerOp <= 0 || d.Dedup.AllocsPerOp <= 0 {
			t.Errorf("%s: allocs/op not measured: %+v", d.Dataset, d)
		}
		if d.DistinctTypes <= 0 {
			t.Errorf("%s: distinct types not reported", d.Dataset)
		}
		if d.Records != 50 {
			t.Errorf("%s: Records = %d", d.Dataset, d.Records)
		}
	}
	if rep.BaselineNsPerOp != 123456 {
		t.Errorf("baseline not read: %d", rep.BaselineNsPerOp)
	}
	if rep.HeadlineNsImprovementPct == nil {
		t.Error("baseline provided but headline_ns_improvement_pct missing")
	}
	if rep.HeadlineAllocsReductionPct == 0 {
		t.Error("headline_allocs_reduction_pct missing")
	}
	if rep.HeadlineTaggedOverheadPct == 0 {
		t.Error("headline_tagged_overhead_pct missing")
	}
	if rep.PrevDedupNsPerOp != 1000000 {
		t.Errorf("prev_dedup_ns_per_op = %d, want 1000000", rep.PrevDedupNsPerOp)
	}
	if rep.PipelineOverheadPct == nil {
		t.Error("prev report provided but pipeline_overhead_pct missing")
	}
}

func TestPrevDedupNsPerOp(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"datasets":[{"dataset":"github","dedup":{"ns_per_op":7}},{"dataset":"twitter","dedup":{"ns_per_op":42}}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`not json`), 0o600); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		path string
		want int64
	}{
		{good, 42},
		{bad, 0},
		{filepath.Join(dir, "missing.json"), 0},
		{"", 0},
	}
	for _, c := range cases {
		if got := prevDedupNsPerOp(c.path); got != c.want {
			t.Errorf("prevDedupNsPerOp(%q) = %d, want %d", c.path, got, c.want)
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-nope"}, &out, &errBuf); err == nil {
		t.Error("bad flag accepted")
	}
}
