package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer for capturing run's stderr
// while it executes concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRE = regexp.MustCompile(`schemad listening on (http://[^\s]+)`)

// waitForAddr polls stderr for the announced listen address.
func waitForAddr(t *testing.T, buf *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never announced its address; stderr:\n%s", buf.String())
	return ""
}

// TestRunServesAndShutsDown boots the real daemon on an ephemeral
// port, ingests a record, then cancels the root context and checks
// the graceful-shutdown path returns cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stderr syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-data-dir", t.TempDir()}, &stderr)
	}()
	base := waitForAddr(t, &stderr)

	resp, err := http.Post(base+"/v1/tenants/smoke/ingest", "application/x-ndjson",
		strings.NewReader(`{"a":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	var stderr syncBuffer
	if err := run(ctx, []string{"-on-error", "bogus"}, &stderr); err == nil {
		t.Error("run accepted -on-error bogus")
	}
}
