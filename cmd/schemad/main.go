// Command schemad serves multi-tenant incremental schema inference
// over HTTP.
//
// Usage:
//
//	schemad [flags]
//
// Each tenant is an isolated incremental repository: NDJSON batches
// POSTed to its ingest endpoint stream through the same pipeline
// engine as the offline CLI, and the fused schema is available live
// at any time — byte-identical to what offline inference over the
// concatenated batches would produce, by fusion's associativity and
// commutativity. Idle tenants are spilled to disk snapshots so the
// resident set stays bounded; on SIGINT/SIGTERM the server drains
// in-flight requests and snapshots every resident tenant.
//
// Endpoints (see docs/SERVING.md for details and examples):
//
//	GET    /healthz
//	GET    /v1/metrics
//	GET    /v1/tenants
//	POST   /v1/tenants/{tenant}/ingest?partition=P&on_error=fail|skip&enrich=NAMES|off
//	GET    /v1/tenants/{tenant}/schema?format=type|indent|jsonschema|codec|enrich&enrich=off
//	GET    /v1/tenants/{tenant}/partitions
//	GET    /v1/tenants/{tenant}/partitions/{part}/schema
//	DELETE /v1/tenants/{tenant}/partitions/{part}
//	POST   /v1/tenants/{tenant}/diff
//	POST   /v1/tenants/{tenant}/validate
//	GET    /v1/tenants/{tenant}/snapshot
//	PUT    /v1/tenants/{tenant}/snapshot
//	DELETE /v1/tenants/{tenant}
//
// Flags:
//
//	-addr              listen address (default 127.0.0.1:8377)
//	-data-dir          snapshot directory (default: a fresh temp dir,
//	                   announced on stderr)
//	-max-tenants       resident repository cap before LRU spill
//	-max-body-bytes    per-request body cap
//	-ingest-workers    map-phase parallelism per ingest request
//	-retries           per-chunk retry budget for ingest pipelines
//	-on-error          default chunk failure policy: fail or skip
//	-dedup             deduplication mode for ingest pipelines: false
//	                   (default), true, or auto (adaptive per chunk)
//	-enrich            enrichment monoids computed on every ingest
//	                   (comma list or "all"; see docs/ENRICHMENT.md)
//	-debug-addr        serve expvar (schemad_metrics) and pprof here
//	-shutdown-timeout  grace period for draining on SIGINT/SIGTERM
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	jsi "repro"
	"repro/internal/debugserver"
	"repro/internal/serving"
)

// dedupFlag adapts jsi.DedupMode to the flag package: it accepts the
// boolean spellings plus "auto", and a bare -dedup means true.
type dedupFlag struct{ mode jsi.DedupMode }

func (f *dedupFlag) String() string { return f.mode.String() }
func (f *dedupFlag) Set(s string) error {
	m, err := jsi.ParseDedupMode(s)
	if err != nil {
		return err
	}
	f.mode = m
	return nil
}
func (f *dedupFlag) IsBoolFlag() bool { return true }

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schemad:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("schemad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8377", "listen address")
	dataDir := fs.String("data-dir", "", "tenant snapshot directory (default: fresh temp dir)")
	maxTenants := fs.Int("max-tenants", 1024, "resident repository cap before LRU spill to disk")
	maxBodyBytes := fs.Int64("max-body-bytes", 64<<20, "per-request body cap in bytes")
	ingestWorkers := fs.Int("ingest-workers", 2, "map-phase parallelism per ingest request")
	retries := fs.Int("retries", 0, "per-chunk retry budget for ingest pipelines")
	onError := fs.String("on-error", "fail", "default chunk failure policy: fail or skip")
	var dedup dedupFlag
	fs.Var(&dedup, "dedup", "deduplication mode for ingest pipelines: false, true or auto (bare -dedup means true)")
	enrichNames := fs.String("enrich", "", "enrichment monoids for every ingest (comma list or \"all\"; empty disables)")
	tagged := fs.Bool("tagged", false, "infer tagged unions on every ingest (requests can override with ?tagged=)")
	unionKeys := fs.String("union-keys", "", "comma-separated discriminator field names for -tagged (default type,event,kind)")
	debugAddr := fs.String("debug-addr", "", "serve expvar and pprof on this address")
	shutdownTimeout := fs.Duration("shutdown-timeout", 15*time.Second, "grace period for draining in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var skip bool
	switch *onError {
	case "fail":
	case "skip":
		skip = true
	default:
		return fmt.Errorf("unknown -on-error %q (want fail or skip)", *onError)
	}
	var enrich []string
	if *enrichNames != "" {
		enrich = []string{*enrichNames}
	}
	var keys []string
	if *unionKeys != "" {
		if !*tagged {
			return fmt.Errorf("-union-keys requires -tagged")
		}
		keys = strings.Split(*unionKeys, ",")
	}
	if *dataDir == "" {
		dir, err := os.MkdirTemp("", "schemad-*")
		if err != nil {
			return err
		}
		*dataDir = dir
		fmt.Fprintf(stderr, "snapshots in %s\n", dir)
	}

	srv, err := serving.New(serving.Config{
		DataDir:            *dataDir,
		MaxResidentTenants: *maxTenants,
		MaxBodyBytes:       *maxBodyBytes,
		IngestWorkers:      *ingestWorkers,
		Retries:            *retries,
		OnErrorSkip:        skip,
		Dedup:              dedup.mode,
		Enrich:             enrich,
		TaggedUnions:       *tagged,
		UnionKeys:          keys,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "schemad: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		debugserver.Publish("schemad_metrics", func() any { return srv.Metrics() })
		ds, err := debugserver.Start(*debugAddr)
		if err != nil {
			return err
		}
		defer closeQuiet(ds)
		fmt.Fprintf(stderr, "debug server listening on %s\n", ds.URL())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go serveHTTP(hs, ln, errc)
	fmt.Fprintf(stderr, "schemad listening on http://%s\n", ln.Addr())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain in-flight ingests, then persist every resident tenant.
	// WithoutCancel: the parent is already cancelled — the whole point
	// of the grace period is to outlive the signal.
	shCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *shutdownTimeout)
	defer cancel()
	fmt.Fprintln(stderr, "shutting down")
	return errors.Join(hs.Shutdown(shCtx), srv.SaveAll())
}

// serveHTTP runs the accept loop, reporting the terminal error (nil
// for a clean Shutdown) exactly once.
func serveHTTP(hs *http.Server, ln net.Listener, errc chan<- error) {
	err := hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	errc <- err
}

// closeQuiet closes the debug server; its traffic is advisory, so a
// close error is not worth failing the run over.
func closeQuiet(ds *debugserver.Server) {
	_ = ds.Close()
}
