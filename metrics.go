package jsoninference

import (
	"encoding/json"

	"repro/internal/obs"
)

// Metrics is a point-in-time snapshot of a Collector: counters
// (monotonic totals such as records and bytes processed), gauges
// (last-value measurements such as the fused schema size) and
// histograms (distributions such as per-chunk map latencies or
// per-chunk fused sizes — the fusion-growth curve).
//
// Snapshots are plain values. They merge with Merge — counters add,
// gauges keep the maximum, histograms add bucket-wise — and the merge
// is commutative and associative with the zero Metrics as identity,
// the same algebra as schema fusion, so metrics from parallel or
// partitioned runs reduce in any order.
//
// Metric names are stable and documented in docs/OBSERVABILITY.md.
// Names ending in _ns, _permille or _per_sec depend on host timing;
// WithoutTimings strips them, and what remains is byte-for-byte
// reproducible (via MarshalJSON) across runs over the same input with
// the same configuration.
type Metrics struct {
	// Counters holds monotonic totals; merging adds them.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges holds last-value measurements; merging keeps the maximum.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms holds value distributions; merging adds bucket-wise.
	Histograms map[string]Histogram `json:"histograms,omitempty"`
}

// Histogram is a frozen fixed-bucket exponential histogram: bucket i
// holds observed values of bit length i, with inclusive upper bound
// 2^i - 1 (bound 0 holds zero and negative values).
type Histogram struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum int64 `json:"sum"`
	// Buckets holds the non-empty buckets in ascending bound order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one non-empty histogram bucket.
type HistogramBucket struct {
	// Le is the bucket's inclusive upper bound.
	Le int64 `json:"le"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
}

// metricsFromObs deep-copies an internal snapshot into the public type.
func metricsFromObs(m obs.Metrics) Metrics {
	out := Metrics{
		Counters:   make(map[string]int64, len(m.Counters)),
		Gauges:     make(map[string]int64, len(m.Gauges)),
		Histograms: make(map[string]Histogram, len(m.Histograms)),
	}
	for name, v := range m.Counters {
		out.Counters[name] = v
	}
	for name, v := range m.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range m.Histograms {
		ph := Histogram{Count: h.Count, Sum: h.Sum}
		for _, b := range h.Buckets {
			ph.Buckets = append(ph.Buckets, HistogramBucket{Le: b.Le, Count: b.Count})
		}
		out.Histograms[name] = ph
	}
	return out
}

// toObs converts back for the merge implementation in internal/obs.
func (m Metrics) toObs() obs.Metrics {
	out := obs.Metrics{
		Counters:   make(map[string]int64, len(m.Counters)),
		Gauges:     make(map[string]int64, len(m.Gauges)),
		Histograms: make(map[string]obs.HistogramSnapshot, len(m.Histograms)),
	}
	for name, v := range m.Counters {
		out.Counters[name] = v
	}
	for name, v := range m.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range m.Histograms {
		oh := obs.HistogramSnapshot{Count: h.Count, Sum: h.Sum}
		for _, b := range h.Buckets {
			oh.Buckets = append(oh.Buckets, obs.Bucket{Le: b.Le, Count: b.Count})
		}
		out.Histograms[name] = oh
	}
	return out
}

// Merge combines two snapshots without mutating either. The operation
// is commutative and associative with the zero Metrics as identity, so
// snapshots from partitioned runs can be reduced in any order.
func (m Metrics) Merge(other Metrics) Metrics {
	return metricsFromObs(obs.Merge(m.toObs(), other.toObs()))
}

// WithoutTimings returns a copy with every timing-dependent metric
// (names ending in _ns, _permille or _per_sec) removed. The result is
// deterministic for a fixed input and configuration.
func (m Metrics) WithoutTimings() Metrics {
	return metricsFromObs(m.toObs().WithoutTimings())
}

// WithoutFaults returns a copy with every fault-handling metric
// (retries, timeouts, quarantined chunks, injected faults, simulated
// crashes) removed. Composed with WithoutTimings, what remains is
// identical between a clean run and a run whose transient faults were
// all retried to success — the invariant the chaos harness in
// internal/chaos asserts (see docs/FAULTS.md).
func (m Metrics) WithoutFaults() Metrics {
	return metricsFromObs(m.toObs().WithoutFaults())
}

// WithoutCache returns a copy with every cache-effectiveness metric
// (intern_hits/intern_misses and the fuse/simplify cache counters of
// Options.Dedup) removed. Those counters are exact on a single-worker
// fault-free run but shift under concurrency (racing workers may
// double-compute an entry) and under retries (re-parsed chunks
// re-intern their types); composed with WithoutTimings, what remains
// is identical between a dedup run and a default run over the same
// input — the invariant the differential tests assert.
func (m Metrics) WithoutCache() Metrics {
	return metricsFromObs(m.toObs().WithoutCache())
}

// MarshalJSON renders the snapshot deterministically: map keys sort
// and buckets are stored in ascending bound order.
func (m Metrics) MarshalJSON() ([]byte, error) {
	type plain Metrics
	return json.Marshal(plain(m))
}

// Collector accumulates pipeline metrics across one or more inference
// runs. Install one with Options.Collector; Metrics returns a snapshot
// at any time, including mid-run from another goroutine (cmd/jsoninfer
// serves exactly that through its -debug-addr expvar endpoint). The
// zero value is not ready; use NewCollector.
type Collector struct {
	reg *obs.Registry
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{reg: obs.NewRegistry()} }

// Metrics snapshots everything recorded so far. Safe to call
// concurrently with a running inference; mid-run snapshots are
// monotonic but may tear across metrics (each value is individually
// atomic, the set is not).
func (c *Collector) Metrics() Metrics { return metricsFromObs(c.reg.Snapshot()) }

// recorder exposes the internal registry to the pipeline. A nil
// Collector yields a nil Recorder (the universal "don't record").
func (c *Collector) recorder() obs.Recorder {
	if c == nil {
		return nil
	}
	return c.reg
}
