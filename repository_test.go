package jsoninference_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	jsi "repro"
)

func inferSchema(t *testing.T, data string) (*jsi.Schema, jsi.Stats) {
	t.Helper()
	schema, stats, err := jsi.InferNDJSON([]byte(data), jsi.Options{})
	if err != nil {
		t.Fatalf("InferNDJSON: %v", err)
	}
	return schema, stats
}

func TestRepositoryAppendFusesLikeOffline(t *testing.T) {
	batches := []string{
		`{"id": 1, "tags": ["a"]}` + "\n" + `{"id": 2}`,
		`{"id": "x", "draft": true}`,
		`{"id": 3, "tags": [7]}`,
	}
	repo := jsi.NewRepository()
	var all strings.Builder
	var records int64
	for i, b := range batches {
		schema, stats := inferSchema(t, b)
		repo.Append(fmt.Sprintf("part-%d", i%2), schema, stats.Records)
		all.WriteString(b)
		all.WriteString("\n")
		records += stats.Records
	}
	offline, _ := inferSchema(t, all.String())
	if got, want := repo.Schema().String(), offline.String(); got != want {
		t.Errorf("repository schema = %s, offline = %s", got, want)
	}
	if got := repo.Count(); got != records {
		t.Errorf("Count = %d, want %d", got, records)
	}
	if got, want := repo.Partitions(), []string{"part-0", "part-1"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Partitions = %v, want %v", got, want)
	}
	if n, ok := repo.PartitionCount("part-0"); !ok || n != 3 {
		t.Errorf("PartitionCount(part-0) = %d, %v; want 3, true", n, ok)
	}
	if _, ok := repo.PartitionSchema("absent"); ok {
		t.Error("PartitionSchema(absent) reported existence")
	}
}

func TestRepositoryNilSchemaAppend(t *testing.T) {
	repo := jsi.NewRepository()
	repo.Append("p", nil, 5)
	if n := repo.Count(); n != 5 {
		t.Errorf("Count = %d, want 5", n)
	}
	if !repo.Schema().IsEmpty() {
		t.Errorf("schema = %s, want empty", repo.Schema())
	}
}

func TestRepositoryDropPartition(t *testing.T) {
	repo := jsi.NewRepository()
	s1, st1 := inferSchema(t, `{"id": 1}`)
	s2, st2 := inferSchema(t, `{"name": "x"}`)
	repo.Append("a", s1, st1.Records)
	repo.Append("b", s2, st2.Records)
	repo.DropPartition("b")
	if got, want := repo.Schema().String(), s1.String(); got != want {
		t.Errorf("after drop: schema = %s, want %s", got, want)
	}
	repo.DropPartition("absent") // no-op
	if got := len(repo.Partitions()); got != 1 {
		t.Errorf("partitions = %d, want 1", got)
	}
}

func TestRepositorySaveLoadRoundTrip(t *testing.T) {
	repo := jsi.NewRepository()
	s1, st1 := inferSchema(t, `{"id": 1, "tags": ["a", "b"]}`)
	s2, st2 := inferSchema(t, `{"id": "x", "draft": true}`)
	repo.Append("2024-01", s1, st1.Records)
	repo.Append("2024-02", s2, st2.Records)

	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := jsi.LoadRepository(&buf)
	if err != nil {
		t.Fatalf("LoadRepository: %v", err)
	}
	if got, want := loaded.Schema().String(), repo.Schema().String(); got != want {
		t.Errorf("loaded schema = %s, want %s", got, want)
	}
	if got, want := loaded.Count(), repo.Count(); got != want {
		t.Errorf("loaded count = %d, want %d", got, want)
	}
	if _, err := jsi.LoadRepository(strings.NewReader("{not json")); err == nil {
		t.Error("LoadRepository accepted malformed input")
	}
}

// TestRepositoryEnrichmentRoundTrip: appended schemas carry their
// enrichment lattice into the repository (per partition and fused
// globally), and Save/Load preserves it — the reloaded repository
// serves byte-identical annotated schemas and reports. The global
// enrichment must equal a direct inference over the concatenation,
// because lattice union is the same commutative monoid the fused
// schema rides.
func TestRepositoryEnrichmentRoundTrip(t *testing.T) {
	enrich := jsi.Options{Enrich: []string{"all"}}
	batches := []string{
		`{"n": 3, "when": "2024-01-05"}` + "\n" + `{"n": 1, "when": "2023-11-30"}`,
		`{"n": 2.5, "tags": ["a", "b"]}`,
	}
	repo := jsi.NewRepository()
	var all strings.Builder
	for i, b := range batches {
		schema, stats, err := jsi.InferNDJSON([]byte(b), enrich)
		if err != nil {
			t.Fatal(err)
		}
		if !schema.Enriched() {
			t.Fatalf("batch %d not enriched", i)
		}
		repo.Append(fmt.Sprintf("part-%d", i), schema, stats.Records)
		all.WriteString(b + "\n")
	}
	offline, _, err := jsi.InferNDJSON([]byte(all.String()), enrich)
	if err != nil {
		t.Fatal(err)
	}
	wantJS, err := offline.JSONSchema()
	if err != nil {
		t.Fatal(err)
	}
	wantReport, err := offline.EnrichmentJSON()
	if err != nil {
		t.Fatal(err)
	}

	checkRepo := func(label string, r *jsi.Repository) {
		t.Helper()
		got := r.Schema()
		if !got.Enriched() {
			t.Fatalf("%s: global schema lost enrichment", label)
		}
		js, err := got.JSONSchema()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js, wantJS) {
			t.Errorf("%s: annotated schema diverged from offline\n got: %s\nwant: %s", label, js, wantJS)
		}
		rep, err := got.EnrichmentJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rep, wantReport) {
			t.Errorf("%s: enrichment report diverged from offline\n got: %s\nwant: %s", label, rep, wantReport)
		}
		ps, ok := r.PartitionSchema("part-0")
		if !ok || !ps.Enriched() {
			t.Errorf("%s: partition schema not enriched (ok=%v)", label, ok)
		}
	}
	checkRepo("live", repo)

	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := jsi.LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checkRepo("reloaded", loaded)

	// A second save of the reloaded repository is byte-identical: the
	// wire format itself is deterministic, enrichment included.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := repo.Save(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Errorf("save-load-save not byte-stable\n got: %s\nwant: %s", buf2.Bytes(), buf3.Bytes())
	}

	// Appending a plain (unenriched) schema still works: the lattice
	// union simply has nothing new for those values.
	plain, stats, err := jsi.InferNDJSON([]byte(`{"n": 9}`), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	repo.Append("part-plain", plain, stats.Records)
	if !repo.Schema().Enriched() {
		t.Error("appending a plain schema dropped the repository's enrichment")
	}
}

// TestRepositoryConcurrentAppendScheamSave races Append, Schema,
// PartitionSchema and Save on one Repository — the access pattern of a
// schemad tenant under concurrent ingest — and then checks the final
// schema equals the offline reference. Run under -race.
func TestRepositoryConcurrentAppendSchemaSave(t *testing.T) {
	const (
		writers = 8
		batches = 25
	)
	batch := `{"id": 1, "tags": ["a"]}` + "\n" + `{"id": "x", "draft": true}`
	schema, stats := inferSchema(t, batch)

	repo := jsi.NewRepository()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				repo.Append(fmt.Sprintf("part-%d", w%3), schema, stats.Records)
				_ = repo.Schema().Size()
				_, _ = repo.PartitionSchema("part-0")
				var buf bytes.Buffer
				if err := repo.Save(&buf); err != nil {
					t.Errorf("Save: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()

	if got, want := repo.Schema().String(), schema.String(); got != want {
		t.Errorf("final schema = %s, want %s", got, want)
	}
	if got, want := repo.Count(), int64(writers*batches)*stats.Records; got != want {
		t.Errorf("final count = %d, want %d", got, want)
	}
}
