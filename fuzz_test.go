package jsoninference_test

import (
	"bytes"
	"context"
	"testing"

	jsi "repro"
)

// FuzzInferEndToEnd fuzzes the public API with the differential oracle
// of differential_test.go: for arbitrary input bytes the 8-worker
// chunked pipeline, the 1-worker sequential run and the streaming
// decoder must agree on acceptance, on the inferred schema's canonical
// bytes, and on the record count. The fuzzer hunts for inputs that make
// chunk boundaries or scheduling observable — exactly what the fusion
// laws forbid.
func FuzzInferEndToEnd(f *testing.F) {
	f.Add([]byte(`{"a":1}` + "\n" + `{"a":"s","b":[1,2]}`))
	f.Add([]byte("1 2 3"))
	f.Add([]byte(`{"a":{"b":[null,true,{"c":1.5e10}]}}`))
	f.Add([]byte("[[[[[]]]]]"))
	f.Add([]byte("{}\n[]\n\"\"\n0\nnull\nfalse"))
	f.Add([]byte("  \n\t "))
	f.Add([]byte(`{"a":1`)) // truncated: both paths must reject
	// Enrichment-sensitive shapes: near-miss date strings that must NOT
	// be classified as formats, huge and tiny magnitudes for min/max,
	// and mixed integer/fractional precision in one field.
	f.Add([]byte(`{"d":"2023-02-30"}` + "\n" + `{"d":"2024-1-05"}` + "\n" + `{"d":"2024-01-05"}`))
	f.Add([]byte(`{"n":1e300}` + "\n" + `{"n":-1e300}` + "\n" + `{"n":5e-324}` + "\n" + `{"n":-0.0}`))
	f.Add([]byte(`{"x":1}` + "\n" + `{"x":1.5}` + "\n" + `{"x":2}` + "\n" + `{"u":"6ba7b810-9dad-11d1-80b4-00c04fd430c8"}`))
	// Escape-heavy shapes for the zero-copy lexer: multi-escape strings,
	// UTF-16 surrogate pairs, lone surrogates, escaped field names and
	// JS line separators — everything that forces the scanner off its
	// escape-free fast path and through the byte-slice decode loop.
	f.Add([]byte(`{"s":"\u0041\u00e9\u4e2d\ufeff"}` + "\n" + `{"s":"\ud83d\ude00 pair"}`))
	f.Add([]byte(`{"\ud834\udd1e":"\\\\\\"\\n\\t"}` + "\n" + `{"q":"a\u0020b\ud800c"}` + "\n" + `{"q":"\udc00 lone low"}`))
	f.Add([]byte(`{"e":"\\\\\\\\\\"\\/\\b\\f\\n\\r\\t\u2028\u2029"}` + "\n" + `{"e":"plain then \ud83d\ude00\uD83D"}`))
	// Tagged-union shapes: discriminator flips (same key, different tag
	// values, divergent payloads), records missing the discriminator that
	// must fall through to the catch-all, high-cardinality tag near-misses
	// that trip the variant cap mid-stream, wrapper-style single-field
	// envelopes, and non-string discriminators that must block promotion.
	f.Add([]byte(`{"type":"a","x":1}` + "\n" + `{"type":"b","y":"s"}` + "\n" + `{"type":"a","x":2,"z":true}`))
	f.Add([]byte(`{"type":"push","n":1}` + "\n" + `{"n":2}` + "\n" + `{"type":"fork","n":3}` + "\n" + `{"other":null}`))
	f.Add([]byte(`{"event":"t01"}` + "\n" + `{"event":"t02"}` + "\n" + `{"event":"t03"}` + "\n" + `{"event":"t04"}` + "\n" +
		`{"event":"t05"}` + "\n" + `{"event":"t06"}` + "\n" + `{"event":"t07"}` + "\n" + `{"event":"t08"}` + "\n" +
		`{"event":"t09"}` + "\n" + `{"event":"t10"}` + "\n" + `{"event":"t11"}` + "\n" + `{"event":"t12"}` + "\n" +
		`{"event":"t13"}` + "\n" + `{"event":"t14"}` + "\n" + `{"event":"t15"}` + "\n" + `{"event":"t16"}` + "\n" +
		`{"event":"t17"}` + "\n" + `{"event":"t18"}`))
	f.Add([]byte(`{"delete":{"id":1}}` + "\n" + `{"scrub_geo":{"id":2}}` + "\n" + `{"text":"tweet","id":3}`))
	f.Add([]byte(`{"kind":42,"v":1}` + "\n" + `{"kind":"ok","v":2}` + "\n" + `{"kind":null,"v":3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		seqSchema, seqStats, seqErr := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 1})
		parSchema, parStats, parErr := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 8})
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("acceptance diverged: sequential err = %v, parallel err = %v", seqErr, parErr)
		}
		if seqErr != nil {
			return
		}
		seqJSON, err := seqSchema.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal sequential: %v", err)
		}
		parJSON, err := parSchema.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal parallel: %v", err)
		}
		if !bytes.Equal(seqJSON, parJSON) {
			t.Fatalf("schemas diverged\n sequential: %s\n   parallel: %s", seqJSON, parJSON)
		}
		if seqStats.Records != parStats.Records {
			t.Fatalf("Records diverged: sequential %d, parallel %d", seqStats.Records, parStats.Records)
		}

		// Cross-check the constant-memory streaming path.
		rdSchema, rdStats, rdErr := jsi.Infer(context.Background(), jsi.FromReader(bytes.NewReader(data)), jsi.Options{})
		if rdErr != nil {
			t.Fatalf("streaming rejected input the chunked pipeline accepted: %v", rdErr)
		}
		rdJSON, err := rdSchema.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal streaming: %v", err)
		}
		if !bytes.Equal(seqJSON, rdJSON) {
			t.Fatalf("streaming schema diverged\n sequential: %s\n  streaming: %s", seqJSON, rdJSON)
		}
		if rdStats.Records != seqStats.Records {
			t.Fatalf("streaming Records = %d, want %d", rdStats.Records, seqStats.Records)
		}

		// Cross-check the hash-consed dedup variants: parallel chunked
		// and streaming, both against the same sequential reference. The
		// fuzzer hunts for shapes where interning, the memoized fuse
		// cache or multiset merging would become observable.
		ddSchema, ddStats, ddErr := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 8, Dedup: jsi.DedupOn})
		if ddErr != nil {
			t.Fatalf("dedup rejected input the default pipeline accepted: %v", ddErr)
		}
		ddJSON, err := ddSchema.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal dedup: %v", err)
		}
		if !bytes.Equal(seqJSON, ddJSON) {
			t.Fatalf("dedup schema diverged\n sequential: %s\n      dedup: %s", seqJSON, ddJSON)
		}
		if ddStats.Records != seqStats.Records {
			t.Fatalf("dedup Records = %d, want %d", ddStats.Records, seqStats.Records)
		}
		if ddStats.DistinctTypes != seqStats.DistinctTypes {
			t.Fatalf("dedup DistinctTypes = %d, want %d", ddStats.DistinctTypes, seqStats.DistinctTypes)
		}

		sdSchema, sdStats, sdErr := jsi.Infer(context.Background(), jsi.FromReader(bytes.NewReader(data)), jsi.Options{Dedup: jsi.DedupOn})
		if sdErr != nil {
			t.Fatalf("streaming dedup rejected input the default pipeline accepted: %v", sdErr)
		}
		sdJSON, err := sdSchema.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal streaming dedup: %v", err)
		}
		if !bytes.Equal(seqJSON, sdJSON) {
			t.Fatalf("streaming dedup schema diverged\n sequential: %s\n      dedup: %s", seqJSON, sdJSON)
		}
		if sdStats.Records != seqStats.Records || sdStats.DistinctTypes != seqStats.DistinctTypes {
			t.Fatalf("streaming dedup stats diverged: %+v vs %+v", sdStats, seqStats)
		}

		// Adaptive-dedup variants: DedupAuto may route any mix of chunk
		// portions through the interned and plain paths, but schemas and
		// Stats must stay byte-identical to the fixed modes — only the
		// cost model is allowed to adapt.
		adSchema, adStats, adErr := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 8, Dedup: jsi.DedupAuto})
		if adErr != nil {
			t.Fatalf("auto rejected input the default pipeline accepted: %v", adErr)
		}
		adJSON, err := adSchema.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal auto: %v", err)
		}
		if !bytes.Equal(seqJSON, adJSON) {
			t.Fatalf("auto schema diverged\n sequential: %s\n       auto: %s", seqJSON, adJSON)
		}
		if adStats.Records != seqStats.Records || adStats.DistinctTypes != seqStats.DistinctTypes {
			t.Fatalf("auto stats diverged: %+v vs %+v", adStats, seqStats)
		}

		saSchema, saStats, saErr := jsi.Infer(context.Background(), jsi.FromReader(bytes.NewReader(data)), jsi.Options{Dedup: jsi.DedupAuto})
		if saErr != nil {
			t.Fatalf("streaming auto rejected input the default pipeline accepted: %v", saErr)
		}
		saJSON, err := saSchema.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal streaming auto: %v", err)
		}
		if !bytes.Equal(seqJSON, saJSON) {
			t.Fatalf("streaming auto schema diverged\n sequential: %s\n       auto: %s", seqJSON, saJSON)
		}
		if saStats.Records != seqStats.Records || saStats.DistinctTypes != seqStats.DistinctTypes {
			t.Fatalf("streaming auto stats diverged: %+v vs %+v", saStats, seqStats)
		}

		// Tagged-union variants: the Variants merge must keep the policy
		// inside the fusion monoid, so sequential, parallel chunked,
		// parallel dedup and streaming tagged runs agree byte for byte on
		// arbitrary accepted inputs — including discriminator flips,
		// missing discriminators and cap-tripping tag cardinalities.
		tgSchema, tgStats, tgErr := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 1, TaggedUnions: true})
		if tgErr != nil {
			t.Fatalf("tagged run rejected input the plain pipeline accepted: %v", tgErr)
		}
		tgJSON, err := tgSchema.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal tagged: %v", err)
		}
		if tgStats.Records != seqStats.Records {
			t.Fatalf("tagged Records = %d, want %d", tgStats.Records, seqStats.Records)
		}
		for _, variant := range []struct {
			label string
			src   jsi.Source
			opts  jsi.Options
		}{
			{"parallel", jsi.FromBytes(data), jsi.Options{Workers: 8, TaggedUnions: true}},
			{"parallel dedup", jsi.FromBytes(data), jsi.Options{Workers: 8, Dedup: jsi.DedupOn, TaggedUnions: true}},
			{"streaming", jsi.FromReader(bytes.NewReader(data)), jsi.Options{TaggedUnions: true}},
		} {
			vs, vst, verr := jsi.Infer(context.Background(), variant.src, variant.opts)
			if verr != nil {
				t.Fatalf("tagged %s rejected accepted input: %v", variant.label, verr)
			}
			vJSON, err := vs.MarshalJSON()
			if err != nil {
				t.Fatalf("marshal tagged %s: %v", variant.label, err)
			}
			if !bytes.Equal(vJSON, tgJSON) {
				t.Fatalf("tagged %s schema diverged\n got: %s\nwant: %s", variant.label, vJSON, tgJSON)
			}
			if vst.Records != tgStats.Records {
				t.Fatalf("tagged %s Records = %d, want %d", variant.label, vst.Records, tgStats.Records)
			}
		}

		// Enrichment-on variants: the lattice must be additive (identical
		// structural bytes and Stats) and deterministic (annotated schema
		// and report byte-identical across sequential, parallel chunked,
		// and streaming execution) on arbitrary accepted inputs.
		enrich := []string{"all"}
		enSchema, enStats, enErr := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 1, Enrich: enrich})
		if enErr != nil {
			t.Fatalf("enriched run rejected input the plain pipeline accepted: %v", enErr)
		}
		enJSON, err := enSchema.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal enriched: %v", err)
		}
		if !bytes.Equal(seqJSON, enJSON) {
			t.Fatalf("enrichment changed structural schema\n plain: %s\n enriched: %s", seqJSON, enJSON)
		}
		if enStats != seqStats {
			t.Fatalf("enrichment changed Stats: %+v vs %+v", enStats, seqStats)
		}
		refJS, err := enSchema.JSONSchema()
		if err != nil {
			t.Fatalf("JSONSchema enriched: %v", err)
		}
		refReport, err := enSchema.EnrichmentJSON()
		if err != nil {
			t.Fatalf("EnrichmentJSON: %v", err)
		}
		for _, variant := range []struct {
			label string
			src   jsi.Source
			opts  jsi.Options
		}{
			{"parallel", jsi.FromBytes(data), jsi.Options{Workers: 8, Enrich: enrich}},
			{"parallel dedup", jsi.FromBytes(data), jsi.Options{Workers: 8, Dedup: jsi.DedupOn, Enrich: enrich}},
			{"streaming", jsi.FromReader(bytes.NewReader(data)), jsi.Options{Enrich: enrich}},
		} {
			vs, vst, verr := jsi.Infer(context.Background(), variant.src, variant.opts)
			if verr != nil {
				t.Fatalf("enriched %s rejected accepted input: %v", variant.label, verr)
			}
			vjs, err := vs.JSONSchema()
			if err != nil {
				t.Fatalf("JSONSchema enriched %s: %v", variant.label, err)
			}
			if !bytes.Equal(vjs, refJS) {
				t.Fatalf("enriched %s annotated schema diverged\n got: %s\nwant: %s", variant.label, vjs, refJS)
			}
			vrep, err := vs.EnrichmentJSON()
			if err != nil {
				t.Fatalf("EnrichmentJSON %s: %v", variant.label, err)
			}
			if !bytes.Equal(vrep, refReport) {
				t.Fatalf("enriched %s report diverged\n got: %s\nwant: %s", variant.label, vrep, refReport)
			}
			if vst.Records != seqStats.Records {
				t.Fatalf("enriched %s Records = %d, want %d", variant.label, vst.Records, seqStats.Records)
			}
		}
	})
}
