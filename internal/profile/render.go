package profile

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
	"repro/internal/value"
)

// Render prints the profile as an annotated, indented schema: each
// position shows its type plus occurrence percentages and value
// aggregates, e.g.
//
//	{
//	  id: Num            — 100%, range 1..9120
//	  name: Str?         — 63%, len 2..40
//	  tags: [Str*]       — 100%, 0..5 items
//	}
func (p *Profile) Render() string {
	if p.Root == nil {
		return "ε (empty profile)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile of %d values\n", p.Count)
	renderNode(&sb, p.Root, 0, "")
	sb.WriteByte('\n')
	return sb.String()
}

func pad(sb *strings.Builder, level int) {
	for i := 0; i < level; i++ {
		sb.WriteString("  ")
	}
}

// renderNode writes the node's union of kinds.
func renderNode(sb *strings.Builder, n *Node, level int, suffix string) {
	kinds := make([]types.Kind, 0, len(n.Kinds))
	for k := range n.Kinds {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for i, kind := range kinds {
		if i > 0 {
			sb.WriteString(" + ")
		}
		renderKind(sb, kind, n.Kinds[kind], n.Total, level)
	}
	sb.WriteString(suffix)
}

func renderKind(sb *strings.Builder, kind types.Kind, ks *KindStats, total int64, level int) {
	share := ""
	if len(ksShare(ks, total)) > 0 {
		share = ksShare(ks, total)
	}
	switch kind {
	case types.KindNull:
		sb.WriteString("Null" + share)
	case types.KindBool:
		fmt.Fprintf(sb, "Bool%s ⟨%.0f%% true⟩", share, 100*float64(ks.TrueCount)/float64(ks.Count))
	case types.KindNum:
		fmt.Fprintf(sb, "Num%s ⟨%s..%s, mean %s⟩", share,
			trimFloat(ks.MinNum), trimFloat(ks.MaxNum), trimFloat(ks.SumNum/float64(ks.Count)))
	case types.KindStr:
		fmt.Fprintf(sb, "Str%s ⟨len %d..%d⟩", share, ks.MinStrLen, ks.MaxStrLen)
	case types.KindRecord:
		if len(ks.Fields) == 0 {
			sb.WriteString("{}" + share)
			return
		}
		sb.WriteString("{" + share + "\n")
		keys := make([]string, 0, len(ks.Fields))
		for k := range ks.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			fs := ks.Fields[key]
			pad(sb, level+1)
			sb.Write(value.AppendQuoted(nil, key))
			opt := ""
			if fs.Count < ks.Count {
				opt = fmt.Sprintf("? ⟨%.0f%%⟩", 100*float64(fs.Count)/float64(ks.Count))
			}
			sb.WriteString(opt + ": ")
			renderNode(sb, fs.Node, level+1, "")
			sb.WriteByte('\n')
		}
		pad(sb, level)
		sb.WriteString("}")
	case types.KindArray:
		fmt.Fprintf(sb, "[%s ⟨%d..%d items⟩ ", share, ks.MinLen, ks.MaxLen)
		if ks.Elem != nil && ks.Elem.Total > 0 {
			renderNode(sb, ks.Elem, level, "")
		} else {
			sb.WriteString("ε")
		}
		sb.WriteString("*]")
	}
}

// ksShare renders the kind's share of the position when mixed.
func ksShare(ks *KindStats, total int64) string {
	if total <= 0 || ks.Count == total {
		return ""
	}
	return fmt.Sprintf(" ⟨%.0f%%⟩", 100*float64(ks.Count)/float64(total))
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
