package profile

import (
	"testing"

	"repro/internal/types"
	"repro/internal/value"
)

// TestTypeFieldOrderDeterministic is the regression test for the
// nondetmap finding in Node.typ: record fields were collected by
// ranging the Fields map, so the recursive dereification walked the
// subtree in map-iteration order. Keys are now sorted first; the
// resulting type (and its rendering) must be identical run after run.
func TestTypeFieldOrderDeterministic(t *testing.T) {
	keys := []string{"zulu", "alpha", "mike", "kilo", "echo", "tango", "bravo", "hotel"}
	build := func() *Profile {
		fs := make([]value.Field, len(keys))
		for i, k := range keys {
			fs[i] = value.Field{Key: k, Value: value.Num(float64(i))}
		}
		p := &Profile{}
		p.Add(value.MustRecord(fs...))
		return p
	}
	want := build().Type()
	wantStr := want.String()
	for i := 0; i < 32; i++ {
		got := build().Type()
		if !types.Equal(got, want) {
			t.Fatalf("iteration %d: type differs: %s vs %s", i, got, want)
		}
		if got.String() != wantStr {
			t.Fatalf("iteration %d: rendering differs: %q vs %q", i, got.String(), wantStr)
		}
	}
	// The rendered fields must come out in key order, proving the walk
	// is sorted rather than merely canonicalized downstream.
	rec, ok := want.(*types.Record)
	if !ok {
		t.Fatalf("profile type is %T, want *types.Record", want)
	}
	prev := ""
	for _, f := range rec.Fields() {
		if f.Key < prev {
			t.Fatalf("fields out of order: %q after %q", f.Key, prev)
		}
		prev = f.Key
	}
}
