package profile

import (
	"encoding/json"
	"fmt"

	"repro/internal/types"
)

// The codec serializes profiles so that statistics travel with schemas:
// a profile written by one process (or partition) loads in another and
// keeps merging — the same operational story as the schema repository.

type wireProfile struct {
	Count int64     `json:"count"`
	Root  *wireNode `json:"root,omitempty"`
}

type wireNode struct {
	Total int64                 `json:"total"`
	Kinds map[string]*wireKinds `json:"kinds,omitempty"`
}

type wireKinds struct {
	Count     int64                 `json:"count"`
	Fields    map[string]*wireField `json:"fields,omitempty"`
	Elem      *wireNode             `json:"elem,omitempty"`
	MinLen    int                   `json:"minLen,omitempty"`
	MaxLen    int                   `json:"maxLen,omitempty"`
	TotalLen  int64                 `json:"totalLen,omitempty"`
	MinNum    float64               `json:"minNum,omitempty"`
	MaxNum    float64               `json:"maxNum,omitempty"`
	SumNum    float64               `json:"sumNum,omitempty"`
	MinStr    int                   `json:"minStr,omitempty"`
	MaxStr    int                   `json:"maxStr,omitempty"`
	TotalStr  int64                 `json:"totalStr,omitempty"`
	TrueCount int64                 `json:"trueCount,omitempty"`
}

type wireField struct {
	Count int64     `json:"count"`
	Node  *wireNode `json:"node"`
}

var kindNames = map[types.Kind]string{
	types.KindNull:   "null",
	types.KindBool:   "bool",
	types.KindNum:    "num",
	types.KindStr:    "str",
	types.KindRecord: "record",
	types.KindArray:  "array",
}

var kindByName = func() map[string]types.Kind {
	m := make(map[string]types.Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// MarshalJSON encodes the profile.
func (p *Profile) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireProfile{Count: p.Count, Root: nodeToWire(p.Root)})
}

// UnmarshalJSON decodes a profile previously encoded with MarshalJSON
// into p, replacing its contents.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var w wireProfile
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("profile: decoding: %w", err)
	}
	root, err := nodeFromWire(w.Root)
	if err != nil {
		return err
	}
	p.Count = w.Count
	p.Root = root
	return nil
}

func nodeToWire(n *Node) *wireNode {
	if n == nil {
		return nil
	}
	w := &wireNode{Total: n.Total}
	if len(n.Kinds) > 0 {
		w.Kinds = make(map[string]*wireKinds, len(n.Kinds))
		for kind, ks := range n.Kinds {
			wk := &wireKinds{
				Count:     ks.Count,
				Elem:      nodeToWire(ks.Elem),
				MinLen:    ks.MinLen,
				MaxLen:    ks.MaxLen,
				TotalLen:  ks.TotalLen,
				MinNum:    ks.MinNum,
				MaxNum:    ks.MaxNum,
				SumNum:    ks.SumNum,
				MinStr:    ks.MinStrLen,
				MaxStr:    ks.MaxStrLen,
				TotalStr:  ks.TotalStrLen,
				TrueCount: ks.TrueCount,
			}
			if len(ks.Fields) > 0 {
				wk.Fields = make(map[string]*wireField, len(ks.Fields))
				for key, fs := range ks.Fields {
					wk.Fields[key] = &wireField{Count: fs.Count, Node: nodeToWire(fs.Node)}
				}
			}
			w.Kinds[kindNames[kind]] = wk
		}
	}
	return w
}

func nodeFromWire(w *wireNode) (*Node, error) {
	if w == nil {
		return nil, nil
	}
	n := &Node{Total: w.Total}
	if len(w.Kinds) > 0 {
		n.Kinds = make(map[types.Kind]*KindStats, len(w.Kinds))
		for name, wk := range w.Kinds {
			kind, ok := kindByName[name]
			if !ok {
				return nil, fmt.Errorf("profile: unknown kind %q", name)
			}
			elem, err := nodeFromWire(wk.Elem)
			if err != nil {
				return nil, err
			}
			ks := &KindStats{
				Count:       wk.Count,
				Elem:        elem,
				MinLen:      wk.MinLen,
				MaxLen:      wk.MaxLen,
				TotalLen:    wk.TotalLen,
				MinNum:      wk.MinNum,
				MaxNum:      wk.MaxNum,
				SumNum:      wk.SumNum,
				MinStrLen:   wk.MinStr,
				MaxStrLen:   wk.MaxStr,
				TotalStrLen: wk.TotalStr,
				TrueCount:   wk.TrueCount,
			}
			if len(wk.Fields) > 0 {
				ks.Fields = make(map[string]*FieldStats, len(wk.Fields))
				for key, wf := range wk.Fields {
					node, err := nodeFromWire(wf.Node)
					if err != nil {
						return nil, err
					}
					ks.Fields[key] = &FieldStats{Count: wf.Count, Node: node}
				}
			}
			n.Kinds[kind] = ks
		}
	}
	return n, nil
}
