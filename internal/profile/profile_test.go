package profile

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/types"
	"repro/internal/value"
)

func profileOf(vs ...value.Value) *Profile {
	var p Profile
	for _, v := range vs {
		p.Add(v)
	}
	return &p
}

func TestEmptyProfile(t *testing.T) {
	var p Profile
	if !types.Equal(p.Type(), types.Empty) {
		t.Errorf("empty profile type = %s", p.Type())
	}
	if !strings.Contains(p.Render(), "empty") {
		t.Errorf("Render = %q", p.Render())
	}
}

func TestScalarStats(t *testing.T) {
	p := profileOf(value.Num(3), value.Num(10), value.Num(-1), value.Bool(true), value.Bool(false))
	ks := p.Root.Kinds[types.KindNum]
	if ks.Count != 3 || ks.MinNum != -1 || ks.MaxNum != 10 || ks.SumNum != 12 {
		t.Errorf("num stats = %+v", ks)
	}
	bs := p.Root.Kinds[types.KindBool]
	if bs.Count != 2 || bs.TrueCount != 1 {
		t.Errorf("bool stats = %+v", bs)
	}
	if got := p.Type(); !types.Equal(got, types.MustParse("Bool + Num")) {
		t.Errorf("type = %s", got)
	}
}

func TestStringStats(t *testing.T) {
	p := profileOf(value.Str("ab"), value.Str(""), value.Str("abcdef"))
	ks := p.Root.Kinds[types.KindStr]
	if ks.MinStrLen != 0 || ks.MaxStrLen != 6 || ks.TotalStrLen != 8 {
		t.Errorf("str stats = %+v", ks)
	}
}

func TestRecordFieldPresence(t *testing.T) {
	p := profileOf(
		value.Obj("a", value.Num(1)),
		value.Obj("a", value.Num(2), "b", value.Str("x")),
		value.Obj("a", value.Num(3), "b", value.Str("y")),
	)
	ks := p.Root.Kinds[types.KindRecord]
	if ks.Fields["a"].Count != 3 || ks.Fields["b"].Count != 2 {
		t.Errorf("field counts: a=%d b=%d", ks.Fields["a"].Count, ks.Fields["b"].Count)
	}
	want := types.MustParse("{a: Num, b: Str?}")
	if got := p.Type(); !types.Equal(got, want) {
		t.Errorf("type = %s, want %s", got, want)
	}
}

func TestArrayStats(t *testing.T) {
	p := profileOf(
		value.Arr(value.Num(1), value.Num(2)),
		value.Arr(),
		value.Arr(value.Str("s"), value.Num(3), value.Num(4)),
	)
	ks := p.Root.Kinds[types.KindArray]
	if ks.MinLen != 0 || ks.MaxLen != 3 || ks.TotalLen != 5 {
		t.Errorf("array stats = %+v", ks)
	}
	want := types.MustParse("[(Num + Str)*]")
	if got := p.Type(); !types.Equal(got, want) {
		t.Errorf("type = %s, want %s", got, want)
	}
}

func TestAllEmptyArrays(t *testing.T) {
	p := profileOf(value.Arr(), value.Arr())
	if got := p.Type(); !types.Equal(got, types.MustParse("[ε*]")) {
		t.Errorf("type = %s, want [ε*]", got)
	}
}

func TestMixedKindsAtOnePosition(t *testing.T) {
	p := profileOf(
		value.Obj("x", value.Num(1)),
		value.Obj("x", value.Str("one")),
		value.Obj("x", value.Null{}),
	)
	want := types.MustParse("{x: Null + Num + Str}")
	if got := p.Type(); !types.Equal(got, want) {
		t.Errorf("type = %s, want %s", got, want)
	}
}

func TestMergeMatchesSingleProfile(t *testing.T) {
	g, _ := dataset.New("mixed")
	vs := dataset.Values(g, 200, 3)
	whole := profileOf(vs...)
	a := profileOf(vs[:70]...)
	b := profileOf(vs[70:150]...)
	c := profileOf(vs[150:]...)
	a.Merge(b)
	a.Merge(c)
	if a.Count != whole.Count {
		t.Errorf("counts: %d vs %d", a.Count, whole.Count)
	}
	if !types.Equal(a.Type(), whole.Type()) {
		t.Errorf("types differ:\n%s\n%s", a.Type(), whole.Type())
	}
	if a.Render() != whole.Render() {
		t.Error("renders differ after merge")
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	p := profileOf(value.Num(1))
	p.Merge(nil)
	p.Merge(&Profile{})
	if p.Count != 1 {
		t.Errorf("Count = %d", p.Count)
	}
	var q Profile
	q.Merge(p)
	if q.Count != 1 || !types.Equal(q.Type(), types.Num) {
		t.Errorf("merged into empty: %d %s", q.Count, q.Type())
	}
}

func TestPropertyMergeAssociativeCommutative(t *testing.T) {
	g, _ := dataset.New("mixed")
	vs := dataset.Values(g, 120, 9)
	mk := func(lo, hi int) *Profile { return profileOf(vs[lo:hi]...) }
	f := func(cut1, cut2 uint8) bool {
		c1 := 1 + int(cut1)%(len(vs)-2)
		c2 := c1 + 1 + int(cut2)%(len(vs)-c1-1)
		// (a+b)+c
		left := mk(0, c1)
		left.Merge(mk(c1, c2))
		left.Merge(mk(c2, len(vs)))
		// a+(c+b) — different order and grouping
		rightTail := mk(c2, len(vs))
		rightTail.Merge(mk(c1, c2))
		right := mk(0, c1)
		right.Merge(rightTail)
		return left.Render() == right.Render() && types.Equal(left.Type(), right.Type())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTypeMatchesFusionPipeline(t *testing.T) {
	// The profile's derived type must equal the fusion pipeline's schema
	// (with per-value simplification): two independent implementations
	// of the same semantics.
	for _, name := range dataset.Names() {
		g, _ := dataset.New(name)
		vs := dataset.Values(g, 150, 7)
		var p Profile
		acc := types.Type(types.Empty)
		for _, v := range vs {
			p.Add(v)
			acc = fusion.Fuse(acc, fusion.Simplify(infer.Infer(v)))
		}
		if !types.Equal(p.Type(), acc) {
			t.Errorf("%s: profile type != fused type:\nprofile: %s\nfusion:  %s", name, p.Type(), acc)
		}
	}
}

func TestRenderShape(t *testing.T) {
	p := profileOf(
		value.Obj("id", value.Num(1), "name", value.Str("ab"), "ok", value.Bool(true)),
		value.Obj("id", value.Num(9), "tags", value.Arr(value.Str("x")), "ok", value.Bool(false)),
	)
	out := p.Render()
	for _, want := range []string{
		"profile of 2 values",
		`"id": Num ⟨1..9, mean 5⟩`,
		`"name"? ⟨50%⟩: Str`,
		`"ok": Bool ⟨50% true⟩`,
		"items",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderParsesAsSchemaShape(t *testing.T) {
	// The rendered profile is for humans, but its skeleton must mention
	// every field the schema has.
	g, _ := dataset.New("twitter")
	vs := dataset.Values(g, 100, 11)
	p := profileOf(vs...)
	out := p.Render()
	types.Walk(p.Type(), func(tt types.Type) bool {
		if rec, ok := tt.(*types.Record); ok {
			for _, f := range rec.Fields() {
				if !strings.Contains(out, `"`+f.Key+`"`) {
					t.Errorf("render lacks field %q", f.Key)
					return false
				}
			}
		}
		return true
	})
}

func TestProfileFromNDJSONStream(t *testing.T) {
	// Profiles integrate with the parser: one pass, constant shape.
	g, _ := dataset.New("github")
	data := dataset.NDJSON(g, 50, 13)
	var p Profile
	if err := jsontext.ScanValues(strings.NewReader(string(data)), jsontext.Options{}, func(v value.Value) error {
		p.Add(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.Count != 50 {
		t.Errorf("Count = %d", p.Count)
	}
	if !types.IsNormal(p.Type()) {
		t.Errorf("profile type not normal: %s", p.Type())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	g, _ := dataset.New("twitter")
	p := profileOf(dataset.Values(g, 60, 3)...)
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Count != p.Count {
		t.Errorf("count %d != %d", back.Count, p.Count)
	}
	if back.Render() != p.Render() {
		t.Error("render differs after codec round trip")
	}
	if !types.Equal(back.Type(), p.Type()) {
		t.Error("derived type differs after codec round trip")
	}
	// The decoded profile keeps merging.
	more := profileOf(dataset.Values(g, 20, 9)...)
	back.Merge(more)
	if back.Count != p.Count+20 {
		t.Errorf("merged count = %d", back.Count)
	}
}

func TestCodecEmptyProfile(t *testing.T) {
	var p Profile
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Count != 0 || back.Root != nil {
		t.Errorf("empty round trip = %+v", back)
	}
}

func TestCodecErrors(t *testing.T) {
	var p Profile
	if err := p.UnmarshalJSON([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := p.UnmarshalJSON([]byte(`{"count":1,"root":{"total":1,"kinds":{"bogus":{"count":1}}}}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}
