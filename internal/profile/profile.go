// Package profile implements the first extension the paper's conclusion
// calls for: "we plan to enrich schemas with statistical ... information
// about the input data" (Section 7).
//
// A Profile mirrors the shape of an inferred schema but carries
// occurrence statistics at every position: how often each kind was
// observed, how often each record field was present, numeric ranges,
// string lengths, boolean frequencies. Profiles form a commutative
// monoid under Merge — the same algebraic shape as type fusion — so they
// are built in the Map phase and combined in the Reduce phase in any
// order, and maintained incrementally like schemas.
//
// A Profile determines a type: Type() dereifies the statistics into the
// same schema the fusion pipeline infers (arrays in simplified form),
// which the tests verify — a strong cross-check between two independent
// implementations of the paper's semantics.
package profile

import (
	"fmt"
	"sort"

	"repro/internal/types"
	"repro/internal/value"
)

// Profile is the statistics-enriched schema of a collection: the root
// Node plus the number of values described. The zero value is an empty
// profile ready to use.
type Profile struct {
	// Count is the number of top-level values profiled.
	Count int64
	// Root describes those values; nil when Count is zero.
	Root *Node
}

// Node carries the statistics of one value position. Each kind observed
// at the position has its own statistics, mirroring how fusion keeps one
// union alternative per kind.
type Node struct {
	// Total is the number of values observed at this position.
	Total int64
	// Kinds maps each observed kind to its statistics.
	Kinds map[types.Kind]*KindStats
}

// KindStats describes the values of one kind at one position.
type KindStats struct {
	// Count is the number of values of this kind observed.
	Count int64

	// Record-kind statistics: per-field presence and content.
	Fields map[string]*FieldStats

	// Array-kind statistics: element statistics pooled over positions
	// (the paper's simplified-array view), plus length aggregates.
	Elem           *Node
	MinLen, MaxLen int
	TotalLen       int64

	// Num-kind aggregates.
	MinNum, MaxNum, SumNum float64

	// Str-kind aggregates.
	MinStrLen, MaxStrLen int
	TotalStrLen          int64

	// Bool-kind aggregate.
	TrueCount int64
}

// FieldStats describes one record field.
type FieldStats struct {
	// Count is the number of records carrying the field.
	Count int64
	// Node describes the field's contents.
	Node *Node
}

// Add profiles one more value into p.
func (p *Profile) Add(v value.Value) {
	if p.Root == nil {
		p.Root = &Node{}
	}
	p.Count++
	p.Root.add(v)
}

func (n *Node) add(v value.Value) {
	n.Total++
	kind := types.Kind(v.Kind())
	if n.Kinds == nil {
		n.Kinds = make(map[types.Kind]*KindStats)
	}
	ks := n.Kinds[kind]
	if ks == nil {
		ks = &KindStats{}
		n.Kinds[kind] = ks
	}
	first := ks.Count == 0
	ks.Count++
	switch vv := v.(type) {
	case value.Null:
	case value.Bool:
		if vv {
			ks.TrueCount++
		}
	case value.Num:
		f := float64(vv)
		if first || f < ks.MinNum {
			ks.MinNum = f
		}
		if first || f > ks.MaxNum {
			ks.MaxNum = f
		}
		ks.SumNum += f
	case value.Str:
		l := len(vv)
		if first || l < ks.MinStrLen {
			ks.MinStrLen = l
		}
		if l > ks.MaxStrLen {
			ks.MaxStrLen = l
		}
		ks.TotalStrLen += int64(l)
	case *value.Record:
		if ks.Fields == nil {
			ks.Fields = make(map[string]*FieldStats)
		}
		for _, f := range vv.Fields() {
			fs := ks.Fields[f.Key]
			if fs == nil {
				fs = &FieldStats{Node: &Node{}}
				ks.Fields[f.Key] = fs
			}
			fs.Count++
			fs.Node.add(f.Value)
		}
	case value.Array:
		if ks.Elem == nil {
			ks.Elem = &Node{}
		}
		l := len(vv)
		if first || l < ks.MinLen {
			ks.MinLen = l
		}
		if l > ks.MaxLen {
			ks.MaxLen = l
		}
		ks.TotalLen += int64(l)
		for _, e := range vv {
			ks.Elem.add(e)
		}
	default:
		panic(fmt.Sprintf("profile: unknown value %T", v))
	}
}

// Merge folds other into p. Merge is commutative and associative (all
// aggregates are sums, mins and maxes), so profiles reduce in any order,
// like the types themselves.
func (p *Profile) Merge(other *Profile) {
	if other == nil || other.Count == 0 {
		return
	}
	p.Count += other.Count
	if p.Root == nil {
		p.Root = &Node{}
	}
	p.Root.merge(other.Root)
}

func (n *Node) merge(o *Node) {
	if o == nil {
		return
	}
	n.Total += o.Total
	if o.Kinds == nil {
		return
	}
	if n.Kinds == nil {
		n.Kinds = make(map[types.Kind]*KindStats)
	}
	for kind, oks := range o.Kinds {
		ks := n.Kinds[kind]
		if ks == nil {
			ks = &KindStats{}
			n.Kinds[kind] = ks
		}
		ks.merge(kind, oks)
	}
}

func (ks *KindStats) merge(kind types.Kind, o *KindStats) {
	first := ks.Count == 0
	ks.Count += o.Count
	switch kind {
	case types.KindBool:
		ks.TrueCount += o.TrueCount
	case types.KindNum:
		if first || o.MinNum < ks.MinNum {
			ks.MinNum = o.MinNum
		}
		if first || o.MaxNum > ks.MaxNum {
			ks.MaxNum = o.MaxNum
		}
		ks.SumNum += o.SumNum
	case types.KindStr:
		if first || o.MinStrLen < ks.MinStrLen {
			ks.MinStrLen = o.MinStrLen
		}
		if o.MaxStrLen > ks.MaxStrLen {
			ks.MaxStrLen = o.MaxStrLen
		}
		ks.TotalStrLen += o.TotalStrLen
	case types.KindRecord:
		if o.Fields != nil {
			if ks.Fields == nil {
				ks.Fields = make(map[string]*FieldStats)
			}
			for key, ofs := range o.Fields {
				fs := ks.Fields[key]
				if fs == nil {
					fs = &FieldStats{Node: &Node{}}
					ks.Fields[key] = fs
				}
				fs.Count += ofs.Count
				fs.Node.merge(ofs.Node)
			}
		}
	case types.KindArray:
		if first || o.MinLen < ks.MinLen {
			ks.MinLen = o.MinLen
		}
		if o.MaxLen > ks.MaxLen {
			ks.MaxLen = o.MaxLen
		}
		ks.TotalLen += o.TotalLen
		if o.Elem != nil {
			if ks.Elem == nil {
				ks.Elem = &Node{}
			}
			ks.Elem.merge(o.Elem)
		}
	}
}

// Type dereifies the profile into the schema it implies: one union
// alternative per observed kind, record fields optional exactly when
// absent from some record, arrays in the simplified repeated form. The
// result matches the fusion pipeline's schema (with Simplify applied per
// value), which TestTypeMatchesFusionPipeline verifies.
func (p *Profile) Type() types.Type {
	if p.Root == nil {
		return types.Empty
	}
	return p.Root.typ()
}

func (n *Node) typ() types.Type {
	if n == nil || n.Total == 0 {
		return types.Empty
	}
	var alts []types.Type
	for kind := types.KindNull; kind <= types.KindArray; kind++ {
		ks, ok := n.Kinds[kind]
		if !ok || ks.Count == 0 {
			continue
		}
		switch kind {
		case types.KindNull, types.KindBool, types.KindNum, types.KindStr:
			alts = append(alts, types.Basic(kind))
		case types.KindRecord:
			// Iterate fields in sorted key order so the recursive typ()
			// calls — and with them any diagnostics or allocations they
			// make — happen in a deterministic order, not map order.
			keys := make([]string, 0, len(ks.Fields))
			for key := range ks.Fields {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			fields := make([]types.Field, 0, len(keys))
			for _, key := range keys {
				fs := ks.Fields[key]
				fields = append(fields, types.Field{
					Key:      key,
					Type:     fs.Node.typ(),
					Optional: fs.Count < ks.Count,
				})
			}
			alts = append(alts, types.MustRecord(fields...))
		case types.KindArray:
			alts = append(alts, types.MustRepeated(ks.Elem.typ()))
		}
	}
	return types.MustUnion(alts...)
}
