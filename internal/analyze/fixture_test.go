package analyze

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestFixtures runs each analyzer over its golden fixture package under
// testdata/src/<name> and checks the diagnostics against the fixture's
// `// want "substring"` annotations: every annotated line must produce
// a diagnostic containing the substring, and no unannotated diagnostics
// may appear. Fixture lines suppressed with //lint:ignore have no
// annotation, so the test also proves suppression works.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			runFixture(t, a)
		})
	}
}

func runFixture(t *testing.T, a *Analyzer) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dir := filepath.Join("testdata", "src", a.Name)
	pkg, err := loader.LoadDir(dir, "repro/internal/analyze/testdata/src/"+a.Name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	diags := Check([]*Package{pkg}, []*Analyzer{a})

	wants := collectWants(t, pkg)
	matched := make(map[string]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		want, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !strings.Contains(d.Message, want) {
			t.Errorf("diagnostic %s does not contain want %q", d, want)
		}
		matched[key] = true
	}
	for key, want := range wants {
		if !matched[key] {
			t.Errorf("no diagnostic at %s (want %q)", key, want)
		}
	}
}

// collectWants parses `// want "substring"` trailing comments from the
// fixture files, keyed by file:line.
func collectWants(t *testing.T, pkg *Package) map[string]string {
	wants := make(map[string]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				want, err := strconv.Unquote(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("bad want comment %q: %v", c.Text, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = want
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture for %s has no want annotations", pkg.Path)
	}
	return wants
}

// TestFixturesHaveSuppressedCase ensures every fixture demonstrates the
// lint:ignore escape hatch, as the analyzers' documentation promises.
func TestFixturesHaveSuppressedCase(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, a := range All() {
		dir := filepath.Join("testdata", "src", a.Name)
		pkg, err := loader.LoadDir(dir, "repro/internal/analyze/testdata/suppr/"+a.Name)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		found := false
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, "//lint:ignore "+a.Name) {
						found = true
					}
				}
			}
		}
		if !found {
			t.Errorf("fixture %s has no //lint:ignore %s case", dir, a.Name)
		}
	}
}

// TestSuppressionDirectiveParsing checks directive matching rules
// directly: same line, line above, wrong analyzer, malformed.
func TestSuppressionDirectiveParsing(t *testing.T) {
	src := `package p

//lint:ignore nondetmap reason one
var a int

var b int //lint:ignore all reason two

//lint:ignore goroleak,typemut reason three
var c int

//lint:ignore droppederr
var d int
`
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	f, err := parseString(loader, "sup.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sup, _ := collectSuppressions(loader.fset, []*ast.File{f})

	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "nondetmap", true},    // directive on line above
		{4, "goroleak", false},    // wrong analyzer
		{6, "droppederr", true},   // trailing "all" directive
		{9, "typemut", true},      // comma list
		{9, "goroleak", true},     // comma list
		{9, "lockcopy", false},    // not in list
		{12, "droppederr", false}, // malformed: missing reason
	}
	for _, tc := range cases {
		d := Diagnostic{Analyzer: tc.analyzer}
		d.Pos.Filename = "sup.go"
		d.Pos.Line = tc.line
		if got := sup.matches(d); got != tc.want {
			t.Errorf("line %d analyzer %s: matches=%v, want %v", tc.line, tc.analyzer, got, tc.want)
		}
	}
}
