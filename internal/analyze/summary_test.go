package analyze

import (
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadTempPkg type-checks one source string as a standalone package.
func loadTempPkg(t *testing.T, src string) (*Loader, *Package) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, "summaryfixture")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return loader, pkg
}

func summaryOf(t *testing.T, pkg *Package, sums *Summaries, name string) *FuncSummary {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("no top-level object %q", name)
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("%q is %T, not a function", name, obj)
	}
	sum := sums.Of(fn)
	if sum == nil {
		t.Fatalf("no summary for %q", name)
	}
	return sum
}

// TestSummaryFactPropagation checks the fixpoint lifts callee facts into
// callers: nondeterminism and global mutation cross two call edges, and
// parameter mutation maps through argument roots.
func TestSummaryFactPropagation(t *testing.T) {
	src := `package p

import "time"

var counter int

func leafClock() int64 { return time.Now().UnixNano() }

func midClock() int64 { return leafClock() }

func TopClock() int64 { return midClock() }

func leafGlobal() { counter++ }

func TopGlobal() { leafGlobal() }

func leafWrite(xs []int) { xs[0] = 1 }

func midWrite(ys []int) { leafWrite(ys) }

func TopPure(n int) int { return n + 1 }
`
	_, pkg := loadTempPkg(t, src)
	sums := ComputeSummaries([]*Package{pkg})

	top := summaryOf(t, pkg, sums, "TopClock")
	if top.Facts&FactNondet == 0 {
		t.Errorf("TopClock lacks FactNondet; facts=%v", top.Facts)
	}
	why := top.NondetWhy
	if !strings.Contains(why, "midClock") || !strings.Contains(why, "leafClock") {
		t.Errorf("nondet witness chain %q does not name both hops", why)
	}

	glob := summaryOf(t, pkg, sums, "TopGlobal")
	if glob.Facts&FactMutGlobal == 0 {
		t.Errorf("TopGlobal lacks FactMutGlobal; facts=%v", glob.Facts)
	}

	mid := summaryOf(t, pkg, sums, "midWrite")
	if len(mid.MutParams) != 1 || !mid.MutParams[0] {
		t.Errorf("midWrite.MutParams = %v, want [true] via leafWrite", mid.MutParams)
	}

	pure := summaryOf(t, pkg, sums, "TopPure")
	if pure.Facts != 0 {
		t.Errorf("TopPure has facts %v, want none", pure.Facts)
	}
}

// TestSummaryBackgroundStopsAtCtxParam checks the FactBackground
// propagation rule: a fresh Background deep in ctx-less helpers taints
// callers, but a callee that itself takes a context is a plumbing
// boundary — its own rule-1 finding covers it, so the fact does not
// leak further up.
func TestSummaryBackgroundStopsAtCtxParam(t *testing.T) {
	src := `package p

import "context"

func mint() context.Context { return context.Background() }

func Tainted() context.Context { return mint() }

func plumbed(ctx context.Context) { _ = context.Background() }

func NotTainted(ctx context.Context) { plumbed(ctx) }
`
	_, pkg := loadTempPkg(t, src)
	sums := ComputeSummaries([]*Package{pkg})

	if s := summaryOf(t, pkg, sums, "Tainted"); s.Facts&FactBackground == 0 {
		t.Errorf("Tainted lacks FactBackground despite ctx-less mint callee")
	}
	if s := summaryOf(t, pkg, sums, "NotTainted"); s.Facts&FactBackground != 0 {
		t.Errorf("FactBackground leaked through plumbed, which has a ctx param")
	}
}

// TestSummaryReceiverMutation checks method receiver writes are
// classified as MutRecv, not parameter or global mutation.
func TestSummaryReceiverMutation(t *testing.T) {
	src := `package p

type Box struct{ n int }

func (b *Box) Bump() { b.n++ }

func (b *Box) Peek() int { return b.n }
`
	_, pkg := loadTempPkg(t, src)
	sums := ComputeSummaries([]*Package{pkg})

	box, _ := pkg.Types.Scope().Lookup("Box").(*types.TypeName)
	if box == nil {
		t.Fatal("no Box type")
	}
	mset := types.NewMethodSet(types.NewPointer(box.Type()))
	for i := 0; i < mset.Len(); i++ {
		fn := mset.At(i).Obj().(*types.Func)
		sum := sums.Of(fn)
		if sum == nil {
			t.Fatalf("no summary for %s", fn.Name())
		}
		wantMut := fn.Name() == "Bump"
		if sum.MutRecv != wantMut {
			t.Errorf("%s.MutRecv = %v, want %v", fn.Name(), sum.MutRecv, wantMut)
		}
		if sum.Facts&FactMutGlobal != 0 {
			t.Errorf("%s misclassified receiver write as global mutation", fn.Name())
		}
	}
}

// TestCallGraphDeterministic pins the framework's own discipline: two
// independent loads of the same fixture must produce byte-identical
// rendered diagnostics, or CI output and SARIF baselines would churn.
func TestCallGraphDeterministic(t *testing.T) {
	render := func() string {
		loader, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		var pkgs []*Package
		for _, name := range []string{"monoidpure", "internmut", "ctxflow"} {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name),
				"repro/internal/analyze/testdata/src/"+name)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", name, err)
			}
			pkgs = append(pkgs, pkg)
		}
		diags, stats := CheckStats(pkgs, All())
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "%s\n", d)
		}
		for _, s := range stats {
			fmt.Fprintf(&b, "%s=%d\n", s.Name, s.Findings)
		}
		return b.String()
	}
	first := render()
	if got := render(); got != first {
		t.Fatalf("second run differs from first:\n--- first\n%s\n--- second\n%s", first, got)
	}
	if !strings.Contains(first, "monoidpure=") {
		t.Fatalf("stats rendering missing analyzer counts:\n%s", first)
	}
}
