package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the package-level call graph that pass 1 of the
// interprocedural framework (summary.go) propagates facts over. Nodes
// are the function and method declarations of the analyzed package set;
// edges are static call sites resolved through go/types. Calls through
// function values and interface methods have no static callee and
// produce no edge — the summary layer treats such callees as fact-free,
// a documented (and suppressible) blind spot.
//
// Each call site records, per argument, the *root* of the argument
// expression in the caller's frame: the receiver, a parameter, a
// package-level variable, or none of those. That mapping is what lets
// mutation facts flow backwards through calls ("callee writes its first
// parameter" + "caller passes its receiver there" = "caller mutates its
// receiver").

// rootKind classifies what storage an expression is rooted in, from the
// perspective of the enclosing function declaration.
type rootKind uint8

const (
	rootNone   rootKind = iota // a local, a literal, a fresh allocation
	rootRecv                   // the method receiver
	rootParam                  // the index-th parameter
	rootGlobal                 // a package-level variable
)

// argRoot is the resolved root of one argument (or receiver) expression.
type argRoot struct {
	kind  rootKind
	index int // parameter index for rootParam
}

// callSite is one static call from a function body.
type callSite struct {
	callee *types.Func
	pos    token.Pos
	// recv is the root of the receiver expression for method calls
	// (x.M(...): the root of x), rootNone for package-level calls.
	recv argRoot
	// args are the roots of the value arguments, in call order.
	args []argRoot
}

// funcNode is one declared function or method.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// recvObj and paramObjs are the declared receiver and parameter
	// objects, used to classify expression roots.
	recvObj   types.Object
	paramObjs []types.Object
	// aliases maps simple locals to the root of the expression they
	// were first bound to (x := other.(*T), fs := r.fields), so writes
	// through the alias propagate to the right root. Flow-insensitive:
	// the first binding wins.
	aliases map[types.Object]argRoot
	calls   []callSite
}

// callGraph indexes funcNodes and provides a deterministic iteration
// order (package path, then file position), which keeps the summary
// fixpoint — including its first-witness diagnostics — byte-stable
// across runs.
type callGraph struct {
	nodes map[*types.Func]*funcNode
	order []*funcNode
}

// buildCallGraph constructs the graph for the package set. Only
// declarations inside pkgs become nodes; callees outside the set (other
// module packages not loaded, the standard library) stay edge targets
// with no node, resolved by the summary layer's built-in tables.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{nodes: make(map[*types.Func]*funcNode)}
	for _, pkg := range pkgs {
		p := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.ObjectOf(fd.Name).(*types.Func)
				if fn == nil {
					continue
				}
				g.addNode(p, pkg, fd, fn)
			}
		}
	}
	g.order = make([]*funcNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		g.order = append(g.order, n)
	}
	sort.Slice(g.order, func(i, j int) bool {
		a, b := g.order[i], g.order[j]
		if a.pkg.Path != b.pkg.Path {
			return a.pkg.Path < b.pkg.Path
		}
		pa, pb := a.pkg.Fset.Position(a.decl.Pos()), b.pkg.Fset.Position(b.decl.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	})
	return g
}

func (g *callGraph) addNode(p *Pass, pkg *Package, fd *ast.FuncDecl, fn *types.Func) {
	n := &funcNode{fn: fn, decl: fd, pkg: pkg, aliases: make(map[types.Object]argRoot)}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		n.recvObj = p.ObjectOf(fd.Recv.List[0].Names[0])
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			n.paramObjs = append(n.paramObjs, p.ObjectOf(name))
		}
		if len(field.Names) == 0 {
			n.paramObjs = append(n.paramObjs, nil) // unnamed: never a root
		}
	}
	g.nodes[fn] = n

	// One pre-order walk collects alias bindings and call sites. Alias
	// bindings are recorded as encountered (source order), so a binding
	// is visible to later uses — the common single-assignment shape.
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch nn := node.(type) {
		case *ast.AssignStmt:
			if nn.Tok == token.DEFINE && len(nn.Lhs) == len(nn.Rhs) {
				for i, lhs := range nn.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := p.ObjectOf(id)
					if obj == nil {
						continue
					}
					if r := n.exprRoot(p, nn.Rhs[i]); r.kind != rootNone {
						if _, seen := n.aliases[obj]; !seen {
							n.aliases[obj] = r
						}
					}
				}
			}
		case *ast.CallExpr:
			n.addCall(p, nn)
		}
		return true
	})
}

// addCall records a static call edge with resolved argument roots.
func (n *funcNode) addCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p, call)
	if fn == nil {
		return
	}
	cs := callSite{callee: fn, pos: call.Pos()}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fn.Type().(*types.Signature).Recv() != nil {
		cs.recv = n.exprRoot(p, sel.X)
	}
	cs.args = make([]argRoot, len(call.Args))
	for i, a := range call.Args {
		cs.args[i] = n.exprRoot(p, a)
	}
	n.calls = append(n.calls, cs)
}

// exprRoot resolves the storage an expression is rooted in: it walks
// selector/index/star/slice/paren/type-assert chains to a base
// identifier and classifies it, following recorded aliases.
func (n *funcNode) exprRoot(p *Pass, e ast.Expr) argRoot {
	for {
		switch ee := ast.Unparen(e).(type) {
		case *ast.Ident:
			return n.objRoot(p.ObjectOf(ee))
		case *ast.SelectorExpr:
			// pkg.Var selectors root at the variable itself.
			if base := rootIdent(ee.X); base != nil {
				if _, isPkg := p.ObjectOf(base).(*types.PkgName); isPkg {
					return n.objRoot(p.ObjectOf(ee.Sel))
				}
			}
			e = ee.X
		case *ast.IndexExpr:
			e = ee.X
		case *ast.SliceExpr:
			e = ee.X
		case *ast.StarExpr:
			e = ee.X
		case *ast.TypeAssertExpr:
			e = ee.X
		case *ast.UnaryExpr:
			if ee.Op != token.AND {
				return argRoot{}
			}
			e = ee.X
		case *ast.CallExpr:
			// A call result is fresh storage from the caller's point of
			// view — except accessor-style results, which internmut
			// handles separately via isAccessorExpr.
			return argRoot{}
		default:
			return argRoot{}
		}
	}
}

// objRoot classifies an object as receiver, parameter, global or none,
// following aliases.
func (n *funcNode) objRoot(obj types.Object) argRoot {
	if obj == nil {
		return argRoot{}
	}
	if obj == n.recvObj {
		return argRoot{kind: rootRecv}
	}
	for i, po := range n.paramObjs {
		if po != nil && obj == po {
			return argRoot{kind: rootParam, index: i}
		}
	}
	if v, ok := obj.(*types.Var); ok && v.Parent() == n.pkg.Types.Scope() {
		return argRoot{kind: rootGlobal}
	}
	if r, ok := n.aliases[obj]; ok {
		return r
	}
	return argRoot{}
}
