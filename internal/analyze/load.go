package analyze

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset is the file set shared by all packages of one Loader.
	Fset *token.FileSet
	// Files are the parsed sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records the checker's type and object resolutions.
	Info *types.Info
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: module packages are resolved against the
// module root (read from go.mod) and type-checked recursively, while
// standard-library imports are type-checked from GOROOT source via
// go/importer's "source" compiler.
type Loader struct {
	fset    *token.FileSet
	root    string // module root directory
	modPath string // module path from go.mod
	std     types.Importer
	cache   map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// NewLoader creates a loader for the module containing dir (dir itself
// or an ancestor must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*loadEntry),
	}, nil
}

// findModule walks upward from dir to the nearest go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analyze: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analyze: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// Fset returns the file set shared by every package this loader
// produced, needed to resolve diagnostic positions back to byte offsets
// (e.g. when applying suggested fixes).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the patterns to module packages and type-checks them.
// A pattern is either a directory path (absolute, or relative to the
// current working directory) or such a path followed by "/..." to
// include every package below it. Directories named "testdata", hidden
// directories, and directories without non-test .go files are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			dirSet[abs] = true
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirSet[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		path, err := l.dirImportPath(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analyze: no packages matched %v", patterns)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// dirImportPath maps a directory inside the module to its import path.
func (l *Loader) dirImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analyze: %s is outside module %s", dir, l.root)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadPath type-checks the module package with the given import path,
// memoized. Imports of other module packages recurse through the same
// cache; standard-library imports go to the source importer.
func (l *Loader) loadPath(path string) (*Package, error) {
	if e, ok := l.cache[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("analyze: import cycle through %q", path)
		}
		return e.pkg, e.err
	}
	dir := l.root
	if path != l.modPath {
		rel, ok := strings.CutPrefix(path, l.modPath+"/")
		if !ok {
			return nil, fmt.Errorf("analyze: %q is not a module package", path)
		}
		dir = filepath.Join(l.root, filepath.FromSlash(rel))
	}
	return l.loadDirAs(dir, path)
}

// LoadDir parses and type-checks the single package in dir under the
// given import path, without pattern expansion. It is the entry point
// the golden-fixture tests use to check testdata packages (which the
// normal walk skips).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDirAs(abs, asPath)
}

func (l *Loader) loadDirAs(dir, path string) (*Package, error) {
	entry := &loadEntry{loading: true}
	l.cache[path] = entry
	pkg, err := l.typecheckDir(dir, path)
	entry.pkg, entry.err, entry.loading = pkg, err, false
	return pkg, err
}

func (l *Loader) typecheckDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analyze: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyze: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analyze: type errors in %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analyze: %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// importPkg resolves one import for the type checker: module packages
// recurse into the loader, everything else goes to the GOROOT source
// importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to the types.Importer interface.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
