package analyze

import (
	"go/ast"
	"go/types"
)

// LockCopy guards the concurrency-safe containers (the schema
// repository's mutex, the map-reduce engine's WaitGroups): copying a
// struct that embeds a sync primitive forks the primitive's state, so
// the copy and the original no longer exclude each other and a Wait can
// miss an Add. This is go vet's copylocks check re-implemented for this
// repository's driver so the whole suite runs as one tool with one
// suppression mechanism.
//
// Reported sites: function parameters, results and receivers that take
// a lock-containing struct by value; assignments that copy an existing
// lock-containing value (reading a variable, field, element or
// dereference — constructing a fresh value with a composite literal is
// fine); call arguments passing such a value; and range clauses whose
// value variable copies one out of a collection.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "by-value copy of a struct containing a sync primitive",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, nn.Recv, nn.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, nil, nn.Type)
			case *ast.AssignStmt:
				for _, rhs := range nn.Rhs {
					if copiesLock(pass, rhs) {
						pass.ReportNode(rhs, "assignment copies %s, which contains a sync primitive; use a pointer", typeName(pass.TypeOf(rhs)))
					}
				}
			case *ast.CallExpr:
				checkCallArgs(pass, nn)
			case *ast.RangeStmt:
				if nn.Value != nil && !isBlank(nn.Value) {
					if t := pass.TypeOf(nn.Value); t != nil && containsLock(t, nil) {
						pass.ReportNode(nn.Value, "range value copies %s, which contains a sync primitive; range over indices or use pointers", typeName(t))
					}
				}
			}
			return true
		})
	}
}

// checkFuncSig reports by-value lock-containing receivers, parameters
// and results.
func checkFuncSig(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	for _, fl := range []*ast.FieldList{recv, ft.Params, ft.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t, nil) {
				pass.ReportNode(field.Type, "%s passed by value contains a sync primitive; use a pointer", typeName(t))
			}
		}
	}
}

// checkCallArgs reports lock-containing values passed by value as call
// arguments.
func checkCallArgs(pass *Pass, call *ast.CallExpr) {
	// Conversions and builtins don't copy into a callee frame in a way
	// that detaches a lock the callee then uses; keep them out to avoid
	// noise on e.g. len(arr).
	if calleeFunc(pass, call) == nil {
		return
	}
	for _, arg := range call.Args {
		if copiesLock(pass, arg) {
			pass.ReportNode(arg, "call argument copies %s, which contains a sync primitive; pass a pointer", typeName(pass.TypeOf(arg)))
		}
	}
}

// copiesLock reports whether evaluating e copies an existing
// lock-containing value: e reads a variable, field, element or
// dereference whose type contains a sync primitive. Fresh composite
// literals, address-taking and function calls are not copies of an
// existing value.
func copiesLock(pass *Pass, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	t := pass.TypeOf(e)
	return t != nil && containsLock(t, nil)
}

// containsLock reports whether t is or embeds (transitively, by value)
// a struct type declared in package sync. seen guards against cyclic
// named types.
func containsLock(t types.Type, seen map[*types.Named]bool) bool {
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			_, isStruct := tt.Underlying().(*types.Struct)
			return isStruct
		}
		if seen[tt] {
			return false
		}
		if seen == nil {
			seen = make(map[*types.Named]bool)
		}
		seen[tt] = true
		return containsLock(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if containsLock(tt.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return containsLock(tt.Elem(), seen)
	default:
		return false
	}
}

// typeName renders a type for diagnostics, tolerating nil.
func typeName(t types.Type) string {
	if t == nil {
		return "value"
	}
	return t.String()
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
