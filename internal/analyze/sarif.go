package analyze

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output (the OASIS static-analysis results interchange
// format), for GitHub code-scanning upload. Only the slice of the spec
// a log producer needs is modelled; field names follow the standard's
// camelCase property names exactly, required properties are always
// populated ($schema, version, tool.driver.name, result ruleId/
// message/level), and file locations are emitted relative to a
// SRCROOT uriBaseId so the log is machine-relocatable.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool                `json:"tool"`
	OriginalURIBaseIDs map[string]sarifArtifact `json:"originalUriBaseIds,omitempty"`
	Results            []sarifResult            `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	HelpURI          string       `json:"helpUri,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as an indented SARIF 2.1.0 log.
// root is the directory file paths are made relative to (the module
// root); it becomes the SRCROOT uri base.
func WriteSARIF(w io.Writer, diags []Diagnostic, root string) error {
	// The rule table carries every registered analyzer plus the
	// "suppress" pseudo-analyzer, so ruleIndex is stable regardless of
	// which rules fired in this run.
	rules := make([]sarifRule, 0, len(All())+1)
	ruleIdx := make(map[string]int)
	for _, a := range All() {
		ruleIdx[a.Name] = len(rules)
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
			HelpURI:          a.DocAnchor(),
		})
	}
	ruleIdx[suppressName] = len(rules)
	rules = append(rules, sarifRule{
		ID:               suppressName,
		ShortDescription: sarifMessage{Text: "defective lint:ignore directive"},
		HelpURI:          suppressDoc,
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIdx[d.Analyzer]
		if !ok {
			idx = -1
		}
		region := sarifRegion{StartLine: max(d.Line, 1), StartColumn: d.Col}
		if d.EndLine > 0 {
			region.EndLine, region.EndColumn = d.EndLine, d.EndCol
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(d.File, root),
						URIBaseID: "SRCROOT",
					},
					Region: region,
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "repolint",
				InformationURI: "docs/ANALYSIS.md",
				Rules:          rules,
			}},
			OriginalURIBaseIDs: map[string]sarifArtifact{
				"SRCROOT": {URI: "file://" + filepath.ToSlash(root) + "/"},
			},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI renders a file path relative to root with forward slashes,
// as SARIF artifact URIs require.
func sarifURI(file, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
