// Package fixture holds known-bad and known-good snippets for the
// monoidpure analyzer's golden tests. Every type here is
// accumulator-shaped (Add/Merge/Fold in its pointer method set), which
// makes its three methods monoid roots.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// Acc reads the clock inside Merge: two runs over the same partitions
// produce different accumulators.
type Acc struct {
	total int
	seen  map[string]int
	stamp time.Time
}

func (a *Acc) Add(v string) {
	a.total++ // receiver mutation is the point of accumulating: excused
	if a.seen == nil {
		a.seen = make(map[string]int)
	}
	a.seen[v]++
}

func (a *Acc) Merge(other *Acc) {
	a.stamp = time.Now() // want "must be deterministic"
	for k, n := range other.seen {
		a.seen[k] += n // map-to-map merge is order-insensitive: excused
	}
	a.total += other.total
}

func (a *Acc) Fold() []string {
	var keys []string
	for k := range a.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys) // collect-then-sort: excused
	return keys
}

// DeepAcc is nondeterministic two calls down: Add -> weight -> jitter,
// which rolls dice. The finding lands on the Add body's call site with
// the full witness chain.
type DeepAcc struct{ n int }

func (d *DeepAcc) Add(v string) {
	d.n += weight(v) // want "calls weight, which calls jitter"
}

func (d *DeepAcc) Merge(o *DeepAcc) { d.n += o.n }

func (d *DeepAcc) Fold() int { return d.n }

func weight(v string) int { return jitter(len(v)) }

func jitter(n int) int { return n + rand.Intn(2) }

// StealAcc writes into its Merge operand: under tree reduction or
// retry the sibling partition's accumulator is poisoned.
type StealAcc struct{ buf []int }

func (s *StealAcc) Add(v int) { s.buf = append(s.buf, v) }

func (s *StealAcc) Merge(o *StealAcc) {
	if len(o.buf) > 0 {
		o.buf[0] = 0 // want "must not mutate its parameter o"
	}
	s.buf = append(s.buf, o.buf...)
}

func (s *StealAcc) Fold() []int { return s.buf }

// GlobAcc leaks state into a package-level counter.
var totalMerges int

type GlobAcc struct{ n int }

func (g *GlobAcc) Add(v int) { g.n += v }

func (g *GlobAcc) Merge(o *GlobAcc) {
	totalMerges++ // want "must not mutate package-level state"
	g.n += o.n
}

func (g *GlobAcc) Fold() int { return g.n }

// TimedAcc carries a deliberate, documented exception.
type TimedAcc struct {
	n    int
	last time.Time
}

func (t *TimedAcc) Add(v int) { t.n += v }

func (t *TimedAcc) Merge(o *TimedAcc) {
	//lint:ignore monoidpure fixture demonstrates suppression of a diagnostics-only timestamp
	t.last = time.Now()
	t.n += o.n
}

func (t *TimedAcc) Fold() int { return t.n }
