// Package fixture holds known-bad and known-good snippets for the
// goroleak analyzer's golden tests.
package fixture

import (
	"context"
	"sync"
)

// FireAndForget launches a goroutine nothing ever waits for.
func FireAndForget(work []int) {
	go func() { // want "goroutine has no completion accounting"
		for range work {
		}
	}()
}

// Waited is accounted for by a WaitGroup.
func Waited(work []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range work {
		}
	}()
	wg.Wait()
}

// Producer is accounted for: it closes the channel it feeds.
func Producer(work []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, w := range work {
			out <- w
		}
	}()
	return out
}

// Consumer is accounted for: it drains an outer channel until close.
func Consumer(in <-chan int) {
	go func() {
		for range in {
		}
	}()
}

// CtxBound is accounted for: it exits when the context is done.
func CtxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Detached runs for the process lifetime by design.
func Detached() {
	//lint:ignore goroleak background metrics flusher lives for the whole process
	go func() {
		for {
			_ = struct{}{}
		}
	}()
}
