// Package fixture holds known-bad and known-good snippets for the
// droppederr analyzer's golden tests.
package fixture

import (
	"encoding/json"
	"io"
	"os"
)

// Persist drops the encoder's error: a full disk goes unnoticed.
func Persist(enc *json.Encoder, v any) {
	enc.Encode(v) // want "error result of json.Encode discarded"
}

// PersistChecked is the fixed form.
func PersistChecked(enc *json.Encoder, v any) error {
	return enc.Encode(v)
}

// Mirror drops io.Copy's error (and its byte count).
func Mirror(dst io.Writer, src io.Reader) {
	io.Copy(dst, src) // want "error result of io.Copy discarded"
}

// CloseBlank discards the close error explicitly; still a loss on a
// written file.
func CloseBlank(f *os.File) {
	_ = f.Close() // want "error result of os.Close assigned to _"
}

// CloseDeferred drops the close error behind defer.
func CloseDeferred(f *os.File) {
	defer f.Close() // want "error result of os.Close dropped by defer"
}

// CloseChecked is the fixed form for write paths.
func CloseChecked(f *os.File) error {
	return f.Close()
}

// CloseReadOnly documents why the discard is safe.
func CloseReadOnly(f *os.File) {
	//lint:ignore droppederr close error of a read-only file carries no data loss
	f.Close()
}
