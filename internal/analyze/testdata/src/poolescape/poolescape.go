// Package fixture holds known-bad and known-good snippets for the
// poolescape analyzer's golden tests.
package fixture

import (
	"context"
	"sync"

	"repro/internal/mapreduce"
)

// bufPool is pool-like through sync.Pool directly.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// chunkPool is pool-like by shape: a Get/Put pair over buffers, the
// jsontext.ChunkPool idiom.
type chunkPool struct{ p sync.Pool }

func (c *chunkPool) Get(n int) []byte {
	if v := c.p.Get(); v != nil {
		return (*(v.(*[]byte)))[:0]
	}
	return make([]byte, 0, n)
}

func (c *chunkPool) Put(b []byte) {
	b = b[:0]
	c.p.Put(&b)
}

// sink anchors values so reads are visible uses.
func sink([]byte) {}

// BadUseAfterPut reads the buffer after handing it back: the pool may
// already have given it to a concurrent Get.
func BadUseAfterPut(pool *chunkPool) int {
	buf := pool.Get(64)
	buf = append(buf, 'x')
	pool.Put(buf)
	return len(buf) // want "used after being released"
}

// BadAppendAfterPut grows the released buffer in place; the clear on
// the left-hand side does not excuse the right-hand read.
func BadAppendAfterPut(pool *chunkPool) {
	buf := pool.Get(64)
	pool.Put(buf)
	buf = append(buf, 'y') // want "used after being released"
	sink(buf)
}

// BadDoublePut releases the same buffer twice: the second Put races
// with whoever Got it in between.
func BadDoublePut(pool *chunkPool) {
	buf := pool.Get(64)
	pool.Put(buf)
	pool.Put(buf) // want "used after being released"
}

// BadClosureAfterPut builds a closure over the released buffer: by the
// time it runs, the buffer belongs to someone else.
func BadClosureAfterPut(pool *chunkPool) func() {
	buf := pool.Get(64)
	pool.Put(buf)
	return func() { sink(buf) } // want "used after being released"
}

// BadSyncPoolUse shows the same hazard through a bare sync.Pool.
func BadSyncPoolUse() byte {
	bp := bufPool.Get().(*[]byte)
	b := append(*bp, 'z')
	bufPool.Put(&b)
	return b[0] // want "used after being released"
}

// GoodReassigned hands the variable a fresh buffer after the Put, so
// later uses touch the new buffer, not the released one.
func GoodReassigned(pool *chunkPool) {
	buf := pool.Get(64)
	pool.Put(buf)
	buf = pool.Get(64)
	sink(buf)
}

// GoodDeferredPut releases at function exit: the uses written after the
// defer run before it.
func GoodDeferredPut(pool *chunkPool) {
	buf := pool.Get(64)
	defer pool.Put(buf)
	buf = append(buf, 'a')
	sink(buf)
}

// GoodHandoff is the ChunkLinesPooled idiom: the emitted chunk and the
// Put spare are different variables, so ownership transfer is clean.
func GoodHandoff(pool *chunkPool, emit func([]byte) error) error {
	buf := pool.Get(64)
	chunk := buf
	buf = pool.Get(64)
	if err := emit(chunk); err != nil {
		return err
	}
	pool.Put(buf)
	return nil
}

// BadStageAlias returns the released item from a map stage: the engine
// recycles the chunk after the attempt, so the output must not share
// memory with it.
func BadStageAlias(ctx context.Context, src <-chan []byte) {
	_, _, _ = mapreduce.RunReleased(ctx, src, func(_ context.Context, chunk []byte) ([]byte, error) {
		return chunk[1:], nil // want "aliases released item chunk"
	}, first, nil, mapreduce.Config{}, func([]byte) {})
}

// BadStageComposite hides the alias inside a composite literal.
func BadStageComposite(ctx context.Context, src <-chan []byte) {
	type out struct{ raw []byte }
	_, _, _ = mapreduce.RunReleased(ctx, src, func(_ context.Context, chunk []byte) (out, error) {
		return out{raw: chunk}, nil // want "aliases released item chunk"
	}, func(a, b out) out { return a }, out{}, mapreduce.Config{}, func([]byte) {})
}

// GoodStageCopy copies what it keeps — string conversion and explicit
// append both produce fresh memory.
func GoodStageCopy(ctx context.Context, src <-chan []byte) {
	_, _, _ = mapreduce.RunReleased(ctx, src, func(_ context.Context, chunk []byte) (string, error) {
		return string(chunk), nil
	}, firstStr, "", mapreduce.Config{}, func([]byte) {})
}

// SuppressedStageAlias is acknowledged with a lint:ignore directive.
func SuppressedStageAlias(ctx context.Context, src <-chan []byte) {
	_, _, _ = mapreduce.RunReleased(ctx, src, func(_ context.Context, chunk []byte) ([]byte, error) {
		//lint:ignore poolescape release hook is a no-op in this run
		return chunk, nil
	}, first, nil, mapreduce.Config{}, func([]byte) {})
}

func first(a, b []byte) []byte { return a }

func firstStr(a, b string) string { return a }
