// Package fixture holds known-bad and known-good snippets for the
// nondetmap analyzer's golden tests.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// Emit leaks map iteration order into the returned slice.
func Emit(counts map[string]int) []string {
	var out []string
	for k, v := range counts {
		out = append(out, fmt.Sprintf("%s=%d", k, v)) // want "append to out inside map iteration without a later sort"
	}
	return out
}

// EmitSorted is the fixed form: collect, sort, then iterate.
func EmitSorted(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return out
}

// Render writes through an outer builder in map order.
func Render(counts map[string]int) string {
	var sb strings.Builder
	for k, v := range counts {
		fmt.Fprintf(&sb, "%s=%d\n", k, v) // want "Fprintf inside map iteration"
	}
	return sb.String()
}

// RenderPerKey builds a per-iteration buffer: order-insensitive.
func RenderPerKey(counts map[string]int) map[string]string {
	out := make(map[string]string, len(counts))
	for k, v := range counts {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s=%d", k, v)
		out[k] = sb.String()
	}
	return out
}

// Stream sends map entries in iteration order.
func Stream(counts map[string]int, ch chan<- string) {
	for k := range counts {
		ch <- k // want "channel send inside map iteration"
	}
}

// Total only folds commutatively: never reported.
func Total(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		total += v
	}
	return total
}

// Invert inserts into another map: order-insensitive, never reported.
func Invert(counts map[string]int) map[int]string {
	out := make(map[int]string, len(counts))
	for k, v := range counts {
		out[v] = k
	}
	return out
}

// EmitHashes appends in map order on purpose: the caller hashes the
// elements with an order-independent combiner.
func EmitHashes(hashes map[string]uint64) []uint64 {
	var out []uint64
	for _, h := range hashes {
		//lint:ignore nondetmap the caller folds these with an order-independent XOR
		out = append(out, h)
	}
	return out
}
