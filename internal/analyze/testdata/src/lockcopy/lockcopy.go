// Package fixture holds known-bad and known-good snippets for the
// lockcopy analyzer's golden tests.
package fixture

import "sync"

// Guarded embeds a mutex, so copying it forks the lock state.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Nested embeds Guarded by value: still lock-containing.
type Nested struct {
	g Guarded
}

// use anchors values without copying them further.
func use(p *Guarded) { _ = p }

// ReadByValue takes the lock-containing struct by value.
func ReadByValue(g Guarded) int { // want "passed by value contains a sync primitive"
	return g.n
}

// Snapshot copies the guarded struct out of a pointer.
func Snapshot(g *Guarded) {
	snap := *g // want "assignment copies"
	use(&snap)
}

// PassNested hands a nested lock-containing value to a callee.
func PassNested(n Nested) { // want "passed by value contains a sync primitive"
	use(&n.g)
}

// CallByValue copies the lock at the call site.
func CallByValue(g Guarded) { // want "passed by value contains a sync primitive"
	ReadByValue(g) // want "call argument copies"
}

// RangeCopies copies each element, lock included.
func RangeCopies(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies"
		total += g.n
	}
	return total
}

// RangeByIndex is the fixed form.
func RangeByIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		gs[i].mu.Lock()
		total += gs[i].n
		gs[i].mu.Unlock()
	}
	return total
}

// Fresh builds a new value with a composite literal: not a copy of an
// existing lock.
func Fresh() *Guarded {
	g := Guarded{n: 1}
	return &g
}

// Locked uses the pointer forms throughout: never reported.
func Locked(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// SeedCopy copies a zero-valued guard before any goroutine can hold
// the lock.
func SeedCopy(proto *Guarded) Guarded { // want "passed by value contains a sync primitive"
	//lint:ignore lockcopy proto is zero-valued here; the copy predates any locking
	return *proto
}
