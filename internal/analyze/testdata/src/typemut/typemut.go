// Package fixture holds known-bad and known-good snippets for the
// typemut analyzer's golden tests.
package fixture

import "repro/internal/types"

// MakeOptional writes through the accessor's shared slice, corrupting
// every schema that shares this record subtree.
func MakeOptional(r *types.Record) {
	r.Fields()[0].Optional = true // want "write into r.Fields"
}

// SwapAlt mutates a union through a variable bound to the accessor.
func SwapAlt(u *types.Union) {
	alts := u.Alts()
	alts[0] = types.Null // want "write into alts"
}

// GrowInPlace may write into the record's backing array when capacity
// allows.
func GrowInPlace(r *types.Record, f types.Field) []types.Field {
	return append(r.Fields(), f) // want "append with destination r.Fields"
}

// OverwriteElems copies into the tuple's backing array.
func OverwriteElems(t *types.Tuple, elems []types.Type) {
	es := t.Elems()
	copy(es, elems) // want "copy with destination es"
}

// Rebuild is the fixed form: copy the slice, mutate the copy, and run
// it back through a canonicalizing constructor.
func Rebuild(r *types.Record) *types.Record {
	fs := make([]types.Field, len(r.Fields()))
	copy(fs, r.Fields())
	for i := range fs {
		fs[i].Optional = true
	}
	return types.MustRecord(fs...)
}

// Scratch mutates a locally built slice: allowed.
func Scratch(ts ...types.Type) []types.Type {
	out := make([]types.Type, len(ts))
	copy(out, ts)
	out[0] = types.Str
	return out
}

// DropRetained reuses the accessor slice as scratch space after the
// record itself has been discarded.
func DropRetained(r *types.Record) []types.Field {
	fs := r.Fields()
	//lint:ignore typemut r is a throwaway parse artifact owned by this call
	fs[0].Optional = false
	return fs
}
