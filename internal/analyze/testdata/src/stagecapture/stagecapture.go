// Package fixture holds known-bad and known-good snippets for the
// stagecapture analyzer's golden tests.
package fixture

import (
	"context"

	"repro/internal/mapreduce"
)

// BadLoopCapture hands the engine a map stage that reads the range
// variable of the enclosing loop: by the time a retried or reordered
// attempt runs, the loop may have moved on.
func BadLoopCapture(ctx context.Context, batches [][]int) {
	for _, batch := range batches {
		_, _, _ = mapreduce.RunSlice(ctx, []int{0}, func(_ context.Context, i int) (int, error) {
			return batch[i], nil // want "captures loop variable batch"
		}, add, 0, mapreduce.Config{})
	}
}

// BadIndexCapture captures a plain for-loop index.
func BadIndexCapture(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		_, _, _ = mapreduce.RunSlice(ctx, []int{0}, func(_ context.Context, x int) (int, error) {
			return x + i, nil // want "captures loop variable i"
		}, add, 0, mapreduce.Config{})
	}
}

// BadOuterMutation accumulates into a captured variable instead of the
// stage's return value: stages run on worker goroutines, so this races.
func BadOuterMutation(ctx context.Context, items []int) int {
	total := 0
	_, _, _ = mapreduce.RunSlice(ctx, items, func(_ context.Context, i int) (int, error) {
		total += i // want "mutates captured variable total"
		return i, nil
	}, add, 0, mapreduce.Config{})
	return total
}

// BadOuterIncrement increments a captured counter from the combine
// stage.
func BadOuterIncrement(ctx context.Context, items []int) int {
	merges := 0
	_, _, _ = mapreduce.RunSlice(ctx, items, double, func(a, b int) int {
		merges++ // want "mutates captured variable merges"
		return a + b
	}, 0, mapreduce.Config{})
	return merges
}

// GoodPureStage only reads captured configuration — read-only capture
// is exactly what the Env is for.
func GoodPureStage(ctx context.Context, items []int, scale int) int {
	out, _, _ := mapreduce.RunSlice(ctx, items, func(_ context.Context, i int) (int, error) {
		return i * scale, nil
	}, add, 0, mapreduce.Config{})
	return out
}

// GoodInnerState declares and mutates its state inside the literal; the
// inner loop's variables are local too.
func GoodInnerState(ctx context.Context, batches [][]int) int {
	out, _, _ := mapreduce.RunSlice(ctx, batches, func(_ context.Context, batch []int) (int, error) {
		sum := 0
		for _, x := range batch {
			sum += x
		}
		return sum, nil
	}, add, 0, mapreduce.Config{})
	return out
}

// GoodNamedStage passes the stage by name: only the call site is
// visible, so the body is not analyzed (the documented limitation).
func GoodNamedStage(ctx context.Context, items []int) int {
	out, _, _ := mapreduce.RunSlice(ctx, items, double, add, 0, mapreduce.Config{})
	return out
}

// SuppressedMutation is acknowledged with a lint:ignore directive.
func SuppressedMutation(ctx context.Context, items []int) int {
	seen := 0
	_, _, _ = mapreduce.RunSlice(ctx, items, func(_ context.Context, i int) (int, error) {
		//lint:ignore stagecapture single-worker run measured by the caller
		seen++
		return i, nil
	}, add, 0, mapreduce.Config{Workers: 1})
	return seen
}

func add(a, b int) int { return a + b }

func double(_ context.Context, i int) (int, error) { return i * 2, nil }
