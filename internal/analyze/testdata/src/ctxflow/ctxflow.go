// Command fixture holds known-bad and known-good snippets for the
// ctxflow analyzer's golden tests. It is a package main on purpose:
// the root-context rule only applies there.
package main

import (
	"context"
	"sync"
	"time"
)

func main() {
	// The program's one legitimate Background: the root context is
	// minted in main and threaded down. Excused.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = Direct(ctx, nil)
	_ = Deep(ctx)
	Workers(ctx, 2)
	GoodWorkers(ctx, 2)
	Derived(ctx)
	legacy(ctx)
}

// Direct receives a context and throws it away on the very next call.
func Direct(ctx context.Context, data []byte) error {
	return process(context.Background(), data) // want "calls context.Background"
}

func process(ctx context.Context, data []byte) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Deep drops its context two calls down: startJob has no context
// parameter, and runJob mints a fresh Background below it. The
// summary-carried finding lands on the startJob call site.
func Deep(ctx context.Context) error {
	return startJob() // want "plumb ctx through"
}

func startJob() error { return runJob() }

func runJob() error {
	jobCtx := context.Background() // want "outside func main"
	<-jobCtx.Done()
	return nil
}

// Workers spawns goroutines in a loop with completion accounting but
// no cancellation: a cancelled caller leaks all of them mid-task.
func Workers(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want "without observing any context's Done"
			defer wg.Done()
			time.Sleep(time.Millisecond)
		}()
	}
	wg.Wait()
}

// GoodWorkers is the fixed form: every worker selects on Done — a
// derived context would count just the same. Excused.
func GoodWorkers(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
		}()
	}
	wg.Wait()
}

// Derived shows the other excused idiom: deriving a child context from
// the received one is exactly what ctx is for.
func Derived(ctx context.Context) {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	<-sub.Done()
}

// legacy carries a deliberate, documented exception.
func legacy(ctx context.Context) {
	//lint:ignore ctxflow fixture demonstrates suppression for a detached audit-log write
	audit(context.Background())
}

func audit(ctx context.Context) { _ = ctx }
