// Package fixture holds known-bad and known-good snippets for the
// internmut analyzer's golden tests: accessor slices of interned types
// escaping into callees that mutate them.
package fixture

import (
	"sort"

	"repro/internal/types"
)

// makeOptional writes through its slice parameter — harmless on a
// fresh slice, corrupting on an accessor's shared backing array.
func makeOptional(fs []types.Field) {
	if len(fs) > 0 {
		fs[0].Optional = true
	}
}

// Direct feeds the shared slice straight into the mutator.
func Direct(r *types.Record) {
	makeOptional(r.Fields()) // want "escapes into parameter fs of makeOptional"
}

// outer looks innocent; the write is two calls down (outer -> inner).
func outer(fs []types.Field) { inner(fs) }

func inner(fs []types.Field) {
	if len(fs) > 1 {
		fs[1].Optional = true
	}
}

// Deep is the transitive case: the summary of outer carries inner's
// parameter write.
func Deep(r *types.Record) {
	outer(r.Fields()) // want "escapes into parameter fs of outer"
}

// SortShared hands the shared backing array to an in-place
// standard-library sort, which typemut's local rules cannot see.
func SortShared(r *types.Record) {
	fs := r.Fields()
	sort.Slice(fs, func(i, j int) bool { return fs[i].Key < fs[j].Key }) // want "escapes into the slice argument of Slice"
}

// scramble overwrites an alternative through its parameter.
func scramble(ts []types.Type) {
	if len(ts) > 0 {
		ts[0] = types.Null
	}
}

// ViaVar reaches the mutator through a variable bound to the accessor.
func ViaVar(u *types.Union) {
	alts := u.Alts()
	scramble(alts) // want "escapes into parameter ts of scramble"
}

// Render only reads: length and iteration never mutate, so read-only
// consumption is excused.
func Render(r *types.Record) int { return fieldCount(r.Fields()) }

func fieldCount(fs []types.Field) int {
	n := 0
	for range fs {
		n++
	}
	return n
}

// Rebuild passes the accessor slice into a constructor of the types
// package itself — constructors copy their inputs and own the
// invariant, so the escape is excused.
func Rebuild(r *types.Record) *types.Record {
	return types.MustRecord(r.Fields()...)
}

// Scratch demonstrates the suppression escape hatch: a documented,
// deliberate in-place edit (e.g. on a record known to be freshly built
// and unshared).
func Scratch(r *types.Record) {
	//lint:ignore internmut fixture demonstrates suppression on a provably unshared record
	makeOptional(r.Fields())
}
