package analyze

import (
	"go/ast"
)

// CtxFlow guards the cancellation contract the map-reduce and pipeline
// layers promise (and their chaos tests pin): cancel the context and
// every worker exits, no goroutine leaks, no work continues against a
// dead deadline. That contract breaks silently whenever a function in
// the call path swaps the caller's context for a fresh
// context.Background() — everything below that point becomes
// uncancellable. Three rules:
//
//  1. A function that receives a context.Context must not construct
//     context.Background() or context.TODO(); pass the received ctx
//     (or a context derived from it) down instead. The direct form
//     carries a suggested fix (replace the call with the ctx
//     parameter); the transitive form — calling a ctx-less module
//     function that mints a Background somewhere below, detected via
//     the FactBackground summaries — is reported at the call site
//     with the witness chain.
//
//  2. In package main, only func main may mint the root context
//     (typically via signal.NotifyContext); any other function
//     constructing Background hides the program's cancellation root
//     in a corner — thread the context from main instead.
//
//  3. A loop that spawns goroutines inside a context-carrying function
//     must observe cancellation: some context's Done() channel has to
//     be consulted in the loop or the spawned body, or the workers
//     outlive the caller the chaos tests kill.
//
// Excused: func main minting its root context; deriving
// WithCancel/WithTimeout from the received ctx (no Background
// involved); functions without a ctx parameter outside package main
// (libraries that never see a context are a plumbing gap, not a drop);
// and goroutine loops whose body or spawned literal selects on any
// context-typed value's Done() — a derived runCtx counts just as the
// parameter itself does.
var CtxFlow = &Analyzer{
	Name:           "ctxflow",
	Doc:            "received context must flow down; goroutine loops must observe cancellation",
	Run:            runCtxFlow,
	NeedsSummaries: true,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			ctxParam := ctxParamName(pass, fd)
			if ctxParam != "" {
				checkCtxBody(pass, fd, ctxParam)
			} else if pass.Pkg.Name() == "main" && fd.Name.Name != "main" && fd.Recv == nil {
				checkMainRoot(pass, fd)
			}
			return false // FuncDecls are top-level; no nested decls
		})
	}
}

// ctxParamName returns the name of fd's context.Context parameter, or
// "" when there is none (or it is blank — an explicitly discarded
// context is a statement, not a drop).
func ctxParamName(pass *Pass, fd *ast.FuncDecl) string {
	for _, field := range fd.Type.Params.List {
		if t := pass.TypeOf(field.Type); t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// checkCtxBody enforces rules 1 and 3 inside a context-carrying
// function.
func checkCtxBody(pass *Pass, fd *ast.FuncDecl, ctxParam string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			checkCtxCall(pass, nn, ctxParam)
		case *ast.ForStmt:
			checkGoroutineLoop(pass, nn.Body)
		case *ast.RangeStmt:
			checkGoroutineLoop(pass, nn.Body)
		}
		return true
	})
}

// checkCtxCall enforces rule 1 at one call site.
func checkCtxCall(pass *Pass, call *ast.CallExpr, ctxParam string) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		fix := &SuggestedFix{
			Message: "replace context." + fn.Name() + "() with " + ctxParam,
			Edits:   []TextEdit{{Pos: call.Pos(), End: call.End(), NewText: ctxParam}},
		}
		pass.ReportNodeFix(call, fix, "function receives %s but calls context.%s(); pass %s down so cancellation reaches this path",
			ctxParam, fn.Name(), ctxParam)
		return
	}
	// Transitive: a ctx-less module callee that mints a Background
	// below. Callees that take a context themselves own their drop and
	// are flagged where it happens.
	sum := pass.Sums.Of(fn)
	if sum == nil || sum.Facts&FactBackground == 0 || hasCtxParam(sum.node) {
		return
	}
	pass.ReportNode(call, "function receives %s but %s %s; plumb %s through instead",
		ctxParam, fn.Name(), sum.BackgroundWhy, ctxParam)
}

// checkMainRoot enforces rule 2: in package main, non-main functions
// must not mint root contexts.
func checkMainRoot(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.ReportNode(call, "context.%s() outside func main: mint the root context in main (signal.NotifyContext) and thread it into %s",
				fn.Name(), fd.Name.Name)
		}
		return true
	})
}

// checkGoroutineLoop enforces rule 3: a loop body that launches
// goroutines must consult some context's Done() in the loop or the
// spawned literals.
func checkGoroutineLoop(pass *Pass, body *ast.BlockStmt) {
	var firstGo *ast.GoStmt
	observesDone := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.GoStmt:
			if firstGo == nil {
				firstGo = nn
			}
		case *ast.CallExpr:
			if isDoneCall(pass, nn) {
				observesDone = true
			}
		}
		return true
	})
	if firstGo == nil || observesDone {
		return
	}
	pass.ReportNode(firstGo, "goroutine spawned in a loop without observing any context's Done(); cancelled callers leak these workers")
}

// isDoneCall reports whether the call is <context-typed value>.Done().
func isDoneCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := pass.TypeOf(sel.X)
	return t != nil && isContextType(t)
}
