package analyze

import (
	"go/ast"
	"go/types"
)

// TypeMut guards the immutability of the schema type language. Values
// of repro/internal/types.Type are canonicalized at construction and
// shared freely afterwards: fusion reuses subtrees of its inputs, the
// schema repository caches fused results, and map-reduce workers hand
// types across goroutines without copying. All of that is sound only
// because no one writes into a type after construction.
//
// The compiler already prevents direct field writes (the fields are
// unexported), but the accessors Fields, Elems and Alts return the
// internal slices for zero-copy iteration, and a write through such a
// slice — r.Fields()[0].Type = x, or via a variable bound to the
// accessor's result — corrupts every schema sharing that subtree. The
// analyzer reports element writes and potentially in-place appends
// (append, copy) through accessor results in every package except the
// constructor packages types, fusion and infer, which own the
// invariant.
var TypeMut = &Analyzer{
	Name: "typemut",
	Doc:  "write through a shared types.Type accessor slice outside the constructor packages",
	Run:  runTypeMut,
}

// typesPkgPath is the package whose values the analyzer protects.
const typesPkgPath = "repro/internal/types"

// typeMutAllowed are the packages allowed to touch type internals: the
// type language itself and the two packages that construct types.
var typeMutAllowed = map[string]bool{
	typesPkgPath:            true,
	"repro/internal/fusion": true,
	"repro/internal/infer":  true,
}

// accessorNames are the types.Type methods returning internal slices.
var accessorNames = map[string]bool{
	"Fields": true,
	"Elems":  true,
	"Alts":   true,
}

func runTypeMut(pass *Pass) {
	if typeMutAllowed[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		tainted := taintedObjects(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range nn.Lhs {
					if base := sharedSliceBase(pass, lhs, tainted); base != "" {
						pass.ReportNode(lhs, "write into %s mutates a shared immutable type; rebuild with a types constructor instead", base)
					}
				}
			case *ast.IncDecStmt:
				if base := sharedSliceBase(pass, nn.X, tainted); base != "" {
					pass.ReportNode(nn.X, "write into %s mutates a shared immutable type; rebuild with a types constructor instead", base)
				}
			case *ast.CallExpr:
				checkSliceGrower(pass, nn, tainted)
			}
			return true
		})
	}
}

// taintedObjects finds variables bound directly to an accessor result
// (fs := r.Fields(); alts := u.Alts()[1:]) so writes through them can
// be traced. This is a local, flow-insensitive approximation: it
// catches the direct-binding idiom, not arbitrary aliasing.
func taintedObjects(pass *Pass, f *ast.File) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isAccessorExpr(pass, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					tainted[obj] = true
				}
			}
		}
		return true
	})
	return tainted
}

// isAccessorExpr reports whether e is (possibly a slice of) a call to a
// types accessor method.
func isAccessorExpr(pass *Pass, e ast.Expr) bool {
	for {
		switch ee := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = ee.X
		case *ast.CallExpr:
			return isAccessorCall(pass, ee)
		default:
			return false
		}
	}
}

// isAccessorCall reports whether the call invokes Fields/Elems/Alts on
// a type declared in the protected types package.
func isAccessorCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || !accessorNames[fn.Name()] || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == typesPkgPath && fn.Type().(*types.Signature).Recv() != nil
}

// sharedSliceBase walks an l-value chain (e.g. r.Fields()[0].Type) and
// returns a description of the shared storage being written, or "" if
// the chain does not pass through an index into an accessor slice.
func sharedSliceBase(pass *Pass, e ast.Expr, tainted map[types.Object]bool) string {
	for {
		switch ee := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			if isAccessorExpr(pass, ee.X) {
				return exprString(ee.X)
			}
			if id, ok := ast.Unparen(ee.X).(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil && tainted[obj] {
					return id.Name + " (bound to a types accessor result)"
				}
			}
			e = ee.X
		case *ast.SelectorExpr:
			e = ee.X
		case *ast.StarExpr:
			e = ee.X
		default:
			return ""
		}
	}
}

// checkSliceGrower flags append/copy calls whose destination is an
// accessor slice: append may write in place when capacity allows, and
// copy always writes through.
func checkSliceGrower(pass *Pass, call *ast.CallExpr, tainted map[types.Object]bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	if !ok || (b.Name() != "append" && b.Name() != "copy") {
		return
	}
	dst := call.Args[0]
	isShared := isAccessorExpr(pass, dst)
	if !isShared {
		if did, ok := ast.Unparen(dst).(*ast.Ident); ok {
			if obj := pass.ObjectOf(did); obj != nil && tainted[obj] {
				isShared = true
			}
		}
	}
	if isShared {
		pass.ReportNode(call, "%s with destination %s may write into a shared immutable type; copy the slice first", b.Name(), exprString(dst))
	}
}
