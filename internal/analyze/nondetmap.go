package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NondetMap guards the repository's byte-for-byte determinism claim:
// two runs over the same input must render identical schemas, tables
// and profiles (DESIGN.md §1). Go randomizes map iteration order, so a
// `range` over a map whose body performs an order-sensitive operation —
// appending to a slice declared outside the loop, sending on a channel,
// or emitting through a writer — produces output that differs from run
// to run.
//
// The safe idiom is to collect the keys, sort them, and iterate the
// sorted slice. The analyzer recognizes the collection step: an append
// inside a map range is not reported when the destination slice is
// later passed to a sort call (sort.* or slices.*) in the same
// function. Order-insensitive bodies — counting, summing, inserting
// into another map — are never reported.
var NondetMap = &Analyzer{
	Name: "nondetmap",
	Doc:  "map iteration with an order-sensitive body (append/send/emit) and no sort",
	Run:  runNondetMap,
}

// emitNames are method/function names that write output in call order.
var emitNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Encode":      true,
}

func runNondetMap(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFuncMapRanges(pass, fn.Body)
				}
				return false
			case *ast.FuncLit:
				// Only reached for package-level function literals
				// (vars); literals inside declarations are covered by
				// the FuncDecl walk above.
				checkFuncMapRanges(pass, fn.Body)
				return false
			}
			return true
		})
	}
}

// checkFuncMapRanges analyzes one function body: find map ranges, flag
// order-sensitive operations in their bodies, and excuse appends whose
// destination is sorted somewhere in the same function.
func checkFuncMapRanges(pass *Pass, body *ast.BlockStmt) {
	sorted := sortedSlices(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rs, sorted)
		return true
	})
}

// sortedSlices collects the printed form of every expression passed as
// the first argument to a sort.* or slices.* call in the body.
func sortedSlices(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		out[exprString(call.Args[0])] = true
		return true
	})
	return out
}

// checkMapRangeBody reports order-sensitive operations inside one map
// range body.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, sorted map[string]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			// A function literal defined in the body runs when called,
			// not per iteration; don't descend.
			return false
		case *ast.SendStmt:
			pass.ReportNode(nn, "channel send inside map iteration: delivery order depends on map iteration order")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, nn, sorted)
		case *ast.CallExpr:
			checkMapRangeEmit(pass, rs, nn)
		}
		return true
	})
}

// checkMapRangeAssign flags `dst = append(dst, ...)` where dst lives
// outside the loop and is never sorted in the enclosing function.
func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, sorted map[string]bool) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		lhs := as.Lhs[i]
		switch lhs.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			continue // index assignment etc.: not the collection idiom
		}
		obj := rootObject(pass, lhs)
		if obj == nil || withinNode(obj.Pos(), rs) {
			continue // loop-local slice: per-iteration, order-insensitive
		}
		if sorted[exprString(lhs)] {
			continue // collect-then-sort idiom
		}
		if fix := sortAfterLoopFix(pass, rs, lhs); fix != nil {
			pass.ReportNodeFix(as, fix, "append to %s inside map iteration without a later sort: element order depends on map iteration order", exprString(lhs))
		} else {
			pass.ReportNode(as, "append to %s inside map iteration without a later sort: element order depends on map iteration order", exprString(lhs))
		}
	}
}

// sortAfterLoopFix builds the mechanical cure for the collect-without-
// sort finding — insert a sort of the destination right after the range
// loop — when the destination is a simple variable of a sortable
// element type (string or int, covering the key-collection idiom). The
// loop keeps collecting; the sort restores determinism.
func sortAfterLoopFix(pass *Pass, rs *ast.RangeStmt, lhs ast.Expr) *SuggestedFix {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	t := pass.TypeOf(id)
	if t == nil {
		return nil
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	var sortFn string
	if basic, ok := sl.Elem().Underlying().(*types.Basic); ok {
		switch basic.Kind() {
		case types.String:
			sortFn = "sort.Strings"
		case types.Int:
			sortFn = "sort.Ints"
		}
	}
	if sortFn == "" {
		return nil
	}
	indent := strings.Repeat("\t", max(pass.Fset.Position(rs.Pos()).Column-1, 0))
	return &SuggestedFix{
		Message:    "sort " + id.Name + " after the loop",
		Edits:      []TextEdit{{Pos: rs.End(), End: rs.End(), NewText: "\n" + indent + sortFn + "(" + id.Name + ")"}},
		NeedImport: "sort",
	}
}

// checkMapRangeEmit flags calls that write output (Write*, Print*,
// Fprint*, Encode) to a destination living outside the loop.
func checkMapRangeEmit(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || !emitNames[fn.Name()] {
		return
	}
	// Find the destination: the receiver for methods, the first
	// argument for package-level functions (fmt.Fprintf(w, ...)), and
	// the implicit process stdout for fmt.Print*.
	var dest ast.Expr
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && fn.Type().(*types.Signature).Recv() != nil {
		dest = sel.X
	} else if len(call.Args) > 0 {
		dest = call.Args[0]
	}
	if dest != nil {
		obj := rootObject(pass, dest)
		if obj != nil && withinNode(obj.Pos(), rs) {
			return // per-iteration buffer: order-insensitive
		}
	}
	pass.ReportNode(call, "%s inside map iteration: output order depends on map iteration order", fn.Name())
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// calleeFunc resolves a call's static callee, or nil for builtins,
// conversions and indirect calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// rootObject returns the object of the base identifier of an l-value
// chain (x, x.f, x[i].f, *x, ...), or nil.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch ee := e.(type) {
		case *ast.Ident:
			return pass.ObjectOf(ee)
		case *ast.SelectorExpr:
			// For pkg.Var selectors the root is the variable, not the
			// package name.
			if _, isPkg := pass.ObjectOf(rootIdent(ee.X)).(*types.PkgName); isPkg {
				return pass.ObjectOf(ee.Sel)
			}
			e = ee.X
		case *ast.IndexExpr:
			e = ee.X
		case *ast.StarExpr:
			e = ee.X
		case *ast.UnaryExpr:
			e = ee.X
		case *ast.ParenExpr:
			e = ee.X
		case *ast.CallExpr:
			e = ee.Fun
		default:
			return nil
		}
	}
}

// rootIdent returns the base identifier of a selector chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch ee := e.(type) {
		case *ast.Ident:
			return ee
		case *ast.SelectorExpr:
			e = ee.X
		case *ast.ParenExpr:
			e = ee.X
		default:
			return nil
		}
	}
}

// withinNode reports whether pos falls inside n's source range.
func withinNode(pos token.Pos, n ast.Node) bool {
	return pos != token.NoPos && n.Pos() <= pos && pos < n.End()
}
