// Package analyze is a hand-rolled static-analysis driver for this
// repository, built only on the standard library (go/parser, go/ast,
// go/types — no golang.org/x/tools). It exists because the core claims
// of the reproduction are *invariants of the implementation*, not just
// of the algorithms: fusion is commutative and associative so any
// reduction order must give byte-for-byte identical schemas, fused
// types share subtrees so they must never be mutated after
// construction, and the map-reduce layer must not leak goroutines or
// copy locks. Runtime property tests exercise these invariants on the
// inputs they happen to generate; the analyzers in this package check
// the *source* for the coding patterns that break them, on every build.
//
// The ten project-specific analyzers are:
//
//   - nondetmap: iteration over a Go map whose body performs an
//     order-sensitive operation (append to an outer slice, channel
//     send, writer emission) without sorting — the determinism
//     guarantee (docs/ANALYSIS.md).
//   - typemut: writes through the shared slices returned by
//     types.Type accessors (Fields/Elems/Alts) outside the constructor
//     packages — fused types alias subtrees, so such writes corrupt
//     sibling schemas.
//   - goroleak: `go func` literals with no completion accounting (no
//     WaitGroup, no channel close/send, no done-channel) in scope.
//   - droppederr: discarded error results from encoding/json, io and
//     os calls.
//   - lockcopy: by-value copies of structs embedding sync primitives.
//   - stagecapture: pipeline stage literals (map/combine/feed functions
//     passed to internal/pipeline.Run or internal/mapreduce.Run) that
//     capture loop variables or assign to captured state — stages run
//     concurrently and may be retried, so mutable state belongs in the
//     Accumulator or Env.
//   - monoidpure: accumulator methods (Add/Merge/Fold) and the fusion
//     entry points must be transitively free of nondeterminism and
//     external mutation — checked through calls via the function
//     summaries of callgraph.go/summary.go.
//   - internmut: writes through accessor slices of interned types
//     reached across call boundaries (a callee that mutates its slice
//     parameter receiving an accessor result), extending typemut
//     interprocedurally.
//   - ctxflow: functions that receive a context.Context must pass it
//     down rather than minting context.Background(), and loops that
//     spawn goroutines must observe ctx.Done().
//   - poolescape: pooled chunk buffers (sync.Pool, jsontext.ChunkPool)
//     used after being Put back, and map stages handed to the releasing
//     engine drivers whose output aliases the released item — the
//     batched-feed recycling contract (docs/PERFORMANCE.md).
//
// The last three consume the per-function fact summaries built by
// ComputeSummaries (pass 1); the driver computes those once per Check
// over the full package set, so facts flow across every package loaded
// together.
//
// Diagnostics can be suppressed with a `//lint:ignore <analyzers>
// <reason>` comment on the flagged line or the line directly above it;
// see suppress.go. Directives naming an analyzer that does not exist
// are themselves reported (analyzer "suppress") rather than silently
// accepted. The cmd/repolint command is the CLI front end and verify.sh
// wires it into CI.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer is one named check. Run inspects a type-checked package via
// the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer
	// guards.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
	// NeedsSummaries marks interprocedural analyzers: the driver
	// computes function summaries over the whole package set before
	// running them and exposes the result as Pass.Sums.
	NeedsSummaries bool
}

// DocAnchor returns the analyzer's documentation link, an anchor into
// docs/ANALYSIS.md. It is attached to every finding (JSON `doc` field,
// SARIF helpUri).
func (a *Analyzer) DocAnchor() string {
	return "docs/ANALYSIS.md#" + a.Name
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's recordings for the files.
	Info *types.Info
	// Sums holds the interprocedural function summaries, non-nil only
	// for analyzers with NeedsSummaries set.
	Sums *Summaries

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, token.NoPos, nil, format, args...)
}

// ReportNode records a finding spanning the node, so the diagnostic
// carries an end position (JSON endLine/endCol, SARIF region).
func (p *Pass) ReportNode(n ast.Node, format string, args ...any) {
	p.report(n.Pos(), n.End(), nil, format, args...)
}

// ReportNodeFix records a finding spanning the node with an attached
// suggested fix, applied by `repolint -fix`.
func (p *Pass) ReportNodeFix(n ast.Node, fix *SuggestedFix, format string, args ...any) {
	p.report(n.Pos(), n.End(), fix, format, args...)
}

func (p *Pass) report(pos, end token.Pos, fix *SuggestedFix, format string, args ...any) {
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		Doc:      p.Analyzer.DocAnchor(),
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
		Fixable:  fix != nil,
	}
	if end.IsValid() {
		d.End = p.Fset.Position(end)
	}
	*p.diags = append(*p.diags, d)
}

// TypeOf returns the type of e, or nil if the checker did not record
// one.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// exprString renders an expression for use in diagnostics and for the
// syntactic matching of the collect-then-sort idiom.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that fired.
	Analyzer string `json:"analyzer"`
	// Doc is the documentation anchor for the analyzer.
	Doc string `json:"doc"`
	// Pos locates the finding; End, when valid, closes the flagged
	// source range.
	Pos token.Position `json:"-"`
	End token.Position `json:"-"`
	// Message explains the finding.
	Message string `json:"message"`

	// File, Line and Col mirror Pos for JSON output; EndLine/EndCol
	// mirror End (zero when the finding has no range).
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	EndLine int    `json:"endLine,omitempty"`
	EndCol  int    `json:"endCol,omitempty"`

	// Fixable reports whether a suggested fix is attached; Fix is the
	// fix itself (not serialized — `repolint -fix` applies it).
	Fixable bool          `json:"fixable"`
	Fix     *SuggestedFix `json:"-"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the registered analyzers in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		NondetMap,
		TypeMut,
		GoroLeak,
		DroppedErr,
		LockCopy,
		StageCapture,
		MonoidPure,
		InternMut,
		CtxFlow,
		PoolEscape,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AnalyzerStat is one analyzer's cost and yield over a Check run, for
// verify.sh's per-analyzer report. The pseudo-entry "summaries" covers
// pass 1 (call graph + fixpoint), shared by all interprocedural
// analyzers.
type AnalyzerStat struct {
	Name     string
	Findings int
	Elapsed  time.Duration
}

// Check runs the analyzers over the packages, drops findings matched by
// lint:ignore directives, and returns the remainder sorted by file,
// line, column and analyzer name so output is deterministic.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := CheckStats(pkgs, analyzers)
	return diags
}

// CheckStats is Check plus per-analyzer timing and finding counts.
// Summaries are computed once over the whole package set when any
// requested analyzer needs them, so interprocedural facts flow across
// every package loaded together.
func CheckStats(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerStat) {
	var sums *Summaries
	stats := make([]AnalyzerStat, 0, len(analyzers)+1)
	for _, a := range analyzers {
		if a.NeedsSummaries {
			start := time.Now()
			sums = ComputeSummaries(pkgs)
			stats = append(stats, AnalyzerStat{Name: "summaries", Elapsed: time.Since(start)})
			break
		}
	}

	var diags []Diagnostic
	statIdx := make(map[string]int)
	for _, pkg := range pkgs {
		sup, bad := collectSuppressions(pkg.Fset, pkg.Files)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			start := time.Now()
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &pkgDiags,
			}
			if a.NeedsSummaries {
				pass.Sums = sums
			}
			a.Run(pass)

			i, ok := statIdx[a.Name]
			if !ok {
				i = len(stats)
				statIdx[a.Name] = i
				stats = append(stats, AnalyzerStat{Name: a.Name})
			}
			stats[i].Elapsed += time.Since(start)
		}
		// Malformed or unknown-name directives are findings in their own
		// right (analyzer "suppress") and are never suppressible — a
		// directive must not be able to silence the report about itself.
		pkgDiags = append(pkgDiags, bad...)
		for _, d := range pkgDiags {
			if d.Analyzer != suppressName && sup.matches(d) {
				continue
			}
			d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
			if d.End.IsValid() {
				d.EndLine, d.EndCol = d.End.Line, d.End.Column
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// Finding counts reflect what survived suppression — the numbers a
	// CI log should show next to each analyzer's cost.
	for _, d := range diags {
		i, ok := statIdx[d.Analyzer]
		if !ok {
			i = len(stats)
			statIdx[d.Analyzer] = i
			stats = append(stats, AnalyzerStat{Name: d.Analyzer})
		}
		stats[i].Findings++
	}
	return diags, stats
}
