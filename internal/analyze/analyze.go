// Package analyze is a hand-rolled static-analysis driver for this
// repository, built only on the standard library (go/parser, go/ast,
// go/types — no golang.org/x/tools). It exists because the core claims
// of the reproduction are *invariants of the implementation*, not just
// of the algorithms: fusion is commutative and associative so any
// reduction order must give byte-for-byte identical schemas, fused
// types share subtrees so they must never be mutated after
// construction, and the map-reduce layer must not leak goroutines or
// copy locks. Runtime property tests exercise these invariants on the
// inputs they happen to generate; the analyzers in this package check
// the *source* for the coding patterns that break them, on every build.
//
// The six project-specific analyzers are:
//
//   - nondetmap: iteration over a Go map whose body performs an
//     order-sensitive operation (append to an outer slice, channel
//     send, writer emission) without sorting — the determinism
//     guarantee (docs/ANALYSIS.md).
//   - typemut: writes through the shared slices returned by
//     types.Type accessors (Fields/Elems/Alts) outside the constructor
//     packages — fused types alias subtrees, so such writes corrupt
//     sibling schemas.
//   - goroleak: `go func` literals with no completion accounting (no
//     WaitGroup, no channel close/send, no done-channel) in scope.
//   - droppederr: discarded error results from encoding/json, io and
//     os calls.
//   - lockcopy: by-value copies of structs embedding sync primitives.
//   - stagecapture: pipeline stage literals (map/combine/feed functions
//     passed to internal/pipeline.Run or internal/mapreduce.Run) that
//     capture loop variables or assign to captured state — stages run
//     concurrently and may be retried, so mutable state belongs in the
//     Accumulator or Env.
//
// Diagnostics can be suppressed with a `//lint:ignore <analyzers>
// <reason>` comment on the flagged line or the line directly above it;
// see suppress.go. The cmd/repolint command is the CLI front end and
// verify.sh wires it into CI.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a type-checked package via
// the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer
	// guards.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's recordings for the files.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the checker did not record
// one.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// exprString renders an expression for use in diagnostics and for the
// syntactic matching of the collect-then-sort idiom.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that fired.
	Analyzer string `json:"analyzer"`
	// Pos locates the finding.
	Pos token.Position `json:"-"`
	// Message explains the finding.
	Message string `json:"message"`

	// File, Line and Col mirror Pos for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the registered analyzers in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		NondetMap,
		TypeMut,
		GoroLeak,
		DroppedErr,
		LockCopy,
		StageCapture,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Check runs the analyzers over the packages, drops findings matched by
// lint:ignore directives, and returns the remainder sorted by file,
// line, column and analyzer name so output is deterministic.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &pkgDiags,
			}
			a.Run(pass)
		}
		for _, d := range pkgDiags {
			if !sup.matches(d) {
				d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
