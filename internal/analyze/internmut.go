package analyze

import (
	"go/ast"
	"go/types"
)

// InternMut extends typemut across call boundaries. The typemut
// analyzer catches a write through an accessor slice (Fields/Elems/
// Alts) in the function that obtained it; it is blind to the same
// write one call away — passing r.Fields() to a helper that sorts or
// overwrites its slice parameter mutates the identical shared backing
// array, corrupting every schema that aliases the subtree (the
// children-are-interned, equality-is-shallow invariant of the
// hash-consing layer).
//
// Using the function summaries of summary.go, this analyzer flags any
// call, outside the constructor packages, that feeds an accessor
// result (directly, sliced, or via a variable bound to one) into:
//
//   - a parameter the callee may write through, transitively
//     (MutParams — fs[i] = x, copy(fs, ...), append in place two
//     calls down);
//   - a known in-place standard-library mutator (sort.Slice,
//     slices.Sort, ...), which typemut's local rules do not cover.
//
// Excused: read-only consumption (iteration, len, rendering), passing
// accessor slices into the constructor packages' own entry points
// (types.NewRecord copies its input), and call targets with no static
// summary (interface methods, func values) — a documented blind spot
// rather than a guess.
var InternMut = &Analyzer{
	Name:           "internmut",
	Doc:            "accessor slice of an interned type escapes into a callee that mutates it",
	Run:            runInternMut,
	NeedsSummaries: true,
}

func runInternMut(pass *Pass) {
	if pass.Sums == nil || typeMutAllowed[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		tainted := taintedObjects(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkInternEscape(pass, call, tainted)
			return true
		})
	}
}

// checkInternEscape inspects one call: does any argument carry an
// accessor slice into a mutating parameter?
func checkInternEscape(pass *Pass, call *ast.CallExpr, tainted map[types.Object]bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	for i, arg := range call.Args {
		if !isAccessorArg(pass, arg, tainted) {
			continue
		}
		if why, pname := mutatesArg(pass, fn, i); why != "" {
			pass.ReportNode(call, "%s escapes into %s of %s, which %s; copy the slice first",
				accessorDesc(pass, arg, tainted), pname, fn.Name(), why)
		}
	}
}

// isAccessorArg reports whether the argument expression is an accessor
// result, a slice of one, or a variable bound to one.
func isAccessorArg(pass *Pass, arg ast.Expr, tainted map[types.Object]bool) bool {
	if isAccessorExpr(pass, arg) {
		return true
	}
	e := ast.Unparen(arg)
	if se, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(se.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.ObjectOf(id); obj != nil && tainted[obj] {
			return true
		}
	}
	return false
}

// accessorDesc renders the argument for diagnostics.
func accessorDesc(pass *Pass, arg ast.Expr, tainted map[types.Object]bool) string {
	if isAccessorExpr(pass, arg) {
		return "accessor slice " + exprString(arg)
	}
	return exprString(arg) + " (bound to a types accessor result)"
}

// mutatesArg reports how fn may write through its i-th argument: a
// non-empty witness chain and the parameter's name. Module functions
// answer through their summaries; sort/slices in-place mutators are
// recognized directly (their bodies are outside the analyzed set).
func mutatesArg(pass *Pass, fn *types.Func, i int) (why, pname string) {
	if pkg := fn.Pkg().Path(); (pkg == "sort" || pkg == "slices") && sortMutators[fn.Name()] && i == 0 {
		return "sorts it in place", "the slice argument"
	}
	if typeMutAllowed[fn.Pkg().Path()] {
		return "", "" // constructor packages own the invariant (and copy their inputs)
	}
	sum := pass.Sums.Of(fn)
	if sum == nil {
		return "", ""
	}
	sig := fn.Type().(*types.Signature)
	j := i
	if n := sig.Params().Len(); j >= n {
		if !sig.Variadic() || n == 0 {
			return "", ""
		}
		j = n - 1
	}
	if !sum.MutatesParam(j) {
		return "", ""
	}
	return sum.MutParamWhy[j], "parameter " + paramName(sum, j)
}
