package analyze

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiag(analyzer, file string, line int) Diagnostic {
	d := Diagnostic{
		Analyzer: analyzer,
		Doc:      "docs/ANALYSIS.md#" + analyzer,
		Message:  "sample finding from " + analyzer,
		File:     file,
		Line:     line,
		Col:      3,
		EndLine:  line,
		EndCol:   17,
	}
	d.Pos = token.Position{Filename: file, Line: line, Column: 3}
	return d
}

// TestWriteSARIFStructure decodes the emitted log and checks the
// properties the 2.1.0 schema requires plus the invariants consumers
// (GitHub code scanning) rely on: version, rule table completeness,
// ruleIndex consistency, relative URIs under SRCROOT, valid regions.
func TestWriteSARIFStructure(t *testing.T) {
	root := "/work/repo"
	diags := []Diagnostic{
		sampleDiag("nondetmap", "/work/repo/internal/x/x.go", 10),
		sampleDiag("monoidpure", "/work/repo/cmd/y/main.go", 4),
		sampleDiag("suppress", "/elsewhere/z.go", 2), // outside root: absolute URI
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, root); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						HelpURI string `json:"helpUri"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			OriginalURIBaseIDs map[string]struct {
				URI string `json:"uri"`
			} `json:"originalUriBaseIds"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
							EndLine     int `json:"endLine"`
							EndColumn   int `json:"endColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q does not pin 2.1.0", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "repolint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}

	// Rule table: every registered analyzer plus "suppress", each with a
	// description and help URI.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rule table has %d entries, want %d", len(run.Tool.Driver.Rules), want)
	}
	ruleAt := make(map[string]int)
	for i, r := range run.Tool.Driver.Rules {
		ruleAt[r.ID] = i
		if r.ShortDescription.Text == "" || r.HelpURI == "" {
			t.Errorf("rule %s missing description or helpUri", r.ID)
		}
	}
	for _, a := range All() {
		if _, ok := ruleAt[a.Name]; !ok {
			t.Errorf("rule table missing analyzer %s", a.Name)
		}
	}
	if _, ok := ruleAt["suppress"]; !ok {
		t.Errorf("rule table missing the suppress pseudo-analyzer")
	}

	if base, ok := run.OriginalURIBaseIDs["SRCROOT"]; !ok || !strings.HasPrefix(base.URI, "file://") {
		t.Errorf("SRCROOT base = %+v, want file:// URI", base)
	}

	if len(run.Results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(diags))
	}
	for i, r := range run.Results {
		if r.Level != "warning" {
			t.Errorf("result %d level = %q", i, r.Level)
		}
		if r.Message.Text == "" {
			t.Errorf("result %d has empty message", i)
		}
		if idx, ok := ruleAt[r.RuleID]; !ok || r.RuleIndex != idx {
			t.Errorf("result %d ruleIndex %d inconsistent with rule table position of %q", i, r.RuleIndex, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.Region.StartLine < 1 {
			t.Errorf("result %d startLine %d < 1", i, loc.Region.StartLine)
		}
		if loc.Region.EndLine > 0 && loc.Region.EndLine < loc.Region.StartLine {
			t.Errorf("result %d region ends before it starts", i)
		}
		if strings.HasPrefix(loc.ArtifactLocation.URI, "/work/repo") {
			t.Errorf("result %d URI %q not relativized against root", i, loc.ArtifactLocation.URI)
		}
	}
	if got := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "internal/x/x.go" {
		t.Errorf("in-root URI = %q, want internal/x/x.go", got)
	}
	if got := run.Results[2].Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "/elsewhere/z.go" {
		t.Errorf("out-of-root URI = %q, want absolute fallback", got)
	}
}

// TestWriteSARIFEmpty checks a clean run still yields a schema-valid
// log with the full rule table and an empty (non-null) results array —
// code scanning treats a missing results property as an error.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, "/work/repo"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	runs := log["runs"].([]any)
	run := runs[0].(map[string]any)
	results, ok := run["results"].([]any)
	if !ok {
		t.Fatalf("results is %T, want an array (never null)", run["results"])
	}
	if len(results) != 0 {
		t.Fatalf("empty run has %d results", len(results))
	}
}
