package analyze

import (
	"go/ast"
	"go/types"
)

// DroppedErr guards the I/O boundary: a schema repository that silently
// fails to persist, a CLI that truncates output on a full disk, or a
// codec that half-decodes are all worse than an error. The analyzer
// reports calls to functions and methods of the packages encoding/json,
// io and os whose error result is discarded — as a bare expression
// statement, behind `go`/`defer` (the results of a deferred call are
// always dropped), or assigned to the blank identifier.
//
// The scope is deliberately the serialization and file-handling
// packages this repository's correctness depends on, not every
// error-returning call: fmt printing to stdout, strings.Builder writes
// and similar never-fail or best-effort calls stay out of the way.
// Legitimate discards — closing a read-only file on an error path, for
// instance — should carry a lint:ignore with the justification.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "discarded error result from an encoding/json, io or os call",
	Run:  runDroppedErr,
}

// droppedErrPkgs are the packages whose error results must be consumed.
var droppedErrPkgs = map[string]bool{
	"encoding/json": true,
	"io":            true,
	"os":            true,
}

func runDroppedErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.ExprStmt:
				if call, ok := nn.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "discarded")
				}
				return false // the call is handled; don't re-visit it
			case *ast.DeferStmt:
				checkDiscardedCall(pass, nn.Call, "dropped by defer")
				return true // descend: argument expressions may contain calls
			case *ast.GoStmt:
				checkDiscardedCall(pass, nn.Call, "dropped by go")
				return true
			case *ast.AssignStmt:
				checkBlankAssign(pass, nn)
			}
			return true
		})
	}
}

// checkDiscardedCall reports the call if it returns an error from a
// guarded package and that error goes nowhere.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, how string) {
	fn := guardedCallee(pass, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s.%s %s", fn.Pkg().Name(), fn.Name(), how)
}

// checkBlankAssign reports assignments where every error result of a
// guarded call lands in the blank identifier.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := guardedCallee(pass, call)
	if fn == nil {
		return
	}
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len() && i < len(as.Lhs); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
			return // at least one error result is captured
		}
	}
	pass.Reportf(as.Pos(), "error result of %s.%s assigned to _", fn.Pkg().Name(), fn.Name())
}

// guardedCallee resolves the call's static callee and returns it if it
// belongs to a guarded package and returns an error; nil otherwise.
func guardedCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || !droppedErrPkgs[fn.Pkg().Path()] {
		return nil
	}
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return fn
		}
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
