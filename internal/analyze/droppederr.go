package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DroppedErr guards the I/O boundary: a schema repository that silently
// fails to persist, a CLI that truncates output on a full disk, or a
// codec that half-decodes are all worse than an error. The analyzer
// reports calls to functions and methods of the packages encoding/json,
// io and os whose error result is discarded — as a bare expression
// statement, behind `go`/`defer` (the results of a deferred call are
// always dropped), or assigned to the blank identifier.
//
// The scope is deliberately the serialization and file-handling
// packages this repository's correctness depends on, not every
// error-returning call: fmt printing to stdout, strings.Builder writes
// and similar never-fail or best-effort calls stay out of the way.
// Legitimate discards — closing a read-only file on an error path, for
// instance — should carry a lint:ignore with the justification.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "discarded error result from an encoding/json, io or os call",
	Run:  runDroppedErr,
}

// droppedErrPkgs are the packages whose error results must be consumed.
var droppedErrPkgs = map[string]bool{
	"encoding/json": true,
	"io":            true,
	"os":            true,
}

func runDroppedErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.ExprStmt:
				if call, ok := nn.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "discarded")
				}
				return false // the call is handled; don't re-visit it
			case *ast.DeferStmt:
				checkDeferredCall(pass, f, nn)
				return true // descend: argument expressions may contain calls
			case *ast.GoStmt:
				checkDiscardedCall(pass, nn.Call, "dropped by go")
				return true
			case *ast.AssignStmt:
				checkBlankAssign(pass, nn)
			}
			return true
		})
	}
}

// checkDiscardedCall reports the call if it returns an error from a
// guarded package and that error goes nowhere.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, how string) {
	fn := guardedCallee(pass, call)
	if fn == nil {
		return
	}
	pass.ReportNode(call, "error result of %s.%s %s", fn.Pkg().Name(), fn.Name(), how)
}

// checkDeferredCall reports a deferred call whose error is dropped.
// When the enclosing function (not a nested literal) has a named error
// result and the deferred call returns exactly one error, the finding
// carries the mechanical fix: wrap the call so its error joins the
// function's — `defer f.Close()` becomes
// `defer func() { err = errors.Join(err, f.Close()) }()`.
func checkDeferredCall(pass *Pass, file *ast.File, ds *ast.DeferStmt) {
	fn := guardedCallee(pass, ds.Call)
	if fn == nil {
		return
	}
	errName := enclosingErrResult(pass, file, ds.Pos())
	sig := fn.Type().(*types.Signature)
	if errName == "" || sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
		pass.ReportNode(ds.Call, "error result of %s.%s dropped by defer", fn.Pkg().Name(), fn.Name())
		return
	}
	callText := exprString(ds.Call)
	fix := &SuggestedFix{
		Message:    "join the deferred error into " + errName,
		Edits:      []TextEdit{{Pos: ds.Call.Pos(), End: ds.Call.End(), NewText: "func() { " + errName + " = errors.Join(" + errName + ", " + callText + ") }()"}},
		NeedImport: "errors",
	}
	pass.ReportNodeFix(ds.Call, fix, "error result of %s.%s dropped by defer", fn.Pkg().Name(), fn.Name())
}

// enclosingErrResult finds the innermost function enclosing pos and
// returns the name of its named error result, or "". A surrounding
// function literal with its own result list shadows the declaration's.
func enclosingErrResult(pass *Pass, file *ast.File, pos token.Pos) string {
	name := ""
	ast.Inspect(file, func(n ast.Node) bool {
		var ft *ast.FuncType
		var body *ast.BlockStmt
		switch nn := n.(type) {
		case *ast.FuncDecl:
			ft, body = nn.Type, nn.Body
		case *ast.FuncLit:
			ft, body = nn.Type, nn.Body
		default:
			return true
		}
		if body == nil || !withinNode(pos, body) {
			return true
		}
		name = "" // innermost function wins; reset any outer result
		if ft.Results != nil {
			for _, field := range ft.Results.List {
				if t := pass.TypeOf(field.Type); t == nil || !isErrorType(t) {
					continue
				}
				for _, id := range field.Names {
					if id.Name != "_" {
						name = id.Name
					}
				}
			}
		}
		return true // keep descending: a nested literal may be closer
	})
	return name
}

// checkBlankAssign reports assignments where every error result of a
// guarded call lands in the blank identifier.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := guardedCallee(pass, call)
	if fn == nil {
		return
	}
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len() && i < len(as.Lhs); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
			return // at least one error result is captured
		}
	}
	pass.ReportNode(as, "error result of %s.%s assigned to _", fn.Pkg().Name(), fn.Name())
}

// guardedCallee resolves the call's static callee and returns it if it
// belongs to a guarded package and returns an error; nil otherwise.
func guardedCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || !droppedErrPkgs[fn.Pkg().Path()] {
		return nil
	}
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return fn
		}
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
