package analyze

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives follow the staticcheck convention:
//
//	//lint:ignore <analyzers> <reason>
//
// where <analyzers> is a comma-separated list of analyzer names or the
// word "all", and <reason> is required prose explaining why the finding
// is acceptable. A directive suppresses matching diagnostics on the
// line it appears on (trailing comment) and on the line directly below
// it (standalone comment above the flagged statement).

// suppression is one parsed lint:ignore directive.
type suppression struct {
	names  []string // analyzer names, or ["all"]
	reason string
}

func (s suppression) covers(analyzer string) bool {
	for _, n := range s.names {
		if n == "all" || n == analyzer {
			return true
		}
	}
	return false
}

// suppressions indexes directives by file and line.
type suppressions map[string]map[int][]suppression

// matches reports whether the diagnostic is covered by a directive on
// its own line or the line above.
func (sup suppressions) matches(d Diagnostic) bool {
	lines := sup[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, s := range lines[line] {
			if s.covers(d.Analyzer) {
				return true
			}
		}
	}
	return false
}

// collectSuppressions parses every lint:ignore directive in the files.
// Malformed directives (no analyzer list or no reason) are ignored; the
// analyzers they meant to silence will keep firing, which makes the
// mistake visible.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				parts := strings.SplitN(strings.TrimSpace(rest), " ", 2)
				if len(parts) != 2 || parts[0] == "" || strings.TrimSpace(parts[1]) == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int][]suppression)
					sup[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], suppression{
					names:  strings.Split(parts[0], ","),
					reason: strings.TrimSpace(parts[1]),
				})
			}
		}
	}
	return sup
}
