package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives follow the staticcheck convention:
//
//	//lint:ignore <analyzers> <reason>
//
// where <analyzers> is a comma-separated list of analyzer names or the
// word "all", and <reason> is required prose explaining why the finding
// is acceptable. A directive suppresses matching diagnostics on the
// line it appears on (trailing comment) and on the line directly below
// it (standalone comment above the flagged statement). Because a
// directive above a declaration group (e.g. a file-level `var` block)
// only reaches the group's first line, per-line directives are needed
// inside multi-line blocks — a deliberate narrowness that keeps every
// suppression adjacent to what it excuses.
//
// A directive naming an analyzer that does not exist is itself reported
// under the pseudo-analyzer "suppress": a typo in a directive must
// surface as a finding, not silently leave the real analyzer firing
// (or worse, appear to work because another name in the list matched).

// suppressName is the pseudo-analyzer under which defective directives
// are reported. It is not in All() and cannot be suppressed.
const suppressName = "suppress"

// suppressDoc is the documentation anchor for directive findings.
const suppressDoc = "docs/ANALYSIS.md#suppressing-findings"

// suppression is one parsed lint:ignore directive.
type suppression struct {
	names  []string // analyzer names, or ["all"]
	reason string
}

func (s suppression) covers(analyzer string) bool {
	for _, n := range s.names {
		if n == "all" || n == analyzer {
			return true
		}
	}
	return false
}

// suppressions indexes directives by file and line.
type suppressions map[string]map[int][]suppression

// matches reports whether the diagnostic is covered by a directive on
// its own line or the line above.
func (sup suppressions) matches(d Diagnostic) bool {
	lines := sup[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, s := range lines[line] {
			if s.covers(d.Analyzer) {
				return true
			}
		}
	}
	return false
}

// collectSuppressions parses every lint:ignore directive in the files.
// Malformed directives (no analyzer list or no reason) and directives
// naming nonexistent analyzers are returned as diagnostics instead of
// taking effect; the analyzers they meant to silence keep firing, which
// makes the mistake doubly visible.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	report := func(c *ast.Comment, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Analyzer: suppressName,
			Doc:      suppressDoc,
			Pos:      fset.Position(c.Pos()),
			End:      fset.Position(c.End()),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				parts := strings.SplitN(strings.TrimSpace(rest), " ", 2)
				if len(parts) != 2 || parts[0] == "" || strings.TrimSpace(parts[1]) == "" {
					report(c, "lint:ignore directive is missing its reason; it has no effect")
					continue
				}
				names := strings.Split(parts[0], ",")
				valid := names[:0]
				for _, name := range names {
					if name != "all" && ByName(name) == nil {
						report(c, "lint:ignore names unknown analyzer %q; that name has no effect", name)
						continue
					}
					valid = append(valid, name)
				}
				if len(valid) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int][]suppression)
					sup[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], suppression{
					names:  valid,
					reason: strings.TrimSpace(parts[1]),
				})
			}
		}
	}
	return sup, bad
}
