package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Pass 1 of the interprocedural framework: one summary per declared
// function, computed locally and then propagated over the call graph to
// a fixpoint. Facts are monotone bits (a function never loses a fact as
// more information arrives), so the fixpoint is unique regardless of
// iteration strategy; iterating in the graph's deterministic order also
// makes the recorded first witness — the "why" chain shown in
// diagnostics — byte-stable across runs.
//
// The facts:
//
//   - Nondet: the function may read a source of nondeterminism —
//     time.Now/Since/Until, anything in math/rand, runtime goroutine
//     counts, or a map iteration whose outcome is order-sensitive
//     (append to an outer slice never sorted, emission, channel send,
//     or a capacity-guarded write, where which entries win depends on
//     iteration order).
//   - MutGlobal: the function may write package-level state.
//   - MutRecv / MutParams: the function may write through its receiver
//     or a given parameter (element writes, in-place append/copy/sort,
//     map writes and deletes) — visible to the caller via aliasing.
//   - Background: the function constructs context.Background() or
//     context.TODO(), directly or via callees that do not themselves
//     take a context (callees with a ctx parameter own the fact and
//     are flagged directly by ctxflow).
//   - Allocates: the function may allocate (make/new/composite
//     literal/append), directly or transitively.
type Fact uint8

const (
	FactNondet Fact = 1 << iota
	FactMutGlobal
	FactBackground
	FactAllocates
)

// FuncSummary is the propagated fact set of one declared function.
type FuncSummary struct {
	node *funcNode

	Facts   Fact
	MutRecv bool
	// MutParams is indexed by declared parameter position.
	MutParams []bool

	// First-witness positions and descriptions per fact, for
	// diagnostics. The position is always inside the summarized
	// function (a local source or the call that imported the fact).
	NondetPos     token.Pos
	NondetWhy     string
	MutGlobalPos  token.Pos
	MutGlobalWhy  string
	BackgroundPos token.Pos
	BackgroundWhy string
	MutRecvPos    token.Pos
	MutRecvWhy    string
	MutParamPos   []token.Pos
	MutParamWhy   []string
}

// Func returns the summarized function object.
func (s *FuncSummary) Func() *types.Func { return s.node.fn }

// Decl returns the summarized function's declaration.
func (s *FuncSummary) Decl() *ast.FuncDecl { return s.node.decl }

// MutatesParam reports whether the function may write through its
// index-th declared parameter.
func (s *FuncSummary) MutatesParam(i int) bool {
	return i >= 0 && i < len(s.MutParams) && s.MutParams[i]
}

// Summaries holds pass 1's result for one Check invocation. Facts
// propagate across exactly the package set that was analyzed together:
// running repolint over ./... sees every cross-package call chain,
// while a single-package run only sees that package's bodies.
type Summaries struct {
	graph *callGraph
	byFn  map[*types.Func]*FuncSummary
}

// Of returns the summary for fn, or nil when fn was not declared in the
// analyzed package set (stdlib, interface methods, func values).
func (s *Summaries) Of(fn *types.Func) *FuncSummary {
	if s == nil || fn == nil {
		return nil
	}
	return s.byFn[fn]
}

// ComputeSummaries runs pass 1 over the package set: local fact
// extraction per declaration, then transitive propagation to a
// fixpoint.
func ComputeSummaries(pkgs []*Package) *Summaries {
	g := buildCallGraph(pkgs)
	s := &Summaries{graph: g, byFn: make(map[*types.Func]*FuncSummary, len(g.order))}
	for _, n := range g.order {
		sum := &FuncSummary{
			node:        n,
			MutParams:   make([]bool, len(n.paramObjs)),
			MutParamPos: make([]token.Pos, len(n.paramObjs)),
			MutParamWhy: make([]string, len(n.paramObjs)),
		}
		s.byFn[n.fn] = sum
		localFacts(sum)
	}
	s.propagate()
	return s
}

// --- local fact extraction ---

// localFacts scans one declaration body (function literals included —
// a literal's effects are conservatively charged to the enclosing
// declaration) for fact sources.
func localFacts(sum *FuncSummary) {
	n := sum.node
	p := &Pass{Fset: n.pkg.Fset, Files: n.pkg.Files, Pkg: n.pkg.Types, Info: n.pkg.Info}
	body := n.decl.Body
	sorted := sortedSlices(p, body)

	ast.Inspect(body, func(node ast.Node) bool {
		switch nn := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range nn.Lhs {
				sum.recordWrite(p, lhs, nn.Tok == token.DEFINE)
			}
		case *ast.IncDecStmt:
			sum.recordWrite(p, nn.X, false)
		case *ast.CallExpr:
			sum.recordCallFacts(p, nn)
		case *ast.CompositeLit:
			sum.Facts |= FactAllocates
		case *ast.RangeStmt:
			if t := p.TypeOf(nn.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					sum.recordMapRange(p, nn, sorted)
				}
			}
		}
		return true
	})
}

// recordWrite classifies one l-value write. Rebinding a local or a
// parameter identifier is invisible to the caller; writes through a
// pointer, slice, or map rooted at the receiver, a parameter, or a
// global are not.
func (sum *FuncSummary) recordWrite(p *Pass, lhs ast.Expr, define bool) {
	n := sum.node
	if define {
		return // x := ... declares, it cannot mutate caller-visible state
	}
	root := n.exprRoot(p, lhs)
	if root.kind == rootNone {
		return
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		// A bare identifier: assignment rebinds locals and parameters
		// (invisible), but stores into package-level variables.
		obj := p.ObjectOf(id)
		if v, isVar := obj.(*types.Var); isVar && v.Parent() == n.pkg.Types.Scope() {
			sum.setMutation(root, lhs.Pos(), fmt.Sprintf("writes package-level %s", id.Name))
		}
		return
	}
	if !writeReachesCaller(p, lhs) {
		return
	}
	sum.setMutation(root, lhs.Pos(), fmt.Sprintf("writes %s", exprString(lhs)))
}

// writeReachesCaller reports whether a chained l-value write escapes the
// local frame: the chain passes through an index, a dereference, or a
// selector on a pointer — anything else mutates a local copy.
func writeReachesCaller(p *Pass, lhs ast.Expr) bool {
	e := lhs
	for {
		switch ee := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			return true
		case *ast.StarExpr:
			return true
		case *ast.SelectorExpr:
			if t := p.TypeOf(ee.X); t != nil {
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					return true
				}
			}
			e = ee.X
		default:
			return false
		}
	}
}

// setMutation records a mutation fact against the classified root.
func (sum *FuncSummary) setMutation(root argRoot, pos token.Pos, why string) {
	switch root.kind {
	case rootRecv:
		if !sum.MutRecv {
			sum.MutRecv, sum.MutRecvPos, sum.MutRecvWhy = true, pos, why
		}
	case rootParam:
		if root.index < len(sum.MutParams) && !sum.MutParams[root.index] {
			sum.MutParams[root.index] = true
			sum.MutParamPos[root.index], sum.MutParamWhy[root.index] = pos, why
		}
	case rootGlobal:
		if sum.Facts&FactMutGlobal == 0 {
			sum.Facts |= FactMutGlobal
			sum.MutGlobalPos, sum.MutGlobalWhy = pos, why
		}
	}
}

// recordCallFacts handles the fact sources that arrive via calls:
// builtin growers, the known standard-library tables, and allocation.
func (sum *FuncSummary) recordCallFacts(p *Pass, call *ast.CallExpr) {
	n := sum.node
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := p.ObjectOf(id).(*types.Builtin); isB {
			switch b.Name() {
			case "append":
				sum.Facts |= FactAllocates
				fallthrough
			case "copy", "delete":
				if len(call.Args) > 0 {
					root := n.exprRoot(p, call.Args[0])
					sum.setMutation(root, call.Pos(), fmt.Sprintf("%s into %s", b.Name(), exprString(call.Args[0])))
				}
			case "make", "new":
				sum.Facts |= FactAllocates
			}
			return
		}
	}
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkgPath, name := fn.Pkg().Path(), fn.Name()
	switch {
	case nondetCalls[pkgPath+"."+name] || nondetPkgs[pkgPath]:
		if sum.Facts&FactNondet == 0 {
			sum.Facts |= FactNondet
			sum.NondetPos, sum.NondetWhy = call.Pos(), fmt.Sprintf("calls %s.%s", pkgPath, name)
		}
	case pkgPath == "context" && (name == "Background" || name == "TODO"):
		if sum.Facts&FactBackground == 0 {
			sum.Facts |= FactBackground
			sum.BackgroundPos, sum.BackgroundWhy = call.Pos(), fmt.Sprintf("calls context.%s", name)
		}
	case (pkgPath == "sort" || pkgPath == "slices") && sortMutators[name]:
		if len(call.Args) > 0 {
			root := n.exprRoot(p, call.Args[0])
			sum.setMutation(root, call.Pos(), fmt.Sprintf("sorts %s in place via %s.%s", exprString(call.Args[0]), pkgPath, name))
		}
	}
}

// nondetCalls are fully qualified standard-library functions whose
// result differs run to run.
var nondetCalls = map[string]bool{
	"time.Now":                true,
	"time.Since":              true,
	"time.Until":              true,
	"runtime.NumGoroutine":    true,
	"runtime.ReadMemStats":    true,
	"os.Getpid":               true,
	"runtime/pprof.Lookup":    true,
	"runtime/trace.IsEnabled": true,
}

// nondetPkgs taints every function of a package as nondeterministic.
var nondetPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// sortMutators are sort/slices functions that write their first
// argument in place.
var sortMutators = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true, "Strings": true, "Ints": true,
	"Float64s": true, "Reverse": true,
}

// recordMapRange charges the enclosing function with FactNondet when a
// map iteration's outcome is order-sensitive. The rules mirror the
// nondetmap analyzer (append to an outer never-sorted slice, emission,
// channel send) plus one summary-only pattern: a write to outer state
// guarded by a condition on len(...) of outer state — a capacity cap,
// where map order decides which entries win the remaining slots.
func (sum *FuncSummary) recordMapRange(p *Pass, rs *ast.RangeStmt, sorted map[string]bool) {
	setNondet := func(pos token.Pos, why string) {
		if sum.Facts&FactNondet == 0 {
			sum.Facts |= FactNondet
			sum.NondetPos, sum.NondetWhy = pos, why
		}
	}
	outer := func(e ast.Expr) bool {
		obj := rootObject(p, e)
		return obj != nil && !withinNode(obj.Pos(), rs)
	}
	var ifStack []*ast.IfStmt
	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch nn := node.(type) {
		case *ast.IfStmt:
			ifStack = append(ifStack, nn)
			if nn.Init != nil {
				ast.Inspect(nn.Init, walk)
			}
			ast.Inspect(nn.Body, walk)
			if nn.Else != nil {
				ast.Inspect(nn.Else, walk)
			}
			ifStack = ifStack[:len(ifStack)-1]
			return false
		case *ast.SendStmt:
			setNondet(nn.Pos(), "sends on a channel inside map iteration")
		case *ast.AssignStmt:
			for i, rhs := range nn.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(p, call) && i < len(nn.Lhs) {
					lhs := nn.Lhs[i]
					if outer(lhs) && !sorted[exprString(lhs)] {
						setNondet(nn.Pos(), fmt.Sprintf("appends to %s under map iteration without a later sort", exprString(lhs)))
					}
				}
			}
			if nn.Tok != token.DEFINE && capGuarded(p, ifStack, rs) {
				for _, lhs := range nn.Lhs {
					if outer(lhs) {
						setNondet(nn.Pos(), fmt.Sprintf("cap-guarded write to %s under map iteration (map order decides which entries win)", exprString(lhs)))
					}
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(p, nn); fn != nil && emitNames[fn.Name()] {
				var dest ast.Expr
				if sel, ok := nn.Fun.(*ast.SelectorExpr); ok && fn.Type().(*types.Signature).Recv() != nil {
					dest = sel.X
				} else if len(nn.Args) > 0 {
					dest = nn.Args[0]
				}
				if dest == nil || outer(dest) {
					setNondet(nn.Pos(), fmt.Sprintf("emits via %s inside map iteration", fn.Name()))
				}
			}
		}
		return true
	}
	ast.Inspect(rs.Body, walk)
}

// capGuarded reports whether any enclosing if condition inside the
// range compares len(...) of loop-outer state — the bounded-admission
// shape.
func capGuarded(p *Pass, ifStack []*ast.IfStmt, rs *ast.RangeStmt) bool {
	for _, is := range ifStack {
		found := false
		ast.Inspect(is.Cond, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, isB := p.ObjectOf(id).(*types.Builtin); isB && b.Name() == "len" {
				if obj := rootObject(p, call.Args[0]); obj != nil && !withinNode(obj.Pos(), rs) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// --- propagation ---

// propagate runs the transitive closure: facts flow from callees to
// callers, mutation facts flow through the argument-root mapping, until
// nothing changes. Monotone bits guarantee termination and a unique
// result.
func (s *Summaries) propagate() {
	for changed := true; changed; {
		changed = false
		for _, n := range s.graph.order {
			caller := s.byFn[n.fn]
			for _, cs := range n.calls {
				callee := s.byFn[cs.callee]
				if callee == nil {
					continue // stdlib or out-of-set: handled by local tables
				}
				if s.importFacts(caller, callee, cs) {
					changed = true
				}
			}
		}
	}
}

// importFacts pulls one callee's facts into the caller across one call
// site; reports whether anything new arrived.
func (s *Summaries) importFacts(caller, callee *FuncSummary, cs callSite) bool {
	changed := false
	name := callee.node.fn.Name()

	if callee.Facts&FactNondet != 0 && caller.Facts&FactNondet == 0 {
		caller.Facts |= FactNondet
		caller.NondetPos = cs.pos
		caller.NondetWhy = chainWhy(name, callee.NondetWhy)
		changed = true
	}
	if callee.Facts&FactMutGlobal != 0 && caller.Facts&FactMutGlobal == 0 {
		caller.Facts |= FactMutGlobal
		caller.MutGlobalPos = cs.pos
		caller.MutGlobalWhy = chainWhy(name, callee.MutGlobalWhy)
		changed = true
	}
	if callee.Facts&FactAllocates != 0 && caller.Facts&FactAllocates == 0 {
		caller.Facts |= FactAllocates
		changed = true
	}
	// Background propagates only through callees that do not themselves
	// receive a context — one that does owns the drop and is flagged
	// directly by ctxflow.
	if callee.Facts&FactBackground != 0 && caller.Facts&FactBackground == 0 && !hasCtxParam(callee.node) {
		caller.Facts |= FactBackground
		caller.BackgroundPos = cs.pos
		caller.BackgroundWhy = chainWhy(name, callee.BackgroundWhy)
		changed = true
	}

	// Mutation of the callee's receiver/parameters lands on whatever
	// the caller passed there.
	if callee.MutRecv && cs.recv.kind != rootNone {
		if s.liftMutation(caller, cs.recv, cs.pos, chainWhy(name, callee.MutRecvWhy)) {
			changed = true
		}
	}
	nParams := len(callee.MutParams)
	variadic := callee.node.fn.Type().(*types.Signature).Variadic()
	for i, root := range cs.args {
		if root.kind == rootNone {
			continue
		}
		j := i
		if j >= nParams {
			if !variadic || nParams == 0 {
				continue
			}
			j = nParams - 1
		}
		if callee.MutParams[j] {
			if s.liftMutation(caller, root, cs.pos, chainWhy(name, callee.MutParamWhy[j])) {
				changed = true
			}
		}
	}
	return changed
}

// liftMutation records a propagated mutation fact on the caller;
// reports whether it was new.
func (s *Summaries) liftMutation(caller *FuncSummary, root argRoot, pos token.Pos, why string) bool {
	switch root.kind {
	case rootRecv:
		if caller.MutRecv {
			return false
		}
	case rootParam:
		if root.index >= len(caller.MutParams) || caller.MutParams[root.index] {
			return false
		}
	case rootGlobal:
		if caller.Facts&FactMutGlobal != 0 {
			return false
		}
	default:
		return false
	}
	caller.setMutation(root, pos, why)
	return true
}

// chainWhy builds the witness chain shown in diagnostics, bounded so
// deep chains stay readable.
func chainWhy(callee, inner string) string {
	const maxWhy = 220
	why := fmt.Sprintf("calls %s, which %s", callee, inner)
	if len(why) > maxWhy {
		why = why[:maxWhy] + "..."
	}
	return why
}

// hasCtxParam reports whether the declaration takes a context.Context
// parameter.
func hasCtxParam(n *funcNode) bool {
	sig, ok := n.fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
