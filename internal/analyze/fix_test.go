package analyze

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// fixFile registers src as a file in fset and writes it to disk, so
// token.Pos values can be fabricated from byte offsets.
func fixFile(t *testing.T, fset *token.FileSet, src string) (string, *token.File) {
	t.Helper()
	name := filepath.Join(t.TempDir(), "f.go")
	if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tf := fset.AddFile(name, -1, len(src))
	tf.SetLinesForContent([]byte(src))
	return name, tf
}

func fixDiag(file string, fix *SuggestedFix) Diagnostic {
	d := Diagnostic{Analyzer: "nondetmap", Message: "m", Fixable: true, Fix: fix}
	d.Pos.Filename = file
	return d
}

// TestApplyFixesBottomUp checks multiple edits in one file apply
// bottom-up so earlier byte offsets stay valid, regardless of the order
// fixes were reported in.
func TestApplyFixesBottomUp(t *testing.T) {
	src := "package p\n\nvar a = 1\nvar b = 2\n"
	fset := token.NewFileSet()
	name, tf := fixFile(t, fset, src)

	// Replace "1" (offset 19) and "2" (offset 29) — reported top-down,
	// must still both land.
	at := func(off, n int) (token.Pos, token.Pos) { return tf.Pos(off), tf.Pos(off + n) }
	p1, e1 := at(19, 1)
	p2, e2 := at(29, 1)
	diags := []Diagnostic{
		fixDiag(name, &SuggestedFix{Message: "one", Edits: []TextEdit{{Pos: p1, End: e1, NewText: "100"}}}),
		fixDiag(name, &SuggestedFix{Message: "two", Edits: []TextEdit{{Pos: p2, End: e2, NewText: "200"}}}),
	}
	res, err := ApplyFixes(fset, diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(res) != 1 || res[0].Applied != 2 || res[0].Skipped != 0 {
		t.Fatalf("results = %+v, want one file with 2 applied", res)
	}
	got, _ := os.ReadFile(name)
	want := "package p\n\nvar a = 100\nvar b = 200\n"
	if string(got) != want {
		t.Fatalf("rewritten file:\n%s\nwant:\n%s", got, want)
	}
}

// TestApplyFixesOverlapSkipped checks a fix whose edits overlap an
// already-queued fix is dropped whole, not half-applied.
func TestApplyFixesOverlapSkipped(t *testing.T) {
	src := "package p\n\nvar a = 1234\n"
	fset := token.NewFileSet()
	name, tf := fixFile(t, fset, src)

	p1, e1 := tf.Pos(19), tf.Pos(23) // "1234"
	p2, e2 := tf.Pos(21), tf.Pos(23) // "34" — overlaps the first
	diags := []Diagnostic{
		fixDiag(name, &SuggestedFix{Message: "whole", Edits: []TextEdit{{Pos: p1, End: e1, NewText: "9"}}}),
		fixDiag(name, &SuggestedFix{Message: "tail", Edits: []TextEdit{{Pos: p2, End: e2, NewText: "8"}}}),
	}
	res, err := ApplyFixes(fset, diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(res) != 1 || res[0].Applied != 1 || res[0].Skipped != 1 {
		t.Fatalf("results = %+v, want 1 applied 1 skipped", res)
	}
	got, _ := os.ReadFile(name)
	if string(got) != "package p\n\nvar a = 9\n" {
		t.Fatalf("rewritten file:\n%s", got)
	}
}

// TestEnsureImport checks the three textual insertion shapes: into a
// parenthesized block in alphabetical position, as a sibling of a
// single-import declaration, and after a bare package clause. Each
// result must still parse and actually import the path.
func TestEnsureImport(t *testing.T) {
	cases := []struct {
		name string
		src  string
		path string
		want string
	}{
		{
			name: "block-alphabetical",
			src:  "package p\n\nimport (\n\t\"fmt\"\n\t\"strings\"\n)\n",
			path: "sort",
			want: "package p\n\nimport (\n\t\"fmt\"\n\t\"sort\"\n\t\"strings\"\n)\n",
		},
		{
			name: "block-at-end",
			src:  "package p\n\nimport (\n\t\"fmt\"\n)\n",
			path: "sort",
			want: "package p\n\nimport (\n\t\"fmt\"\n\t\"sort\"\n)\n",
		},
		{
			name: "single-import-sibling",
			src:  "package p\n\nimport \"fmt\"\n",
			path: "errors",
			want: "package p\n\nimport \"fmt\"\nimport \"errors\"\n",
		},
		{
			name: "no-imports",
			src:  "package p\n\nvar x int\n",
			path: "sort",
			want: "package p\n\nimport \"sort\"\n\nvar x int\n",
		},
		{
			name: "already-imported",
			src:  "package p\n\nimport \"sort\"\n",
			path: "sort",
			want: "package p\n\nimport \"sort\"\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ensureImport([]byte(tc.src), "f.go", tc.path)
			if err != nil {
				t.Fatalf("ensureImport: %v", err)
			}
			if string(got) != tc.want {
				t.Fatalf("got:\n%q\nwant:\n%q", got, tc.want)
			}
		})
	}
}
