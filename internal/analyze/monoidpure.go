package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// MonoidPure guards the algebraic heart of the reproduction: schema
// fusion and the pipeline accumulators form a commutative monoid, and
// the map-reduce engine's byte-identical-under-any-partitioning promise
// (PAPER.md §5, DESIGN.md §1) holds only if the monoid operations are
// *pure* — no reads of nondeterministic state, no mutation visible
// outside the accumulator being built. A time.Now() or an unsorted map
// range two calls below Merge breaks the guarantee just as surely as
// one written inline, so this analyzer consumes the interprocedural
// summaries of summary.go and checks the roots transitively.
//
// Roots:
//
//   - every Add/Merge/Fold method of an accumulator-shaped type: a
//     named non-interface type whose pointer method set carries all
//     three (the duck-typed form of pipeline.Accumulator);
//   - every function or method of repro/internal/fusion whose name
//     involves fusing, simplifying or collapsing — the Fuse/Simplify
//     paths;
//   - every function or method of repro/internal/enrich whose name
//     involves merging, folding, unioning or absorbing — the
//     enrichment monoids and lattice ride the same reduction trees as
//     fusion, so their combine paths carry the same purity obligation
//     (their Observer hooks don't: observation mutates the lattice
//     being built, which is the receiver-mutation the analyzer excuses
//     at the accumulator roots anyway).
//
// What is excused, by construction: mutation of the root's own receiver
// (accumulating in place and memo caches are the point), allocation,
// and the collect-then-sort idiom (a sorted map range never acquires
// the nondet fact in the first place). What is reported: transitive
// nondeterminism (FactNondet), mutation of package-level state
// (FactMutGlobal), and mutation of the operation's arguments — a Merge
// that writes into its operand poisons a sibling partition's
// accumulator under retry or tree reduction.
var MonoidPure = &Analyzer{
	Name:           "monoidpure",
	Doc:            "accumulator and fusion operations must be transitively deterministic and externally pure",
	Run:            runMonoidPure,
	NeedsSummaries: true,
}

// fusionPkgPath is the package whose fuse/simplify paths are rooted.
const fusionPkgPath = "repro/internal/fusion"

// enrichPkgPath is the package whose merge/fold/union paths are rooted.
const enrichPkgPath = "repro/internal/enrich"

// nameRoots maps a rooted package to the lowercase name fragments that
// mark a function as a combine path there.
var nameRoots = map[string][]string{
	fusionPkgPath: {"fuse", "simplify", "collapse"},
	enrichPkgPath: {"merge", "fold", "union", "absorb"},
}

// monoidMethodNames are the accumulator operations checked on
// accumulator-shaped types.
var monoidMethodNames = map[string]bool{"Add": true, "Merge": true, "Fold": true}

func runMonoidPure(pass *Pass) {
	if pass.Sums == nil {
		return
	}
	for _, root := range monoidRoots(pass) {
		sum := pass.Sums.Of(root)
		if sum == nil {
			continue
		}
		name := rootDisplayName(root)
		if sum.Facts&FactNondet != 0 {
			pass.Reportf(sum.NondetPos, "%s must be deterministic, but %s", name, sum.NondetWhy)
		}
		if sum.Facts&FactMutGlobal != 0 {
			pass.Reportf(sum.MutGlobalPos, "%s must not mutate package-level state, but %s", name, sum.MutGlobalWhy)
		}
		for i, mut := range sum.MutParams {
			if !mut {
				continue
			}
			pname := "parameter " + paramName(sum, i)
			pass.Reportf(sum.MutParamPos[i], "%s must not mutate its %s, but %s", name, pname, sum.MutParamWhy[i])
		}
	}
}

// monoidRoots collects the functions of this package whose purity the
// analyzer enforces, in deterministic order.
func monoidRoots(pass *Pass) []*types.Func {
	var roots []*types.Func
	seen := make(map[*types.Func]bool)
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			roots = append(roots, fn)
		}
	}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		var ops []*types.Func
		for _, mname := range [...]string{"Add", "Fold", "Merge"} {
			sel := ms.Lookup(pass.Pkg, mname)
			if sel == nil {
				break
			}
			fn, ok := sel.Obj().(*types.Func)
			// Only methods declared in the package under analysis: a
			// promoted method from an embedded foreign type is that
			// package's to check.
			if !ok || fn.Pkg() != pass.Pkg {
				break
			}
			ops = append(ops, fn)
		}
		if len(ops) == len(monoidMethodNames) {
			for _, fn := range ops {
				add(fn)
			}
		}
	}

	if fragments, ok := nameRoots[pass.Pkg.Path()]; ok {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lower := strings.ToLower(fd.Name.Name)
				for _, frag := range fragments {
					if strings.Contains(lower, frag) {
						fn, _ := pass.ObjectOf(fd.Name).(*types.Func)
						add(fn)
						break
					}
				}
			}
		}
	}
	return roots
}

// rootDisplayName renders a root for diagnostics: Type.Method or
// Function.
func rootDisplayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// paramName names the index-th declared parameter for diagnostics.
func paramName(sum *FuncSummary, i int) string {
	if obj := sum.node.paramObjs[i]; obj != nil && obj.Name() != "" {
		return obj.Name()
	}
	return "argument"
}
