package analyze

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strconv"
)

// Suggested fixes. An analyzer may attach a SuggestedFix to a finding
// (Pass.ReportNodeFix); `repolint -fix` applies them. Fixes are kept
// deliberately mechanical — inserting a sort before an order-sensitive
// map range, joining a dropped Close error into a named error result,
// replacing context.Background() with an in-scope ctx — so applying
// them is safe without human review and a second run reports zero
// fixable findings (the round-trip property pinned by the tests).

// SuggestedFix is one mechanical rewrite curing a finding.
type SuggestedFix struct {
	// Message describes the rewrite, shown by -fix as it applies.
	Message string
	// Edits are the byte-range replacements, non-overlapping.
	Edits []TextEdit
	// NeedImport, when non-empty, is an import path the rewritten file
	// must import (e.g. "sort" or "errors"); it is added if missing.
	NeedImport string
}

// TextEdit replaces source bytes [Pos, End) with NewText. Pos == End
// is an insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// FixResult reports what ApplyFixes did to one file.
type FixResult struct {
	File    string
	Applied int
	Skipped int // fixes dropped because their edits overlapped earlier ones
}

// ApplyFixes applies every attached fix, grouped per file, rewriting
// the files in place. Edits are applied bottom-up so byte offsets stay
// valid; a fix whose edits overlap an already-applied edit is skipped
// (its finding will resurface on the next run). Results come back
// sorted by filename.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) ([]FixResult, error) {
	type pendingEdit struct {
		start, end int // byte offsets in the file
		newText    string
	}
	type fileFixes struct {
		edits   []pendingEdit
		imports map[string]bool
		applied int
		skipped int
	}
	byFile := make(map[string]*fileFixes)

	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		name := d.Pos.Filename
		ff := byFile[name]
		if ff == nil {
			ff = &fileFixes{imports: make(map[string]bool)}
			byFile[name] = ff
		}
		var edits []pendingEdit
		ok := true
		for _, e := range d.Fix.Edits {
			pf, ef := fset.File(e.Pos), fset.File(e.End)
			if pf == nil || ef == nil || pf.Name() != name || ef.Name() != name {
				ok = false
				break
			}
			edits = append(edits, pendingEdit{
				start:   pf.Offset(e.Pos),
				end:     ef.Offset(e.End),
				newText: e.NewText,
			})
		}
		if !ok || len(edits) == 0 {
			ff.skipped++
			continue
		}
		// Reject the whole fix if any edit overlaps one already queued.
		overlaps := false
		for _, e := range edits {
			for _, q := range ff.edits {
				if e.start < q.end && q.start < e.end && !(e.start == e.end && q.start == q.end) {
					overlaps = true
				}
			}
		}
		if overlaps {
			ff.skipped++
			continue
		}
		ff.edits = append(ff.edits, edits...)
		ff.applied++
		if d.Fix.NeedImport != "" {
			ff.imports[d.Fix.NeedImport] = true
		}
	}

	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)

	var results []FixResult
	for _, name := range names {
		ff := byFile[name]
		if len(ff.edits) == 0 {
			results = append(results, FixResult{File: name, Skipped: ff.skipped})
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return results, fmt.Errorf("apply fixes: %w", err)
		}
		// Bottom-up, so earlier offsets stay valid. Ties (two insertions
		// at one offset) keep queue order via stable sort.
		sort.SliceStable(ff.edits, func(i, j int) bool { return ff.edits[i].start > ff.edits[j].start })
		for _, e := range ff.edits {
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				continue
			}
			src = append(src[:e.start], append([]byte(e.newText), src[e.end:]...)...)
		}
		for path := range ff.imports {
			src, err = ensureImport(src, name, path)
			if err != nil {
				return results, fmt.Errorf("apply fixes: %w", err)
			}
		}
		if err := os.WriteFile(name, src, 0o644); err != nil {
			return results, fmt.Errorf("apply fixes: %w", err)
		}
		results = append(results, FixResult{File: name, Applied: ff.applied, Skipped: ff.skipped})
	}
	return results, nil
}

// ensureImport re-parses the edited source and inserts path into the
// file's import block if it is not already imported. The insertion is
// textual (computed from parsed positions) so the rest of the file's
// formatting is untouched.
func ensureImport(src []byte, filename, path string) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return src, fmt.Errorf("reparse %s: %w", filename, err)
	}
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return src, nil
		}
	}
	tf := fset.File(f.Pos())
	insert := func(off int, text string) []byte {
		return append(src[:off], append([]byte(text), src[off:]...)...)
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if !gd.Lparen.IsValid() {
			// `import "x"`: add a sibling declaration on the next line.
			return insert(tf.Offset(gd.End()), "\nimport "+strconv.Quote(path)), nil
		}
		// Parenthesized block: splice into alphabetical position.
		for _, s := range gd.Specs {
			is := s.(*ast.ImportSpec)
			if p, err := strconv.Unquote(is.Path.Value); err == nil && p > path {
				return insert(tf.Offset(is.Pos()), strconv.Quote(path)+"\n\t"), nil
			}
		}
		return insert(tf.Offset(gd.Rparen), "\t"+strconv.Quote(path)+"\n"), nil
	}
	// No import declaration at all: add one after the package clause.
	return insert(tf.Offset(f.Name.End()), "\n\nimport "+strconv.Quote(path)), nil
}
