package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StageCapture guards the pipeline engine's contract (internal/pipeline,
// internal/mapreduce): stage functions — the map, combine and feed
// literals handed to the engine drivers — run concurrently, may be
// retried, and may be reordered, so all their mutable state must live
// in the values they return (Accumulators) or in the shared Env, never
// in captured variables. Two patterns break that contract:
//
//   - capturing a loop variable declared outside the literal: even with
//     per-iteration loop semantics, a stage that outlives or is retried
//     across iterations reads whichever iteration's value the schedule
//     happens to deliver, which silently breaks the determinism oracle
//     (byte-identical schemas for any reduction order);
//   - assigning to any variable declared outside the literal: stages
//     execute on worker goroutines, so such writes race and make results
//     schedule-dependent. Accumulate through the stage's return value,
//     or use sync/atomic (method calls on captured atomics are not
//     flagged — that is the engine's own Phases pattern).
//
// The analyzer inspects function literals passed directly as arguments
// to pipeline.Run/RunPooled and mapreduce.Run/RunSlice/RunReleased (the
// release-hook variants behind the pooled feed path). A stage passed
// by name is not analyzed — only the call site is visible, not the
// body — mirroring goroleak's limitation; give such helpers a
// lint:ignore with the ownership story if they must capture.
var StageCapture = &Analyzer{
	Name: "stagecapture",
	Doc:  "pipeline stage function captures a loop variable or mutates captured (non-Env) state",
	Run:  runStageCapture,
}

// stageDrivers are the engine entry points whose function-literal
// arguments are stage functions.
var stageDrivers = map[string]map[string]bool{
	"repro/internal/pipeline":  {"Run": true, "RunPooled": true},
	"repro/internal/mapreduce": {"Run": true, "RunSlice": true, "RunReleased": true},
}

func runStageCapture(pass *Pass) {
	for _, f := range pass.Files {
		loopVars := collectLoopVars(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isStageDriver(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkStageLit(pass, lit, loopVars)
				}
			}
			return true
		})
	}
}

// isStageDriver reports whether the call's static callee is one of the
// pipeline engine drivers.
func isStageDriver(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	names, ok := stageDrivers[fn.Pkg().Path()]
	return ok && names[fn.Name()]
}

// collectLoopVars gathers the objects declared as loop variables in the
// file: range key/value bindings and `for i := ...` init bindings.
func collectLoopVars(pass *Pass, f *ast.File) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	def := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.RangeStmt:
			if nn.Tok == token.DEFINE {
				if nn.Key != nil {
					def(nn.Key)
				}
				if nn.Value != nil {
					def(nn.Value)
				}
			}
		case *ast.ForStmt:
			if init, ok := nn.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					def(lhs)
				}
			}
		}
		return true
	})
	return vars
}

// checkStageLit reports loop-variable captures and outer-state writes
// inside one stage literal.
func checkStageLit(pass *Pass, lit *ast.FuncLit, loopVars map[types.Object]bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.Ident:
			obj := pass.ObjectOf(nn)
			if obj != nil && loopVars[obj] && !withinNode(obj.Pos(), lit) {
				pass.ReportNode(nn, "pipeline stage captures loop variable %s; pass it through the stage input instead", nn.Name)
			}
		case *ast.AssignStmt:
			if nn.Tok == token.DEFINE {
				return true // := declares inside the literal
			}
			for _, lhs := range nn.Lhs {
				reportOuterWrite(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			reportOuterWrite(pass, lit, nn.X)
		}
		return true
	})
}

// reportOuterWrite flags an assignment target whose root variable is
// declared outside the stage literal.
func reportOuterWrite(pass *Pass, lit *ast.FuncLit, target ast.Expr) {
	if id, ok := target.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	obj := rootObject(pass, target)
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if withinNode(obj.Pos(), lit) {
		return
	}
	pass.ReportNode(target, "pipeline stage mutates captured variable %s; accumulate through the stage's return value (Accumulator), not shared state", exprString(target))
}
