package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape guards the buffer-recycling contract of the pooled feed
// path (jsontext.ChunkPool + pipeline.RunPooled + mapreduce.RunReleased):
// once a buffer is handed back to its pool, the next Get may hand it to
// a concurrent owner, so the releasing code must be completely done
// with it. Two patterns break that contract:
//
//   - use-after-release: a variable is read, returned, stored or Put a
//     second time after being passed to the Put method of a pool-like
//     type — one whose method set has both Get and Put, which covers
//     sync.Pool and jsontext.ChunkPool — with no intervening
//     reassignment handing the variable a fresh buffer;
//   - stage aliasing: a map-stage literal passed to
//     mapreduce.RunReleased returns a value aliasing its input item
//     (the item itself, a subslice, its address, or a composite
//     holding one of those). The engine releases the item right after
//     the task's final attempt, so stage output sharing memory with it
//     escapes the stage that released it.
//
// Statement order within one function body approximates execution
// order, so a use that precedes the Put textually but follows it
// dynamically (a loop back-edge, a closure built earlier and called
// later) is not flagged — the same best-effort stance as goroleak.
// Deferred Puts run at function exit and do not poison the statements
// written after them, and a Put inside a nested function literal only
// poisons the rest of that literal. Calls and conversions in a stage's
// return value are assumed to copy (string(item) does; a helper that
// aliases its argument needs a lint:ignore with the ownership story).
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "pooled buffer used after release, or pipeline stage output aliases the chunk the engine releases",
	Run:  runPoolEscape,
}

// releaseDrivers are the engine entry points that release their input
// items after the final map attempt: package path -> function name ->
// index of the map-stage argument (whose second parameter is the
// released item).
var releaseDrivers = map[string]map[string]int{
	"repro/internal/mapreduce": {"RunReleased": 2},
}

func runPoolEscape(pass *Pass) {
	for _, f := range pass.Files {
		async := asyncCalls(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.FuncDecl:
				if nn.Body != nil {
					checkPoolScope(pass, nn.Body, async)
				}
			case *ast.FuncLit:
				checkPoolScope(pass, nn.Body, async)
			case *ast.CallExpr:
				checkReleasedStage(pass, nn)
			}
			return true
		})
	}
}

// asyncCalls collects the call expressions hanging off defer and go
// statements: a deferred Put runs at function exit, so it must not
// poison the statements textually after it.
func asyncCalls(f *ast.File) map[*ast.CallExpr]bool {
	calls := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.DeferStmt:
			calls[nn.Call] = true
		case *ast.GoStmt:
			calls[nn.Call] = true
		}
		return true
	})
	return calls
}

// checkPoolScope finds pool Put calls in the straight-line body of one
// function (nested literals are their own scopes) and flags later uses
// of the released variable within that body.
func checkPoolScope(pass *Pass, body *ast.BlockStmt, async map[*ast.CallExpr]bool) {
	walkScope(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || async[call] || !isPoolPut(pass, call) {
			return
		}
		obj, ok := rootObject(pass, call.Args[0]).(*types.Var)
		if !ok || obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
			return // only locals: order across functions is unknowable
		}
		checkUseAfterPut(pass, body, call, obj)
	})
}

// walkScope visits the nodes of body without descending into nested
// function literals.
func walkScope(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// checkUseAfterPut flags uses of obj positioned after the Put call,
// unless a reassignment in between handed the variable a fresh buffer.
// Uses inside nested literals declared after the Put are flagged too:
// such a closure retains a buffer the pool may already have recycled.
func checkUseAfterPut(pass *Pass, body *ast.BlockStmt, put *ast.CallExpr, obj *types.Var) {
	// Clears take effect at the assignment's end (after the RHS is
	// evaluated), so `b = append(b, x)` after Put(b) still flags the
	// RHS read; the LHS targets themselves are writes, not uses.
	var clears []token.Pos
	lhs := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, t := range as.Lhs {
			if id, ok := ast.Unparen(t).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				lhs[id] = true
				clears = append(clears, as.End())
			}
		}
		return true
	})

	cleared := func(use token.Pos) bool {
		for _, c := range clears {
			if put.End() < c && c <= use {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhs[id] || pass.ObjectOf(id) != obj {
			return true
		}
		if id.Pos() > put.End() && !cleared(id.Pos()) {
			pass.ReportNode(id, "%s is used after being released to the pool; a recycled buffer may already have a new owner", obj.Name())
		}
		return true
	})
}

// isPoolPut reports whether the call is the single-argument Put method
// of a pool-like type: a receiver whose method set also has Get.
func isPoolPut(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return false
	}
	fn, _ := pass.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return hasMethod(sig.Recv().Type(), "Get")
}

// hasMethod reports whether the (possibly pointer) type has a method of
// the given exported name anywhere in its method set.
func hasMethod(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, name)
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// checkReleasedStage flags map-stage literals handed to a releasing
// driver whose return values alias the released item parameter.
func checkReleasedStage(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	idx, ok := releaseDrivers[fn.Pkg().Path()][fn.Name()]
	if !ok || len(call.Args) <= idx {
		return
	}
	lit, ok := call.Args[idx].(*ast.FuncLit)
	if !ok {
		return
	}
	var params []*ast.Ident
	for _, field := range lit.Type.Params.List {
		params = append(params, field.Names...)
	}
	// The map stage is func(ctx, item): the released item is the second
	// parameter; a blank item cannot be aliased.
	if len(params) < 2 || params[1].Name == "_" {
		return
	}
	item := pass.ObjectOf(params[1])
	if item == nil {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested literal's returns are not the stage's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if aliasesObject(pass, res, item) {
				pass.ReportNode(res, "stage output aliases released item %s; the engine recycles it after the attempt, so copy what the result keeps", item.Name())
			}
		}
		return true
	})
}

// aliasesObject reports whether evaluating e yields memory shared with
// the variable obj: the variable itself, a subslice, its address, a
// dereference, or a composite literal embedding one of those. Calls and
// conversions are assumed to copy.
func aliasesObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	switch ee := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.ObjectOf(ee) == obj
	case *ast.SliceExpr:
		return aliasesObject(pass, ee.X, obj)
	case *ast.StarExpr:
		return aliasesObject(pass, ee.X, obj)
	case *ast.UnaryExpr:
		return ee.Op == token.AND && aliasesObject(pass, ee.X, obj)
	case *ast.CompositeLit:
		for _, el := range ee.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if aliasesObject(pass, el, obj) {
				return true
			}
		}
	}
	return false
}
