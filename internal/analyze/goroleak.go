package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak guards the worker-pool discipline of the concurrent layers
// (internal/mapreduce, internal/cluster, the streaming inference
// pipeline): every goroutine must have a completion story, or the
// ROADMAP's scale-out work (sharded inference, async repositories)
// turns every request into a slow leak.
//
// A `go func(){...}()` literal counts as accounted for when its body
//
//   - references a sync.WaitGroup declared outside the literal
//     (wg.Done / defer wg.Done),
//   - closes or sends on a channel from the enclosing scope (the
//     producer pattern: defer close(out)),
//   - or receives from a channel of the enclosing scope, including
//     ctx.Done() (the consumer / done-channel pattern: the goroutine
//     exits when the channel closes).
//
// Otherwise the statement is reported. `go namedFunc()` is not
// analyzed — the analyzer only sees the call site, not the body — so
// fire-and-forget helpers should either take a literal at the call
// site or carry a lint:ignore with the ownership story.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutine with no completion accounting (WaitGroup, channel close/send, or done-channel)",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !goroutineAccounted(pass, lit) {
				pass.ReportNode(gs, "goroutine has no completion accounting: no WaitGroup, channel close/send, or done-channel in scope")
			}
			return true
		})
	}
}

// goroutineAccounted reports whether the literal's body contains any of
// the accepted completion signals.
func goroutineAccounted(pass *Pass, lit *ast.FuncLit) bool {
	accounted := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if accounted {
			return false
		}
		switch nn := n.(type) {
		case *ast.Ident:
			if obj := pass.ObjectOf(nn); obj != nil && isWaitGroup(obj.Type()) && !withinNode(obj.Pos(), lit) {
				accounted = true
			}
		case *ast.CallExpr:
			// close(ch) on an outer channel.
			if id, ok := nn.Fun.(*ast.Ident); ok {
				if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "close" && len(nn.Args) == 1 {
					if outerScoped(pass, nn.Args[0], lit) {
						accounted = true
					}
				}
			}
		case *ast.SendStmt:
			if outerScoped(pass, nn.Chan, lit) {
				accounted = true
			}
		case *ast.UnaryExpr:
			// <-ch or <-ctx.Done(): exits when the channel closes.
			if nn.Op == token.ARROW && outerScoped(pass, nn.X, lit) {
				accounted = true
			}
		case *ast.RangeStmt:
			// for x := range ch over an outer channel: exits on close.
			if t := pass.TypeOf(nn.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && outerScoped(pass, nn.X, lit) {
					accounted = true
				}
			}
		}
		return !accounted
	})
	return accounted
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// outerScoped reports whether the expression's root identifier is
// declared outside the function literal.
func outerScoped(pass *Pass, e ast.Expr, lit *ast.FuncLit) bool {
	obj := rootObject(pass, e)
	return obj != nil && !withinNode(obj.Pos(), lit)
}
