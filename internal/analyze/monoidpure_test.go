package analyze

import (
	"path/filepath"
	"testing"
)

// TestMonoidPureRootsEnrich pins the analyzer's coverage of the
// enrichment package: every combine path of internal/enrich — the
// monoid Merge/Fold methods, the lattice merge, and the cross-set
// Union/absorb machinery — must be rooted, so a nondeterministic or
// operand-mutating enrichment merge fails repolint, not just the
// conformance harness.
func TestMonoidPureRootsEnrich(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join(loader.root, "internal", "enrich"))
	if err != nil {
		t.Fatalf("Load(internal/enrich): %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/enrich" {
		t.Fatalf("loaded %+v, want one package repro/internal/enrich", pkgs)
	}
	pkg := pkgs[0]
	pass := &Pass{
		Analyzer: MonoidPure,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	names := make(map[string]bool)
	for _, fn := range monoidRoots(pass) {
		names[rootDisplayName(fn)] = true
	}
	for _, want := range []string{
		"Lattice.Merge", "node.merge", "Union", "node.absorb",
		"ranges.Merge", "hll.Merge", "bloom.Merge", "formats.Merge",
		"lengths.Merge", "numPrec.Merge",
		"ranges.Fold", "hll.Fold", "bloom.Fold", "formats.Fold",
		"lengths.Fold", "numPrec.Fold",
	} {
		if !names[want] {
			t.Errorf("monoidRoots missed %s (got %v)", want, names)
		}
	}

	// And the package must be clean under the full interprocedural
	// check, with no suppressions to hide behind.
	diags := Check(pkgs, []*Analyzer{MonoidPure})
	for _, d := range diags {
		t.Errorf("internal/enrich: %s", d)
	}
	sup, _ := collectSuppressions(pkg.Fset, pkg.Files)
	if len(sup) > 0 {
		t.Errorf("internal/enrich carries lint:ignore suppression(s) in %d file(s); enrichment merge paths must be clean without them", len(sup))
	}
}
