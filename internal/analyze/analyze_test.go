package analyze

import (
	"go/ast"
	"go/parser"
	"path/filepath"
	"testing"
)

// parseString parses one source string into the loader's file set.
func parseString(l *Loader, name, src string) (*ast.File, error) {
	return parser.ParseFile(l.fset, name, src, parser.ParseComments)
}

// TestLoaderResolvesModulePackages checks that the stdlib-only loader
// finds the module, maps directories to import paths, and type-checks a
// package with both stdlib and intra-module imports.
func TestLoaderResolvesModulePackages(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.ModulePath() != "repro" {
		t.Fatalf("module path = %q, want repro", loader.ModulePath())
	}
	pkgs, err := loader.Load(filepath.Join(loader.root, "internal", "fusion"))
	if err != nil {
		t.Fatalf("Load(internal/fusion): %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/fusion" {
		t.Fatalf("loaded %+v, want one package repro/internal/fusion", pkgs)
	}
	if pkgs[0].Types == nil || pkgs[0].Types.Scope().Lookup("Fuse") == nil {
		t.Fatalf("type-checked package lacks Fuse")
	}
	// The fusion package imports repro/internal/types; it must have
	// been loaded through the module resolver, not the source importer.
	if _, ok := loader.cache["repro/internal/types"]; !ok {
		t.Fatalf("dependency repro/internal/types not in loader cache")
	}
}

// TestLoaderSkipsTestdata checks the recursive walk excludes fixture
// trees, which intentionally contain analyzer violations.
func TestLoaderSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join(loader.root, "internal", "analyze") + "/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if filepath.Base(filepath.Dir(p.Dir)) == "testdata" || filepath.Base(p.Dir) == "testdata" {
			t.Fatalf("walk descended into testdata: %s", p.Dir)
		}
	}
}

// TestRepositoryIsClean runs every analyzer over the whole module and
// requires zero findings — the same gate verify.sh and CI apply via
// cmd/repolint. A finding here means a determinism, immutability or
// concurrency invariant regressed (or a legitimate exception is missing
// its lint:ignore justification).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(loader.root + "/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded; the walk is missing most of the module", len(pkgs))
	}
	for _, d := range Check(pkgs, All()) {
		t.Errorf("%s", d)
	}
}
