package analyze

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuppressionMultiAnalyzerDirective checks one directive silencing
// several analyzers at once: every name in the comma list is honored on
// both covered lines (the directive's own and the one below), and names
// outside the list keep firing.
func TestSuppressionMultiAnalyzerDirective(t *testing.T) {
	src := `package p

//lint:ignore nondetmap,monoidpure,ctxflow the three findings below share one root cause
var tracked int
`
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	f, err := parseString(loader, "multi.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sup, bad := collectSuppressions(loader.fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("directive reported as defective: %v", bad)
	}
	for _, name := range []string{"nondetmap", "monoidpure", "ctxflow"} {
		for _, line := range []int{3, 4} {
			d := Diagnostic{Analyzer: name}
			d.Pos.Filename = "multi.go"
			d.Pos.Line = line
			if !sup.matches(d) {
				t.Errorf("%s at line %d not suppressed by comma list", name, line)
			}
		}
	}
	d := Diagnostic{Analyzer: "typemut"}
	d.Pos.Filename = "multi.go"
	d.Pos.Line = 4
	if sup.matches(d) {
		t.Errorf("typemut suppressed despite not being in the list")
	}
}

// TestSuppressionVarBlockScope pins the deliberate narrowness of
// directive placement: a directive above a file-level var block reaches
// only the block's first line, so later declarations in the group still
// need their own per-line directives.
func TestSuppressionVarBlockScope(t *testing.T) {
	src := `package p

//lint:ignore typemut the whole block is scratch state
var (
	first  int
	second int //lint:ignore typemut per-line directive inside the block
	third  int
)
`
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	f, err := parseString(loader, "block.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sup, bad := collectSuppressions(loader.fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("directives reported as defective: %v", bad)
	}
	cases := []struct {
		line int
		want bool
	}{
		{4, true},  // var ( — the line directly below the block directive
		{5, false}, // first: the block directive does NOT reach inside
		{6, true},  // second: own trailing directive
		{7, true},  // third: covered by second's directive one line above
	}
	for _, tc := range cases {
		d := Diagnostic{Analyzer: "typemut"}
		d.Pos.Filename = "block.go"
		d.Pos.Line = tc.line
		if got := sup.matches(d); got != tc.want {
			t.Errorf("line %d: matches=%v, want %v", tc.line, got, tc.want)
		}
	}
}

// TestSuppressionUnknownAnalyzerReported checks that a directive naming
// a nonexistent analyzer is itself surfaced as a "suppress" finding by
// the full Check pipeline, that the remaining valid names in the list
// still take effect, and that suppress findings cannot be silenced.
func TestSuppressionUnknownAnalyzerReported(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "time"

type Acc struct{ n int }

func (a *Acc) Add(v int) { a.n += v }

func (a *Acc) Merge(o *Acc) {
	//lint:ignore all this cannot hide the defective directive below
	//lint:ignore monoidpure,nosuchanalyzer timestamps are diagnostics-only here
	_ = time.Now()
	a.n += o.n
}

func (a *Acc) Fold() int { return a.n }
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, "suppressfixture")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := Check([]*Package{pkg}, All())

	var suppressFindings, monoidFindings int
	for _, d := range diags {
		switch d.Analyzer {
		case suppressName:
			suppressFindings++
			if !strings.Contains(d.Message, `unknown analyzer "nosuchanalyzer"`) {
				t.Errorf("suppress finding has wrong message: %s", d.Message)
			}
			if d.Doc != suppressDoc {
				t.Errorf("suppress finding doc = %q, want %q", d.Doc, suppressDoc)
			}
		case "monoidpure":
			monoidFindings++
		}
	}
	if suppressFindings != 1 {
		t.Errorf("got %d suppress findings, want 1 (unknown name must be reported): %v", suppressFindings, diags)
	}
	if monoidFindings != 0 {
		t.Errorf("valid name in mixed list did not suppress monoidpure: %v", diags)
	}
}

// TestSuppressionMissingReasonReported checks the other defect class
// end-to-end: a reasonless directive is reported and takes no effect,
// so the finding it meant to silence fires as well.
func TestSuppressionMissingReasonReported(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "time"

type Acc struct{ n int }

func (a *Acc) Add(v int) { a.n += v }

func (a *Acc) Merge(o *Acc) {
	//lint:ignore monoidpure
	_ = time.Now()
	a.n += o.n
}

func (a *Acc) Fold() int { return a.n }
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, "reasonlessfixture")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := Check([]*Package{pkg}, All())

	var missingReason, monoid bool
	for _, d := range diags {
		if d.Analyzer == suppressName && strings.Contains(d.Message, "missing its reason") {
			missingReason = true
		}
		if d.Analyzer == "monoidpure" {
			monoid = true
		}
	}
	if !missingReason {
		t.Errorf("reasonless directive not reported: %v", diags)
	}
	if !monoid {
		t.Errorf("reasonless directive still suppressed the monoidpure finding: %v", diags)
	}
}
