// Package abstraction implements key abstraction, the remedy for the
// pathology the paper diagnoses on Wikidata (Section 6.2): when a
// dataset encodes identifiers — user ids, property ids, language codes —
// as record KEYS, key-directed fusion cannot collapse anything and the
// fused type grows with the key space (Table 4). The fix, which the
// paper's authors themselves pursued in their follow-up work on
// parametric schema inference, is to detect such "dictionary-like"
// records and abstract them into a map type {*: T}: arbitrary keys, all
// values in the fusion T of the observed value types.
//
// Abstraction is a sound widening: t is always a subtype of
// Abstract(t, opts) (every abstracted record still admits the records
// the concrete type admitted), which the property tests verify via both
// the subtype checker and value membership. And because fusion treats
// {*: T} as a record-kind type that absorbs records field-by-field, an
// abstracted schema keeps working incrementally: fusing in new records
// can only refine T, never re-grow the key explosion.
package abstraction

import (
	"repro/internal/fusion"
	"repro/internal/types"
)

// Options tune which records get abstracted.
type Options struct {
	// MinKeys is the minimum number of fields before a record type is
	// considered dictionary-like; zero means DefaultMinKeys.
	MinKeys int
	// MaxElemGrowth bounds how much bigger the fused element type may be
	// than the average field type for abstraction to proceed: similar
	// field types fuse without growing, while genuinely heterogeneous
	// records (which deserve their field names) do not. Zero means
	// DefaultMaxElemGrowth.
	MaxElemGrowth float64
}

// Defaults for Options.
const (
	DefaultMinKeys       = 16
	DefaultMaxElemGrowth = 3.0
)

func (o Options) minKeys() int {
	if o.MinKeys <= 0 {
		return DefaultMinKeys
	}
	return o.MinKeys
}

func (o Options) maxElemGrowth() float64 {
	if o.MaxElemGrowth <= 0 {
		return DefaultMaxElemGrowth
	}
	return o.MaxElemGrowth
}

// Abstract rewrites dictionary-like record types inside t into map
// types, bottom-up: a record with at least MinKeys fields whose field
// types fuse without growing past MaxElemGrowth times their average
// size becomes {*: Fuse(field types)}.
func Abstract(t types.Type, opts Options) types.Type {
	switch tt := t.(type) {
	case types.Basic, types.EmptyType:
		return t
	case *types.Record:
		fields := tt.Fields()
		out := make([]types.Field, len(fields))
		var sumSize int
		for i, f := range fields {
			abstracted := Abstract(f.Type, opts)
			out[i] = types.Field{Key: f.Key, Type: abstracted, Optional: f.Optional}
			sumSize += abstracted.Size()
		}
		rec := types.MustRecord(out...)
		if len(out) < opts.minKeys() {
			return rec
		}
		elem := types.Type(types.Empty)
		for _, f := range out {
			elem = fusion.Fuse(elem, f.Type)
		}
		// The fusion of many field types can itself assemble a nested
		// dictionary (e.g. Wikidata's qualifiers: one property key per
		// statement, hundreds across the collection), so abstract the
		// candidate element before judging and storing it.
		elem = Abstract(elem, opts)
		avg := float64(sumSize) / float64(len(out))
		if float64(elem.Size()) > avg*opts.maxElemGrowth() {
			return rec // heterogeneous fields: keep the names
		}
		return types.MustMap(elem)
	case *types.Map:
		return types.MustMap(Abstract(tt.Elem(), opts))
	case *types.Tuple:
		elems := make([]types.Type, tt.Len())
		for i, e := range tt.Elems() {
			elems[i] = Abstract(e, opts)
		}
		return types.MustTuple(elems...)
	case *types.Repeated:
		return types.MustRepeated(Abstract(tt.Elem(), opts))
	case *types.Union:
		alts := tt.Alts()
		out := make([]types.Type, len(alts))
		for i, a := range alts {
			out[i] = Abstract(a, opts)
		}
		// Abstraction never changes a type's kind (records become maps,
		// both record-kind), so normality is preserved and the union
		// rebuilds directly.
		return types.MustUnion(out...)
	default:
		return t
	}
}
