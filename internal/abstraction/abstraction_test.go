package abstraction

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/types"
	"repro/internal/value"
)

// dictRecord builds a record type with n identical-shaped fields, the
// ids-as-keys pattern.
func dictRecord(n int) types.Type {
	fields := make([]types.Field, n)
	for i := range fields {
		fields[i] = types.Field{
			Key:      fmt.Sprintf("P%d", i),
			Type:     types.MustParse("{language: Str, v: Num}"),
			Optional: i%2 == 0,
		}
	}
	return types.MustRecord(fields...)
}

func TestAbstractDictionaryRecord(t *testing.T) {
	in := dictRecord(30)
	got := Abstract(in, Options{})
	want := types.MustParse("{*: {language: Str, v: Num}}")
	if !types.Equal(got, want) {
		t.Fatalf("Abstract = %s, want %s", got, want)
	}
	if got.Size() >= in.Size()/5 {
		t.Errorf("abstraction barely shrank the type: %d -> %d", in.Size(), got.Size())
	}
}

func TestAbstractLeavesSmallRecordsAlone(t *testing.T) {
	in := dictRecord(5)
	if got := Abstract(in, Options{}); !types.Equal(got, in) {
		t.Errorf("5-field record abstracted: %s", got)
	}
	// A lower threshold abstracts it.
	if got := Abstract(in, Options{MinKeys: 3}); !strings.HasPrefix(got.String(), "{*:") {
		t.Errorf("MinKeys 3 did not abstract: %s", got)
	}
}

func TestAbstractLeavesHeterogeneousRecordsAlone(t *testing.T) {
	// 20 fields with genuinely different shapes — mixed kinds and
	// structurally unlike records: fusing them grows well past the
	// average field size, so the field names are information worth
	// keeping.
	shapes := []string{
		"Num", "Str", "Bool", "Null", "[Num*]", "[Str, Str]",
		"{x: Num, y: Num}", "{name: Str}", "[{deep: {deeper: Str}}*]", "Num + Str",
	}
	fields := make([]types.Field, 20)
	for i := range fields {
		fields[i] = types.Field{
			Key:  fmt.Sprintf("f%02d", i),
			Type: types.MustParse(shapes[i%len(shapes)]),
		}
	}
	in := types.MustRecord(fields...)
	if got := Abstract(in, Options{}); !types.Equal(got, in) {
		t.Errorf("heterogeneous record was abstracted: %s", got)
	}
}

func TestAbstractRecursesEverywhere(t *testing.T) {
	in := types.MustParse(fmt.Sprintf("{claims: %s, id: Str} + [%s*]",
		dictRecord(20), dictRecord(20)))
	got := Abstract(in, Options{})
	if !strings.Contains(got.String(), "{*:") {
		t.Fatalf("nothing abstracted in %s", got)
	}
	if strings.Count(got.String(), "{*:") != 2 {
		t.Errorf("want both nested dictionaries abstracted: %s", got)
	}
}

func TestAbstractIsSoundWidening(t *testing.T) {
	// t <: Abstract(t): checked with the sound subtype relation.
	f := func(seed uint64) bool {
		r := newRng(seed)
		acc := types.Type(types.Empty)
		for i := 0; i < 3; i++ {
			acc = fusion.Fuse(acc, fusion.Simplify(infer.Infer(randomWideValue(r))))
		}
		abstracted := Abstract(acc, Options{MinKeys: 4})
		if !types.Subtype(acc, abstracted) {
			t.Logf("t = %s\nabstract = %s", acc, abstracted)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAbstractPreservesMembership(t *testing.T) {
	// Values of the concrete schema stay members of the abstracted one.
	g, _ := dataset.New("wikidata")
	vs := dataset.Values(g, 120, 5)
	acc := types.Type(types.Empty)
	for _, v := range vs {
		acc = fusion.Fuse(acc, fusion.Simplify(infer.Infer(v)))
	}
	abstracted := Abstract(acc, Options{})
	for _, v := range vs {
		if !types.Member(v, abstracted) {
			t.Fatalf("record rejected by abstracted schema: %s", value.JSON(v)[:80])
		}
	}
	if !types.IsNormal(abstracted) {
		t.Error("abstracted schema is not normal")
	}
}

func TestAbstractFixesWikidata(t *testing.T) {
	// The Table 4 pathology and its repair: the concrete fused type is
	// huge and grows; the abstracted one is small and stable.
	fusedAt := func(n int) (concrete, abstracted types.Type) {
		g, _ := dataset.New("wikidata")
		acc := types.Type(types.Empty)
		for _, v := range dataset.Values(g, n, 13) {
			acc = fusion.Fuse(acc, fusion.Simplify(infer.Infer(v)))
		}
		return acc, Abstract(acc, Options{})
	}
	c200, a200 := fusedAt(200)
	c400, a400 := fusedAt(400)
	if c400.Size() <= c200.Size() {
		t.Fatalf("expected concrete wikidata schema to grow: %d -> %d", c200.Size(), c400.Size())
	}
	if a200.Size() > c200.Size()/4 {
		t.Errorf("abstraction saved too little: %d -> %d", c200.Size(), a200.Size())
	}
	// The abstracted schema is (nearly) scale-stable: it may tick up as
	// rare datatypes appear, but must not track the key space.
	growthConcrete := c400.Size() - c200.Size()
	growthAbstract := a400.Size() - a200.Size()
	if growthAbstract*10 > growthConcrete {
		t.Errorf("abstracted schema still grows with the key space: %+d vs %+d", growthAbstract, growthConcrete)
	}
}

func TestAbstractedSchemaKeepsFusing(t *testing.T) {
	// Incremental maintenance survives abstraction: fusing new records
	// into an abstracted schema refines the map's element type instead
	// of re-growing keys.
	g, _ := dataset.New("wikidata")
	vs := dataset.Values(g, 300, 17)
	acc := types.Type(types.Empty)
	for _, v := range vs[:150] {
		acc = fusion.Fuse(acc, fusion.Simplify(infer.Infer(v)))
	}
	abstracted := Abstract(acc, Options{})
	sizeBefore := abstracted.Size()
	for _, v := range vs[150:] {
		abstracted = fusion.Fuse(abstracted, fusion.Simplify(infer.Infer(v)))
	}
	if grown := abstracted.Size() - sizeBefore; grown > sizeBefore/2 {
		t.Errorf("abstracted schema re-grew under fusion: %d -> %d", sizeBefore, abstracted.Size())
	}
	// And the full record set still conforms.
	for _, v := range vs {
		if !types.Member(v, abstracted) {
			t.Fatal("record rejected after incremental fusion into abstracted schema")
		}
	}
}

// --- helpers ---

type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed | 1} }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// randomWideValue generates records with many keys so abstraction has
// something to chew on.
func randomWideValue(r *rng) value.Value {
	n := 2 + r.intn(8)
	fields := make([]value.Field, 0, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("K%d", r.intn(40))
		if seen[k] {
			continue
		}
		seen[k] = true
		var v value.Value
		switch r.intn(3) {
		case 0:
			v = value.Num(float64(r.intn(50)))
		case 1:
			v = value.Obj("language", value.Str("en"), "value", value.Str("x"))
		default:
			v = value.Arr(value.Num(1), value.Str("s"))
		}
		fields = append(fields, value.Field{Key: k, Value: v})
	}
	return value.MustRecord(fields...)
}
