// Package infer implements the first phase of the paper's approach
// (Section 5.1): the type-inference rules of Figure 4, which map every
// JSON value to a type isomorphic to it. The inferred types use no union
// types, no optional fields and no repetition types; those are introduced
// only by the fusion phase (internal/fusion).
//
// Two entry points are provided: Infer types an already-parsed
// value.Value, and a streaming decoder (Decoder) infers types directly
// from the token stream of internal/jsontext without materializing
// values, which is how the map phase processes large files.
package infer

import (
	"fmt"
	"io"

	"repro/internal/intern"
	"repro/internal/jsontext"
	"repro/internal/types"
	"repro/internal/value"
)

// Infer implements the judgment ⊢ V ▷ T of Figure 4. The result is
// isomorphic to the value: records map to record types with all fields
// mandatory, arrays map to positional tuple types. Key uniqueness is
// guaranteed by the value.Record invariant, mirroring the l ∉ Keys(RT)
// premise of the record rule.
//
// By Lemma 5.1 the result is sound: V ∈ ⟦Infer(V)⟧, which
// TestLemma51Soundness verifies on random values.
func Infer(v value.Value) types.Type {
	switch vv := v.(type) {
	case value.Null:
		return types.Null
	case value.Bool:
		return types.Bool
	case value.Num:
		return types.Num
	case value.Str:
		return types.Str
	case *value.Record:
		vf := vv.Fields()
		fields := make([]types.Field, len(vf))
		for i, f := range vf {
			fields[i] = types.Field{Key: f.Key, Type: Infer(f.Value)}
		}
		// Keys are unique and sorted in the record value, so this
		// cannot fail.
		return types.MustRecord(fields...)
	case value.Array:
		elems := make([]types.Type, len(vv))
		for i, e := range vv {
			elems[i] = Infer(e)
		}
		return types.MustTuple(elems...)
	default:
		panic(fmt.Sprintf("infer: unknown value %T", v))
	}
}

// An Observer receives the value events of the stream as the decoder
// infers types — the hook the enrichment lattice (internal/enrich)
// rides to compute value-level statistics in the same single pass.
// Events follow the value structure: scalars fire their kind's hook
// with the decoded value, composites bracket their children (Key fires
// before each object member's value, EndArray carries the element
// count). A value that fails to decode may leave the observer
// mid-composite; callers discard such observers (the failed chunk's
// accumulator is dropped too) or reset them.
type Observer interface {
	Null()
	Bool(b bool)
	Num(f float64)
	Str(s string)
	BeginObject()
	Key(k string)
	EndObject()
	BeginArray()
	EndArray(count int)
}

// A Promoter is the phase-one hook of a tagged-union fusion strategy
// (fusion.Promoter implements it): the decoder consults it per object
// and wraps records carrying a discriminator into single-case variants
// types. The decoder detects two discriminator shapes:
//
//   - keyed: a candidate field (CandidateKeys, priority ordered) whose
//     value is a string no longer than MaxTagLen — Promote wraps the
//     record with that key/tag pair;
//   - wrapper: an object with exactly one field whose value is an
//     object — PromoteWrapper wraps it with the field key as tag.
//
// A nil promoter (the default) leaves inference exactly as the paper
// specifies.
type Promoter interface {
	CandidateKeys() []string
	MaxTagLen() int
	Promote(r *types.Record, key, tag string) types.Type
	PromoteWrapper(r *types.Record, tag string) types.Type
}

// Decoder infers one type per top-level JSON value read from an input
// stream, without building intermediate value trees.
type Decoder struct {
	lex  *jsontext.Lexer
	opts jsontext.Options

	// tab, when set, hash-conses every inferred node so Next returns the
	// canonical representative of each distinct type (see SetInterner).
	tab *intern.Table

	// obs, when set, receives value events alongside inference.
	obs Observer

	// pr, when set, promotes discriminated records to variants types;
	// prKeys and prMaxTag cache its parameters for the per-field check.
	pr       Promoter
	prKeys   []string
	prMaxTag int

	// fieldScratch and elemScratch hold one reusable accumulator per
	// nesting depth, so a record or array at depth d appends into the
	// same backing array on every value of the stream instead of growing
	// a fresh slice per composite value.
	fieldScratch [][]types.Field
	elemScratch  [][]types.Type
}

// NewDecoder returns a streaming type decoder for r. The decoder draws
// its lexer from a pool; call Release when done with the stream to
// recycle it (failing to is safe, just slower).
func NewDecoder(r io.Reader, opts jsontext.Options) *Decoder {
	lex := jsontext.AcquireLexer(r)
	lex.RawStrings(true)
	return &Decoder{lex: lex, opts: opts}
}

// NewBytesDecoder returns a streaming type decoder reading directly
// from data — the map-task entry point. It skips the bufio copy of
// NewDecoder(bytes.NewReader(data)) and lexes strings zero-copy:
// object keys are materialized through the lexer's intern cache (free
// after first occurrence) and value strings are never materialized at
// all unless an Observer is attached.
func NewBytesDecoder(data []byte, opts jsontext.Options) *Decoder {
	lex := jsontext.AcquireLexerBytes(data)
	lex.RawStrings(true)
	return &Decoder{lex: lex, opts: opts}
}

// Release returns the decoder's pooled resources. The decoder must not
// be used afterwards.
func (d *Decoder) Release() {
	if d.lex != nil {
		d.lex.Release()
		d.lex = nil
	}
}

// SetInterner directs the decoder to canonicalize every inferred type
// in tab: Next then returns hash-consed nodes, so callers can compare
// types by identity (Table.Ref) and deduplicate repeated shapes without
// walking them. Inference results are unchanged — the canonical node is
// structurally equal to what the plain decoder would build.
func (d *Decoder) SetInterner(tab *intern.Table) { d.tab = tab }

// SetObserver directs the decoder to report value events to obs while
// inferring; nil (the default) reports nothing and costs one branch
// per token.
func (d *Decoder) SetObserver(obs Observer) { d.obs = obs }

// SetPromoter installs a tagged-union promoter; nil (the default)
// infers plain record types exactly as the paper specifies.
func (d *Decoder) SetPromoter(pr Promoter) {
	d.pr = pr
	d.prKeys = nil
	d.prMaxTag = 0
	if pr != nil {
		d.prKeys = pr.CandidateKeys()
		d.prMaxTag = pr.MaxTagLen()
	}
}

// Next infers the type of the next top-level value in the stream. It
// returns io.EOF at the end of the input.
func (d *Decoder) Next() (types.Type, error) {
	tok, err := d.lex.Next()
	if err != nil {
		return nil, err
	}
	if tok.Kind == jsontext.TokEOF {
		return nil, io.EOF
	}
	return d.inferValue(tok, 0)
}

// Offset returns the number of input bytes consumed so far.
func (d *Decoder) Offset() int64 { return d.lex.Offset() }

func (d *Decoder) maxDepth() int {
	if d.opts.MaxDepth <= 0 {
		return jsontext.DefaultMaxDepth
	}
	return d.opts.MaxDepth
}

func (d *Decoder) syntaxErr(off int64, format string, args ...any) error {
	return &jsontext.SyntaxError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

func (d *Decoder) inferValue(tok jsontext.Token, depth int) (types.Type, error) {
	if depth > d.maxDepth() {
		return nil, d.syntaxErr(tok.Offset, "nesting deeper than %d", d.maxDepth())
	}
	switch tok.Kind {
	case jsontext.TokNull:
		if d.obs != nil {
			d.obs.Null()
		}
		return types.Null, nil
	case jsontext.TokTrue, jsontext.TokFalse:
		if d.obs != nil {
			d.obs.Bool(tok.Kind == jsontext.TokTrue)
		}
		return types.Bool, nil
	case jsontext.TokNum:
		if d.obs != nil {
			d.obs.Num(tok.Num)
		}
		return types.Num, nil
	case jsontext.TokStr:
		if d.obs != nil {
			// The lexer runs in raw-string mode, so a value string is
			// only materialized when someone is watching.
			d.obs.Str(d.lex.InternBytes(tok.Bytes))
		}
		return types.Str, nil
	case jsontext.TokBeginObject:
		return d.inferObject(depth)
	case jsontext.TokBeginArray:
		return d.inferArray(depth)
	default:
		return nil, d.syntaxErr(tok.Offset, "unexpected %s", tok.Kind)
	}
}

// fieldsAt returns the (emptied) field accumulator for a nesting depth.
func (d *Decoder) fieldsAt(depth int) []types.Field {
	for len(d.fieldScratch) <= depth {
		d.fieldScratch = append(d.fieldScratch, nil)
	}
	return d.fieldScratch[depth][:0]
}

// elemsAt returns the (emptied) element accumulator for a nesting depth.
func (d *Decoder) elemsAt(depth int) []types.Type {
	for len(d.elemScratch) <= depth {
		d.elemScratch = append(d.elemScratch, nil)
	}
	return d.elemScratch[depth][:0]
}

func (d *Decoder) inferObject(depth int) (types.Type, error) {
	if d.obs != nil {
		d.obs.BeginObject()
	}
	fields := d.fieldsAt(depth)
	first := true
	// Discriminator capture for the tagged strategy: the best (lowest
	// priority index) candidate key seen with a short string value, and
	// whether the first field's value was an object (the wrapper shape).
	tagPrio := -1
	var tagKey, tagVal string
	wrapperCand := false
	for {
		tok, err := d.lex.Next()
		if err != nil {
			return nil, err
		}
		if first && tok.Kind == jsontext.TokEndObject {
			if d.obs != nil {
				d.obs.EndObject()
			}
			if d.tab != nil {
				return d.tab.InternRecord(nil), nil
			}
			return types.MustRecord(), nil
		}
		if !first {
			switch tok.Kind {
			case jsontext.TokEndObject:
				if d.obs != nil {
					d.obs.EndObject()
				}
				d.fieldScratch[depth] = fields
				rt, err := d.buildRecord(fields)
				if err != nil || d.pr == nil {
					return rt, err
				}
				return d.promote(rt.(*types.Record), tagPrio >= 0, tagKey, tagVal, wrapperCand && len(fields) == 1), nil
			case jsontext.TokComma:
				tok, err = d.lex.Next()
				if err != nil {
					return nil, err
				}
			default:
				return nil, d.syntaxErr(tok.Offset, "expected ',' or '}' in object, got %s", tok.Kind)
			}
		}
		first = false
		if tok.Kind != jsontext.TokStr {
			return nil, d.syntaxErr(tok.Offset, "expected object key string, got %s", tok.Kind)
		}
		// Keys go through the lexer's intern cache: after the first
		// occurrence a repeated field name costs zero allocations.
		key := d.lex.InternBytes(tok.Bytes)
		// Objects have few keys in practice, so a linear scan of the
		// accumulated fields beats allocating a per-object set.
		for i := range fields {
			if fields[i].Key == key {
				return nil, d.syntaxErr(tok.Offset, "duplicate object key %q", key)
			}
		}
		if d.obs != nil {
			d.obs.Key(key)
		}
		colon, err := d.lex.Next()
		if err != nil {
			return nil, err
		}
		if colon.Kind != jsontext.TokColon {
			return nil, d.syntaxErr(colon.Offset, "expected ':' after key, got %s", colon.Kind)
		}
		vt, err := d.lex.Next()
		if err != nil {
			return nil, err
		}
		if d.pr != nil {
			if len(fields) == 0 && vt.Kind == jsontext.TokBeginObject {
				wrapperCand = true
			}
			if vt.Kind == jsontext.TokStr {
				for prio, cand := range d.prKeys {
					if cand != key || (tagPrio >= 0 && prio >= tagPrio) {
						continue
					}
					// Materialize the tag now — the token's bytes are only
					// valid until the next lexer call. Tags are low
					// cardinality, so the intern cache makes this free
					// after the first occurrence of each.
					if tag := d.lex.InternBytes(vt.Bytes); len(tag) <= d.prMaxTag {
						tagPrio, tagKey, tagVal = prio, key, tag
					}
					break
				}
			}
		}
		ft, err := d.inferValue(vt, depth+1)
		if err != nil {
			return nil, err
		}
		fields = append(fields, types.Field{Key: key, Type: ft})
	}
}

// buildRecord turns accumulated (unique-keyed, parse-ordered) fields
// into a record type. The interning path sorts in place — an insertion
// sort, because objects are small and the keys of real datasets arrive
// nearly sorted — and probes the table before building, so a repeated
// record shape costs zero allocations. fields is scratch owned by the
// caller; both paths copy out of it.
func (d *Decoder) buildRecord(fields []types.Field) (types.Type, error) {
	if d.tab == nil {
		return types.NewRecord(fields...)
	}
	for i := 1; i < len(fields); i++ {
		f := fields[i]
		j := i - 1
		for j >= 0 && fields[j].Key > f.Key {
			fields[j+1] = fields[j]
			j--
		}
		fields[j+1] = f
	}
	return d.tab.InternRecord(fields), nil
}

// promote wraps a freshly inferred record into a single-case variants
// type when a discriminator was captured: a keyed candidate wins over
// the wrapper shape. The canonical representative is returned when an
// interner is installed (children are already canonical, so this is a
// shallow probe).
func (d *Decoder) promote(r *types.Record, keyed bool, tagKey, tagVal string, wrapper bool) types.Type {
	var t types.Type
	switch {
	case keyed:
		t = d.pr.Promote(r, tagKey, tagVal)
	case wrapper:
		t = d.pr.PromoteWrapper(r, r.Fields()[0].Key)
	default:
		return r
	}
	if d.tab != nil {
		return d.tab.Canon(t)
	}
	return t
}

func (d *Decoder) inferArray(depth int) (types.Type, error) {
	if d.obs != nil {
		d.obs.BeginArray()
	}
	elems := d.elemsAt(depth)
	first := true
	for {
		tok, err := d.lex.Next()
		if err != nil {
			return nil, err
		}
		if first && tok.Kind == jsontext.TokEndArray {
			if d.obs != nil {
				d.obs.EndArray(0)
			}
			// EmptyTuple is one shared node, pre-seeded in every table, so
			// both paths return the canonical representative.
			return types.EmptyTuple, nil
		}
		if !first {
			switch tok.Kind {
			case jsontext.TokEndArray:
				if d.obs != nil {
					d.obs.EndArray(len(elems))
				}
				d.elemScratch[depth] = elems
				if d.tab != nil {
					return d.tab.InternTuple(elems), nil
				}
				return types.NewTuple(elems...)
			case jsontext.TokComma:
				tok, err = d.lex.Next()
				if err != nil {
					return nil, err
				}
			default:
				return nil, d.syntaxErr(tok.Offset, "expected ',' or ']' in array, got %s", tok.Kind)
			}
		}
		first = false
		et, err := d.inferValue(tok, depth+1)
		if err != nil {
			return nil, err
		}
		elems = append(elems, et)
	}
}

// InferAll infers one type per top-level JSON value in data.
func InferAll(data []byte) ([]types.Type, error) {
	return InferAllObserved(data, nil)
}

// InferAllObserved is InferAll with value events reported to obs (when
// non-nil) — the enrichment-enabled map stage.
func InferAllObserved(data []byte, obs Observer) ([]types.Type, error) {
	return InferAllWith(data, obs, nil)
}

// InferAllWith is InferAllObserved with a tagged-union promoter (both
// may be nil) — the fully optioned map stage.
func InferAllWith(data []byte, obs Observer, pr Promoter) ([]types.Type, error) {
	var ts []types.Type
	d := NewBytesDecoder(data, jsontext.Options{})
	defer d.Release()
	if obs != nil {
		d.SetObserver(obs)
	}
	if pr != nil {
		d.SetPromoter(pr)
	}
	for {
		t, err := d.Next()
		if err == io.EOF {
			return ts, nil
		}
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
}

// DedupAll infers the types of all top-level JSON values in data as a
// multiset over tab: one entry per distinct type with its occurrence
// count. This is the deduplicating map phase — a chunk of n records
// reduces to its distinct shapes, and the fold over those shapes yields
// exactly the same fused type as folding all n per-record types, because
// fusion is commutative, associative and idempotent.
func DedupAll(data []byte, tab *intern.Table) (*intern.Multiset, error) {
	return DedupAllObserved(data, tab, nil)
}

// DedupAllObserved is DedupAll with value events reported to obs (when
// non-nil). Observation stays per record — the multiset deduplicates
// types, not values, and enrichment wants every value.
func DedupAllObserved(data []byte, tab *intern.Table, obs Observer) (*intern.Multiset, error) {
	return DedupAllWith(data, tab, obs, nil)
}

// DedupAllWith is DedupAllObserved with a tagged-union promoter (both
// obs and pr may be nil) — the fully optioned deduplicating map stage.
func DedupAllWith(data []byte, tab *intern.Table, obs Observer, pr Promoter) (*intern.Multiset, error) {
	ms := intern.NewMultiset()
	d := NewBytesDecoder(data, jsontext.Options{})
	defer d.Release()
	d.SetInterner(tab)
	if obs != nil {
		d.SetObserver(obs)
	}
	if pr != nil {
		d.SetPromoter(pr)
	}
	for {
		t, err := d.Next()
		if err == io.EOF {
			return ms, nil
		}
		if err != nil {
			return nil, err
		}
		ref, ok := tab.Ref(t)
		if !ok {
			// Unreachable under the interner invariant, but keep the
			// multiset sound if it ever breaks.
			ref, _ = tab.Ref(tab.Canon(t))
		}
		ms.Add(ref, 1)
	}
}
