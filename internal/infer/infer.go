// Package infer implements the first phase of the paper's approach
// (Section 5.1): the type-inference rules of Figure 4, which map every
// JSON value to a type isomorphic to it. The inferred types use no union
// types, no optional fields and no repetition types; those are introduced
// only by the fusion phase (internal/fusion).
//
// Two entry points are provided: Infer types an already-parsed
// value.Value, and a streaming decoder (Decoder) infers types directly
// from the token stream of internal/jsontext without materializing
// values, which is how the map phase processes large files.
package infer

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/jsontext"
	"repro/internal/types"
	"repro/internal/value"
)

// Infer implements the judgment ⊢ V ▷ T of Figure 4. The result is
// isomorphic to the value: records map to record types with all fields
// mandatory, arrays map to positional tuple types. Key uniqueness is
// guaranteed by the value.Record invariant, mirroring the l ∉ Keys(RT)
// premise of the record rule.
//
// By Lemma 5.1 the result is sound: V ∈ ⟦Infer(V)⟧, which
// TestLemma51Soundness verifies on random values.
func Infer(v value.Value) types.Type {
	switch vv := v.(type) {
	case value.Null:
		return types.Null
	case value.Bool:
		return types.Bool
	case value.Num:
		return types.Num
	case value.Str:
		return types.Str
	case *value.Record:
		vf := vv.Fields()
		fields := make([]types.Field, len(vf))
		for i, f := range vf {
			fields[i] = types.Field{Key: f.Key, Type: Infer(f.Value)}
		}
		// Keys are unique and sorted in the record value, so this
		// cannot fail.
		return types.MustRecord(fields...)
	case value.Array:
		elems := make([]types.Type, len(vv))
		for i, e := range vv {
			elems[i] = Infer(e)
		}
		return types.MustTuple(elems...)
	default:
		panic(fmt.Sprintf("infer: unknown value %T", v))
	}
}

// Decoder infers one type per top-level JSON value read from an input
// stream, without building intermediate value trees.
type Decoder struct {
	lex  *jsontext.Lexer
	opts jsontext.Options
}

// NewDecoder returns a streaming type decoder for r.
func NewDecoder(r io.Reader, opts jsontext.Options) *Decoder {
	return &Decoder{lex: jsontext.NewLexer(r), opts: opts}
}

// Next infers the type of the next top-level value in the stream. It
// returns io.EOF at the end of the input.
func (d *Decoder) Next() (types.Type, error) {
	tok, err := d.lex.Next()
	if err != nil {
		return nil, err
	}
	if tok.Kind == jsontext.TokEOF {
		return nil, io.EOF
	}
	return d.inferValue(tok, 0)
}

// Offset returns the number of input bytes consumed so far.
func (d *Decoder) Offset() int64 { return d.lex.Offset() }

func (d *Decoder) maxDepth() int {
	if d.opts.MaxDepth <= 0 {
		return jsontext.DefaultMaxDepth
	}
	return d.opts.MaxDepth
}

func (d *Decoder) syntaxErr(off int64, format string, args ...any) error {
	return &jsontext.SyntaxError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

func (d *Decoder) inferValue(tok jsontext.Token, depth int) (types.Type, error) {
	if depth > d.maxDepth() {
		return nil, d.syntaxErr(tok.Offset, "nesting deeper than %d", d.maxDepth())
	}
	switch tok.Kind {
	case jsontext.TokNull:
		return types.Null, nil
	case jsontext.TokTrue, jsontext.TokFalse:
		return types.Bool, nil
	case jsontext.TokNum:
		return types.Num, nil
	case jsontext.TokStr:
		return types.Str, nil
	case jsontext.TokBeginObject:
		return d.inferObject(depth)
	case jsontext.TokBeginArray:
		return d.inferArray(depth)
	default:
		return nil, d.syntaxErr(tok.Offset, "unexpected %s", tok.Kind)
	}
}

func (d *Decoder) inferObject(depth int) (types.Type, error) {
	var fields []types.Field
	seen := make(map[string]bool)
	first := true
	for {
		tok, err := d.lex.Next()
		if err != nil {
			return nil, err
		}
		if first && tok.Kind == jsontext.TokEndObject {
			return types.MustRecord(), nil
		}
		if !first {
			switch tok.Kind {
			case jsontext.TokEndObject:
				return types.NewRecord(fields...)
			case jsontext.TokComma:
				tok, err = d.lex.Next()
				if err != nil {
					return nil, err
				}
			default:
				return nil, d.syntaxErr(tok.Offset, "expected ',' or '}' in object, got %s", tok.Kind)
			}
		}
		first = false
		if tok.Kind != jsontext.TokStr {
			return nil, d.syntaxErr(tok.Offset, "expected object key string, got %s", tok.Kind)
		}
		key := tok.Str
		if seen[key] {
			return nil, d.syntaxErr(tok.Offset, "duplicate object key %q", key)
		}
		seen[key] = true
		colon, err := d.lex.Next()
		if err != nil {
			return nil, err
		}
		if colon.Kind != jsontext.TokColon {
			return nil, d.syntaxErr(colon.Offset, "expected ':' after key, got %s", colon.Kind)
		}
		vt, err := d.lex.Next()
		if err != nil {
			return nil, err
		}
		ft, err := d.inferValue(vt, depth+1)
		if err != nil {
			return nil, err
		}
		fields = append(fields, types.Field{Key: key, Type: ft})
	}
}

func (d *Decoder) inferArray(depth int) (types.Type, error) {
	var elems []types.Type
	first := true
	for {
		tok, err := d.lex.Next()
		if err != nil {
			return nil, err
		}
		if first && tok.Kind == jsontext.TokEndArray {
			return types.EmptyTuple, nil
		}
		if !first {
			switch tok.Kind {
			case jsontext.TokEndArray:
				return types.NewTuple(elems...)
			case jsontext.TokComma:
				tok, err = d.lex.Next()
				if err != nil {
					return nil, err
				}
			default:
				return nil, d.syntaxErr(tok.Offset, "expected ',' or ']' in array, got %s", tok.Kind)
			}
		}
		first = false
		et, err := d.inferValue(tok, depth+1)
		if err != nil {
			return nil, err
		}
		elems = append(elems, et)
	}
}

// InferAll infers one type per top-level JSON value in data.
func InferAll(data []byte) ([]types.Type, error) {
	var ts []types.Type
	d := NewDecoder(bytes.NewReader(data), jsontext.Options{})
	for {
		t, err := d.Next()
		if err == io.EOF {
			return ts, nil
		}
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
}
