package infer

import (
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/jsontext"
	"repro/internal/types"
	"repro/internal/value"
)

func TestInferBasics(t *testing.T) {
	cases := []struct {
		v    value.Value
		want string
	}{
		{value.Null{}, "Null"},
		{value.Bool(true), "Bool"},
		{value.Bool(false), "Bool"},
		{value.Num(3.14), "Num"},
		{value.Str("x"), "Str"},
		{value.MustRecord(), "{}"},
		{value.Array{}, "[]"},
	}
	for _, c := range cases {
		if got := Infer(c.v); got.String() != c.want {
			t.Errorf("Infer(%s) = %s, want %s", value.JSON(c.v), got, c.want)
		}
	}
}

func TestInferPaperFigure1Style(t *testing.T) {
	// A record in the style of the paper's Figure 1 sample.
	v := value.Obj(
		"name", value.Str("New York"),
		"coordinates", value.Arr(value.Num(40.7), value.Num(-74.0)),
		"tags", value.Arr(value.Str("abc"), value.Str("cde"), value.Obj("E", value.Str("fr"), "F", value.Num(12))),
	)
	got := Infer(v)
	want := types.MustParse(`{coordinates: [Num, Num], name: Str, tags: [Str, Str, {E: Str, F: Num}]}`)
	if !types.Equal(got, want) {
		t.Errorf("Infer = %s, want %s", got, want)
	}
}

func TestInferIsIsomorphic(t *testing.T) {
	// The inferred type of phase 1 mirrors the value's shape exactly:
	// no unions, no options, no repeated types, same node structure.
	v := value.Obj(
		"a", value.Arr(value.Num(1), value.Num(2), value.Str("three")),
		"b", value.Obj("c", value.Null{}),
	)
	tt := Infer(v)
	if tt.Size() != value.Nodes(v) {
		t.Errorf("type size %d differs from value nodes %d", tt.Size(), value.Nodes(v))
	}
	types.Walk(tt, func(x types.Type) bool {
		switch x.(type) {
		case *types.Union, *types.Repeated, types.EmptyType:
			t.Errorf("phase-1 inference produced %T (%s)", x, x)
		case *types.Record:
			for _, f := range x.(*types.Record).Fields() {
				if f.Optional {
					t.Errorf("phase-1 inference produced optional field %q", f.Key)
				}
			}
		}
		return true
	})
}

func TestLemma51Soundness(t *testing.T) {
	// Lemma 5.1: ⊢ V ▷ T implies V ∈ ⟦T⟧, on random values.
	f := func(seed uint64) bool {
		r := seed | 1
		next := func(n int) int {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			return int(r % uint64(n))
		}
		var gen func(depth int) value.Value
		gen = func(depth int) value.Value {
			max := 6
			if depth <= 0 {
				max = 4
			}
			switch next(max) {
			case 0:
				return value.Null{}
			case 1:
				return value.Bool(next(2) == 0)
			case 2:
				return value.Num(float64(next(100)))
			case 3:
				return value.Str(strings.Repeat("x", next(4)))
			case 4:
				var fs []value.Field
				seen := map[string]bool{}
				for i := 0; i < next(4); i++ {
					k := string(rune('a' + next(6)))
					if seen[k] {
						continue
					}
					seen[k] = true
					fs = append(fs, value.Field{Key: k, Value: gen(depth - 1)})
				}
				return value.MustRecord(fs...)
			default:
				var elems value.Array
				for i := 0; i < next(4); i++ {
					elems = append(elems, gen(depth-1))
				}
				if elems == nil {
					elems = value.Array{}
				}
				return elems
			}
		}
		v := gen(3)
		return types.Member(v, Infer(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInferDeterministic(t *testing.T) {
	v := value.Obj("z", value.Num(1), "a", value.Arr(value.Bool(true)))
	t1 := Infer(v)
	t2 := Infer(v)
	if !types.Equal(t1, t2) || t1.String() != t2.String() {
		t.Error("inference is not deterministic")
	}
}

func TestDecoderMatchesInfer(t *testing.T) {
	src := `{"a": [1, "x", {"b": null}], "c": true}
{"a": [], "c": false}
[1, 2, [3]]
"scalar"
{}`
	d := NewDecoder(strings.NewReader(src), jsontext.Options{})
	p := jsontext.NewParser(strings.NewReader(src), jsontext.Options{})
	n := 0
	for {
		st, serr := d.Next()
		v, perr := p.Next()
		if serr == io.EOF && perr == io.EOF {
			break
		}
		if serr != nil || perr != nil {
			t.Fatalf("stream err %v, parse err %v", serr, perr)
		}
		if vt := Infer(v); !types.Equal(st, vt) {
			t.Errorf("value %d: streaming %s != value-based %s", n, st, vt)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("decoded %d values, want 5", n)
	}
}

func TestDecoderErrors(t *testing.T) {
	bad := []string{
		`{"a":}`,
		`{"a" 1}`,
		`{1: 2}`,
		`{"dup":1,"dup":2}`,
		`[1,`,
		`[1 2]`,
		`}`,
	}
	for _, src := range bad {
		d := NewDecoder(strings.NewReader(src), jsontext.Options{})
		if tt, err := d.Next(); err == nil {
			t.Errorf("Decoder accepted %q as %s", src, tt)
		}
	}
}

func TestDecoderMaxDepth(t *testing.T) {
	deep := strings.Repeat(`{"a":`, 50) + "1" + strings.Repeat("}", 50)
	d := NewDecoder(strings.NewReader(deep), jsontext.Options{MaxDepth: 10})
	if _, err := d.Next(); err == nil {
		t.Error("depth 50 accepted with MaxDepth 10")
	}
	d = NewDecoder(strings.NewReader(deep), jsontext.Options{})
	if _, err := d.Next(); err != nil {
		t.Errorf("depth 50 rejected with default MaxDepth: %v", err)
	}
}

func TestInferAll(t *testing.T) {
	ts, err := InferAll([]byte(`{"a":1}` + "\n" + `{"a":"s"}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d types", len(ts))
	}
	if ts[0].String() != "{a: Num}" || ts[1].String() != "{a: Str}" {
		t.Errorf("types = %s, %s", ts[0], ts[1])
	}
	if _, err := InferAll([]byte(`{"a":`)); err == nil {
		t.Error("InferAll accepted malformed input")
	}
}

func TestDecoderOffsetAdvances(t *testing.T) {
	d := NewDecoder(strings.NewReader(`{"a":1} {"b":2}`), jsontext.Options{})
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if d.Offset() < 7 {
		t.Errorf("offset = %d after first value", d.Offset())
	}
}
