package infer_test

import (
	"strings"
	"testing"

	"repro/internal/infer"
	"repro/internal/intern"
	"repro/internal/jsontext"
	"repro/internal/types"
)

// TestDedupAllMatchesInferAll: the deduplicating decoder must type every
// record exactly like the plain decoder — same rendered types, counts
// summing to the record count, one multiset entry per distinct type.
func TestDedupAllMatchesInferAll(t *testing.T) {
	data := []byte(strings.TrimSpace(`
{"a": 1, "b": "x"}
{"b": "y", "a": 2}
{"a": 1, "b": "x", "c": [1, 2]}
{"a": null}
{"a": 1, "b": "z"}
[]
[1, [true, {"k": "v"}]]
{}
{}
`) + "\n")
	plain, err := infer.InferAll(data)
	if err != nil {
		t.Fatal(err)
	}
	tab := intern.NewTable()
	ms, err := infer.DedupAll(data, tab)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Total() != int64(len(plain)) {
		t.Fatalf("Total = %d, want %d records", ms.Total(), len(plain))
	}

	// Count the plain types by rendering — the oracle for distinctness.
	wantCounts := map[string]int64{}
	for _, p := range plain {
		wantCounts[p.String()]++
	}
	if ms.Len() != len(wantCounts) {
		t.Fatalf("distinct = %d, want %d", ms.Len(), len(wantCounts))
	}
	for _, e := range ms.Elems() {
		s := e.Type.String()
		if wantCounts[s] != e.Count {
			t.Errorf("count for %s = %d, want %d", s, e.Count, wantCounts[s])
		}
		if e.Size != e.Type.Size() {
			t.Errorf("cached size for %s = %d, want %d", s, e.Size, e.Type.Size())
		}
	}
}

// TestDedupDecoderCanonical: every type the interning decoder returns is
// a representative of its table, and repeated shapes return the SAME
// node.
func TestDedupDecoderCanonical(t *testing.T) {
	tab := intern.NewTable()
	d := infer.NewDecoder(strings.NewReader(`{"a": 1}`+"\n"+`{"a": 2}`), jsontext.Options{})
	defer d.Release()
	d.SetInterner(tab)
	t1, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatalf("same shape returned distinct nodes: %s vs %s", t1, t2)
	}
	if _, ok := tab.Ref(t1); !ok {
		t.Fatal("decoder returned a non-canonical node")
	}
}

// TestDedupErrorsMatchPlain: syntax errors — including the duplicate-key
// check, which moved from a per-object map to a linear scan — must be
// byte-identical between the plain and interning decoders.
func TestDedupErrorsMatchPlain(t *testing.T) {
	cases := []string{
		`{"a": 1, "a": 2}`,
		`{"k": {"x": 1, "y": 2, "x": 3}}`,
		`{"a": 1,, "b": 2}`,
		`[1, 2,, 3]`,
		`{"a"}`,
	}
	for _, src := range cases {
		_, plainErr := infer.InferAll([]byte(src))
		_, dedupErr := infer.DedupAll([]byte(src), intern.NewTable())
		if plainErr == nil || dedupErr == nil {
			t.Fatalf("%q: expected errors, got %v / %v", src, plainErr, dedupErr)
		}
		if plainErr.Error() != dedupErr.Error() {
			t.Errorf("%q:\n  plain: %v\n  dedup: %v", src, plainErr, dedupErr)
		}
	}
}

// TestScratchReuseIsolation: the depth-indexed scratch must not let one
// value's fields leak into a sibling or parent — deep asymmetric nesting
// is the stress case.
func TestScratchReuseIsolation(t *testing.T) {
	src := `{"a": {"x": 1, "y": [2, {"deep": true}]}, "b": 3}` + "\n" + `{"only": [[], [1]]}`
	plain, err := infer.InferAll([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	tab := intern.NewTable()
	ms, err := infer.DedupAll([]byte(src), tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 2 || ms.Len() != 2 {
		t.Fatalf("want 2 records / 2 distinct, got %d / %d", len(plain), ms.Len())
	}
	for i, e := range ms.Elems() {
		if !types.Equal(e.Type, plain[i]) {
			t.Errorf("record %d: dedup %s != plain %s", i, e.Type, plain[i])
		}
	}
}
