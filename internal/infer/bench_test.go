package infer_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/intern"
)

func benchData(b *testing.B, name string) []byte {
	b.Helper()
	g, err := dataset.New(name)
	if err != nil {
		b.Fatal(err)
	}
	return dataset.NDJSON(g, 1000, 1)
}

// BenchmarkInferAll measures the plain per-record decoding path: one
// fresh type tree per record, no interning.
func BenchmarkInferAll(b *testing.B) {
	data := benchData(b, "twitter")
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.InferAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDedupAll measures the hash-consing path: records decode into
// a shared intern table and only the multiset of distinct types is
// produced. After warm-up every record's nodes hit the table, so the
// per-record allocation count collapses.
func BenchmarkDedupAll(b *testing.B) {
	data := benchData(b, "twitter")
	tab := intern.NewTable()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.DedupAll(data, tab); err != nil {
			b.Fatal(err)
		}
	}
}
