package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/abstraction"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/mapreduce"
	"repro/internal/types"
)

// The ablations quantify the design choices DESIGN.md calls out. Each
// returns a Table so benchtables and the benchmarks share them.

// AblationSuccinctness compares the fused schema against the trivial
// alternative — keeping the union of all distinct inferred types — per
// dataset. This is the compaction the fusion operator buys (the implicit
// baseline of Tables 2-5: "one can consider the average size as a
// baseline").
func AblationSuccinctness(cfg Config) (Table, error) {
	t := Table{
		Number:  101,
		Caption: "Ablation: fused schema vs union of distinct types",
		Headers: []string{"Dataset", "Distinct types", "Sum of distinct sizes", "Fused size", "Compression"},
	}
	scales := cfg.scales()
	n := scales[len(scales)-1].N
	for _, name := range dataset.PaperNames() {
		res, err := RunPipeline(context.Background(), name, n, cfg)
		if err != nil {
			return Table{}, err
		}
		sumDistinct := res.Summary.DistinctSizeSum()
		comp := float64(sumDistinct) / float64(res.Fused.Size())
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", res.Summary.Distinct()),
			fmt.Sprintf("%d", sumDistinct),
			fmt.Sprintf("%d", res.Fused.Size()),
			fmt.Sprintf("%.1fx", comp),
		})
	}
	return t, nil
}

// AblationPrecision compares fusion against Spark-style coercion
// (internal/baseline) on every dataset: what the union types and
// optionality markers preserve that coercion destroys.
func AblationPrecision(cfg Config) (Table, error) {
	t := Table{
		Number:  102,
		Caption: "Ablation: fusion vs Spark-style coercion",
		Headers: []string{"Dataset", "Fused size", "Coerced size", "Optional fields", "Union nodes", "Coerced leaves", "Dropped nulls"},
	}
	scales := cfg.scales()
	n := scales[len(scales)-1].N
	if n > 20_000 {
		n = 20_000 // the baseline inferencer materializes values
	}
	for _, name := range dataset.PaperNames() {
		g, err := dataset.New(name)
		if err != nil {
			return Table{}, err
		}
		vs := dataset.Values(g, n, cfg.seed())
		fused := types.Type(types.Empty)
		for _, v := range vs {
			fused = fusion.Fuse(fused, fusion.Simplify(infer.Infer(v)))
		}
		base := baseline.InferAll(vs)
		rep := baseline.Compare(fused, base)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", rep.FusionSize),
			fmt.Sprintf("%d", rep.BaselineSize),
			fmt.Sprintf("%d", rep.OptionalFields),
			fmt.Sprintf("%d", rep.UnionNodes),
			fmt.Sprintf("%d", rep.CoercedLeaves),
			fmt.Sprintf("%d", rep.DroppedNullability),
		})
	}
	return t, nil
}

// AblationCombiner compares the unordered local-combiner reduction with
// the ordered collect-then-fold reduction on the same workload: the
// freedom commutativity buys.
func AblationCombiner(cfg Config) (Table, error) {
	t := Table{
		Number:  103,
		Caption: "Ablation: combiner (unordered) vs ordered reduction",
		Headers: []string{"Discipline", "Wall", "Same schema"},
	}
	g, err := dataset.New("twitter")
	if err != nil {
		return Table{}, err
	}
	scales := cfg.scales()
	data := dataset.NDJSON(g, scales[len(scales)-1].N, cfg.seed())
	chunks := jsontext.SplitLines(data, cfg.workers()*4)

	mapFn := func(_ context.Context, chunk []byte) (types.Type, error) {
		ts, err := infer.InferAll(chunk)
		if err != nil {
			return nil, err
		}
		acc := types.Type(types.Empty)
		for _, tt := range ts {
			acc = fusion.Fuse(acc, fusion.Simplify(tt))
		}
		return acc, nil
	}
	var schemas [2]types.Type
	for i, ordered := range []bool{false, true} {
		t0 := time.Now()
		out, _, err := mapreduce.RunSlice(context.Background(), chunks, mapFn, fusion.Fuse,
			types.Type(types.Empty), mapreduce.Config{Workers: cfg.workers(), Ordered: ordered})
		if err != nil {
			return Table{}, err
		}
		schemas[i] = out
		name := "unordered combiner"
		if ordered {
			name = "ordered fold"
		}
		t.Rows = append(t.Rows, []string{name, time.Since(t0).Round(time.Millisecond).String(), ""})
	}
	same := fmt.Sprintf("%v", types.Equal(schemas[0], schemas[1]))
	t.Rows[0][2] = same
	t.Rows[1][2] = same
	return t, nil
}

// AblationStreaming compares the streaming token-level inference decoder
// with parse-then-infer over materialized values.
func AblationStreaming(cfg Config) (Table, error) {
	t := Table{
		Number:  104,
		Caption: "Ablation: streaming inference vs parse-then-infer",
		Headers: []string{"Path", "Wall", "Types"},
	}
	g, err := dataset.New("nytimes")
	if err != nil {
		return Table{}, err
	}
	scales := cfg.scales()
	data := dataset.NDJSON(g, scales[len(scales)-1].N, cfg.seed())

	t0 := time.Now()
	ts, err := infer.InferAll(data)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{"streaming (tokens -> types)", time.Since(t0).Round(time.Millisecond).String(), fmt.Sprintf("%d", len(ts))})

	t1 := time.Now()
	vs, err := jsontext.ParseAll(data)
	if err != nil {
		return Table{}, err
	}
	ts2 := make([]types.Type, len(vs))
	for i, v := range vs {
		ts2[i] = infer.Infer(v)
	}
	t.Rows = append(t.Rows, []string{"materialize (tokens -> values -> types)", time.Since(t1).Round(time.Millisecond).String(), fmt.Sprintf("%d", len(ts2))})
	return t, nil
}

// AblationReduceShape compares sequential and balanced-tree folds of the
// same type list — the reduction shapes associativity makes equivalent.
func AblationReduceShape(cfg Config) (Table, error) {
	t := Table{
		Number:  105,
		Caption: "Ablation: sequential vs tree reduction of inferred types",
		Headers: []string{"Shape", "Wall", "Fused size"},
	}
	g, err := dataset.New("wikidata")
	if err != nil {
		return Table{}, err
	}
	scales := cfg.scales()
	n := scales[len(scales)-1].N
	if n > 20_000 {
		n = 20_000
	}
	var buf bytes.Buffer
	if _, err := dataset.WriteNDJSON(&buf, g, n, cfg.seed()); err != nil {
		return Table{}, err
	}
	ts, err := infer.InferAll(buf.Bytes())
	if err != nil {
		return Table{}, err
	}
	for i := range ts {
		ts[i] = fusion.Simplify(ts[i])
	}
	t0 := time.Now()
	seq := fusion.FuseAll(ts)
	t.Rows = append(t.Rows, []string{"sequential fold", time.Since(t0).Round(time.Millisecond).String(), fmt.Sprintf("%d", seq.Size())})
	t1 := time.Now()
	tree := fusion.FuseAllTree(ts)
	t.Rows = append(t.Rows, []string{"balanced tree", time.Since(t1).Round(time.Millisecond).String(), fmt.Sprintf("%d", tree.Size())})
	if !types.Equal(seq, tree) {
		return Table{}, fmt.Errorf("reduction shapes disagree: %d vs %d nodes", seq.Size(), tree.Size())
	}
	return t, nil
}

// AblationPositional compares the paper's always-simplify array fusion
// with the positional extension (Section 7 future work): how many
// fixed-shape arrays survive, and what it costs in schema size.
func AblationPositional(cfg Config) (Table, error) {
	t := Table{
		Number:  106,
		Caption: "Ablation: paper array fusion vs positional extension",
		Headers: []string{"Dataset", "Paper size", "Positional size", "Tuples preserved", "Still subschema"},
	}
	scales := cfg.scales()
	n := scales[len(scales)-1].N
	if n > 20_000 {
		n = 20_000
	}
	for _, name := range dataset.PaperNames() {
		paperCfg := cfg
		paperCfg.Fusion = fusion.Options{}
		posCfg := cfg
		posCfg.Fusion = fusion.Options{PreserveTuples: true}
		paper, err := RunPipeline(context.Background(), name, n, paperCfg)
		if err != nil {
			return Table{}, err
		}
		pos, err := RunPipeline(context.Background(), name, n, posCfg)
		if err != nil {
			return Table{}, err
		}
		tuples := 0
		types.Walk(pos.Fused, func(tt types.Type) bool {
			if tup, ok := tt.(*types.Tuple); ok && tup.Len() > 0 {
				tuples++
			}
			return true
		})
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", paper.Fused.Size()),
			fmt.Sprintf("%d", pos.Fused.Size()),
			fmt.Sprintf("%d", tuples),
			fmt.Sprintf("%v", types.Subtype(pos.Fused, paper.Fused)),
		})
	}
	return t, nil
}

// AblationAbstraction measures key abstraction on the fusion-hostile
// dataset: the repair for the Table 4 pathology (Wikidata ids-as-keys).
func AblationAbstraction(cfg Config) (Table, error) {
	t := Table{
		Number:  107,
		Caption: "Ablation: key abstraction on Wikidata (the Table 4 repair)",
		Headers: []string{"Scale", "Concrete fused size", "Abstracted size", "Reduction", "Sound"},
	}
	for _, s := range cfg.scales() {
		n := s.N
		if n > 20_000 {
			n = 20_000
		}
		res, err := RunPipeline(context.Background(), "wikidata", n, cfg)
		if err != nil {
			return Table{}, err
		}
		abstracted := abstraction.Abstract(res.Fused, abstraction.Options{})
		t.Rows = append(t.Rows, []string{
			s.Label,
			fmt.Sprintf("%d", res.Fused.Size()),
			fmt.Sprintf("%d", abstracted.Size()),
			fmt.Sprintf("%.0fx", float64(res.Fused.Size())/float64(abstracted.Size())),
			fmt.Sprintf("%v", types.Subtype(res.Fused, abstracted)),
		})
	}
	return t, nil
}

// AblationTaggedUnions compares the paper's record fusion with the
// tagged-union strategy (docs/UNIONS.md) on the four paper datasets
// plus the two discriminator-heavy generators: the precision the
// discriminated variants buy (optional-field markers that disappear
// because fields no longer blur across variants) and what it costs in
// schema size. "Still subschema" checks that the tagged schema admits
// only values the paper schema admits — tagged inference refines, never
// widens.
func AblationTaggedUnions(cfg Config) (Table, error) {
	t := Table{
		Number:  109,
		Caption: "Ablation: paper record fusion vs tagged-union strategy",
		Headers: []string{"Dataset", "Paper size", "Tagged size", "Unions", "Cases", "Optional fields (paper)", "Optional fields (tagged)", "Still subschema"},
	}
	scales := cfg.scales()
	n := scales[len(scales)-1].N
	if n > 20_000 {
		n = 20_000
	}
	names := append(dataset.PaperNames(), "eventlog", "webhook")
	for _, name := range names {
		paperCfg := cfg
		paperCfg.Fusion = fusion.Options{}
		taggedCfg := cfg
		taggedCfg.Fusion = fusion.Options{Strategy: fusion.Tagged{}}
		paper, err := RunPipeline(context.Background(), name, n, paperCfg)
		if err != nil {
			return Table{}, err
		}
		tagged, err := RunPipeline(context.Background(), name, n, taggedCfg)
		if err != nil {
			return Table{}, err
		}
		unions, cases := 0, 0
		types.Walk(tagged.Fused, func(tt types.Type) bool {
			if v, ok := tt.(*types.Variants); ok {
				unions++
				cases += v.Len()
			}
			return true
		})
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", paper.Fused.Size()),
			fmt.Sprintf("%d", tagged.Fused.Size()),
			fmt.Sprintf("%d", unions),
			fmt.Sprintf("%d", cases),
			fmt.Sprintf("%d", countOptional(paper.Fused)),
			fmt.Sprintf("%d", countOptional(tagged.Fused)),
			fmt.Sprintf("%v", types.Subtype(tagged.Fused, paper.Fused)),
		})
	}
	return t, nil
}

// countOptional counts the optional-field markers of a schema — the
// per-field imprecision tagged unions exist to remove.
func countOptional(t types.Type) int {
	n := 0
	types.Walk(t, func(tt types.Type) bool {
		if r, ok := tt.(*types.Record); ok {
			for _, f := range r.Fields() {
				if f.Optional {
					n++
				}
			}
		}
		return true
	})
	return n
}

// AblationReplication sweeps the HDFS replication factor on the skewed
// placement of Table 7: the pathology the paper hit presumes the
// effective replication was 1 (a manually copied dataset); with HDFS's
// default three copies, most blocks would have had a local replica
// somewhere and the cluster would not have starved.
func AblationReplication(cfg Config) (Table, error) {
	mbps, err := MeasureComputeMBps("nytimes", cfg)
	if err != nil {
		return Table{}, err
	}
	sim := cluster.PaperCluster(mbps)
	sizes := cluster.SplitBytes(22e9, 176)
	t := Table{
		Number:  108,
		Caption: "Ablation: replication factor under skewed primary placement (simulated)",
		Headers: []string{"Replicas", "Makespan", "Nodes used", "Utilization"},
	}
	for _, k := range []int{1, 2, 3} {
		rep, err := cluster.Run(sim, cluster.PlaceBlocksReplicated(sizes, cluster.PlaceAllOnOne, len(sim.Nodes), k))
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			rep.Makespan.Round(time.Second).String(),
			fmt.Sprintf("%d/%d", rep.NodesUsed, len(sim.Nodes)),
			fmt.Sprintf("%.0f%%", 100*rep.Utilization(sim.TotalCores())),
		})
	}
	return t, nil
}

// Ablations runs every ablation.
func Ablations(cfg Config) ([]Table, error) {
	fns := []func(Config) (Table, error){
		AblationSuccinctness,
		AblationPrecision,
		AblationCombiner,
		AblationStreaming,
		AblationReduceShape,
		AblationPositional,
		AblationAbstraction,
		AblationReplication,
		AblationTaggedUnions,
	}
	out := make([]Table, 0, len(fns))
	for _, fn := range fns {
		t, err := fn(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
