package experiments

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/types"
)

// tinyCfg keeps harness tests fast while still exercising every code
// path: two scales, fixed seed.
func tinyCfg() Config {
	return Config{Scales: []Scale{{"100", 100}, {"1K", 1000}}, Seed: 7, Workers: 4}
}

func TestScalesUpTo(t *testing.T) {
	if got := ScalesUpTo(10_000); len(got) != 2 || got[1].Label != "10K" {
		t.Errorf("ScalesUpTo(10K) = %v", got)
	}
	if got := ScalesUpTo(1_000_000); len(got) != 4 {
		t.Errorf("ScalesUpTo(1M) = %v", got)
	}
	if got := ScalesUpTo(1); len(got) != 1 || got[0].Label != "1K" {
		t.Errorf("ScalesUpTo(1) = %v (must include the smallest)", got)
	}
}

func TestDefaultMaxScaleEnv(t *testing.T) {
	t.Setenv("JSI_MAX_SCALE", "123")
	if got := DefaultMaxScale(); got != 123 {
		t.Errorf("DefaultMaxScale = %d", got)
	}
	t.Setenv("JSI_MAX_SCALE", "garbage")
	if got := DefaultMaxScale(); got != 10_000 {
		t.Errorf("DefaultMaxScale with garbage env = %d", got)
	}
}

func TestRunPipelineBasics(t *testing.T) {
	res, err := RunPipeline(context.Background(), "twitter", 300, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count() != 300 {
		t.Errorf("Count = %d", res.Summary.Count())
	}
	if res.Bytes <= 0 {
		t.Error("no bytes measured")
	}
	if types.Equal(res.Fused, types.Empty) {
		t.Error("fused schema is ε")
	}
	if !types.IsNormal(res.Fused) {
		t.Errorf("fused schema is not normal: %s", res.Fused)
	}
	if res.InferTime <= 0 || res.FuseTime <= 0 || res.Wall <= 0 {
		t.Errorf("times not measured: %v %v %v", res.InferTime, res.FuseTime, res.Wall)
	}
}

func TestRunPipelineUnknownDataset(t *testing.T) {
	if _, err := RunPipeline(context.Background(), "bogus", 10, tinyCfg()); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunPipelineDeterministicSchema(t *testing.T) {
	a, err := RunPipeline(context.Background(), "github", 200, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPipeline(context.Background(), "github", 200, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(a.Fused, b.Fused) {
		t.Error("pipeline schema not deterministic")
	}
	if a.Summary.Distinct() != b.Summary.Distinct() {
		t.Error("distinct counts not deterministic")
	}
}

func TestRunPipelineWorkerCountIrrelevant(t *testing.T) {
	cfg1 := tinyCfg()
	cfg1.Workers = 1
	cfg8 := tinyCfg()
	cfg8.Workers = 8
	a, err := RunPipeline(context.Background(), "nytimes", 200, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPipeline(context.Background(), "nytimes", 200, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(a.Fused, b.Fused) {
		t.Errorf("schema depends on worker count:\n1: %s\n8: %s", a.Fused, b.Fused)
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Headers) != 3 { // Dataset + 2 scales
		t.Fatalf("headers = %v", tab.Headers)
	}
	// Sizes grow with scale.
	for _, row := range tab.Rows {
		if row[1] == row[2] {
			t.Errorf("%s: scale did not change the size (%s)", row[0], row[1])
		}
	}
}

func TestDatasetTables(t *testing.T) {
	for name, number := range map[string]int{"github": 2, "twitter": 3, "wikidata": 4, "nytimes": 5} {
		tab, err := DatasetTable(name, tinyCfg())
		if err != nil {
			t.Fatal(err)
		}
		if tab.Number != number {
			t.Errorf("%s table number = %d", name, tab.Number)
		}
		if len(tab.Rows) != 2 {
			t.Fatalf("%s rows = %d", name, len(tab.Rows))
		}
		// Distinct types grow with scale.
		small, _ := strconv.Atoi(tab.Rows[0][1])
		big, _ := strconv.Atoi(tab.Rows[1][1])
		if big <= small {
			t.Errorf("%s: distinct types %d -> %d did not grow", name, small, big)
		}
	}
}

func TestTable2ShapeGitHub(t *testing.T) {
	tab, err := DatasetTable("github", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// fused/avg ratio stays small (paper: <= 1.4).
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 1.5 {
			t.Errorf("github ratio at %s = %.2f, want <= ~1.4", row[0], ratio)
		}
	}
}

func TestTable4ShapeWikidata(t *testing.T) {
	tab, err := DatasetTable("wikidata", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fused size grows with scale (ids-as-keys).
	s0, _ := strconv.Atoi(tab.Rows[0][5])
	s1, _ := strconv.Atoi(tab.Rows[1][5])
	if s1 <= s0 {
		t.Errorf("wikidata fused size did not grow: %d -> %d", s0, s1)
	}
}

func TestTable6(t *testing.T) {
	tab, err := Table6(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if _, err := time.ParseDuration(row[3]); err != nil {
			t.Errorf("%s infer time %q unparseable", row[0], row[3])
		}
	}
}

func TestTable7ShowsSkewPenalty(t *testing.T) {
	tab, err := Table7(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	skewed, err := time.ParseDuration(strings.ReplaceAll(tab.Rows[0][1], " ", ""))
	if err != nil {
		t.Fatalf("parse %q: %v", tab.Rows[0][1], err)
	}
	spread, err := time.ParseDuration(strings.ReplaceAll(tab.Rows[1][1], " ", ""))
	if err != nil {
		t.Fatal(err)
	}
	if skewed <= spread {
		t.Errorf("skewed %v should exceed spread %v", skewed, spread)
	}
	// Paper: only ~2 of 6 nodes busy under skew.
	if !strings.HasPrefix(tab.Rows[0][2], "1/") && !strings.HasPrefix(tab.Rows[0][2], "2/") && !strings.HasPrefix(tab.Rows[0][2], "3/") {
		t.Errorf("skewed nodes used = %s, want <= 3", tab.Rows[0][2])
	}
	if tab.Rows[1][2] != "6/6" {
		t.Errorf("spread nodes used = %s", tab.Rows[1][2])
	}
}

func TestTable8(t *testing.T) {
	tab, err := Table8(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 { // 4 partitions + average
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	totalObjects := 0
	for _, row := range tab.Rows[:4] {
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("objects %q: %v", row[1], err)
		}
		totalObjects += n
		if !strings.HasSuffix(row[3], "min") {
			t.Errorf("time cell = %q", row[3])
		}
	}
	if totalObjects != 1000 {
		t.Errorf("partitions cover %d objects, want 1000", totalObjects)
	}
}

func TestRenderAligns(t *testing.T) {
	tab := Table{Number: 9, Caption: "demo", Headers: []string{"a", "bbbb"}, Rows: [][]string{{"xxxxx", "y"}}}
	out := tab.Render()
	if !strings.Contains(out, "Table 9: demo") {
		t.Errorf("caption missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if len(lines[1]) != len(lines[3]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestMeasureComputeMBps(t *testing.T) {
	mbps, err := MeasureComputeMBps("twitter", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if mbps <= 0 {
		t.Errorf("compute rate = %v", mbps)
	}
	if _, err := MeasureComputeMBps("bogus", tinyCfg()); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestAblations(t *testing.T) {
	tabs, err := Ablations(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 9 {
		t.Fatalf("ablations = %d", len(tabs))
	}
	// Succinctness: compression factor > 1 for every dataset.
	for _, row := range tabs[0].Rows {
		if !strings.HasSuffix(row[4], "x") {
			t.Errorf("compression cell = %q", row[4])
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil || v <= 1 {
			t.Errorf("%s compression = %q, want > 1x", row[0], row[4])
		}
	}
	// Tagged-union ablation: all six generators report, the tagged
	// schema refines the paper's everywhere, and the discriminated
	// generators lose every spurious optional field.
	var taggedTab *Table
	for i := range tabs {
		if tabs[i].Number == 109 {
			taggedTab = &tabs[i]
		}
	}
	if taggedTab == nil {
		t.Fatal("no tagged-union ablation (Table 109)")
	}
	if len(taggedTab.Rows) != 6 {
		t.Fatalf("tagged ablation rows = %d, want 6", len(taggedTab.Rows))
	}
	for _, row := range taggedTab.Rows {
		if row[7] != "true" {
			t.Errorf("%s: tagged schema is not a subschema of the paper's", row[0])
		}
		if row[0] == "eventlog" || row[0] == "webhook" {
			if row[6] != "0" {
				t.Errorf("%s: tagged optional fields = %s, want 0", row[0], row[6])
			}
			if row[5] == "0" {
				t.Errorf("%s: paper optional fields = 0, the generator lost its shape mix", row[0])
			}
		}
	}
	// Combiner ablation: both disciplines agree on the schema.
	comb := tabs[2]
	if comb.Rows[0][2] != "true" {
		t.Errorf("combiner disciplines disagree: %v", comb.Rows)
	}
	// Positional ablation: the positional schema is always a subschema
	// of the paper's, and Twitter preserves its fixed-shape index pairs.
	posTab := tabs[5]
	for _, row := range posTab.Rows {
		if row[4] != "true" {
			t.Errorf("%s: positional schema is not a subschema", row[0])
		}
	}
	if posTab.Rows[1][3] == "0" {
		t.Errorf("twitter should preserve tuples: %v", posTab.Rows[1])
	}
	// Abstraction ablation: a large reduction on Wikidata, soundly.
	absTab := tabs[6]
	for _, row := range absTab.Rows {
		if row[4] != "true" {
			t.Errorf("abstraction unsound at %s", row[0])
		}
	}
	// Replication ablation: more nodes busy as replicas increase.
	repTab := tabs[7]
	if repTab.Rows[0][2] >= repTab.Rows[2][2] {
		t.Errorf("replication did not spread work: %v", repTab.Rows)
	}
}

func TestAllTables(t *testing.T) {
	cfg := Config{Scales: []Scale{{"100", 100}}, Seed: 3, Workers: 2}
	tabs, err := AllTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 8 {
		t.Fatalf("AllTables returned %d tables", len(tabs))
	}
	for i, tab := range tabs {
		if tab.Number != i+1 {
			t.Errorf("table %d has number %d", i, tab.Number)
		}
		if out := tab.Render(); !strings.Contains(out, "Table") {
			t.Errorf("table %d renders empty", i+1)
		}
	}
}

// TestPipelineRetriesTransientFaults drives the experiments pipeline
// through the engine's failure policy: with injected transient faults
// and a retry budget, the result is identical to the clean run and the
// fault handling is reported.
func TestPipelineRetriesTransientFaults(t *testing.T) {
	cfg := Config{Scales: []Scale{{"1K", 1000}}, Workers: 4}
	clean, err := RunPipeline(context.Background(), "github", 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	faulty := cfg
	faulty.Failure = mapreduce.FailurePolicy{Mode: mapreduce.Retry, MaxRetries: 2, BaseBackoff: 10 * time.Microsecond}
	faulty.Injector = func(seq, attempt int) mapreduce.Fault {
		if seq%3 == 0 && attempt == 0 {
			return mapreduce.Fault{Err: errors.New("injected transient fault")}
		}
		return mapreduce.Fault{}
	}
	res, err := RunPipeline(context.Background(), "github", 1000, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(res.Fused, clean.Fused) {
		t.Errorf("retried run fused %s, clean run %s", res.Fused, clean.Fused)
	}
	if res.Summary.Count() != clean.Summary.Count() {
		t.Errorf("records = %d, want %d", res.Summary.Count(), clean.Summary.Count())
	}
	if res.Retries == 0 {
		t.Error("Retries = 0, want > 0")
	}
	if res.Quarantined != 0 {
		t.Errorf("Quarantined = %d, want 0", res.Quarantined)
	}
}

// TestPipelineSkipQuarantinesChunk verifies the Skip policy completes
// the run without a permanently failing chunk and reports it.
func TestPipelineSkipQuarantinesChunk(t *testing.T) {
	cfg := Config{Scales: []Scale{{"1K", 1000}}, Workers: 4}
	clean, err := RunPipeline(context.Background(), "twitter", 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	faulty := cfg
	faulty.Failure = mapreduce.FailurePolicy{Mode: mapreduce.Skip, MaxRetries: 1, BaseBackoff: 10 * time.Microsecond}
	faulty.Injector = func(seq, attempt int) mapreduce.Fault {
		if seq == 2 {
			return mapreduce.Fault{Err: mapreduce.Permanent(errors.New("injected permanent fault"))}
		}
		return mapreduce.Fault{}
	}
	res, err := RunPipeline(context.Background(), "twitter", 1000, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", res.Quarantined)
	}
	if res.Summary.Count() >= clean.Summary.Count() {
		t.Errorf("skipped run counted %d records, clean %d: the quarantined chunk's records should be missing", res.Summary.Count(), clean.Summary.Count())
	}
}
