// Package experiments is the harness that regenerates every table of the
// paper's evaluation (Section 6, Tables 1-8). It is shared by the
// benchtables command and the repository's benchmarks so each experiment
// has exactly one implementation.
//
// Scales: the paper uses 1K/10K/100K/1M-record sub-datasets. Because the
// synthetic generators are deterministic and sub-datasets are prefixes,
// any scale reproduces the same qualitative shape; the harness defaults
// to the scales given in Config and callers (CLI flag, JSI_MAX_SCALE
// environment variable) choose how far up the ladder to climb.
package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/types"
)

// Scale is one rung of the evaluation ladder.
type Scale struct {
	Label string
	N     int
}

// PaperScales are the sub-dataset sizes of Table 1.
var PaperScales = []Scale{
	{"1K", 1_000},
	{"10K", 10_000},
	{"100K", 100_000},
	{"1M", 1_000_000},
}

// Config parameterizes a harness run.
type Config struct {
	// Scales to evaluate; defaults to ScalesUpTo(DefaultMaxScale()).
	Scales []Scale
	// Seed for the dataset generators.
	Seed int64
	// Workers for the map-reduce engine; 0 means GOMAXPROCS.
	Workers int
	// Fusion selects the fusion policy; the zero value is the paper's
	// algorithm, PreserveTuples enables the positional-array extension.
	Fusion fusion.Options
	// Recorder, when non-nil, receives per-phase wall times under the
	// experiments_* names of docs/OBSERVABILITY.md and is forwarded to
	// the map-reduce engine for its mapreduce_* metrics.
	Recorder obs.Recorder
	// Failure is the map-reduce failure policy for the pipeline runs;
	// the zero value fail-fasts, matching the paper's Spark runs on
	// clean data. See docs/FAULTS.md.
	Failure mapreduce.FailurePolicy
	// Injector, when non-nil, deterministically injects faults into the
	// map phase — the chaos harness's entry point into the experiments.
	Injector mapreduce.FaultInjector
}

// DefaultMaxScale reads the JSI_MAX_SCALE environment variable (a record
// count) and defaults to 10000: large enough to show every trend, small
// enough for CI. Set JSI_MAX_SCALE=1000000 to run the full paper ladder.
func DefaultMaxScale() int {
	if s := os.Getenv("JSI_MAX_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 10_000
}

// ScalesUpTo returns the paper scales not exceeding max, always
// including at least the smallest.
func ScalesUpTo(max int) []Scale {
	var out []Scale
	for _, s := range PaperScales {
		if s.N <= max || len(out) == 0 {
			out = append(out, s)
		}
	}
	return out
}

func (c Config) scales() []Scale {
	if len(c.Scales) > 0 {
		return c.Scales
	}
	return ScalesUpTo(DefaultMaxScale())
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 20170321 // EDBT 2017, Venice
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PipelineResult is the outcome of running the full two-phase pipeline
// (Section 5) over one dataset at one scale.
type PipelineResult struct {
	Dataset string
	N       int
	// Bytes is the NDJSON size of the input (the Table 1 measurement).
	Bytes int64
	// Summary holds the distinct/min/max/avg measurements of Tables 2-5.
	Summary stats.Summary
	// Fused is the final schema; its Size is the "fused type size"
	// column.
	Fused types.Type
	// InferTime is the total time spent parsing + inferring types
	// (summed across workers), FuseTime the total time fusing, and Wall
	// the end-to-end elapsed time — the Table 6 measurements.
	InferTime, FuseTime, Wall time.Duration
	// Retries and Quarantined report the run's fault handling:
	// re-executed map attempts and tasks dropped under the Skip policy.
	// Both are zero on a fault-free run.
	Retries, Quarantined int
}

// RunPipeline generates the dataset at the given scale and runs
// inference + fusion over it with the map-reduce engine, measuring the
// phases separately. The context cancels the underlying map-reduce run.
func RunPipeline(ctx context.Context, name string, n int, cfg Config) (PipelineResult, error) {
	g, err := dataset.New(name)
	if err != nil {
		return PipelineResult{}, err
	}
	data := dataset.NDJSON(g, n, cfg.seed())
	res, err := RunPipelineOverNDJSON(ctx, data, cfg)
	if err != nil {
		return PipelineResult{}, fmt.Errorf("experiments: %s at %d records: %w", name, n, err)
	}
	res.Dataset = name
	res.N = n
	return res, nil
}

// RunPipelineOverNDJSON runs the two-phase pipeline over raw NDJSON —
// the same internal/pipeline engine the public Infer entry points use,
// with Env.Phases attached so the two phases (parse+infer vs fuse) are
// measured separately across workers (the Table 6 split). The context
// cancels the underlying map-reduce run.
func RunPipelineOverNDJSON(ctx context.Context, data []byte, cfg Config) (PipelineResult, error) {
	chunks := jsontext.SplitLines(data, cfg.workers()*4)
	var ph pipeline.Phases
	env := &pipeline.Env{
		Fusion:   cfg.Fusion,
		Workers:  cfg.workers(),
		Failure:  cfg.Failure,
		Injector: cfg.Injector,
		Rec:      cfg.Recorder,
		Phases:   &ph,
	}

	wall0 := time.Now()
	out, mrst, err := pipeline.Run(ctx, env, pipeline.SliceFeed(chunks))
	if err != nil {
		return PipelineResult{}, err
	}
	fold := pipeline.Fold(out)
	res := PipelineResult{
		Bytes:       int64(len(data)),
		Fused:       fold.Fused,
		InferTime:   time.Duration(ph.InferNS.Load()),
		FuseTime:    time.Duration(ph.FuseNS.Load()),
		Wall:        time.Since(wall0),
		Retries:     mrst.Retries,
		Quarantined: len(mrst.Quarantined),
	}
	if fold.Summary != nil {
		res.Summary = *fold.Summary
	}
	if rec := cfg.Recorder; rec != nil {
		rec.Add("experiments_records", res.Summary.Count())
		rec.Add("experiments_bytes", res.Bytes)
		rec.Add("experiments_infer_ns", ph.InferNS.Load())
		rec.Add("experiments_fuse_ns", ph.FuseNS.Load())
		rec.Add("experiments_wall_ns", int64(res.Wall))
	}
	return res, nil
}

// MeasureComputeMBps calibrates the cluster simulator: it measures the
// host's single-core inference throughput (MB/s) on a sample of the
// given dataset, so simulated times have a defensible magnitude.
func MeasureComputeMBps(name string, cfg Config) (float64, error) {
	g, err := dataset.New(name)
	if err != nil {
		return 0, err
	}
	data := dataset.NDJSON(g, 2_000, cfg.seed())
	t0 := time.Now()
	ts, err := infer.InferAll(data)
	if err != nil {
		return 0, err
	}
	acc := types.Type(types.Empty)
	for _, t := range ts {
		acc = fusion.Fuse(acc, fusion.Simplify(t))
	}
	el := time.Since(t0).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	return float64(len(data)) / 1e6 / el, nil
}
