package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
)

// Table is a rendered experiment result: a caption, column headers, and
// string cells ready for display.
type Table struct {
	Number  int
	Caption string
	Headers []string
	Rows    [][]string
}

// Table1 regenerates "(Sub-)datasets sizes": the NDJSON byte size of
// every dataset at every scale.
func Table1(cfg Config) (Table, error) {
	t := Table{
		Number:  1,
		Caption: "(Sub-)dataset sizes",
		Headers: []string{"Dataset"},
	}
	scales := cfg.scales()
	for _, s := range scales {
		t.Headers = append(t.Headers, s.Label)
	}
	for _, name := range dataset.PaperNames() {
		row := []string{name}
		for _, s := range scales {
			g, err := dataset.New(name)
			if err != nil {
				return Table{}, err
			}
			n := int64(len(dataset.NDJSON(g, s.N, cfg.seed())))
			row = append(row, formatBytes(n))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// DatasetTable regenerates one of Tables 2-5: per scale, the number of
// distinct inferred types, their min/max/avg sizes, the fused type size,
// and the fused/avg succinctness ratio the paper's discussion uses.
func DatasetTable(name string, cfg Config) (Table, error) {
	number := map[string]int{"github": 2, "twitter": 3, "wikidata": 4, "nytimes": 5}[name]
	t := Table{
		Number:  number,
		Caption: fmt.Sprintf("Results for %s", name),
		Headers: []string{"Scale", "# types", "min", "max", "avg", "fused size", "fused/avg"},
	}
	for _, s := range cfg.scales() {
		res, err := RunPipeline(context.Background(), name, s.N, cfg)
		if err != nil {
			return Table{}, err
		}
		ratio := 0.0
		if res.Summary.AvgSize() > 0 {
			ratio = float64(res.Fused.Size()) / res.Summary.AvgSize()
		}
		t.Rows = append(t.Rows, []string{
			s.Label,
			fmt.Sprintf("%d", res.Summary.Distinct()),
			fmt.Sprintf("%d", res.Summary.MinSize()),
			fmt.Sprintf("%d", res.Summary.MaxSize()),
			fmt.Sprintf("%.1f", res.Summary.AvgSize()),
			fmt.Sprintf("%d", res.Fused.Size()),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	return t, nil
}

// Table6 regenerates "Typing execution times": real measured inference
// and fusion times for GitHub, Twitter and Wikidata at the largest
// configured scale, on the host machine (the paper's single-machine
// configuration).
func Table6(cfg Config) (Table, error) {
	t := Table{
		Number:  6,
		Caption: "Typing execution times (measured on this host)",
		Headers: []string{"Dataset", "Records", "Bytes", "Infer", "Fusion", "Wall"},
	}
	scales := cfg.scales()
	top := scales[len(scales)-1]
	for _, name := range []string{"github", "twitter", "wikidata"} {
		res, err := RunPipeline(context.Background(), name, top.N, cfg)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", res.N),
			formatBytes(res.Bytes),
			res.InferTime.Round(time.Millisecond).String(),
			res.FuseTime.Round(time.Millisecond).String(),
			res.Wall.Round(time.Millisecond).String(),
		})
	}
	return t, nil
}

// Table7 regenerates the cluster experiment: NYTimes (22 GB at paper
// scale) on the simulated 6-node cluster, contrasting the skewed HDFS
// placement the authors found (all blocks on one node; "the computation
// was performed on two nodes while the remaining four were idle") with
// spread-out blocks. Compute rate is calibrated on the host.
func Table7(cfg Config) (Table, error) {
	mbps, err := MeasureComputeMBps("nytimes", cfg)
	if err != nil {
		return Table{}, err
	}
	sim := cluster.PaperCluster(mbps)
	const paperBytes = 22e9 // Table 1: NYTimes 1M+ records = 22 GB
	sizes := cluster.SplitBytes(paperBytes, 176)

	t := Table{
		Number:  7,
		Caption: fmt.Sprintf("NYTimes on the simulated 6-node cluster (calibrated at %.0f MB/s/core)", mbps),
		Headers: []string{"Placement", "Makespan", "Nodes used", "Utilization", "Remote tasks"},
	}
	for _, p := range []cluster.Placement{cluster.PlaceAllOnOne, cluster.PlaceRoundRobin} {
		rep, err := cluster.Run(sim, cluster.PlaceBlocks(sizes, p, len(sim.Nodes)))
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			p.String(),
			rep.Makespan.Round(time.Second).String(),
			fmt.Sprintf("%d/%d", rep.NodesUsed, len(sim.Nodes)),
			fmt.Sprintf("%.0f%%", 100*rep.Utilization(sim.TotalCores())),
			fmt.Sprintf("%d", rep.RemoteTasks),
		})
	}
	return t, nil
}

// Table8 regenerates "Partition-based processing of NYTimes": four
// partitions processed in isolation on their own nodes, with real
// object and distinct-type counts from the pipeline at the configured
// scale and per-partition times simulated at the paper's full data
// volume (≈300K objects, ≈5.5 GB per partition).
func Table8(cfg Config) (Table, error) {
	mbps, err := MeasureComputeMBps("nytimes", cfg)
	if err != nil {
		return Table{}, err
	}
	sim := cluster.PaperCluster(mbps)

	scales := cfg.scales()
	n := scales[len(scales)-1].N
	perPart := n / 4

	// Real pipeline per partition: partitions are consecutive prefixes
	// of the deterministic stream, like the paper's HDFS partitions.
	g, err := dataset.New("nytimes")
	if err != nil {
		return Table{}, err
	}
	all := dataset.NDJSON(g, n, cfg.seed())
	chunks := splitIntoParts(all, 4)

	t := Table{
		Number:  8,
		Caption: fmt.Sprintf("Partition-based processing of NYTimes (counts at %d records/partition, times simulated at the paper's 22 GB volume)", perPart),
		Headers: []string{"Partition", "Objects", "Types", "Simulated time"},
	}
	// Measure each partition for real, then simulate its processing at
	// the paper's byte volume (22 GB split in proportion to the real
	// partition sizes, ≈5.5 GB each).
	results := make([]PipelineResult, len(chunks))
	var totalBytes int64
	for i, chunk := range chunks {
		res, err := RunPipelineOverNDJSON(context.Background(), chunk, cfg)
		if err != nil {
			return Table{}, err
		}
		results[i] = res
		totalBytes += res.Bytes
	}
	const paperBytes = 22e9
	var totalTime time.Duration
	for i, res := range results {
		scaled := int64(paperBytes * float64(res.Bytes) / float64(totalBytes))
		reports, _, err := cluster.RunPartitioned(cluster.Config{
			Nodes:       sim.Nodes[i : i+1],
			ComputeMBps: sim.ComputeMBps,
			FusePerTask: sim.FusePerTask,
		}, [][]int64{cluster.SplitBytes(scaled, 44)})
		if err != nil {
			return Table{}, err
		}
		totalTime += reports[0].Makespan
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("partition %d", i+1),
			fmt.Sprintf("%d", res.Summary.Count()),
			fmt.Sprintf("%d", res.Summary.Distinct()),
			fmtMinutes(reports[0].Makespan),
		})
	}
	avg := totalTime / time.Duration(len(results))
	t.Rows = append(t.Rows, []string{"average", "", "", fmtMinutes(avg)})
	return t, nil
}

// splitIntoParts cuts NDJSON into exactly n line-aligned parts.
func splitIntoParts(data []byte, n int) [][]byte {
	chunks := make([][]byte, 0, n)
	rest := data
	for i := n; i > 1; i-- {
		parts := splitFirst(rest, len(rest)/i)
		chunks = append(chunks, parts[0])
		rest = parts[1]
	}
	return append(chunks, rest)
}

// splitFirst splits data after the first line boundary at or past
// target.
func splitFirst(data []byte, target int) [2][]byte {
	for i := target; i < len(data); i++ {
		if data[i] == '\n' {
			return [2][]byte{data[:i+1], data[i+1:]}
		}
	}
	return [2][]byte{data, nil}
}

func fmtMinutes(d time.Duration) string {
	return fmt.Sprintf("%.1f min", d.Minutes())
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
