package experiments

import (
	"fmt"
	"strings"
)

// Render draws the table as aligned ASCII with the paper's caption.
func (t Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table %d: %s\n", t.Number, t.Caption)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// AllTables regenerates every table of the evaluation in order.
func AllTables(cfg Config) ([]Table, error) {
	var out []Table
	t1, err := Table1(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, t1)
	for _, name := range []string{"github", "twitter", "wikidata", "nytimes"} {
		t, err := DatasetTable(name, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	t6, err := Table6(cfg)
	if err != nil {
		return nil, err
	}
	t7, err := Table7(cfg)
	if err != nil {
		return nil, err
	}
	t8, err := Table8(cfg)
	if err != nil {
		return nil, err
	}
	return append(out, t6, t7, t8), nil
}
