package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// fastRetry is a retry policy with backoffs small enough for tests.
func fastRetry(n int) FailurePolicy {
	return FailurePolicy{Mode: Retry, MaxRetries: n, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 100 * time.Microsecond}
}

// fastSkip is fastRetry with quarantine instead of aborting.
func fastSkip(n int) FailurePolicy {
	p := fastRetry(n)
	p.Mode = Skip
	return p
}

var errTransient = errors.New("transient test fault")

// faultFirstAttempts returns an injector that fails the first n
// attempts of every task whose seq satisfies pick.
func faultFirstAttempts(n int, pick func(seq int) bool) FaultInjector {
	return func(seq, attempt int) Fault {
		if pick(seq) && attempt < n {
			return Fault{Err: fmt.Errorf("%w: task %d attempt %d", errTransient, seq, attempt)}
		}
		return Fault{}
	}
}

func TestRetryRecoversFromTransientFaults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i + 1
	}
	reg := obs.NewRegistry()
	got, st, err := RunSlice(context.Background(), items,
		func(_ context.Context, n int) (int, error) { return n, nil },
		func(a, b int) int { return a + b }, 0,
		Config{Workers: 4, Failure: fastRetry(2), Injector: faultFirstAttempts(2, func(seq int) bool { return seq%5 == 0 }), Recorder: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got != 100*101/2 {
		t.Errorf("sum = %d, want %d", got, 100*101/2)
	}
	// Tasks 0, 5, ..., 95 each needed exactly 2 retries.
	if wantRetries := 20 * 2; st.Retries != wantRetries {
		t.Errorf("Retries = %d, want %d", st.Retries, wantRetries)
	}
	if st.Tasks != 100 {
		t.Errorf("Tasks = %d, want 100", st.Tasks)
	}
	if len(st.Quarantined) != 0 {
		t.Errorf("Quarantined = %v, want none", st.Quarantined)
	}
	m := reg.Snapshot()
	if m.Counters["mapreduce_retries"] != int64(st.Retries) {
		t.Errorf("mapreduce_retries = %d, want %d", m.Counters["mapreduce_retries"], st.Retries)
	}
	if m.Counters["mapreduce_tasks"] != 100 {
		t.Errorf("mapreduce_tasks = %d, want 100", m.Counters["mapreduce_tasks"])
	}
}

func TestRetryBudgetExhaustedAborts(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, _, err := RunSlice(context.Background(), items,
		func(_ context.Context, n int) (int, error) { return n, nil },
		func(a, b int) int { return a + b }, 0,
		Config{Workers: 2, Failure: fastRetry(2), Injector: faultFirstAttempts(99, func(seq int) bool { return seq == 3 })})
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want wrapped errTransient", err)
	}
	if !strings.Contains(err.Error(), "task 3") || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error %q should identify the task and the attempt count", err)
	}
}

func TestPermanentErrorIsNotRetried(t *testing.T) {
	var attempts atomic.Int64
	boom := errors.New("poisoned record")
	_, st, err := RunSlice(context.Background(), []int{1, 2, 3},
		func(_ context.Context, n int) (int, error) {
			if n == 2 {
				attempts.Add(1)
				return 0, Permanent(boom)
			}
			return n, nil
		},
		func(a, b int) int { return a + b }, 0,
		Config{Workers: 1, Failure: fastRetry(5)})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("permanent error was attempted %d times, want 1", got)
	}
	if st.Retries != 0 {
		t.Errorf("Retries = %d, want 0", st.Retries)
	}
}

func TestSkipQuarantinesPoisonedTasks(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	reg := obs.NewRegistry()
	poison := func(seq int) bool { return seq%10 == 0 } // 0, 10, 20, 30, 40
	got, st, err := RunSlice(context.Background(), items,
		func(_ context.Context, n int) (int, error) { return n, nil },
		func(a, b int) int { return a + b }, 0,
		Config{Workers: 4, Failure: fastSkip(1), Injector: faultFirstAttempts(99, poison), Recorder: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, n := range items {
		if !poison(n) {
			want += n
		}
	}
	if got != want {
		t.Errorf("sum = %d, want %d (poisoned tasks excluded)", got, want)
	}
	if len(st.Quarantined) != 5 {
		t.Fatalf("Quarantined = %d entries, want 5", len(st.Quarantined))
	}
	for i, q := range st.Quarantined {
		if q.Seq != i*10 {
			t.Errorf("Quarantined[%d].Seq = %d, want %d (sorted by input order)", i, q.Seq, i*10)
		}
		if q.Attempts != 2 {
			t.Errorf("Quarantined[%d].Attempts = %d, want 2", i, q.Attempts)
		}
		if !errors.Is(q.Err, errTransient) {
			t.Errorf("Quarantined[%d].Err = %v, want wrapped errTransient", i, q.Err)
		}
	}
	m := reg.Snapshot()
	if m.Counters["mapreduce_skipped"] != 5 {
		t.Errorf("mapreduce_skipped = %d, want 5", m.Counters["mapreduce_skipped"])
	}
}

// TestPanicQuarantinedUnderSkip is the regression test for converting
// map-function panics into task errors: one poisoned record must be
// quarantined under the Skip policy instead of crashing the process,
// and a panic must not burn the retry budget (it is Permanent).
func TestPanicQuarantinedUnderSkip(t *testing.T) {
	var attempts atomic.Int64
	items := make([]int, 20)
	for i := range items {
		items[i] = i
	}
	got, st, err := RunSlice(context.Background(), items,
		func(_ context.Context, n int) (int, error) {
			if n == 7 {
				attempts.Add(1)
				panic("poisoned record")
			}
			return n, nil
		},
		func(a, b int) int { return a + b }, 0,
		Config{Workers: 3, Failure: fastSkip(4)})
	if err != nil {
		t.Fatalf("run should survive the panic, got %v", err)
	}
	want := 19 * 20 / 2 // sum 0..19
	want -= 7
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0].Seq != 7 {
		t.Fatalf("Quarantined = %+v, want exactly task 7", st.Quarantined)
	}
	if !strings.Contains(st.Quarantined[0].Err.Error(), "panicked") {
		t.Errorf("quarantine error %q should mention the panic", st.Quarantined[0].Err)
	}
	if !IsPermanent(st.Quarantined[0].Err) {
		t.Error("a panic should be marked Permanent")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("panicking task was attempted %d times, want 1 (no retry of a permanent failure)", got)
	}
}

func TestTaskTimeoutRetriesStraggler(t *testing.T) {
	pol := fastRetry(2)
	pol.TaskTimeout = 5 * time.Millisecond
	// Attempt 0 of task 1 straggles far past the timeout; attempt 1 is
	// clean.
	inj := func(seq, attempt int) Fault {
		if seq == 1 && attempt == 0 {
			return Fault{Delay: time.Second}
		}
		return Fault{}
	}
	start := time.Now()
	got, st, err := RunSlice(context.Background(), []int{10, 20, 30},
		func(_ context.Context, n int) (int, error) { return n, nil },
		func(a, b int) int { return a + b }, 0,
		Config{Workers: 2, Failure: pol, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if got != 60 {
		t.Errorf("sum = %d, want 60", got)
	}
	if st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
	if st.Retries != 1 {
		t.Errorf("Retries = %d, want 1", st.Retries)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("run took %v: the straggler's delay was not cut by the timeout", el)
	}
}

func TestSkipDoesNotQuarantineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 1000)
	var once atomic.Bool
	_, st, err := RunSlice(ctx, items,
		func(_ context.Context, n int) (int, error) {
			if once.CompareAndSwap(false, true) {
				cancel()
				return 0, ctx.Err()
			}
			return n, nil
		},
		func(a, b int) int { return a + b }, 0,
		Config{Workers: 2, Failure: fastSkip(3)})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	for _, q := range st.Quarantined {
		if errors.Is(q.Err, context.Canceled) {
			t.Errorf("cancellation was quarantined: %+v", q)
		}
	}
}

func TestBackoffIsDeterministicAndBounded(t *testing.T) {
	p := FailurePolicy{Mode: Retry, MaxRetries: 8, BaseBackoff: time.Millisecond, MaxBackoff: 16 * time.Millisecond, Seed: 42}
	for seq := 0; seq < 50; seq++ {
		for attempt := 1; attempt <= 8; attempt++ {
			d1 := p.backoff(seq, attempt)
			d2 := p.backoff(seq, attempt)
			if d1 != d2 {
				t.Fatalf("backoff(%d, %d) is not deterministic: %v vs %v", seq, attempt, d1, d2)
			}
			// Exponential cap: raw delay is min(base<<(attempt-1), max),
			// jittered into [d/2, d].
			raw := time.Millisecond << (attempt - 1)
			if raw > 16*time.Millisecond {
				raw = 16 * time.Millisecond
			}
			if d1 < raw/2 || d1 > raw {
				t.Fatalf("backoff(%d, %d) = %v, outside [%v, %v]", seq, attempt, d1, raw/2, raw)
			}
		}
	}
	// A different seed yields a different schedule somewhere.
	q := p
	q.Seed = 43
	same := true
	for seq := 0; seq < 50 && same; seq++ {
		if p.backoff(seq, 1) != q.backoff(seq, 1) {
			same = false
		}
	}
	if same {
		t.Error("jitter ignores the seed")
	}
}

func TestFailFastIgnoresRetryBudget(t *testing.T) {
	var attempts atomic.Int64
	boom := errors.New("boom")
	_, _, err := RunSlice(context.Background(), []int{1},
		func(_ context.Context, n int) (int, error) {
			attempts.Add(1)
			return 0, boom
		},
		func(a, b int) int { return a + b }, 0,
		Config{Failure: FailurePolicy{Mode: FailFast, MaxRetries: 5}})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("FailFast attempted %d times, want 1", got)
	}
}

func TestPermanentNilAndUnwrap(t *testing.T) {
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) should be nil")
	}
	base := errors.New("root cause")
	wrapped := Permanent(fmt.Errorf("context: %w", base))
	if !IsPermanent(wrapped) {
		t.Error("IsPermanent(Permanent(err)) = false")
	}
	if !errors.Is(wrapped, base) {
		t.Error("Permanent should preserve the error chain")
	}
	if IsPermanent(base) {
		t.Error("IsPermanent(plain error) = true")
	}
	rewrapped := fmt.Errorf("outer: %w", wrapped)
	if !IsPermanent(rewrapped) {
		t.Error("IsPermanent should see through wrapping")
	}
}
