// Package mapreduce is a small, generic map-reduce engine that plays the
// role Spark plays in the paper: it distributes a Map transformation
// (per-partition type inference) over workers and folds the outputs with
// an associative Reduce (type fusion).
//
// The engine offers two reduction disciplines:
//
//   - unordered (the default): every worker folds the outputs of its own
//     tasks into a local accumulator as they complete, and the local
//     accumulators are folded at the end. Outputs meet in arrival order,
//     so the combiner must be associative AND commutative — exactly the
//     properties Theorems 5.4 and 5.5 establish for type fusion. This is
//     the "combiner" optimization of classic map-reduce.
//
//   - ordered: outputs are collected with their input sequence numbers
//     and folded left-to-right in input order. Only associativity is
//     required, and the result is bit-for-bit reproducible regardless of
//     scheduling. Used by tests to cross-check the unordered path.
package mapreduce

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config tunes a run.
type Config struct {
	// Workers is the number of concurrent map workers; zero means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Ordered selects the ordered reduction discipline documented in the
	// package comment.
	Ordered bool
	// Failure selects the failure-handling policy; the zero value is
	// FailFast, the engine's historical behavior. See FailurePolicy.
	Failure FailurePolicy
	// Injector, when non-nil, intercepts every task attempt for chaos
	// testing; see FaultInjector.
	Injector FaultInjector
	// Recorder, when non-nil, receives engine metrics under the
	// mapreduce_* names documented in docs/OBSERVABILITY.md: task
	// counts, per-task map and combine timings, queue wait, reduce and
	// wall times, and worker utilization. A nil Recorder costs one
	// branch per task on the hot path (benchmarked at the repository
	// root against BenchmarkInferNDJSON).
	Recorder obs.Recorder
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Stats reports where a run spent its effort.
type Stats struct {
	// Tasks is the number of input items mapped.
	Tasks int
	// MapTime is the total time spent inside mapFn summed over workers
	// (it exceeds Wall on multi-worker runs).
	MapTime time.Duration
	// ReduceTime is the time spent in the final fold of worker
	// accumulators (ordered mode: the whole fold).
	ReduceTime time.Duration
	// Wall is the end-to-end elapsed time of the run.
	Wall time.Duration
	// Retries counts re-executed task attempts (attempts beyond each
	// task's first) under the Retry and Skip policies.
	Retries int
	// Timeouts counts attempts cut off by FailurePolicy.TaskTimeout.
	Timeouts int
	// Quarantined lists the tasks dropped under the Skip policy, in
	// input order. Their outputs are missing from the reduction; the
	// caller decides whether that is acceptable.
	Quarantined []QuarantinedTask
}

// Run maps every item received from src and reduces the outputs with
// combine, starting from zero. What happens when a task fails — a mapFn
// error, a mapFn panic (converted to a Permanent error), a timeout or
// an injected fault — is governed by cfg.Failure: FailFast (the
// default) aborts the run on the first failure, Retry re-executes the
// task with seeded exponential backoff before aborting, and Skip
// quarantines tasks whose retry budget is exhausted so the run can
// complete without them (see Stats.Quarantined). Context cancellation
// always aborts, regardless of policy.
//
// Re-execution is safe because combine must be associative (and, in
// the default unordered mode, commutative): a retried task's output
// meets the fold in a different order but yields the same reduction.
// zero must be the identity of combine.
func Run[I, M any](ctx context.Context, src <-chan I, mapFn func(context.Context, I) (M, error), combine func(M, M) M, zero M, cfg Config) (M, Stats, error) {
	return RunReleased(ctx, src, mapFn, combine, zero, cfg, nil)
}

// RunReleased is Run with a per-item release hook: release (when
// non-nil) is called exactly once per dequeued item after its final
// map attempt completes — success, quarantine, or failure — so feeds
// that recycle item buffers (pooled chunks) can reclaim them safely
// even under Retry, which re-invokes mapFn with the same item. mapFn's
// output must not alias the item once it returns. Items still queued
// when a run aborts are never released: they fall to the garbage
// collector, which can only under-recycle, never double-free.
func RunReleased[I, M any](ctx context.Context, src <-chan I, mapFn func(context.Context, I) (M, error), combine func(M, M) M, zero M, cfg Config, release func(I)) (M, Stats, error) {
	start := time.Now()
	nw := cfg.workers()
	rec := cfg.Recorder
	if rec != nil {
		rec.Set("mapreduce_workers", int64(nw))
	}

	type seqItem struct {
		seq  int
		item I
		enq  time.Time // stamped only when a Recorder is installed
	}
	type seqOut struct {
		seq int
		out M
	}

	// The per-pair combine timing wraps the combiner once, outside the
	// hot loop, so the nil-recorder path calls the original function
	// directly.
	combineFn := combine
	if rec != nil {
		combineFn = func(a, b M) M {
			t0 := time.Now()
			out := combine(a, b)
			rec.Observe("mapreduce_combine_ns", int64(time.Since(t0)))
			return out
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	items := make(chan seqItem)
	// Feed items with sequence numbers; stop early on cancellation.
	go func() {
		defer close(items)
		seq := 0
		for it := range src {
			si := seqItem{seq: seq, item: it}
			if rec != nil {
				si.enq = time.Now()
			}
			select {
			case items <- si:
				seq++
			case <-runCtx.Done():
				// Drain src so a blocked producer can finish.
				for range src {
				}
				return
			}
		}
	}()

	var (
		mu          sync.Mutex
		firstErr    error
		mapTime     time.Duration
		tasks       int
		retries     int
		timeouts    int
		quarantined []QuarantinedTask
		ordered     []seqOut // ordered mode: all outputs
		locals      = make([]M, nw)
		started     = make([]bool, nw)
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := range items {
				if rec != nil && !it.enq.IsZero() {
					rec.Observe("mapreduce_queue_wait_ns", int64(time.Since(it.enq)))
				}
				out, res := runTaskAttempts(runCtx, mapFn, it.item, it.seq, cfg, rec)
				if release != nil {
					// All attempts for this item are over; nothing can touch
					// it again.
					release(it.item)
				}
				mu.Lock()
				mapTime += res.dur
				tasks++
				retries += res.retries
				timeouts += res.timeouts
				mu.Unlock()
				if res.err != nil {
					if res.aborted || cfg.Failure.Mode != Skip {
						fail(fmt.Errorf("mapreduce: task %d: %w", it.seq, res.err))
						return
					}
					// Skip: quarantine the task and keep going.
					mu.Lock()
					quarantined = append(quarantined, QuarantinedTask{Seq: it.seq, Attempts: res.attempts, Err: res.err})
					mu.Unlock()
					if rec != nil {
						rec.Add("mapreduce_skipped", 1)
					}
					continue
				}
				if cfg.Ordered {
					mu.Lock()
					ordered = append(ordered, seqOut{seq: it.seq, out: out})
					mu.Unlock()
				} else {
					if started[w] {
						locals[w] = combineFn(locals[w], out)
					} else {
						locals[w] = out
						started[w] = true
					}
				}
				select {
				case <-runCtx.Done():
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()

	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	// Workers quarantine in completion order; canonicalize to input
	// order so Stats is deterministic.
	sort.Slice(quarantined, func(i, j int) bool { return quarantined[i].Seq < quarantined[j].Seq })
	st := Stats{Tasks: tasks, MapTime: mapTime, Retries: retries, Timeouts: timeouts, Quarantined: quarantined}
	if firstErr != nil {
		st.Wall = time.Since(start)
		record(rec, st, nw)
		return zero, st, firstErr
	}

	reduceStart := time.Now()
	acc := zero
	if cfg.Ordered {
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
		for _, o := range ordered {
			acc = combineFn(acc, o.out)
		}
	} else {
		for w := 0; w < nw; w++ {
			if started[w] {
				acc = combineFn(acc, locals[w])
			}
		}
	}
	st.ReduceTime = time.Since(reduceStart)
	st.Wall = time.Since(start)
	record(rec, st, nw)
	return acc, st, nil
}

// record publishes a finished run's totals. MapTime doubles as the
// workers' total busy time, so utilization (busy / wall x workers) is
// derived here rather than tracked separately.
func record(rec obs.Recorder, st Stats, workers int) {
	if rec == nil {
		return
	}
	rec.Add("mapreduce_tasks", int64(st.Tasks))
	rec.Add("mapreduce_map_ns", int64(st.MapTime))
	rec.Add("mapreduce_reduce_ns", int64(st.ReduceTime))
	rec.Add("mapreduce_wall_ns", int64(st.Wall))
	if st.Wall > 0 && workers > 0 {
		util := int64(st.MapTime) * 1000 / (int64(st.Wall) * int64(workers))
		rec.Set("mapreduce_utilization_permille", util)
	}
}

// taskResult summarizes every attempt of one task.
type taskResult struct {
	dur      time.Duration // time inside attempts, summed
	attempts int
	retries  int
	timeouts int
	err      error // nil on success
	aborted  bool  // err came from run cancellation: never quarantine
}

// runTaskAttempts drives one task through the failure policy: attempt,
// and on a transient failure back off (deterministically jittered) and
// re-attempt until success, a Permanent error, cancellation, or an
// exhausted budget.
func runTaskAttempts[I, M any](ctx context.Context, mapFn func(context.Context, I) (M, error), item I, seq int, cfg Config, rec obs.Recorder) (M, taskResult) {
	var res taskResult
	var zero M
	pol := cfg.Failure
	budget := pol.maxAttempts()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			res.retries++
			if rec != nil {
				rec.Add("mapreduce_retries", 1)
			}
			if err := sleepCtx(ctx, pol.backoff(seq, attempt)); err != nil {
				res.err, res.aborted = err, true
				return zero, res
			}
		}
		var fault Fault
		if cfg.Injector != nil {
			fault = cfg.Injector(seq, attempt)
			if rec != nil && (fault.Err != nil || fault.Delay > 0) {
				rec.Add("mapreduce_faults_injected", 1)
			}
		}
		out, dur, timedOut, err := runAttempt(ctx, mapFn, item, fault, pol.TaskTimeout)
		res.dur += dur
		res.attempts++
		if rec != nil {
			rec.Observe("mapreduce_task_ns", int64(dur))
		}
		if err == nil {
			return out, res
		}
		if ctx.Err() != nil {
			res.err, res.aborted = err, true
			return zero, res
		}
		if timedOut {
			res.timeouts++
			if rec != nil {
				rec.Add("mapreduce_task_timeouts", 1)
			}
		}
		if IsPermanent(err) || attempt+1 >= budget {
			if res.attempts > 1 {
				err = fmt.Errorf("%w (after %d attempts)", err, res.attempts)
			}
			res.err = err
			return zero, res
		}
	}
}

// runAttempt executes one attempt of a task: the injected fault (if
// any), then mapFn, under the per-attempt timeout and with panic
// recovery. A panic converts to a Permanent error — a poisoned record
// panics on every re-execution, so retrying it only wastes the budget;
// under Skip it quarantines at once instead of crashing the process.
func runAttempt[I, M any](ctx context.Context, mapFn func(context.Context, I) (M, error), item I, fault Fault, timeout time.Duration) (out M, dur time.Duration, timedOut bool, err error) {
	attemptCtx := ctx
	cancel := func() {}
	if timeout > 0 {
		attemptCtx, cancel = context.WithTimeout(ctx, timeout)
	}
	start := time.Now()
	defer func() {
		cancel()
		dur = time.Since(start)
		if r := recover(); r != nil {
			err = Permanent(fmt.Errorf("map function panicked: %v", r))
		}
		if err != nil && attemptCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			timedOut = true
			err = fmt.Errorf("attempt timed out after %v: %w", timeout, err)
		}
	}()
	if fault.Delay > 0 {
		if serr := sleepCtx(attemptCtx, fault.Delay); serr != nil {
			err = serr
			return out, 0, false, err
		}
	}
	if fault.Err != nil {
		return out, 0, false, fault.Err
	}
	out, err = mapFn(attemptCtx, item)
	return out, 0, false, err // dur and timedOut are set by the deferred closure
}

// RunSlice is Run over an in-memory slice of items.
func RunSlice[I, M any](ctx context.Context, items []I, mapFn func(context.Context, I) (M, error), combine func(M, M) M, zero M, cfg Config) (M, Stats, error) {
	src := make(chan I)
	go func() {
		defer close(src)
		for _, it := range items {
			select {
			case src <- it:
			case <-ctx.Done():
				return
			}
		}
	}()
	return Run(ctx, src, mapFn, combine, zero, cfg)
}
