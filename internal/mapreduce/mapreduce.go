// Package mapreduce is a small, generic map-reduce engine that plays the
// role Spark plays in the paper: it distributes a Map transformation
// (per-partition type inference) over workers and folds the outputs with
// an associative Reduce (type fusion).
//
// The engine offers two reduction disciplines:
//
//   - unordered (the default): every worker folds the outputs of its own
//     tasks into a local accumulator as they complete, and the local
//     accumulators are folded at the end. Outputs meet in arrival order,
//     so the combiner must be associative AND commutative — exactly the
//     properties Theorems 5.4 and 5.5 establish for type fusion. This is
//     the "combiner" optimization of classic map-reduce.
//
//   - ordered: outputs are collected with their input sequence numbers
//     and folded left-to-right in input order. Only associativity is
//     required, and the result is bit-for-bit reproducible regardless of
//     scheduling. Used by tests to cross-check the unordered path.
package mapreduce

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config tunes a run.
type Config struct {
	// Workers is the number of concurrent map workers; zero means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Ordered selects the ordered reduction discipline documented in the
	// package comment.
	Ordered bool
	// Recorder, when non-nil, receives engine metrics under the
	// mapreduce_* names documented in docs/OBSERVABILITY.md: task
	// counts, per-task map and combine timings, queue wait, reduce and
	// wall times, and worker utilization. A nil Recorder costs one
	// branch per task on the hot path (benchmarked at the repository
	// root against BenchmarkInferNDJSON).
	Recorder obs.Recorder
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Stats reports where a run spent its effort.
type Stats struct {
	// Tasks is the number of input items mapped.
	Tasks int
	// MapTime is the total time spent inside mapFn summed over workers
	// (it exceeds Wall on multi-worker runs).
	MapTime time.Duration
	// ReduceTime is the time spent in the final fold of worker
	// accumulators (ordered mode: the whole fold).
	ReduceTime time.Duration
	// Wall is the end-to-end elapsed time of the run.
	Wall time.Duration
}

// Run maps every item received from src and reduces the outputs with
// combine, starting from zero. It stops at the first error: a mapFn
// error, a mapFn panic (converted to an error), or ctx cancellation.
//
// combine must be associative; in the default unordered mode it must
// also be commutative. zero must be the identity of combine.
func Run[I, M any](ctx context.Context, src <-chan I, mapFn func(context.Context, I) (M, error), combine func(M, M) M, zero M, cfg Config) (M, Stats, error) {
	start := time.Now()
	nw := cfg.workers()
	rec := cfg.Recorder
	if rec != nil {
		rec.Set("mapreduce_workers", int64(nw))
	}

	type seqItem struct {
		seq  int
		item I
		enq  time.Time // stamped only when a Recorder is installed
	}
	type seqOut struct {
		seq int
		out M
	}

	// The per-pair combine timing wraps the combiner once, outside the
	// hot loop, so the nil-recorder path calls the original function
	// directly.
	combineFn := combine
	if rec != nil {
		combineFn = func(a, b M) M {
			t0 := time.Now()
			out := combine(a, b)
			rec.Observe("mapreduce_combine_ns", int64(time.Since(t0)))
			return out
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	items := make(chan seqItem)
	// Feed items with sequence numbers; stop early on cancellation.
	go func() {
		defer close(items)
		seq := 0
		for it := range src {
			si := seqItem{seq: seq, item: it}
			if rec != nil {
				si.enq = time.Now()
			}
			select {
			case items <- si:
				seq++
			case <-runCtx.Done():
				// Drain src so a blocked producer can finish.
				for range src {
				}
				return
			}
		}
	}()

	var (
		mu       sync.Mutex
		firstErr error
		mapTime  time.Duration
		tasks    int
		ordered  []seqOut // ordered mode: all outputs
		locals   = make([]M, nw)
		started  = make([]bool, nw)
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := range items {
				if rec != nil && !it.enq.IsZero() {
					rec.Observe("mapreduce_queue_wait_ns", int64(time.Since(it.enq)))
				}
				out, dur, err := runTask(runCtx, mapFn, it.item)
				mu.Lock()
				mapTime += dur
				tasks++
				mu.Unlock()
				if rec != nil {
					rec.Observe("mapreduce_task_ns", int64(dur))
				}
				if err != nil {
					fail(fmt.Errorf("mapreduce: task %d: %w", it.seq, err))
					return
				}
				if cfg.Ordered {
					mu.Lock()
					ordered = append(ordered, seqOut{seq: it.seq, out: out})
					mu.Unlock()
				} else {
					if started[w] {
						locals[w] = combineFn(locals[w], out)
					} else {
						locals[w] = out
						started[w] = true
					}
				}
				select {
				case <-runCtx.Done():
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()

	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	st := Stats{Tasks: tasks, MapTime: mapTime}
	if firstErr != nil {
		st.Wall = time.Since(start)
		record(rec, st, nw)
		return zero, st, firstErr
	}

	reduceStart := time.Now()
	acc := zero
	if cfg.Ordered {
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
		for _, o := range ordered {
			acc = combineFn(acc, o.out)
		}
	} else {
		for w := 0; w < nw; w++ {
			if started[w] {
				acc = combineFn(acc, locals[w])
			}
		}
	}
	st.ReduceTime = time.Since(reduceStart)
	st.Wall = time.Since(start)
	record(rec, st, nw)
	return acc, st, nil
}

// record publishes a finished run's totals. MapTime doubles as the
// workers' total busy time, so utilization (busy / wall x workers) is
// derived here rather than tracked separately.
func record(rec obs.Recorder, st Stats, workers int) {
	if rec == nil {
		return
	}
	rec.Add("mapreduce_tasks", int64(st.Tasks))
	rec.Add("mapreduce_map_ns", int64(st.MapTime))
	rec.Add("mapreduce_reduce_ns", int64(st.ReduceTime))
	rec.Add("mapreduce_wall_ns", int64(st.Wall))
	if st.Wall > 0 && workers > 0 {
		util := int64(st.MapTime) * 1000 / (int64(st.Wall) * int64(workers))
		rec.Set("mapreduce_utilization_permille", util)
	}
}

// runTask invokes mapFn with panic recovery and timing.
func runTask[I, M any](ctx context.Context, mapFn func(context.Context, I) (M, error), item I) (out M, dur time.Duration, err error) {
	start := time.Now()
	defer func() {
		dur = time.Since(start)
		if r := recover(); r != nil {
			err = fmt.Errorf("map function panicked: %v", r)
		}
	}()
	out, err = mapFn(ctx, item)
	return out, 0, err // dur is set by the deferred closure
}

// RunSlice is Run over an in-memory slice of items.
func RunSlice[I, M any](ctx context.Context, items []I, mapFn func(context.Context, I) (M, error), combine func(M, M) M, zero M, cfg Config) (M, Stats, error) {
	src := make(chan I)
	go func() {
		defer close(src)
		for _, it := range items {
			select {
			case src <- it:
			case <-ctx.Done():
				return
			}
		}
	}()
	return Run(ctx, src, mapFn, combine, zero, cfg)
}
