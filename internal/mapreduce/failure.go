package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// FailureMode selects how Run responds to a failing map task. The
// paper's pipeline inherits fault tolerance from Spark, which re-runs
// failed tasks; these modes are the hand-rolled engine's equivalent,
// and they are safe precisely because the combiner is associative and
// commutative — a re-executed task's output meets the fold in a
// different order but yields the same reduction (the fusion laws of
// Theorems 5.4 and 5.5, exercised as a crash-safety oracle by
// internal/chaos).
type FailureMode int

const (
	// FailFast aborts the whole run on the first task error — the
	// engine's historical behavior and the zero value.
	FailFast FailureMode = iota
	// Retry re-attempts a failed task up to MaxRetries times with
	// exponential backoff and deterministic jitter, then aborts the run
	// if the task still fails.
	Retry
	// Skip retries like Retry, then quarantines the task instead of
	// aborting: the run completes without the task's output and the
	// quarantined tasks are reported in Stats.Quarantined and via the
	// mapreduce_skipped counter.
	Skip
)

// String names the mode for reports and errors.
func (m FailureMode) String() string {
	switch m {
	case FailFast:
		return "fail-fast"
	case Retry:
		return "retry"
	case Skip:
		return "skip"
	default:
		return fmt.Sprintf("FailureMode(%d)", int(m))
	}
}

// FailurePolicy tunes the engine's failure handling. The zero value is
// FailFast with no retries — exactly the pre-policy behavior.
type FailurePolicy struct {
	// Mode selects the response to a task failure.
	Mode FailureMode
	// MaxRetries is the per-task retry budget (attempts beyond the
	// first). It is ignored under FailFast; zero under Retry degrades to
	// FailFast, zero under Skip quarantines on the first failure.
	MaxRetries int
	// BaseBackoff is the pause before the first retry; each further
	// retry doubles it. Zero means 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubled backoff. Zero means 50ms.
	MaxBackoff time.Duration
	// Seed seeds the deterministic backoff jitter: the pause before
	// attempt a of task s is a pure function of (Seed, s, a), so a run's
	// retry schedule is reproducible.
	Seed int64
	// TaskTimeout bounds each attempt. The timeout is cooperative — the
	// map function must honor its context — but injected straggler
	// delays (Fault.Delay) always honor it, and a timed-out attempt
	// counts as transient: it is retried like any other failure.
	// Zero means no per-attempt timeout.
	TaskTimeout time.Duration
}

// maxAttempts is the total attempt budget per task.
func (p FailurePolicy) maxAttempts() int {
	if p.Mode == FailFast || p.MaxRetries <= 0 {
		return 1
	}
	return 1 + p.MaxRetries
}

// backoff returns the pause before retry attempt a (1-based) of task
// seq: exponential doubling from BaseBackoff capped at MaxBackoff,
// jittered deterministically into [d/2, d] so retries of neighboring
// tasks spread out without sacrificing reproducibility.
func (p FailurePolicy) backoff(seq, attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	limit := p.MaxBackoff
	if limit <= 0 {
		limit = 50 * time.Millisecond
	}
	d := limit
	if shift := attempt - 1; shift < 20 {
		if dd := base << shift; dd < limit {
			d = dd
		}
	}
	half := d / 2
	h := mix64(uint64(p.Seed) ^ uint64(seq)<<32 ^ uint64(attempt))
	return half + time.Duration(h%uint64(half+1))
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash
// used to derive deterministic jitter from (seed, seq, attempt).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Fault is one artificial failure a FaultInjector injects into a task
// attempt.
type Fault struct {
	// Delay stalls the attempt before anything else runs — an
	// artificial straggler. It honors the attempt's context, so a
	// TaskTimeout cuts it short.
	Delay time.Duration
	// Err, when non-nil, aborts the attempt with this error instead of
	// running the map function. Wrap it with Permanent to defeat the
	// retry machinery.
	Err error
}

// FaultInjector deterministically injects faults for chaos testing: it
// is consulted before every attempt (0-based) of every task (by input
// sequence number) and must be safe for concurrent use and pure — the
// same (seq, attempt) must yield the same Fault, or runs stop being
// reproducible. internal/chaos builds seeded injectors from randomized
// failure plans.
type FaultInjector func(seq, attempt int) Fault

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// Permanent wraps err to mark it non-retryable: under Retry the run
// aborts immediately, under Skip the task quarantines without burning
// its retry budget. Use it for failures that cannot succeed on
// re-execution — malformed input, a poisoned record, a panic.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var pe permanentError
	return errors.As(err, &pe)
}

// QuarantinedTask records one task dropped under the Skip policy.
type QuarantinedTask struct {
	// Seq is the task's input sequence number.
	Seq int
	// Attempts is how many times the task was tried before giving up.
	Attempts int
	// Err is the final attempt's error.
	Err error
}

// sleepCtx pauses for d or until ctx is done, whichever comes first,
// returning the context's error if it fired.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
