package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/obs"
	"repro/internal/types"
	"repro/internal/value"
)

func TestRunSliceSum(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i + 1
	}
	for _, cfg := range []Config{{}, {Workers: 1}, {Workers: 7}, {Ordered: true}, {Workers: 3, Ordered: true}} {
		got, st, err := RunSlice(context.Background(), items,
			func(_ context.Context, n int) (int, error) { return n, nil },
			func(a, b int) int { return a + b }, 0, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if got != 1000*1001/2 {
			t.Errorf("cfg %+v: sum = %d", cfg, got)
		}
		if st.Tasks != 1000 {
			t.Errorf("cfg %+v: tasks = %d", cfg, st.Tasks)
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	got, st, err := RunSlice(context.Background(), nil,
		func(_ context.Context, n int) (int, error) { return n, nil },
		func(a, b int) int { return a + b }, 42, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("empty input should return zero value, got %d", got)
	}
	if st.Tasks != 0 {
		t.Errorf("tasks = %d", st.Tasks)
	}
}

func TestOrderedFoldIsLeftToRight(t *testing.T) {
	// String concatenation is associative but NOT commutative; ordered
	// mode must still produce the input-order fold.
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	got, _, err := RunSlice(context.Background(), items,
		func(_ context.Context, s string) (string, error) {
			time.Sleep(time.Duration(len(s)) * time.Microsecond)
			return s, nil
		},
		func(a, b string) string { return a + b }, "", Config{Workers: 4, Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != "abcdefgh" {
		t.Errorf("ordered fold = %q", got)
	}
}

func TestUnorderedMatchesOrderedForFusion(t *testing.T) {
	// The paper's whole point: fusion is commutative and associative, so
	// the unordered combiner discipline gives the same schema.
	var vals []value.Value
	for i := 0; i < 500; i++ {
		fields := []value.Field{{Key: "id", Value: value.Num(float64(i))}}
		if i%3 == 0 {
			fields = append(fields, value.Field{Key: "tag", Value: value.Str("x")})
		}
		if i%7 == 0 {
			fields = append(fields, value.Field{Key: "arr", Value: value.Arr(value.Num(1), value.Str("s"))})
		}
		vals = append(vals, value.MustRecord(fields...))
	}
	mapFn := func(_ context.Context, v value.Value) (types.Type, error) {
		return fusion.Simplify(infer.Infer(v)), nil
	}
	zero := types.Type(types.Empty)
	ordered, _, err := RunSlice(context.Background(), vals, mapFn, fusion.Fuse, zero, Config{Workers: 1, Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		unordered, _, err := RunSlice(context.Background(), vals, mapFn, fusion.Fuse, zero, Config{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !types.Equal(ordered, unordered) {
			t.Errorf("workers=%d: %s != %s", w, unordered, ordered)
		}
	}
}

func TestErrorStopsRun(t *testing.T) {
	items := make([]int, 10000)
	for i := range items {
		items[i] = i
	}
	boom := errors.New("boom")
	_, _, err := RunSlice(context.Background(), items,
		func(_ context.Context, n int) (int, error) {
			if n == 17 {
				return 0, boom
			}
			return n, nil
		},
		func(a, b int) int { return a + b }, 0, Config{Workers: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "task 17") {
		t.Errorf("error %q does not identify the failing task", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	items := []int{1, 2, 3}
	_, _, err := RunSlice(context.Background(), items,
		func(_ context.Context, n int) (int, error) {
			if n == 2 {
				panic("kaboom")
			}
			return n, nil
		},
		func(a, b int) int { return a + b }, 0, Config{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 100000)
	started := make(chan struct{}, 1)
	_, _, err := RunSlice(ctx, items,
		func(c context.Context, n int) (int, error) {
			select {
			case started <- struct{}{}:
				cancel()
			default:
			}
			return n, nil
		},
		func(a, b int) int { return a + b }, 0, Config{Workers: 2})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	items := make([]int, 64)
	_, st, err := RunSlice(context.Background(), items,
		func(_ context.Context, n int) (int, error) {
			time.Sleep(100 * time.Microsecond)
			return 1, nil
		},
		func(a, b int) int { return a + b }, 0, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 64 {
		t.Errorf("Tasks = %d", st.Tasks)
	}
	if st.MapTime < 64*100*time.Microsecond/2 {
		t.Errorf("MapTime = %v, implausibly small", st.MapTime)
	}
	if st.Wall <= 0 {
		t.Errorf("Wall = %v", st.Wall)
	}
}

func TestRunFromChannelStreams(t *testing.T) {
	src := make(chan int)
	go func() {
		defer close(src)
		for i := 1; i <= 100; i++ {
			src <- i
		}
	}()
	got, _, err := Run(context.Background(), src,
		func(_ context.Context, n int) (int, error) { return n * n, nil },
		func(a, b int) int { return a + b }, 0, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 1; i <= 100; i++ {
		want += i * i
	}
	if got != want {
		t.Errorf("sum of squares = %d, want %d", got, want)
	}
}

func TestManyWorkersFewItems(t *testing.T) {
	got, _, err := RunSlice(context.Background(), []int{5},
		func(_ context.Context, n int) (int, error) { return n, nil },
		func(a, b int) int { return a + b }, 0, Config{Workers: 64})
	if err != nil || got != 5 {
		t.Fatalf("got %d, err %v", got, err)
	}
}

func TestDeterministicAcrossRepeats(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 200; i++ {
		vals = append(vals, value.Obj(
			"k"+fmt.Sprint(i%10), value.Num(float64(i)),
			"common", value.Str("c"),
		))
	}
	mapFn := func(_ context.Context, v value.Value) (types.Type, error) {
		return fusion.Simplify(infer.Infer(v)), nil
	}
	zero := types.Type(types.Empty)
	first, _, err := RunSlice(context.Background(), vals, mapFn, fusion.Fuse, zero, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, _, err := RunSlice(context.Background(), vals, mapFn, fusion.Fuse, zero, Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !types.Equal(first, again) {
			t.Fatalf("run %d differs: %s vs %s", i, again, first)
		}
	}
}

func TestRecorderObservesRun(t *testing.T) {
	reg := obs.NewRegistry()
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	mapFn := func(_ context.Context, n int) (int, error) { return n, nil }
	sum := func(a, b int) int { return a + b }
	got, _, err := RunSlice(context.Background(), items, mapFn, sum, 0, Config{Workers: 3, Recorder: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got != 36 {
		t.Fatalf("sum = %d, want 36", got)
	}
	m := reg.Snapshot()
	if m.Counters["mapreduce_tasks"] != int64(len(items)) {
		t.Errorf("mapreduce_tasks = %d, want %d", m.Counters["mapreduce_tasks"], len(items))
	}
	if m.Gauges["mapreduce_workers"] != 3 {
		t.Errorf("mapreduce_workers = %d, want 3", m.Gauges["mapreduce_workers"])
	}
	if h := m.Histograms["mapreduce_task_ns"]; h.Count != int64(len(items)) {
		t.Errorf("mapreduce_task_ns count = %d, want %d", h.Count, len(items))
	}
	if h := m.Histograms["mapreduce_queue_wait_ns"]; h.Count != int64(len(items)) {
		t.Errorf("mapreduce_queue_wait_ns count = %d, want %d", h.Count, len(items))
	}
	if _, ok := m.Counters["mapreduce_wall_ns"]; !ok {
		t.Error("mapreduce_wall_ns missing")
	}
	// 8 tasks over 3 workers: at least one in-worker combine plus the
	// final fold of <=3 local accumulators must have been timed.
	if h := m.Histograms["mapreduce_combine_ns"]; h.Count < 3 {
		t.Errorf("mapreduce_combine_ns count = %d, want >= 3", h.Count)
	}
}

func TestRecorderResultUnchanged(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	mapFn := func(_ context.Context, n int) (int, error) { return n * n, nil }
	sum := func(a, b int) int { return a + b }
	plain, _, err := RunSlice(context.Background(), items, mapFn, sum, 0, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	observed, _, err := RunSlice(context.Background(), items, mapFn, sum, 0, Config{Workers: 4, Recorder: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if plain != observed {
		t.Fatalf("recorder changed the result: %d vs %d", observed, plain)
	}
}
