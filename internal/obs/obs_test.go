package obs

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Set("g", 7)
	r.Set("g", 4)
	if got := r.Counter("a").Load(); got != 5 {
		t.Errorf("counter a = %d, want 5", got)
	}
	if got := r.Gauge("g").Load(); got != 4 {
		t.Errorf("gauge g = %d, want 4", got)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1<<20 - 1, 20}, {1 << 20, 21}, {1<<62 + 1, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		// Every value must not exceed its bucket's inclusive bound, and
		// must exceed the previous bucket's bound.
		if c.v > BucketBound(c.want) {
			t.Errorf("value %d exceeds bound %d of its bucket %d", c.v, BucketBound(c.want), c.want)
		}
		if c.want > 0 && c.v <= BucketBound(c.want-1) {
			t.Errorf("value %d fits bucket %d, placed in %d", c.v, c.want-1, c.want)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	for _, v := range []int64{1, 1, 3, 100, 0} {
		r.Observe("h", v)
	}
	m := r.Snapshot()
	h, ok := m.Histograms["h"]
	if !ok {
		t.Fatal("histogram h missing from snapshot")
	}
	if h.Count != 5 || h.Sum != 105 {
		t.Errorf("count/sum = %d/%d, want 5/105", h.Count, h.Sum)
	}
	// Buckets: v=0 -> Le 0; 1,1 -> Le 1; 3 -> Le 3; 100 -> Le 127.
	want := []Bucket{{Le: 0, Count: 1}, {Le: 1, Count: 2}, {Le: 3, Count: 1}, {Le: 127, Count: 1}}
	if !reflect.DeepEqual(h.Buckets, want) {
		t.Errorf("buckets = %+v, want %+v", h.Buckets, want)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("events", 1)
				r.Set("last", int64(w))
				r.Observe("lat_ns", int64(i))
			}
		}(w)
	}
	wg.Wait()
	m := r.Snapshot()
	if m.Counters["events"] != 8000 {
		t.Errorf("events = %d, want 8000", m.Counters["events"])
	}
	if h := m.Histograms["lat_ns"]; h.Count != 8000 {
		t.Errorf("lat_ns count = %d, want 8000", h.Count)
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		for i := 0; i < 50; i++ {
			r.Add(fmt.Sprintf("c%d", i%7), int64(i))
			r.Set(fmt.Sprintf("g%d", i%5), int64(i))
			r.Observe(fmt.Sprintf("h%d", i%3), int64(i*i))
		}
		return r
	}
	j1, err := build().Snapshot().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().Snapshot().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("snapshots of identical recording differ:\n%s\n%s", j1, j2)
	}
}
