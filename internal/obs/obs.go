// Package obs is the pipeline's observability layer: atomic counters,
// gauges and fixed-bucket histograms that the map-reduce engine, the
// experiments harness and the top-level inference pipeline record into.
//
// The design follows the same algebraic discipline as type fusion: a
// Registry's Snapshot is a plain value (Metrics) and snapshots merge
// with an associative, commutative Merge — counters add, gauges keep
// the maximum, histograms add bucket-wise — so per-partition metrics
// reduce in any order, exactly like the schemas they describe. The
// merge laws are property-tested next to this package the way the
// fusion laws are tested in internal/fusion.
//
// Everything is stdlib-only and safe for concurrent use. Recording
// costs one mutex-guarded map lookup plus one atomic op per event;
// call sites that need less than that hold the returned *Counter,
// *Gauge or *Histogram and hit the atomics directly. A nil Recorder
// is the universal "don't record" value: every instrumented component
// guards with a single nil check, so the uninstrumented hot path pays
// one predictable branch (benchmarked in the repository root).
//
// Metric naming convention: names are lowercase snake_case, prefixed
// by the recording component (mapreduce_, experiments_, infer_,
// cluster_). Names ending in _ns, _permille, _per_sec carry host
// timing and are stripped by Metrics.WithoutTimings; everything else
// (counts, sizes) is deterministic for a fixed input and
// configuration. See docs/OBSERVABILITY.md for the full inventory.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder receives pipeline measurements. Implementations must be
// safe for concurrent use. A nil Recorder means "don't record";
// instrumented code guards every use with a nil check rather than
// calling through a no-op implementation, keeping the uninstrumented
// path to a single branch.
type Recorder interface {
	// Add increments the named counter by delta.
	Add(name string, delta int64)
	// Set sets the named gauge to value.
	Set(name string, value int64)
	// Observe records one value (a duration in nanoseconds, a size in
	// bytes, a count) into the named histogram.
	Observe(name string, value int64)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic last-value gauge.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(value int64) { g.v.Store(value) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// numBuckets is the fixed bucket count of every Histogram: one bucket
// per bit length of the observed value, so bucket i holds values whose
// 64-bit length is exactly i (upper bound 2^i - 1), and bucket 0 holds
// zero and negative values. Fixed exponential buckets keep snapshots
// deterministic and mergeable without any per-histogram configuration.
const numBuckets = 64

// Histogram is a fixed-bucket exponential histogram of int64 values
// (latencies in nanoseconds, sizes in bytes, ...). The zero value is
// ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket: the number of significant
// bits, with zero and negative values in bucket 0.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns the inclusive upper bound of bucket i
// (2^i - 1; bucket 0 holds v <= 0).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// snapshot captures the histogram's current state. Concurrent Observe
// calls may be torn across count/sum/buckets (each field is atomic,
// the trio is not); quiescent snapshots are exact.
func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			out.Buckets = append(out.Buckets, Bucket{Le: BucketBound(i), Count: n})
		}
	}
	return out
}

// Registry is a named collection of counters, gauges and histograms,
// created on first use. It implements Recorder. The zero value is NOT
// ready to use; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. Hot paths
// hold the result instead of calling Add on the registry.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Add implements Recorder.
func (r *Registry) Add(name string, delta int64) { r.Counter(name).Add(delta) }

// Set implements Recorder.
func (r *Registry) Set(name string, value int64) { r.Gauge(name).Set(value) }

// Observe implements Recorder.
func (r *Registry) Observe(name string, value int64) { r.Histogram(name).Observe(value) }

// Snapshot captures every metric in the registry. The result is
// deterministic for deterministic recorded values: map keys render
// sorted under encoding/json, and histogram buckets are emitted in
// ascending bound order.
func (r *Registry) Snapshot() Metrics {
	r.mu.Lock()
	// Copy the metric pointers so atomic loads happen outside the lock.
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	m := Metrics{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for name, c := range counters {
		m.Counters[name] = c.Load()
	}
	for name, g := range gauges {
		m.Gauges[name] = g.Load()
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.Histograms[name] = hists[name].snapshot()
	}
	return m
}
