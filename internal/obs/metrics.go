package obs

import (
	"encoding/json"
	"sort"
	"strings"
)

// Metrics is a point-in-time snapshot of a Registry: a plain,
// serializable value. Snapshots form a commutative monoid under Merge
// (identity: the zero Metrics), mirroring the fusion algebra the
// pipeline itself is built on, so per-partition metrics can be reduced
// in any order and the result is independent of scheduling.
type Metrics struct {
	// Counters holds monotonic totals; Merge adds them.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges holds last-value measurements; Merge keeps the maximum
	// (the only merge that is commutative, associative and idempotent
	// without retaining per-sample history).
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms holds value distributions; Merge adds bucket-wise.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the frozen state of one Histogram.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum int64 `json:"sum"`
	// Buckets holds the non-empty buckets in ascending bound order.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	// Le is the bucket's inclusive upper bound (2^i - 1 for bucket i;
	// 0 for the bucket of non-positive values).
	Le int64 `json:"le"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
}

// Merge combines two snapshots without mutating either: counters add,
// gauges keep the maximum, histograms add bucket-wise. Merge is
// commutative and associative with the zero Metrics as identity
// (property-tested in metrics_test.go), so snapshots from parallel
// partitions reduce in any order — the same contract as type fusion.
func Merge(a, b Metrics) Metrics {
	out := Metrics{
		Counters:   make(map[string]int64, len(a.Counters)+len(b.Counters)),
		Gauges:     make(map[string]int64, len(a.Gauges)+len(b.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(a.Histograms)+len(b.Histograms)),
	}
	for name, v := range a.Counters {
		out.Counters[name] = v
	}
	for name, v := range b.Counters {
		out.Counters[name] += v
	}
	for name, v := range a.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range b.Gauges {
		if cur, ok := out.Gauges[name]; !ok || v > cur {
			out.Gauges[name] = v
		}
	}
	for name, h := range a.Histograms {
		out.Histograms[name] = cloneHistogram(h)
	}
	for name, h := range b.Histograms {
		out.Histograms[name] = mergeHistograms(out.Histograms[name], h)
	}
	return out
}

func cloneHistogram(h HistogramSnapshot) HistogramSnapshot {
	out := h
	out.Buckets = append([]Bucket(nil), h.Buckets...)
	return out
}

// mergeHistograms adds two snapshots bucket-wise, keeping the ascending
// bound order canonical.
func mergeHistograms(a, b HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	byLe := make(map[int64]int64, len(a.Buckets)+len(b.Buckets))
	for _, bk := range a.Buckets {
		byLe[bk.Le] += bk.Count
	}
	for _, bk := range b.Buckets {
		byLe[bk.Le] += bk.Count
	}
	bounds := make([]int64, 0, len(byLe))
	for le := range byLe {
		bounds = append(bounds, le)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	for _, le := range bounds {
		out.Buckets = append(out.Buckets, Bucket{Le: le, Count: byLe[le]})
	}
	return out
}

// faultSuffixes lists the name suffixes that mark a metric as counting
// failure handling: retries, timeouts, quarantined (skipped) tasks,
// injected faults and simulated crashes. The convention spans the
// recording components — mapreduce_retries, mapreduce_skipped,
// mapreduce_task_timeouts, mapreduce_faults_injected,
// cluster_retried_tasks, cluster_crashed_nodes,
// cluster_retry_lost_virtual — and docs/FAULTS.md documents it.
var faultSuffixes = []string{
	"_retries",
	"_retried_tasks",
	"_skipped",
	"_timeouts",
	"_faults_injected",
	"_crashed_nodes",
	"_retry_lost_virtual",
}

// IsFaultMetric reports whether the named metric counts failure
// handling rather than useful work. A run that suffered only
// transient, successfully retried faults records exactly the same
// non-timing metrics as a clean run EXCEPT these — the equality the
// chaos harness asserts via WithoutFaults.
func IsFaultMetric(name string) bool {
	for _, s := range faultSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// WithoutFaults returns a copy of the snapshot with every
// fault-handling metric removed (see IsFaultMetric). Composed with
// WithoutTimings, what remains must be identical between a clean run
// and a run whose transient faults were all retried to success.
func (m Metrics) WithoutFaults() Metrics {
	out := Metrics{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, v := range m.Counters {
		if !IsFaultMetric(name) {
			out.Counters[name] = v
		}
	}
	for name, v := range m.Gauges {
		if !IsFaultMetric(name) {
			out.Gauges[name] = v
		}
	}
	for name, h := range m.Histograms {
		if !IsFaultMetric(name) {
			out.Histograms[name] = cloneHistogram(h)
		}
	}
	return out
}

// IsCacheMetric reports whether the named metric counts cache
// effectiveness rather than work done: the intern-table counters
// (intern_hits, intern_misses) and the fuse/simplify cache counters
// (fuse_cache_hits, simplify_cache_misses, ...). These are exact only
// on a single-worker fault-free run — concurrent workers can race to
// compute the same entry (shifting the hit/miss split) and retried
// chunks re-intern their types — so determinism comparisons strip them
// via WithoutCache.
func IsCacheMetric(name string) bool {
	return strings.HasPrefix(name, "intern_") || strings.Contains(name, "_cache_")
}

// WithoutCache returns a copy of the snapshot with every
// cache-effectiveness metric removed (see IsCacheMetric). Composed with
// WithoutTimings, what remains must be identical between a dedup run
// and a default run over the same input.
func (m Metrics) WithoutCache() Metrics {
	out := Metrics{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, v := range m.Counters {
		if !IsCacheMetric(name) {
			out.Counters[name] = v
		}
	}
	for name, v := range m.Gauges {
		if !IsCacheMetric(name) {
			out.Gauges[name] = v
		}
	}
	for name, h := range m.Histograms {
		if !IsCacheMetric(name) {
			out.Histograms[name] = cloneHistogram(h)
		}
	}
	return out
}

// IsTimingMetric reports whether the named metric depends on host
// timing rather than on the input alone: by convention such names end
// in _ns (durations), _permille (time-derived ratios) or _per_sec
// (throughputs). Everything else — counts, sizes — is deterministic
// for a fixed input and configuration.
func IsTimingMetric(name string) bool {
	return strings.HasSuffix(name, "_ns") ||
		strings.HasSuffix(name, "_permille") ||
		strings.HasSuffix(name, "_per_sec")
}

// WithoutTimings returns a copy of the snapshot with every
// timing-dependent metric removed (see IsTimingMetric). What remains
// is byte-for-byte reproducible across runs over the same input with
// the same configuration — the determinism tests compare exactly this.
func (m Metrics) WithoutTimings() Metrics {
	out := Metrics{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, v := range m.Counters {
		if !IsTimingMetric(name) {
			out.Counters[name] = v
		}
	}
	for name, v := range m.Gauges {
		if !IsTimingMetric(name) {
			out.Gauges[name] = v
		}
	}
	for name, h := range m.Histograms {
		if !IsTimingMetric(name) {
			out.Histograms[name] = cloneHistogram(h)
		}
	}
	return out
}

// MarshalJSON renders the snapshot deterministically: encoding/json
// sorts map keys and buckets are stored in ascending bound order.
func (m Metrics) MarshalJSON() ([]byte, error) {
	// An alias drops the method set so the default struct encoding
	// applies without recursing into this method.
	type plain Metrics
	return json.Marshal(plain(m))
}
