package obs

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/enrich/monoidtest"
)

// randomMetrics builds a small random snapshot over a fixed name
// alphabet so merges collide on names, the interesting case.
func randomMetrics(r *rand.Rand) Metrics {
	names := []string{"alpha", "beta", "gamma", "delta_ns", "eps_per_sec"}
	m := Metrics{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, n := range names {
		if r.Intn(2) == 0 {
			m.Counters[n] = int64(r.Intn(1000))
		}
		if r.Intn(2) == 0 {
			m.Gauges[n] = int64(r.Intn(1000) - 500)
		}
		if r.Intn(2) == 0 {
			h := HistogramSnapshot{}
			for i := 0; i < r.Intn(5); i++ {
				le := BucketBound(r.Intn(12))
				// Keep bounds unique and ascending.
				if k := len(h.Buckets); k > 0 && h.Buckets[k-1].Le >= le {
					continue
				}
				c := int64(r.Intn(50) + 1)
				h.Buckets = append(h.Buckets, Bucket{Le: le, Count: c})
				h.Count += c
				h.Sum += c * le
			}
			m.Histograms[n] = h
		}
	}
	return m
}

func metricsJSON(t *testing.T, m Metrics) string {
	t.Helper()
	b, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMergeConformance property-tests the snapshot monoid through the
// shared harness: identity, commutativity, associativity, random merge
// trees versus the sequential fold, non-mutation, and serialization
// round-trips — the laws that let per-partition metrics reduce in any
// order. (obs.Merge is pure, which is stricter than the harness's
// may-mutate-first contract; the suite holds a fortiori.)
func TestMergeConformance(t *testing.T) {
	monoidtest.Run(t, monoidtest.Subject{
		Name:  "metrics",
		Empty: func() any { return Metrics{} },
		Rand:  func(r *rand.Rand) any { return randomMetrics(r) },
		Merge: func(a, b any) any { return Merge(a.(Metrics), b.(Metrics)) },
		Fingerprint: func(x any) string {
			return metricsJSON(t, x.(Metrics))
		},
		Marshal: func(x any) ([]byte, error) { return x.(Metrics).MarshalJSON() },
		Unmarshal: func(data []byte) (any, error) {
			var m Metrics
			if err := json.Unmarshal(data, &m); err != nil {
				return nil, err
			}
			return m, nil
		},
	})
}

func TestMergeSemantics(t *testing.T) {
	a := Metrics{
		Counters:   map[string]int64{"c": 3},
		Gauges:     map[string]int64{"g": 10},
		Histograms: map[string]HistogramSnapshot{"h": {Count: 2, Sum: 4, Buckets: []Bucket{{Le: 3, Count: 2}}}},
	}
	b := Metrics{
		Counters:   map[string]int64{"c": 5, "d": 1},
		Gauges:     map[string]int64{"g": 7},
		Histograms: map[string]HistogramSnapshot{"h": {Count: 1, Sum: 9, Buckets: []Bucket{{Le: 15, Count: 1}}}},
	}
	m := Merge(a, b)
	if m.Counters["c"] != 8 || m.Counters["d"] != 1 {
		t.Errorf("counters = %v, want c=8 d=1", m.Counters)
	}
	if m.Gauges["g"] != 10 {
		t.Errorf("gauge g = %d, want max 10", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Sum != 13 || len(h.Buckets) != 2 {
		t.Errorf("histogram = %+v, want count 3 sum 13 two buckets", h)
	}
}

func TestWithoutTimings(t *testing.T) {
	m := Metrics{
		Counters:   map[string]int64{"infer_records": 10, "infer_wall_ns": 123},
		Gauges:     map[string]int64{"mapreduce_workers": 4, "mapreduce_utilization_permille": 900, "infer_bytes_per_sec": 5},
		Histograms: map[string]HistogramSnapshot{"mapreduce_task_ns": {Count: 1}, "infer_chunk_fused_size": {Count: 1}},
	}
	got := m.WithoutTimings()
	if _, ok := got.Counters["infer_wall_ns"]; ok {
		t.Error("timing counter survived WithoutTimings")
	}
	if _, ok := got.Gauges["mapreduce_utilization_permille"]; ok {
		t.Error("permille gauge survived WithoutTimings")
	}
	if _, ok := got.Gauges["infer_bytes_per_sec"]; ok {
		t.Error("per_sec gauge survived WithoutTimings")
	}
	if _, ok := got.Histograms["mapreduce_task_ns"]; ok {
		t.Error("ns histogram survived WithoutTimings")
	}
	if got.Counters["infer_records"] != 10 || got.Gauges["mapreduce_workers"] != 4 {
		t.Error("non-timing metrics were dropped")
	}
	if _, ok := got.Histograms["infer_chunk_fused_size"]; !ok {
		t.Error("size histogram was dropped")
	}
}

func TestIsFaultMetric(t *testing.T) {
	faulty := []string{
		"mapreduce_retries", "mapreduce_skipped", "mapreduce_task_timeouts",
		"mapreduce_faults_injected", "cluster_retried_tasks",
		"cluster_crashed_nodes", "cluster_retry_lost_virtual",
	}
	for _, name := range faulty {
		if !IsFaultMetric(name) {
			t.Errorf("IsFaultMetric(%q) = false, want true", name)
		}
	}
	clean := []string{
		"mapreduce_tasks", "mapreduce_workers", "infer_records",
		"infer_chunks", "cluster_tasks", "cluster_makespan_virtual",
		"experiments_records",
	}
	for _, name := range clean {
		if IsFaultMetric(name) {
			t.Errorf("IsFaultMetric(%q) = true, want false", name)
		}
	}
}

func TestWithoutFaults(t *testing.T) {
	r := NewRegistry()
	r.Add("mapreduce_tasks", 10)
	r.Add("mapreduce_retries", 3)
	r.Add("mapreduce_skipped", 1)
	r.Set("cluster_crashed_nodes", 2)
	r.Set("infer_fused_size", 77)
	r.Observe("infer_chunk_records", 5)
	m := r.Snapshot().WithoutFaults()
	if _, ok := m.Counters["mapreduce_retries"]; ok {
		t.Error("mapreduce_retries survived WithoutFaults")
	}
	if _, ok := m.Counters["mapreduce_skipped"]; ok {
		t.Error("mapreduce_skipped survived WithoutFaults")
	}
	if _, ok := m.Gauges["cluster_crashed_nodes"]; ok {
		t.Error("cluster_crashed_nodes survived WithoutFaults")
	}
	if m.Counters["mapreduce_tasks"] != 10 {
		t.Errorf("mapreduce_tasks = %d, want 10", m.Counters["mapreduce_tasks"])
	}
	if m.Gauges["infer_fused_size"] != 77 {
		t.Errorf("infer_fused_size = %d, want 77", m.Gauges["infer_fused_size"])
	}
	if m.Histograms["infer_chunk_records"].Count != 1 {
		t.Error("clean histogram dropped by WithoutFaults")
	}
	// WithoutFaults must not mutate the receiver.
	orig := r.Snapshot()
	_ = orig.WithoutFaults()
	if _, ok := orig.Counters["mapreduce_retries"]; !ok {
		t.Error("WithoutFaults mutated its receiver")
	}
}
