package schemarepo

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/types"
	"repro/internal/value"
)

func TestEmptyRepo(t *testing.T) {
	r := New()
	if !types.Equal(r.Schema(), types.Empty) {
		t.Errorf("empty repo schema = %s", r.Schema())
	}
	if r.Count() != 0 || len(r.Partitions()) != 0 {
		t.Error("empty repo not empty")
	}
	if _, ok := r.PartitionSchema("nope"); ok {
		t.Error("missing partition reported present")
	}
}

func TestAppendMatchesBatchFusion(t *testing.T) {
	// Incremental fuse-on-insert must equal batch inference — the
	// associativity corollary the paper highlights.
	g, _ := dataset.New("twitter")
	vs := dataset.Values(g, 120, 3)
	r := New()
	batch := types.Type(types.Empty)
	for _, v := range vs {
		r.Append("main", v)
		batch = fusion.Fuse(batch, fusion.Simplify(infer.Infer(v)))
	}
	if !types.Equal(r.Schema(), batch) {
		t.Errorf("incremental %s != batch %s", r.Schema(), batch)
	}
	if r.Count() != 120 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestMultiplePartitionsFuse(t *testing.T) {
	r := New()
	r.Append("p1", value.Obj("a", value.Num(1)))
	r.Append("p2", value.Obj("b", value.Str("x")))
	want := types.MustParse("{a: Num?, b: Str?}")
	if !types.Equal(r.Schema(), want) {
		t.Errorf("Schema = %s, want %s", r.Schema(), want)
	}
	if got := r.Partitions(); len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Errorf("Partitions = %v", got)
	}
	p1, ok := r.PartitionSchema("p1")
	if !ok || !types.Equal(p1, types.MustParse("{a: Num}")) {
		t.Errorf("p1 schema = %s", p1)
	}
}

func TestReplacePartitionOnlyAffectsIt(t *testing.T) {
	r := New()
	r.Append("stable", value.Obj("a", value.Num(1)))
	r.Append("dirty", value.Obj("b", value.Str("old")))
	r.ReplacePartition("dirty", []value.Value{
		value.Obj("c", value.Bool(true)),
		value.Obj("c", value.Bool(false), "d", value.Null{}),
	})
	want := types.MustParse("{a: Num?, c: Bool?, d: Null?}")
	if !types.Equal(r.Schema(), want) {
		t.Errorf("Schema = %s, want %s", r.Schema(), want)
	}
	if r.Count() != 3 {
		t.Errorf("Count = %d, want 3", r.Count())
	}
}

func TestDropPartition(t *testing.T) {
	r := New()
	r.Append("keep", value.Obj("a", value.Num(1)))
	r.Append("drop", value.Obj("b", value.Num(1)))
	r.DropPartition("drop")
	r.DropPartition("never-existed") // no-op
	want := types.MustParse("{a: Num}")
	if !types.Equal(r.Schema(), want) {
		t.Errorf("Schema = %s, want %s", r.Schema(), want)
	}
}

func TestSetPartitionSimplifies(t *testing.T) {
	r := New()
	r.SetPartition("p", types.MustParse("[Num, Str]"), 1)
	got, _ := r.PartitionSchema("p")
	if !types.Equal(got, types.MustParse("[(Num + Str)*]")) {
		t.Errorf("stored schema = %s, want simplified", got)
	}
}

func TestSchemaCachingInvalidation(t *testing.T) {
	r := New()
	r.Append("p", value.Obj("a", value.Num(1)))
	first := r.Schema()
	if again := r.Schema(); !types.Equal(first, again) {
		t.Error("cached schema differs")
	}
	r.Append("p", value.Obj("b", value.Num(2)))
	updated := r.Schema()
	if types.Equal(first, updated) {
		t.Error("schema not invalidated after append")
	}
	if !types.Equal(updated, types.MustParse("{a: Num?, b: Num?}")) {
		t.Errorf("updated schema = %s", updated)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := New()
	g, _ := dataset.New("nytimes")
	for i, v := range dataset.Values(g, 40, 9) {
		r.Append(fmt.Sprintf("part%d", i%3), v)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(r.Schema(), back.Schema()) {
		t.Errorf("loaded schema %s != saved %s", back.Schema(), r.Schema())
	}
	if r.Count() != back.Count() {
		t.Errorf("loaded count %d != saved %d", back.Count(), r.Count())
	}
	if len(back.Partitions()) != 3 {
		t.Errorf("loaded partitions = %v", back.Partitions())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("Load accepted garbage")
	}
	if _, err := Load(strings.NewReader(`{"partitions":[{"name":"p","schema":{"k":"bogus"}}]}`)); err == nil {
		t.Error("Load accepted a bad schema")
	}
}

func TestConcurrentAppends(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			g, _ := dataset.New("mixed")
			for i := 0; i < 50; i++ {
				r.Append(fmt.Sprintf("p%d", w%2), g.Generate(rnd))
			}
		}(w)
	}
	wg.Wait()
	if r.Count() != 400 {
		t.Errorf("Count = %d, want 400", r.Count())
	}
	// The fused schema must describe a subsequent re-fusion of both
	// partition schemas (sanity, not bit-equality, since value sets are
	// random per goroutine schedule... but counts are fixed).
	if types.Equal(r.Schema(), types.Empty) {
		t.Error("schema is ε after 400 appends")
	}
}

func TestIncrementalEqualsPartitionedRefusion(t *testing.T) {
	// Fusing per-partition schemas equals fusing everything at once:
	// the Table 8 strategy's correctness argument.
	g, _ := dataset.New("github")
	vs := dataset.Values(g, 90, 21)
	parts := New()
	for i, v := range vs {
		parts.Append(fmt.Sprintf("part%d", i/30), v)
	}
	single := New()
	for _, v := range vs {
		single.Append("all", v)
	}
	if !types.Equal(parts.Schema(), single.Schema()) {
		t.Errorf("partitioned %s != single %s", parts.Schema(), single.Schema())
	}
}
