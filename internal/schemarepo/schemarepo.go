// Package schemarepo maintains inferred schemas incrementally, the
// capability Sections 1 and 7 of the paper derive from associativity:
//
//   - appending a record to the collection only requires fusing the
//     existing schema with the new record's type;
//   - when a partitioned dataset changes, only the dirty partitions are
//     re-inferred and the per-partition schemas are re-fused — never the
//     whole collection.
//
// The repository keeps one schema per named partition plus the fused
// global schema (computed lazily and cached). All schemas stored here are
// simplified (tuple-free), the invariant the fusion pipeline maintains,
// so fusing them is a pure fold of Fuse. Repositories serialize to JSON
// via the types codec for persistence.
package schemarepo

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/enrich"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/types"
	"repro/internal/value"
)

// Repo is a concurrency-safe incremental schema repository.
type Repo struct {
	mu         sync.Mutex
	partitions map[string]*partition
	cached     types.Type      // fused global schema; nil when stale
	cachedEnr  *enrich.Lattice // fused global enrichment; nil when stale or absent
	enrStale   bool
}

type partition struct {
	schema types.Type
	count  int64
	// enr is the partition's enrichment lattice (docs/ENRICHMENT.md);
	// nil when the partition was built without enrichment. Lattices
	// union under the same any-order guarantee as schemas.
	enr *enrich.Lattice
}

// New returns an empty repository.
func New() *Repo {
	return &Repo{partitions: make(map[string]*partition)}
}

// Append fuses one record into the named partition's schema, creating
// the partition on first use. This is the O(schema-size) insert path the
// paper describes for dynamic JSON sources.
func (r *Repo) Append(part string, v value.Value) {
	r.AppendType(part, fusion.Simplify(infer.Infer(v)))
}

// AppendType fuses an already-inferred type into the named partition.
// The type is simplified first so the repository invariant holds no
// matter where the type came from.
func (r *Repo) AppendType(part string, t types.Type) {
	t = fusion.Simplify(t)
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.partitions[part]
	if p == nil {
		p = &partition{schema: types.Empty}
		r.partitions[part] = p
	}
	p.schema = fusion.Fuse(p.schema, t)
	p.count++
	r.invalidateLocked()
}

// AppendSchema fuses an already-fused schema describing count values
// into the named partition — the bulk insert path: a batch of records
// is inferred once (anywhere — another process, an HTTP client) and
// its schema lands here in one O(schema-size) fuse. By associativity
// this equals appending the batch record by record.
func (r *Repo) AppendSchema(part string, t types.Type, count int64) {
	r.AppendEnriched(part, t, count, nil)
}

// AppendEnriched is AppendSchema carrying the batch's enrichment
// lattice (nil for none). The lattice unions into the partition's
// lattice; Union is pure, so the caller's lattice is never mutated and
// may keep accumulating elsewhere.
func (r *Repo) AppendEnriched(part string, t types.Type, count int64, lat *enrich.Lattice) {
	t = fusion.Simplify(t)
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.partitions[part]
	if p == nil {
		p = &partition{schema: types.Empty}
		r.partitions[part] = p
	}
	p.schema = fusion.Fuse(p.schema, t)
	p.count += count
	if lat != nil {
		p.enr = enrich.Union(p.enr, lat)
	}
	r.invalidateLocked()
}

func (r *Repo) invalidateLocked() {
	r.cached = nil
	r.cachedEnr = nil
	r.enrStale = true
}

// SetPartition replaces a partition's schema wholesale, as after
// re-inferring an updated partition. count records how many values the
// schema describes.
func (r *Repo) SetPartition(part string, schema types.Type, count int64) {
	schema = fusion.Simplify(schema)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.partitions[part] = &partition{schema: schema, count: count}
	r.invalidateLocked()
}

// SetPartitionJSON is SetPartition for a schema in its codec JSON
// encoding (Schema.MarshalJSON of the public API), so callers that only
// hold serialized schemas can feed the repository.
func (r *Repo) SetPartitionJSON(part string, data []byte, count int64) error {
	schema, err := types.UnmarshalJSON(data)
	if err != nil {
		return fmt.Errorf("schemarepo: partition %q: %w", part, err)
	}
	r.SetPartition(part, schema, count)
	return nil
}

// ReplacePartition re-infers a partition from its values, the "re-infer
// the schema for the updated parts" maintenance step of Section 1.
func (r *Repo) ReplacePartition(part string, vs []value.Value) {
	acc := types.Type(types.Empty)
	for _, v := range vs {
		acc = fusion.Fuse(acc, fusion.Simplify(infer.Infer(v)))
	}
	r.SetPartition(part, acc, int64(len(vs)))
}

// DropPartition removes a partition. Dropping an absent partition is a
// no-op.
func (r *Repo) DropPartition(part string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.partitions[part]; ok {
		delete(r.partitions, part)
		r.invalidateLocked()
		return true
	}
	return false
}

// Schema returns the fused schema of all partitions (ε when empty). The
// result is cached until the repository changes; recomputation folds one
// small schema per partition, which is cheap (the Table 8 observation).
func (r *Repo) Schema() types.Type {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cached == nil {
		acc := types.Type(types.Empty)
		for _, name := range r.partitionNamesLocked() {
			acc = fusion.Fuse(acc, r.partitions[name].schema)
		}
		r.cached = acc
	}
	return r.cached
}

// Enrichment returns the union of all partitions' enrichment lattices,
// nil when no partition carries one. Cached like Schema; Union is pure,
// so the cached lattice never aliases a partition's.
func (r *Repo) Enrichment() *enrich.Lattice {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.enrStale {
		var acc *enrich.Lattice
		for _, name := range r.partitionNamesLocked() {
			if p := r.partitions[name]; p.enr != nil {
				acc = enrich.Union(acc, p.enr)
			}
		}
		r.cachedEnr = acc
		r.enrStale = false
	}
	return r.cachedEnr
}

// PartitionSchema returns the named partition's schema and whether the
// partition exists.
func (r *Repo) PartitionSchema(part string) (types.Type, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.partitions[part]
	if !ok {
		return nil, false
	}
	return p.schema, true
}

// PartitionEnrichment returns a copy of the named partition's
// enrichment lattice; nil when the partition is absent or carries none.
// The copy lets the caller keep unioning without racing Append.
func (r *Repo) PartitionEnrichment(part string) *enrich.Lattice {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.partitions[part]
	if !ok || p.enr == nil {
		return nil
	}
	return p.enr.Clone()
}

// PartitionCount returns the number of values the named partition
// describes and whether the partition exists.
func (r *Repo) PartitionCount(part string) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.partitions[part]
	if !ok {
		return 0, false
	}
	return p.count, true
}

// Count returns the total number of values described across partitions.
func (r *Repo) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, p := range r.partitions {
		n += p.count
	}
	return n
}

// Partitions lists partition names in sorted order.
func (r *Repo) Partitions() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.partitionNamesLocked()
}

func (r *Repo) partitionNamesLocked() []string {
	names := make([]string, 0, len(r.partitions))
	for name := range r.partitions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// wireRepo is the serialized form.
type wireRepo struct {
	Partitions []wirePartition `json:"partitions"`
}

type wirePartition struct {
	Name   string          `json:"name"`
	Count  int64           `json:"count"`
	Schema json.RawMessage `json:"schema"`
	// Enrichment is the partition's lattice in its self-describing wire
	// encoding; absent for plain partitions, so snapshots written by
	// older builds load unchanged.
	Enrichment json.RawMessage `json:"enrichment,omitempty"`
}

// Save writes the repository as a JSON document.
func (r *Repo) Save(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var doc wireRepo
	for _, name := range r.partitionNamesLocked() {
		p := r.partitions[name]
		raw, err := types.MarshalJSON(p.schema)
		if err != nil {
			return fmt.Errorf("schemarepo: partition %q: %w", name, err)
		}
		wp := wirePartition{Name: name, Count: p.count, Schema: raw}
		if p.enr != nil {
			enr, err := p.enr.MarshalJSON()
			if err != nil {
				return fmt.Errorf("schemarepo: partition %q enrichment: %w", name, err)
			}
			wp.Enrichment = enr
		}
		doc.Partitions = append(doc.Partitions, wp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("schemarepo: encoding repository: %w", err)
	}
	return nil
}

// Load reads a repository previously written with Save.
func Load(rd io.Reader) (*Repo, error) {
	var doc wireRepo
	if err := json.NewDecoder(rd).Decode(&doc); err != nil {
		return nil, fmt.Errorf("schemarepo: decoding repository: %w", err)
	}
	repo := New()
	for _, wp := range doc.Partitions {
		schema, err := types.UnmarshalJSON(wp.Schema)
		if err != nil {
			return nil, fmt.Errorf("schemarepo: partition %q: %w", wp.Name, err)
		}
		p := &partition{schema: schema, count: wp.Count}
		if len(wp.Enrichment) > 0 {
			lat, err := enrich.UnmarshalLattice(wp.Enrichment)
			if err != nil {
				return nil, fmt.Errorf("schemarepo: partition %q enrichment: %w", wp.Name, err)
			}
			p.enr = lat
		}
		repo.partitions[wp.Name] = p
	}
	repo.enrStale = true
	return repo, nil
}
