package dataset

import (
	"math/rand"

	"repro/internal/value"
)

// mixed is a stress generator that is not in the paper: it mixes all six
// value kinds at the top level and nests aggressively, to exercise every
// branch of the fusion operator (basic/record/array kind collisions,
// mixed-content arrays, empty arrays and records). Used by integration
// tests and the ablation benches.
type mixed struct{}

func newMixed() Generator { return mixed{} }

// Name returns "mixed".
func (mixed) Name() string { return "mixed" }

// Generate produces a top-level value of any kind.
func (mixed) Generate(r *rand.Rand) value.Value {
	return mixedValue(r, 3)
}

func mixedValue(r *rand.Rand, depth int) value.Value {
	max := 8
	if depth <= 0 {
		max = 5
	}
	switch r.Intn(max) {
	case 0:
		return value.Null{}
	case 1:
		return value.Bool(pick(r, 0.5))
	case 2:
		return value.Num(float64(r.Intn(1000)) / 8)
	case 3, 4:
		return value.Str(words(r, r.Intn(5)))
	case 5:
		keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
		var fields []value.Field
		seen := map[string]bool{}
		for i, n := 0, r.Intn(5); i < n; i++ {
			k := keys[r.Intn(len(keys))]
			if seen[k] {
				continue
			}
			seen[k] = true
			fields = append(fields, f(k, mixedValue(r, depth-1)))
		}
		return obj(fields...)
	default:
		out := value.Array{}
		for i, n := 0, r.Intn(5); i < n; i++ {
			out = append(out, mixedValue(r, depth-1))
		}
		return out
	}
}
