package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/value"
)

// eventLog is a discriminator-heavy generator that is not in the paper:
// an application event stream in the style GitHub's event timeline or a
// product analytics feed produce, where every record carries a "type"
// field whose string value selects the payload shape. Five event kinds
// share an envelope (id, type, actor, created_at) and differ in their
// payload fields; a small fraction of records are undiscriminated
// heartbeats (no "type" at all), which exercises the catch-all branch
// of tagged-union inference. Under the default strategy the stream
// fuses into one record with most payload fields optional; under the
// tagged strategy it fuses into variants(type){...} with one exact
// record per event kind (docs/UNIONS.md).
type eventLog struct{}

func newEventLog() Generator { return eventLog{} }

// Name returns "eventlog".
func (eventLog) Name() string { return "eventlog" }

// eventKinds are the observed discriminator values, comfortably below
// the default variant cap of 16.
var eventKinds = []string{"push", "fork", "watch", "issue", "deploy"}

// Generate produces one event record, or a rare heartbeat.
func (eventLog) Generate(r *rand.Rand) value.Value {
	if pick(r, 0.02) {
		// Undiscriminated heartbeat: routed to the catch-all branch.
		return obj(
			f("id", value.Str(hexID(r, 12))),
			f("uptime_s", value.Num(float64(r.Intn(1000000)))),
			f("healthy", value.Bool(pick(r, 0.99))),
		)
	}
	kind := oneOf(r, eventKinds)
	fields := []value.Field{
		f("id", value.Str(hexID(r, 12))),
		f("type", value.Str(kind)),
		f("actor", obj(
			f("login", value.Str(words(r, 1)+hexID(r, 4))),
			f("id", value.Num(float64(1000+r.Intn(4000000)))),
		)),
		f("created_at", value.Str(dateStr(r))),
	}
	switch kind {
	case "push":
		fields = append(fields,
			f("ref", value.Str("refs/heads/"+words(r, 1))),
			f("head", value.Str(hexID(r, 40))),
			f("commits", value.Num(float64(1+r.Intn(20)))),
			f("forced", value.Bool(pick(r, 0.05))),
		)
	case "fork":
		fields = append(fields,
			f("forkee", obj(
				f("full_name", value.Str(words(r, 1)+"/"+words(r, 1))),
				f("private", value.Bool(pick(r, 0.1))),
			)),
		)
	case "watch":
		fields = append(fields,
			f("action", value.Str("started")),
		)
	case "issue":
		fields = append(fields,
			f("action", value.Str(oneOf(r, []string{"opened", "closed", "reopened"}))),
			f("number", value.Num(float64(1+r.Intn(5000)))),
			f("title", value.Str(words(r, 3+r.Intn(6)))),
			f("labels", value.Num(float64(r.Intn(6)))),
		)
	case "deploy":
		fields = append(fields,
			f("environment", value.Str(oneOf(r, []string{"staging", "production"}))),
			f("sha", value.Str(hexID(r, 40))),
			f("status", value.Str(oneOf(r, []string{"pending", "success", "failure"}))),
			f("duration_ms", value.Num(float64(r.Intn(600000)))),
		)
	}
	return obj(fields...)
}

// webhookFeed is the second discriminator-heavy generator: a webhook
// delivery feed keyed by "event", with the per-event payload nested one
// level down in a shared envelope (delivery id, event, signature,
// payload). The discriminator sits next to a payload object rather
// than next to the varying fields themselves, so tagged-union inference
// must split the union at the top level to keep the nested payload
// records from blurring into each other.
type webhookFeed struct{}

func newWebhookFeed() Generator { return webhookFeed{} }

// Name returns "webhook".
func (webhookFeed) Name() string { return "webhook" }

// webhookEvents are the observed "event" values.
var webhookEvents = []string{"order.created", "order.paid", "order.cancelled", "user.signup", "invoice.sent", "refund.issued"}

// Generate produces one webhook delivery record.
func (webhookFeed) Generate(r *rand.Rand) value.Value {
	ev := oneOf(r, webhookEvents)
	var payload value.Value
	switch ev {
	case "order.created":
		payload = obj(
			f("order_id", value.Str(hexID(r, 10))),
			f("items", value.Num(float64(1+r.Intn(12)))),
			f("total_cents", value.Num(float64(100+r.Intn(500000)))),
			f("currency", value.Str(oneOf(r, []string{"USD", "EUR", "JPY"}))),
		)
	case "order.paid":
		payload = obj(
			f("order_id", value.Str(hexID(r, 10))),
			f("method", value.Str(oneOf(r, []string{"card", "transfer", "wallet"}))),
			f("paid_at", value.Str(dateStr(r))),
		)
	case "order.cancelled":
		payload = obj(
			f("order_id", value.Str(hexID(r, 10))),
			f("reason", nullOr(r, 0.3, value.Str(words(r, 4)))),
		)
	case "user.signup":
		payload = obj(
			f("user_id", value.Num(float64(1+r.Intn(9000000)))),
			f("email", value.Str(words(r, 1)+"@"+words(r, 1)+".example")),
			f("referrer", nullOr(r, 0.6, value.Str(words(r, 1)))),
		)
	case "invoice.sent":
		payload = obj(
			f("invoice_id", value.Str(fmt.Sprintf("INV-%06d", r.Intn(1000000)))),
			f("due", value.Str(dateStr(r))),
			f("amount_cents", value.Num(float64(100+r.Intn(900000)))),
		)
	default: // refund.issued
		payload = obj(
			f("order_id", value.Str(hexID(r, 10))),
			f("amount_cents", value.Num(float64(100+r.Intn(500000)))),
			f("partial", value.Bool(pick(r, 0.4))),
		)
	}
	return obj(
		f("delivery", value.Str(hexID(r, 16))),
		f("event", value.Str(ev)),
		f("signature", value.Str("sha256="+hexID(r, 64))),
		f("attempt", value.Num(float64(1+r.Intn(3)))),
		f("payload", payload),
	)
}
