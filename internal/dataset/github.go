package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/value"
)

// gitHub generates pull-request metadata records in the style of the
// paper's GitHub dataset: one million objects "sharing the same top-level
// schema and only varying in their lower-level schema", records only
// (no arrays), nesting depth never greater than four.
//
// Lower-level variation comes from nullable fields (Null vs Str) and
// optional sub-records with a spread of probabilities, so the number of
// distinct inferred types grows with the number of records while the
// fused type stays essentially fixed — the Table 2 shape.
type gitHub struct{}

func newGitHub() Generator { return gitHub{} }

// Name returns "github".
func (gitHub) Name() string { return "github" }

// Generate produces one pull-request record. Nullable fields are
// correlated the way real pull requests are — closed_at and merged_at
// follow the state, the head and base repositories of one pull request
// have the same metadata completeness — so the number of distinct
// type combinations stays moderate at small scales and keeps growing as
// rare combinations surface, the Table 2 trend.
func (gitHub) Generate(r *rand.Rand) value.Value {
	num := r.Intn(9000)
	closed := pick(r, 0.5)
	merged := closed && pick(r, 0.6)
	state := "open"
	if closed {
		state = "closed"
	}
	closedAt := value.Value(value.Null{})
	if closed {
		closedAt = value.Str(dateStr(r))
	}
	mergedAt := value.Value(value.Null{})
	if merged {
		mergedAt = value.Str(dateStr(r))
	}
	// One completeness level drives the nullable repo metadata of both
	// branches (same underlying repository for most pull requests).
	repoQ := r.Float64()
	fields := []value.Field{
		f("id", value.Num(float64(100000+r.Intn(10000000)))),
		f("url", value.Str(fmt.Sprintf("https://api.github.example/repos/%s/%s/pulls/%d", words(r, 1), words(r, 1), num))),
		f("html_url", value.Str(fmt.Sprintf("https://github.example/%s/%s/pull/%d", words(r, 1), words(r, 1), num))),
		f("diff_url", value.Str(fmt.Sprintf("https://github.example/%s/%s/pull/%d.diff", words(r, 1), words(r, 1), num))),
		f("number", value.Num(float64(num))),
		f("state", value.Str(state)),
		f("locked", value.Bool(pick(r, 0.02))),
		f("title", value.Str(words(r, 4+r.Intn(8)))),
		f("body", nullOr(r, 0.08, value.Str(words(r, 20+r.Intn(60))))),
		f("created_at", value.Str(dateStr(r))),
		f("updated_at", value.Str(dateStr(r))),
		f("closed_at", closedAt),
		f("merged_at", mergedAt),
		f("merge_commit_sha", nullOr(r, 0.05, value.Str(hexID(r, 40)))),
		f("user", ghUser(r)),
		f("assignee", ghAssignee(r)),
		f("milestone", ghMilestone(r)),
		f("head", ghBranch(r, repoQ)),
		f("base", ghBranch(r, repoQ)),
		f("_links", obj(
			f("self", obj(f("href", value.Str(fmt.Sprintf("https://api.github.example/pulls/%d", num))))),
			f("html", obj(f("href", value.Str(fmt.Sprintf("https://github.example/pull/%d", num))))),
			f("comments", obj(f("href", value.Str(fmt.Sprintf("https://api.github.example/pulls/%d/comments", num))))),
		)),
	}
	if pick(r, 0.003) {
		fields = append(fields, f("active_lock_reason", value.Str(oneOf(r, []string{"too heated", "resolved", "spam"}))))
	}
	if pick(r, 0.0008) {
		fields = append(fields, f("auto_merge", obj(
			f("merge_method", value.Str("squash")),
			f("commit_title", value.Str(words(r, 5))),
		)))
	}
	return obj(fields...)
}

// ghUser builds a user sub-record (depth 2).
func ghUser(r *rand.Rand) value.Value {
	login := words(r, 1) + hexID(r, 4)
	return obj(
		f("login", value.Str(login)),
		f("id", value.Num(float64(1000+r.Intn(4000000)))),
		f("avatar_url", value.Str("https://avatars.github.example/u/"+hexID(r, 8))),
		f("gravatar_id", value.Str("")),
		f("url", value.Str("https://api.github.example/users/"+login)),
		f("type", value.Str(oneOf(r, []string{"User", "Organization"}))),
		f("site_admin", value.Bool(pick(r, 0.01))),
	)
}

// ghAssignee is null for most pull requests.
func ghAssignee(r *rand.Rand) value.Value {
	if pick(r, 0.06) {
		return ghUser(r)
	}
	return value.Null{}
}

// ghMilestone is present on a small fraction of pull requests; when
// present, its due_on field is itself nullable, giving second-order
// variation.
func ghMilestone(r *rand.Rand) value.Value {
	if !pick(r, 0.03) {
		return value.Null{}
	}
	return obj(
		f("id", value.Num(float64(r.Intn(100000)))),
		f("number", value.Num(float64(r.Intn(200)))),
		f("title", value.Str(words(r, 2))),
		f("description", nullOr(r, 0.3, value.Str(words(r, 8)))),
		f("state", value.Str(oneOf(r, []string{"open", "closed"}))),
		f("due_on", nullOr(r, 0.5, value.Str(dateStr(r)))),
		f("created_at", value.Str(dateStr(r))),
	)
}

// ghBranch builds the head/base sub-record: branch -> repo -> owner is
// the deepest chain (depth 4 from the top-level record).
func ghBranch(r *rand.Rand, repoQ float64) value.Value {
	return obj(
		f("label", value.Str(words(r, 1)+":"+words(r, 1))),
		f("ref", value.Str(words(r, 1))),
		f("sha", value.Str(hexID(r, 40))),
		f("user", ghUser(r)),
		f("repo", ghRepo(r, repoQ)),
	)
}

// ghRepo builds a repository record; a small fraction are null (deleted
// forks), and several of its fields are nullable with distinct rates.
func ghRepo(r *rand.Rand, repoQ float64) value.Value {
	if pick(r, 0.01) {
		return value.Null{} // deleted fork
	}
	name := words(r, 1) + "-" + words(r, 1)
	return obj(
		f("id", value.Num(float64(r.Intn(9000000)))),
		f("name", value.Str(name)),
		f("full_name", value.Str(words(r, 1)+"/"+name)),
		f("owner", ghUser(r)),
		f("private", value.Bool(pick(r, 0.1))),
		f("description", nullIf(repoQ < 0.12, value.Str(words(r, 6+r.Intn(10))))),
		f("fork", value.Bool(pick(r, 0.4))),
		f("homepage", nullIf(repoQ < 0.30, value.Str("https://"+words(r, 1)+".example"))),
		f("language", nullIf(repoQ < 0.08, value.Str(oneOf(r, []string{"Go", "Scala", "Rust", "Python", "C"})))),
		f("mirror_url", nullOr(r, 0.998, value.Str("git://mirror.example/"+name))),
		f("size", value.Num(float64(r.Intn(500000)))),
		f("stargazers_count", value.Num(float64(r.Intn(80000)))),
		f("watchers_count", value.Num(float64(r.Intn(80000)))),
		f("forks_count", value.Num(float64(r.Intn(20000)))),
		f("open_issues_count", value.Num(float64(r.Intn(2000)))),
		f("default_branch", value.Str(oneOf(r, []string{"master", "main", "develop"}))),
		f("created_at", value.Str(dateStr(r))),
		f("pushed_at", nullOr(r, 0.02, value.Str(dateStr(r)))),
	)
}
