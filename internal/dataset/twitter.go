package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/value"
)

// twitter generates records in the style of the paper's Twitter stream
// dataset: a majority of tweet entities plus "a tiny fraction" of delete
// records, "five different top-level schemas sharing common parts",
// arrays of records, and a maximum nesting level of 3 for the common
// shapes. Arrays of entity records with varying lengths make the number
// of distinct tuple types grow quickly, which the fusion phase collapses
// into repeated types — the behaviour Table 3 measures.
type twitter struct{}

func newTwitter() Generator { return twitter{} }

// Name returns "twitter".
func (twitter) Name() string { return "twitter" }

// Generate produces one stream record: tweet (~93.5%), delete (~3%),
// retweet-of-status wrapper, scrub_geo, limit, or status withheld notice.
func (twitter) Generate(r *rand.Rand) value.Value {
	switch x := r.Float64(); {
	case x < 0.03:
		return twDelete(r)
	case x < 0.05:
		return twScrubGeo(r)
	case x < 0.06:
		return twLimit(r)
	case x < 0.065:
		return twWithheld(r)
	default:
		return twTweet(r, true)
	}
}

// twTweet builds a tweet entity; allowNested controls whether this tweet
// may embed a retweeted_status (the embedded one may not, bounding the
// nesting depth like the real API does).
func twTweet(r *rand.Rand, allowNested bool) value.Value {
	id := 100000000000 + r.Int63n(900000000000)
	// The three in_reply_to fields are null together or present together,
	// as in the real API.
	reply := pick(r, 0.3)
	fields := []value.Field{
		f("created_at", value.Str(dateStr(r))),
		f("id", value.Num(float64(id))),
		f("id_str", value.Str(fmt.Sprintf("%d", id))),
		f("text", value.Str(words(r, 5+r.Intn(15)))),
		f("source", value.Str("<a href=\"https://client.example\">"+words(r, 2)+"</a>")),
		f("truncated", value.Bool(pick(r, 0.1))),
		f("in_reply_to_status_id", nullIf(!reply, value.Num(float64(r.Int63n(1e12))))),
		f("in_reply_to_user_id", nullIf(!reply, value.Num(float64(r.Int63n(1e9))))),
		f("in_reply_to_screen_name", nullIf(!reply, value.Str(words(r, 1)))),
		f("user", twUser(r)),
		f("geo", value.Null{}),
		f("coordinates", twCoordinates(r)),
		f("place", twPlace(r)),
		f("contributors", value.Null{}),
		f("retweet_count", value.Num(float64(r.Intn(10000)))),
		f("favorite_count", value.Num(float64(r.Intn(5000)))),
		f("entities", twEntities(r, allowNested)),
		f("favorited", value.Bool(false)),
		f("retweeted", value.Bool(false)),
		f("filter_level", value.Str("low")),
		f("lang", value.Str(oneOf(r, []string{"en", "fr", "es", "de", "ja", "und"}))),
		f("timestamp_ms", value.Str(fmt.Sprintf("%d", 1400000000000+r.Int63n(100000000000)))),
	}
	if allowNested && pick(r, 0.25) {
		fields = append(fields, f("retweeted_status", twTweet(r, false)))
	}
	if pick(r, 0.08) {
		fields = append(fields, f("extended_tweet", obj(
			f("full_text", value.Str(words(r, 30+r.Intn(20)))),
			f("display_text_range", value.Arr(value.Num(0), value.Num(float64(140+r.Intn(140))))),
		)))
	}
	if pick(r, 0.04) {
		fields = append(fields, f("possibly_sensitive", value.Bool(pick(r, 0.5))))
	}
	return obj(fields...)
}

// twUser builds the user sub-record carried by every tweet.
func twUser(r *rand.Rand) value.Value {
	id := r.Int63n(1e9)
	// One profile-completeness level drives the nullable profile fields.
	profile := r.Float64()
	return obj(
		f("id", value.Num(float64(id))),
		f("id_str", value.Str(fmt.Sprintf("%d", id))),
		f("name", value.Str(words(r, 2))),
		f("screen_name", value.Str(words(r, 1)+hexID(r, 3))),
		f("location", nullIf(profile < 0.40, value.Str(words(r, 2)))),
		f("url", nullIf(profile < 0.60, value.Str("https://"+words(r, 1)+".example"))),
		f("description", nullIf(profile < 0.30, value.Str(words(r, 8)))),
		f("protected", value.Bool(pick(r, 0.05))),
		f("verified", value.Bool(pick(r, 0.02))),
		f("followers_count", value.Num(float64(r.Intn(1000000)))),
		f("friends_count", value.Num(float64(r.Intn(5000)))),
		f("statuses_count", value.Num(float64(r.Intn(200000)))),
		f("created_at", value.Str(dateStr(r))),
		f("geo_enabled", value.Bool(pick(r, 0.3))),
		f("lang", nullIf(profile < 0.20, value.Str(oneOf(r, []string{"en", "fr", "es"})))),
	)
}

// twCoordinates is null for most tweets; when present it is a record
// holding an array of numbers.
func twCoordinates(r *rand.Rand) value.Value {
	if !pick(r, 0.02) {
		return value.Null{}
	}
	return obj(
		f("type", value.Str("Point")),
		f("coordinates", value.Arr(
			value.Num(float64(r.Intn(360)-180)+r.Float64()),
			value.Num(float64(r.Intn(180)-90)+r.Float64()),
		)),
	)
}

// twPlace is null for most tweets.
func twPlace(r *rand.Rand) value.Value {
	if !pick(r, 0.03) {
		return value.Null{}
	}
	return obj(
		f("id", value.Str(hexID(r, 16))),
		f("place_type", value.Str(oneOf(r, []string{"city", "admin", "country"}))),
		f("name", value.Str(words(r, 1))),
		f("full_name", value.Str(words(r, 2))),
		f("country_code", value.Str(oneOf(r, []string{"US", "FR", "JP", "BR"}))),
		f("country", value.Str(words(r, 1))),
	)
}

// twEntities builds the entities record: arrays of records with varying
// lengths (including empty), the main source of tuple-type variety.
func twEntities(r *rand.Rand, rich bool) value.Value {
	maxTags, maxURLs, maxMentions := 4, 3, 3
	if !rich {
		// Embedded (retweeted) tweets carry trimmed entities so nesting
		// does not square the number of distinct types.
		maxTags, maxURLs, maxMentions = 2, 1, 2
	}
	hashtags := value.Array{}
	for i, n := 0, r.Intn(maxTags); i < n; i++ {
		hashtags = append(hashtags, obj(
			f("text", value.Str(words(r, 1))),
			f("indices", value.Arr(value.Num(float64(r.Intn(100))), value.Num(float64(r.Intn(140))))),
		))
	}
	urls := value.Array{}
	for i, n := 0, r.Intn(maxURLs); i < n; i++ {
		urls = append(urls, obj(
			f("url", value.Str("https://t.example/"+hexID(r, 8))),
			f("expanded_url", value.Str("https://"+words(r, 1)+".example/"+hexID(r, 6))),
			f("display_url", value.Str(words(r, 1)+".example")),
			f("indices", value.Arr(value.Num(float64(r.Intn(100))), value.Num(float64(r.Intn(140))))),
		))
	}
	mentions := value.Array{}
	for i, n := 0, r.Intn(maxMentions); i < n; i++ {
		mid := r.Int63n(1e9)
		mentions = append(mentions, obj(
			f("screen_name", value.Str(words(r, 1))),
			f("name", value.Str(words(r, 2))),
			f("id", value.Num(float64(mid))),
			f("id_str", value.Str(fmt.Sprintf("%d", mid))),
			f("indices", value.Arr(value.Num(float64(r.Intn(100))), value.Num(float64(r.Intn(140))))),
		))
	}
	fields := []value.Field{
		f("hashtags", hashtags),
		f("urls", urls),
		f("user_mentions", mentions),
		f("symbols", value.Array{}),
	}
	if rich && pick(r, 0.06) {
		media := value.Array{}
		for i, n := 0, 1+r.Intn(2); i < n; i++ {
			media = append(media, obj(
				f("id", value.Num(float64(r.Int63n(1e12)))),
				f("media_url", value.Str("https://pbs.example/media/"+hexID(r, 10))),
				f("type", value.Str("photo")),
				f("w", value.Num(float64(340+r.Intn(800)))),
				f("h", value.Num(float64(226+r.Intn(500)))),
			))
		}
		fields = append(fields, f("media", media))
	}
	return obj(fields...)
}

// twDelete builds the "status deletion notice" record, the smallest
// top-level shape in the stream (the paper's Table 3 min size).
func twDelete(r *rand.Rand) value.Value {
	id := r.Int63n(1e12)
	uid := r.Int63n(1e9)
	return obj(
		f("delete", obj(
			f("status", obj(
				f("id", value.Num(float64(id))),
				f("id_str", value.Str(fmt.Sprintf("%d", id))),
				f("user_id", value.Num(float64(uid))),
				f("user_id_str", value.Str(fmt.Sprintf("%d", uid))),
			)),
			f("timestamp_ms", value.Str(fmt.Sprintf("%d", 1400000000000+r.Int63n(1e11)))),
		)),
	)
}

// twScrubGeo builds the geo-scrubbing notice shape.
func twScrubGeo(r *rand.Rand) value.Value {
	uid := r.Int63n(1e9)
	sid := r.Int63n(1e12)
	return obj(
		f("scrub_geo", obj(
			f("user_id", value.Num(float64(uid))),
			f("user_id_str", value.Str(fmt.Sprintf("%d", uid))),
			f("up_to_status_id", value.Num(float64(sid))),
			f("up_to_status_id_str", value.Str(fmt.Sprintf("%d", sid))),
		)),
	)
}

// twLimit builds the rate-limit notice shape.
func twLimit(r *rand.Rand) value.Value {
	return obj(
		f("limit", obj(
			f("track", value.Num(float64(r.Intn(100000)))),
			f("timestamp_ms", value.Str(fmt.Sprintf("%d", 1400000000000+r.Int63n(1e11)))),
		)),
	)
}

// twWithheld builds the status-withheld notice shape; the country list
// length varies, exercising tuple fusion at the top level.
func twWithheld(r *rand.Rand) value.Value {
	countries := value.Array{}
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		countries = append(countries, value.Str(oneOf(r, []string{"DE", "FR", "TR", "IN"})))
	}
	return obj(
		f("status_withheld", obj(
			f("id", value.Num(float64(r.Int63n(1e12)))),
			f("user_id", value.Num(float64(r.Int63n(1e9)))),
			f("withheld_in_countries", countries),
		)),
	)
}
