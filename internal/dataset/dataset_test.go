package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/stats"
	"repro/internal/types"
	"repro/internal/value"
)

func TestNewKnownAndUnknown(t *testing.T) {
	for _, name := range Names() {
		g, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if g.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, g.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("New(bogus) should fail")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	want := []string{"github", "twitter", "wikidata", "nytimes", "eventlog", "mixed", "webhook"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	if len(PaperNames()) != 4 {
		t.Fatalf("PaperNames = %v", PaperNames())
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		g1, _ := New(name)
		g2, _ := New(name)
		b1 := NDJSON(g1, 50, 42)
		b2 := NDJSON(g2, 50, 42)
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: same seed produced different bytes", name)
		}
		g3, _ := New(name)
		b3 := NDJSON(g3, 50, 43)
		if bytes.Equal(b1, b3) {
			t.Errorf("%s: different seeds produced identical bytes", name)
		}
	}
}

func TestPrefixProperty(t *testing.T) {
	// The 1K dataset must be a prefix of the 10K dataset (the paper's
	// sub-datasets are subsets of the originals).
	for _, name := range Names() {
		g1, _ := New(name)
		g2, _ := New(name)
		small := NDJSON(g1, 20, 7)
		big := NDJSON(g2, 60, 7)
		if !bytes.HasPrefix(big, small) {
			t.Errorf("%s: smaller dataset is not a prefix of the larger one", name)
		}
	}
}

func TestGeneratedJSONIsValid(t *testing.T) {
	for _, name := range Names() {
		g, _ := New(name)
		data := NDJSON(g, 200, 1)
		vs, err := jsontext.ParseAll(data)
		if err != nil {
			t.Errorf("%s: generated NDJSON does not parse: %v", name, err)
			continue
		}
		if len(vs) != 200 {
			t.Errorf("%s: parsed %d values, want 200", name, len(vs))
		}
	}
}

func TestValuesMatchesNDJSON(t *testing.T) {
	for _, name := range Names() {
		g1, _ := New(name)
		g2, _ := New(name)
		vs := Values(g1, 30, 5)
		parsed, err := jsontext.ParseAll(NDJSON(g2, 30, 5))
		if err != nil {
			t.Fatal(err)
		}
		for i := range vs {
			if !value.Equal(vs[i], parsed[i]) {
				t.Errorf("%s record %d: Values and NDJSON disagree", name, i)
				break
			}
		}
	}
}

func TestWriteNDJSONCountsBytes(t *testing.T) {
	g, _ := New("twitter")
	var buf bytes.Buffer
	n, err := WriteNDJSON(&buf, g, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	if lines := jsontext.CountLines(buf.Bytes()); lines != 25 {
		t.Errorf("wrote %d lines, want 25", lines)
	}
}

func TestGitHubStructuralProperties(t *testing.T) {
	g, _ := New("github")
	vs := Values(g, 300, 11)
	for i, v := range vs {
		rec, ok := v.(*value.Record)
		if !ok {
			t.Fatalf("record %d is not a JSON object", i)
		}
		// Same top-level schema for all records (paper: homogeneous).
		for _, key := range []string{"id", "url", "state", "title", "user", "head", "base", "_links"} {
			if !rec.Has(key) {
				t.Fatalf("record %d lacks top-level key %q", i, key)
			}
		}
		// No arrays anywhere (paper: "Arrays are not used at all").
		var findArray func(value.Value) bool
		findArray = func(v value.Value) bool {
			switch vv := v.(type) {
			case value.Array:
				return true
			case *value.Record:
				for _, f := range vv.Fields() {
					if findArray(f.Value) {
						return true
					}
				}
			}
			return false
		}
		if findArray(v) {
			t.Fatalf("record %d contains an array", i)
		}
		// Nesting depth never greater than four (record levels).
		if d := recordDepth(v); d > 4 {
			t.Fatalf("record %d has record depth %d > 4", i, d)
		}
	}
}

// recordDepth counts nesting levels of records only, the way the paper
// reports dataset nesting (arrays are transparent).
func recordDepth(v value.Value) int {
	switch vv := v.(type) {
	case *value.Record:
		max := 0
		for _, f := range vv.Fields() {
			if d := recordDepth(f.Value); d > max {
				max = d
			}
		}
		return 1 + max
	case value.Array:
		max := 0
		for _, e := range vv {
			if d := recordDepth(e); d > max {
				max = d
			}
		}
		return max
	default:
		return 0
	}
}

func TestTwitterStructuralProperties(t *testing.T) {
	g, _ := New("twitter")
	vs := Values(g, 2000, 13)
	shapes := map[string]int{}
	deletes := 0
	hasArrayOfRecords := false
	for _, v := range vs {
		rec := v.(*value.Record)
		switch {
		case rec.Has("delete"):
			shapes["delete"]++
			deletes++
		case rec.Has("scrub_geo"):
			shapes["scrub_geo"]++
		case rec.Has("limit"):
			shapes["limit"]++
		case rec.Has("status_withheld"):
			shapes["status_withheld"]++
		default:
			shapes["tweet"]++
			ents := rec.Get("entities").(*value.Record)
			if hts, ok := ents.Get("hashtags").(value.Array); ok && len(hts) > 0 {
				if _, ok := hts[0].(*value.Record); ok {
					hasArrayOfRecords = true
				}
			}
		}
	}
	// Five different top-level schemas (paper).
	if len(shapes) != 5 {
		t.Errorf("top-level shapes = %v, want 5 kinds", shapes)
	}
	// Deletes are a tiny fraction (~3%).
	frac := float64(deletes) / float64(len(vs))
	if frac < 0.01 || frac > 0.08 {
		t.Errorf("delete fraction = %.3f, want around 0.03", frac)
	}
	if !hasArrayOfRecords {
		t.Error("no arrays of records found (hashtag entities)")
	}
}

func TestWikidataStructuralProperties(t *testing.T) {
	g, _ := New("wikidata")
	vs := Values(g, 300, 17)
	keyVariety := map[string]bool{}
	for i, v := range vs {
		rec := v.(*value.Record)
		claims, ok := rec.Get("claims").(*value.Record)
		if !ok {
			t.Fatalf("record %d has no claims object", i)
		}
		// Ids-as-keys: claim keys are property identifiers.
		for _, k := range claims.Keys() {
			if !strings.HasPrefix(k, "P") {
				t.Fatalf("claim key %q is not a property id", k)
			}
			keyVariety[k] = true
		}
		if d := recordDepth(v); d > 6 {
			t.Fatalf("record %d has record depth %d > 6", i, d)
		}
	}
	// Many distinct property keys across records: the fusion-defeating
	// pattern. 300 records should surface well over 30 distinct ids.
	if len(keyVariety) < 30 {
		t.Errorf("only %d distinct property keys", len(keyVariety))
	}
}

func TestNYTimesStructuralProperties(t *testing.T) {
	g, _ := New("nytimes")
	vs := Values(g, 800, 19)
	pageKinds := map[value.Kind]bool{}
	headlineShapes := map[string]bool{}
	bylineKinds := map[value.Kind]bool{}
	for i, v := range vs {
		rec := v.(*value.Record)
		// Fixed first level.
		for _, key := range []string{"web_url", "snippet", "lead_paragraph", "headline", "keywords", "pub_date", "byline", "_id", "word_count"} {
			if !rec.Has(key) {
				t.Fatalf("record %d lacks first-level key %q", i, key)
			}
		}
		pageKinds[rec.Get("print_page").Kind()] = true
		hl := rec.Get("headline").(*value.Record)
		headlineShapes[strings.Join(hl.Keys(), ",")] = true
		bylineKinds[rec.Get("byline").Kind()] = true
	}
	// The Num+Str mixing the paper describes.
	if !pageKinds[value.KindNum] || !pageKinds[value.KindStr] {
		t.Errorf("print_page kinds = %v, want both Num and Str", pageKinds)
	}
	// Varying headline sub-fields.
	if len(headlineShapes) < 3 {
		t.Errorf("headline shapes = %v, want >= 3 variants", headlineShapes)
	}
	// Byline varies across Null, Str and Record.
	if len(bylineKinds) < 3 {
		t.Errorf("byline kinds = %v, want 3", bylineKinds)
	}
}

func TestRelativeRecordSizes(t *testing.T) {
	// Byte-size ordering mirrors the paper's Table 1 per-record sizes:
	// NYTimes and GitHub records are large, Twitter records are small.
	size := map[string]int{}
	for _, name := range PaperNames() {
		g, _ := New(name)
		size[name] = len(NDJSON(g, 200, 23)) / 200
	}
	if !(size["nytimes"] > size["wikidata"] && size["github"] > size["wikidata"] && size["wikidata"] > size["twitter"]/1) {
		// twitter records are the smallest of the four on average
		t.Errorf("per-record sizes = %v, want nytimes,github > wikidata > twitter-ish ordering", size)
	}
	if size["twitter"] > size["github"] {
		t.Errorf("twitter records (%d B) should be smaller than github (%d B)", size["twitter"], size["github"])
	}
}

func TestFusedShapesPerDataset(t *testing.T) {
	// The qualitative Table 2-5 behaviour at small scale.
	fuse := func(name string, n int) (distinct int, avg float64, fused types.Type) {
		g, _ := New(name)
		var sum stats.Summary
		acc := types.Type(types.Empty)
		for _, v := range Values(g, n, 29) {
			tt := infer.Infer(v)
			sum.Add(tt)
			acc = fusion.Fuse(acc, fusion.Simplify(tt))
		}
		return sum.Distinct(), sum.AvgSize(), acc
	}

	// GitHub: succinct fusion, ratio fused/avg below ~1.4.
	distinct, avg, fused := fuse("github", 400)
	if ratio := float64(fused.Size()) / avg; ratio > 1.5 {
		t.Errorf("github fused/avg = %.2f, want <= ~1.4", ratio)
	}
	if distinct < 5 {
		t.Errorf("github distinct types = %d, implausibly few", distinct)
	}

	// Twitter: ratio below ~4.
	_, avg, fused = fuse("twitter", 400)
	if ratio := float64(fused.Size()) / avg; ratio > 4.5 {
		t.Errorf("twitter fused/avg = %.2f, want <= ~4", ratio)
	}

	// Wikidata: fused type much bigger than the average input (ids as
	// keys defeat fusion).
	_, avg, fused = fuse("wikidata", 400)
	if ratio := float64(fused.Size()) / avg; ratio < 3 {
		t.Errorf("wikidata fused/avg = %.2f, want large (>3)", ratio)
	}

	// NYTimes: fused type far below the max input type.
	g, _ := New("nytimes")
	var sum stats.Summary
	acc := types.Type(types.Empty)
	for _, v := range Values(g, 400, 29) {
		tt := infer.Infer(v)
		sum.Add(tt)
		acc = fusion.Fuse(acc, fusion.Simplify(tt))
	}
	if acc.Size() >= sum.MaxSize() {
		t.Errorf("nytimes fused size %d should be below max inferred size %d", acc.Size(), sum.MaxSize())
	}
}

func TestDistinctTypesGrowWithScale(t *testing.T) {
	for _, name := range []string{"github", "twitter", "wikidata", "nytimes"} {
		count := func(n int) int {
			g, _ := New(name)
			var sum stats.Summary
			for _, v := range Values(g, n, 31) {
				sum.Add(infer.Infer(v))
			}
			return sum.Distinct()
		}
		small, big := count(100), count(1000)
		if big <= small {
			t.Errorf("%s: distinct types did not grow with scale (%d -> %d)", name, small, big)
		}
	}
}

func TestWikidataDistinctNearCount(t *testing.T) {
	// Nearly every Wikidata record has its own type (paper: 999 distinct
	// types in 1K records).
	g, _ := New("wikidata")
	var sum stats.Summary
	for _, v := range Values(g, 500, 37) {
		sum.Add(infer.Infer(v))
	}
	if frac := float64(sum.Distinct()) / 500; frac < 0.9 {
		t.Errorf("wikidata distinct fraction = %.2f, want >= 0.9", frac)
	}
}
