package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/value"
)

// wikidata generates entity records in the style of the paper's Wikidata
// snapshot: facts that follow a fixed logical schema but "suffer from a
// poor design" — language codes, property identifiers and site names are
// encoded directly as record keys instead of as values of an id field.
// Key-directed fusion cannot collapse what never shares keys, so the
// fused type keeps growing with the number of records, which is exactly
// the degraded behaviour Table 4 reports. Nesting reaches 6 record
// levels (entity -> claims -> claim -> mainsnak -> datavalue -> value).
type wikidata struct {
	langs []string
	props []string
	sites []string
	// zipf samplers are bound to the record stream's rand so generation
	// stays a pure function of (seed, index); they are rebuilt whenever
	// a different rand is supplied.
	boundTo *rand.Rand
	langZ   *rand.Zipf
	propZ   *rand.Zipf
	siteZ   *rand.Zipf
}

func newWikidata() Generator {
	w := &wikidata{}
	// Plausible language codes: two-letter combinations.
	for i := 0; i < 180; i++ {
		w.langs = append(w.langs, fmt.Sprintf("%c%c", 'a'+(i*7)%26, 'a'+(i*13+3)%26))
	}
	// Property identifiers P1..P3000.
	for i := 1; i <= 3000; i++ {
		w.props = append(w.props, fmt.Sprintf("P%d", i))
	}
	// Site keys such as "aawiki".
	for i := 0; i < 60; i++ {
		w.sites = append(w.sites, fmt.Sprintf("%c%cwiki", 'a'+(i*5)%26, 'a'+(i*11+7)%26))
	}
	return w
}

// Name returns "wikidata".
func (*wikidata) Name() string { return "wikidata" }

// Generate produces one entity record.
func (w *wikidata) Generate(r *rand.Rand) value.Value {
	if w.boundTo != r {
		w.boundTo = r
		w.langZ = rand.NewZipf(r, 1.4, 1, uint64(len(w.langs)-1))
		w.propZ = rand.NewZipf(r, 1.3, 1, uint64(len(w.props)-1))
		w.siteZ = rand.NewZipf(r, 1.5, 1, uint64(len(w.sites)-1))
	}
	id := fmt.Sprintf("Q%d", 1+r.Intn(20000000))
	return obj(
		f("id", value.Str(id)),
		f("type", value.Str("item")),
		f("labels", w.langMap(r, 1+r.Intn(10), func() value.Value { return w.langValue(r) })),
		f("descriptions", w.langMap(r, r.Intn(6), func() value.Value { return w.langValue(r) })),
		f("aliases", w.langMap(r, r.Intn(3), func() value.Value { return w.aliasList(r) })),
		f("claims", w.claims(r, id)),
		f("sitelinks", w.sitelinks(r)),
		f("lastrevid", value.Num(float64(r.Intn(400000000)))),
		f("modified", value.Str(dateStr(r))),
	)
}

// langMap builds a record whose KEYS are language codes — the
// ids-as-keys anti-pattern the paper calls out.
func (w *wikidata) langMap(r *rand.Rand, n int, mk func() value.Value) value.Value {
	fields := make([]value.Field, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		lang := w.langs[w.langZ.Uint64()]
		if seen[lang] {
			continue
		}
		seen[lang] = true
		fields = append(fields, f(lang, mk()))
	}
	return obj(fields...)
}

// langValue is the {language, value} leaf of labels and descriptions.
func (w *wikidata) langValue(r *rand.Rand) value.Value {
	return obj(
		f("language", value.Str(w.langs[r.Intn(len(w.langs))])),
		f("value", value.Str(words(r, 1+r.Intn(4)))),
	)
}

// aliasList is an array of {language, value} records.
func (w *wikidata) aliasList(r *rand.Rand) value.Value {
	out := value.Array{}
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		out = append(out, w.langValue(r))
	}
	return out
}

// claims builds the claims record: property ids as keys, each holding an
// array of statement records.
func (w *wikidata) claims(r *rand.Rand, entity string) value.Value {
	n := 1 + r.Intn(8)
	fields := make([]value.Field, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		prop := w.props[w.propZ.Uint64()]
		if seen[prop] {
			continue
		}
		seen[prop] = true
		stmts := value.Array{}
		for j, m := 0, 1+r.Intn(2); j < m; j++ {
			stmts = append(stmts, w.statement(r, entity, prop))
		}
		fields = append(fields, f(prop, stmts))
	}
	return obj(fields...)
}

// statement builds one claim statement; qualifiers appear on a fraction
// of statements and nest another property-keyed record.
func (w *wikidata) statement(r *rand.Rand, entity, prop string) value.Value {
	fields := []value.Field{
		f("mainsnak", w.snak(r, prop)),
		f("type", value.Str("statement")),
		f("id", value.Str(entity+"$"+hexID(r, 12))),
		f("rank", value.Str(oneOf(r, []string{"normal", "normal", "normal", "preferred", "deprecated"}))),
	}
	if pick(r, 0.15) {
		// Qualifier snaks always carry flat string datavalues so the
		// total record nesting stays within the dataset's 6 levels.
		qprop := w.props[w.propZ.Uint64()]
		fields = append(fields, f("qualifiers", obj(
			f(qprop, value.Arr(obj(
				f("snaktype", value.Str("value")),
				f("property", value.Str(qprop)),
				f("datavalue", obj(
					f("value", value.Str(words(r, 2))),
					f("type", value.Str("string")),
				)),
			))),
		)))
	}
	return obj(fields...)
}

// snak builds a property-value node. The datavalue's shape depends on a
// per-property datatype (stable across records, like the real data), and
// "novalue" snaks omit datavalue entirely — a lower-level optional field.
func (w *wikidata) snak(r *rand.Rand, prop string) value.Value {
	fields := []value.Field{
		f("snaktype", value.Str("value")),
		f("property", value.Str(prop)),
	}
	if pick(r, 0.03) {
		fields[0] = f("snaktype", value.Str("novalue"))
		return obj(fields...)
	}
	// Stable per-property datatype: hash the property name.
	h := 0
	for _, c := range prop {
		h = h*31 + int(c)
	}
	var dv value.Value
	switch h % 4 {
	case 0:
		dv = obj(f("value", value.Str(words(r, 2))), f("type", value.Str("string")))
	case 1:
		dv = obj(
			f("value", obj(
				f("entity-type", value.Str("item")),
				f("numeric-id", value.Num(float64(1+r.Intn(1000000)))),
			)),
			f("type", value.Str("wikibase-entityid")),
		)
	case 2:
		dv = obj(
			f("value", obj(
				f("time", value.Str("+"+dateStr(r))),
				f("timezone", value.Num(0)),
				f("precision", value.Num(float64(9+r.Intn(3)))),
			)),
			f("type", value.Str("time")),
		)
	default:
		dv = obj(
			f("value", obj(
				f("amount", value.Str(fmt.Sprintf("+%d", r.Intn(100000)))),
				f("unit", value.Str("1")),
			)),
			f("type", value.Str("quantity")),
		)
	}
	fields = append(fields, f("datavalue", dv))
	return obj(fields...)
}

// sitelinks builds the sitelinks record: wiki names as keys.
func (w *wikidata) sitelinks(r *rand.Rand) value.Value {
	n := r.Intn(5)
	fields := make([]value.Field, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		site := w.sites[w.siteZ.Uint64()]
		if seen[site] {
			continue
		}
		seen[site] = true
		badges := value.Array{}
		if pick(r, 0.05) {
			badges = append(badges, value.Str("Q17437796"))
		}
		fields = append(fields, f(site, obj(
			f("site", value.Str(site)),
			f("title", value.Str(words(r, 1+r.Intn(3)))),
			f("badges", badges),
		)))
	}
	return obj(fields...)
}
