// Package dataset provides deterministic synthetic generators standing in
// for the four real datasets of the paper's evaluation (Section 6.1):
// GitHub pull-request metadata, the Twitter stream, Wikidata entities,
// and NYTimes article metadata. Each generator reproduces the structural
// properties the paper describes and credits for its results:
//
//   - GitHub: homogeneous records, nesting <= 4, no arrays, variation
//     only in lower levels (optional/nullable fields);
//   - Twitter: five top-level shapes sharing common parts, arrays of
//     records, nesting <= 3, ~3% delete records mixed into tweets;
//   - Wikidata: fixed logical schema but user/property identifiers
//     encoded as record keys (the "poor design" that defeats key-based
//     fusion), nesting <= 6;
//   - NYTimes: fixed first level with varying lower levels (headline
//     sub-fields, Num/Str mixing on the same field, mixed-content
//     arrays), nesting <= 7, long text fields.
//
// Generators are deterministic functions of (seed, index) streams: the
// first k records of an n-record dataset equal the k-record dataset, so
// the 1K/10K/100K/1M sub-datasets of Table 1 are prefixes of each other,
// just as the paper's sub-datasets are subsets of the originals.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/value"
)

// Generator produces the records of one synthetic dataset.
type Generator interface {
	// Name is the registry key ("github", "twitter", ...).
	Name() string
	// Generate returns the next record, drawing randomness from r.
	// Records must be generated in sequence from a fresh source to get
	// the documented determinism.
	Generate(r *rand.Rand) value.Value
}

// registry of built-in generators, in the paper's presentation order.
var builders = map[string]func() Generator{
	"github":   func() Generator { return newGitHub() },
	"twitter":  func() Generator { return newTwitter() },
	"wikidata": func() Generator { return newWikidata() },
	"nytimes":  func() Generator { return newNYTimes() },
	"mixed":    func() Generator { return newMixed() },
	"eventlog": func() Generator { return newEventLog() },
	"webhook":  func() Generator { return newWebhookFeed() },
}

// paperOrder lists the four paper datasets in evaluation order; "mixed"
// is this repo's extra stress generator.
var paperOrder = []string{"github", "twitter", "wikidata", "nytimes"}

// New returns a fresh generator by name.
func New(name string) (Generator, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
	}
	return b(), nil
}

// Names lists the available generator names, paper datasets first.
func Names() []string {
	out := append([]string(nil), paperOrder...)
	var extra []string
	for name := range builders {
		found := false
		for _, p := range paperOrder {
			if p == name {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// PaperNames lists the four datasets of the paper's evaluation.
func PaperNames() []string { return append([]string(nil), paperOrder...) }

// Values generates the first n records of the dataset with the given
// seed.
func Values(g Generator, n int, seed int64) []value.Value {
	r := rand.New(rand.NewSource(seed))
	out := make([]value.Value, n)
	for i := range out {
		out[i] = g.Generate(r)
	}
	return out
}

// WriteNDJSON writes n records as newline-delimited JSON and returns the
// number of bytes written.
func WriteNDJSON(w io.Writer, g Generator, n int, seed int64) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	r := rand.New(rand.NewSource(seed))
	var total int64
	buf := make([]byte, 0, 16<<10)
	for i := 0; i < n; i++ {
		buf = value.AppendJSON(buf[:0], g.Generate(r))
		buf = append(buf, '\n')
		m, err := bw.Write(buf)
		total += int64(m)
		if err != nil {
			return total, fmt.Errorf("dataset: writing record %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return total, fmt.Errorf("dataset: flushing output: %w", err)
	}
	return total, nil
}

// NDJSON renders the first n records as an in-memory NDJSON buffer.
func NDJSON(g Generator, n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	var buf []byte
	for i := 0; i < n; i++ {
		buf = value.AppendJSON(buf, g.Generate(r))
		buf = append(buf, '\n')
	}
	return buf
}

// --- shared helpers used by the concrete generators ---

// pick returns true with probability p.
func pick(r *rand.Rand, p float64) bool { return r.Float64() < p }

// oneOf picks a uniform element of choices.
func oneOf(r *rand.Rand, choices []string) string { return choices[r.Intn(len(choices))] }

var wordList = []string{
	"data", "schema", "type", "record", "array", "union", "fusion", "spark",
	"massive", "json", "query", "index", "store", "value", "field", "merge",
	"reduce", "map", "cluster", "node", "shard", "stream", "batch", "graph",
	"model", "paris", "york", "tokyo", "berlin", "lima", "cairo", "delhi",
}

// words builds a space-separated pseudo-sentence of n words.
func words(r *rand.Rand, n int) string {
	if n <= 0 {
		return ""
	}
	buf := make([]byte, 0, n*7)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, wordList[r.Intn(len(wordList))]...)
	}
	return string(buf)
}

// hexID builds an n-character lowercase hex identifier.
func hexID(r *rand.Rand, n int) string {
	const digits = "0123456789abcdef"
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = digits[r.Intn(16)]
	}
	return string(buf)
}

// dateStr builds a plausible ISO-ish timestamp string.
func dateStr(r *rand.Rand) string {
	return fmt.Sprintf("201%d-%02d-%02dT%02d:%02d:%02dZ",
		r.Intn(7), 1+r.Intn(12), 1+r.Intn(28), r.Intn(24), r.Intn(60), r.Intn(60))
}

// f marks a field literal in generator code.
func f(key string, v value.Value) value.Field { return value.Field{Key: key, Value: v} }

// obj builds a record from fields, panicking on duplicate keys (generator
// bugs should fail loudly in tests).
func obj(fields ...value.Field) *value.Record { return value.MustRecord(fields...) }

// nullOr returns v with probability 1-pNull and null otherwise.
func nullOr(r *rand.Rand, pNull float64, v value.Value) value.Value {
	if pick(r, pNull) {
		return value.Null{}
	}
	return v
}

// nullIf returns null when cond holds and v otherwise; used to correlate
// the nullability of several fields through one shared draw.
func nullIf(cond bool, v value.Value) value.Value {
	if cond {
		return value.Null{}
	}
	return v
}
