package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/value"
)

// nyTimes generates article metadata records in the style of the paper's
// NYTimes dataset: "the fields in the first level are fixed while the
// lower level fields may vary", long text content (headline, lead
// paragraph, snippet), deep nesting (up to 7 levels), and the dataset's
// signature irregularities — headline sub-fields that differ between
// records, and the same field carrying Num in some records and Str in
// others. Because variation is confined below a fixed first level,
// fusion compacts this dataset best of the four (Table 5).
type nyTimes struct{}

func newNYTimes() Generator { return nyTimes{} }

// Name returns "nytimes".
func (nyTimes) Name() string { return "nytimes" }

// Generate produces one article record. A per-record "legacy API era"
// flag drives the Num-vs-Str representation of the numeric fields and
// the legacy markers, matching how the real dataset mixes records from
// two API generations (fields are consistent within a record).
func (nyTimes) Generate(r *rand.Rand) value.Value {
	legacy := pick(r, 0.3)
	return obj(
		f("web_url", value.Str("https://www.nytimes.example/"+dateStr(r)[:10]+"/"+words(r, 1)+"/"+hexID(r, 8)+".html")),
		f("snippet", value.Str(words(r, 25+r.Intn(20)))),
		f("lead_paragraph", value.Str(words(r, 60+r.Intn(120)))),
		f("abstract", value.Str(words(r, 15+r.Intn(25)))),
		f("print_page", numOrStr(legacy, r.Intn(40)+1)), // Num in some records, Str in others
		f("blog", nyBlog(legacy)),
		f("source", value.Str(oneOf(r, []string{"The New York Times", "AP", "Reuters", "International Herald Tribune"}))),
		f("multimedia", nyMultimedia(r, legacy)),
		f("headline", nyHeadline(r)),
		f("keywords", nyKeywords(r, legacy)),
		f("pub_date", value.Str(dateStr(r))),
		f("document_type", value.Str(oneOf(r, []string{"article", "blogpost", "multimedia"}))),
		f("news_desk", nullOr(r, 0.2, value.Str(oneOf(r, []string{"Foreign", "Sports", "Culture", "Business", "Metro"})))),
		f("section_name", nullOr(r, 0.25, value.Str(oneOf(r, []string{"World", "Sports", "Arts", "Business Day", "N.Y. / Region"})))),
		f("subsection_name", nullOr(r, 0.6, value.Str(oneOf(r, []string{"Politics", "Europe", "Asia Pacific", "Pro Football"})))),
		f("byline", nyByline(r)),
		f("type_of_material", value.Str(oneOf(r, []string{"News", "Blog", "Review", "Op-Ed", "Obituary"}))),
		f("_id", value.Str(hexID(r, 24))),
		f("word_count", numOrStr(legacy, 150+r.Intn(2000))), // the Num+Str pattern again
		f("uri", value.Str("nyt://article/"+hexID(r, 16))),
	)
}

// numOrStr renders n as a Str in legacy-era records and as a Num in
// current ones — the "use of Num and Str types for the same field" the
// paper observed in this dataset.
func numOrStr(legacy bool, n int) value.Value {
	if legacy {
		return value.Str(fmt.Sprintf("%d", n))
	}
	return value.Num(float64(n))
}

// nyBlog is an empty record for most articles and an empty array for
// legacy ones: the same field with record kind and array kind.
func nyBlog(legacy bool) value.Value {
	if legacy {
		return value.Array{}
	}
	return value.MustRecord()
}

// nyHeadline picks one of the paper's observed sub-field combinations:
// {main, content_kicker, kicker} in some records, {main, print_headline}
// in others, plus intermediate shapes.
func nyHeadline(r *rand.Rand) value.Value {
	main := value.Str(words(r, 5+r.Intn(7)))
	switch r.Intn(4) {
	case 0:
		return obj(f("main", main), f("print_headline", value.Str(words(r, 5))))
	case 1:
		return obj(
			f("main", main),
			f("kicker", value.Str(words(r, 2))),
			f("content_kicker", value.Str(words(r, 3))),
		)
	case 2:
		return obj(f("main", main), f("kicker", value.Str(words(r, 2))))
	default:
		return obj(f("main", main))
	}
}

// nyMultimedia is a mixed-content array: most elements are asset
// records, but legacy records contribute bare URL strings, exercising
// the union-typed array bodies of Section 2.
func nyMultimedia(r *rand.Rand, legacy bool) value.Value {
	out := value.Array{}
	withCaption := pick(r, 0.3)
	for i, n := 0, []int{0, 1, 1, 3}[r.Intn(4)]; i < n; i++ {
		if legacy && pick(r, 0.2) {
			out = append(out, value.Str("https://static.nytimes.example/"+hexID(r, 10)+".jpg"))
			continue
		}
		fields := []value.Field{
			f("url", value.Str("images/"+dateStr(r)[:10]+"/"+hexID(r, 6)+".jpg")),
			f("format", value.Str(oneOf(r, []string{"Standard Thumbnail", "thumbLarge", "articleInline"}))),
			f("height", value.Num(float64(75+r.Intn(500)))),
			f("width", value.Num(float64(75+r.Intn(600)))),
			f("type", value.Str("image")),
			f("subtype", value.Str(oneOf(r, []string{"photo", "thumbnail", "xlarge"}))),
		}
		if withCaption {
			fields = append(fields, f("caption", value.Str(words(r, 10))))
		}
		if legacy && pick(r, 0.5) {
			fields = append(fields, f("legacy", obj(
				f("xlarge", value.Str("images/legacy/"+hexID(r, 6)+".jpg")),
				f("xlargewidth", value.Num(float64(600))),
				f("xlargeheight", value.Num(float64(400))),
			)))
		}
		out = append(out, obj(fields...))
	}
	return out
}

// nyKeywords is an array of {rank, name, value} records whose rank field
// mixes Num and Str across records and whose length varies widely.
func nyKeywords(r *rand.Rand, legacy bool) value.Value {
	out := value.Array{}
	for i, n := 0, r.Intn(7); i < n; i++ {
		fields := []value.Field{
			f("rank", numOrStr(legacy, i+1)),
			f("name", value.Str(oneOf(r, []string{"subject", "glocations", "persons", "organizations"}))),
			f("value", value.Str(words(r, 1+r.Intn(3)))),
		}
		if legacy {
			fields = append(fields, f("is_major", value.Str(oneOf(r, []string{"Y", "N"}))))
		}
		out = append(out, obj(fields...))
	}
	return out
}

// nyByline is the deepest structure: Null for wire stories, a bare Str
// in legacy records, or a record with a person list whose members can
// nest affiliation records several levels down.
func nyByline(r *rand.Rand) value.Value {
	switch x := r.Float64(); {
	case x < 0.15:
		return value.Null{}
	case x < 0.25:
		return value.Str("By " + words(r, 2))
	default:
		people := value.Array{}
		withMiddle := pick(r, 0.4)
		withAffiliation := pick(r, 0.15)
		for i, n := 0, 1+r.Intn(3); i < n; i++ {
			people = append(people, nyPerson(r, withMiddle, withAffiliation))
		}
		fields := []value.Field{
			f("original", value.Str("By "+words(r, 2))),
			f("person", people),
		}
		if pick(r, 0.1) {
			fields = append(fields, f("organization", value.Str(oneOf(r, []string{"THE ASSOCIATED PRESS", "REUTERS"}))))
		}
		return obj(fields...)
	}
}

// nyPerson builds one byline person; the optional affiliation chain
// provides the deepest nesting in the dataset.
func nyPerson(r *rand.Rand, withMiddle, withAffiliation bool) value.Value {
	fields := []value.Field{
		f("firstname", value.Str(words(r, 1))),
		f("lastname", value.Str(words(r, 1))),
		f("rank", value.Num(float64(1+r.Intn(3)))),
		f("role", value.Str("reported")),
	}
	if withMiddle {
		fields = append(fields, f("middlename", value.Str(words(r, 1))))
	}
	if withAffiliation {
		fields = append(fields, f("affiliation", obj(
			f("name", value.Str(words(r, 2))),
			f("parent", obj(
				f("name", value.Str(words(r, 2))),
				f("division", obj(
					f("code", value.Str(hexID(r, 4))),
					f("label", value.Str(words(r, 1))),
				)),
			)),
		)))
	}
	return obj(fields...)
}
