// Package pipeline is the one inference engine behind every entry
// point of the repository: the public Source kinds (bytes, reader,
// file, files), the experiments harness and the CLI all run the same
// composable stages —
//
//	split → decode+infer map → combine (monoid) → fold
//
// over an Env that bundles what used to be five separately threaded
// parameters (fusion policy, worker count, failure policy, recorder,
// progress hook, dedup state). The map and combine stages are derived
// from the Env's payload kind: the plain summary or the hash-consed
// distinct-type multiset, both implementations of the Accumulator
// monoid (see accumulator.go). A future backend — sharded, serving,
// remote — is a new feed plus (at most) a new Accumulator, not a sixth
// copy of the pipeline.
//
// Two drivers share the stages: Run distributes line-aligned chunks
// over the map-reduce engine (parallel, fault-tolerant), RunStream
// types one record at a time with constant memory (sequential). Both
// leave no goroutines behind on error or cancellation, which
// pipeline_test.go pins with mid-feed and mid-combine cancel tests.
package pipeline

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/enrich"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/intern"
	"repro/internal/jsontext"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/types"
)

// Env bundles the cross-cutting state of one inference run. Build it
// once per run and pass it to Run or RunStream; every field is
// read-only to the stages (the stagecapture analyzer in
// internal/analyze enforces that stages keep mutable state in their
// Accumulators, not in captured variables).
type Env struct {
	// Fusion is the run's fusion policy.
	Fusion fusion.Options
	// Workers bounds the map-phase parallelism of Run; values <= 0 mean
	// one worker per CPU (resolved by the map-reduce engine).
	Workers int
	// ChunkBytes is the chunk size of bounded-memory file feeds; zero
	// means the partitioner default (4 MiB).
	ChunkBytes int
	// MaxDepth bounds value nesting in the streaming decoder; zero
	// means the parser default.
	MaxDepth int
	// Failure and Injector configure the map-reduce failure handling.
	Failure  mapreduce.FailurePolicy
	Injector mapreduce.FaultInjector
	// Rec receives pipeline metrics; nil records nothing.
	Rec obs.Recorder
	// Progress is called after each processed chunk (or every
	// ProgressEveryRecords records on the streaming path); nil reports
	// nothing.
	Progress func()
	// Dedup, when non-nil, selects the hash-consed payload: the map
	// phase interns types and emits distinct-type multisets, fusion
	// runs through the memo.
	Dedup *Dedup
	// Enrich, when non-nil, computes the configured enrichment monoids
	// (internal/enrich) alongside structural inference in the same
	// pass: each map task observes its chunk into a fresh lattice
	// carried on the chunk's Accumulator, lattices merge with the
	// accumulators, and the folded Result carries the combined lattice.
	// Purely additive — the structural schema and statistics are
	// byte-identical with or without it.
	Enrich *enrich.Set
	// Phases, when non-nil, accumulates per-phase busy times (decode +
	// infer versus fuse) across workers — the experiments harness's
	// Table 6 measurements. Nil costs one branch per chunk.
	Phases *Phases
}

// Dedup is the shared machinery of one deduplicating run: the
// hash-consing table the decoders intern into and the memoized fusion
// policy keyed by that table's IDs. One value spans all chunks, workers
// and files of a single run.
type Dedup struct {
	Tab  *intern.Table
	Memo *fusion.Memo
}

// NewDedup builds the dedup machinery for one run under the given
// fusion policy.
func NewDedup(o fusion.Options) *Dedup {
	tab := intern.NewTable()
	return &Dedup{Tab: tab, Memo: fusion.NewMemo(o, tab)}
}

// Phases holds the per-phase busy-time tallies of a run, summed across
// workers (they exceed wall time on multi-worker runs).
type Phases struct {
	// InferNS is time spent parsing bytes and inferring per-record
	// types; FuseNS is time spent simplifying and fusing them
	// (chunk-local folds and cross-chunk combines).
	InferNS, FuseNS atomic.Int64
}

// A Feed produces the line-aligned chunks of one input through emit,
// in order, and may block. Emit fails once the pipeline stops (error
// or cancellation), so a feed that forwards emit's error — or simply
// stops, like SliceFeed — can never wedge the run. A non-nil return
// marks the *producer* as failed (an I/O error reading the input) and
// surfaces as a FeedError, distinguishable from decode errors.
type Feed func(emit func([]byte) error) error

// SliceFeed feeds an in-memory slice of chunks.
func SliceFeed(chunks [][]byte) Feed {
	return func(emit func([]byte) error) error {
		for _, chunk := range chunks {
			if err := emit(chunk); err != nil {
				return nil // the pipeline stopped; it carries the error
			}
		}
		return nil
	}
}

// A FeedError marks a failure of the input producer (the feed reading
// chunks) as opposed to the pipeline decoding them, so callers can
// word — and callers' callers programmatically distinguish — the two.
type FeedError struct{ Err error }

func (e *FeedError) Error() string { return e.Err.Error() }
func (e *FeedError) Unwrap() error { return e.Err }

// ProgressEveryRecords throttles Progress callbacks on the sequential
// streaming path, where "per chunk" has no natural meaning.
const ProgressEveryRecords = 1024

// Run distributes the feed's chunks over the map-reduce engine: each
// chunk is typed and locally folded into an Accumulator (the
// combiner), and accumulators merge associatively + commutatively into
// one. The feed's producer goroutine is always joined before Run
// returns, so no goroutine outlives the call. The returned Accumulator
// is nil when the feed produced nothing (Fold handles it); callers
// that span several inputs (multi-file dedup) Combine the returned
// accumulators before folding.
func Run(ctx context.Context, env *Env, feed Feed) (Accumulator, mapreduce.Stats, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	src := make(chan []byte)
	feedDone := make(chan struct{})
	var feedErr error
	go func() {
		defer close(feedDone)
		defer close(src)
		feedErr = feed(func(chunk []byte) error {
			select {
			case src <- chunk:
				return nil
			case <-runCtx.Done():
				return runCtx.Err()
			}
		})
	}()

	mapFn := func(_ context.Context, chunk []byte) (Accumulator, error) {
		return env.mapChunk(chunk)
	}
	combine := Combine
	if env.Phases != nil {
		ph := env.Phases
		combine = func(a, b Accumulator) Accumulator {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			t0 := time.Now()
			a.Merge(b)
			ph.FuseNS.Add(int64(time.Since(t0)))
			return a
		}
	}

	out, mrst, err := mapreduce.Run(runCtx, src, mapFn, combine, nil,
		mapreduce.Config{Workers: env.Workers, Recorder: env.Rec, Failure: env.Failure, Injector: env.Injector})
	if err != nil {
		// Unblock and join the feeder before returning so no goroutine
		// outlives the call.
		cancel()
		<-feedDone
		return nil, mrst, err
	}
	<-feedDone
	if feedErr != nil {
		return nil, mrst, &FeedError{Err: feedErr}
	}
	return out, mrst, nil
}

// mapChunk is the decode+infer map stage: it types every value of one
// line-aligned chunk and folds them into a fresh Accumulator of the
// Env's payload kind.
func (e *Env) mapChunk(chunk []byte) (Accumulator, error) {
	// A failed decode discards the chunk's lattice along with its
	// accumulator, so retried attempts observe into a fresh one and the
	// combine stays exactly-once for enrichment too (docs/ENRICHMENT.md).
	lat := e.newLattice()
	if dd := e.Dedup; dd != nil {
		// The dedup map task types a chunk into a multiset of distinct
		// interned types and folds the DISTINCT types once each, in
		// first-seen order. By commutativity, associativity and
		// idempotency of fusion on simplified types, this equals folding
		// all per-record types — the chunk metrics (record counts, fused
		// size) are therefore identical to the plain payload's.
		t0 := e.phaseStart()
		ms, err := infer.DedupAllObserved(chunk, dd.Tab, observer(lat))
		if err != nil {
			return nil, err
		}
		t0 = e.lapInfer(t0)
		fused := types.Type(types.Empty)
		for _, el := range ms.Elems() {
			fused = dd.Memo.Fuse(fused, dd.Memo.Simplify(el.Type))
		}
		e.lapFuse(t0)
		e.recordChunk(ms.Total(), int64(len(chunk)), fused)
		return &dedupAcc{dd: dd, ms: ms, fused: fused, lat: lat}, nil
	}
	t0 := e.phaseStart()
	ts, err := infer.InferAllObserved(chunk, observer(lat))
	if err != nil {
		return nil, err
	}
	t0 = e.lapInfer(t0)
	acc := e.NewAcc().(*plainAcc)
	acc.lat = lat
	for _, t := range ts {
		acc.Add(t)
	}
	e.lapFuse(t0)
	e.recordChunk(int64(len(ts)), int64(len(chunk)), acc.fused)
	return acc, nil
}

// newLattice returns a fresh enrichment lattice, or nil with
// enrichment off.
func (e *Env) newLattice() *enrich.Lattice {
	if e.Enrich == nil {
		return nil
	}
	return e.Enrich.NewLattice()
}

// observer adapts a possibly-nil lattice to the decoder's Observer
// hook without smuggling a typed-nil interface through.
func observer(lat *enrich.Lattice) infer.Observer {
	if lat == nil {
		return nil
	}
	return lat
}

// phaseStart stamps the start of a timed phase segment, or zero when
// phase timing is off.
func (e *Env) phaseStart() time.Time {
	if e.Phases == nil {
		return time.Time{}
	}
	return time.Now()
}

// lapInfer charges the elapsed segment to the infer phase and restarts
// the clock; lapFuse charges it to the fuse phase. Both are no-ops with
// Phases nil.
func (e *Env) lapInfer(t0 time.Time) time.Time {
	if e.Phases == nil {
		return time.Time{}
	}
	now := time.Now()
	e.Phases.InferNS.Add(int64(now.Sub(t0)))
	return now
}

func (e *Env) lapFuse(t0 time.Time) {
	if e.Phases == nil {
		return
	}
	e.Phases.FuseNS.Add(int64(time.Since(t0)))
}

// recordChunk emits the per-chunk metrics and progress tick shared by
// the plain and dedup map stages.
func (e *Env) recordChunk(records, bytes int64, fused types.Type) {
	if rec := e.Rec; rec != nil {
		rec.Add("infer_chunks", 1)
		rec.Add("infer_records", records)
		rec.Add("infer_bytes", bytes)
		rec.Observe("infer_chunk_records", records)
		// Per-chunk fused sizes are the fusion-growth curve: how
		// far each partition's types collapse before the reduce.
		rec.Observe("infer_chunk_fused_size", int64(fused.Size()))
	}
	if e.Progress != nil {
		e.Progress()
	}
}

// RunStream types a stream of JSON values one at a time with constant
// memory: the sequential driver over the same Accumulator stages the
// chunked Run uses. Returns the accumulator and the number of input
// bytes consumed. Cancellation takes effect between records.
func RunStream(ctx context.Context, env *Env, r io.Reader) (Accumulator, int64, error) {
	dec := infer.NewDecoder(r, jsontext.Options{MaxDepth: env.MaxDepth})
	defer dec.Release()
	if env.Dedup != nil {
		dec.SetInterner(env.Dedup.Tab)
	}
	acc := env.NewStreamAcc()
	if lat := env.newLattice(); lat != nil {
		dec.SetObserver(lat)
		attachLattice(acc, lat)
	}
	var records int64
	for {
		select {
		case <-ctx.Done():
			return nil, 0, fmt.Errorf("record %d: %w", records+1, ctx.Err())
		default:
		}
		t, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("record %d: %w", records+1, err)
		}
		acc.Add(t)
		records++
		if env.Rec != nil {
			env.Rec.Add("infer_records", 1)
		}
		if env.Progress != nil && records%ProgressEveryRecords == 0 {
			env.Progress()
		}
	}
	n := dec.Offset()
	if env.Rec != nil {
		env.Rec.Add("infer_bytes", n)
	}
	return acc, n, nil
}
