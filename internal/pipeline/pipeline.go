// Package pipeline is the one inference engine behind every entry
// point of the repository: the public Source kinds (bytes, reader,
// file, files), the experiments harness and the CLI all run the same
// composable stages —
//
//	split → decode+infer map → combine (monoid) → fold
//
// over an Env that bundles what used to be five separately threaded
// parameters (fusion policy, worker count, failure policy, recorder,
// progress hook, dedup state). The map and combine stages are derived
// from the Env's payload kind: the plain summary or the hash-consed
// distinct-type multiset, both implementations of the Accumulator
// monoid (see accumulator.go). A future backend — sharded, serving,
// remote — is a new feed plus (at most) a new Accumulator, not a sixth
// copy of the pipeline.
//
// Two drivers share the stages: Run distributes line-aligned chunks
// over the map-reduce engine (parallel, fault-tolerant), RunStream
// types one record at a time with constant memory (sequential). Both
// leave no goroutines behind on error or cancellation, which
// pipeline_test.go pins with mid-feed and mid-combine cancel tests.
package pipeline

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/enrich"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/intern"
	"repro/internal/jsontext"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/types"
)

// Env bundles the cross-cutting state of one inference run. Build it
// once per run and pass it to Run or RunStream; every field is
// read-only to the stages (the stagecapture analyzer in
// internal/analyze enforces that stages keep mutable state in their
// Accumulators, not in captured variables).
type Env struct {
	// Fusion is the run's fusion policy.
	Fusion fusion.Options
	// Workers bounds the map-phase parallelism of Run; values <= 0 mean
	// one worker per CPU (resolved by the map-reduce engine).
	Workers int
	// ChunkBytes is the chunk size of bounded-memory file feeds; zero
	// means the partitioner default (4 MiB).
	ChunkBytes int
	// MaxDepth bounds value nesting in the streaming decoder; zero
	// means the parser default.
	MaxDepth int
	// Failure and Injector configure the map-reduce failure handling.
	Failure  mapreduce.FailurePolicy
	Injector mapreduce.FaultInjector
	// Rec receives pipeline metrics; nil records nothing.
	Rec obs.Recorder
	// Progress is called after each processed chunk (or every
	// ProgressEveryRecords records on the streaming path); nil reports
	// nothing.
	Progress func()
	// Dedup, when non-nil, selects the hash-consed payload: the map
	// phase interns types and emits distinct-type multisets, fusion
	// runs through the memo.
	Dedup *Dedup
	// Enrich, when non-nil, computes the configured enrichment monoids
	// (internal/enrich) alongside structural inference in the same
	// pass: each map task observes its chunk into a fresh lattice
	// carried on the chunk's Accumulator, lattices merge with the
	// accumulators, and the folded Result carries the combined lattice.
	// Purely additive — the structural schema and statistics are
	// byte-identical with or without it.
	Enrich *enrich.Set
	// Phases, when non-nil, accumulates per-phase busy times (decode +
	// infer versus fuse) across workers — the experiments harness's
	// Table 6 measurements. Nil costs one branch per chunk.
	Phases *Phases
}

// Dedup is the shared machinery of one deduplicating run: the
// hash-consing table the decoders intern into and the memoized fusion
// policy keyed by that table's IDs. One value spans all chunks, workers
// and files of a single run.
//
// With Auto set, the run is adaptive: each map task samples the
// distinct-type ratio and the intern-table growth over the first
// Sample records of its chunk and degrades the rest of the chunk to
// the plain (non-interning) path when hash-consing cannot pay for
// itself — an all-distinct stream past Threshold that also allocates
// NodeGrowth or more new interned nodes per record. The decision is
// re-checked at every combine boundary against the merged multiset
// cardinality, and the outcome is shared across chunks through an
// atomic hint so settled runs stop sampling. Only the cost model is
// adaptive: schemas and statistics are byte-identical to both fixed
// modes (pinned by the differential and chaos suites).
type Dedup struct {
	Tab  *intern.Table
	Memo *fusion.Memo

	// Auto enables the adaptive layer.
	Auto bool
	// Sample is the number of records each chunk types through the
	// interner before deciding; zero means DefaultDedupSample.
	Sample int
	// Threshold is the sampled distinct-type ratio at or above which a
	// chunk degrades (subject to the NodeGrowth guard); zero means
	// DefaultDedupThreshold.
	Threshold float64
	// NodeGrowth is the minimum new interned nodes per sampled record
	// for a degrade: high-ratio data whose subtrees still dedup (shared
	// nested shapes) keeps paying for hash-consing. Zero means
	// DefaultDedupNodeGrowth.
	NodeGrowth float64

	// hint is the shared adaptive decision: hintSample (zero) makes the
	// next chunk sample, hintDedup keeps chunks on the interning path,
	// hintDegrade sends whole chunks down the plain path. Cost-only:
	// with several workers the hint a chunk observes depends on timing,
	// but every mix of degraded and deduplicated chunks folds to the
	// same bytes.
	hint atomic.Int32
	// sampRecs/sampNodes accumulate the sampled record count and the
	// intern-table growth across chunks — the node-growth evidence the
	// combine-boundary re-check reuses.
	sampRecs  atomic.Int64
	sampNodes atomic.Int64
}

// Adaptive-dedup defaults: sample size, degrade ratio, and the
// node-growth guard. The guard separates data that is all-distinct at
// the top level but shares subtrees (nytimes: ~0.7-1.4 new nodes per
// record, dedup wins) from ids-as-keys data where nearly every node is
// fresh (wikidata: 3-7 new nodes per record, interning is pure
// overhead).
const (
	DefaultDedupSample     = 256
	DefaultDedupThreshold  = 0.9
	DefaultDedupNodeGrowth = 2.5
)

// Shared hint values.
const (
	hintSample  int32 = 0
	hintDedup   int32 = 1
	hintDegrade int32 = -1
)

// NewDedup builds the dedup machinery for one run under the given
// fusion policy.
func NewDedup(o fusion.Options) *Dedup {
	tab := intern.NewTable()
	return &Dedup{Tab: tab, Memo: fusion.NewMemo(o, tab)}
}

// NewAutoDedup builds adaptive dedup machinery with default knobs.
func NewAutoDedup(o fusion.Options) *Dedup {
	dd := NewDedup(o)
	dd.Auto = true
	return dd
}

func (dd *Dedup) sampleSize() int {
	if dd.Sample > 0 {
		return dd.Sample
	}
	return DefaultDedupSample
}

func (dd *Dedup) threshold() float64 {
	if dd.Threshold > 0 {
		return dd.Threshold
	}
	return DefaultDedupThreshold
}

func (dd *Dedup) nodeGrowth() float64 {
	if dd.NodeGrowth > 0 {
		return dd.NodeGrowth
	}
	return DefaultDedupNodeGrowth
}

// noteSample folds one chunk's sampling evidence (records typed through
// the interner and the intern-table growth seen while doing so) into
// the shared tallies.
func (dd *Dedup) noteSample(records, nodes int64) {
	if records <= 0 {
		return
	}
	dd.sampRecs.Add(records)
	if nodes > 0 {
		dd.sampNodes.Add(nodes)
	}
}

// sampledGrowth returns the observed new-interned-nodes-per-record rate
// across all samples so far, or 0 before any sample completes.
func (dd *Dedup) sampledGrowth() float64 {
	recs := dd.sampRecs.Load()
	if recs == 0 {
		return 0
	}
	return float64(dd.sampNodes.Load()) / float64(recs)
}

// decide evaluates the degrade predicate over a sampled window and
// publishes the outcome as the shared hint.
func (dd *Dedup) decide(distinct, records int64, growth float64) bool {
	degrade := float64(distinct) >= dd.threshold()*float64(records) && growth >= dd.nodeGrowth()
	if degrade {
		dd.hint.Store(hintDegrade)
	} else {
		dd.hint.Store(hintDedup)
	}
	return degrade
}

// Phases holds the per-phase busy-time tallies of a run, summed across
// workers (they exceed wall time on multi-worker runs).
type Phases struct {
	// InferNS is time spent parsing bytes and inferring per-record
	// types; FuseNS is time spent simplifying and fusing them
	// (chunk-local folds and cross-chunk combines).
	InferNS, FuseNS atomic.Int64
}

// A Feed produces the line-aligned chunks of one input through emit,
// in order, and may block. Emit fails once the pipeline stops (error
// or cancellation), so a feed that forwards emit's error — or simply
// stops, like SliceFeed — can never wedge the run. A non-nil return
// marks the *producer* as failed (an I/O error reading the input) and
// surfaces as a FeedError, distinguishable from decode errors.
type Feed func(emit func([]byte) error) error

// SliceFeed feeds an in-memory slice of chunks.
func SliceFeed(chunks [][]byte) Feed {
	return func(emit func([]byte) error) error {
		for _, chunk := range chunks {
			if err := emit(chunk); err != nil {
				return nil // the pipeline stopped; it carries the error
			}
		}
		return nil
	}
}

// A FeedError marks a failure of the input producer (the feed reading
// chunks) as opposed to the pipeline decoding them, so callers can
// word — and callers' callers programmatically distinguish — the two.
type FeedError struct{ Err error }

func (e *FeedError) Error() string { return e.Err.Error() }
func (e *FeedError) Unwrap() error { return e.Err }

// ProgressEveryRecords throttles Progress callbacks on the sequential
// streaming path, where "per chunk" has no natural meaning. It must be
// a multiple of StreamBatchRecords: the streaming driver only looks up
// from the decode loop at batch boundaries.
const ProgressEveryRecords = 1024

// StreamBatchRecords is the cancellation batch of the streaming
// driver: RunStream checks the context once per batch instead of once
// per record, which keeps the per-record loop to decode + accumulate
// (metrics stay per-record — a lone atomic add, and live /debug/vars
// readers must see an in-flight stream's records). Error positions are
// exact regardless ("record %d" comes from the per-record counter);
// only cancellation latency is quantized, to at most one batch.
const StreamBatchRecords = 64

// FeedBuffer is the capacity of the chunk channel between the feed and
// the map workers: a small batch of in-flight chunks lets the input
// reader run ahead of the workers (I/O overlapping compute) without
// unbounding memory. Cancellation semantics are unchanged — a feed
// blocked on a full buffer still unblocks through the emit error, and
// chunks parked in the buffer at abort are simply dropped.
const FeedBuffer = 4

// Run distributes the feed's chunks over the map-reduce engine: each
// chunk is typed and locally folded into an Accumulator (the
// combiner), and accumulators merge associatively + commutatively into
// one. The feed's producer goroutine is always joined before Run
// returns, so no goroutine outlives the call. The returned Accumulator
// is nil when the feed produced nothing (Fold handles it); callers
// that span several inputs (multi-file dedup) Combine the returned
// accumulators before folding.
func Run(ctx context.Context, env *Env, feed Feed) (Accumulator, mapreduce.Stats, error) {
	return RunPooled(ctx, env, feed, nil)
}

// RunPooled is Run with a buffer-recycling hook for pooled feeds:
// release (when non-nil) is called exactly once per chunk after its
// final map attempt completes — success, quarantine, or failure — so a
// ChunkPool-backed feed can hand each buffer back for reuse. The hook
// fires only after every retry of the chunk is over (retries re-decode
// the same bytes), and chunks still queued when a run aborts are never
// released; they fall to the garbage collector. The map stage never
// retains chunk bytes past its return (decoded types copy every string
// they keep), which is what makes recycling sound.
func RunPooled(ctx context.Context, env *Env, feed Feed, release func([]byte)) (Accumulator, mapreduce.Stats, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	src := make(chan []byte, FeedBuffer)
	feedDone := make(chan struct{})
	var feedErr error
	go func() {
		defer close(feedDone)
		defer close(src)
		feedErr = feed(func(chunk []byte) error {
			select {
			case src <- chunk:
				return nil
			case <-runCtx.Done():
				return runCtx.Err()
			}
		})
	}()

	mapFn := func(_ context.Context, chunk []byte) (Accumulator, error) {
		return env.mapChunk(chunk)
	}
	combine := Combine
	if env.Phases != nil {
		ph := env.Phases
		combine = func(a, b Accumulator) Accumulator {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			t0 := time.Now()
			a.Merge(b)
			ph.FuseNS.Add(int64(time.Since(t0)))
			return a
		}
	}

	out, mrst, err := mapreduce.RunReleased(runCtx, src, mapFn, combine, nil,
		mapreduce.Config{Workers: env.Workers, Recorder: env.Rec, Failure: env.Failure, Injector: env.Injector}, release)
	if err != nil {
		// Unblock and join the feeder before returning so no goroutine
		// outlives the call.
		cancel()
		<-feedDone
		return nil, mrst, err
	}
	<-feedDone
	if feedErr != nil {
		return nil, mrst, &FeedError{Err: feedErr}
	}
	return out, mrst, nil
}

// mapChunk is the decode+infer map stage: it types every value of one
// line-aligned chunk and folds them into a fresh Accumulator of the
// Env's payload kind.
func (e *Env) mapChunk(chunk []byte) (Accumulator, error) {
	// A failed decode discards the chunk's lattice along with its
	// accumulator, so retried attempts observe into a fresh one and the
	// combine stays exactly-once for enrichment too (docs/ENRICHMENT.md).
	lat := e.newLattice()
	if dd := e.Dedup; dd != nil {
		if dd.Auto {
			return e.mapAutoChunk(chunk, lat)
		}
		// The dedup map task types a chunk into a multiset of distinct
		// interned types and folds the DISTINCT types once each. By
		// commutativity, associativity and idempotency of fusion on
		// simplified types, this equals folding all per-record types —
		// the chunk metrics (record counts, fused size) are therefore
		// identical to the plain payload's.
		t0 := e.phaseStart()
		ms, err := infer.DedupAllWith(chunk, dd.Tab, observer(lat), e.promoter())
		if err != nil {
			return nil, err
		}
		t0 = e.lapInfer(t0)
		// A memoized left fold beats a balanced tree here: chunks of
		// similar data replay the same (accumulated, distinct) fuse
		// pairs, so the memo cache absorbs most of the work, whereas
		// tree-shaped intermediates vary per chunk and miss the cache.
		// The all-distinct case where a left fold degenerates is
		// exactly the case DedupAuto degrades to the plain payload,
		// which reduces tree-shaped below.
		fused := types.Type(types.Empty)
		for _, el := range ms.Elems() {
			fused = dd.Memo.Fuse(fused, dd.Memo.Simplify(el.Type))
		}
		e.lapFuse(t0)
		e.recordChunk(ms.Total(), int64(len(chunk)), fused)
		return &dedupAcc{dd: dd, ms: ms, fused: fused, lat: lat}, nil
	}
	t0 := e.phaseStart()
	ts, err := infer.InferAllWith(chunk, observer(lat), e.promoter())
	if err != nil {
		return nil, err
	}
	t0 = e.lapInfer(t0)
	acc := e.NewAcc().(*plainAcc)
	acc.lat = lat
	for _, t := range ts {
		acc.sum.Add(t)
	}
	// Simplify in place, then reduce pairwise: ts is chunk-local scratch
	// from here on.
	for i, t := range ts {
		ts[i] = acc.fz.Simplify(t)
	}
	acc.fused = treeFuse(ts, acc.fz.Fuse)
	e.lapFuse(t0)
	e.recordChunk(acc.sum.Count(), int64(len(chunk)), acc.fused)
	return acc, nil
}

// mapAutoChunk is the adaptive map stage: it types the first
// sampleSize records of the chunk through the interner (unless the
// shared hint already settled on degrading), then decides — sampled
// distinct ratio at or above the threshold with enough intern-table
// growth per record means hash-consing is pure overhead here — and
// types the rest of the chunk down whichever path won. The interned
// portion fuses through the memo, the degraded portion as a balanced
// tree; the resulting autoAcc folds to the same bytes either fixed
// payload would.
func (e *Env) mapAutoChunk(chunk []byte, lat *enrich.Lattice) (Accumulator, error) {
	dd := e.Dedup
	acc := newAutoAcc(dd, e.Fusion)
	acc.lat = lat
	t0 := e.phaseStart()
	dec := infer.NewBytesDecoder(chunk, jsontext.Options{})
	defer dec.Release()
	if o := observer(lat); o != nil {
		dec.SetObserver(o)
	}
	if pr := e.promoter(); pr != nil {
		dec.SetPromoter(pr)
	}
	interned := dd.hint.Load() != hintDegrade
	if interned {
		dec.SetInterner(dd.Tab)
	}
	var (
		sampled int64
		tab0    = dd.Tab.Len()
		limit   = int64(dd.sampleSize())
		plain   []types.Type
		records int64
	)
	for {
		t, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		records++
		if interned {
			ref, ok := dd.Tab.Ref(t)
			if !ok {
				ref, _ = dd.Tab.Ref(dd.Tab.Canon(t))
			}
			acc.ms.Add(ref, 1)
			sampled++
			if sampled == limit {
				dd.noteSample(sampled, int64(dd.Tab.Len()-tab0))
				if dd.decide(int64(acc.ms.Len()), sampled, dd.sampledGrowth()) {
					interned = false
					dec.SetInterner(nil)
				}
			}
		} else {
			plain = append(plain, t)
		}
	}
	t0 = e.lapInfer(t0)
	// Interned portion: memoized left fold over the distinct types, as
	// in the fixed dedup payload. Degraded portion: balanced tree over
	// the per-record types, as in the plain payload.
	fused := types.Type(types.Empty)
	for _, el := range acc.ms.Elems() {
		fused = dd.Memo.Fuse(fused, dd.Memo.Simplify(el.Type))
	}
	if len(plain) > 0 {
		for _, t := range plain {
			acc.deg.add(t)
		}
		for i, t := range plain {
			plain[i] = e.Fusion.Simplify(t)
		}
		fused = e.Fusion.Fuse(fused, treeFuse(plain, e.Fusion.Fuse))
	}
	acc.fused = fused
	e.lapFuse(t0)
	e.recordChunk(records, int64(len(chunk)), acc.fused)
	return acc, nil
}

// treeFuse reduces the (already simplified) types pairwise, level by
// level, instead of left-folding one giant accumulated type. On
// repetitive data the two shapes cost the same, but on high-entropy
// data (Wikidata's ids-as-keys records, where no two records share a
// shape and the accumulated type keeps growing) the left fold rebuilds
// an ever-larger record per input type — O(records x fused size) — while
// the balanced tree keeps operand sizes matched and the total merge work
// near O(total size x log records). Fusion is associative and
// commutative (Theorems 5.4 and 5.5, property-tested), so the fold
// shape is invisible in the result: schemas stay byte-identical, which
// the differential suite pins against the sequential left fold of
// RunStream. ts is scratch owned by the caller and is overwritten.
func treeFuse(ts []types.Type, fuse func(a, b types.Type) types.Type) types.Type {
	if len(ts) == 0 {
		return types.Empty
	}
	n := len(ts)
	for n > 1 {
		k := 0
		for i := 0; i+1 < n; i += 2 {
			ts[k] = fuse(ts[i], ts[i+1])
			k++
		}
		if n%2 == 1 {
			ts[k] = ts[n-1]
			k++
		}
		n = k
	}
	return ts[0]
}

// promoter returns the Env's phase-one tagged-union promoter as the
// decoder's interface, without smuggling a typed-nil interface through
// when the fusion strategy has none.
func (e *Env) promoter() infer.Promoter {
	if pr := e.Fusion.Promoter(); pr != nil {
		return pr
	}
	return nil
}

// newLattice returns a fresh enrichment lattice, or nil with
// enrichment off.
func (e *Env) newLattice() *enrich.Lattice {
	if e.Enrich == nil {
		return nil
	}
	return e.Enrich.NewLattice()
}

// observer adapts a possibly-nil lattice to the decoder's Observer
// hook without smuggling a typed-nil interface through.
func observer(lat *enrich.Lattice) infer.Observer {
	if lat == nil {
		return nil
	}
	return lat
}

// phaseStart stamps the start of a timed phase segment, or zero when
// phase timing is off.
func (e *Env) phaseStart() time.Time {
	if e.Phases == nil {
		return time.Time{}
	}
	return time.Now()
}

// lapInfer charges the elapsed segment to the infer phase and restarts
// the clock; lapFuse charges it to the fuse phase. Both are no-ops with
// Phases nil.
func (e *Env) lapInfer(t0 time.Time) time.Time {
	if e.Phases == nil {
		return time.Time{}
	}
	now := time.Now()
	e.Phases.InferNS.Add(int64(now.Sub(t0)))
	return now
}

func (e *Env) lapFuse(t0 time.Time) {
	if e.Phases == nil {
		return
	}
	e.Phases.FuseNS.Add(int64(time.Since(t0)))
}

// recordChunk emits the per-chunk metrics and progress tick shared by
// the plain and dedup map stages.
func (e *Env) recordChunk(records, bytes int64, fused types.Type) {
	if rec := e.Rec; rec != nil {
		rec.Add("infer_chunks", 1)
		rec.Add("infer_records", records)
		rec.Add("infer_bytes", bytes)
		rec.Observe("infer_chunk_records", records)
		// Per-chunk fused sizes are the fusion-growth curve: how
		// far each partition's types collapse before the reduce.
		rec.Observe("infer_chunk_fused_size", int64(fused.Size()))
	}
	if e.Progress != nil {
		e.Progress()
	}
}

// RunStream types a stream of JSON values one at a time with constant
// memory: the sequential driver over the same Accumulator stages the
// chunked Run uses. Returns the accumulator and the number of input
// bytes consumed. Cancellation takes effect between records.
func RunStream(ctx context.Context, env *Env, r io.Reader) (Accumulator, int64, error) {
	dec := infer.NewDecoder(r, jsontext.Options{MaxDepth: env.MaxDepth})
	defer dec.Release()
	if env.Dedup != nil {
		dec.SetInterner(env.Dedup.Tab)
	}
	if pr := env.promoter(); pr != nil {
		dec.SetPromoter(pr)
	}
	acc := env.NewStreamAcc()
	if lat := env.newLattice(); lat != nil {
		dec.SetObserver(lat)
		attachLattice(acc, lat)
	}
	auto, _ := acc.(*autoAcc)
	var records int64
	for {
		// Batched cancellation: the ctx check runs once per
		// StreamBatchRecords (including before the first record, so a
		// pre-cancelled context never starts work); the steady-state
		// loop is decode + accumulate only. Metrics stay per-record —
		// they are a single atomic add, free when no Recorder is
		// installed, and a live /debug/vars must see an in-flight
		// stream's records before the first batch boundary.
		if records%StreamBatchRecords == 0 {
			select {
			case <-ctx.Done():
				return nil, 0, fmt.Errorf("record %d: %w", records+1, ctx.Err())
			default:
			}
			if env.Progress != nil && records > 0 && records%ProgressEveryRecords == 0 {
				env.Progress()
			}
		}
		t, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("record %d: %w", records+1, err)
		}
		acc.Add(t)
		if auto != nil && auto.degraded {
			// The adaptive stream accumulator degraded: stop interning
			// decoded types (SetInterner is an idempotent field store).
			dec.SetInterner(nil)
		}
		records++
		if env.Rec != nil {
			env.Rec.Add("infer_records", 1)
		}
	}
	n := dec.Offset()
	if env.Rec != nil {
		env.Rec.Add("infer_bytes", n)
	}
	return acc, n, nil
}
