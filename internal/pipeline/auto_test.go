package pipeline

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fusion"
)

// autoTestDedup builds adaptive dedup machinery with tight knobs so
// tiny test chunks exercise real sampling decisions: an 8-record
// sample, a 0.5 degrade ratio, and a node-growth guard low enough that
// any all-distinct window passes it.
func autoTestDedup() *Dedup {
	dd := NewAutoDedup(fusion.Options{})
	dd.Sample = 8
	dd.Threshold = 0.5
	dd.NodeGrowth = 0.01
	return dd
}

// ndjsonFields builds one NDJSON chunk with a record per field name:
// distinct names produce distinct record types, repeats repeat them.
func ndjsonFields(names ...string) []byte {
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "{%q:1}\n", n)
	}
	return []byte(b.String())
}

// repeatFields returns n copies of the given names in round-robin
// order, so the distinct ratio of a window is len(names)/n.
func roundRobin(n int, names ...string) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, names[i%len(names)])
	}
	return out
}

// TestAutoThresholdBoundary pins the degrade predicate's boundary
// semantics: a sampled window whose distinct ratio lands exactly on
// the threshold degrades (the predicate is >=), one distinct type
// fewer stays on the dedup path — and either way the folded Result is
// byte-identical to both fixed payloads over the same chunk.
func TestAutoThresholdBoundary(t *testing.T) {
	cases := []struct {
		label   string
		sampled []string // first 8 records: the sampled window
		want    int32
	}{
		// 4 distinct over 8 sampled records = ratio 0.5, exactly the
		// threshold: 4 >= 0.5*8 holds, so the chunk degrades.
		{"at threshold degrades", roundRobin(8, "a", "b", "c", "d"), hintDegrade},
		// 3 distinct = ratio 0.375 < 0.5: stays deduplicating.
		{"below threshold stays", roundRobin(8, "a", "b", "c"), hintDedup},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			// Four post-sample records so a degrade leaves a real plain
			// portion behind it.
			records := append(append([]string{}, tc.sampled...), "e", "f", "g", "h")
			chunk := ndjsonFields(records...)

			env := &Env{Fusion: fusion.Options{}, Dedup: autoTestDedup()}
			acc, err := env.mapChunk(chunk)
			if err != nil {
				t.Fatal(err)
			}
			if got := env.Dedup.hint.Load(); got != tc.want {
				t.Fatalf("hint after sampled chunk = %d, want %d", got, tc.want)
			}

			got := Fold(acc)
			for _, fixed := range []struct {
				label string
				env   *Env
			}{
				{"dedup", &Env{Fusion: fusion.Options{}, Dedup: NewDedup(fusion.Options{})}},
				{"plain", &Env{Fusion: fusion.Options{}}},
			} {
				facc, err := fixed.env.mapChunk(chunk)
				if err != nil {
					t.Fatal(err)
				}
				want := Fold(facc)
				if got.Fused.String() != want.Fused.String() {
					t.Errorf("fused vs %s: %s != %s", fixed.label, got.Fused, want.Fused)
				}
				if got.Records != want.Records || got.DistinctTypes != want.DistinctTypes {
					t.Errorf("stats vs %s: records %d/%d distinct %d/%d",
						fixed.label, got.Records, want.Records, got.DistinctTypes, want.DistinctTypes)
				}
				if got.MinTypeSize != want.MinTypeSize || got.MaxTypeSize != want.MaxTypeSize || got.AvgTypeSize != want.AvgTypeSize {
					t.Errorf("sizes vs %s: min %d/%d max %d/%d avg %v/%v", fixed.label,
						got.MinTypeSize, want.MinTypeSize, got.MaxTypeSize, want.MaxTypeSize,
						got.AvgTypeSize, want.AvgTypeSize)
				}
			}
		})
	}
}

// TestAutoCombineBoundaryRecheck exercises the other half of the
// adaptive layer: chunks too small to complete a sample individually
// still trigger the decision when their accumulators merge past the
// sample size — and a degraded run whose plain portion turns
// repetitive is sent back to sampling.
func TestAutoCombineBoundaryRecheck(t *testing.T) {
	t.Run("merge crosses sample size", func(t *testing.T) {
		dd := autoTestDedup()
		env := &Env{Fusion: fusion.Options{}, Dedup: dd}
		// Two 4-record chunks, all-distinct across both: neither chunk
		// completes the 8-record sample alone.
		a, err := env.mapChunk(ndjsonFields("a", "b", "c", "d"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := env.mapChunk(ndjsonFields("e", "f", "g", "h"))
		if err != nil {
			t.Fatal(err)
		}
		if got := dd.hint.Load(); got != hintSample {
			t.Fatalf("hint before merge = %d, want %d (still sampling)", got, hintSample)
		}
		// The combine-boundary re-check reuses node-growth evidence from
		// sampling; seed it as a completed all-fresh window would have.
		dd.noteSample(8, 40)
		Combine(a, b)
		if got := dd.hint.Load(); got != hintDegrade {
			t.Fatalf("hint after all-distinct merge = %d, want %d", got, hintDegrade)
		}
	})

	t.Run("repetitive merge settles on dedup", func(t *testing.T) {
		dd := autoTestDedup()
		env := &Env{Fusion: fusion.Options{}, Dedup: dd}
		a, err := env.mapChunk(ndjsonFields(roundRobin(4, "a", "b")...))
		if err != nil {
			t.Fatal(err)
		}
		b, err := env.mapChunk(ndjsonFields(roundRobin(4, "a", "b")...))
		if err != nil {
			t.Fatal(err)
		}
		Combine(a, b)
		if got := dd.hint.Load(); got != hintDedup {
			t.Fatalf("hint after repetitive merge = %d, want %d", got, hintDedup)
		}
	})

	t.Run("repetitive degraded portion resumes sampling", func(t *testing.T) {
		dd := autoTestDedup()
		dd.hint.Store(hintDegrade) // a settled degrade sends whole chunks down the plain path
		env := &Env{Fusion: fusion.Options{}, Dedup: dd}
		a, err := env.mapChunk(ndjsonFields(roundRobin(4, "a", "b")...))
		if err != nil {
			t.Fatal(err)
		}
		b, err := env.mapChunk(ndjsonFields(roundRobin(4, "a", "b")...))
		if err != nil {
			t.Fatal(err)
		}
		Combine(a, b)
		if got := dd.hint.Load(); got != hintSample {
			t.Fatalf("hint after repetitive degraded merge = %d, want %d (resume sampling)", got, hintSample)
		}
	})
}

// TestAutoStreamDegrade runs the adaptive accumulator under the
// sequential streaming driver across a mid-stream degrade and checks
// the fold against both fixed streaming modes.
func TestAutoStreamDegrade(t *testing.T) {
	// 8 all-distinct sampled records force a degrade, then 12 more
	// records (4 fresh shapes, with repeats) run down the plain path.
	records := append(
		[]string{"a", "b", "c", "d", "e", "f", "g", "h"},
		roundRobin(12, "w", "x", "y", "z")...)
	data := ndjsonFields(records...)

	autoEnv := &Env{Fusion: fusion.Options{}, Dedup: autoTestDedup()}
	acc, n, err := RunStream(context.Background(), autoEnv, strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("consumed %d bytes, want %d", n, len(data))
	}
	if got := autoEnv.Dedup.hint.Load(); got != hintDegrade {
		t.Fatalf("hint after all-distinct sample = %d, want %d", got, hintDegrade)
	}
	got := Fold(acc)
	if got.Records != int64(len(records)) {
		t.Fatalf("records = %d, want %d", got.Records, len(records))
	}

	dedupEnv := &Env{Fusion: fusion.Options{}, Dedup: NewDedup(fusion.Options{})}
	dacc, _, err := RunStream(context.Background(), dedupEnv, strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	want := Fold(dacc)
	if got.Fused.String() != want.Fused.String() {
		t.Errorf("fused: %s != %s", got.Fused, want.Fused)
	}
	if got.DistinctTypes != want.DistinctTypes || got.Records != want.Records {
		t.Errorf("stats: distinct %d/%d records %d/%d",
			got.DistinctTypes, want.DistinctTypes, got.Records, want.Records)
	}
	if got.MinTypeSize != want.MinTypeSize || got.MaxTypeSize != want.MaxTypeSize || got.AvgTypeSize != want.AvgTypeSize {
		t.Errorf("sizes: min %d/%d max %d/%d avg %v/%v",
			got.MinTypeSize, want.MinTypeSize, got.MaxTypeSize, want.MaxTypeSize,
			got.AvgTypeSize, want.AvgTypeSize)
	}

	plainEnv := &Env{Fusion: fusion.Options{}}
	pacc, _, err := RunStream(context.Background(), plainEnv, strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	plain := Fold(pacc)
	if got.Fused.String() != plain.Fused.String() {
		t.Errorf("fused vs plain stream: %s != %s", got.Fused, plain.Fused)
	}
	if got.Records != plain.Records {
		t.Errorf("records vs plain stream: %d != %d", got.Records, plain.Records)
	}
}
