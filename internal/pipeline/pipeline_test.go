package pipeline

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fusion"
)

// checkNoLeakedGoroutines asserts the goroutine count returns to its
// pre-test level, allowing the runtime a moment to wind workers down.
func checkNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// endlessFeed emits the same chunk until the pipeline refuses it, so
// only cancellation can end a run over it.
func endlessFeed(chunk []byte) Feed {
	return func(emit func([]byte) error) error {
		for {
			if err := emit(chunk); err != nil {
				return nil
			}
		}
	}
}

// cancelOnObserve is an obs.Recorder that fires a cancel the first time
// a given metric is observed — the hook the mid-combine test uses to
// cancel at a provably precise pipeline stage.
type cancelOnObserve struct {
	metric string
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelOnObserve) Add(string, int64) {}
func (c *cancelOnObserve) Set(string, int64) {}
func (c *cancelOnObserve) Observe(name string, _ int64) {
	if name == c.metric {
		c.once.Do(c.cancel)
	}
}

// TestRunMidFeedCancel cancels from the first progress tick — the feed
// is endless, so the feeder goroutine is provably mid-emit — and
// asserts a prompt, clean return with no surviving goroutines. This
// pins Run's own contract, independent of any Source adapter.
func TestRunMidFeedCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	env := &Env{Workers: 2, Progress: cancel}
	_, _, err := Run(ctx, env, endlessFeed([]byte(`{"a":1}`)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkNoLeakedGoroutines(t, before)
}

// TestRunMidCombineCancel cancels from inside a combine: the recorder
// fires the cancel the first time the engine times a combine step, so
// the run is past at least one merge when the context dies.
func TestRunMidCombineCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	env := &Env{
		Workers: 2,
		Rec:     &cancelOnObserve{metric: "mapreduce_combine_ns", cancel: cancel},
	}
	_, _, err := Run(ctx, env, endlessFeed([]byte(`{"a":1}`)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkNoLeakedGoroutines(t, before)
}

// TestRunPreCancelled asserts an already-dead context never starts
// work and still joins the feeder.
func TestRunPreCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Run(ctx, &Env{Workers: 2}, endlessFeed([]byte(`{"a":1}`)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkNoLeakedGoroutines(t, before)
}

// TestRunFeedError pins the producer-failure contract: a feed that
// fails surfaces as *FeedError wrapping the cause, distinguishable
// from a decode error, and the run leaves no goroutines behind.
func TestRunFeedError(t *testing.T) {
	before := runtime.NumGoroutine()
	cause := errors.New("disk on fire")
	feed := func(emit func([]byte) error) error {
		if err := emit([]byte(`{"a":1}`)); err != nil {
			return nil
		}
		return cause
	}
	_, _, err := Run(context.Background(), &Env{Workers: 2}, feed)
	var fe *FeedError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v (%T), want *FeedError", err, err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("errors.Is(err, cause) = false for %v", err)
	}
	checkNoLeakedGoroutines(t, before)

	// A decode failure is NOT a FeedError: the input arrived fine.
	_, _, err = Run(context.Background(), &Env{Workers: 1}, SliceFeed([][]byte{[]byte(`{"broken`)}))
	if err == nil {
		t.Fatal("invalid JSON accepted")
	}
	if errors.As(err, &fe) {
		t.Fatalf("decode error surfaced as FeedError: %v", err)
	}
}

// TestRunAndStreamAgree runs the same records through the chunked and
// streaming drivers, plain and dedup, and compares the folds — the two
// drivers share stages, so they must agree wherever both keep the
// bookkeeping (the plain streaming payload legitimately reports zero
// DistinctTypes).
func TestRunAndStreamAgree(t *testing.T) {
	data := bytes.Repeat([]byte(`{"a":1,"b":[1,2]}
{"a":"x"}
`), 50)
	for _, dedup := range []bool{false, true} {
		env := &Env{Workers: 2, Fusion: fusion.Options{}}
		streamEnv := &Env{Fusion: fusion.Options{}}
		if dedup {
			env.Dedup = NewDedup(env.Fusion)
			streamEnv.Dedup = NewDedup(streamEnv.Fusion)
		}
		acc, _, err := Run(context.Background(), env, SliceFeed([][]byte{data}))
		if err != nil {
			t.Fatal(err)
		}
		sacc, n, err := RunStream(context.Background(), streamEnv, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(data)) {
			t.Errorf("dedup=%v: stream consumed %d bytes, want %d", dedup, n, len(data))
		}
		chunked, streamed := Fold(acc), Fold(sacc)
		if chunked.Records != streamed.Records || chunked.Fused.String() != streamed.Fused.String() {
			t.Errorf("dedup=%v: chunked %+v vs streamed %+v", dedup, chunked, streamed)
		}
		if dedup && chunked.DistinctTypes != streamed.DistinctTypes {
			t.Errorf("dedup: DistinctTypes %d vs %d", chunked.DistinctTypes, streamed.DistinctTypes)
		}
	}
}

// TestRunStreamRecordError pins the 1-based record position in decode
// errors — the public API's "record %d" contract rides on it.
func TestRunStreamRecordError(t *testing.T) {
	r := strings.NewReader(`{"ok":1} {"broken`)
	_, _, err := RunStream(context.Background(), &Env{}, r)
	if err == nil || !strings.Contains(err.Error(), "record 2") {
		t.Fatalf("err = %v, want mention of record 2", err)
	}
}
