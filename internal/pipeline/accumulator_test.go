package pipeline

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/enrich"
	"repro/internal/enrich/monoidtest"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/types"
)

// monoidNDJSON mixes repeated and distinct shapes across every JSON
// kind, so the laws are exercised where fusion actually has work to do.
var monoidNDJSON = []byte(`{"a":1,"b":"x"}
{"a":2.5,"c":[1,2]}
[1,"two",true]
"s"
null
{"a":{"d":null},"b":"y"}
42
[{"k":1},{"k":2},{"k":3}]
{"a":1,"b":"x"}
{"c":[true,false],"a":7}
true
{"a":1,"b":"x"}
{"a":{"d":"deep"},"b":"y","e":[]}
[[1],[2,3]]
false`)

// monoidRecords splits the corpus into one line per record, the unit
// the random-subset generator samples.
func monoidRecords() [][]byte {
	return bytes.Split(monoidNDJSON, []byte("\n"))
}

// payload is one Accumulator implementation under test: an engine
// configuration plus the way it builds accumulators. All accumulators
// from the same payload share dedup state, exactly as the engine
// guarantees within one run.
type payload struct {
	name   string
	env    *Env
	stream bool
}

func payloads(t *testing.T) []payload {
	t.Helper()
	set, err := enrich.ParseSet([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	return []payload{
		{"plain", &Env{Fusion: fusion.Options{}}, false},
		{"plain-stream", &Env{Fusion: fusion.Options{}}, true},
		{"plain-tuples", &Env{Fusion: fusion.Options{PreserveTuples: true}}, false},
		{"dedup", &Env{Dedup: NewDedup(fusion.Options{})}, false},
		{"plain-enrich", &Env{Fusion: fusion.Options{}, Enrich: set}, false},
		{"dedup-enrich", &Env{Dedup: NewDedup(fusion.Options{}), Enrich: set}, false},
	}
}

// empty returns the payload's identity accumulator: the stream flavour
// for stream payloads, the chunked flavour otherwise.
func (p payload) empty() Accumulator {
	if p.stream {
		return p.env.NewStreamAcc()
	}
	return p.env.NewAcc()
}

// buildChunk runs a chunk of records through the payload's real map
// path (mapChunk for chunked modes, the stream accumulator otherwise),
// so the harness exercises exactly what the engine produces.
func buildChunk(t *testing.T, p payload, chunk []byte) Accumulator {
	t.Helper()
	if p.stream {
		acc := p.env.NewStreamAcc()
		ts, err := infer.InferAll(chunk)
		if err != nil {
			t.Fatal(err)
		}
		for _, typ := range ts {
			acc.Add(typ)
		}
		return acc
	}
	acc, err := p.env.mapChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

// resultFingerprint renders every observable field of a folded Result,
// including the enrichment report, so two accumulators fingerprint
// equal iff they are observationally equal.
func resultFingerprint(t *testing.T, res Result) string {
	t.Helper()
	enr := "<nil>"
	if res.Enrichment != nil {
		data, err := res.Enrichment.MarshalReport()
		if err != nil {
			t.Fatal(err)
		}
		enr = string(data)
	}
	return fmt.Sprintf("fused=%s records=%d distinct=%d sizes=%d..%d avg=%v enrich=%s",
		res.Fused, res.Records, res.DistinctTypes, res.MinTypeSize, res.MaxTypeSize, res.AvgTypeSize, enr)
}

// TestAccumulatorConformance runs every accumulator payload — with and
// without enrichment — through the shared monoid-law harness: identity,
// commutativity, associativity, random merge trees versus the
// sequential fold, and non-mutation of the second operand. AvgTypeSize
// is fingerprinted exactly: every implementation accumulates integer
// sums (far below 2^53) and divides once, so any merge order yields
// the same bits.
func TestAccumulatorConformance(t *testing.T) {
	records := monoidRecords()
	for _, p := range payloads(t) {
		monoidtest.Run(t, monoidtest.Subject{
			Name:  p.name,
			Empty: func() any { return p.empty() },
			Rand: func(r *rand.Rand) any {
				// A random multiset of records in random order, joined
				// into one chunk — some draws are empty, covering the
				// empty-chunk accumulator.
				n := r.Intn(len(records) + 1)
				var chunk []byte
				for i := 0; i < n; i++ {
					chunk = append(chunk, records[r.Intn(len(records))]...)
					chunk = append(chunk, '\n')
				}
				if len(chunk) == 0 {
					return p.empty()
				}
				return buildChunk(t, p, chunk)
			},
			Merge: func(a, b any) any {
				return Combine(a.(Accumulator), b.(Accumulator))
			},
			Fingerprint: func(x any) string {
				return resultFingerprint(t, Fold(x.(Accumulator)))
			},
		})
	}
}

// TestCombineNilIdentity pins the engine's nil identity, which the
// harness cannot express: Combine treats nil as the zero accumulator
// and Fold(nil) is the empty Result.
func TestCombineNilIdentity(t *testing.T) {
	for _, p := range payloads(t) {
		t.Run(p.name, func(t *testing.T) {
			acc := buildChunk(t, p, monoidNDJSON)
			want := resultFingerprint(t, Fold(acc))
			if got := Combine(nil, acc); got != acc {
				t.Error("Combine(nil, acc) is not acc")
			}
			if got := Combine(acc, nil); got != acc {
				t.Error("Combine(acc, nil) is not acc")
			}
			if got := resultFingerprint(t, Fold(acc)); got != want {
				t.Errorf("nil combines changed the accumulator\n got %s\nwant %s", got, want)
			}
			empty := Fold(nil)
			if !types.Equal(empty.Fused, types.Empty) || empty.Records != 0 || empty.Enrichment != nil {
				t.Errorf("Fold(nil) = %+v, want empty Result", empty)
			}
		})
	}
}
