package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/types"
)

// monoidNDJSON mixes repeated and distinct shapes across every JSON
// kind, so the laws are exercised where fusion actually has work to do.
var monoidNDJSON = []byte(`{"a":1,"b":"x"}
{"a":2.5,"c":[1,2]}
[1,"two",true]
"s"
null
{"a":{"d":null},"b":"y"}
42
[{"k":1},{"k":2},{"k":3}]
{"a":1,"b":"x"}
{"c":[true,false],"a":7}
true
{"a":1,"b":"x"}
{"a":{"d":"deep"},"b":"y","e":[]}
[[1],[2,3]]
false`)

func monoidTypes(t *testing.T) []types.Type {
	t.Helper()
	ts, err := infer.InferAll(monoidNDJSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) < 10 {
		t.Fatalf("only %d test types", len(ts))
	}
	return ts
}

// payload is one Accumulator implementation under test. fresh returns
// an empty accumulator; all accumulators from the same payload share
// dedup state, exactly as the engine guarantees within one run.
type payload struct {
	name  string
	fresh func() Accumulator
}

func payloads() []payload {
	plainEnv := &Env{Fusion: fusion.Options{}}
	tupleEnv := &Env{Fusion: fusion.Options{PreserveTuples: true}}
	dedupEnv := &Env{Dedup: NewDedup(fusion.Options{})}
	return []payload{
		{"plain", plainEnv.NewAcc},
		{"plain-stream", plainEnv.NewStreamAcc},
		{"plain-tuples", tupleEnv.NewAcc},
		{"dedup", dedupEnv.NewAcc},
	}
}

// build adds the given types, in order, to a fresh accumulator.
func build(p payload, ts []types.Type) Accumulator {
	acc := p.fresh()
	for _, t := range ts {
		acc.Add(t)
	}
	return acc
}

// mustEqual compares the observable Result fields. AvgTypeSize is
// compared exactly: every implementation accumulates integer sums (far
// below 2^53) and divides once, so any merge order yields the same
// bits.
func mustEqual(t *testing.T, got, want Result, context string) {
	t.Helper()
	if !types.Equal(got.Fused, want.Fused) {
		t.Errorf("%s: Fused = %v, want %v", context, got.Fused, want.Fused)
	}
	if got.Records != want.Records {
		t.Errorf("%s: Records = %d, want %d", context, got.Records, want.Records)
	}
	if got.DistinctTypes != want.DistinctTypes {
		t.Errorf("%s: DistinctTypes = %d, want %d", context, got.DistinctTypes, want.DistinctTypes)
	}
	if got.MinTypeSize != want.MinTypeSize || got.MaxTypeSize != want.MaxTypeSize {
		t.Errorf("%s: Min/MaxTypeSize = %d/%d, want %d/%d",
			context, got.MinTypeSize, got.MaxTypeSize, want.MinTypeSize, want.MaxTypeSize)
	}
	if got.AvgTypeSize != want.AvgTypeSize {
		t.Errorf("%s: AvgTypeSize = %v, want %v", context, got.AvgTypeSize, want.AvgTypeSize)
	}
}

// TestAccumulatorIdentity pins the monoid identity: nil (the engine's
// zero) and a fresh empty accumulator both merge as no-ops, on either
// side.
func TestAccumulatorIdentity(t *testing.T) {
	ts := monoidTypes(t)
	for _, p := range payloads() {
		t.Run(p.name, func(t *testing.T) {
			want := Fold(build(p, ts))

			if acc := build(p, ts); Combine(nil, acc) != acc {
				t.Error("Combine(nil, acc) is not acc")
			}
			if acc := build(p, ts); Combine(acc, nil) != acc {
				t.Error("Combine(acc, nil) is not acc")
			}
			mustEqual(t, Fold(Combine(p.fresh(), build(p, ts))), want, "empty·acc")
			mustEqual(t, Fold(Combine(build(p, ts), p.fresh())), want, "acc·empty")
			mustEqual(t, Fold(nil), Result{Fused: types.Empty}, "Fold(nil)")
		})
	}
}

// TestAccumulatorCommutativity pins a·b = b·a for a random split, the
// law that lets the engine combine chunk results in completion order.
func TestAccumulatorCommutativity(t *testing.T) {
	ts := monoidTypes(t)
	for _, p := range payloads() {
		t.Run(p.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 20; trial++ {
				cut := 1 + rng.Intn(len(ts)-1)
				ab := Fold(Combine(build(p, ts[:cut]), build(p, ts[cut:])))
				ba := Fold(Combine(build(p, ts[cut:]), build(p, ts[:cut])))
				mustEqual(t, ba, ab, "b·a vs a·b")
			}
		})
	}
}

// TestAccumulatorAssociativity pins (a·b)·c = a·(b·c), the law that
// makes the reduction tree's shape invisible.
func TestAccumulatorAssociativity(t *testing.T) {
	ts := monoidTypes(t)
	for _, p := range payloads() {
		t.Run(p.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 20; trial++ {
				i := 1 + rng.Intn(len(ts)-2)
				j := i + 1 + rng.Intn(len(ts)-i-1)
				parts := [][]types.Type{ts[:i], ts[i:j], ts[j:]}
				left := Fold(Combine(Combine(build(p, parts[0]), build(p, parts[1])), build(p, parts[2])))
				right := Fold(Combine(build(p, parts[0]), Combine(build(p, parts[1]), build(p, parts[2]))))
				mustEqual(t, right, left, "a·(b·c) vs (a·b)·c")
			}
		})
	}
}

// TestAccumulatorRandomMergeTrees is the full distribution argument:
// any partition of the records into groups (some possibly empty),
// merged in any random tree order, folds to the same Result as one
// sequential accumulator — chunking, scheduling and worker count are
// invisible.
func TestAccumulatorRandomMergeTrees(t *testing.T) {
	ts := monoidTypes(t)
	for _, p := range payloads() {
		t.Run(p.name, func(t *testing.T) {
			want := Fold(build(p, ts))
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 50; trial++ {
				k := 1 + rng.Intn(8)
				groups := make([][]types.Type, k)
				for _, typ := range ts {
					g := rng.Intn(k)
					groups[g] = append(groups[g], typ)
				}
				accs := make([]Accumulator, k)
				for i, g := range groups {
					accs[i] = build(p, g)
				}
				for len(accs) > 1 {
					i := rng.Intn(len(accs))
					j := rng.Intn(len(accs) - 1)
					if j >= i {
						j++
					}
					// Merge j into i, then delete slot j by swapping in the
					// tail (the swap is safe even when i or j is the tail:
					// the merged value survives in exactly one slot).
					accs[i] = Combine(accs[i], accs[j])
					accs[j] = accs[len(accs)-1]
					accs = accs[:len(accs)-1]
				}
				mustEqual(t, Fold(accs[0]), want, "random merge tree")
			}
		})
	}
}
