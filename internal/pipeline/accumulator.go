package pipeline

import (
	"repro/internal/enrich"
	"repro/internal/fusion"
	"repro/internal/intern"
	"repro/internal/stats"
	"repro/internal/types"
)

// An Accumulator is one partial result of the reduce phase: the monoid
// the engine folds over. The paper's distribution argument (Theorems
// 5.4 and 5.5) is exactly that this fold is a commutative monoid —
// Merge is associative and commutative, the empty accumulator (and nil,
// see Combine) is its identity — so chunking, scheduling and worker
// count are invisible in the Fold.
//
// There are two implementations, selected by Env.Dedup: the plain
// payload (a stats.Summary plus the running fused type) and the dedup
// payload (a multiset of distinct interned types plus the fused type).
// Both satisfy the same laws, property-tested in accumulator_test.go
// the same way Fuse and obs snapshots are.
type Accumulator interface {
	// Add types one record into the accumulator — the map step at
	// record granularity. The streaming driver calls it per decoded
	// value; chunk map tasks call it in a loop over the chunk.
	Add(t types.Type)
	// Merge absorbs other into the receiver. Associative and
	// commutative; other must come from the same Env (same fusion
	// policy and, under dedup, the same intern table).
	Merge(other Accumulator)
	// Fold finalizes the accumulator into a Result. It does not consume
	// the accumulator, but callers treat it as the last step.
	Fold() Result
}

// Result is a folded Accumulator: the fused type and the type-level
// statistics of Tables 2-5. The byte-level numbers (input bytes,
// retries, quarantined chunks) belong to the feed side and are filled
// in by the caller.
type Result struct {
	// Fused is the final schema (types.Empty when nothing was added).
	Fused types.Type
	// Records is the number of values typed.
	Records int64
	// DistinctTypes is the number of distinct types seen. Zero on the
	// plain streaming payload, which cannot afford the bookkeeping;
	// exact on the plain chunked and both dedup payloads.
	DistinctTypes int
	// MinTypeSize, MaxTypeSize and AvgTypeSize describe the per-value
	// type sizes.
	MinTypeSize, MaxTypeSize int
	AvgTypeSize              float64
	// Summary is the full measurement payload of the plain chunked
	// path (exemplars, distinct counts), used by the experiments
	// harness; nil on the streaming and dedup payloads.
	Summary *stats.Summary
	// Enrichment is the combined enrichment lattice of the run; nil
	// with Env.Enrich unset (or when nothing was fed).
	Enrichment *enrich.Lattice
}

// Combine merges two accumulators, treating nil as the identity — the
// shape the map-reduce engine's zero value takes. Returns the merged
// accumulator (one of its arguments).
func Combine(a, b Accumulator) Accumulator {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	a.Merge(b)
	return a
}

// Fold finalizes an accumulator, treating nil (no input at all) as the
// empty Result.
func Fold(acc Accumulator) Result {
	if acc == nil {
		return Result{Fused: types.Empty}
	}
	return acc.Fold()
}

// NewAcc returns the empty accumulator of the Env's payload kind with
// full distinct-type bookkeeping — the granularity of the chunked
// pipeline.
func (e *Env) NewAcc() Accumulator {
	if e.Dedup != nil {
		if e.Dedup.Auto {
			return newAutoAcc(e.Dedup, e.Fusion)
		}
		return &dedupAcc{dd: e.Dedup, ms: intern.NewMultiset(), fused: types.Empty}
	}
	return &plainAcc{fz: e.Fusion, sum: &stats.Summary{}, fused: types.Empty}
}

// NewStreamAcc returns the constant-memory variant for the sequential
// streaming driver: the plain payload drops the distinct-type
// bookkeeping (Result.DistinctTypes stays zero), the dedup payload is
// unchanged — its memory is bounded by the number of distinct types,
// which is the point of deduplication.
func (e *Env) NewStreamAcc() Accumulator {
	if e.Dedup != nil {
		return e.NewAcc()
	}
	return &plainAcc{fz: e.Fusion, fused: types.Empty}
}

// plainAcc is the default payload: a summary of per-record type sizes
// plus the running fused type. With sum set (chunked granularity) the
// summary also counts distinct types by structural hash; with sum nil
// (streaming granularity) only the inline tallies are kept, so memory
// stays constant.
type plainAcc struct {
	fz  fusion.Options
	sum *stats.Summary
	// lat is the chunk's (then the run's) enrichment lattice; nil with
	// enrichment off. Merges ride the accumulator merge, so enrichment
	// inherits the engine's exactly-once combine.
	lat *enrich.Lattice
	// Inline tallies of the streaming mode (sum == nil).
	count    int64
	sumSize  int64
	min, max int
	fused    types.Type
}

func (a *plainAcc) Add(t types.Type) {
	if a.sum != nil {
		a.sum.Add(t)
	} else {
		size := t.Size()
		if a.count == 0 || size < a.min {
			a.min = size
		}
		if size > a.max {
			a.max = size
		}
		a.count++
		a.sumSize += int64(size)
	}
	a.fused = a.fz.Fuse(a.fused, a.fz.Simplify(t))
}

func (a *plainAcc) Merge(other Accumulator) {
	b := other.(*plainAcc)
	if a.sum != nil {
		a.sum.Merge(b.sum)
	} else if b.count > 0 {
		if a.count == 0 || b.min < a.min {
			a.min = b.min
		}
		if b.max > a.max {
			a.max = b.max
		}
		a.count += b.count
		a.sumSize += b.sumSize
	}
	a.fused = a.fz.Fuse(a.fused, b.fused)
	a.lat = mergeLattices(a.lat, b.lat)
}

func (a *plainAcc) Fold() Result {
	if a.sum != nil {
		return Result{
			Fused:         a.fz.Finalize(a.fused),
			Records:       a.sum.Count(),
			DistinctTypes: a.sum.Distinct(),
			MinTypeSize:   a.sum.MinSize(),
			MaxTypeSize:   a.sum.MaxSize(),
			AvgTypeSize:   a.sum.AvgSize(),
			Summary:       a.sum,
			Enrichment:    a.lat,
		}
	}
	r := Result{Fused: a.fz.Finalize(a.fused), Records: a.count, MinTypeSize: a.minSize(), MaxTypeSize: a.max, Enrichment: a.lat}
	if a.count > 0 {
		r.AvgTypeSize = float64(a.sumSize) / float64(a.count)
	}
	return r
}

func (a *plainAcc) minSize() int {
	if a.count == 0 {
		return 0
	}
	return a.min
}

// dedupAcc is the hash-consed payload: a multiset of distinct interned
// types (identity-merged across chunks and files, so distinct counts
// stay exact) plus the fused type, fused through the memo so each
// distinct pair fuses at most once per run.
type dedupAcc struct {
	dd    *Dedup
	ms    *intern.Multiset
	fused types.Type
	lat   *enrich.Lattice
}

func (a *dedupAcc) Add(t types.Type) {
	ref, ok := a.dd.Tab.Ref(t)
	if !ok {
		ref, _ = a.dd.Tab.Ref(a.dd.Tab.Canon(t))
	}
	// Absorption — fuse(fuse(A, s), s) = fuse(A, s) for the simplified s
	// of an already-seen type — lets the record-at-a-time path skip both
	// the Simplify and the Fuse for repeats.
	if !a.ms.Contains(ref.ID) {
		a.fused = a.dd.Memo.Fuse(a.fused, a.dd.Memo.Simplify(t))
	}
	a.ms.Add(ref, 1)
}

func (a *dedupAcc) Merge(other Accumulator) {
	b := other.(*dedupAcc)
	a.ms.Merge(b.ms)
	a.fused = a.dd.Memo.Fuse(a.fused, b.fused)
	a.lat = mergeLattices(a.lat, b.lat)
}

// Fold recovers the per-record statistics from the distinct-type
// multiset. The sum of sizes is accumulated in an int64 exactly like
// stats.Summary does (sizes and counts stay far below 2^53), so
// AvgTypeSize is bit-identical to the per-record accumulation of the
// plain payload.
func (a *dedupAcc) Fold() Result {
	r := Result{Fused: a.dd.Memo.Finalize(a.fused), Enrichment: a.lat}
	var sumSize int64
	for i, e := range a.ms.Elems() {
		if i == 0 || e.Size < r.MinTypeSize {
			r.MinTypeSize = e.Size
		}
		if e.Size > r.MaxTypeSize {
			r.MaxTypeSize = e.Size
		}
		sumSize += int64(e.Size) * e.Count
		r.Records += e.Count
	}
	r.DistinctTypes = a.ms.Len()
	if r.Records > 0 {
		r.AvgTypeSize = float64(sumSize) / float64(r.Records)
	}
	return r
}

// autoAcc is the adaptive payload of DedupAuto runs: a hybrid of the
// two fixed payloads. Records typed through the interner live in the
// multiset (exact distinct counts, memoized fusion); records typed
// after a chunk degraded live in a plain tally (structural-hash
// distinct counting, exactly like the plain chunked payload). Any mix
// of the two folds to the same bytes as either fixed payload: min, max
// and the int64 size sum combine exactly, the average is one division,
// and the distinct count is the union of the structural hashes of both
// portions — the same hashes the plain payload counts with.
type autoAcc struct {
	dd *Dedup
	fz fusion.Options
	ms *intern.Multiset
	// deg tallies the records of degraded (non-interned) portions.
	deg   plainTally
	fused types.Type
	lat   *enrich.Lattice

	// Streaming-driver state: degraded flips once the sampled window
	// triggers the degrade predicate, tab0 anchors the node-growth
	// measurement. Chunk map tasks manage sampling themselves and never
	// touch these.
	degraded bool
	tab0     int
}

// newAutoAcc returns the empty adaptive accumulator of an auto run.
func newAutoAcc(dd *Dedup, fz fusion.Options) *autoAcc {
	return &autoAcc{dd: dd, fz: fz, ms: intern.NewMultiset(), fused: types.Empty, tab0: dd.Tab.Len()}
}

// plainTally is the degraded portion's bookkeeping: the inline tallies
// of the plain payload plus structural-hash distinct counting.
type plainTally struct {
	distinct map[uint64]struct{}
	records  int64
	sumSize  int64
	min, max int
}

func (p *plainTally) add(t types.Type) {
	size := t.Size()
	if p.records == 0 || size < p.min {
		p.min = size
	}
	if size > p.max {
		p.max = size
	}
	p.records++
	p.sumSize += int64(size)
	if p.distinct == nil {
		p.distinct = make(map[uint64]struct{}, 64)
	}
	p.distinct[types.Hash(t)] = struct{}{}
}

func (p *plainTally) merge(q *plainTally) {
	if q.records == 0 {
		return
	}
	if p.records == 0 || q.min < p.min {
		p.min = q.min
	}
	if q.max > p.max {
		p.max = q.max
	}
	p.records += q.records
	p.sumSize += q.sumSize
	if p.distinct == nil {
		p.distinct = make(map[uint64]struct{}, len(q.distinct))
	}
	for h := range q.distinct {
		p.distinct[h] = struct{}{}
	}
}

// Add types one record at streaming granularity: the dedup path with
// absorption while sampling, the plain path after a degrade. The
// streaming driver unsets the decoder's interner once degraded (see
// RunStream), so t arrives in whichever representation the current
// mode expects — both hash and fuse structurally.
func (a *autoAcc) Add(t types.Type) {
	if a.degraded {
		a.deg.add(t)
		a.fused = a.fz.Fuse(a.fused, a.fz.Simplify(t))
		return
	}
	ref, ok := a.dd.Tab.Ref(t)
	if !ok {
		ref, _ = a.dd.Tab.Ref(a.dd.Tab.Canon(t))
	}
	if !a.ms.Contains(ref.ID) {
		a.fused = a.dd.Memo.Fuse(a.fused, a.dd.Memo.Simplify(t))
	}
	a.ms.Add(ref, 1)
	if n := a.ms.Total(); n == int64(a.dd.sampleSize()) {
		a.dd.noteSample(n, int64(a.dd.Tab.Len()-a.tab0))
		if a.dd.decide(int64(a.ms.Len()), n, a.dd.sampledGrowth()) {
			a.degraded = true
		}
	}
}

func (a *autoAcc) Merge(other Accumulator) {
	b := other.(*autoAcc)
	a.ms.Merge(b.ms)
	a.deg.merge(&b.deg)
	a.fused = a.fz.Fuse(a.fused, b.fused)
	a.lat = mergeLattices(a.lat, b.lat)
	a.recheck()
}

// recheck is the combine-boundary half of the adaptive layer: once
// enough records have merged, the multiset cardinality versus its
// record total re-tests the degrade predicate (with the node-growth
// evidence gathered while sampling), and a degraded run whose plain
// portion turns repetitive is sent back to sampling. Purely a shared
// cost hint — it never changes what this accumulator folds to.
func (a *autoAcc) recheck() {
	dd := a.dd
	if n := a.ms.Total(); n >= int64(dd.sampleSize()) {
		if float64(a.ms.Len()) >= dd.threshold()*float64(n) {
			if dd.sampledGrowth() >= dd.nodeGrowth() {
				dd.hint.Store(hintDegrade)
			}
		} else {
			dd.hint.Store(hintDedup)
		}
	}
	if a.deg.records >= int64(dd.sampleSize()) &&
		float64(len(a.deg.distinct)) < dd.threshold()*float64(a.deg.records) {
		dd.hint.Store(hintSample)
	}
}

// Fold combines both portions into the same statistics either fixed
// payload derives.
func (a *autoAcc) Fold() Result {
	r := Result{Fused: a.fz.Finalize(a.fused), Enrichment: a.lat}
	var sumSize int64
	seen := make(map[uint64]struct{}, a.ms.Len()+len(a.deg.distinct))
	first := true
	for _, el := range a.ms.Elems() {
		if first || el.Size < r.MinTypeSize {
			r.MinTypeSize = el.Size
			first = false
		}
		if el.Size > r.MaxTypeSize {
			r.MaxTypeSize = el.Size
		}
		sumSize += int64(el.Size) * el.Count
		r.Records += el.Count
		seen[types.Hash(el.Type)] = struct{}{}
	}
	if a.deg.records > 0 {
		if first || a.deg.min < r.MinTypeSize {
			r.MinTypeSize = a.deg.min
		}
		if a.deg.max > r.MaxTypeSize {
			r.MaxTypeSize = a.deg.max
		}
		sumSize += a.deg.sumSize
		r.Records += a.deg.records
		for h := range a.deg.distinct {
			seen[h] = struct{}{}
		}
	}
	r.DistinctTypes = len(seen)
	if r.Records > 0 {
		r.AvgTypeSize = float64(sumSize) / float64(r.Records)
	}
	return r
}

// mergeLattices combines the enrichment lattices of two accumulators
// in place on a, treating nil as the identity. Within one run either
// both sides carry a lattice or neither does; the nil cases keep the
// merge total for hand-built accumulators in tests.
func mergeLattices(a, b *enrich.Lattice) *enrich.Lattice {
	if a == nil {
		return b
	}
	a.Merge(b)
	return a
}

// attachLattice hands a run-scoped lattice to a freshly built
// accumulator (the streaming driver observes the whole stream into one
// lattice rather than one per chunk).
func attachLattice(acc Accumulator, lat *enrich.Lattice) {
	switch a := acc.(type) {
	case *plainAcc:
		a.lat = lat
	case *dedupAcc:
		a.lat = lat
	case *autoAcc:
		a.lat = lat
	}
}
