// Package diff computes structural differences between two inferred
// schemas. This is the change-tracking application sketched in the
// paper's related work discussion of Scherzinger et al. [21]: with full
// schemas on both sides, attribute removals, additions, kind changes and
// optionality changes all become visible, not just base-type mismatches.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// Kind classifies one difference.
type Kind int

// Difference kinds.
const (
	// Added: the path exists only in the new schema.
	Added Kind = iota
	// Removed: the path exists only in the old schema.
	Removed
	// TypeChanged: both schemas have the path with different types.
	TypeChanged
	// MadeOptional: the field is mandatory in the old schema, optional
	// in the new one.
	MadeOptional
	// MadeMandatory: the reverse.
	MadeMandatory
)

// String names the difference kind.
func (k Kind) String() string {
	switch k {
	case Added:
		return "added"
	case Removed:
		return "removed"
	case TypeChanged:
		return "type-changed"
	case MadeOptional:
		return "made-optional"
	case MadeMandatory:
		return "made-mandatory"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Entry is one reported difference.
type Entry struct {
	// Path is the slash-separated field path from the root; array
	// element positions appear as "[]".
	Path string
	Kind Kind
	// Old and New are the rendered types on each side, when applicable.
	Old, New string
}

// String renders the entry as a one-line report.
func (e Entry) String() string {
	switch e.Kind {
	case Added:
		return fmt.Sprintf("+ %-14s %s : %s", e.Kind, e.Path, e.New)
	case Removed:
		return fmt.Sprintf("- %-14s %s : %s", e.Kind, e.Path, e.Old)
	default:
		return fmt.Sprintf("~ %-14s %s : %s -> %s", e.Kind, e.Path, e.Old, e.New)
	}
}

// Compare reports the differences between two schemas, sorted by path.
// Records compare field-wise; array types compare on their element
// types; everything else compares structurally.
func Compare(old, new types.Type) []Entry {
	var out []Entry
	walk(".", old, new, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

func walk(path string, old, new types.Type, out *[]Entry) {
	if types.Equal(old, new) {
		return
	}
	or, oldIsRec := recordAlt(old)
	nr, newIsRec := recordAlt(new)
	oldMap, oldIsMap := mapAlt(old)
	newMap, newIsMap := mapAlt(new)
	oldArr, oldIsArr := arrayElem(old)
	newArr, newIsArr := arrayElem(new)

	switch {
	case oldIsMap && newIsMap:
		walk(join(path, "*"), oldMap, newMap, out)
	case oldIsRec && newIsRec:
		walkRecords(path, or, nr, out)
		// Also report non-record alternative changes (e.g. Str + {..}
		// becoming just {..}).
		oldRest, newRest := stripKind(old, types.KindRecord), stripKind(new, types.KindRecord)
		if !types.Equal(oldRest, newRest) {
			*out = append(*out, Entry{Path: path, Kind: TypeChanged, Old: old.String(), New: new.String()})
		}
	case oldIsArr && newIsArr:
		walk(join(path, "[]"), oldArr, newArr, out)
	default:
		*out = append(*out, Entry{Path: path, Kind: TypeChanged, Old: old.String(), New: new.String()})
	}
}

func walkRecords(path string, old, new *types.Record, out *[]Entry) {
	of, nf := old.Fields(), new.Fields()
	i, j := 0, 0
	for i < len(of) && j < len(nf) {
		switch {
		case of[i].Key == nf[j].Key:
			p := join(path, of[i].Key)
			if of[i].Optional != nf[j].Optional {
				kind := MadeOptional
				if of[i].Optional {
					kind = MadeMandatory
				}
				*out = append(*out, Entry{Path: p, Kind: kind, Old: of[i].Type.String(), New: nf[j].Type.String()})
			}
			walk(p, of[i].Type, nf[j].Type, out)
			i++
			j++
		case of[i].Key < nf[j].Key:
			*out = append(*out, Entry{Path: join(path, of[i].Key), Kind: Removed, Old: of[i].Type.String()})
			i++
		default:
			*out = append(*out, Entry{Path: join(path, nf[j].Key), Kind: Added, New: nf[j].Type.String()})
			j++
		}
	}
	for ; i < len(of); i++ {
		*out = append(*out, Entry{Path: join(path, of[i].Key), Kind: Removed, Old: of[i].Type.String()})
	}
	for ; j < len(nf); j++ {
		*out = append(*out, Entry{Path: join(path, nf[j].Key), Kind: Added, New: nf[j].Type.String()})
	}
}

// mapAlt extracts the abstracted-record alternative, if any.
func mapAlt(t types.Type) (types.Type, bool) {
	for _, a := range types.Addends(t) {
		if m, ok := a.(*types.Map); ok {
			return m.Elem(), true
		}
	}
	return nil, false
}

// recordAlt extracts the record alternative of a possibly-union type.
func recordAlt(t types.Type) (*types.Record, bool) {
	for _, a := range types.Addends(t) {
		if r, ok := a.(*types.Record); ok {
			return r, true
		}
	}
	return nil, false
}

// arrayElem extracts the element type of the array alternative, if any.
// Tuples contribute the union of their element types.
func arrayElem(t types.Type) (types.Type, bool) {
	for _, a := range types.Addends(t) {
		switch at := a.(type) {
		case *types.Repeated:
			return at.Elem(), true
		case *types.Tuple:
			u, err := types.NewUnion(at.Elems()...)
			if err == nil {
				return u, true
			}
		}
	}
	return nil, false
}

// stripKind removes the alternatives of the given kind from a type.
func stripKind(t types.Type, k types.Kind) types.Type {
	var keep []types.Type
	for _, a := range types.Addends(t) {
		if ak, ok := types.KindOf(a); ok && ak == k {
			continue
		}
		keep = append(keep, a)
	}
	return types.MustUnion(keep...)
}

func join(path, key string) string {
	if path == "." {
		return "./" + key
	}
	return path + "/" + key
}

// Render formats the entries as a multi-line report; "no differences"
// when empty.
func Render(entries []Entry) string {
	if len(entries) == 0 {
		return "no differences\n"
	}
	var sb strings.Builder
	for _, e := range entries {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
