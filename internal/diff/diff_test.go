package diff

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func compare(t *testing.T, old, new string) []Entry {
	t.Helper()
	return Compare(types.MustParse(old), types.MustParse(new))
}

func TestNoDifferences(t *testing.T) {
	if got := compare(t, "{a: Num, b: Str?}", "{a: Num, b: Str?}"); len(got) != 0 {
		t.Errorf("diff of identical schemas = %v", got)
	}
	if Render(nil) != "no differences\n" {
		t.Errorf("Render(nil) = %q", Render(nil))
	}
}

func TestAddedRemoved(t *testing.T) {
	got := compare(t, "{a: Num}", "{a: Num, b: Str}")
	if len(got) != 1 || got[0].Kind != Added || got[0].Path != "./b" || got[0].New != "Str" {
		t.Errorf("diff = %v", got)
	}
	got = compare(t, "{a: Num, b: Str}", "{b: Str}")
	if len(got) != 1 || got[0].Kind != Removed || got[0].Path != "./a" {
		t.Errorf("diff = %v", got)
	}
}

func TestTypeChanged(t *testing.T) {
	got := compare(t, "{a: Num}", "{a: Str}")
	if len(got) != 1 || got[0].Kind != TypeChanged || got[0].Old != "Num" || got[0].New != "Str" {
		t.Errorf("diff = %v", got)
	}
}

func TestOptionalityChanges(t *testing.T) {
	got := compare(t, "{a: Num}", "{a: Num?}")
	if len(got) != 1 || got[0].Kind != MadeOptional {
		t.Errorf("diff = %v", got)
	}
	got = compare(t, "{a: Num?}", "{a: Num}")
	if len(got) != 1 || got[0].Kind != MadeMandatory {
		t.Errorf("diff = %v", got)
	}
}

func TestNestedPaths(t *testing.T) {
	got := compare(t, "{a: {b: {c: Num}}}", "{a: {b: {c: Str, d: Bool}}}")
	if len(got) != 2 {
		t.Fatalf("diff = %v", got)
	}
	paths := map[string]Kind{}
	for _, e := range got {
		paths[e.Path] = e.Kind
	}
	if paths["./a/b/c"] != TypeChanged || paths["./a/b/d"] != Added {
		t.Errorf("diff = %v", got)
	}
}

func TestArrayElementPaths(t *testing.T) {
	got := compare(t, "{tags: [Str*]}", "{tags: [(Num + Str)*]}")
	if len(got) != 1 || got[0].Path != "./tags/[]" || got[0].Kind != TypeChanged {
		t.Errorf("diff = %v", got)
	}
	// Tuples compare via their element union.
	got = compare(t, "{xs: [Num, Num]}", "{xs: [Num*]}")
	if len(got) != 0 {
		t.Errorf("tuple vs repeated of same element type = %v", got)
	}
}

func TestUnionRecordAlternative(t *testing.T) {
	// The record part diffs field-wise even inside a union; losing the
	// Str alternative is reported at the union's own path.
	got := compare(t, "{a: Str + {x: Num}}", "{a: {x: Num, y: Bool}}")
	paths := map[string]Kind{}
	for _, e := range got {
		paths[e.Path] = e.Kind
	}
	if paths["./a/y"] != Added {
		t.Errorf("missing added nested field: %v", got)
	}
	if paths["./a"] != TypeChanged {
		t.Errorf("missing union change report: %v", got)
	}
}

func TestKindCrossDifference(t *testing.T) {
	got := compare(t, "{a: Num}", "[Num*]")
	if len(got) != 1 || got[0].Kind != TypeChanged || got[0].Path != "." {
		t.Errorf("diff = %v", got)
	}
}

func TestRenderShape(t *testing.T) {
	entries := compare(t, "{a: Num, b: Str}", "{a: Str, c: Bool?}")
	out := Render(entries)
	for _, want := range []string{"~ type-changed", "- removed", "+ added", "./a", "./b", "./c"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEntriesSortedByPath(t *testing.T) {
	got := compare(t, "{z: Num, a: Num}", "{z: Str, a: Str}")
	if len(got) != 2 || got[0].Path != "./a" || got[1].Path != "./z" {
		t.Errorf("entries not sorted: %v", got)
	}
}

func TestKindString(t *testing.T) {
	for k := Added; k <= MadeMandatory; k++ {
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind(%d) has no name", k)
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind should show its code")
	}
}
