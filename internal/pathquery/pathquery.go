// Package pathquery implements the query-optimization applications the
// paper motivates in Section 1: because the inferred schema is a
// *global* description — "each path that can be traversed in the
// tree-structure of each input JSON value can be traversed in the
// inferred schema as well" — path expressions can be analyzed against
// the schema at compile time:
//
//   - wildcard expansion ([16] in the paper): $.user.* expands to the
//     concrete key paths the data can actually contain;
//   - static typing of a path: the type of every value the path can
//     select, and whether the path can miss (optional steps);
//   - projection ([9] in the paper): given the paths a query needs,
//     build a mask that loads only those fragments of each record,
//     which is how "main-memory tools" can avoid materializing unused
//     data.
//
// The path language is a small JSONPath-like core:
//
//	$            the root
//	.key         record field access (quote with ["key"] for any key)
//	.*           any record field (wildcard)
//	[*]          any array element
//
// Paths are purely structural, matching the schema's nature.
package pathquery

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
	"repro/internal/value"
)

// Step is one path component.
type Step struct {
	// Kind discriminates the step.
	Kind StepKind
	// Key is the field name for StepField.
	Key string
}

// StepKind enumerates path step kinds.
type StepKind int

// Step kinds.
const (
	// StepField selects a named record field.
	StepField StepKind = iota
	// StepAnyField selects every record field (the .* wildcard).
	StepAnyField
	// StepElem selects every array element (the [*] wildcard).
	StepElem
)

// Path is a parsed path expression.
type Path struct {
	steps []Step
}

// Steps returns the path's components. The returned slice must not be
// modified.
func (p Path) Steps() []Step { return p.steps }

// String renders the path in the input syntax.
func (p Path) String() string {
	var sb strings.Builder
	sb.WriteByte('$')
	for _, s := range p.steps {
		switch s.Kind {
		case StepField:
			if isBareField(s.Key) {
				sb.WriteByte('.')
				sb.WriteString(s.Key)
			} else {
				sb.WriteString("[")
				sb.Write(value.AppendQuoted(nil, s.Key))
				sb.WriteString("]")
			}
		case StepAnyField:
			sb.WriteString(".*")
		case StepElem:
			sb.WriteString("[*]")
		}
	}
	return sb.String()
}

func isBareField(key string) bool {
	if key == "" {
		return false
	}
	for i, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' || r == '-':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Parse parses a path expression.
func Parse(src string) (Path, error) {
	s := strings.TrimSpace(src)
	if s == "" || s[0] != '$' {
		return Path{}, fmt.Errorf("pathquery: path must start with '$': %q", src)
	}
	s = s[1:]
	var steps []Step
	for len(s) > 0 {
		switch {
		case strings.HasPrefix(s, ".*"):
			steps = append(steps, Step{Kind: StepAnyField})
			s = s[2:]
		case strings.HasPrefix(s, "[*]"):
			steps = append(steps, Step{Kind: StepElem})
			s = s[3:]
		case strings.HasPrefix(s, `["`):
			end := findStringEnd(s[1:])
			if end < 0 {
				return Path{}, fmt.Errorf("pathquery: unterminated quoted key in %q", src)
			}
			raw := s[1 : 1+end+1]
			key, err := unquote(raw)
			if err != nil {
				return Path{}, fmt.Errorf("pathquery: %v in %q", err, src)
			}
			s = s[1+end+1:]
			if !strings.HasPrefix(s, "]") {
				return Path{}, fmt.Errorf("pathquery: missing ']' after quoted key in %q", src)
			}
			s = s[1:]
			steps = append(steps, Step{Kind: StepField, Key: key})
		case s[0] == '.':
			s = s[1:]
			i := 0
			for i < len(s) && s[i] != '.' && s[i] != '[' {
				i++
			}
			key := s[:i]
			if key == "" {
				return Path{}, fmt.Errorf("pathquery: empty field name in %q", src)
			}
			steps = append(steps, Step{Kind: StepField, Key: key})
			s = s[i:]
		default:
			return Path{}, fmt.Errorf("pathquery: unexpected %q in %q", s[:1], src)
		}
	}
	return Path{steps: steps}, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(src string) Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// findStringEnd returns the index of the closing quote of the JSON
// string starting at s[0] == '"', or -1.
func findStringEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

func unquote(raw string) (string, error) {
	// The type-syntax parser has a full JSON string unescaper; a local
	// minimal version avoids the dependency cycle.
	if len(raw) < 2 || raw[0] != '"' || raw[len(raw)-1] != '"' {
		return "", fmt.Errorf("bad quoted key %q", raw)
	}
	body := raw[1 : len(raw)-1]
	if !strings.Contains(body, "\\") {
		return body, nil
	}
	var sb strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash in %q", raw)
		}
		switch body[i] {
		case '"', '\\', '/':
			sb.WriteByte(body[i])
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		default:
			return "", fmt.Errorf("unsupported escape \\%c in path key", body[i])
		}
	}
	return sb.String(), nil
}

// Match is one concrete path through a schema: the expansion of a
// (possibly wildcarded) path expression.
type Match struct {
	// Path is the concrete path, with wildcard field steps replaced by
	// the actual keys.
	Path Path
	// Type is the type of the values the path selects.
	Type types.Type
	// CanMiss reports whether the path can be absent in a conforming
	// value (an optional field, an array that may be too short, or a
	// union alternative that may not be taken).
	CanMiss bool
}

// Expand resolves the path expression against a schema: every wildcard
// is expanded to the concrete keys the schema allows, and each resulting
// concrete path is typed. An empty result means the path cannot match
// any conforming value — statically detecting the "unexpected or
// unwanted behaviors" the paper's introduction warns about.
func Expand(schema types.Type, p Path) []Match {
	matches := expand(schema, p.steps, nil, false)
	sort.Slice(matches, func(i, j int) bool { return matches[i].Path.String() < matches[j].Path.String() })
	return matches
}

func expand(t types.Type, steps []Step, prefix []Step, canMiss bool) []Match {
	if len(steps) == 0 {
		return []Match{{Path: Path{steps: append([]Step(nil), prefix...)}, Type: t, CanMiss: canMiss}}
	}
	step := steps[0]
	var out []Match
	alts := types.Addends(t)
	for _, alt := range alts {
		// Taking a specific union alternative can miss when there are
		// others.
		branchMiss := canMiss || len(alts) > 1
		switch at := alt.(type) {
		case *types.Record:
			if step.Kind == StepElem {
				continue
			}
			for _, f := range at.Fields() {
				if step.Kind == StepField && f.Key != step.Key {
					continue
				}
				childPrefix := append(prefix, Step{Kind: StepField, Key: f.Key})
				out = append(out, expand(f.Type, steps[1:], childPrefix, branchMiss || f.Optional)...)
			}
		case *types.Tuple:
			if step.Kind != StepElem || at.Len() == 0 {
				continue
			}
			// All positions share the [*] path; their types merge.
			u, err := types.NewUnion(at.Elems()...)
			if err != nil {
				continue
			}
			childPrefix := append(prefix, Step{Kind: StepElem})
			out = append(out, expand(u, steps[1:], childPrefix, branchMiss)...)
		case *types.Map:
			if step.Kind == StepElem {
				continue
			}
			// Any key may or may not be present in an abstracted record.
			childPrefix := prefix
			if step.Kind == StepField {
				childPrefix = append(childPrefix, Step{Kind: StepField, Key: step.Key})
			} else {
				childPrefix = append(childPrefix, Step{Kind: StepAnyField})
			}
			out = append(out, expand(at.Elem(), steps[1:], childPrefix, true)...)
		case *types.Repeated:
			if step.Kind != StepElem {
				continue
			}
			childPrefix := append(prefix, Step{Kind: StepElem})
			// A repeated array can be empty, so the element path can
			// always miss.
			out = append(out, expand(at.Elem(), steps[1:], childPrefix, true)...)
		}
	}
	return dedupe(out)
}

// dedupe merges matches that share a concrete path (e.g. from different
// union alternatives), unioning their types; a path that can miss in any
// branch can miss overall.
func dedupe(ms []Match) []Match {
	byPath := map[string]int{}
	var out []Match
	for _, m := range ms {
		key := m.Path.String()
		if i, ok := byPath[key]; ok {
			u, err := types.NewUnion(out[i].Type, m.Type)
			if err == nil {
				out[i].Type = u
			}
			out[i].CanMiss = out[i].CanMiss || m.CanMiss
			continue
		}
		byPath[key] = len(out)
		out = append(out, m)
	}
	return out
}
