package pathquery

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/types"
	"repro/internal/value"
)

func TestParseAndString(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical rendering; "" means same as src
	}{
		{"$", ""},
		{"$.a", ""},
		{"$.a.b.c", ""},
		{"$.*", ""},
		{"$[*]", ""},
		{"$.items[*].id", ""},
		{`$["with space"]`, ""},
		{`$["a.b"]`, ""},
		{`$.a[*][*]`, ""},
		{`$["plain"]`, "$.plain"}, // quoted form normalizes to bare
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		want := c.want
		if want == "" {
			want = c.src
		}
		if got := p.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "a.b", "$.", "$..a", "$[", `$["unterminated`, `$["a"x]`, "$x", `$["bad\q"]`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExpandConcretePath(t *testing.T) {
	schema := types.MustParse("{user: {id: Num, name: Str?}, tags: [Str*]}")
	ms := Expand(schema, MustParse("$.user.id"))
	if len(ms) != 1 {
		t.Fatalf("matches = %+v", ms)
	}
	if !types.Equal(ms[0].Type, types.Num) || ms[0].CanMiss {
		t.Errorf("match = %+v", ms[0])
	}
	// Optional field: can miss.
	ms = Expand(schema, MustParse("$.user.name"))
	if len(ms) != 1 || !ms[0].CanMiss {
		t.Errorf("optional match = %+v", ms)
	}
	// Array elements can always miss (empty array).
	ms = Expand(schema, MustParse("$.tags[*]"))
	if len(ms) != 1 || !ms[0].CanMiss || !types.Equal(ms[0].Type, types.Str) {
		t.Errorf("array match = %+v", ms)
	}
}

func TestExpandWildcard(t *testing.T) {
	schema := types.MustParse("{a: Num, b: {c: Str}, d: Bool?}")
	ms := Expand(schema, MustParse("$.*"))
	if len(ms) != 3 {
		t.Fatalf("wildcard matches = %d", len(ms))
	}
	got := map[string]string{}
	for _, m := range ms {
		got[m.Path.String()] = m.Type.String()
	}
	if got["$.a"] != "Num" || got["$.b"] != "{c: Str}" || got["$.d"] != "Bool" {
		t.Errorf("expansion = %v", got)
	}
}

func TestExpandDeadPathDetected(t *testing.T) {
	schema := types.MustParse("{a: Num}")
	if ms := Expand(schema, MustParse("$.nope")); len(ms) != 0 {
		t.Errorf("dead path matched: %+v", ms)
	}
	if ms := Expand(schema, MustParse("$.a[*]")); len(ms) != 0 {
		t.Errorf("array access on Num matched: %+v", ms)
	}
	if ms := Expand(schema, MustParse("$[*]")); len(ms) != 0 {
		t.Errorf("element access on a record matched: %+v", ms)
	}
}

func TestExpandThroughUnions(t *testing.T) {
	schema := types.MustParse("{a: Num + {b: Str}}")
	ms := Expand(schema, MustParse("$.a.b"))
	if len(ms) != 1 {
		t.Fatalf("matches = %+v", ms)
	}
	// The record alternative may not be taken, so the path can miss.
	if !ms[0].CanMiss || !types.Equal(ms[0].Type, types.Str) {
		t.Errorf("union match = %+v", ms[0])
	}
}

func TestExpandTupleElements(t *testing.T) {
	schema := types.MustParse("{pair: [Num, Str]}")
	ms := Expand(schema, MustParse("$.pair[*]"))
	if len(ms) != 1 {
		t.Fatalf("matches = %+v", ms)
	}
	if !types.Equal(ms[0].Type, types.MustParse("Num + Str")) {
		t.Errorf("tuple element type = %s", ms[0].Type)
	}
}

func TestExpandMergesUnionBranches(t *testing.T) {
	// The same concrete path reachable through two alternatives merges.
	schema := types.MustParse("[{a: Num}*] + [{a: Str}*]")
	// Non-normal schema, but Expand is defined on any canonical type.
	ms := Expand(schema, MustParse("$[*].a"))
	if len(ms) != 1 {
		t.Fatalf("matches = %+v", ms)
	}
	if !types.Equal(ms[0].Type, types.MustParse("Num + Str")) {
		t.Errorf("merged type = %s", ms[0].Type)
	}
}

func TestExpandOnRealDatasetSchema(t *testing.T) {
	g, _ := dataset.New("twitter")
	acc := types.Type(types.Empty)
	for _, v := range dataset.Values(g, 300, 5) {
		acc = fusion.Fuse(acc, fusion.Simplify(infer.Infer(v)))
	}
	// Wildcard-expand the entities: the schema knows all entity kinds.
	ms := Expand(acc, MustParse("$.entities.*"))
	keys := map[string]bool{}
	for _, m := range ms {
		keys[m.Path.String()] = true
	}
	for _, want := range []string{"$.entities.hashtags", "$.entities.urls", "$.entities.user_mentions"} {
		if !keys[want] {
			t.Errorf("expansion missing %s (got %v)", want, keys)
		}
	}
	// The nested hashtag text path is typed Str and can miss (tweets
	// without entities are deletes etc.).
	ms = Expand(acc, MustParse("$.entities.hashtags[*].text"))
	if len(ms) != 1 || !types.Equal(ms[0].Type, types.Str) || !ms[0].CanMiss {
		t.Errorf("hashtag text = %+v", ms)
	}
	// A typo'd path is statically dead.
	if ms := Expand(acc, MustParse("$.entities.hashtag[*]")); len(ms) != 0 {
		t.Errorf("typo path matched: %+v", ms)
	}
}

func TestMaskApply(t *testing.T) {
	v := value.Obj(
		"id", value.Num(7),
		"user", value.Obj("name", value.Str("ada"), "bio", value.Str("long text")),
		"tags", value.Arr(value.Obj("k", value.Str("a"), "noise", value.Num(1))),
		"payload", value.Str("enormous"),
	)
	mask := NewMask(MustParse("$.id"), MustParse("$.user.name"), MustParse("$.tags[*].k"))
	got := mask.Apply(v)
	want := value.Obj(
		"id", value.Num(7),
		"user", value.Obj("name", value.Str("ada")),
		"tags", value.Arr(value.Obj("k", value.Str("a"))),
	)
	if !value.Equal(got, want) {
		t.Errorf("Apply = %s, want %s", value.JSON(got), value.JSON(want))
	}
	if value.Nodes(got) >= value.Nodes(v) {
		t.Error("projection did not shrink the value")
	}
}

func TestMaskFullSubtree(t *testing.T) {
	v := value.Obj("a", value.Obj("x", value.Num(1), "y", value.Num(2)), "b", value.Num(3))
	mask := NewMask(MustParse("$.a"))
	got := mask.Apply(v)
	want := value.Obj("a", value.Obj("x", value.Num(1), "y", value.Num(2)))
	if !value.Equal(got, want) {
		t.Errorf("Apply = %s", value.JSON(got))
	}
}

func TestMaskWildcardField(t *testing.T) {
	v := value.Obj("a", value.Obj("k", value.Num(1)), "b", value.Obj("k", value.Num(2)))
	mask := NewMask(MustParse("$.*.k"))
	got := mask.Apply(v)
	if !value.Equal(got, v) {
		t.Errorf("Apply = %s, want everything (all leaves selected)", value.JSON(got))
	}
}

func TestMaskRootKeepsAll(t *testing.T) {
	v := value.Obj("a", value.Num(1))
	if got := NewMask(MustParse("$")).Apply(v); !value.Equal(got, v) {
		t.Errorf("root mask dropped data: %s", value.JSON(got))
	}
	var nilMask *Mask
	if got := nilMask.Apply(v); !value.Equal(got, v) {
		t.Error("nil mask should be identity")
	}
}

func TestMaskArrayWithoutElemPath(t *testing.T) {
	v := value.Obj("xs", value.Arr(value.Num(1), value.Num(2)))
	mask := NewMask(MustParse("$.xs"))
	if got := mask.Apply(v); !value.Equal(got, v) {
		t.Errorf("selecting the array keeps it whole: %s", value.JSON(got))
	}
	// Selecting a sibling drops the array entirely.
	v2 := value.Obj("xs", value.Arr(value.Num(1)), "keep", value.Num(2))
	mask2 := NewMask(MustParse("$.keep"))
	want := value.Obj("keep", value.Num(2))
	if got := mask2.Apply(v2); !value.Equal(got, want) {
		t.Errorf("Apply = %s", value.JSON(got))
	}
}

func TestProjectionSavingsOnDataset(t *testing.T) {
	// The Section 1 scenario: a query touching three paths of NYTimes
	// records loads a fraction of each record.
	g, _ := dataset.New("nytimes")
	mask := NewMask(
		MustParse("$.headline.main"),
		MustParse("$.pub_date"),
		MustParse("$.keywords[*].value"),
	)
	var full, projected int
	for _, v := range dataset.Values(g, 100, 3) {
		full += value.Nodes(v)
		projected += value.Nodes(mask.Apply(v))
	}
	if ratio := float64(projected) / float64(full); ratio > 0.3 {
		t.Errorf("projection kept %.0f%% of nodes, want < 30%%", ratio*100)
	}
}

func TestProjectedValuesStillConform(t *testing.T) {
	// Projected values conform to the correspondingly projected schema:
	// here we check the weaker but useful property that projection never
	// invents data — every projected record is a "sub-record".
	g, _ := dataset.New("github")
	mask := NewMask(MustParse("$.user.login"), MustParse("$.state"))
	for _, v := range dataset.Values(g, 50, 9) {
		got := mask.Apply(v).(*value.Record)
		orig := v.(*value.Record)
		for _, f := range got.Fields() {
			if orig.Get(f.Key) == nil {
				t.Fatalf("projection invented field %q", f.Key)
			}
		}
		if got.Len() != 2 {
			t.Fatalf("projected record has %d fields, want 2", got.Len())
		}
	}
}

func TestExpandPathStringsRoundTrip(t *testing.T) {
	schema := types.MustParse(`{a: {"odd key": Num}, xs: [{y: Str}*]}`)
	for _, src := range []string{`$.a["odd key"]`, "$.xs[*].y"} {
		ms := Expand(schema, MustParse(src))
		if len(ms) != 1 {
			t.Fatalf("%s: matches = %+v", src, ms)
		}
		back, err := Parse(ms[0].Path.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", ms[0].Path.String(), err)
		}
		if back.String() != ms[0].Path.String() {
			t.Errorf("path round trip: %q vs %q", back.String(), ms[0].Path.String())
		}
	}
}
