package pathquery

import (
	"repro/internal/value"
)

// Mask is a projection tree built from the set of paths a query needs:
// applied to a value, it keeps exactly the fragments those paths can
// select and drops everything else. This is the schema-based projection
// optimization the paper cites ([9]): "load in main memory only those
// fragments of the input dataset that are actually needed".
type Mask struct {
	// all marks a subtree that is needed in full.
	all bool
	// fields holds the needed record fields; nil key set with elem ==
	// nil and !all means nothing below this point is needed.
	fields map[string]*Mask
	// elem holds the mask for array elements, when any are needed.
	elem *Mask
}

// NewMask builds a projection mask covering all the given paths.
func NewMask(paths ...Path) *Mask {
	root := &Mask{}
	for _, p := range paths {
		root.add(p.steps)
	}
	return root
}

func (m *Mask) add(steps []Step) {
	if m.all {
		return
	}
	if len(steps) == 0 {
		// The whole subtree is selected.
		m.all = true
		m.fields = nil
		m.elem = nil
		return
	}
	switch steps[0].Kind {
	case StepField:
		if m.fields == nil {
			m.fields = make(map[string]*Mask)
		}
		child := m.fields[steps[0].Key]
		if child == nil {
			child = &Mask{}
			m.fields[steps[0].Key] = child
		}
		child.add(steps[1:])
	case StepAnyField:
		// .* needs every field; approximate with the full subtree under
		// a wildcard field mask.
		if m.fields == nil {
			m.fields = make(map[string]*Mask)
		}
		child := m.fields["*"]
		if child == nil {
			child = &Mask{}
			m.fields["*"] = child
		}
		child.add(steps[1:])
	case StepElem:
		if m.elem == nil {
			m.elem = &Mask{}
		}
		m.elem.add(steps[1:])
	}
}

// Apply projects v through the mask: record fields not covered are
// dropped, array elements are projected element-wise, and subtrees
// marked as fully needed are returned as-is. Positions the mask covers
// but the value lacks are simply absent (the schema tells the caller
// whether that is possible via Match.CanMiss).
func (m *Mask) Apply(v value.Value) value.Value {
	if m == nil || m.all {
		return v
	}
	switch vv := v.(type) {
	case *value.Record:
		var fields []value.Field
		for _, f := range vv.Fields() {
			child := m.fields[f.Key]
			if child == nil {
				child = m.fields["*"]
			}
			if child == nil {
				continue
			}
			fields = append(fields, value.Field{Key: f.Key, Value: child.Apply(f.Value)})
		}
		return value.MustRecord(fields...)
	case value.Array:
		if m.elem == nil {
			return value.Array{}
		}
		out := make(value.Array, len(vv))
		for i, e := range vv {
			out[i] = m.elem.Apply(e)
		}
		return out
	default:
		// Scalars at a position the query traverses further have
		// nothing to project; keep them (they are cheap) so the result
		// stays informative.
		return v
	}
}

// Nodes reports the number of value nodes Apply would keep, used to
// quantify projection savings without materializing the projection.
func (m *Mask) Nodes(v value.Value) int {
	return value.Nodes(m.Apply(v))
}
