// Package baseline implements the comparison point Section 6.1 of the
// paper uses to motivate union types: Spark SQL-style schema inference
// with type coercion. For the array [12, "high", {"state": "ok"}] Spark
// "uses type coercion yielding an array of type String only", whereas
// the paper's language types it as [(Num + Str + {state: Str})*].
//
// The baseline inferencer produces types in the same AST so sizes and
// precision can be compared directly. Its merge rules mirror Spark's:
//
//   - null merges into any type (nullability is implicit, so the Null
//     information is dropped);
//   - conflicting basic types coerce to Str;
//   - records merge field-wise, but optionality is NOT tracked: a field
//     missing on one side keeps its type with no marker (Spark marks
//     everything nullable);
//   - arrays merge element types with coercion, so mixed-content arrays
//     collapse to [Str*];
//   - any record/array kind conflict coerces to Str.
package baseline

import (
	"fmt"

	"repro/internal/types"
	"repro/internal/value"
)

// Infer produces the coercion-based type of a single value.
func Infer(v value.Value) types.Type {
	switch vv := v.(type) {
	case value.Null:
		return types.Null // dropped on first merge with anything else
	case value.Bool:
		return types.Bool
	case value.Num:
		return types.Num
	case value.Str:
		return types.Str
	case *value.Record:
		vf := vv.Fields()
		fields := make([]types.Field, len(vf))
		for i, f := range vf {
			fields[i] = types.Field{Key: f.Key, Type: Infer(f.Value)}
		}
		return types.MustRecord(fields...)
	case value.Array:
		// Arrays have a single element type from the start: elements
		// merge with coercion.
		elem := types.Type(types.Empty)
		for _, e := range vv {
			elem = Merge(elem, Infer(e))
		}
		return types.MustRepeated(elem)
	default:
		panic(fmt.Sprintf("baseline: unknown value %T", v))
	}
}

// Merge combines two baseline types with Spark-style coercion. It is
// commutative and associative (coercion to Str is a join in a flat
// lattice), which the tests verify.
func Merge(a, b types.Type) types.Type {
	// ε is the identity (empty array element slot).
	if _, ok := a.(types.EmptyType); ok {
		return b
	}
	if _, ok := b.(types.EmptyType); ok {
		return a
	}
	// Nullability is implicit: null merges away.
	if types.Equal(a, types.Null) {
		return b
	}
	if types.Equal(b, types.Null) {
		return a
	}
	ka, _ := types.KindOf(a)
	kb, _ := types.KindOf(b)
	if ka != kb {
		return types.Str // cross-kind conflicts coerce to string
	}
	switch ka {
	case types.KindNull, types.KindBool, types.KindNum, types.KindStr:
		if types.Equal(a, b) {
			return a
		}
		return types.Str
	case types.KindRecord:
		ra, rb := a.(*types.Record), b.(*types.Record)
		fa, fb := ra.Fields(), rb.Fields()
		out := make([]types.Field, 0, len(fa)+len(fb))
		i, j := 0, 0
		for i < len(fa) && j < len(fb) {
			switch {
			case fa[i].Key == fb[j].Key:
				out = append(out, types.Field{Key: fa[i].Key, Type: Merge(fa[i].Type, fb[j].Type)})
				i++
				j++
			case fa[i].Key < fb[j].Key:
				out = append(out, fa[i]) // no optional marker: information lost
				i++
			default:
				out = append(out, fb[j])
				j++
			}
		}
		out = append(out, fa[i:]...)
		out = append(out, fb[j:]...)
		return types.MustRecord(out...)
	default: // array kind; baseline only ever builds Repeated arrays
		ea := a.(*types.Repeated).Elem()
		eb := b.(*types.Repeated).Elem()
		return types.MustRepeated(Merge(ea, eb))
	}
}

// InferAll folds Merge over the baseline types of all values.
func InferAll(vs []value.Value) types.Type {
	acc := types.Type(types.Empty)
	for _, v := range vs {
		acc = Merge(acc, Infer(v))
	}
	return acc
}

// Report quantifies what coercion lost relative to the paper's fusion,
// comparing the two schemas of the same dataset.
type Report struct {
	// FusionSize and BaselineSize are the two schema sizes.
	FusionSize, BaselineSize int
	// OptionalFields counts fields the fusion schema knows are optional;
	// the baseline cannot distinguish optional from mandatory at all.
	OptionalFields int
	// UnionNodes counts union types in the fusion schema — distinctions
	// (Num+Str, Null+record, ...) that coercion collapses.
	UnionNodes int
	// CoercedLeaves counts positions where the baseline says Str but the
	// fusion schema holds something more precise than a plain Str.
	CoercedLeaves int
	// DroppedNullability counts positions where fusion records an
	// explicit Null alternative the baseline silently dropped.
	DroppedNullability int
}

// Compare computes the precision report for a fused schema against the
// baseline schema of the same data. The walk aligns the two schemas
// structurally (records by key, arrays by element).
func Compare(fused, base types.Type) Report {
	rep := Report{FusionSize: fused.Size(), BaselineSize: base.Size()}
	compareWalk(fused, base, &rep)
	countFusionInfo(fused, &rep)
	return rep
}

// compareWalk tallies coercion losses for structurally aligned
// positions.
func compareWalk(fused, base types.Type, rep *Report) {
	for _, alt := range types.Addends(fused) {
		if types.Equal(alt, types.Null) && !types.Equal(base, types.Null) {
			rep.DroppedNullability++
		}
	}
	if types.Equal(base, types.Str) && !types.Equal(fused, types.Str) {
		rep.CoercedLeaves++
		return
	}
	switch bt := base.(type) {
	case *types.Record:
		// Find the record alternative of the fused type, if any.
		for _, alt := range types.Addends(fused) {
			ft, ok := alt.(*types.Record)
			if !ok {
				continue
			}
			for _, bf := range bt.Fields() {
				if ff, ok := ft.Get(bf.Key); ok {
					compareWalk(ff.Type, bf.Type, rep)
				}
			}
		}
	case *types.Repeated:
		for _, alt := range types.Addends(fused) {
			if fr, ok := alt.(*types.Repeated); ok {
				compareWalk(fr.Elem(), bt.Elem(), rep)
			}
		}
	}
}

// countFusionInfo tallies the information-bearing constructs of the
// fused schema.
func countFusionInfo(fused types.Type, rep *Report) {
	types.Walk(fused, func(t types.Type) bool {
		switch tt := t.(type) {
		case *types.Union:
			rep.UnionNodes++
		case *types.Record:
			for _, f := range tt.Fields() {
				if f.Optional {
					rep.OptionalFields++
				}
			}
		}
		return true
	})
}
