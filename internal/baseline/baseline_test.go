package baseline

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/types"
	"repro/internal/value"
)

func TestInferScalars(t *testing.T) {
	cases := []struct {
		v    value.Value
		want types.Type
	}{
		{value.Null{}, types.Null},
		{value.Bool(true), types.Bool},
		{value.Num(1), types.Num},
		{value.Str("s"), types.Str},
	}
	for _, c := range cases {
		if got := Infer(c.v); !types.Equal(got, c.want) {
			t.Errorf("Infer(%s) = %s, want %s", value.JSON(c.v), got, c.want)
		}
	}
}

func TestSection61SparkArrayExample(t *testing.T) {
	// The paper's motivating comparison: for a mixed array, Spark's type
	// coercion yields an array of String only, while fusion keeps the
	// union [(Num + Str + {l: Str})*].
	arr := value.Arr(value.Num(12), value.Str("high"), value.Obj("l", value.Str("ok")))
	got := Infer(arr)
	if !types.Equal(got, types.MustParse("[Str*]")) {
		t.Errorf("baseline = %s, want [Str*]", got)
	}
	ours := fusion.Simplify(infer.Infer(arr))
	want := types.MustParse("[(Num + Str + {l: Str})*]")
	if !types.Equal(ours, want) {
		t.Errorf("fusion = %s, want %s", ours, want)
	}
}

func TestMergeCoercionRules(t *testing.T) {
	cases := []struct {
		a, b, want string
	}{
		{"Num", "Num", "Num"},
		{"Num", "Str", "Str"},
		{"Bool", "Num", "Str"},
		{"Null", "Num", "Num"}, // nullability dropped
		{"Null", "Null", "Null"},
		{"{a: Num}", "Str", "Str"}, // kind conflict -> Str
		{"{a: Num}", "[Num*]", "Str"},
		{"{a: Num}", "{b: Str}", "{a: Num, b: Str}"}, // no optionality
		{"{a: Num}", "{a: Str}", "{a: Str}"},
		{"[Num*]", "[Str*]", "[Str*]"},
		{"[Num*]", "[Num*]", "[Num*]"},
		{"ε", "Num", "Num"},
	}
	for _, c := range cases {
		got := Merge(types.MustParse(c.a), types.MustParse(c.b))
		if !types.Equal(got, types.MustParse(c.want)) {
			t.Errorf("Merge(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestInferNestedArrays(t *testing.T) {
	v := value.Arr(value.Arr(value.Num(1)), value.Arr(value.Str("x")))
	if got := Infer(v); !types.Equal(got, types.MustParse("[[Str*]*]")) {
		t.Errorf("nested = %s", got)
	}
	if got := Infer(value.Array{}); !types.Equal(got, types.MustParse("[ε*]")) {
		t.Errorf("empty array = %s", got)
	}
}

func TestMergeCommutativeAssociative(t *testing.T) {
	gen, _ := dataset.New("mixed")
	vs := dataset.Values(gen, 60, 5)
	f := func(i, j, k uint8) bool {
		a := Infer(vs[int(i)%len(vs)])
		b := Infer(vs[int(j)%len(vs)])
		c := Infer(vs[int(k)%len(vs)])
		if !types.Equal(Merge(a, b), Merge(b, a)) {
			return false
		}
		return types.Equal(Merge(Merge(a, b), c), Merge(a, Merge(b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBaselineLosesOptionality(t *testing.T) {
	vs := []value.Value{
		value.Obj("always", value.Num(1)),
		value.Obj("always", value.Num(2), "sometimes", value.Str("x")),
	}
	base := InferAll(vs)
	// The baseline schema cannot say that "sometimes" is optional.
	if strings.Contains(base.String(), "?") {
		t.Errorf("baseline tracked optionality: %s", base)
	}
	fused := fusion.FuseAll([]types.Type{
		fusion.Simplify(infer.Infer(vs[0])),
		fusion.Simplify(infer.Infer(vs[1])),
	})
	if !strings.Contains(fused.String(), "sometimes: Str?") {
		t.Errorf("fusion lost optionality: %s", fused)
	}
}

func TestCompareReport(t *testing.T) {
	vs := []value.Value{
		value.Obj("n", value.Num(1), "mixed", value.Num(1), "nullable", value.Str("a")),
		value.Obj("n", value.Num(2), "mixed", value.Str("two"), "nullable", value.Null{}, "opt", value.Bool(true)),
	}
	var fused types.Type = types.Empty
	for _, v := range vs {
		fused = fusion.Fuse(fused, fusion.Simplify(infer.Infer(v)))
	}
	base := InferAll(vs)
	rep := Compare(fused, base)
	if rep.OptionalFields != 1 {
		t.Errorf("OptionalFields = %d, want 1", rep.OptionalFields)
	}
	if rep.UnionNodes < 2 {
		t.Errorf("UnionNodes = %d, want >= 2 (mixed, nullable)", rep.UnionNodes)
	}
	if rep.CoercedLeaves < 1 {
		t.Errorf("CoercedLeaves = %d, want >= 1 (mixed Num+Str vs Str)", rep.CoercedLeaves)
	}
	if rep.DroppedNullability < 1 {
		t.Errorf("DroppedNullability = %d, want >= 1", rep.DroppedNullability)
	}
	if rep.FusionSize != fused.Size() || rep.BaselineSize != base.Size() {
		t.Error("sizes not recorded")
	}
}

func TestBaselineSoundOnSources(t *testing.T) {
	// Baseline schemas are NOT sound in the membership sense (coerced
	// leaves reject the original values); document this with a concrete
	// case: the mixed array's Num element is not a member of [Str*].
	arr := value.Arr(value.Num(12), value.Str("high"))
	base := Infer(arr)
	if types.Member(arr, base) {
		t.Errorf("expected coerced schema %s to reject %s (coercion is lossy)", base, value.JSON(arr))
	}
	// Our fusion schema is sound by Theorem 5.2.
	ours := fusion.Simplify(infer.Infer(arr))
	if !types.Member(arr, ours) {
		t.Errorf("fusion schema %s rejected its own value", ours)
	}
}

func TestCompareOnNYTimes(t *testing.T) {
	g, _ := dataset.New("nytimes")
	vs := dataset.Values(g, 150, 7)
	var fused types.Type = types.Empty
	for _, v := range vs {
		fused = fusion.Fuse(fused, fusion.Simplify(infer.Infer(v)))
	}
	base := InferAll(vs)
	rep := Compare(fused, base)
	// NYTimes mixes Num and Str on the same fields and has many optional
	// fields; the baseline must show losses on both axes.
	if rep.CoercedLeaves == 0 {
		t.Error("no coerced leaves found on NYTimes")
	}
	if rep.OptionalFields == 0 {
		t.Error("no optional fields found on NYTimes")
	}
}
