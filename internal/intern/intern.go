// Package intern canonicalizes types.Type values by hash-consing: every
// structurally distinct type gets exactly one representative node, so
// structural equality collapses to pointer (or ID) comparison and the
// pipeline can deduplicate the types of millions of records into the
// handful of shapes the paper's evaluation observes (Tables 2-5 report
// tens of distinct types over millions of values).
//
// A Table keeps one entry per distinct type. Entries cache the subtree
// hash and size, so interning a node whose children are already
// canonical costs O(children), not O(subtree): the hash of a record is
// mixed from its keys and its children's cached hashes, and equality
// against a candidate only compares keys and child pointers. The
// invariant that makes this sound is that every child of an interned
// node is itself interned (the canonical representative of its
// equivalence class), which all constructors below maintain.
//
// The table is safe for concurrent use: the map phase interns from many
// workers at once. Lookups take a read lock; a miss re-probes under the
// write lock before inserting, so exactly one representative wins per
// equivalence class and the hit/miss counters stay deterministic on a
// single-worker run (misses == distinct types).
package intern

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// ID identifies one distinct type within a Table. IDs are dense,
// assigned in first-interned order starting at 0, and never reused.
// Two canonical types from the same Table are structurally equal iff
// their IDs are equal.
type ID uint32

// Ref pairs a canonical type with its Table identity and cached size.
type Ref struct {
	// Type is the canonical representative node.
	Type types.Type
	// ID is the type's dense identity within its Table.
	ID ID
	// Size is the cached types.Type.Size of the representative.
	Size int
}

// entry is the table's record of one distinct type.
type entry struct {
	t    types.Type
	id   ID
	hash uint64
	size int
}

// Table hash-conses types. The zero value is not ready; use NewTable.
type Table struct {
	mu sync.RWMutex
	// byHash buckets entries by their structural hash; collisions are
	// resolved with shallow equality.
	byHash map[uint64][]*entry
	// byNode maps each representative node to its entry, making "is
	// this node canonical?" one identity lookup.
	byNode map[types.Type]*entry
	next   ID

	hits   atomic.Int64
	misses atomic.Int64
}

// NewTable returns a table pre-seeded with the leaf types every JSON
// document produces (ε, the four basic types and the empty tuple), so
// the decoder's leaf returns are canonical by construction.
func NewTable() *Table {
	tb := &Table{
		byHash: make(map[uint64][]*entry, 256),
		byNode: make(map[types.Type]*entry, 256),
	}
	for _, t := range []types.Type{types.Empty, types.Null, types.Bool, types.Num, types.Str, types.EmptyTuple} {
		tb.Canon(t)
	}
	// Seeding is setup, not workload; keep the counters at zero.
	tb.hits.Store(0)
	tb.misses.Store(0)
	return tb
}

// Len reports the number of distinct types interned so far.
func (tb *Table) Len() int {
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	return int(tb.next)
}

// Stats reports the table's lookup counters: hits (the node or an equal
// type was already interned) and misses (a new distinct type was
// inserted). On a fault-free single-worker run both are deterministic;
// under concurrency a lost insertion race counts as a hit, so the split
// may vary while hits+misses and Len stay exact.
func (tb *Table) Stats() (hits, misses int64) {
	return tb.hits.Load(), tb.misses.Load()
}

// Ref returns the identity of a canonical node. ok is false when t is
// not a representative of this table (it may still be structurally
// equal to one — use Canon to resolve it).
func (tb *Table) Ref(t types.Type) (Ref, bool) {
	tb.mu.RLock()
	e, ok := tb.byNode[t]
	tb.mu.RUnlock()
	if !ok {
		return Ref{}, false
	}
	return Ref{Type: e.t, ID: e.id, Size: e.size}, true
}

// Canon returns the canonical representative of t, interning every node
// of t bottom-up. If t is already canonical it is returned unchanged
// (one map lookup); otherwise equal subtrees collapse onto their
// representatives and only genuinely new shapes allocate entries.
func (tb *Table) Canon(t types.Type) types.Type {
	tb.mu.RLock()
	_, ok := tb.byNode[t]
	tb.mu.RUnlock()
	if ok {
		tb.hits.Add(1)
		return t
	}
	switch tt := t.(type) {
	case types.Basic, types.EmptyType:
		return tb.internShallow(t)
	case *types.Record:
		fs := tt.Fields()
		out := make([]types.Field, len(fs))
		changed := false
		for i, f := range fs {
			ct := tb.Canon(f.Type)
			out[i] = types.Field{Key: f.Key, Type: ct, Optional: f.Optional}
			if ct != f.Type {
				changed = true
			}
		}
		if !changed {
			return tb.internShallow(t)
		}
		return tb.InternRecord(out)
	case *types.Map:
		ce := tb.Canon(tt.Elem())
		if ce == tt.Elem() {
			return tb.internShallow(t)
		}
		return tb.internShallow(types.MustMap(ce))
	case *types.Tuple:
		es := tt.Elems()
		out := make([]types.Type, len(es))
		changed := false
		for i, e := range es {
			out[i] = tb.Canon(e)
			if out[i] != e {
				changed = true
			}
		}
		if !changed {
			return tb.internShallow(t)
		}
		return tb.InternTuple(out)
	case *types.Variants:
		if tt.Collapsed() {
			co := tb.Canon(tt.Other()).(*types.Record)
			if co == tt.Other() {
				return tb.internShallow(t)
			}
			return tb.internShallow(types.MustCollapsedVariants(co))
		}
		cs := tt.Cases()
		out := make([]types.Variant, len(cs))
		changed := false
		for i, c := range cs {
			ct := tb.Canon(c.Type).(*types.Record)
			out[i] = types.Variant{Tag: c.Tag, Type: ct}
			if ct != c.Type {
				changed = true
			}
		}
		var other *types.Record
		if tt.Other() != nil {
			other = tb.Canon(tt.Other()).(*types.Record)
			if other != tt.Other() {
				changed = true
			}
		}
		if !changed {
			return tb.internShallow(t)
		}
		return tb.internShallow(types.MustVariants(tt.Key(), tt.Wrapper(), out, other))
	case *types.Repeated:
		ce := tb.Canon(tt.Elem())
		if ce == tt.Elem() {
			return tb.internShallow(t)
		}
		return tb.internShallow(types.MustRepeated(ce))
	case *types.Union:
		alts := tt.Alts()
		out := make([]types.Type, len(alts))
		changed := false
		for i, a := range alts {
			out[i] = tb.Canon(a)
			if out[i] != a {
				changed = true
			}
		}
		if !changed {
			return tb.internShallow(t)
		}
		// The canonicalized alternatives are structurally unchanged, so
		// MustUnion re-sorts them into the same order and the result
		// stays a union of the same arity.
		return tb.internShallow(types.MustUnion(out...))
	default:
		panic(fmt.Sprintf("intern: unknown type %T", t))
	}
}

// InternRecord interns the record type with the given fields, probing
// before building so a repeated shape costs no allocation. fields must
// be sorted by key, unique, and hold canonical types of this table; the
// slice is not retained.
func (tb *Table) InternRecord(fields []types.Field) types.Type {
	tb.mu.RLock()
	h, size, ok := tb.recordMetaLocked(fields)
	if ok {
		for _, cand := range tb.byHash[h] {
			if r, isRec := cand.t.(*types.Record); isRec && recordEqualFields(r, fields) {
				tb.mu.RUnlock()
				tb.hits.Add(1)
				return cand.t
			}
		}
	}
	tb.mu.RUnlock()
	if !ok {
		panic("intern: InternRecord with non-canonical field types")
	}
	return tb.insert(types.MustRecord(fields...), h, size)
}

// InternTuple interns the positional array type with the given
// elements, probing before building. elems must hold canonical types of
// this table; the slice is not retained.
func (tb *Table) InternTuple(elems []types.Type) types.Type {
	tb.mu.RLock()
	h, size, ok := tb.tupleMetaLocked(elems)
	if ok {
		for _, cand := range tb.byHash[h] {
			if tp, isTup := cand.t.(*types.Tuple); isTup && tupleEqualElems(tp, elems) {
				tb.mu.RUnlock()
				tb.hits.Add(1)
				return cand.t
			}
		}
	}
	tb.mu.RUnlock()
	if !ok {
		panic("intern: InternTuple with non-canonical element types")
	}
	return tb.insert(types.MustTuple(elems...), h, size)
}

// internShallow interns a node whose children are already canonical in
// this table. On a miss the node itself becomes the representative, so
// callers must pass freshly built (or otherwise owned) nodes.
func (tb *Table) internShallow(t types.Type) types.Type {
	tb.mu.RLock()
	h, size, ok := tb.shallowMetaLocked(t)
	if ok {
		for _, cand := range tb.byHash[h] {
			if shallowEqual(cand.t, t) {
				tb.mu.RUnlock()
				tb.hits.Add(1)
				return cand.t
			}
		}
	}
	tb.mu.RUnlock()
	if !ok {
		panic("intern: internShallow on a node with non-canonical children")
	}
	return tb.insert(t, h, size)
}

// insert adds t as a new representative, re-probing under the write
// lock so a racing equal insert yields one winner. The loser's node is
// discarded and counted as a hit.
func (tb *Table) insert(t types.Type, h uint64, size int) types.Type {
	tb.mu.Lock()
	for _, cand := range tb.byHash[h] {
		if shallowEqual(cand.t, t) {
			tb.mu.Unlock()
			tb.hits.Add(1)
			return cand.t
		}
	}
	e := &entry{t: t, id: tb.next, hash: h, size: size}
	tb.next++
	tb.byHash[h] = append(tb.byHash[h], e)
	tb.byNode[t] = e
	tb.mu.Unlock()
	tb.misses.Add(1)
	return t
}

// The hash mixes per-kind tag bytes, record keys and child hashes with
// FNV-1a style steps. It is internal to the table (child hashes are the
// children's cached subtree hashes, not types.Hash), and collisions are
// harmless: equality always confirms.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

const (
	tagEmpty byte = iota + 1
	tagBasic
	tagRecord
	tagMap
	tagTuple
	tagRepeated
	tagUnion
	tagVariants
)

func mixByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func mixWord(h, w uint64) uint64 { return (h ^ w) * fnvPrime }

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = mixByte(h, s[i])
	}
	// Terminate so "ab"+"c" and "a"+"bc" differ.
	return mixByte(h, 0xff)
}

// childLocked returns the cached entry of a canonical child. mu must be
// held (read or write suffices: entries are never removed or mutated).
func (tb *Table) childLocked(t types.Type) (*entry, bool) {
	e, ok := tb.byNode[t]
	return e, ok
}

// shallowMetaLocked computes the hash and size of t from its children's
// cached entries; ok is false when a child is not canonical.
func (tb *Table) shallowMetaLocked(t types.Type) (h uint64, size int, ok bool) {
	switch tt := t.(type) {
	case types.EmptyType:
		return mixByte(fnvOffset, tagEmpty), 1, true
	case types.Basic:
		return mixByte(mixByte(fnvOffset, tagBasic), byte(tt)), 1, true
	case *types.Record:
		return tb.recordMetaLocked(tt.Fields())
	case *types.Map:
		e, ok := tb.childLocked(tt.Elem())
		if !ok {
			return 0, 0, false
		}
		return mixWord(mixByte(fnvOffset, tagMap), e.hash), 2 + e.size, true
	case *types.Tuple:
		return tb.tupleMetaLocked(tt.Elems())
	case *types.Variants:
		h = mixByte(fnvOffset, tagVariants)
		size = 1
		switch {
		case tt.Collapsed():
			h = mixByte(h, 1)
		case tt.Wrapper():
			h = mixByte(h, 2)
		default:
			h = mixString(mixByte(h, 3), tt.Key())
		}
		for _, c := range tt.Cases() {
			e, ok := tb.childLocked(c.Type)
			if !ok {
				return 0, 0, false
			}
			h = mixString(h, c.Tag)
			h = mixWord(h, e.hash)
			size += 1 + e.size
		}
		if tt.Other() != nil {
			e, ok := tb.childLocked(tt.Other())
			if !ok {
				return 0, 0, false
			}
			h = mixWord(mixByte(h, 4), e.hash)
			size += 1 + e.size
		}
		return h, size, true
	case *types.Repeated:
		e, ok := tb.childLocked(tt.Elem())
		if !ok {
			return 0, 0, false
		}
		return mixWord(mixByte(fnvOffset, tagRepeated), e.hash), 1 + e.size, true
	case *types.Union:
		alts := tt.Alts()
		h = mixByte(fnvOffset, tagUnion)
		size = len(alts) - 1
		for _, a := range alts {
			e, ok := tb.childLocked(a)
			if !ok {
				return 0, 0, false
			}
			h = mixWord(h, e.hash)
			size += e.size
		}
		return h, size, true
	default:
		panic(fmt.Sprintf("intern: unknown type %T", t))
	}
}

func (tb *Table) recordMetaLocked(fields []types.Field) (h uint64, size int, ok bool) {
	h = mixByte(fnvOffset, tagRecord)
	size = 1
	for i := range fields {
		f := &fields[i]
		e, ok := tb.childLocked(f.Type)
		if !ok {
			return 0, 0, false
		}
		h = mixString(h, f.Key)
		if f.Optional {
			h = mixByte(h, 1)
		} else {
			h = mixByte(h, 0)
		}
		h = mixWord(h, e.hash)
		size += 1 + e.size
	}
	return h, size, true
}

func (tb *Table) tupleMetaLocked(elems []types.Type) (h uint64, size int, ok bool) {
	h = mixByte(fnvOffset, tagTuple)
	size = 1
	for _, el := range elems {
		e, ok := tb.childLocked(el)
		if !ok {
			return 0, 0, false
		}
		h = mixWord(h, e.hash)
		size += e.size
	}
	// Mix the arity so a tuple is never confused with a prefix of a
	// longer one.
	return mixWord(h, uint64(len(elems))), size, true
}

// shallowEqual reports structural equality of two nodes whose children
// are canonical, so child comparison is pointer identity. It agrees
// with types.Equal under the table invariant (property-tested).
func shallowEqual(a, b types.Type) bool {
	switch at := a.(type) {
	case types.EmptyType:
		_, ok := b.(types.EmptyType)
		return ok
	case types.Basic:
		bt, ok := b.(types.Basic)
		return ok && at == bt
	case *types.Record:
		bt, ok := b.(*types.Record)
		return ok && recordEqualFields(at, bt.Fields())
	case *types.Map:
		bt, ok := b.(*types.Map)
		return ok && at.Elem() == bt.Elem()
	case *types.Tuple:
		bt, ok := b.(*types.Tuple)
		return ok && tupleEqualElems(at, bt.Elems())
	case *types.Variants:
		bt, ok := b.(*types.Variants)
		if !ok || at.Collapsed() != bt.Collapsed() || at.Wrapper() != bt.Wrapper() ||
			at.Key() != bt.Key() || at.Len() != bt.Len() || at.Other() != bt.Other() {
			return false
		}
		bc := bt.Cases()
		for i, c := range at.Cases() {
			if c.Tag != bc[i].Tag || c.Type != bc[i].Type {
				return false
			}
		}
		return true
	case *types.Repeated:
		bt, ok := b.(*types.Repeated)
		return ok && at.Elem() == bt.Elem()
	case *types.Union:
		bt, ok := b.(*types.Union)
		if !ok || at.Len() != bt.Len() {
			return false
		}
		ba := bt.Alts()
		for i, alt := range at.Alts() {
			if alt != ba[i] {
				return false
			}
		}
		return true
	default:
		panic(fmt.Sprintf("intern: unknown type %T", a))
	}
}

func recordEqualFields(r *types.Record, fields []types.Field) bool {
	rf := r.Fields()
	if len(rf) != len(fields) {
		return false
	}
	for i := range rf {
		if rf[i].Key != fields[i].Key || rf[i].Optional != fields[i].Optional || rf[i].Type != fields[i].Type {
			return false
		}
	}
	return true
}

func tupleEqualElems(t *types.Tuple, elems []types.Type) bool {
	te := t.Elems()
	if len(te) != len(elems) {
		return false
	}
	for i := range te {
		if te[i] != elems[i] {
			return false
		}
	}
	return true
}
