package intern_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/enrich/monoidtest"
	"repro/internal/intern"
	"repro/internal/types"
)

// --- random type generator (xorshift, like the other property tests) ---

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) key() string {
	keys := []string{"a", "b", "c", "id", "name", "x-y", "with space", "ε", ""}
	return keys[r.intn(len(keys))]
}

// randomType builds a bounded random type covering every node kind the
// table must canonicalize, including maps and (possibly non-normal)
// unions — Canon must handle anything types.Type can represent.
func randomType(r *rng, depth int) types.Type {
	max := 9
	if depth <= 0 {
		max = 4
	}
	switch r.intn(max) {
	case 0:
		return types.Null
	case 1:
		return types.Bool
	case 2:
		return types.Num
	case 3:
		return types.Str
	case 4:
		n := r.intn(4)
		var fs []types.Field
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			k := r.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			fs = append(fs, types.Field{Key: k, Type: randomType(r, depth-1), Optional: r.intn(2) == 0})
		}
		return types.MustRecord(fs...)
	case 5:
		n := r.intn(3)
		es := make([]types.Type, n)
		for i := range es {
			es[i] = randomType(r, depth-1)
		}
		return types.MustTuple(es...)
	case 6:
		return types.MustRepeated(randomType(r, depth-1))
	case 7:
		return types.MustMap(randomType(r, depth-1))
	default:
		n := 2 + r.intn(2)
		as := make([]types.Type, n)
		for i := range as {
			as[i] = randomType(r, depth-1)
		}
		return types.MustUnion(as...)
	}
}

// TestCanonAgreesWithEqual is the core hash-consing property: two types
// canonicalize to the same representative (same node, same ID) exactly
// when they are structurally equal, and the representative is itself
// structurally equal to the input.
func TestCanonAgreesWithEqual(t *testing.T) {
	tab := intern.NewTable()
	f := func(seed1, seed2 uint64) bool {
		a := randomType(&rng{s: seed1 | 1}, 3)
		b := randomType(&rng{s: seed2 | 1}, 3)
		ca, cb := tab.Canon(a), tab.Canon(b)
		if !types.Equal(a, ca) || !types.Equal(b, cb) {
			return false
		}
		ra, ok1 := tab.Ref(ca)
		rb, ok2 := tab.Ref(cb)
		if !ok1 || !ok2 {
			return false
		}
		if (ra.ID == rb.ID) != types.Equal(a, b) {
			return false
		}
		if (ca == cb) != types.Equal(a, b) {
			return false
		}
		// The cached size matches the type's own accounting (Section 4's
		// size measure), so multiset stats can use it directly.
		return ra.Size == ca.Size() && rb.Size == cb.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestCanonIdempotent: canonicalizing a representative is the identity,
// and costs a hit, not a new entry.
func TestCanonIdempotent(t *testing.T) {
	tab := intern.NewTable()
	r := &rng{s: 42}
	for i := 0; i < 200; i++ {
		c := tab.Canon(randomType(r, 3))
		n := tab.Len()
		if again := tab.Canon(c); again != c {
			t.Fatalf("Canon(Canon(t)) returned a different node for %s", c)
		}
		if tab.Len() != n {
			t.Fatalf("re-canonicalizing grew the table")
		}
	}
}

// TestRefOnlyKnowsRepresentatives: Ref answers by node identity, so a
// fresh structurally-equal node is not a representative until Canon
// resolves it.
func TestRefOnlyKnowsRepresentatives(t *testing.T) {
	tab := intern.NewTable()
	fresh := types.MustRecord(types.Field{Key: "a", Type: types.Num})
	if _, ok := tab.Ref(fresh); ok {
		t.Fatal("Ref claimed a never-interned node")
	}
	c := tab.Canon(fresh)
	if _, ok := tab.Ref(c); !ok {
		t.Fatal("Ref missed the canonical representative")
	}
	clone := types.MustRecord(types.Field{Key: "a", Type: types.Num})
	if _, ok := tab.Ref(clone); ok {
		t.Fatal("Ref claimed a non-representative clone")
	}
	if tab.Canon(clone) != c {
		t.Fatal("structurally equal clone did not collapse onto the representative")
	}
}

// TestDeterministicCounters: on a single-threaded run, misses count
// exactly the distinct types inserted after seeding (Len minus the six
// pre-seeded leaves), which is what makes intern_misses an exact
// distinct-shape metric at Workers: 1.
func TestDeterministicCounters(t *testing.T) {
	tab := intern.NewTable()
	seeded := tab.Len()
	r := &rng{s: 7}
	for i := 0; i < 300; i++ {
		tab.Canon(randomType(r, 3))
	}
	_, misses := tab.Stats()
	if want := int64(tab.Len() - seeded); misses != want {
		t.Fatalf("misses = %d, want Len-seeded = %d", misses, want)
	}
}

// TestConcurrentIntern hammers one table from many goroutines with
// overlapping type sets; exactly one representative must win per
// equivalence class regardless of interleaving (run under -race).
func TestConcurrentIntern(t *testing.T) {
	tab := intern.NewTable()
	const workers = 8
	reps := make([][]types.Type, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Same seed stride across workers → heavy overlap.
			r := &rng{s: uint64(1 + w%2)}
			for i := 0; i < 200; i++ {
				reps[w] = append(reps[w], tab.Canon(randomType(r, 3)))
			}
		}()
	}
	wg.Wait()
	// Workers with the same seed produced the same sequence of inputs;
	// their representatives must be identical nodes.
	for i := range reps[0] {
		if reps[0][i] != reps[2][i] {
			t.Fatalf("representative %d differs across goroutines", i)
		}
	}
	hits, misses := tab.Stats()
	if int(hits+misses) == 0 || misses < int64(tab.Len()-6) {
		t.Fatalf("implausible counters: hits=%d misses=%d len=%d", hits, misses, tab.Len())
	}
}

func mustRef(t *testing.T, tab *intern.Table, typ types.Type) intern.Ref {
	t.Helper()
	r, ok := tab.Ref(tab.Canon(typ))
	if !ok {
		t.Fatalf("no ref for %s", typ)
	}
	return r
}

func TestMultiset(t *testing.T) {
	tab := intern.NewTable()
	num := mustRef(t, tab, types.Num)
	str := mustRef(t, tab, types.Str)
	rec := mustRef(t, tab, types.MustRecord(types.Field{Key: "a", Type: types.Num}))

	a := intern.NewMultiset()
	a.Add(num, 3)
	a.Add(str, 1)
	a.Add(num, 2)
	if a.Len() != 2 || a.Total() != 6 {
		t.Fatalf("Len=%d Total=%d, want 2 and 6", a.Len(), a.Total())
	}
	if got := a.Elems(); got[0].ID != num.ID || got[0].Count != 5 || got[1].ID != str.ID {
		t.Fatalf("first-seen order violated: %+v", got)
	}
	if !a.Contains(num.ID) || a.Contains(rec.ID) {
		t.Fatal("Contains wrong")
	}

	b := intern.NewMultiset()
	b.Add(rec, 4)
	b.Add(num, 1)
	a.Merge(b)
	if a.Len() != 3 || a.Total() != 11 {
		t.Fatalf("after merge Len=%d Total=%d, want 3 and 11", a.Len(), a.Total())
	}
	// Merge appends b's new types in b's order and must not modify b.
	if got := a.Elems(); got[2].ID != rec.ID || got[0].Count != 6 {
		t.Fatalf("merge order/counts wrong: %+v", got)
	}
	if b.Len() != 2 || b.Total() != 5 {
		t.Fatalf("Merge modified its argument: %+v", b.Elems())
	}
	a.Merge(nil) // no-op
	if a.Total() != 11 {
		t.Fatal("Merge(nil) changed the multiset")
	}
}

// TestMultisetMergeConformance: the count multiset is a commutative
// monoid — counts after merging are independent of merge grouping and
// order, the property the combiner relies on. The shared harness
// checks identity, commutativity, associativity, random merge trees
// and non-mutation of the second operand over a shared intern table,
// exactly the within-run sharing the dedup pipeline has.
func TestMultisetMergeConformance(t *testing.T) {
	tab := intern.NewTable()
	monoidtest.Run(t, monoidtest.Subject{
		Name:  "multiset",
		Empty: func() any { return intern.NewMultiset() },
		Rand: func(r *rand.Rand) any {
			// Seed the local xorshift generator from the harness rng, so
			// the element stays a pure function of the reads from r.
			gen := &rng{s: uint64(r.Int63()) | 1}
			ms := intern.NewMultiset()
			for i, n := 0, gen.intn(20); i < n; i++ {
				ms.Add(mustRef(t, tab, randomType(gen, 2)), int64(1+gen.intn(5)))
			}
			return ms
		},
		Merge: func(a, b any) any {
			ms := a.(*intern.Multiset)
			ms.Merge(b.(*intern.Multiset))
			return ms
		},
		Fingerprint: func(x any) string {
			ms := x.(*intern.Multiset)
			elems := ms.Elems()
			counts := make(map[intern.ID]int64, len(elems))
			ids := make([]int, 0, len(elems))
			for _, e := range elems {
				counts[e.ID] = e.Count
				ids = append(ids, int(e.ID))
			}
			sort.Ints(ids)
			var sb strings.Builder
			fmt.Fprintf(&sb, "len=%d total=%d", ms.Len(), ms.Total())
			for _, id := range ids {
				fmt.Fprintf(&sb, " %d:%d", id, counts[intern.ID(id)])
			}
			return sb.String()
		},
	})
}
