package intern

// Multiset counts occurrences of interned types. This is what the
// deduplicating map phase emits per chunk: interned type → count
// instead of one type per record, so a million-record chunk reduces to
// the handful of shapes it actually contains.
//
// Elements are kept in first-seen order and iteration never ranges over
// the index map, so every consumer (chunk-local fusion, stats, the
// combiner) is deterministic for a fixed input.
type Multiset struct {
	elems []Elem
	index map[ID]int
}

// Elem is one distinct type with its occurrence count.
type Elem struct {
	Ref
	// Count is the number of occurrences (always >= 1).
	Count int64
}

// NewMultiset returns an empty multiset.
func NewMultiset() *Multiset {
	return &Multiset{index: make(map[ID]int)}
}

// Add records n more occurrences of r.
func (m *Multiset) Add(r Ref, n int64) {
	if i, ok := m.index[r.ID]; ok {
		m.elems[i].Count += n
		return
	}
	m.index[r.ID] = len(m.elems)
	m.elems = append(m.elems, Elem{Ref: r, Count: n})
}

// Contains reports whether id occurs at least once.
func (m *Multiset) Contains(id ID) bool {
	_, ok := m.index[id]
	return ok
}

// Merge folds other into m: counts of shared types add, types new to m
// append in other's first-seen order. Merging is associative and
// commutative on the counts (the element ORDER depends on merge order,
// which is why consumers must treat the multiset as a set with counts —
// fusion's commutativity makes the fold order invisible). other is not
// modified.
func (m *Multiset) Merge(other *Multiset) {
	if other == nil {
		return
	}
	for i := range other.elems {
		m.Add(other.elems[i].Ref, other.elems[i].Count)
	}
}

// Elems returns the distinct elements in first-seen order. Callers must
// not modify the returned slice.
func (m *Multiset) Elems() []Elem { return m.elems }

// Len reports the number of distinct types.
func (m *Multiset) Len() int { return len(m.elems) }

// Total reports the total occurrence count across all distinct types.
func (m *Multiset) Total() int64 {
	var n int64
	for i := range m.elems {
		n += m.elems[i].Count
	}
	return n
}
