package querycheck

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/types"
)

// testSchema is a hand-built schema in the shape of a tweet stream.
func testSchema() types.Type {
	return types.MustParse(`{
		id: Num,
		text: Str,
		retweet_count: Num,
		lang: Str?,
		user: {screen_name: Str, verified: Bool, followers: Num},
		entities: {hashtags: [{text: Str}*]},
		coordinates: (Null + {lat: Num, lon: Num})?
	}`)
}

func check(t *testing.T, script string) Result {
	t.Helper()
	return Check(script, testSchema())
}

func TestCleanScript(t *testing.T) {
	res := check(t, `
docs = LOAD tweets;
big = FILTER docs BY $.retweet_count > 100 AND $.user.verified == true;
out = FOREACH big GENERATE $.id AS id, $.user.screen_name AS author;
STORE out;
`)
	if len(res.Diagnostics) != 0 {
		t.Fatalf("diagnostics = %v", res.Diagnostics)
	}
	out := res.Relations["out"]
	want := types.MustParse("{author: Str, id: Num}")
	if !types.Equal(out, want) {
		t.Errorf("output schema = %s, want %s", out, want)
	}
	if res.Err() {
		t.Error("Err() on clean script")
	}
	if res.Render() != "ok\n" {
		t.Errorf("Render = %q", res.Render())
	}
}

func TestDeadPathIsError(t *testing.T) {
	res := check(t, `
docs = LOAD tweets;
bad = FILTER docs BY $.retweet_cnt > 100;
`)
	if !res.Err() {
		t.Fatal("typo'd path not reported")
	}
	if !strings.Contains(res.Render(), "dead path") {
		t.Errorf("diagnostics = %s", res.Render())
	}
	if !strings.Contains(res.Render(), "line 3") {
		t.Errorf("wrong line: %s", res.Render())
	}
}

func TestKindMismatchIsError(t *testing.T) {
	res := check(t, `
docs = LOAD tweets;
bad = FILTER docs BY $.text > 10;
worse = FILTER docs BY $.retweet_count == "many";
`)
	out := res.Render()
	if !strings.Contains(out, "can never be true") {
		t.Errorf("missing impossibility diagnostics:\n%s", out)
	}
	if strings.Count(out, "error") != 2 {
		t.Errorf("want 2 errors:\n%s", out)
	}
}

func TestOrderingNeedsNumericLiteral(t *testing.T) {
	res := check(t, `
docs = LOAD tweets;
bad = FILTER docs BY $.retweet_count > "100";
`)
	if !strings.Contains(res.Render(), "needs a numeric literal") {
		t.Errorf("diagnostics = %s", res.Render())
	}
}

func TestOptionalPathWarns(t *testing.T) {
	res := check(t, `
docs = LOAD tweets;
fr = FILTER docs BY $.lang == "fr";
`)
	if res.Err() {
		t.Fatalf("optional path should warn, not error: %s", res.Render())
	}
	if !strings.Contains(res.Render(), "may be absent") {
		t.Errorf("diagnostics = %s", res.Render())
	}
}

func TestUnionComparisonWarns(t *testing.T) {
	res := check(t, `
docs = LOAD tweets;
here = FILTER docs BY $.coordinates == null;
`)
	if res.Err() {
		t.Fatalf("union comparison should warn: %s", res.Render())
	}
	if !strings.Contains(res.Render(), "union type") {
		t.Errorf("diagnostics = %s", res.Render())
	}
}

func TestUndefinedRelation(t *testing.T) {
	res := check(t, `
out = FOREACH nothing GENERATE $.id AS id;
STORE missing;
`)
	out := res.Render()
	if !strings.Contains(out, `undefined relation "nothing"`) ||
		!strings.Contains(out, `undefined relation "missing"`) {
		t.Errorf("diagnostics = %s", out)
	}
}

func TestForeachSchemaFlowsDownstream(t *testing.T) {
	// The synthesized FOREACH schema is what later statements see:
	// referring to a dropped field is a dead path.
	res := check(t, `
docs = LOAD tweets;
slim = FOREACH docs GENERATE $.id AS id;
bad = FILTER slim BY $.text == "x";
`)
	if !res.Err() || !strings.Contains(res.Render(), "dead path") {
		t.Errorf("dropped field not caught downstream: %s", res.Render())
	}
}

func TestForeachOptionalFieldsPropagate(t *testing.T) {
	res := check(t, `
docs = LOAD tweets;
out = FOREACH docs GENERATE $.lang AS language, $.entities.hashtags[*].text AS tag;
`)
	out := res.Relations["out"].(*types.Record)
	lang, _ := out.Get("language")
	if !lang.Optional {
		t.Error("optional source field should make the output field optional")
	}
	tag, _ := out.Get("tag")
	if !tag.Optional || !types.Equal(tag.Type, types.Str) {
		t.Errorf("tag field = %+v", tag)
	}
}

func TestDuplicateAlias(t *testing.T) {
	res := check(t, `
docs = LOAD tweets;
out = FOREACH docs GENERATE $.id AS x, $.text AS x;
`)
	if !strings.Contains(res.Render(), "duplicate output field") {
		t.Errorf("diagnostics = %s", res.Render())
	}
}

func TestParseErrors(t *testing.T) {
	for _, script := range []string{
		"docs = LOAD tweets\nbad statement here",
		"docs = LOAD tweets\nx = FILTER docs",
		"docs = LOAD tweets\nx = FOREACH docs",
		"docs = LOAD tweets\nx = FROBNICATE docs",
		"docs = LOAD tweets\nx = FOREACH docs GENERATE $.id",
		"docs = LOAD tweets\nx = FILTER docs BY $.retweet_count > banana",
		" = LOAD tweets",
	} {
		if res := Check(script, testSchema()); !res.Err() {
			t.Errorf("script %q produced no error: %s", script, res.Render())
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	res := check(t, `
-- load the stream
docs = LOAD tweets;

-- nothing else
STORE docs;
`)
	if len(res.Diagnostics) != 0 {
		t.Errorf("diagnostics = %v", res.Diagnostics)
	}
}

func TestAgainstInferredSchema(t *testing.T) {
	// End to end: infer the twitter schema, then check a realistic
	// script against it, catching a typo a runtime would silently eat.
	g, _ := dataset.New("twitter")
	acc := types.Type(types.Empty)
	for _, v := range dataset.Values(g, 300, 3) {
		acc = fusion.Fuse(acc, fusion.Simplify(infer.Infer(v)))
	}
	res := Check(`
stream = LOAD twitter;
tweets = FILTER stream BY $.text == "x";
out = FOREACH tweets GENERATE $.id AS id, $.user.screen_name AS author, $.entities.hashtag[*].text AS tag;
STORE out;
`, acc)
	if !res.Err() {
		t.Fatalf("typo'd entities.hashtag not caught: %s", res.Render())
	}
	if !strings.Contains(res.Render(), "$.entities.hashtag[*].text") {
		t.Errorf("diagnostics = %s", res.Render())
	}
	// The correct script passes with at most warnings.
	res = Check(`
stream = LOAD twitter;
out = FOREACH stream GENERATE $.id AS id, $.entities.hashtags[*].text AS tag;
STORE out;
`, acc)
	if res.Err() {
		t.Errorf("correct script rejected: %s", res.Render())
	}
}

func TestRelationNames(t *testing.T) {
	res := check(t, "docs = LOAD tweets;\nz = FILTER docs BY $.id > 0;\na = FILTER docs BY $.id > 1;")
	names := res.RelationNames()
	if len(names) != 3 || names[0] != "a" || names[1] != "docs" || names[2] != "z" {
		t.Errorf("RelationNames = %v", names)
	}
}
