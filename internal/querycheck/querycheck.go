// Package querycheck statically type-checks dataflow queries against an
// inferred schema — the application the paper inherits from its
// companion work [12]: "our inferred schemas can be used to make type
// checking of Pig Latin scripts much stronger", and the Section 1 claim
// that without schemas "the correctness of complex queries and programs
// cannot be statically checked".
//
// The language is a Pig-Latin-like core, one statement per line:
//
//	docs   = LOAD input;
//	recent = FILTER docs BY $.retweet_count > 100 AND $.user.verified == true;
//	out    = FOREACH recent GENERATE $.id AS id, $.user.screen_name AS author;
//	STORE out;
//
// The checker resolves every path against the schema of the statement's
// input relation (errors for paths no conforming value can contain),
// checks comparison kinds ($.a > 3 needs a Num, == "x" needs a Str),
// warns when a used path may be absent (optional fields, union
// branches), and synthesizes the output schema of every FOREACH, so
// downstream statements are checked against exactly the fields upstream
// ones produce.
package querycheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pathquery"
	"repro/internal/types"
)

// Severity grades a diagnostic.
type Severity int

// Severities.
const (
	// Warning: the query can run but may silently miss data.
	Warning Severity = iota
	// Error: the query is statically wrong against the schema.
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding of the checker.
type Diagnostic struct {
	Line     int
	Severity Severity
	Message  string
}

// String renders "line N: severity: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("line %d: %s: %s", d.Line, d.Severity, d.Message)
}

// Result is the outcome of checking a script.
type Result struct {
	// Diagnostics in line order, errors and warnings mixed.
	Diagnostics []Diagnostic
	// Relations maps each defined relation name to its inferred schema.
	Relations map[string]types.Type
}

// Err reports whether any diagnostic is an Error.
func (r Result) Err() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Render formats the diagnostics, one per line ("ok" when clean).
func (r Result) Render() string {
	if len(r.Diagnostics) == 0 {
		return "ok\n"
	}
	var sb strings.Builder
	for _, d := range r.Diagnostics {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Check type-checks the script against the schema bound to the LOAD
// statement's input. Parse errors are reported as Error diagnostics on
// their line; checking continues on later lines where possible.
func Check(script string, input types.Type) Result {
	c := &checker{
		res:   Result{Relations: map[string]types.Type{}},
		env:   map[string]types.Type{},
		input: input,
	}
	for i, raw := range strings.Split(script, "\n") {
		line := strings.TrimSpace(raw)
		line = strings.TrimSuffix(line, ";")
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		c.line = i + 1
		c.statement(line)
	}
	// Expose the final environment.
	for name, t := range c.env {
		c.res.Relations[name] = t
	}
	return c.res
}

type checker struct {
	res   Result
	env   map[string]types.Type
	input types.Type
	line  int
}

func (c *checker) errorf(format string, args ...any) {
	c.res.Diagnostics = append(c.res.Diagnostics, Diagnostic{Line: c.line, Severity: Error, Message: fmt.Sprintf(format, args...)})
}

func (c *checker) warnf(format string, args ...any) {
	c.res.Diagnostics = append(c.res.Diagnostics, Diagnostic{Line: c.line, Severity: Warning, Message: fmt.Sprintf(format, args...)})
}

// statement dispatches one parsed line.
func (c *checker) statement(line string) {
	if rest, ok := cutKeyword(line, "STORE"); ok {
		name := strings.TrimSpace(rest)
		if _, bound := c.env[name]; !bound {
			c.errorf("STORE of undefined relation %q", name)
		}
		return
	}
	name, rhs, found := strings.Cut(line, "=")
	if !found {
		c.errorf("cannot parse statement %q (want NAME = ... or STORE NAME)", line)
		return
	}
	name = strings.TrimSpace(name)
	if name == "" || strings.ContainsAny(name, " \t") {
		c.errorf("bad relation name %q", name)
		return
	}
	rhs = strings.TrimSpace(rhs)
	switch {
	case hasKeyword(rhs, "LOAD"):
		c.load(name, rhs)
	case hasKeyword(rhs, "FILTER"):
		c.filter(name, rhs)
	case hasKeyword(rhs, "FOREACH"):
		c.foreach(name, rhs)
	default:
		c.errorf("unknown operation in %q (want LOAD, FILTER, or FOREACH)", rhs)
	}
}

// load binds the input schema: `x = LOAD anything`.
func (c *checker) load(name, rhs string) {
	if c.input == nil {
		c.errorf("no input schema bound for LOAD")
		return
	}
	c.env[name] = c.input
}

// filter checks `x = FILTER y BY predicate`.
func (c *checker) filter(name, rhs string) {
	rest, _ := cutKeyword(rhs, "FILTER")
	srcName, pred, found := cutKeywordIn(rest, "BY")
	if !found {
		c.errorf("FILTER without BY in %q", rhs)
		return
	}
	src, ok := c.relation(srcName)
	if !ok {
		return
	}
	for _, clause := range splitTop(pred, " AND ") {
		c.clause(src, strings.TrimSpace(clause))
	}
	// Filtering cannot add structure: the output schema is the input's.
	c.env[name] = src
}

// foreach checks `x = FOREACH y GENERATE $.path AS alias, ...` and
// synthesizes the output record type.
func (c *checker) foreach(name, rhs string) {
	rest, _ := cutKeyword(rhs, "FOREACH")
	srcName, gens, found := cutKeywordIn(rest, "GENERATE")
	if !found {
		c.errorf("FOREACH without GENERATE in %q", rhs)
		return
	}
	src, ok := c.relation(srcName)
	if !ok {
		return
	}
	var fields []types.Field
	seen := map[string]bool{}
	for _, item := range splitTop(gens, ",") {
		item = strings.TrimSpace(item)
		pathSrc, alias, hasAlias := cutKeywordIn(item, "AS")
		if !hasAlias {
			c.errorf("GENERATE item %q needs an AS alias", item)
			continue
		}
		alias = strings.TrimSpace(alias)
		if seen[alias] {
			c.errorf("duplicate output field %q", alias)
			continue
		}
		t, canMiss, ok := c.pathType(src, strings.TrimSpace(pathSrc))
		if !ok {
			continue
		}
		seen[alias] = true
		fields = append(fields, types.Field{Key: alias, Type: t, Optional: canMiss})
	}
	rec, err := types.NewRecord(fields...)
	if err != nil {
		c.errorf("building output schema: %v", err)
		return
	}
	c.env[name] = rec
}

// clause checks one predicate clause: `$.path OP literal` or a bare
// path (existence test).
func (c *checker) clause(src types.Type, clause string) {
	for _, op := range []string{"==", "!=", ">=", "<=", ">", "<"} {
		lhs, rhs, found := strings.Cut(clause, op)
		if !found {
			continue
		}
		t, canMiss, ok := c.pathType(src, strings.TrimSpace(lhs))
		if !ok {
			return
		}
		litKind, litText := literalKind(strings.TrimSpace(rhs))
		if litKind < 0 {
			c.errorf("cannot parse literal %q", strings.TrimSpace(rhs))
			return
		}
		if op != "==" && op != "!=" && litKind != types.KindNum {
			c.errorf("ordering comparison %q needs a numeric literal, got %s", op, litText)
			return
		}
		if !kindPossible(t, litKind) {
			c.errorf("path %s has type %s; comparison with %s can never be true",
				strings.TrimSpace(lhs), t, litText)
			return
		}
		if canMiss {
			c.warnf("path %s may be absent; records without it are silently dropped", strings.TrimSpace(lhs))
		}
		if alts := types.Addends(t); len(alts) > 1 {
			c.warnf("path %s has union type %s; non-%s values never match %q",
				strings.TrimSpace(lhs), t, types.Kind(litKind), clause)
		}
		return
	}
	// Bare path: existence test.
	if _, _, ok := c.pathType(src, clause); ok {
		return
	}
}

// pathType resolves a path expression against a schema, reporting an
// error when it is malformed or provably dead. Multiple matches (from a
// wildcard) merge into a union.
func (c *checker) pathType(src types.Type, pathSrc string) (types.Type, bool, bool) {
	p, err := pathquery.Parse(pathSrc)
	if err != nil {
		c.errorf("%v", err)
		return nil, false, false
	}
	ms := pathquery.Expand(src, p)
	if len(ms) == 0 {
		c.errorf("no conforming value can contain %s (dead path)", pathSrc)
		return nil, false, false
	}
	canMiss := false
	ts := make([]types.Type, len(ms))
	for i, m := range ms {
		ts[i] = m.Type
		canMiss = canMiss || m.CanMiss
	}
	u, err := types.NewUnion(ts...)
	if err != nil {
		c.errorf("merging path types: %v", err)
		return nil, false, false
	}
	return u, canMiss, true
}

// relation looks up a bound relation name.
func (c *checker) relation(raw string) (types.Type, bool) {
	name := strings.TrimSpace(raw)
	t, ok := c.env[name]
	if !ok {
		c.errorf("undefined relation %q", name)
	}
	return t, ok
}

// --- small parsing helpers ---

// cutKeyword strips a leading keyword (case-sensitive, word-aligned).
func cutKeyword(s, kw string) (string, bool) {
	if strings.HasPrefix(s, kw) && (len(s) == len(kw) || s[len(kw)] == ' ' || s[len(kw)] == '\t') {
		return s[len(kw):], true
	}
	return s, false
}

func hasKeyword(s, kw string) bool {
	_, ok := cutKeyword(s, kw)
	return ok
}

// cutKeywordIn splits s around the first occurrence of " KW ".
func cutKeywordIn(s, kw string) (string, string, bool) {
	idx := strings.Index(s, " "+kw+" ")
	if idx < 0 {
		return s, "", false
	}
	return s[:idx], s[idx+len(kw)+2:], true
}

// splitTop splits on sep at the top level (no string literals with
// embedded separators are supported in this core language).
func splitTop(s, sep string) []string {
	return strings.Split(s, sep)
}

// literalKind classifies a literal: true/false -> Bool, null -> Null,
// quoted -> Str, numeric -> Num; -1 when unparseable.
func literalKind(lit string) (types.Kind, string) {
	switch {
	case lit == "true" || lit == "false":
		return types.KindBool, lit
	case lit == "null":
		return types.KindNull, lit
	case len(lit) >= 2 && lit[0] == '"' && lit[len(lit)-1] == '"':
		return types.KindStr, lit
	case len(lit) >= 2 && lit[0] == '\'' && lit[len(lit)-1] == '\'':
		return types.KindStr, lit
	default:
		if isNumber(lit) {
			return types.KindNum, lit
		}
		return -1, lit
	}
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	seenDigit := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
			seenDigit = true
		case s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E':
		default:
			return false
		}
	}
	return seenDigit
}

// kindPossible reports whether some alternative of t has the kind.
func kindPossible(t types.Type, k types.Kind) bool {
	for _, a := range types.Addends(t) {
		if ak, ok := types.KindOf(a); ok && ak == k {
			return true
		}
	}
	return false
}

// RelationNames lists the defined relations in sorted order, for
// reports.
func (r Result) RelationNames() []string {
	names := make([]string, 0, len(r.Relations))
	for name := range r.Relations {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
