// Package value implements the JSON data model of Figure 2 of the paper
// "Schema Inference for Massive JSON Datasets" (EDBT 2017).
//
// A Value is either a basic value (null, boolean, number, string), a
// record (a set of key/value pairs with unique keys), or an array (an
// ordered list of values). Records are set-like: two records that differ
// only in field order are equal. Arrays are order-sensitive.
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies a Value. The numeric codes mirror the kind() table of
// the paper (null=0, bool=1, num=2, str=3, record=4, array=5) so that the
// type system and the data model agree on kinds.
type Kind int

// Kinds of JSON values, in the paper's order.
const (
	KindNull Kind = iota
	KindBool
	KindNum
	KindStr
	KindRecord
	KindArray
)

// String returns the conventional lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindNum:
		return "num"
	case KindStr:
		return "str"
	case KindRecord:
		return "record"
	case KindArray:
		return "array"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a JSON value: one of Null, Bool, Num, Str, *Record, or Array.
type Value interface {
	// Kind reports which of the six syntactic categories the value
	// belongs to.
	Kind() Kind
	// appendJSON appends the canonical JSON rendering of the value.
	appendJSON(dst []byte) []byte
}

// Null is the JSON null value.
type Null struct{}

// Bool is a JSON boolean.
type Bool bool

// Num is a JSON number. The data model does not distinguish integers from
// floating-point values, matching the paper's single Num basic type.
type Num float64

// Str is a JSON string.
type Str string

// Field is a single key/value association inside a record.
type Field struct {
	Key   string
	Value Value
}

// Record is a set of fields with unique keys. Construct records with
// NewRecord (which rejects duplicate keys, as required by the
// well-formedness condition of Section 4) or MustRecord in tests.
// Fields are kept sorted by key so that records behave as sets.
type Record struct {
	fields []Field
}

// Array is an ordered list of values.
type Array []Value

// Kind implementations.

// Kind reports KindNull.
func (Null) Kind() Kind { return KindNull }

// Kind reports KindBool.
func (Bool) Kind() Kind { return KindBool }

// Kind reports KindNum.
func (Num) Kind() Kind { return KindNum }

// Kind reports KindStr.
func (Str) Kind() Kind { return KindStr }

// Kind reports KindRecord.
func (*Record) Kind() Kind { return KindRecord }

// Kind reports KindArray.
func (Array) Kind() Kind { return KindArray }

// NewRecord builds a record from the given fields. It returns an error if
// two fields share a key (ill-formed JSON per Section 4) or if any field
// value is nil. The input slice is not retained.
func NewRecord(fields ...Field) (*Record, error) {
	fs := make([]Field, len(fields))
	copy(fs, fields)
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Key < fs[j].Key })
	for i, f := range fs {
		if f.Value == nil {
			return nil, fmt.Errorf("value: record field %q has nil value", f.Key)
		}
		if i > 0 && fs[i-1].Key == f.Key {
			return nil, fmt.Errorf("value: duplicate record key %q", f.Key)
		}
	}
	return &Record{fields: fs}, nil
}

// MustRecord is like NewRecord but panics on error. It is intended for
// tests and for literals whose well-formedness is evident.
func MustRecord(fields ...Field) *Record {
	r, err := NewRecord(fields...)
	if err != nil {
		panic(err)
	}
	return r
}

// Len reports the number of fields in the record.
func (r *Record) Len() int { return len(r.fields) }

// Fields returns the record's fields sorted by key. The returned slice
// must not be modified.
func (r *Record) Fields() []Field { return r.fields }

// Keys returns the set of top-level keys of the record, sorted.
func (r *Record) Keys() []string {
	ks := make([]string, len(r.fields))
	for i, f := range r.fields {
		ks[i] = f.Key
	}
	return ks
}

// Get returns the value associated with key, or nil if the key is absent.
func (r *Record) Get(key string) Value {
	i := sort.Search(len(r.fields), func(i int) bool { return r.fields[i].Key >= key })
	if i < len(r.fields) && r.fields[i].Key == key {
		return r.fields[i].Value
	}
	return nil
}

// Has reports whether the record contains the key.
func (r *Record) Has(key string) bool { return r.Get(key) != nil }

// Equal reports structural equality of two values. Records compare as
// sets of fields; arrays compare element-wise in order.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch av := a.(type) {
	case Null:
		return true
	case Bool:
		return av == b.(Bool)
	case Num:
		return av == b.(Num)
	case Str:
		return av == b.(Str)
	case *Record:
		bv := b.(*Record)
		if len(av.fields) != len(bv.fields) {
			return false
		}
		for i := range av.fields {
			if av.fields[i].Key != bv.fields[i].Key || !Equal(av.fields[i].Value, bv.fields[i].Value) {
				return false
			}
		}
		return true
	case Array:
		bv := b.(Array)
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !Equal(av[i], bv[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Clone returns a deep copy of v.
func Clone(v Value) Value {
	switch vv := v.(type) {
	case Null, Bool, Num, Str:
		return vv
	case *Record:
		fs := make([]Field, len(vv.fields))
		for i, f := range vv.fields {
			fs[i] = Field{Key: f.Key, Value: Clone(f.Value)}
		}
		return &Record{fields: fs}
	case Array:
		elems := make(Array, len(vv))
		for i, e := range vv {
			elems[i] = Clone(e)
		}
		return elems
	default:
		panic(fmt.Sprintf("value: unknown value %T", v))
	}
}

// Depth returns the nesting depth of the value: basic values have depth 1,
// records and arrays have depth 1 plus the maximum depth of their
// components (an empty record or array has depth 1).
func Depth(v Value) int {
	switch vv := v.(type) {
	case *Record:
		max := 0
		for _, f := range vv.fields {
			if d := Depth(f.Value); d > max {
				max = d
			}
		}
		return 1 + max
	case Array:
		max := 0
		for _, e := range vv {
			if d := Depth(e); d > max {
				max = d
			}
		}
		return 1 + max
	default:
		return 1
	}
}

// Nodes returns the number of nodes in the value's abstract syntax tree:
// one per basic value, one per record plus one per field, one per array.
func Nodes(v Value) int {
	switch vv := v.(type) {
	case *Record:
		n := 1
		for _, f := range vv.fields {
			n += 1 + Nodes(f.Value)
		}
		return n
	case Array:
		n := 1
		for _, e := range vv {
			n += Nodes(e)
		}
		return n
	default:
		return 1
	}
}

// appendJSON implementations render canonical JSON: record fields in key
// order, numbers in their shortest form, strings escaped per RFC 8259.

func (Null) appendJSON(dst []byte) []byte { return append(dst, "null"...) }

func (b Bool) appendJSON(dst []byte) []byte {
	if b {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

func (n Num) appendJSON(dst []byte) []byte {
	f := float64(n)
	if f == float64(int64(f)) && f >= -1e15 && f <= 1e15 {
		return strconv.AppendInt(dst, int64(f), 10)
	}
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}

func (s Str) appendJSON(dst []byte) []byte { return AppendQuoted(dst, string(s)) }

func (r *Record) appendJSON(dst []byte) []byte {
	dst = append(dst, '{')
	for i, f := range r.fields {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = AppendQuoted(dst, f.Key)
		dst = append(dst, ':')
		dst = f.Value.appendJSON(dst)
	}
	return append(dst, '}')
}

func (a Array) appendJSON(dst []byte) []byte {
	dst = append(dst, '[')
	for i, e := range a {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = e.appendJSON(dst)
	}
	return append(dst, ']')
}

// AppendJSON appends the canonical JSON rendering of v to dst and returns
// the extended slice. Record fields are emitted in key order, so equal
// values always render to equal bytes.
func AppendJSON(dst []byte, v Value) []byte { return v.appendJSON(dst) }

// JSON returns the canonical JSON rendering of v as a string.
func JSON(v Value) string { return string(AppendJSON(nil, v)) }

const hexDigits = "0123456789abcdef"

// AppendQuoted appends s as a quoted JSON string, escaping control
// characters, quotes, and backslashes.
func AppendQuoted(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for _, r := range s {
		switch r {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			if r < 0x20 {
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[r>>4], hexDigits[r&0xf])
			} else {
				dst = append(dst, string(r)...)
			}
		}
	}
	return append(dst, '"')
}

// Compare defines a total order over values, used to canonicalize and
// deduplicate. Values of different kinds order by kind; basic values by
// their natural order; records lexicographically by (key, value) pairs;
// arrays lexicographically by elements.
func Compare(a, b Value) int {
	if ka, kb := a.Kind(), b.Kind(); ka != kb {
		return int(ka) - int(kb)
	}
	switch av := a.(type) {
	case Null:
		return 0
	case Bool:
		bv := b.(Bool)
		switch {
		case av == bv:
			return 0
		case bool(av):
			return 1
		default:
			return -1
		}
	case Num:
		bv := b.(Num)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		default:
			return 0
		}
	case Str:
		return strings.Compare(string(av), string(b.(Str)))
	case *Record:
		bv := b.(*Record)
		for i := 0; i < len(av.fields) && i < len(bv.fields); i++ {
			if c := strings.Compare(av.fields[i].Key, bv.fields[i].Key); c != 0 {
				return c
			}
			if c := Compare(av.fields[i].Value, bv.fields[i].Value); c != 0 {
				return c
			}
		}
		return len(av.fields) - len(bv.fields)
	case Array:
		bv := b.(Array)
		for i := 0; i < len(av) && i < len(bv); i++ {
			if c := Compare(av[i], bv[i]); c != 0 {
				return c
			}
		}
		return len(av) - len(bv)
	default:
		panic(fmt.Sprintf("value: unknown value %T", a))
	}
}
