package value

import (
	"fmt"
	"math"
	"sort"
)

// FromGo converts a Go value of the shapes produced by encoding/json
// (nil, bool, float64, string, map[string]any, []any — plus the other
// numeric Go types and json.Number-like fmt.Stringer numbers for
// convenience) into a Value. It returns an error for unsupported Go types
// and for non-finite floats, which JSON cannot represent.
func FromGo(v any) (Value, error) {
	switch vv := v.(type) {
	case nil:
		return Null{}, nil
	case bool:
		return Bool(vv), nil
	case string:
		return Str(vv), nil
	case float64:
		if math.IsNaN(vv) || math.IsInf(vv, 0) {
			return nil, fmt.Errorf("value: non-finite number %v is not valid JSON", vv)
		}
		return Num(vv), nil
	case float32:
		return FromGo(float64(vv))
	case int:
		return Num(vv), nil
	case int8:
		return Num(vv), nil
	case int16:
		return Num(vv), nil
	case int32:
		return Num(vv), nil
	case int64:
		return Num(vv), nil
	case uint:
		return Num(vv), nil
	case uint8:
		return Num(vv), nil
	case uint16:
		return Num(vv), nil
	case uint32:
		return Num(vv), nil
	case uint64:
		return Num(vv), nil
	case map[string]any:
		// Convert in sorted key order: NewRecord canonicalizes field
		// order anyway, but without the sort the error path would
		// report a map-iteration-random field when several are invalid.
		keys := make([]string, 0, len(vv))
		for k := range vv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fields := make([]Field, 0, len(keys))
		for _, k := range keys {
			cv, err := FromGo(vv[k])
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", k, err)
			}
			fields = append(fields, Field{Key: k, Value: cv})
		}
		return NewRecord(fields...)
	case []any:
		elems := make(Array, len(vv))
		for i, ev := range vv {
			cv, err := FromGo(ev)
			if err != nil {
				return nil, fmt.Errorf("index %d: %w", i, err)
			}
			elems[i] = cv
		}
		return elems, nil
	case Value:
		return vv, nil
	default:
		return nil, fmt.Errorf("value: unsupported Go type %T", v)
	}
}

// ToGo converts a Value into the Go representation used by encoding/json:
// nil, bool, float64, string, map[string]any, and []any.
func ToGo(v Value) any {
	switch vv := v.(type) {
	case Null:
		return nil
	case Bool:
		return bool(vv)
	case Num:
		return float64(vv)
	case Str:
		return string(vv)
	case *Record:
		m := make(map[string]any, vv.Len())
		for _, f := range vv.Fields() {
			m[f.Key] = ToGo(f.Value)
		}
		return m
	case Array:
		s := make([]any, len(vv))
		for i, e := range vv {
			s[i] = ToGo(e)
		}
		return s
	default:
		panic(fmt.Sprintf("value: unknown value %T", v))
	}
}

// Obj is a convenience constructor for record literals in tests and
// examples: Obj("a", Num(1), "b", Str("x")). It panics if the number of
// arguments is odd, a key is not a string, or keys collide.
func Obj(pairs ...any) *Record {
	if len(pairs)%2 != 0 {
		panic("value.Obj: odd number of arguments")
	}
	fields := make([]Field, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		k, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("value.Obj: key %v is not a string", pairs[i]))
		}
		v, ok := pairs[i+1].(Value)
		if !ok {
			panic(fmt.Sprintf("value.Obj: value for key %q is not a Value (%T)", k, pairs[i+1]))
		}
		fields = append(fields, Field{Key: k, Value: v})
	}
	return MustRecord(fields...)
}

// Arr is a convenience constructor for array literals.
func Arr(elems ...Value) Array { return Array(elems) }

// SortValues sorts a slice of values in the Compare order, in place.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
}
