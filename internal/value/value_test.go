package value

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		want Kind
	}{
		{Null{}, KindNull},
		{Bool(true), KindBool},
		{Num(3.14), KindNum},
		{Str("x"), KindStr},
		{MustRecord(), KindRecord},
		{Array{}, KindArray},
	}
	for _, c := range cases {
		if got := c.v.Kind(); got != c.want {
			t.Errorf("%v.Kind() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	want := []string{"null", "bool", "num", "str", "record", "array"}
	for k, w := range want {
		if got := Kind(k).String(); got != w {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, w)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindCodesMatchPaper(t *testing.T) {
	// The paper's kind table: null=0 bool=1 num=2 str=3 record=4 array=5.
	if KindNull != 0 || KindBool != 1 || KindNum != 2 || KindStr != 3 || KindRecord != 4 || KindArray != 5 {
		t.Fatalf("kind codes diverge from the paper's kind() table")
	}
}

func TestNewRecordRejectsDuplicates(t *testing.T) {
	_, err := NewRecord(Field{"a", Num(1)}, Field{"a", Num(2)})
	if err == nil {
		t.Fatal("NewRecord accepted duplicate keys")
	}
	if !strings.Contains(err.Error(), `"a"`) {
		t.Errorf("error %q does not name the duplicate key", err)
	}
}

func TestNewRecordRejectsNilValue(t *testing.T) {
	if _, err := NewRecord(Field{"a", nil}); err == nil {
		t.Fatal("NewRecord accepted a nil field value")
	}
}

func TestMustRecordPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRecord did not panic on duplicate keys")
		}
	}()
	MustRecord(Field{"a", Num(1)}, Field{"a", Num(2)})
}

func TestRecordFieldOrderIrrelevant(t *testing.T) {
	a := Obj("x", Num(1), "y", Str("s"))
	b := Obj("y", Str("s"), "x", Num(1))
	if !Equal(a, b) {
		t.Errorf("records differing only in field order are not Equal")
	}
	if JSON(a) != JSON(b) {
		t.Errorf("canonical JSON differs: %s vs %s", JSON(a), JSON(b))
	}
}

func TestRecordAccessors(t *testing.T) {
	r := Obj("b", Num(2), "a", Num(1), "c", Null{})
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if got := r.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Keys = %v", got)
	}
	if got := r.Get("b"); !Equal(got, Num(2)) {
		t.Errorf("Get(b) = %v", got)
	}
	if r.Get("zz") != nil {
		t.Errorf("Get(zz) should be nil")
	}
	if !r.Has("c") || r.Has("d") {
		t.Errorf("Has misreports membership")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Null{}, Null{}, true},
		{Null{}, Bool(false), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Num(1), Num(1), true},
		{Num(1), Num(2), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Arr(Num(1), Num(2)), Arr(Num(1), Num(2)), true},
		{Arr(Num(1), Num(2)), Arr(Num(2), Num(1)), false},
		{Arr(Num(1)), Arr(Num(1), Num(1)), false},
		{Obj("a", Num(1)), Obj("a", Num(1)), true},
		{Obj("a", Num(1)), Obj("a", Num(2)), false},
		{Obj("a", Num(1)), Obj("b", Num(1)), false},
		{Obj("a", Num(1)), Obj("a", Num(1), "b", Num(2)), false},
		{nil, nil, true},
		{nil, Null{}, false},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	orig := Obj(
		"a", Arr(Num(1), Obj("x", Str("y"))),
		"b", Null{},
	)
	cp := Clone(orig).(*Record)
	if !Equal(orig, cp) {
		t.Fatal("clone not equal to original")
	}
	// Mutate the clone's nested array; the original must be unaffected.
	cp.Fields()[0].Value.(Array)[0] = Num(99)
	if Equal(orig, cp) {
		t.Fatal("mutating clone affected original (shallow copy)")
	}
}

func TestDepth(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{Num(1), 1},
		{MustRecord(), 1},
		{Array{}, 1},
		{Obj("a", Num(1)), 2},
		{Arr(Arr(Arr(Num(1)))), 4},
		{Obj("a", Obj("b", Obj("c", Str("deep")))), 4},
	}
	for _, c := range cases {
		if got := Depth(c.v); got != c.want {
			t.Errorf("Depth(%s) = %d, want %d", JSON(c.v), got, c.want)
		}
	}
}

func TestNodes(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{Num(1), 1},
		{MustRecord(), 1},
		{Array{}, 1},
		{Obj("a", Num(1)), 3},              // record + field + num
		{Arr(Num(1), Num(2)), 3},           // array + 2 nums
		{Obj("a", Arr(Num(1), Num(2))), 5}, // record + field + array + 2 nums
	}
	for _, c := range cases {
		if got := Nodes(c.v); got != c.want {
			t.Errorf("Nodes(%s) = %d, want %d", JSON(c.v), got, c.want)
		}
	}
}

func TestJSONRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null{}, "null"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Num(0), "0"},
		{Num(-5), "-5"},
		{Num(3.5), "3.5"},
		{Num(1e20), "1e+20"},
		{Str("hi"), `"hi"`},
		{Str("a\"b\\c"), `"a\"b\\c"`},
		{Str("tab\there"), `"tab\there"`},
		{Str("nl\n"), `"nl\n"`},
		{Str("\x01"), `"\u0001"`},
		{Str("héllo"), `"héllo"`},
		{Array{}, "[]"},
		{MustRecord(), "{}"},
		{Obj("b", Num(1), "a", Num(2)), `{"a":2,"b":1}`},
		{Arr(Num(1), Str("x"), Null{}), `[1,"x",null]`},
	}
	for _, c := range cases {
		if got := JSON(c.v); got != c.want {
			t.Errorf("JSON(%#v) = %s, want %s", c.v, got, c.want)
		}
	}
}

func TestJSONRoundTripsThroughEncodingJSON(t *testing.T) {
	// Our canonical rendering must be valid JSON that encoding/json parses
	// back to the same Go shape.
	v := Obj(
		"s", Str("a \"quoted\" string\nwith newline"),
		"n", Num(42.5),
		"arr", Arr(Num(1), Bool(false), Null{}, Obj("k", Str("v"))),
		"empty", MustRecord(),
	)
	var got any
	if err := json.Unmarshal([]byte(JSON(v)), &got); err != nil {
		t.Fatalf("canonical JSON invalid: %v", err)
	}
	want := ToGo(v)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestFromGo(t *testing.T) {
	got, err := FromGo(map[string]any{
		"a": 1.5,
		"b": []any{nil, true, "s", map[string]any{"n": 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Obj("a", Num(1.5), "b", Arr(Null{}, Bool(true), Str("s"), Obj("n", Num(7))))
	if !Equal(got, want) {
		t.Errorf("FromGo = %s, want %s", JSON(got), JSON(want))
	}
}

func TestFromGoNumericTypes(t *testing.T) {
	ins := []any{int(3), int8(3), int16(3), int32(3), int64(3),
		uint(3), uint8(3), uint16(3), uint32(3), uint64(3), float32(3), float64(3)}
	for _, in := range ins {
		got, err := FromGo(in)
		if err != nil {
			t.Fatalf("FromGo(%T): %v", in, err)
		}
		if !Equal(got, Num(3)) {
			t.Errorf("FromGo(%T) = %v, want Num(3)", in, got)
		}
	}
}

func TestFromGoErrors(t *testing.T) {
	if _, err := FromGo(math.NaN()); err == nil {
		t.Error("FromGo(NaN) should fail")
	}
	if _, err := FromGo(math.Inf(1)); err == nil {
		t.Error("FromGo(+Inf) should fail")
	}
	if _, err := FromGo(struct{}{}); err == nil {
		t.Error("FromGo(struct{}{}) should fail")
	}
	if _, err := FromGo(map[string]any{"a": struct{}{}}); err == nil {
		t.Error("FromGo should propagate nested errors")
	}
	if _, err := FromGo([]any{struct{}{}}); err == nil {
		t.Error("FromGo should propagate nested array errors")
	}
}

func TestToGoFromGoRoundTrip(t *testing.T) {
	v := Obj("a", Arr(Num(1), Str("two"), Null{}), "b", Bool(true))
	back, err := FromGo(ToGo(v))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(v, back) {
		t.Errorf("round trip mismatch: %s vs %s", JSON(v), JSON(back))
	}
}

func TestFromGoPassesThroughValue(t *testing.T) {
	v := Obj("a", Num(1))
	got, err := FromGo(v)
	if err != nil {
		t.Fatal(err)
	}
	if got != Value(v) {
		t.Error("FromGo(Value) should return the value unchanged")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// Strictly increasing sequence under Compare.
	seq := []Value{
		Null{},
		Bool(false), Bool(true),
		Num(-1), Num(0), Num(2.5),
		Str(""), Str("a"), Str("b"),
		MustRecord(), Obj("a", Num(1)), Obj("a", Num(2)), Obj("a", Num(2), "b", Num(0)), Obj("b", Num(0)),
		Array{}, Arr(Num(1)), Arr(Num(1), Num(1)), Arr(Num(2)),
	}
	for i := range seq {
		for j := range seq {
			got := Compare(seq[i], seq[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%s, %s) = %d, want < 0", JSON(seq[i]), JSON(seq[j]), got)
			case i > j && got <= 0:
				t.Errorf("Compare(%s, %s) = %d, want > 0", JSON(seq[i]), JSON(seq[j]), got)
			case i == j && got != 0:
				t.Errorf("Compare(%s, itself) = %d, want 0", JSON(seq[i]), got)
			}
		}
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{Str("b"), Num(1), Null{}, Str("a")}
	SortValues(vs)
	want := []Value{Null{}, Num(1), Str("a"), Str("b")}
	for i := range want {
		if !Equal(vs[i], want[i]) {
			t.Fatalf("SortValues order wrong at %d: %v", i, vs)
		}
	}
}

func TestObjPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"odd args":   func() { Obj("a") },
		"non-string": func() { Obj(1, Num(1)) },
		"non-value":  func() { Obj("a", 17) },
		"duplicate":  func() { Obj("a", Num(1), "a", Num(2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Obj did not panic for %s", name)
				}
			}()
			fn()
		}()
	}
}

// quickValue builds a bounded random Value for property tests.
func quickValue(rnd *quickRand, depth int) Value {
	max := 6
	if depth <= 0 {
		max = 4 // basic values only
	}
	switch rnd.intn(max) {
	case 0:
		return Null{}
	case 1:
		return Bool(rnd.intn(2) == 0)
	case 2:
		return Num(float64(rnd.intn(1000)) / 4)
	case 3:
		return Str(rnd.str())
	case 4:
		n := rnd.intn(4)
		fields := make([]Field, 0, n)
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			k := rnd.str()
			if seen[k] {
				continue
			}
			seen[k] = true
			fields = append(fields, Field{Key: k, Value: quickValue(rnd, depth-1)})
		}
		return MustRecord(fields...)
	default:
		n := rnd.intn(4)
		elems := make(Array, n)
		for i := range elems {
			elems[i] = quickValue(rnd, depth-1)
		}
		return elems
	}
}

type quickRand struct{ s uint64 }

func (r *quickRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *quickRand) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *quickRand) str() string {
	letters := "abcdefgh"
	n := r.intn(5)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(letters[r.intn(len(letters))])
	}
	return b.String()
}

func TestPropertyCloneEqualAndJSONStable(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := &quickRand{s: seed | 1}
		v := quickValue(rnd, 3)
		cp := Clone(v)
		return Equal(v, cp) && JSON(v) == JSON(cp) && Compare(v, cp) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareConsistentWithEqual(t *testing.T) {
	f := func(seed1, seed2 uint64) bool {
		r1 := &quickRand{s: seed1 | 1}
		r2 := &quickRand{s: seed2 | 1}
		a := quickValue(r1, 3)
		b := quickValue(r2, 3)
		eq := Equal(a, b)
		cmp := Compare(a, b)
		if eq != (cmp == 0) {
			return false
		}
		// Antisymmetry.
		return sign(Compare(a, b)) == -sign(Compare(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}
