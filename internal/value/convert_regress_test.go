package value

import (
	"math"
	"strings"
	"testing"
)

// TestFromGoErrorDeterministic is the regression test for the nondetmap
// finding in FromGo: with several invalid fields in one object, the
// reported field used to depend on map iteration order. Conversion now
// walks keys in sorted order, so the lexicographically first offender
// is reported every time.
func TestFromGoErrorDeterministic(t *testing.T) {
	bad := map[string]any{
		"zulu":  math.NaN(),
		"alpha": math.Inf(1),
		"mike":  math.NaN(),
	}
	for i := 0; i < 64; i++ {
		_, err := FromGo(bad)
		if err == nil {
			t.Fatal("FromGo accepted non-finite numbers")
		}
		if !strings.Contains(err.Error(), `field "alpha"`) {
			t.Fatalf("iteration %d: error %q does not name the first field in key order", i, err)
		}
	}
}

// TestFromGoSortedKeysStillConvert checks the sorted-key path converts
// every field, not just the ones before the sort landed.
func TestFromGoSortedKeysStillConvert(t *testing.T) {
	v, err := FromGo(map[string]any{"b": 2.0, "a": 1.0, "c": "x"})
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := v.(*Record)
	if !ok {
		t.Fatalf("FromGo returned %T, want *Record", v)
	}
	if got := len(rec.Fields()); got != 3 {
		t.Fatalf("record has %d fields, want 3", got)
	}
}
