package jsontext

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func mustParse(t *testing.T, src string) value.Value {
	t.Helper()
	v, err := ParseBytes([]byte(src))
	if err != nil {
		t.Fatalf("ParseBytes(%q): %v", src, err)
	}
	return v
}

func TestParseScalars(t *testing.T) {
	cases := []struct {
		src  string
		want value.Value
	}{
		{"null", value.Null{}},
		{"true", value.Bool(true)},
		{"false", value.Bool(false)},
		{"0", value.Num(0)},
		{"-0", value.Num(0)},
		{"42", value.Num(42)},
		{"-17", value.Num(-17)},
		{"3.25", value.Num(3.25)},
		{"-0.5", value.Num(-0.5)},
		{"1e3", value.Num(1000)},
		{"1E3", value.Num(1000)},
		{"2.5e-2", value.Num(0.025)},
		{"1e+2", value.Num(100)},
		{`""`, value.Str("")},
		{`"hello"`, value.Str("hello")},
		{`"héllo"`, value.Str("héllo")},
		{`"a\"b"`, value.Str(`a"b`)},
		{`"\\\/\b\f\n\r\t"`, value.Str("\\/\b\f\n\r\t")},
		{`"A"`, value.Str("A")},
		{`"é"`, value.Str("é")},
		{`"😀"`, value.Str("😀")},        // surrogate pair
		{`"\uD800x"`, value.Str("�x")}, // lone high surrogate
		{"  42  ", value.Num(42)},
		{"\n\t17", value.Num(17)},
	}
	for _, c := range cases {
		got := mustParse(t, c.src)
		if !value.Equal(got, c.want) {
			t.Errorf("ParseBytes(%q) = %s, want %s", c.src, value.JSON(got), value.JSON(c.want))
		}
	}
}

func TestParseComposites(t *testing.T) {
	cases := []struct {
		src  string
		want value.Value
	}{
		{"[]", value.Array{}},
		{"{}", value.MustRecord()},
		{"[1,2,3]", value.Arr(value.Num(1), value.Num(2), value.Num(3))},
		{"[1, [2, [3]]]", value.Arr(value.Num(1), value.Arr(value.Num(2), value.Arr(value.Num(3))))},
		{`{"a":1}`, value.Obj("a", value.Num(1))},
		{`{"a":1,"b":[true,null]}`, value.Obj("a", value.Num(1), "b", value.Arr(value.Bool(true), value.Null{}))},
		{`{"nested":{"x":{"y":"z"}}}`, value.Obj("nested", value.Obj("x", value.Obj("y", value.Str("z"))))},
		{`[{},{"a":[]}]`, value.Arr(value.MustRecord(), value.Obj("a", value.Array{}))},
		{` { "a" : [ 1 , 2 ] } `, value.Obj("a", value.Arr(value.Num(1), value.Num(2)))},
	}
	for _, c := range cases {
		got := mustParse(t, c.src)
		if !value.Equal(got, c.want) {
			t.Errorf("ParseBytes(%q) = %s, want %s", c.src, value.JSON(got), value.JSON(c.want))
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"nul",
		"truex", // trailing junk inside literal? 'true' then 'x' -> trailing data
		"tru",
		"falsy",
		"-",
		"01", // leading zero
		"1.", // missing fraction digits
		"1e", // missing exponent digits
		"1e+",
		".5",
		"+1",
		`"unterminated`,
		`"bad \q escape"`,
		`"\u12"`,
		`"\ux000"`,
		"\"ctrl\x01char\"",
		"[1,2",
		"[1 2]",
		"[1,]",
		"[,1]",
		"{",
		`{"a"}`,
		`{"a":}`,
		`{"a":1,}`,
		`{"a":1 "b":2}`,
		`{a:1}`,
		`{"a":1,"a":2}`, // duplicate key: ill-formed per the paper
		"}",
		"]",
		",",
		":",
		"[}",
		"1 2 3 oops",
	}
	for _, src := range bad {
		if v, err := ParseBytes([]byte(src)); err == nil {
			t.Errorf("ParseBytes(%q) succeeded with %s, want error", src, value.JSON(v))
		}
	}
}

func TestSyntaxErrorHasOffset(t *testing.T) {
	_, err := ParseBytes([]byte(`{"a": bogus}`))
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *SyntaxError", err)
	}
	if se.Offset != 6 {
		t.Errorf("offset = %d, want 6", se.Offset)
	}
	if !strings.Contains(se.Error(), "offset 6") {
		t.Errorf("message %q lacks offset", se.Error())
	}
}

func TestDuplicateKeyErrorNamesKey(t *testing.T) {
	_, err := ParseBytes([]byte(`{"dup":1,"dup":2}`))
	if err == nil || !strings.Contains(err.Error(), `"dup"`) {
		t.Errorf("duplicate key error = %v", err)
	}
}

func TestMaxDepth(t *testing.T) {
	deep := strings.Repeat("[", 100) + strings.Repeat("]", 100)
	p := NewParser(strings.NewReader(deep), Options{MaxDepth: 10})
	if _, err := p.Next(); err == nil {
		t.Error("depth 100 accepted with MaxDepth 10")
	}
	p = NewParser(strings.NewReader(deep), Options{MaxDepth: 200})
	if _, err := p.Next(); err != nil {
		t.Errorf("depth 100 rejected with MaxDepth 200: %v", err)
	}
	// Default guards against pathological nesting.
	bomb := strings.Repeat("[", 10000) + strings.Repeat("]", 10000)
	if _, err := ParseBytes([]byte(bomb)); err == nil {
		t.Error("10000-deep nesting accepted with default MaxDepth")
	}
}

func TestStreamMultipleValues(t *testing.T) {
	src := "{\"a\":1}\n{\"a\":2}\n[3]\n\"four\"\ntrue\n"
	p := NewParser(strings.NewReader(src), Options{})
	var got []value.Value
	for {
		v, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	if len(got) != 5 {
		t.Fatalf("parsed %d values, want 5", len(got))
	}
	if !value.Equal(got[2], value.Arr(value.Num(3))) {
		t.Errorf("third value = %s", value.JSON(got[2]))
	}
}

func TestStreamConcatenatedWithoutNewlines(t *testing.T) {
	src := `{"a":1} {"b":2}{"c":3}`
	vs, err := ParseAll([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("parsed %d values, want 3", len(vs))
	}
}

func TestStreamErrorMidway(t *testing.T) {
	src := "{\"a\":1}\n{\"bad\n"
	p := NewParser(strings.NewReader(src), Options{})
	if _, err := p.Next(); err != nil {
		t.Fatalf("first value: %v", err)
	}
	if _, err := p.Next(); err == nil || err == io.EOF {
		t.Errorf("second value error = %v, want syntax error", err)
	}
}

func TestScanValuesPropagatesCallbackError(t *testing.T) {
	sentinel := errors.New("stop")
	err := ScanValues(strings.NewReader("1 2 3"), Options{}, func(v value.Value) error {
		if value.Equal(v, value.Num(2)) {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestParseAgainstEncodingJSONOracle(t *testing.T) {
	srcs := []string{
		`{"menu":{"id":"file","value":"File","popup":{"menuitem":[{"value":"New","onclick":"CreateNewDoc()"},{"value":"Open","onclick":"OpenDoc()"}]}}}`,
		`[1.5,-2e10,0.0001,true,false,null,"ünï©ödé ☃"]`,
		`{"empty_obj":{},"empty_arr":[],"nested":[[[[1]]]]}`,
		`"😀 and text"`,
		`-123.456e-7`,
	}
	for _, src := range srcs {
		v, err := ParseBytes([]byte(src))
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", src, err)
			continue
		}
		var oracle any
		if err := json.Unmarshal([]byte(src), &oracle); err != nil {
			t.Fatalf("oracle rejects %q: %v", src, err)
		}
		if got := value.ToGo(v); !reflect.DeepEqual(got, oracle) {
			t.Errorf("ParseBytes(%q):\n got %#v\nwant %#v", src, got, oracle)
		}
	}
}

func TestPropertyRoundTripThroughCanonicalJSON(t *testing.T) {
	// Render random values with value.JSON and parse them back.
	f := func(seed uint64) bool {
		r := seed | 1
		next := func(n int) int {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			return int(r % uint64(n))
		}
		var gen func(depth int) value.Value
		gen = func(depth int) value.Value {
			max := 6
			if depth <= 0 {
				max = 4
			}
			switch next(max) {
			case 0:
				return value.Null{}
			case 1:
				return value.Bool(next(2) == 0)
			case 2:
				return value.Num(float64(next(10000)) / 16)
			case 3:
				runes := []rune("ab\"\\\n\té😀")
				var sb strings.Builder
				for i := 0; i < next(6); i++ {
					sb.WriteRune(runes[next(len(runes))])
				}
				return value.Str(sb.String())
			case 4:
				var fs []value.Field
				seen := map[string]bool{}
				for i := 0; i < next(4); i++ {
					k := fmt.Sprintf("k%d", next(8))
					if seen[k] {
						continue
					}
					seen[k] = true
					fs = append(fs, value.Field{Key: k, Value: gen(depth - 1)})
				}
				return value.MustRecord(fs...)
			default:
				var elems value.Array
				for i := 0; i < next(4); i++ {
					elems = append(elems, gen(depth-1))
				}
				if elems == nil {
					elems = value.Array{}
				}
				return elems
			}
		}
		v := gen(3)
		back, err := ParseBytes([]byte(value.JSON(v)))
		if err != nil {
			t.Logf("parse %q: %v", value.JSON(v), err)
			return false
		}
		return value.Equal(v, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestParseNumbersMatchStrconv(t *testing.T) {
	srcs := []string{"0", "-0", "1", "9007199254740993", "1.7976931348623157e308", "5e-324", "123456.789012"}
	for _, src := range srcs {
		v := mustParse(t, src)
		want, _ := json.Number(src).Float64()
		if float64(v.(value.Num)) != want {
			t.Errorf("ParseBytes(%q) = %v, want %v", src, v, want)
		}
	}
	// Overflow to +Inf is rejected by ParseFloat? It returns +Inf with err; we reject.
	if _, err := ParseBytes([]byte("1e999999")); err == nil {
		// encoding/json accepts and clamps; we are stricter. Either way,
		// don't produce non-finite numbers.
		v := mustParse(t, "1e999999")
		if math.IsInf(float64(v.(value.Num)), 0) {
			t.Error("parser produced a non-finite number")
		}
	}
}

func TestSplitLines(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, `{"i":%d}`+"\n", i)
	}
	data := []byte(sb.String())
	for _, n := range []int{1, 2, 3, 7, 100} {
		chunks := SplitLines(data, n)
		if len(chunks) == 0 || len(chunks) > n {
			t.Fatalf("SplitLines(n=%d) returned %d chunks", n, len(chunks))
		}
		// Reassembly must be exact.
		var total []byte
		count := 0
		for _, c := range chunks {
			total = append(total, c...)
			vs, err := ParseAll(c)
			if err != nil {
				t.Fatalf("chunk unparseable: %v", err)
			}
			count += len(vs)
		}
		if string(total) != sb.String() {
			t.Fatalf("SplitLines(n=%d) loses bytes", n)
		}
		if count != 100 {
			t.Fatalf("SplitLines(n=%d) yields %d values, want 100", n, count)
		}
	}
	if got := SplitLines(nil, 4); got != nil {
		t.Errorf("SplitLines(nil) = %v", got)
	}
}

// TestSplitLinesMultiLineValues pins the value-safe splitting rule: a
// newline inside a bracketed value or a string literal is not a chunk
// boundary, so pretty-printed JSON survives partitioning. Regression
// for a fuzzer-found input ("[\n]false") whose mid-value newline the
// old splitter cut on, making the parallel pipeline reject input the
// sequential path accepted.
func TestSplitLinesMultiLineValues(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "{\n  \"i\": %d,\n  \"s\": \"br [ ace \\\" in string\"\n}\n", i)
	}
	sb.WriteString("[\n]false\n")
	data := []byte(sb.String())
	for _, n := range []int{2, 7, 64} {
		count := 0
		for _, c := range SplitLines(data, n) {
			vs, err := ParseAll(c)
			if err != nil {
				t.Fatalf("SplitLines(n=%d) cut inside a value: %v", n, err)
			}
			count += len(vs)
		}
		if count != 52 {
			t.Fatalf("SplitLines(n=%d) yields %d values, want 52", n, count)
		}
	}
}

func TestCountLines(t *testing.T) {
	if got := CountLines([]byte("{\"a\":1}\n\n{\"b\":2}\n  \n{\"c\":3}")); got != 3 {
		t.Errorf("CountLines = %d, want 3", got)
	}
	if got := CountLines(nil); got != 0 {
		t.Errorf("CountLines(nil) = %d", got)
	}
}

func TestLexerTokens(t *testing.T) {
	lex := NewLexer(strings.NewReader(`{"a": [1, true]}`))
	var kinds []TokenKind
	for {
		tok, err := lex.Next()
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, tok.Kind)
		if tok.Kind == TokEOF {
			break
		}
	}
	want := []TokenKind{TokBeginObject, TokStr, TokColon, TokBeginArray, TokNum, TokComma, TokTrue, TokEndArray, TokEndObject, TokEOF}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
}

func TestTokenKindString(t *testing.T) {
	for k := TokEOF; k <= TokColon; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "TokenKind(") {
			t.Errorf("TokenKind(%d).String() = %q", k, s)
		}
	}
	if s := TokenKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind = %q", s)
	}
}

func TestLexerOffsets(t *testing.T) {
	lex := NewLexer(strings.NewReader(`  {"ab": 12}`))
	offsets := []int64{2, 3, 7, 9, 11}
	for i := 0; ; i++ {
		tok, err := lex.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
		if i < len(offsets) && tok.Offset != offsets[i] {
			t.Errorf("token %d offset = %d, want %d", i, tok.Offset, offsets[i])
		}
	}
}
