package jsontext

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/value"
)

// FuzzParseAgainstEncodingJSON cross-checks the hand-rolled parser
// against the standard library on arbitrary byte inputs:
//
//   - whatever encoding/json rejects outright as a prefix value we may
//     accept or reject (we are stricter about duplicate keys and control
//     characters), but we must never crash;
//   - whatever both accept must decode to the same Go shape.
//
// Run with `go test -fuzz FuzzParseAgainstEncodingJSON ./internal/jsontext`
// for continuous fuzzing; under plain `go test` the seed corpus runs as
// a regression suite.
func FuzzParseAgainstEncodingJSON(f *testing.F) {
	seeds := []string{
		`null`, `true`, `false`, `0`, `-12.5e3`, `"str"`, `""`,
		`[]`, `{}`, `[1,2,3]`, `{"a":{"b":[null,true]}}`,
		`{"a":1,"b":2}`, `"é😀"`, `"\\"`,
		`[[[[[]]]]]`, `{"":""}`, ` 7 `, "{\"a\"\n:\t1}",
		`{"a":1,"a":2}`, `[1,]`, `{`, `1e999`, `"\ud800"`, "\x00",
		`0.1e+5`, `-0`, `[{"x":[]},"mixed",3]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, ourErr := ParseBytes(data)
		var oracle any
		stdErr := json.Unmarshal(data, &oracle)
		if ourErr == nil {
			// We accepted: the standard library must agree on the shape
			// (it accepts everything we do — our extra strictness only
			// REJECTS more).
			if stdErr != nil {
				t.Fatalf("we accepted %q (%s) but encoding/json rejects it: %v", data, value.JSON(v), stdErr)
			}
			if got := value.ToGo(v); !reflect.DeepEqual(got, oracle) {
				t.Fatalf("shape mismatch for %q:\n ours  %#v\n oracle %#v", data, got, oracle)
			}
			// Canonical rendering must re-parse to an equal value.
			back, err := ParseBytes([]byte(value.JSON(v)))
			if err != nil || !value.Equal(v, back) {
				t.Fatalf("canonical render of %q does not round trip: %v", data, err)
			}
		}
	})
}

// FuzzLexerNeverHangs feeds arbitrary bytes to the raw lexer and checks
// it always terminates with a token or an error.
func FuzzLexerNeverHangs(f *testing.F) {
	f.Add([]byte(`{"a": [1, true, "x"]}`))
	f.Add([]byte("\\\\\\"))
	f.Add([]byte(`"unterminated`))
	f.Fuzz(func(t *testing.T, data []byte) {
		lex := NewLexer(bytes.NewReader(data))
		for i := 0; i < len(data)+2; i++ {
			tok, err := lex.Next()
			if err != nil {
				return
			}
			if tok.Kind == TokEOF {
				return
			}
		}
		t.Fatalf("lexer produced more tokens than input bytes for %q", data)
	})
}
