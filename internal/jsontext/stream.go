package jsontext

import (
	"bufio"
	"bytes"
	"io"
	"sync"

	"repro/internal/value"
)

// ScanValues parses every top-level JSON value in r and calls fn for
// each. It stops and returns the first error from parsing or from fn.
func ScanValues(r io.Reader, opts Options, fn func(value.Value) error) error {
	p := NewParser(r, opts)
	for {
		v, err := p.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(v); err != nil {
			return err
		}
	}
}

// ParseAll parses every top-level JSON value in data.
func ParseAll(data []byte) ([]value.Value, error) {
	var vs []value.Value
	err := ScanValues(bytes.NewReader(data), Options{}, func(v value.Value) error {
		vs = append(vs, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return vs, nil
}

// SplitLines splits an NDJSON byte buffer into at most n chunks of
// roughly equal byte size, cutting only at value-safe line boundaries
// so each chunk holds whole JSON values. A newline is value-safe when
// it lies outside every string literal and at bracket depth zero —
// pretty-printed values spanning several lines stay in one chunk, so
// splitting is invisible to the parser (the end-to-end fuzz oracle at
// the repository root checks exactly this). Fewer than n chunks are
// returned when the data has fewer safe boundaries. This is the
// partitioning step of the map phase: chunks can be parsed
// independently and in parallel.
func SplitLines(data []byte, n int) [][]byte {
	if n <= 1 || len(data) == 0 {
		if len(data) == 0 {
			return nil
		}
		return [][]byte{data}
	}
	var chunks [][]byte
	target := len(data)/n + 1
	start := 0
	// One linear scan tracks just enough lexical state (string
	// literals with escapes, bracket depth) to recognize safe
	// newlines; on malformed input the state degrades toward "never
	// split", which keeps acceptance identical to a sequential parse.
	depth := 0
	inStr, esc := false, false
	for i := 0; i < len(data) && len(chunks) < n-1; i++ {
		c := data[i]
		if inStr {
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '[', '{':
			depth++
		case ']', '}':
			if depth > 0 {
				depth--
			}
		case '\n':
			if depth == 0 && i+1-start >= target && i+1 < len(data) {
				chunks = append(chunks, data[start:i+1])
				start = i + 1
			}
		}
	}
	if start < len(data) {
		chunks = append(chunks, data[start:])
	}
	return chunks
}

// A ChunkPool recycles chunk buffers between a feed and the release
// hook of the pipeline that consumed them, so a long streaming run
// allocates a handful of chunk-sized buffers total instead of one per
// chunk. The zero value is ready to use; a nil *ChunkPool degrades to
// plain allocation (Get allocates fresh, Put drops), so pooled code
// paths need no nil branches. Buffers must only be Put back once their
// consumer is finished with them — with the map-reduce engine that is
// its Release hook, which fires after a chunk's final retry attempt.
type ChunkPool struct{ pool sync.Pool }

// Get returns an empty buffer with at least capHint capacity.
func (p *ChunkPool) Get(capHint int) []byte {
	if p != nil {
		if v := p.pool.Get(); v != nil {
			if b := *(v.(*[]byte)); cap(b) >= capHint {
				return b[:0]
			}
			// Undersized (the pool outlived a chunkBytes change): drop it
			// and let the allocator supply the right size.
		}
	}
	return make([]byte, 0, capHint)
}

// Put returns a buffer to the pool for a later Get. The caller must
// not touch b afterwards.
func (p *ChunkPool) Put(b []byte) {
	if p == nil || cap(b) == 0 {
		return
	}
	b = b[:0]
	p.pool.Put(&b)
}

// ChunkLines reads NDJSON from r and calls emit with line-aligned chunks
// of roughly chunkBytes bytes (the final chunk may be smaller, and a
// single line longer than chunkBytes becomes its own chunk). Each chunk
// is a fresh allocation that emit may retain. This is the streaming
// partitioner for inputs too large to hold in memory: chunks flow to
// parallel workers while the file is still being read.
func ChunkLines(r io.Reader, chunkBytes int, emit func([]byte) error) error {
	return ChunkLinesPooled(r, chunkBytes, nil, emit)
}

// ChunkLinesPooled is ChunkLines drawing chunk buffers from pool: each
// emitted chunk is handed to emit without copying, and ownership
// transfers with it — the consumer returns the buffer with pool.Put
// when (and only when) it is done, typically through the pipeline's
// release hook so retried map attempts never see a recycled buffer.
// With a nil pool every chunk is simply a fresh allocation.
func ChunkLinesPooled(r io.Reader, chunkBytes int, pool *ChunkPool, emit func([]byte) error) error {
	if chunkBytes <= 0 {
		chunkBytes = 4 << 20
	}
	br := bufio.NewReaderSize(r, 256<<10)
	buf := pool.Get(chunkBytes + 4096)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		chunk := buf
		buf = pool.Get(chunkBytes + 4096)
		return emit(chunk)
	}
	for {
		line, err := br.ReadBytes('\n')
		buf = append(buf, line...)
		if len(buf) >= chunkBytes {
			if ferr := flush(); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			if ferr := flush(); ferr != nil {
				return ferr
			}
			pool.Put(buf) // the spare buffer flush pre-fetched
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// CountLines reports the number of non-empty lines in an NDJSON buffer,
// i.e. the number of records without parsing them.
func CountLines(data []byte) int {
	n := 0
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		var line []byte
		if i < 0 {
			line, data = data, nil
		} else {
			line, data = data[:i], data[i+1:]
		}
		if len(bytes.TrimSpace(line)) > 0 {
			n++
		}
	}
	return n
}
