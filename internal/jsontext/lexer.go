// Package jsontext implements a streaming JSON lexer and parser for the
// inference pipeline: it turns byte streams into the value model of
// internal/value, and exposes the raw token stream so that type inference
// can run directly over tokens without materializing values (the role
// Json4s plays in the paper's Scala implementation).
//
// The grammar implemented is RFC 8259 JSON. Duplicate object keys are
// rejected by the parser (well-formedness per Section 4 of the paper);
// the lexer itself is key-agnostic.
package jsontext

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"
)

// TokenKind identifies a lexical token.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokNull
	TokTrue
	TokFalse
	TokNum
	TokStr
	TokBeginObject // {
	TokEndObject   // }
	TokBeginArray  // [
	TokEndArray    // ]
	TokComma       // ,
	TokColon       // :
)

// String names the token kind for error messages.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokNull:
		return "null"
	case TokTrue:
		return "true"
	case TokFalse:
		return "false"
	case TokNum:
		return "number"
	case TokStr:
		return "string"
	case TokBeginObject:
		return "'{'"
	case TokEndObject:
		return "'}'"
	case TokBeginArray:
		return "'['"
	case TokEndArray:
		return "']'"
	case TokComma:
		return "','"
	case TokColon:
		return "':'"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is a lexical token. Str carries the decoded string for TokStr and
// Num the parsed value for TokNum. Offset is the byte offset of the
// token's first byte in the input.
type Token struct {
	Kind   TokenKind
	Str    string
	Num    float64
	Offset int64
}

// SyntaxError reports malformed JSON with the byte offset of the problem.
type SyntaxError struct {
	Offset int64
	Msg    string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("jsontext: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Lexer reads JSON tokens from an io.Reader.
type Lexer struct {
	r      *bufio.Reader
	offset int64
	// strBuf is reused across string tokens to avoid per-token
	// allocations when strings contain escapes.
	strBuf []byte
	// strCache interns short string tokens: NDJSON repeats the same few
	// record keys (and enum-like values) on every line, so after the
	// first occurrence a repeated string costs zero allocations — the
	// map lookup keyed by string(buf) does not copy. The cache stops
	// growing at maxCachedStrs and survives Reset, so pooled lexers
	// share hot keys across the chunks of a whole run.
	strCache map[string]string
}

// String-cache bounds: values longer than maxCachedStrLen are almost
// certainly payload (tweet texts, URLs), not keys, and a full cache
// keeps serving its existing entries without admitting new ones.
const (
	maxCachedStrLen = 64
	maxCachedStrs   = 4096
)

// NewLexer returns a lexer reading from r.
func NewLexer(r io.Reader) *Lexer {
	return &Lexer{r: bufio.NewReaderSize(r, 64<<10)}
}

// lexerPool recycles lexers — each carries a 64 KiB bufio buffer, the
// string scratch and the string cache, which is exactly the per-chunk
// state worth keeping warm across map tasks.
var lexerPool = sync.Pool{
	New: func() any { return &Lexer{r: bufio.NewReaderSize(nil, 64<<10)} },
}

// AcquireLexer returns a pooled lexer reading from r. Release it when
// the stream is fully consumed; an un-released lexer is simply garbage
// collected.
func AcquireLexer(r io.Reader) *Lexer {
	l := lexerPool.Get().(*Lexer)
	l.Reset(r)
	return l
}

// Release returns the lexer to the pool. The caller must not use the
// lexer afterwards.
func (l *Lexer) Release() {
	// Drop the stream reference so the pool does not pin it.
	l.r.Reset(nil)
	lexerPool.Put(l)
}

// Reset redirects the lexer to a new stream, keeping the buffer, the
// scratch and the string cache.
func (l *Lexer) Reset(r io.Reader) {
	l.r.Reset(r)
	l.offset = 0
}

// Offset returns the number of bytes consumed so far.
func (l *Lexer) Offset() int64 { return l.offset }

func (l *Lexer) errorf(off int64, format string, args ...any) error {
	return &SyntaxError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) readByte() (byte, error) {
	b, err := l.r.ReadByte()
	if err == nil {
		l.offset++
	}
	return b, err
}

func (l *Lexer) unreadByte() {
	// ReadByte was the last operation, so UnreadByte cannot fail.
	_ = l.r.UnreadByte()
	l.offset--
}

// skipSpace consumes insignificant whitespace and reports io.EOF at the
// end of input.
func (l *Lexer) skipSpace() error {
	for {
		b, err := l.readByte()
		if err != nil {
			return err
		}
		switch b {
		case ' ', '\t', '\n', '\r':
		default:
			l.unreadByte()
			return nil
		}
	}
}

// Next returns the next token. At the end of the input it returns a token
// with Kind TokEOF and a nil error; any other error is either an
// unexpected io error or a *SyntaxError.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		if err == io.EOF {
			return Token{Kind: TokEOF, Offset: l.offset}, nil
		}
		return Token{}, err
	}
	start := l.offset
	b, err := l.readByte()
	if err != nil {
		return Token{}, err
	}
	switch b {
	case '{':
		return Token{Kind: TokBeginObject, Offset: start}, nil
	case '}':
		return Token{Kind: TokEndObject, Offset: start}, nil
	case '[':
		return Token{Kind: TokBeginArray, Offset: start}, nil
	case ']':
		return Token{Kind: TokEndArray, Offset: start}, nil
	case ',':
		return Token{Kind: TokComma, Offset: start}, nil
	case ':':
		return Token{Kind: TokColon, Offset: start}, nil
	case '"':
		s, err := l.scanString(start)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: TokStr, Str: s, Offset: start}, nil
	case 't':
		if err := l.expectWord(start, "rue"); err != nil {
			return Token{}, err
		}
		return Token{Kind: TokTrue, Offset: start}, nil
	case 'f':
		if err := l.expectWord(start, "alse"); err != nil {
			return Token{}, err
		}
		return Token{Kind: TokFalse, Offset: start}, nil
	case 'n':
		if err := l.expectWord(start, "ull"); err != nil {
			return Token{}, err
		}
		return Token{Kind: TokNull, Offset: start}, nil
	default:
		if b == '-' || (b >= '0' && b <= '9') {
			n, err := l.scanNumber(start, b)
			if err != nil {
				return Token{}, err
			}
			return Token{Kind: TokNum, Num: n, Offset: start}, nil
		}
		return Token{}, l.errorf(start, "unexpected character %q", string(rune(b)))
	}
}

// expectWord consumes the remainder of a keyword (true/false/null).
func (l *Lexer) expectWord(start int64, rest string) error {
	for i := 0; i < len(rest); i++ {
		b, err := l.readByte()
		if err != nil || b != rest[i] {
			return l.errorf(start, "invalid literal")
		}
	}
	return nil
}

// scanString reads the body of a string; the opening quote has been
// consumed. It decodes escapes including \uXXXX surrogate pairs.
func (l *Lexer) scanString(start int64) (string, error) {
	buf := l.strBuf[:0]
	for {
		b, err := l.readByte()
		if err != nil {
			return "", l.errorf(start, "unterminated string")
		}
		switch {
		case b == '"':
			if !utf8.Valid(buf) {
				// RFC 8259 strings are UTF-8; like encoding/json we
				// replace invalid sequences with U+FFFD instead of
				// propagating raw bytes.
				clean := make([]byte, 0, len(buf)+utf8.UTFMax)
				for _, r := range string(buf) {
					clean = utf8.AppendRune(clean, r)
				}
				buf = clean
			}
			l.strBuf = buf
			return l.internString(buf), nil
		case b == '\\':
			esc, err := l.readByte()
			if err != nil {
				return "", l.errorf(start, "unterminated escape")
			}
			switch esc {
			case '"':
				buf = append(buf, '"')
			case '\\':
				buf = append(buf, '\\')
			case '/':
				buf = append(buf, '/')
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				r, err := l.scanHex4(start)
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					r2, ok, err := l.maybeLowSurrogate(start)
					if err != nil {
						return "", err
					}
					if ok {
						r = utf16.DecodeRune(r, r2)
					} else {
						r = utf8.RuneError
					}
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return "", l.errorf(l.offset-1, "invalid escape character %q", string(rune(esc)))
			}
		case b < 0x20:
			return "", l.errorf(l.offset-1, "control character %#x in string", b)
		default:
			buf = append(buf, b)
		}
	}
}

// internString materializes a string token, serving repeats of short
// strings from the cache. The map lookup keyed by string(buf) compiles
// to a no-copy probe, so a cache hit allocates nothing.
func (l *Lexer) internString(buf []byte) string {
	if len(buf) > maxCachedStrLen {
		return string(buf)
	}
	if s, ok := l.strCache[string(buf)]; ok {
		return s
	}
	s := string(buf)
	if l.strCache == nil {
		l.strCache = make(map[string]string, 64)
	}
	if len(l.strCache) < maxCachedStrs {
		l.strCache[s] = s
	}
	return s
}

// scanHex4 reads four hex digits of a \u escape.
func (l *Lexer) scanHex4(start int64) (rune, error) {
	var r rune
	for i := 0; i < 4; i++ {
		b, err := l.readByte()
		if err != nil {
			return 0, l.errorf(start, "short \\u escape")
		}
		var d rune
		switch {
		case b >= '0' && b <= '9':
			d = rune(b - '0')
		case b >= 'a' && b <= 'f':
			d = rune(b-'a') + 10
		case b >= 'A' && b <= 'F':
			d = rune(b-'A') + 10
		default:
			return 0, l.errorf(l.offset-1, "invalid hex digit %q in \\u escape", string(rune(b)))
		}
		r = r<<4 | d
	}
	return r, nil
}

// maybeLowSurrogate tries to read a \uXXXX low surrogate following a high
// surrogate. It reports whether it consumed one.
func (l *Lexer) maybeLowSurrogate(start int64) (rune, bool, error) {
	b1, err := l.readByte()
	if err != nil {
		return 0, false, nil
	}
	if b1 != '\\' {
		l.unreadByte()
		return 0, false, nil
	}
	b2, err := l.readByte()
	if err != nil {
		return 0, false, l.errorf(start, "unterminated escape")
	}
	if b2 != 'u' {
		// Not a \u escape: un-consume is impossible for two bytes with
		// bufio, so treat as an error; encoding/json behaves the same
		// way for a lone high surrogate followed by another escape.
		return 0, false, l.errorf(l.offset-2, "expected low surrogate escape")
	}
	r, err := l.scanHex4(start)
	if err != nil {
		return 0, false, err
	}
	return r, true, nil
}

// scanNumber reads a JSON number whose first byte is first, validating
// the RFC 8259 grammar.
func (l *Lexer) scanNumber(start int64, first byte) (float64, error) {
	var raw []byte
	raw = append(raw, first)
	readDigits := func(minOne bool) error {
		n := 0
		for {
			b, err := l.readByte()
			if err != nil {
				break
			}
			if b < '0' || b > '9' {
				l.unreadByte()
				break
			}
			raw = append(raw, b)
			n++
		}
		if minOne && n == 0 {
			return l.errorf(start, "malformed number")
		}
		return nil
	}
	b := first
	if b == '-' {
		var err error
		b, err = l.readByte()
		if err != nil || b < '0' || b > '9' {
			return 0, l.errorf(start, "malformed number")
		}
		raw = append(raw, b)
	}
	// Integer part: a leading zero cannot be followed by more digits.
	if b != '0' {
		if err := readDigits(false); err != nil {
			return 0, err
		}
	} else {
		if nb, err := l.readByte(); err == nil {
			if nb >= '0' && nb <= '9' {
				return 0, l.errorf(start, "leading zero in number")
			}
			l.unreadByte()
		}
	}
	// Fraction.
	if nb, err := l.readByte(); err == nil {
		if nb == '.' {
			raw = append(raw, nb)
			if err := readDigits(true); err != nil {
				return 0, err
			}
		} else {
			l.unreadByte()
		}
	}
	// Exponent.
	if nb, err := l.readByte(); err == nil {
		if nb == 'e' || nb == 'E' {
			raw = append(raw, nb)
			sb, err := l.readByte()
			if err != nil {
				return 0, l.errorf(start, "malformed exponent")
			}
			if sb == '+' || sb == '-' {
				raw = append(raw, sb)
			} else {
				l.unreadByte()
			}
			if err := readDigits(true); err != nil {
				return 0, err
			}
		} else {
			l.unreadByte()
		}
	}
	f, err := strconv.ParseFloat(string(raw), 64)
	if err != nil {
		return 0, l.errorf(start, "malformed number %q", raw)
	}
	return f, nil
}
