// Package jsontext implements a streaming JSON lexer and parser for the
// inference pipeline: it turns byte streams into the value model of
// internal/value, and exposes the raw token stream so that type inference
// can run directly over tokens without materializing values (the role
// Json4s plays in the paper's Scala implementation).
//
// The grammar implemented is RFC 8259 JSON. Duplicate object keys are
// rejected by the parser (well-formedness per Section 4 of the paper);
// the lexer itself is key-agnostic.
package jsontext

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"
)

// TokenKind identifies a lexical token.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokNull
	TokTrue
	TokFalse
	TokNum
	TokStr
	TokBeginObject // {
	TokEndObject   // }
	TokBeginArray  // [
	TokEndArray    // ]
	TokComma       // ,
	TokColon       // :
)

// String names the token kind for error messages.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokNull:
		return "null"
	case TokTrue:
		return "true"
	case TokFalse:
		return "false"
	case TokNum:
		return "number"
	case TokStr:
		return "string"
	case TokBeginObject:
		return "'{'"
	case TokEndObject:
		return "'}'"
	case TokBeginArray:
		return "'['"
	case TokEndArray:
		return "']'"
	case TokComma:
		return "','"
	case TokColon:
		return "':'"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is a lexical token. Str carries the decoded string for TokStr and
// Num the parsed value for TokNum. Offset is the byte offset of the
// token's first byte in the input.
//
// In raw-string mode (see RawStrings) TokStr tokens carry the decoded
// bytes in Bytes and leave Str empty: Bytes is a view into the lexer's
// input or scratch buffer, valid only until the next string token is
// scanned. Callers that need the string to outlive the token
// materialize it with InternBytes; callers that only classify the token
// (type inference over values) never pay for a string at all.
type Token struct {
	Kind   TokenKind
	Str    string
	Bytes  []byte
	Num    float64
	Offset int64
}

// SyntaxError reports malformed JSON with the byte offset of the problem.
type SyntaxError struct {
	Offset int64
	Msg    string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("jsontext: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Lexer reads JSON tokens from an io.Reader, or — in direct mode (see
// ResetBytes) — straight out of a byte slice with no intermediate
// buffering or copying.
type Lexer struct {
	r      *bufio.Reader
	offset int64
	// data/pos implement direct mode: when direct is true the lexer
	// reads data[pos:] instead of r, so chunk-shaped inputs skip the
	// bufio copy entirely and escape-free strings are returned as views
	// into data.
	data   []byte
	pos    int
	direct bool
	// raw enables raw-string mode: TokStr tokens carry Bytes instead of
	// a materialized Str (see Token and RawStrings).
	raw bool
	// strBuf is reused across string tokens to avoid per-token
	// allocations when strings contain escapes.
	strBuf []byte
	// numBuf is reused across number tokens for the ParseFloat slow
	// path.
	numBuf []byte
	// strCache interns short string tokens: NDJSON repeats the same few
	// record keys (and enum-like values) on every line, so after the
	// first occurrence a repeated string costs zero allocations — the
	// map lookup keyed by string(buf) does not copy. The cache stops
	// growing at maxCachedStrs and survives Reset, so pooled lexers
	// share hot keys across the chunks of a whole run.
	strCache map[string]string
}

// String-cache bounds: values longer than maxCachedStrLen are almost
// certainly payload (tweet texts, URLs), not keys, and a full cache
// keeps serving its existing entries without admitting new ones.
const (
	maxCachedStrLen = 64
	maxCachedStrs   = 4096
)

// NewLexer returns a lexer reading from r.
func NewLexer(r io.Reader) *Lexer {
	return &Lexer{r: bufio.NewReaderSize(r, 64<<10)}
}

// lexerPool recycles lexers — each carries a 64 KiB bufio buffer, the
// string scratch and the string cache, which is exactly the per-chunk
// state worth keeping warm across map tasks.
var lexerPool = sync.Pool{
	New: func() any { return &Lexer{r: bufio.NewReaderSize(nil, 64<<10)} },
}

// AcquireLexer returns a pooled lexer reading from r. Release it when
// the stream is fully consumed; an un-released lexer is simply garbage
// collected.
func AcquireLexer(r io.Reader) *Lexer {
	l := lexerPool.Get().(*Lexer)
	l.Reset(r)
	return l
}

// AcquireLexerBytes returns a pooled lexer in direct mode over data.
// Release it when the input is fully consumed.
func AcquireLexerBytes(data []byte) *Lexer {
	l := lexerPool.Get().(*Lexer)
	l.ResetBytes(data)
	return l
}

// Release returns the lexer to the pool. The caller must not use the
// lexer afterwards.
func (l *Lexer) Release() {
	// Drop the stream and input references so the pool does not pin
	// them; raw mode is per-stream, not per-lexer.
	l.r.Reset(nil)
	l.data = nil
	l.direct = false
	l.raw = false
	lexerPool.Put(l)
}

// Reset redirects the lexer to a new stream, keeping the buffer, the
// scratch and the string cache.
func (l *Lexer) Reset(r io.Reader) {
	l.r.Reset(r)
	l.data = nil
	l.pos = 0
	l.direct = false
	l.offset = 0
}

// ResetBytes redirects the lexer to read directly from data, keeping
// the scratch and the string cache. Direct mode produces exactly the
// same tokens, errors and offsets as reading the equivalent stream, but
// skips the per-byte bufio indirection and returns escape-free strings
// as views into data.
func (l *Lexer) ResetBytes(data []byte) {
	l.r.Reset(nil)
	l.data = data
	l.pos = 0
	l.direct = true
	l.offset = 0
}

// RawStrings toggles raw-string mode for the current stream: when on,
// TokStr tokens carry Bytes (a transient view, see Token) instead of a
// materialized Str. The mode resets to off on Release.
func (l *Lexer) RawStrings(on bool) { l.raw = on }

// Offset returns the number of bytes consumed so far.
func (l *Lexer) Offset() int64 { return l.offset }

func (l *Lexer) errorf(off int64, format string, args ...any) error {
	return &SyntaxError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) readByte() (byte, error) {
	if l.direct {
		if l.pos >= len(l.data) {
			return 0, io.EOF
		}
		b := l.data[l.pos]
		l.pos++
		l.offset++
		return b, nil
	}
	b, err := l.r.ReadByte()
	if err == nil {
		l.offset++
	}
	return b, err
}

func (l *Lexer) unreadByte() {
	if l.direct {
		l.pos--
		l.offset--
		return
	}
	// ReadByte was the last operation, so UnreadByte cannot fail.
	_ = l.r.UnreadByte()
	l.offset--
}

// skipSpace consumes insignificant whitespace and reports io.EOF at the
// end of input.
func (l *Lexer) skipSpace() error {
	if l.direct {
		i, data := l.pos, l.data
		for i < len(data) && (data[i] == ' ' || data[i] == '\t' || data[i] == '\n' || data[i] == '\r') {
			i++
		}
		l.offset += int64(i - l.pos)
		l.pos = i
		if i >= len(data) {
			return io.EOF
		}
		return nil
	}
	for {
		b, err := l.readByte()
		if err != nil {
			return err
		}
		switch b {
		case ' ', '\t', '\n', '\r':
		default:
			l.unreadByte()
			return nil
		}
	}
}

// Next returns the next token. At the end of the input it returns a token
// with Kind TokEOF and a nil error; any other error is either an
// unexpected io error or a *SyntaxError.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		if err == io.EOF {
			return Token{Kind: TokEOF, Offset: l.offset}, nil
		}
		return Token{}, err
	}
	start := l.offset
	b, err := l.readByte()
	if err != nil {
		return Token{}, err
	}
	switch b {
	case '{':
		return Token{Kind: TokBeginObject, Offset: start}, nil
	case '}':
		return Token{Kind: TokEndObject, Offset: start}, nil
	case '[':
		return Token{Kind: TokBeginArray, Offset: start}, nil
	case ']':
		return Token{Kind: TokEndArray, Offset: start}, nil
	case ',':
		return Token{Kind: TokComma, Offset: start}, nil
	case ':':
		return Token{Kind: TokColon, Offset: start}, nil
	case '"':
		b, err := l.scanString(start)
		if err != nil {
			return Token{}, err
		}
		if l.raw {
			return Token{Kind: TokStr, Bytes: b, Offset: start}, nil
		}
		return Token{Kind: TokStr, Str: l.internString(b), Offset: start}, nil
	case 't':
		if err := l.expectWord(start, "rue"); err != nil {
			return Token{}, err
		}
		return Token{Kind: TokTrue, Offset: start}, nil
	case 'f':
		if err := l.expectWord(start, "alse"); err != nil {
			return Token{}, err
		}
		return Token{Kind: TokFalse, Offset: start}, nil
	case 'n':
		if err := l.expectWord(start, "ull"); err != nil {
			return Token{}, err
		}
		return Token{Kind: TokNull, Offset: start}, nil
	default:
		if b == '-' || (b >= '0' && b <= '9') {
			n, err := l.scanNumber(start, b)
			if err != nil {
				return Token{}, err
			}
			return Token{Kind: TokNum, Num: n, Offset: start}, nil
		}
		return Token{}, l.errorf(start, "unexpected character %q", string(rune(b)))
	}
}

// expectWord consumes the remainder of a keyword (true/false/null).
func (l *Lexer) expectWord(start int64, rest string) error {
	for i := 0; i < len(rest); i++ {
		b, err := l.readByte()
		if err != nil || b != rest[i] {
			return l.errorf(start, "invalid literal")
		}
	}
	return nil
}

// scanString reads the body of a string; the opening quote has been
// consumed. It decodes escapes including \uXXXX surrogate pairs and
// returns the decoded bytes, valid until the next string token: a view
// into the input for escape-free direct-mode strings, into the lexer's
// scratch otherwise.
func (l *Lexer) scanString(start int64) ([]byte, error) {
	buf := l.strBuf[:0]
	if l.direct {
		// Fast span: most strings contain no escapes, so the whole body
		// is sitting contiguously in the input and needs no copy at
		// all. Stop at the first byte the per-byte loop would treat
		// specially and fall through with the clean prefix copied.
		i, data := l.pos, l.data
		for i < len(data) && data[i] != '"' && data[i] != '\\' && data[i] >= 0x20 {
			i++
		}
		if i < len(data) && data[i] == '"' {
			seg := data[l.pos:i]
			l.offset += int64(i + 1 - l.pos)
			l.pos = i + 1
			if !utf8.Valid(seg) {
				seg = sanitizeUTF8(seg)
			}
			return seg, nil
		}
		buf = append(buf, data[l.pos:i]...)
		l.offset += int64(i - l.pos)
		l.pos = i
	}
	for {
		b, err := l.readByte()
		if err != nil {
			return nil, l.errorf(start, "unterminated string")
		}
		switch {
		case b == '"':
			if !utf8.Valid(buf) {
				// RFC 8259 strings are UTF-8; like encoding/json we
				// replace invalid sequences with U+FFFD instead of
				// propagating raw bytes.
				buf = sanitizeUTF8(buf)
			}
			l.strBuf = buf
			return buf, nil
		case b == '\\':
			esc, err := l.readByte()
			if err != nil {
				return nil, l.errorf(start, "unterminated escape")
			}
			switch esc {
			case '"':
				buf = append(buf, '"')
			case '\\':
				buf = append(buf, '\\')
			case '/':
				buf = append(buf, '/')
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				r, err := l.scanHex4(start)
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					r2, ok, err := l.maybeLowSurrogate(start)
					if err != nil {
						return nil, err
					}
					if ok {
						r = utf16.DecodeRune(r, r2)
					} else {
						r = utf8.RuneError
					}
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return nil, l.errorf(l.offset-1, "invalid escape character %q", string(rune(esc)))
			}
		case b < 0x20:
			return nil, l.errorf(l.offset-1, "control character %#x in string", b)
		default:
			buf = append(buf, b)
		}
	}
}

// sanitizeUTF8 replaces invalid UTF-8 sequences in seg with U+FFFD,
// decoding runes straight off the byte slice — no string conversion.
// The result is freshly allocated (invalid input is the rare case) so
// it never aliases the lexer's scratch or input.
func sanitizeUTF8(seg []byte) []byte {
	clean := make([]byte, 0, len(seg)+utf8.UTFMax)
	for i := 0; i < len(seg); {
		r, size := utf8.DecodeRune(seg[i:])
		clean = utf8.AppendRune(clean, r)
		i += size
	}
	return clean
}

// InternBytes materializes a raw-mode token's bytes as a string,
// serving repeats of short strings (object keys, enum-like values) from
// the lexer's cache so they cost zero allocations after the first
// occurrence.
func (l *Lexer) InternBytes(b []byte) string { return l.internString(b) }

// internString materializes a string token, serving repeats of short
// strings from the cache. The map lookup keyed by string(buf) compiles
// to a no-copy probe, so a cache hit allocates nothing.
func (l *Lexer) internString(buf []byte) string {
	if len(buf) > maxCachedStrLen {
		return string(buf)
	}
	if s, ok := l.strCache[string(buf)]; ok {
		return s
	}
	s := string(buf)
	if l.strCache == nil {
		l.strCache = make(map[string]string, 64)
	}
	if len(l.strCache) < maxCachedStrs {
		l.strCache[s] = s
	}
	return s
}

// scanHex4 reads four hex digits of a \u escape.
func (l *Lexer) scanHex4(start int64) (rune, error) {
	var r rune
	for i := 0; i < 4; i++ {
		b, err := l.readByte()
		if err != nil {
			return 0, l.errorf(start, "short \\u escape")
		}
		var d rune
		switch {
		case b >= '0' && b <= '9':
			d = rune(b - '0')
		case b >= 'a' && b <= 'f':
			d = rune(b-'a') + 10
		case b >= 'A' && b <= 'F':
			d = rune(b-'A') + 10
		default:
			return 0, l.errorf(l.offset-1, "invalid hex digit %q in \\u escape", string(rune(b)))
		}
		r = r<<4 | d
	}
	return r, nil
}

// maybeLowSurrogate tries to read a \uXXXX low surrogate following a high
// surrogate. It reports whether it consumed one.
func (l *Lexer) maybeLowSurrogate(start int64) (rune, bool, error) {
	b1, err := l.readByte()
	if err != nil {
		return 0, false, nil
	}
	if b1 != '\\' {
		l.unreadByte()
		return 0, false, nil
	}
	b2, err := l.readByte()
	if err != nil {
		return 0, false, l.errorf(start, "unterminated escape")
	}
	if b2 != 'u' {
		// Not a \u escape: un-consume is impossible for two bytes with
		// bufio, so treat as an error; encoding/json behaves the same
		// way for a lone high surrogate followed by another escape.
		return 0, false, l.errorf(l.offset-2, "expected low surrogate escape")
	}
	r, err := l.scanHex4(start)
	if err != nil {
		return 0, false, err
	}
	return r, true, nil
}

// scanNumber reads a JSON number whose first byte is first, validating
// the RFC 8259 grammar. Integers short enough to be exact in an int64
// are converted directly; everything else goes through ParseFloat over
// the reusable number scratch.
func (l *Lexer) scanNumber(start int64, first byte) (float64, error) {
	raw := l.numBuf[:0]
	defer func() { l.numBuf = raw[:0] }()
	raw = append(raw, first)
	isInt := true
	readDigits := func(minOne bool) error {
		n := 0
		if l.direct {
			i, data := l.pos, l.data
			for i < len(data) && data[i] >= '0' && data[i] <= '9' {
				i++
			}
			raw = append(raw, data[l.pos:i]...)
			n = i - l.pos
			l.offset += int64(n)
			l.pos = i
		} else {
			for {
				b, err := l.readByte()
				if err != nil {
					break
				}
				if b < '0' || b > '9' {
					l.unreadByte()
					break
				}
				raw = append(raw, b)
				n++
			}
		}
		if minOne && n == 0 {
			return l.errorf(start, "malformed number")
		}
		return nil
	}
	b := first
	if b == '-' {
		var err error
		b, err = l.readByte()
		if err != nil || b < '0' || b > '9' {
			return 0, l.errorf(start, "malformed number")
		}
		raw = append(raw, b)
	}
	// Integer part: a leading zero cannot be followed by more digits.
	if b != '0' {
		if err := readDigits(false); err != nil {
			return 0, err
		}
	} else {
		if nb, err := l.readByte(); err == nil {
			if nb >= '0' && nb <= '9' {
				return 0, l.errorf(start, "leading zero in number")
			}
			l.unreadByte()
		}
	}
	// Fraction.
	if nb, err := l.readByte(); err == nil {
		if nb == '.' {
			raw = append(raw, nb)
			isInt = false
			if err := readDigits(true); err != nil {
				return 0, err
			}
		} else {
			l.unreadByte()
		}
	}
	// Exponent.
	if nb, err := l.readByte(); err == nil {
		if nb == 'e' || nb == 'E' {
			raw = append(raw, nb)
			isInt = false
			sb, err := l.readByte()
			if err != nil {
				return 0, l.errorf(start, "malformed exponent")
			}
			if sb == '+' || sb == '-' {
				raw = append(raw, sb)
			} else {
				l.unreadByte()
			}
			if err := readDigits(true); err != nil {
				return 0, err
			}
		} else {
			l.unreadByte()
		}
	}
	// Integer fast path: up to 18 digits fits int64 exactly, and
	// float64(int64) rounds to nearest just like ParseFloat would on
	// the same exact decimal value — identical results, no allocation.
	if digits := raw; isInt {
		if digits[0] == '-' {
			digits = digits[1:]
		}
		if len(digits) <= 18 {
			var n int64
			for _, d := range digits {
				n = n*10 + int64(d-'0')
			}
			if raw[0] == '-' {
				n = -n
			}
			return float64(n), nil
		}
	}
	f, err := strconv.ParseFloat(string(raw), 64)
	if err != nil {
		return 0, l.errorf(start, "malformed number %q", raw)
	}
	return f, nil
}
