package jsontext

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/value"
)

// DefaultMaxDepth bounds nesting to protect against depth bombs; it is
// far above anything in the paper's datasets (max nesting 7).
const DefaultMaxDepth = 512

// Options configure parsing.
type Options struct {
	// MaxDepth bounds the nesting depth of parsed values; zero means
	// DefaultMaxDepth.
	MaxDepth int
}

func (o Options) maxDepth() int {
	if o.MaxDepth <= 0 {
		return DefaultMaxDepth
	}
	return o.MaxDepth
}

// Parser builds value.Value trees from a token stream.
type Parser struct {
	lex  *Lexer
	opts Options
}

// NewParser returns a parser reading one or more whitespace-separated
// JSON values from r.
func NewParser(r io.Reader, opts Options) *Parser {
	return &Parser{lex: NewLexer(r), opts: opts}
}

// ParseBytes parses a single JSON value from data, requiring that
// nothing but whitespace follows it.
func ParseBytes(data []byte) (value.Value, error) {
	p := NewParser(bytes.NewReader(data), Options{})
	v, err := p.Next()
	if err != nil {
		return nil, err
	}
	if _, err := p.Next(); err != io.EOF {
		return nil, &SyntaxError{Offset: p.lex.Offset(), Msg: "trailing data after JSON value"}
	}
	return v, nil
}

// Next parses the next top-level value from the stream. It returns
// io.EOF when the input is exhausted. This accepts both NDJSON
// (newline-delimited) and whitespace-concatenated JSON values.
func (p *Parser) Next() (value.Value, error) {
	tok, err := p.lex.Next()
	if err != nil {
		return nil, err
	}
	if tok.Kind == TokEOF {
		return nil, io.EOF
	}
	return p.parseValue(tok, 0)
}

// Offset returns the number of input bytes consumed so far.
func (p *Parser) Offset() int64 { return p.lex.Offset() }

func (p *Parser) parseValue(tok Token, depth int) (value.Value, error) {
	if depth > p.opts.maxDepth() {
		return nil, &SyntaxError{Offset: tok.Offset, Msg: fmt.Sprintf("nesting deeper than %d", p.opts.maxDepth())}
	}
	switch tok.Kind {
	case TokNull:
		return value.Null{}, nil
	case TokTrue:
		return value.Bool(true), nil
	case TokFalse:
		return value.Bool(false), nil
	case TokNum:
		return value.Num(tok.Num), nil
	case TokStr:
		return value.Str(tok.Str), nil
	case TokBeginObject:
		return p.parseObject(depth)
	case TokBeginArray:
		return p.parseArray(depth)
	default:
		return nil, &SyntaxError{Offset: tok.Offset, Msg: fmt.Sprintf("unexpected %s", tok.Kind)}
	}
}

func (p *Parser) parseObject(depth int) (value.Value, error) {
	var fields []value.Field
	seen := make(map[string]bool)
	first := true
	for {
		tok, err := p.lex.Next()
		if err != nil {
			return nil, err
		}
		if first && tok.Kind == TokEndObject {
			return value.MustRecord(), nil
		}
		if !first {
			switch tok.Kind {
			case TokEndObject:
				return value.NewRecord(fields...)
			case TokComma:
				tok, err = p.lex.Next()
				if err != nil {
					return nil, err
				}
			default:
				return nil, &SyntaxError{Offset: tok.Offset, Msg: fmt.Sprintf("expected ',' or '}' in object, got %s", tok.Kind)}
			}
		}
		first = false
		if tok.Kind != TokStr {
			return nil, &SyntaxError{Offset: tok.Offset, Msg: fmt.Sprintf("expected object key string, got %s", tok.Kind)}
		}
		key := tok.Str
		if seen[key] {
			// Well-formedness per Section 4: keys must be unique.
			return nil, &SyntaxError{Offset: tok.Offset, Msg: fmt.Sprintf("duplicate object key %q", key)}
		}
		seen[key] = true
		colon, err := p.lex.Next()
		if err != nil {
			return nil, err
		}
		if colon.Kind != TokColon {
			return nil, &SyntaxError{Offset: colon.Offset, Msg: fmt.Sprintf("expected ':' after key, got %s", colon.Kind)}
		}
		vt, err := p.lex.Next()
		if err != nil {
			return nil, err
		}
		v, err := p.parseValue(vt, depth+1)
		if err != nil {
			return nil, err
		}
		fields = append(fields, value.Field{Key: key, Value: v})
	}
}

func (p *Parser) parseArray(depth int) (value.Value, error) {
	var elems value.Array
	first := true
	for {
		tok, err := p.lex.Next()
		if err != nil {
			return nil, err
		}
		if first && tok.Kind == TokEndArray {
			return value.Array{}, nil
		}
		if !first {
			switch tok.Kind {
			case TokEndArray:
				return elems, nil
			case TokComma:
				tok, err = p.lex.Next()
				if err != nil {
					return nil, err
				}
			default:
				return nil, &SyntaxError{Offset: tok.Offset, Msg: fmt.Sprintf("expected ',' or ']' in array, got %s", tok.Kind)}
			}
		}
		first = false
		v, err := p.parseValue(tok, depth+1)
		if err != nil {
			return nil, err
		}
		elems = append(elems, v)
	}
}
