package jsontext

import (
	"strings"
	"testing"
)

// drainStrings lexes src and returns every string token value.
func drainStrings(t *testing.T, l *Lexer) []string {
	t.Helper()
	var out []string
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if tok.Kind == TokEOF {
			return out
		}
		if tok.Kind == TokStr {
			out = append(out, tok.Str)
		}
	}
}

// TestStringCacheCorrectness: interning must never change token VALUES,
// only their allocation — including escaped forms that decode to a
// previously cached literal, and invalid UTF-8 that is repaired first.
func TestStringCacheCorrectness(t *testing.T) {
	src := `["key", "key", "key", "é\t", "é\t", "long` + strings.Repeat("x", 100) + `", "𝄞", "` + "\xff" + `", "` + "\xff" + `"]`
	l := NewLexer(strings.NewReader(src))
	got := drainStrings(t, l)
	want := []string{
		"key", "key", "key",
		"é\t", "é\t",
		"long" + strings.Repeat("x", 100),
		"\U0001d11e",
		"�", "�",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d strings, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("string %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestStringCacheSharesRepeats: the second occurrence of a short string
// is served from the cache, so the header of both string values is the
// same allocation. (Strings are immutable; identity is observable via
// unsafe-free comparison of successive cache returns.)
func TestStringCacheSharesRepeats(t *testing.T) {
	l := NewLexer(strings.NewReader(`["dup", "dup", "dup"]`))
	got := drainStrings(t, l)
	if len(got) != 3 {
		t.Fatalf("want 3 strings, got %d", len(got))
	}
	// The cache returns the identical string header for repeats; compare
	// via the map the lexer itself exposes.
	if s, ok := l.strCache["dup"]; !ok || s != "dup" {
		t.Fatalf("cache did not retain %q", "dup")
	}
}

// TestStringCacheBounds: strings over maxCachedStrLen stay out, and a
// full cache serves existing entries but admits no new ones.
func TestStringCacheBounds(t *testing.T) {
	long := strings.Repeat("a", maxCachedStrLen+1)
	l := NewLexer(strings.NewReader(`"` + long + `"`))
	if got := drainStrings(t, l); len(got) != 1 || got[0] != long {
		t.Fatalf("long string mangled")
	}
	if _, ok := l.strCache[long]; ok {
		t.Fatal("over-length string was cached")
	}

	full := &Lexer{strCache: make(map[string]string, maxCachedStrs)}
	for i := 0; i < maxCachedStrs; i++ {
		s := "k" + strings.Repeat("x", i%8) + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
		full.strCache[s] = s
	}
	n := len(full.strCache)
	if got := full.internString([]byte("fresh-entry")); got != "fresh-entry" {
		t.Fatalf("internString returned %q", got)
	}
	if len(full.strCache) > n {
		t.Fatal("full cache admitted a new entry")
	}
}

// TestLexerPoolReuse: Acquire/Release/Acquire keeps the string cache
// warm and resets offsets, so pooled reuse is indistinguishable from a
// fresh lexer apart from allocation count.
func TestLexerPoolReuse(t *testing.T) {
	l1 := AcquireLexer(strings.NewReader(`{"alpha": 1}`))
	for {
		tok, err := l1.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
	}
	if l1.Offset() == 0 {
		t.Fatal("offset not advanced")
	}
	l1.Release()

	// The pool is shared; the recycled lexer must start at offset 0 and
	// still produce correct tokens whether or not we got l1 back.
	l2 := AcquireLexer(strings.NewReader(`{"alpha": 2}`))
	defer l2.Release()
	if l2.Offset() != 0 {
		t.Fatal("pooled lexer did not reset offset")
	}
	var keys []string
	for {
		tok, err := l2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
		if tok.Kind == TokStr {
			keys = append(keys, tok.Str)
		}
	}
	if len(keys) != 1 || keys[0] != "alpha" {
		t.Fatalf("pooled lexer tokens wrong: %q", keys)
	}
}
